// Benchmarks: one per table and figure of the paper's evaluation, plus
// the ablations from DESIGN.md. Each benchmark iteration regenerates
// the corresponding artifact at reduced dataset scale on the simulated
// cluster (the full-scale numbers are produced by cmd/approxbench and
// recorded in EXPERIMENTS.md).
//
//	go test -bench=. -benchmem
package approxhadoop_test

import (
	"io"
	"testing"

	"approxhadoop/internal/harness"
)

// benchRunner builds a reduced-scale harness for benchmark iterations.
func benchRunner(scale float64) *harness.Runner {
	cfg := harness.Default()
	cfg.Scale = scale
	cfg.Reps = 1
	cfg.Out = io.Discard
	return harness.New(cfg)
}

func BenchmarkTable1Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2LogSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6WikiLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ProjectPopularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8DCPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9aTargetError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig9a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9bPilot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig9b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9cDCPlacementTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig9c(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10WebLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11WebLogSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).Fig13([]int{7, 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUserDefined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).UserDefined(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeySpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).KeySpace(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTaskOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).AblationTaskOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).AblationBarrier(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVarianceSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).AblationVarianceSplit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner(0.02).AblationCostModel(); err != nil {
			b.Fatal(err)
		}
	}
}
