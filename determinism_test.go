package approxhadoop_test

import (
	"runtime"
	"strconv"
	"testing"

	approxhadoop "approxhadoop"
	"approxhadoop/internal/stats"
)

// detRun executes the canonical determinism job — approximate
// wordcount with a retry policy and, when withFaults is set, a random
// fault plan that lands on running attempts — at the given map-compute
// pool size.
func detRun(t *testing.T, workers int, withFaults bool) *approxhadoop.Result {
	t.Helper()
	sys := approxhadoop.NewSystem(approxhadoop.DefaultCluster())
	input := approxhadoop.SplitText("pages.txt", corpus(), 1024)
	if err := sys.Store(input); err != nil {
		t.Fatal(err)
	}
	job := wordCountJob(sys, input, approxhadoop.Ratios(0.25, 0.5))
	job.Workers = workers
	// Determinism must survive fault injection too. The job leaves
	// Reduces at its default (one per server), so every server hosts
	// unreplicated reduce state: protect all of them from fail-stops
	// (their faults weaken to transient task faults) and exercise
	// the retry/degrade machinery instead. The analytic cost model
	// stretches the map phase across the fault horizon so the
	// faults actually land on running attempts.
	job.Cost = approxhadoop.AnalyticCost{T0: 1, Tr: 0.01, Tp: 0.01}
	if withFaults {
		plan := approxhadoop.RandomFaultPlan(21, 8, 10, 1.5,
			0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
		job.Faults = &plan
	}
	job.Retry = approxhadoop.RetryPolicy{MaxAttemptsPerTask: 3, Backoff: 0.25}
	job.DegradeToDrop = true
	job.RecordTrace = true
	res, err := sys.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareResults requires bitwise agreement of runtime, energy, and
// every estimate with its error bound.
func compareResults(t *testing.T, label string, a, b *approxhadoop.Result) {
	t.Helper()
	if !stats.AlmostEqual(a.Runtime, b.Runtime, 0) {
		t.Errorf("%s: runtimes differ: %v vs %v", label, a.Runtime, b.Runtime)
	}
	if !stats.AlmostEqual(a.EnergyWh, b.EnergyWh, 0) {
		t.Errorf("%s: energy differs: %v vs %v", label, a.EnergyWh, b.EnergyWh)
	}
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("%s: output counts differ: %d vs %d", label, len(a.Outputs), len(b.Outputs))
	}
	for i := range a.Outputs {
		x, y := a.Outputs[i], b.Outputs[i]
		if x.Key != y.Key ||
			!stats.AlmostEqual(x.Est.Value, y.Est.Value, 0) ||
			!stats.AlmostEqual(x.Est.Err, y.Est.Err, 0) {
			t.Errorf("%s: output %d differs: %+v vs %+v", label, i, x, y)
		}
	}
}

// TestSameSeedRunsIdentical is the determinism acceptance check: two
// complete simulations of the same approximate job with the same seed
// must agree bit-for-bit — runtime, energy, and every estimate with
// its error bound. Wall-clock task measurement or a global rand draw
// anywhere in the pipeline breaks this (that is what approxlint's
// virtualclock and seededrand analyzers guard against).
//
// The check also spans map-compute pool sizes: running user map code
// on 1, 2, or GOMAXPROCS worker goroutines must be invisible to the
// virtual timeline, with and without fault injection (the sharedstate
// analyzer guards the purity this relies on).
func TestSameSeedRunsIdentical(t *testing.T) {
	for _, tc := range []struct {
		name       string
		withFaults bool
	}{{"faults", true}, {"clean", false}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := detRun(t, 1, tc.withFaults)
			again := detRun(t, 1, tc.withFaults)
			compareResults(t, "rerun", base, again)
			for _, w := range []int{2, runtime.GOMAXPROCS(0) + 1} {
				pooled := detRun(t, w, tc.withFaults)
				compareResults(t, "workers="+strconv.Itoa(w), base, pooled)
			}
		})
	}
}
