package approxhadoop_test

import (
	"testing"

	approxhadoop "approxhadoop"
	"approxhadoop/internal/stats"
)

// TestSameSeedRunsIdentical is the determinism acceptance check: two
// complete simulations of the same approximate job with the same seed
// must agree bit-for-bit — runtime, energy, and every estimate with
// its error bound. Wall-clock task measurement or a global rand draw
// anywhere in the pipeline breaks this (that is what approxlint's
// virtualclock and seededrand analyzers guard against).
func TestSameSeedRunsIdentical(t *testing.T) {
	run := func() *approxhadoop.Result {
		sys := approxhadoop.NewSystem(approxhadoop.DefaultCluster())
		input := approxhadoop.SplitText("pages.txt", corpus(), 1024)
		if err := sys.Store(input); err != nil {
			t.Fatal(err)
		}
		job := wordCountJob(sys, input, approxhadoop.Ratios(0.25, 0.5))
		// Determinism must survive fault injection too. The job leaves
		// Reduces at its default (one per server), so every server hosts
		// unreplicated reduce state: protect all of them from fail-stops
		// (their faults weaken to transient task faults) and exercise
		// the retry/degrade machinery instead. The analytic cost model
		// stretches the map phase across the fault horizon so the
		// faults actually land on running attempts.
		job.Cost = approxhadoop.AnalyticCost{T0: 1, Tr: 0.01, Tp: 0.01}
		plan := approxhadoop.RandomFaultPlan(21, 8, 10, 1.5,
			0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
		job.Faults = &plan
		job.Retry = approxhadoop.RetryPolicy{MaxAttemptsPerTask: 3, Backoff: 0.25}
		job.DegradeToDrop = true
		res, err := sys.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !stats.AlmostEqual(a.Runtime, b.Runtime, 0) {
		t.Errorf("runtimes differ: %v vs %v", a.Runtime, b.Runtime)
	}
	if !stats.AlmostEqual(a.EnergyWh, b.EnergyWh, 0) {
		t.Errorf("energy differs: %v vs %v", a.EnergyWh, b.EnergyWh)
	}
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("output counts differ: %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	for i := range a.Outputs {
		x, y := a.Outputs[i], b.Outputs[i]
		if x.Key != y.Key ||
			!stats.AlmostEqual(x.Est.Value, y.Est.Value, 0) ||
			!stats.AlmostEqual(x.Est.Err, y.Est.Err, 0) {
			t.Errorf("output %d differs: %+v vs %+v", i, x, y)
		}
	}
}
