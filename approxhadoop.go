// Package approxhadoop is a from-scratch Go implementation of
// ApproxHadoop (Goiri, Bianchini, Nagarakatte, Nguyen — ASPLOS 2015):
// a MapReduce framework extended with three approximation mechanisms —
// input data sampling, task dropping, and user-defined approximation —
// and with rigorous error bounds (95% confidence intervals) derived
// from multi-stage sampling theory (for sum/count/average reducers)
// and extreme value theory (for min/max reducers).
//
// The package is a facade over the building blocks:
//
//   - a block-oriented DFS (HDFS stand-in) with lazy, deterministic,
//     generator-backed blocks,
//   - a discrete-event cluster simulator (servers, map/reduce slots,
//     power model with ACPI S3) in which map tasks execute real Go
//     code while scheduling happens on a virtual clock,
//   - a Hadoop-style MapReduce runtime (JobTracker, locality-aware
//     scheduling, random task order, shuffle, barrier-less
//     incremental reduces, speculative execution),
//   - the ApproxHadoop layer: sampling input formats, approximation
//     controllers (static ratios, target error bounds with the paper's
//     optimization, GEV-based early termination), and the
//     multi-stage-sampling and extreme-value reducer templates.
//
// Quick start (the paper's ApproxWordCount, Figure 3):
//
//	sys := approxhadoop.NewSystem(approxhadoop.DefaultCluster())
//	input := approxhadoop.SplitText("pages.txt", data, 1<<16)
//	job := &approxhadoop.Job{
//		Name:   "ApproxWordCount",
//		Input:  input,
//		Format: approxhadoop.ApproxTextInput{},
//		NewMapper: func() approxhadoop.Mapper {
//			return approxhadoop.MapperFunc(func(rec approxhadoop.Record, emit approxhadoop.Emitter) {
//				for _, w := range strings.Fields(rec.Value) {
//					emit.Emit(w, 1)
//				}
//			})
//		},
//		NewReduce:  approxhadoop.MultiStageSumReduce,
//		Combine:    true,
//		Controller: approxhadoop.TargetError(0.01), // ±1% with 95% confidence
//	}
//	res, err := sys.Run(job)
//
// Every output key carries an Estimate with a confidence interval;
// Result.Runtime and Result.EnergyWh report the simulated cluster cost.
package approxhadoop

import (
	"io"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/core"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/stream"
	"approxhadoop/internal/workload"
)

// Core MapReduce types re-exported from the runtime.
type (
	// Job describes one MapReduce job (see mapreduce.Job).
	Job = mapreduce.Job
	// Result is a completed job's outputs, runtime and energy.
	Result = mapreduce.Result
	// Record is one input record.
	Record = mapreduce.Record
	// Mapper is user map() code.
	Mapper = mapreduce.Mapper
	// MapperFunc adapts a function to Mapper.
	MapperFunc = mapreduce.MapperFunc
	// Emitter receives intermediate pairs.
	Emitter = mapreduce.Emitter
	// KeyEstimate is one output key with its interval estimate.
	KeyEstimate = mapreduce.KeyEstimate
	// ReduceLogic is the reduce-side computation of one partition.
	ReduceLogic = mapreduce.ReduceLogic
	// Controller steers approximation during a job.
	Controller = mapreduce.Controller
	// Estimate is a point estimate with confidence interval.
	Estimate = stats.Estimate

	// File is a DFS file (a sequence of blocks).
	File = dfs.File
	// Block is one DFS block.
	Block = dfs.Block

	// ClusterConfig configures the simulated cluster.
	ClusterConfig = cluster.Config
	// Fault is one injected failure on the virtual timeline.
	Fault = cluster.Fault
	// FaultPlan scripts a deterministic sequence of injected faults
	// (assign to Job.Faults).
	FaultPlan = cluster.FaultPlan
	// RetryPolicy bounds fault recovery: attempt caps, backoff, server
	// blacklisting and a map-phase deadline (assign to Job.Retry).
	RetryPolicy = mapreduce.RetryPolicy
	// CostModel converts task measurements to virtual durations.
	CostModel = cluster.CostModel
	// AnalyticCost is the t0 + M*tr + m*tp cost model of Equation 5.
	AnalyticCost = cluster.AnalyticCost
	// MeasuredCost charges tasks their real measured execution time.
	MeasuredCost = cluster.MeasuredCost

	// ApproxTextInput is the sampling text input format
	// (ApproxTextInputFormat in the paper).
	ApproxTextInput = approx.ApproxTextInput
	// TextInput is the precise text input format.
	TextInput = mapreduce.TextInputFormat

	// Event is one entry in a job's execution trace; set Job.RecordTrace
	// to collect them in Result.Trace, or assign a Tracer to Job.Trace
	// to observe them as they happen.
	Event = mapreduce.Event
	// EventKind classifies trace events.
	EventKind = mapreduce.EventKind
	// Tracer receives trace events in virtual-time order.
	Tracer = mapreduce.Tracer
)

// Trace event kinds (see Event).
const (
	EventMapLaunched       = mapreduce.EventMapLaunched
	EventMapCompleted      = mapreduce.EventMapCompleted
	EventMapKilled         = mapreduce.EventMapKilled
	EventMapDropped        = mapreduce.EventMapDropped
	EventMapSpeculated     = mapreduce.EventMapSpeculated
	EventMapFailed         = mapreduce.EventMapFailed
	EventMapRetried        = mapreduce.EventMapRetried
	EventMapDegraded       = mapreduce.EventMapDegraded
	EventServerBlacklisted = mapreduce.EventServerBlacklisted
	EventReduceFinished    = mapreduce.EventReduceFinished
	EventJobCompleted      = mapreduce.EventJobCompleted
)

// DefaultCluster mirrors the paper's Xeon cluster: 10 servers with 8
// map slots and 1 reduce slot each, 60 W idle / 150 W peak.
func DefaultCluster() ClusterConfig { return cluster.DefaultConfig() }

// PaperCost returns the analytic task cost model calibrated to produce
// paper-scale simulated runtimes for the default synthetic workloads
// (the alternative, MeasuredCost, charges tasks their real measured
// compute time on the host).
func PaperCost() AnalyticCost {
	return AnalyticCost{T0: 1.5, Tr: 0.006, Tp: 0.024, RedPerK: 0.02}
}

// AtomCluster mirrors the paper's 60-node Atom cluster used for the
// large scaling experiments.
func AtomCluster() ClusterConfig { return cluster.AtomConfig() }

// Fault kinds for FaultPlan entries.
const (
	// FaultTask kills one running map attempt on the target server.
	FaultTask = cluster.FaultTask
	// FaultServer fail-stops the target server (Recover > 0 rejoins it).
	FaultServer = cluster.FaultServer
	// FaultSlow changes the target server's speed factor.
	FaultSlow = cluster.FaultSlow
	// FaultGroup fail-stops a set of servers at once (rack failure).
	FaultGroup = cluster.FaultGroup
)

// RandomFaultPlan builds a seeded random mix of task faults,
// fail-stops (some with recovery), slowdowns and correlated group
// failures over the first horizon seconds; servers listed in protect
// never fail-stop (their faults weaken to transient task faults).
func RandomFaultPlan(seed int64, n, servers int, horizon float64, protect ...int) FaultPlan {
	return cluster.RandomFaultPlan(seed, n, servers, horizon, protect...)
}

// System is an ApproxHadoop deployment: a simulated cluster plus a DFS
// namespace. Jobs run on a fresh cluster timeline each (see
// internal/core for the implementation). Use Submit with an
// Approximation spec for the paper's submission interface, or Run for
// a fully-specified job.
type System = core.System

// Approximation is the paper's Section 4.2 job-submission contract:
// explicit dropping/sampling ratios OR a target error bound at a
// confidence level; the zero value runs precisely.
type Approximation = core.Approximation

// NewSystem builds a System with the given cluster configuration.
func NewSystem(cfg ClusterConfig) *System { return core.NewSystem(cfg) }

// SplitText splits text content into line-aligned blocks (like HDFS
// text splits) and returns the file.
func SplitText(name string, content []byte, blockSize int) *File {
	return dfs.SplitText(name, content, blockSize)
}

// ---------------------------------------------------------------------------
// Reducer templates
// ---------------------------------------------------------------------------

// MultiStageSumReduce builds the paper's MultiStageSamplingReducer for
// sums per key (error bounds from two-stage sampling theory). Pass it
// as Job.NewReduce.
func MultiStageSumReduce(int) ReduceLogic { return approx.NewMultiStageReducer(approx.OpSum) }

// MultiStageCountReduce is MultiStageSumReduce for 0/1 indicators.
func MultiStageCountReduce(int) ReduceLogic { return approx.NewMultiStageReducer(approx.OpCount) }

// MultiStageMeanReduce estimates per-unit means with ratio-estimator
// error bounds.
func MultiStageMeanReduce(int) ReduceLogic { return approx.NewMultiStageReducer(approx.OpMean) }

// ApproxMinReduce builds the GEV-based minimum reducer (ApproxMinReducer).
func ApproxMinReduce(int) ReduceLogic { return approx.NewMinReducer() }

// ApproxMaxReduce builds the GEV-based maximum reducer (ApproxMaxReducer).
func ApproxMaxReduce(int) ReduceLogic { return approx.NewMaxReducer() }

// SumReduce is the plain (precise Hadoop) sum reducer.
func SumReduce(int) ReduceLogic { return mapreduce.SumReduce() }

// ---------------------------------------------------------------------------
// Sketch plane
// ---------------------------------------------------------------------------

// SketchPlan selects and parameterizes a sketch-compressed map-output
// representation (assign to Job.Sketch). Map output then carries one
// fixed-size mergeable sketch per (partition, group) instead of one
// pair per element — O(1) shuffle volume per partition — and the
// matching sketch reducer merges them with sketch-specific error
// bounds. The zero value of every parameter picks a sensible default.
type SketchPlan = mapreduce.SketchPlan

// Sketch kinds for SketchPlan.Kind.
const (
	// SketchDistinct counts distinct elements per group (HyperLogLog).
	SketchDistinct = mapreduce.SketchDistinct
	// SketchTopK tracks heavy hitters (Count-Min + candidate set).
	SketchTopK = mapreduce.SketchTopK
	// SketchMembership answers set-membership queries (Bloom filter).
	SketchMembership = mapreduce.SketchMembership
)

// ElementSep joins group and element in the composite-pair fallback
// representation emitted by EmitElement without a sketch plan.
const ElementSep = mapreduce.ElementSep

// EmitElement emits one element observation for sketch-family jobs:
// under a SketchPlan it folds into the group's sketch, otherwise it
// emits the composite pair "group\x1felement" partitioned by group so
// both representations reduce identically.
func EmitElement(emit Emitter, group, element string, weight float64) {
	mapreduce.EmitElement(emit, group, element, weight)
}

// DistinctReduce estimates distinct elements per group. Pair it with
// SketchDistinct (or run it on composite pairs for exact counts).
func DistinctReduce(int) ReduceLogic { return mapreduce.NewDistinctReduce() }

// TopKReduce reports the k heaviest elements with rank-preserving
// count estimates. Pair it with SketchTopK.
func TopKReduce(k int) func(int) ReduceLogic {
	return func(int) ReduceLogic { return mapreduce.NewTopKReduce(k) }
}

// MembershipReduce builds per-group membership filters and reports
// estimated member counts. Pair it with SketchMembership.
func MembershipReduce(int) ReduceLogic { return mapreduce.NewMembershipReduce() }

// TotalShuffleBytes reports the cumulative map-output shuffle volume
// (bytes) of every job run in this process — diff it around a run to
// compare representations.
func TotalShuffleBytes() int64 { return mapreduce.TotalShuffleBytes() }

// ---------------------------------------------------------------------------
// Controllers
// ---------------------------------------------------------------------------

// Ratios returns a controller that applies user-specified
// dropping/sampling ratios (Section 4.2, first mode): sampleRatio in
// (0, 1] of the input items are processed and dropRatio of the map
// tasks are dropped.
func Ratios(sampleRatio, dropRatio float64) Controller {
	return approx.NewStatic(sampleRatio, dropRatio)
}

// TargetError returns a controller that achieves a relative target
// error bound at 95% confidence by choosing dropping/sampling ratios
// online (Section 4.4). target is e.g. 0.01 for ±1%.
func TargetError(target float64) Controller {
	return &approx.TargetError{Target: target}
}

// TargetErrorPilot is TargetError with a pilot first wave: pilotTasks
// maps run at pilotRatio sampling to bootstrap statistics cheaply
// (for jobs whose maps complete in a single wave).
func TargetErrorPilot(target, pilotRatio float64, pilotTasks int) Controller {
	return &approx.TargetError{Target: target, Pilot: true, PilotRatio: pilotRatio, PilotTasks: pilotTasks}
}

// TargetErrorExtreme returns the extreme-value (min/max) target-error
// controller: maps are killed/dropped the moment the GEV interval
// meets the target (Section 4.5).
func TargetErrorExtreme(target float64) Controller {
	return &approx.TargetErrorGEV{Target: target}
}

// PerTaskMappers selects between precise and approximate map variants
// per task (user-defined approximation); assign to Job.NewMapperFor.
func PerTaskMappers(approxRatio float64, seed int64, precise, approximate func() Mapper) func(int) Mapper {
	return approx.PerTaskMappers(approxRatio, seed, precise, approximate)
}

// ---------------------------------------------------------------------------
// Output writers (the paper's ApproxOutput)
// ---------------------------------------------------------------------------

// WriteText renders a result as a human-readable report.
func WriteText(w io.Writer, res *Result) error { return mapreduce.WriteText(w, res) }

// WriteTSV writes "key value epsilon confidence" lines.
func WriteTSV(w io.Writer, res *Result) error { return mapreduce.WriteTSV(w, res) }

// WriteJSON serializes a result with interval bounds per key.
func WriteJSON(w io.Writer, res *Result) error { return mapreduce.WriteJSON(w, res) }

// WriteTraceJSONL writes a recorded execution trace (Result.Trace) as
// one JSON event per line.
func WriteTraceJSONL(w io.Writer, events []Event) error {
	return mapreduce.WriteTraceJSONL(w, events)
}

// Streaming approximation plane (internal/stream): continuous windowed
// queries over live, virtual-clock paced log streams, with per-window
// multi-stage estimates and an adaptive sampling controller.
type (
	// StreamQuery is a continuous windowed aggregation.
	StreamQuery = stream.Query
	// StreamWindow is an event-time window spec (Size/Slide seconds).
	StreamWindow = stream.Window
	// StreamSLO is the per-window error/latency objective.
	StreamSLO = stream.SLO
	// StreamCost is the analytic per-window latency model.
	StreamCost = stream.Cost
	// StreamPlan is one window's sampling plan.
	StreamPlan = stream.PlanSpec
	// StreamController retunes each window's plan from the last.
	StreamController = stream.Controller
	// StreamPipeline runs one StreamQuery over one StreamSource.
	StreamPipeline = stream.Pipeline
	// StreamSource is an event-time record stream.
	StreamSource = stream.Source
	// WindowResult is one closed window of the output series.
	WindowResult = stream.WindowResult
	// RateFunc is a stream intensity curve (records per second at t).
	RateFunc = workload.RateFunc
	// StreamOptions configure replaying a file as a live stream.
	StreamOptions = workload.StreamOptions
	// LogStream replays a dfs file as a paced record stream.
	LogStream = workload.LogStream
)

// Streaming aggregate ops.
const (
	StreamCount = stream.OpCount
	StreamSum   = stream.OpSum
	StreamMean  = stream.OpMean
)

// StreamFromFile wraps a dfs file (SplitText or a workload generator's
// File) as a live, Poisson-paced stream.
func StreamFromFile(f *File, opt StreamOptions) *LogStream { return workload.StreamFrom(f, opt) }

// ConstantRate emits perSec records per virtual second.
func ConstantRate(perSec float64) RateFunc { return workload.ConstantRate(perSec) }

// DiurnalRate is a day-shaped sinusoid base*(1+swing*sin(2πt/period)).
func DiurnalRate(base, swing, period float64) RateFunc {
	return workload.DiurnalRate(base, swing, period)
}

// NewStreamController builds the adaptive per-window controller.
func NewStreamController(slo StreamSLO, cost StreamCost) *StreamController {
	return stream.NewController(slo, cost)
}

// DefaultStreamCost is the default analytic latency model.
func DefaultStreamCost() StreamCost { return stream.DefaultCost() }

// StreamSeriesBytes renders a window series in its canonical byte
// form (the determinism contract's unit of account).
func StreamSeriesBytes(series []WindowResult) []byte { return stream.SeriesBytes(series) }

// WriteWindowSeries writes a header plus one TSV row per window.
func WriteWindowSeries(w io.Writer, series []WindowResult) error {
	return stream.WriteSeries(w, series)
}
