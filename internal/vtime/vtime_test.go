package vtime

import (
	"testing"

	"approxhadoop/internal/stats"
)

func TestDeterministicRates(t *testing.T) {
	d := NewDeterministic()
	cases := []struct {
		op           Op
		units, bytes int64
		want         float64
	}{
		{OpSetup, 0, 0, d.SetupSecs},
		{OpRead, 3, 100, 3*d.ReadPerItem + 100*d.ReadPerByte},
		{OpProc, 0, 0, d.ProcPerCall},
		{OpReduce, 7, 0, 7 * d.ReducePerPair},
	}
	for _, c := range cases {
		d.Begin(c.op)
		if got := d.End(c.op, c.units, c.bytes); !stats.AlmostEqual(got, c.want, 0) {
			t.Errorf("End(%v, %d, %d) = %v, want %v", c.op, c.units, c.bytes, got, c.want)
		}
	}
}

func TestDeterministicCharge(t *testing.T) {
	d := NewDeterministic()
	d.Begin(OpProc)
	d.Charge(1000)
	d.Charge(500)
	want := d.ProcPerCall + 1500*d.WorkUnitSecs
	if got := d.End(OpProc, 0, 0); !stats.AlmostEqual(got, want, 0) {
		t.Errorf("charged End = %v, want %v", got, want)
	}
	// The pending pool must drain: a second bracket starts clean.
	d.Begin(OpProc)
	if got := d.End(OpProc, 0, 0); !stats.AlmostEqual(got, d.ProcPerCall, 0) {
		t.Errorf("second End = %v, want %v (pending work leaked)", got, d.ProcPerCall)
	}
}

func TestDeterministicIsReproducible(t *testing.T) {
	run := func() float64 {
		d := NewDeterministic()
		var total float64
		for i := 0; i < 100; i++ {
			d.Begin(OpProc)
			d.Charge(float64(i))
			total += d.End(OpProc, 0, 0)
			d.Begin(OpRead)
			total += d.End(OpRead, 1, int64(i))
		}
		return total
	}
	if a, b := run(), run(); !stats.AlmostEqual(a, b, 0) {
		t.Errorf("identical metering sequences disagree: %v vs %v", a, b)
	}
}

func TestWallMeterMeasures(t *testing.T) {
	w := NewWall()
	w.Begin(OpProc)
	x := 0
	for i := 0; i < 1000; i++ {
		x += i
	}
	_ = x
	if got := w.End(OpProc, 0, 0); got < 0 {
		t.Errorf("wall measurement negative: %v", got)
	}
}
