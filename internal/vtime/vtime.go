// Package vtime supplies the simulator's notion of elapsed compute
// time. The discrete-event engine advances a virtual clock between
// events, but map and reduce code runs *in-process at a single virtual
// instant*, so its cost has to be attributed by a meter rather than
// read off the host's wall clock. Wall-clock measurement couples task
// durations — and therefore scheduling order, speculation decisions,
// and the sample sets the controllers see — to host load, which
// silently invalidates the reproducibility the paper's error bounds
// assume. The approxlint `virtualclock` analyzer forbids time.Now /
// time.Since / time.Sleep inside the simulator packages; this package
// is the one sanctioned home for wall-clock access, and only the
// calibration Meter below uses it.
//
// Meters are not safe for concurrent use. The simulator's scheduling
// plane is single-threaded by design, but map-attempt compute may run
// on a worker pool: the framework forks one child meter per attempt
// (see Forker) so no meter instance is ever shared across goroutines.
package vtime

import "time"

// Op identifies one metered operation class.
type Op int

// Operation classes. Begin/End calls for different ops may interleave
// (reads happen between proc brackets) but an op never nests with
// itself.
const (
	OpSetup  Op = iota // fixed per-task setup (open block, build mapper)
	OpRead             // reading/parsing one input record
	OpProc             // one user map() invocation
	OpReduce           // reduce-side consume or finalize
	numOps
)

// Meter attributes compute seconds to in-process task execution.
// Callers bracket each operation with Begin/End; End reports what the
// operation did (record and byte counts) and returns the seconds to
// charge. User code may add explicit work via Charge between Begin and
// End of the enclosing op.
//
//approx:pure
type Meter interface {
	// Begin marks the start of one operation of class op.
	Begin(op Op)
	// End closes the operation and returns its charged seconds. units
	// and bytes describe the work done (records read, pairs consumed,
	// raw bytes scanned); calibration meters may ignore them.
	End(op Op, units, bytes int64) float64
	// Charge adds explicit user-declared work units (e.g. inner-loop
	// iterations of a compute kernel) to the operation in progress.
	Charge(units float64)
}

// Charger is implemented by emitters handed to user map functions, so
// compute-bound kernels can declare their work deterministically
// instead of burning real CPU to be measured.
type Charger interface {
	ChargeCompute(units float64)
}

// Forker is implemented by meters that can produce independent child
// meters. The framework forks one child per map-task attempt so
// attempts can execute concurrently on a worker pool without sharing
// meter state (and so two jobs built from one template never alias a
// meter). A child starts with no operation in progress; configured
// rates are inherited.
type Forker interface {
	Fork() Meter
}

// Fork returns an independent per-attempt meter derived from m: the
// meter's own Fork when it implements Forker, otherwise m itself.
// Callers that need concurrency safety (the map worker pool) must
// check Forker directly and fall back to sequential execution when the
// meter cannot fork.
func Fork(m Meter) Meter {
	if f, ok := m.(Forker); ok {
		return f.Fork()
	}
	return m
}

// Deterministic charges fixed per-unit costs, making every measurement
// a pure function of the work performed. It is the default meter: two
// runs of the same job with the same seed produce bit-identical task
// measurements, durations, and schedules on any host.
//
// The default rates approximate a modern single core (≈1 GB/s line
// parsing, ≈100 ns per record handled, ≈2 ns per declared work unit)
// so MeasuredCost-based simulations keep host-like magnitudes.
type Deterministic struct {
	SetupSecs     float64 // charged per OpSetup bracket
	ReadPerItem   float64 // per record returned or skipped by a reader
	ReadPerByte   float64 // per raw byte scanned
	ProcPerCall   float64 // per user map() invocation
	ReducePerPair float64 // per intermediate pair consumed (or key finalized)
	WorkUnitSecs  float64 // per unit declared via Charge

	pending float64 // work units charged inside the current bracket
}

// NewDeterministic returns a Deterministic meter with the default
// rates.
func NewDeterministic() *Deterministic {
	return &Deterministic{
		SetupSecs:     1e-4,
		ReadPerItem:   1e-7,
		ReadPerByte:   1e-9,
		ProcPerCall:   2e-7,
		ReducePerPair: 1e-7,
		WorkUnitSecs:  2e-9,
	}
}

// Begin implements Meter.
func (d *Deterministic) Begin(Op) {}

// End implements Meter.
func (d *Deterministic) End(op Op, units, bytes int64) float64 {
	secs := d.pending * d.WorkUnitSecs
	d.pending = 0
	switch op {
	case OpSetup:
		secs += d.SetupSecs
	case OpRead:
		secs += float64(units)*d.ReadPerItem + float64(bytes)*d.ReadPerByte
	case OpProc:
		secs += d.ProcPerCall
	case OpReduce:
		secs += float64(units) * d.ReducePerPair
	}
	return secs
}

// Charge implements Meter.
func (d *Deterministic) Charge(units float64) { d.pending += units }

// Fork implements Forker: the child inherits the configured rates and
// starts with no pending work. Because Deterministic is a pure
// function of the work reported to it, forked children attribute
// exactly the same seconds as the parent would have.
func (d *Deterministic) Fork() Meter {
	c := *d
	c.pending = 0
	return &c
}

// Wall measures real elapsed host time. It exists for calibrating the
// Deterministic rates and for benchmarking outside the simulator; any
// simulation using it is, by construction, not reproducible.
type Wall struct {
	starts [numOps]time.Time
}

// NewWall returns a wall-clock calibration meter.
func NewWall() *Wall { return &Wall{} }

// Begin implements Meter.
func (w *Wall) Begin(op Op) { w.starts[op] = time.Now() }

// End implements Meter.
func (w *Wall) End(op Op, _, _ int64) float64 {
	return time.Since(w.starts[op]).Seconds()
}

// Charge implements Meter; declared work is already contained in the
// measured elapsed time.
func (w *Wall) Charge(float64) {}

// Fork implements Forker: each attempt gets a fresh wall-clock meter.
// Wall measurements are inherently non-reproducible, concurrent or
// not; forking only keeps the Begin/End brackets from clobbering each
// other across attempts.
func (w *Wall) Fork() Meter { return NewWall() }
