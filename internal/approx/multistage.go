package approx

import (
	"math"
	"sort"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// AggOp selects the aggregation a MultiStageReducer performs.
type AggOp int

// Supported aggregation operations (Section 3.1: sum, count, average;
// ratios combine two sum estimates, see stats.TwoStageRatio and
// RatioOfEstimates).
const (
	OpSum AggOp = iota
	OpCount
	OpMean
)

func (op AggOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpCount:
		return "count"
	default:
		return "mean"
	}
}

// keyAgg holds the incremental per-key aggregates of the two-stage
// estimators. Clusters where the key never appeared contribute
// tau_i = 0 and s_i^2 = 0, i.e. nothing — so only appearing clusters
// touch the accumulators and memory stays O(keys) regardless of how
// many map tasks the job has. This matters for jobs like the
// year-of-logs Page Popularity run with thousands of clusters.
type keyAgg struct {
	appear  int64   // clusters in which the key appeared
	units   int64   // sampled units that produced a value for the key
	sumTau  float64 // sum of cluster total estimates tau_i = M_i * ybar_i
	sumTau2 float64 // sum of tau_i^2 (for s_u^2)
	sumTauM float64 // sum of tau_i * M_i (for the mean/ratio residuals)
	within  float64 // sum of M_i (M_i - m_i) s_i^2 / m_i
	sumS2   float64 // sum of s_i^2 (for the controller's average)
}

// MultiStageReducer is the paper's MultiStageSamplingReducer: it
// aggregates intermediate values per key and, at estimate time,
// evaluates the two-stage sampling estimators of Section 3.1 with each
// map task as a cluster and each input data item as a unit; units that
// emitted nothing for a key count as implicit zeros.
//
// It accepts both raw pairs and combiner-compacted outputs; combining
// is lossless for these estimators because they only need per-(task,
// key) count/sum/sum-of-squares.
type MultiStageReducer struct {
	Op AggOp

	n            int     // consumed clusters
	sumM         float64 // sum of M_i over consumed clusters
	sumM2        float64 // sum of M_i^2
	sampledUnits int64   // sum of m_i over consumed clusters
	keys         map[string]*keyAgg
	sampled      bool // any cluster with m_i < M_i seen
}

// NewMultiStageReducer builds a reducer for the given aggregation.
func NewMultiStageReducer(op AggOp) *MultiStageReducer {
	return &MultiStageReducer{Op: op, keys: make(map[string]*keyAgg)}
}

// Consume implements mapreduce.ReduceLogic.
func (r *MultiStageReducer) Consume(out *mapreduce.MapOutput) {
	r.n++
	M := float64(out.Items)
	m := out.Sampled
	r.sumM += M
	r.sumM2 += M * M
	r.sampledUnits += m
	if out.Sampled < out.Items {
		r.sampled = true
	}
	consumeOne := func(key string, rs stats.RunningStat) {
		agg := r.keys[key]
		if agg == nil {
			agg = &keyAgg{}
			r.keys[key] = agg
		}
		if m <= 0 {
			return
		}
		tau := M * rs.MeanOverN(m)
		s2 := rs.VarianceOverN(m)
		agg.appear++
		agg.units += rs.Count
		agg.sumTau += tau
		agg.sumTau2 += tau * tau
		agg.sumTauM += tau * M
		agg.sumS2 += s2
		if m >= 2 && float64(m) < M {
			agg.within += M * (M - float64(m)) * s2 / float64(m)
		}
	}
	if out.IsCombined() {
		out.EachCombined(consumeOne)
		return
	}
	tmp := make(map[string]stats.RunningStat)
	out.EachPair(func(k string, v float64) {
		rs := tmp[k]
		rs.Add(v)
		tmp[k] = rs
	})
	for k, rs := range tmp {
		consumeOne(k, rs)
	}
}

// exact reports whether the consumed data covers the entire input.
func (r *MultiStageReducer) exact(view mapreduce.EstimateView) bool {
	return !r.sampled && view.Dropped == 0 && r.n == view.TotalMaps
}

// su2 returns s_u^2, the variance of the cluster total estimates
// across all n consumed clusters (implicit zero clusters included via
// n and the zero contributions to the sums).
func (r *MultiStageReducer) su2(agg *keyAgg) float64 {
	if r.n < 2 {
		return 0
	}
	n := float64(r.n)
	mean := agg.sumTau / n
	v := (agg.sumTau2 - n*mean*mean) / (n - 1)
	if v < 0 {
		return 0
	}
	return v
}

func (r *MultiStageReducer) estimate(agg *keyAgg, view mapreduce.EstimateView) stats.Estimate {
	N := float64(view.TotalMaps)
	n := float64(r.n)
	est := stats.Estimate{Conf: view.Confidence, DF: n - 1}
	if r.n == 0 {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	switch r.Op {
	case OpMean:
		if r.sumM == 0 {
			est.Err = math.Inf(1)
			est.StdErr = math.Inf(1)
			return est
		}
		b := agg.sumTau / r.sumM
		est.Value = b
		if r.exact(view) {
			return est
		}
		if r.n < 2 {
			est.Err = math.Inf(1)
			est.StdErr = math.Inf(1)
			return est
		}
		// Residuals d_i = tau_i - b*M_i have mean exactly zero, so
		// s_d^2 = sum(d_i^2) / (n-1) with
		// sum(d_i^2) = sumTau2 - 2b*sumTauM + b^2*sumM2.
		sd2 := (agg.sumTau2 - 2*b*agg.sumTauM + b*b*r.sumM2) / (n - 1)
		if sd2 < 0 {
			sd2 = 0
		}
		varTot := N*(N-n)*sd2/n + N/n*agg.within
		if varTot < 0 {
			varTot = 0
		}
		tx := N / n * r.sumM
		est.StdErr = math.Sqrt(varTot) / tx
		est.Err = stats.TwoSidedT(view.Confidence, n-1) * est.StdErr
		return est
	default: // OpSum, OpCount
		est.Value = N / n * agg.sumTau
		if r.exact(view) {
			return est
		}
		if r.n < 2 {
			est.Err = math.Inf(1)
			est.StdErr = math.Inf(1)
			return est
		}
		between := N * (N - n) * r.su2(agg) / n
		if between < 0 {
			between = 0
		}
		variance := between + N/n*agg.within
		est.StdErr = math.Sqrt(variance)
		est.Err = stats.TwoSidedT(view.Confidence, n-1) * est.StdErr
		return est
	}
}

// Estimates implements mapreduce.ReduceLogic.
func (r *MultiStageReducer) Estimates(view mapreduce.EstimateView) []mapreduce.KeyEstimate {
	return r.Finalize(view)
}

// Finalize implements mapreduce.ReduceLogic.
func (r *MultiStageReducer) Finalize(view mapreduce.EstimateView) []mapreduce.KeyEstimate {
	exact := r.exact(view)
	out := make([]mapreduce.KeyEstimate, 0, len(r.keys))
	for key, agg := range r.keys {
		est := r.estimate(agg, view)
		out = append(out, mapreduce.KeyEstimate{Key: key, Est: est, Exact: exact})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// PlanComponent exposes, per key, the variance pieces the target-error
// controller needs to predict the effect of running n2 more tasks at
// sampling ratio m/M (Equations 6 and 7).
type PlanComponent struct {
	Key        string
	Tau        float64 // current point estimate of the total
	SU2        float64 // s_u^2: variance of per-cluster total estimates
	WithinDone float64 // sum over consumed clusters of M(M-m)s^2/m
	AvgWithin  float64 // mean within-cluster variance s_i^2
}

// PlanComponents returns planning statistics for every key seen so
// far. It requires at least two consumed clusters; otherwise nil.
func (r *MultiStageReducer) PlanComponents(view mapreduce.EstimateView) []PlanComponent {
	if r.n < 2 {
		return nil
	}
	N := float64(view.TotalMaps)
	n := float64(r.n)
	out := make([]PlanComponent, 0, len(r.keys))
	for key, agg := range r.keys {
		out = append(out, PlanComponent{
			Key:        key,
			Tau:        N / n * agg.sumTau,
			SU2:        r.su2(agg),
			WithinDone: agg.within,
			AvgWithin:  agg.sumS2 / n,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// PredictError evaluates the paper's Equations 4, 6 and 7: the
// predicted confidence-interval half width for a key if, on top of the
// n1 consumed clusters, n2 more clusters of Mbar units are executed
// with m of their units sampled each.
func PredictError(pc PlanComponent, totalMaps, n1, n2 int, mbar, m float64, confidence float64) float64 {
	n := n1 + n2
	if n < 2 {
		return math.Inf(1)
	}
	if m <= 0 {
		m = 1
	}
	if m > mbar {
		m = mbar
	}
	N := float64(totalMaps)
	fn := float64(n)
	between := N * (N - fn) * pc.SU2 / fn
	if between < 0 {
		between = 0
	}
	cvar := pc.WithinDone + float64(n2)*mbar*(mbar-m)*pc.AvgWithin/m
	variance := between + N/fn*cvar
	if variance < 0 {
		variance = 0
	}
	return stats.TwoSidedT(confidence, fn-1) * math.Sqrt(variance)
}
