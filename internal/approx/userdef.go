package approx

import (
	"math"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// PerTaskMappers implements the paper's third mechanism, user-defined
// approximation: the user supplies a precise and an approximate
// version of the map code and a fraction of tasks to run approximately
// ([19], Section 3). The returned factory plugs into
// mapreduce.Job.NewMapperFor; the choice is deterministic per (seed,
// taskID) so re-executions (speculation) pick the same variant.
//
// ApproxHadoop cannot bound the error of user-defined approximations;
// pair this with a user-supplied ReduceLogic that implements whatever
// quality metric the application defines.
func PerTaskMappers(approxRatio float64, seed int64, precise, approximate func() mapreduce.Mapper) func(taskID int) mapreduce.Mapper {
	if approxRatio < 0 {
		approxRatio = 0
	}
	if approxRatio > 1 {
		approxRatio = 1
	}
	return func(taskID int) mapreduce.Mapper {
		r := stats.NewRand(seed ^ (int64(taskID)+1)*1315423911)
		if r.Float64() < approxRatio {
			return approximate()
		}
		return precise()
	}
}

// RatioOfEstimates combines two interval estimates a/b into a ratio
// estimate with conservatively propagated bounds (interval division).
// Useful for derived metrics such as "average request size" = total
// bytes / total requests, each a MultiStageReducer sum.
func RatioOfEstimates(num, den stats.Estimate) stats.Estimate {
	out := stats.Estimate{Conf: num.Conf, DF: num.DF}
	if den.Value == 0 {
		out.Value = 0
		out.Err = 0
		return out
	}
	out.Value = num.Value / den.Value
	// Interval arithmetic: widest deviation of (num±e1)/(den∓e2).
	denLo := den.Lo()
	denHi := den.Hi()
	if denLo <= 0 && denHi >= 0 {
		// Denominator interval straddles zero: unbounded ratio.
		out.Err = math.Inf(1)
		return out
	}
	candidates := []float64{
		num.Lo() / denLo, num.Lo() / denHi,
		num.Hi() / denLo, num.Hi() / denHi,
	}
	lo, hi := stats.MinMax(candidates)
	half := hi - out.Value
	if out.Value-lo > half {
		half = out.Value - lo
	}
	out.Err = half
	return out
}
