package approx

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// countInput builds a generated file where each block holds `lines`
// lines, each line a small integer; the precise per-key totals are
// computable in closed form by running the generator directly.
func countInput(blocks, lines int, seed int64) (*dfs.File, map[string]float64) {
	gen := func(idx int, r dfs.RandSource, w io.Writer) error {
		for i := 0; i < lines; i++ {
			k := r.Int63() % 5
			v := r.Int63()%9 + 1
			if _, err := fmt.Fprintf(w, "k%d %d\n", k, v); err != nil {
				return err
			}
		}
		return nil
	}
	f := dfs.GeneratedFile("counts", blocks, seed, 0, int64(lines), gen)
	// Compute ground truth by reading every block precisely.
	want := map[string]float64{}
	for _, b := range f.Blocks {
		rc := b.Open()
		s := bufio.NewScanner(rc)
		for s.Scan() {
			var k string
			var v float64
			fmt.Sscanf(s.Text(), "%s %f", &k, &v)
			want[k] += v
		}
		rc.Close()
	}
	return f, want
}

func sumMapper() mapreduce.Mapper {
	return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
		var k string
		var v float64
		fmt.Sscanf(rec.Value, "%s %f", &k, &v)
		emit.Emit(k, v)
	})
}

func approxEngine() *cluster.Engine {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 4
	cfg.ReduceSlotsPerServer = 1
	return cluster.New(cfg)
}

func sumJob(input *dfs.File, ctl mapreduce.Controller) *mapreduce.Job {
	return &mapreduce.Job{
		Name:       "approx-sum",
		Input:      input,
		Format:     ApproxTextInput{},
		NewMapper:  sumMapper,
		NewReduce:  func(int) mapreduce.ReduceLogic { return NewMultiStageReducer(OpSum) },
		Reduces:    2,
		Combine:    true,
		Controller: ctl,
		Seed:       11,
		Cost:       cluster.AnalyticCost{T0: 1, Tr: 1e-4, Tp: 1e-3},
	}
}

func TestSamplingReaderCounts(t *testing.T) {
	f, _ := countInput(1, 1000, 3)
	rr, err := ApproxTextInput{}.Open(f.Blocks[0], 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	n := 0
	for {
		_, ok, err := rr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	m := rr.Measure()
	if m.Items != 1000 {
		t.Errorf("Items = %d, want 1000 (all lines scanned)", m.Items)
	}
	if int64(n) != m.Sampled {
		t.Errorf("returned %d records but Sampled = %d", n, m.Sampled)
	}
	if m.Sampled < 120 || m.Sampled > 280 {
		t.Errorf("20%% sample of 1000 gave %d (implausible)", m.Sampled)
	}
	if m.Bytes == 0 || m.ReadSecs < 0 {
		t.Errorf("measure incomplete: %+v", m)
	}
}

func TestSamplingReaderDeterministic(t *testing.T) {
	f, _ := countInput(1, 200, 3)
	read := func() []string {
		rr, _ := ApproxTextInput{}.Open(f.Blocks[0], 0.5, 7)
		defer rr.Close()
		var keys []string
		for {
			rec, ok, _ := rr.Next()
			if !ok {
				break
			}
			keys = append(keys, rec.Key)
		}
		return keys
	}
	a, b := read(), read()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sample: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sample differs between reads with same seed")
		}
	}
}

func TestSamplingRatioOneIsExhaustive(t *testing.T) {
	f, _ := countInput(1, 100, 5)
	rr, _ := ApproxTextInput{}.Open(f.Blocks[0], 1.0, 7)
	defer rr.Close()
	n := 0
	for {
		_, ok, _ := rr.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Errorf("ratio 1 returned %d of 100", n)
	}
}

func TestStaticSamplingBoundsContainTruth(t *testing.T) {
	input, want := countInput(20, 500, 9)
	res, err := mapreduce.Run(approxEngine(), sumJob(input, NewStatic(0.2, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != len(want) {
		t.Fatalf("got %d keys, want %d", len(res.Outputs), len(want))
	}
	within := 0
	for _, o := range res.Outputs {
		truth := want[o.Key]
		if o.Exact {
			t.Errorf("sampled run should not be exact")
		}
		if o.Est.Err <= 0 || math.IsInf(o.Est.Err, 1) {
			t.Errorf("key %s: bad error bound %v", o.Key, o.Est.Err)
		}
		if o.Est.Lo() <= truth && truth <= o.Est.Hi() {
			within++
		}
		if rel := math.Abs(o.Est.Value-truth) / truth; rel > 0.25 {
			t.Errorf("key %s: estimate %v too far from %v", o.Key, o.Est.Value, truth)
		}
	}
	if within < len(want)-1 {
		t.Errorf("only %d/%d keys within 95%% CI", within, len(want))
	}
}

func TestStaticDroppingRunsFewerMaps(t *testing.T) {
	input, want := countInput(20, 300, 13)
	res, err := mapreduce.Run(approxEngine(), sumJob(input, NewStatic(1, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsCompleted != 10 || res.Counters.MapsDropped != 10 {
		t.Errorf("counters: %+v", res.Counters)
	}
	for _, o := range res.Outputs {
		truth := want[o.Key]
		if rel := math.Abs(o.Est.Value-truth) / truth; rel > 0.35 {
			t.Errorf("key %s: estimate %v vs %v", o.Key, o.Est.Value, truth)
		}
	}
}

func TestDroppingWidensBoundsVsSampling(t *testing.T) {
	// Same effective data fraction (50%), but dropped blocks randomize
	// less than in-block sampling when M >> N (Section 5.2). Use a
	// multi-wave job: dropping cannot shorten a single-wave job (the
	// paper's own observation in Section 5.4).
	input, _ := countInput(48, 400, 21)
	sampled, err := mapreduce.Run(approxEngine(), sumJob(input, NewStatic(0.5, 0)))
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := mapreduce.Run(approxEngine(), sumJob(input, NewStatic(1, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	if dropped.MaxRelErr() <= sampled.MaxRelErr() {
		t.Errorf("dropping CI %.4f should exceed sampling CI %.4f",
			dropped.MaxRelErr(), sampled.MaxRelErr())
	}
	// And dropping should be faster: it skips whole-block reads.
	if dropped.Runtime >= sampled.Runtime {
		t.Errorf("dropping runtime %v should beat sampling runtime %v",
			dropped.Runtime, sampled.Runtime)
	}
}

func TestPreciseViaApproxStackIsExact(t *testing.T) {
	input, want := countInput(8, 200, 33)
	res, err := mapreduce.Run(approxEngine(), sumJob(input, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outputs {
		if !o.Exact || o.Est.Err != 0 {
			t.Errorf("key %s should be exact: %+v", o.Key, o.Est)
		}
		if !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("key %s = %v, want %v", o.Key, o.Est.Value, want[o.Key])
		}
	}
}

func TestTargetErrorMeetsBound(t *testing.T) {
	input, want := countInput(40, 400, 55)
	target := 0.02
	job := sumJob(input, &TargetError{Target: target})
	res, err := mapreduce.Run(approxEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MaxRelErr(); got > target {
		t.Errorf("reported bound %.4f exceeds target %.4f", got, target)
	}
	for _, o := range res.Outputs {
		truth := want[o.Key]
		if math.Abs(o.Est.Value-truth)/truth > 3*target {
			t.Errorf("key %s way off: %v vs %v", o.Key, o.Est.Value, truth)
		}
	}
	if res.Counters.MapsCompleted >= res.Counters.MapsTotal {
		t.Errorf("a loose 2%% target should allow approximation: %+v", res.Counters)
	}
}

func TestTargetErrorTinyTargetRunsPrecise(t *testing.T) {
	input, want := countInput(12, 200, 77)
	job := sumJob(input, &TargetError{Target: 1e-9})
	res, err := mapreduce.Run(approxEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("impossible target should run everything: %+v", res.Counters)
	}
	for _, o := range res.Outputs {
		if !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("key %s = %v, want %v", o.Key, o.Est.Value, want[o.Key])
		}
	}
}

// worstAbsRelErr returns the relative CI of the key with the largest
// predicted absolute error — the quantity the paper reports and the
// default controller constrains.
func worstAbsRelErr(res *mapreduce.Result) float64 {
	worst := -1.0
	rel := 0.0
	for _, o := range res.Outputs {
		if !math.IsInf(o.Est.Err, 1) && o.Est.Err > worst {
			worst = o.Est.Err
			rel = o.Est.RelErr()
		}
	}
	return rel
}

func TestTargetErrorPilot(t *testing.T) {
	input, _ := countInput(40, 400, 91)
	job := sumJob(input, &TargetError{Target: 0.05, Pilot: true, PilotRatio: 0.05, PilotTasks: 4})
	res, err := mapreduce.Run(approxEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := worstAbsRelErr(res); got > 0.05 {
		t.Errorf("pilot run bound %.4f exceeds target", got)
	}
	if res.Counters.ItemsProcessed >= res.Counters.ItemsTotal {
		t.Error("pilot mode should sample")
	}
}

func TestTargetErrorStrictBoundsEveryKey(t *testing.T) {
	// Strict mode applies the relative target to every key; with the
	// near-uniform key weights of countInput this remains feasible.
	input, _ := countInput(40, 400, 55)
	job := sumJob(input, &TargetError{Target: 0.03, Strict: true})
	res, err := mapreduce.Run(approxEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MaxRelErr(); got > 0.03 {
		t.Errorf("strict bound %.4f exceeds target on some key", got)
	}
}

func TestMultiStageMeanOp(t *testing.T) {
	r := NewMultiStageReducer(OpMean)
	view := mapreduce.EstimateView{TotalMaps: 2, Consumed: 2, Confidence: 0.95}
	for task := 0; task < 2; task++ {
		out := &mapreduce.MapOutput{TaskID: task, Items: 4, Sampled: 4,
			Pairs: []mapreduce.KV{{Key: "k", Value: 2}, {Key: "k", Value: 2},
				{Key: "k", Value: 4}, {Key: "k", Value: 4}}}
		r.Consume(out)
	}
	out := r.Finalize(view)
	if len(out) != 1 || !stats.AlmostEqual(out[0].Est.Value, 3, 1e-9) {
		t.Errorf("mean = %+v", out)
	}
	if !out[0].Exact {
		t.Error("full consumption should be exact")
	}
	if OpSum.String() != "sum" || OpCount.String() != "count" || OpMean.String() != "mean" {
		t.Error("AggOp strings")
	}
}

func TestPlanComponentsAndPrediction(t *testing.T) {
	r := NewMultiStageReducer(OpSum)
	view := mapreduce.EstimateView{TotalMaps: 10, Consumed: 4, Confidence: 0.95}
	for task := 0; task < 4; task++ {
		var rs stats.RunningStat
		for i := 0; i < 50; i++ {
			rs.Add(float64(1 + (task+i)%3))
		}
		r.Consume(&mapreduce.MapOutput{TaskID: task, Items: 100, Sampled: 50,
			Combined: map[string]stats.RunningStat{"k": rs}})
	}
	comps := r.PlanComponents(view)
	if len(comps) != 1 {
		t.Fatalf("want 1 component, got %d", len(comps))
	}
	pc := comps[0]
	if pc.Tau <= 0 || pc.AvgWithin < 0 || pc.WithinDone < 0 {
		t.Errorf("bad components: %+v", pc)
	}
	// More clusters or larger within-samples must shrink the bound.
	base := PredictError(pc, 10, 4, 2, 100, 50, 0.95)
	moreClusters := PredictError(pc, 10, 4, 6, 100, 50, 0.95)
	moreSampling := PredictError(pc, 10, 4, 2, 100, 100, 0.95)
	if moreClusters >= base {
		t.Errorf("more clusters should shrink error: %v >= %v", moreClusters, base)
	}
	if moreSampling > base {
		t.Errorf("more in-cluster sampling should not widen error: %v > %v", moreSampling, base)
	}
	if got := PredictError(pc, 10, 1, 0, 100, 50, 0.95); !math.IsInf(got, 1) {
		t.Errorf("n < 2 should be infeasible, got %v", got)
	}
}

func TestGEVReducerExactWhenComplete(t *testing.T) {
	r := NewMinReducer()
	view := mapreduce.EstimateView{TotalMaps: 3, Consumed: 3, Confidence: 0.95}
	for task := 0; task < 3; task++ {
		r.Consume(&mapreduce.MapOutput{TaskID: task, Items: 1, Sampled: 1,
			Pairs: []mapreduce.KV{{Key: "min", Value: float64(10 - task)}}})
	}
	out := r.Finalize(view)
	if len(out) != 1 || !stats.AlmostEqual(out[0].Est.Value, 8, 1e-9) || !out[0].Exact {
		t.Errorf("exact min = %+v", out)
	}
}

func TestGEVReducerBoundsWithDrops(t *testing.T) {
	r := NewMinReducer()
	rng := stats.NewRand(5)
	n := 40
	view := mapreduce.EstimateView{TotalMaps: 100, Consumed: n, Dropped: 60, Confidence: 0.95}
	obs := math.Inf(1)
	for task := 0; task < n; task++ {
		v := 100 + rng.NormFloat64()*5
		if v < obs {
			obs = v
		}
		r.Consume(&mapreduce.MapOutput{TaskID: task, Items: 1, Sampled: 1,
			Pairs: []mapreduce.KV{{Key: "min", Value: v}}})
	}
	out := r.Finalize(view)
	if len(out) != 1 {
		t.Fatal("missing output")
	}
	e := out[0]
	if e.Exact {
		t.Error("dropped run cannot be exact")
	}
	if !stats.AlmostEqual(e.Est.Value, obs, 1e-12) {
		t.Errorf("value should be the observed min: %v vs %v", e.Est.Value, obs)
	}
	if e.Est.Err <= 0 || math.IsInf(e.Est.Err, 1) {
		t.Errorf("expected finite positive GEV bound, got %v", e.Est.Err)
	}
	if got, ok := r.Observed("min"); !ok || !stats.AlmostEqual(got, obs, 1e-12) {
		t.Errorf("Observed = %v, %v", got, ok)
	}
	if _, ok := r.Observed("absent"); ok {
		t.Error("absent key should not be observed")
	}
}

func TestGEVReducerTooFewSamples(t *testing.T) {
	r := NewMinReducer()
	view := mapreduce.EstimateView{TotalMaps: 10, Consumed: 3, Dropped: 7, Confidence: 0.95}
	for task := 0; task < 3; task++ {
		r.Consume(&mapreduce.MapOutput{TaskID: task, Items: 1, Sampled: 1,
			Pairs: []mapreduce.KV{{Key: "min", Value: float64(task)}}})
	}
	out := r.Finalize(view)
	if !math.IsInf(out[0].Est.Err, 1) {
		t.Errorf("tiny sample should give infinite bound, got %v", out[0].Est.Err)
	}
}

func TestGEVReducerCombinerMisuse(t *testing.T) {
	r := NewMinReducer()
	view := mapreduce.EstimateView{TotalMaps: 2, Consumed: 1, Confidence: 0.95}
	r.Consume(&mapreduce.MapOutput{TaskID: 0, Items: 1, Sampled: 1,
		Combined: map[string]stats.RunningStat{"min": {Count: 1, Sum: 5, SumSq: 25}}})
	out := r.Finalize(view)
	if len(out) != 0 {
		// No raw values recorded; nothing to report.
		t.Errorf("combined-only consumption should yield no raw outputs: %+v", out)
	}
}

func TestGEVReducerBlockTransform(t *testing.T) {
	r := &ExtremeValueReducer{Min: true, AlreadyExtrema: false, Blocks: 10, MinSample: 5}
	rng := stats.NewRand(9)
	view := mapreduce.EstimateView{TotalMaps: 4, Consumed: 2, Dropped: 2, Confidence: 0.95}
	var pairs []mapreduce.KV
	for i := 0; i < 500; i++ {
		pairs = append(pairs, mapreduce.KV{Key: "m", Value: 50 + rng.NormFloat64()*10})
	}
	r.Consume(&mapreduce.MapOutput{TaskID: 0, Items: 500, Sampled: 500, Pairs: pairs})
	out := r.Finalize(view)
	if len(out) != 1 || math.IsInf(out[0].Est.Err, 1) || out[0].Est.Err < 0 {
		t.Errorf("block-transformed fit failed: %+v", out)
	}
}

func TestTargetErrorGEVStopsEarly(t *testing.T) {
	// Maps output minima of a search; a loose bound stops the job early.
	blocks := 60
	gen := func(idx int, r dfs.RandSource, w io.Writer) error {
		_, err := fmt.Fprintf(w, "seed %d\n", r.Int63()%1000)
		return err
	}
	input := dfs.GeneratedFile("opt", blocks, 3, 0, 1, gen)
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			var tag string
			var seed int64
			fmt.Sscanf(rec.Value, "%s %d", &tag, &seed)
			r := stats.NewRand(seed)
			best := math.Inf(1)
			for i := 0; i < 200; i++ {
				v := 100 + r.NormFloat64()*3
				if v < best {
					best = v
				}
			}
			emit.Emit("min", best)
		})
	}
	job := &mapreduce.Job{
		Name:       "opt",
		Input:      input,
		NewMapper:  mapper,
		NewReduce:  func(int) mapreduce.ReduceLogic { return NewMinReducer() },
		Reduces:    1,
		Controller: &TargetErrorGEV{Target: 0.10, MinMaps: 10},
		Seed:       2,
		Cost:       cluster.AnalyticCost{T0: 5, Tr: 1e-3, Tp: 1e-3},
	}
	res, err := mapreduce.Run(approxEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsCompleted >= blocks {
		t.Errorf("10%% GEV target should stop early: %+v", res.Counters)
	}
	if got := res.MaxRelErr(); got > 0.10 {
		t.Errorf("bound %.4f exceeds target", got)
	}
}

func TestPerTaskMappers(t *testing.T) {
	precise := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(r mapreduce.Record, e mapreduce.Emitter) { e.Emit("p", 1) })
	}
	approxM := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(r mapreduce.Record, e mapreduce.Emitter) { e.Emit("a", 1) })
	}
	factory := PerTaskMappers(0.5, 7, precise, approxM)
	counts := map[string]int{}
	for task := 0; task < 200; task++ {
		m := factory(task)
		m.Map(mapreduce.Record{}, emitterFunc(func(k string, v float64) { counts[k]++ }))
		// Deterministic per task:
		m2 := factory(task)
		var k2 string
		m2.Map(mapreduce.Record{}, emitterFunc(func(k string, v float64) { k2 = k }))
		_ = k2
	}
	if counts["a"] < 60 || counts["a"] > 140 {
		t.Errorf("approx fraction implausible: %+v", counts)
	}
	all := PerTaskMappers(1.5, 7, precise, approxM) // clamped to 1
	var k string
	all(3).Map(mapreduce.Record{}, emitterFunc(func(kk string, v float64) { k = kk }))
	if k != "a" {
		t.Error("ratio > 1 should clamp to always-approximate")
	}
	none := PerTaskMappers(-1, 7, precise, approxM)
	none(3).Map(mapreduce.Record{}, emitterFunc(func(kk string, v float64) { k = kk }))
	if k != "p" {
		t.Error("ratio < 0 should clamp to always-precise")
	}
}

type emitterFunc func(string, float64)

func (f emitterFunc) Emit(k string, v float64) { f(k, v) }

func TestRatioOfEstimates(t *testing.T) {
	num := stats.Estimate{Value: 100, Err: 10, Conf: 0.95}
	den := stats.Estimate{Value: 50, Err: 5, Conf: 0.95}
	r := RatioOfEstimates(num, den)
	if !stats.AlmostEqual(r.Value, 2, 1e-12) {
		t.Errorf("ratio = %v", r.Value)
	}
	// Extremes: 90/55 ~ 1.636, 110/45 ~ 2.444 -> half-width >= 0.444.
	if r.Err < 0.44 || r.Err > 0.6 {
		t.Errorf("ratio error %v implausible", r.Err)
	}
	z := RatioOfEstimates(num, stats.Estimate{Value: 0})
	if z.Value != 0 {
		t.Error("zero denominator should yield zero value sentinel")
	}
	s := RatioOfEstimates(num, stats.Estimate{Value: 1, Err: 2})
	if !math.IsInf(s.Err, 1) {
		t.Error("denominator straddling zero should be unbounded")
	}
}

func TestStaticClamps(t *testing.T) {
	s := NewStatic(-0.5, 2)
	if !stats.AlmostEqual(s.SampleRatio, 1, 1e-12) || !stats.AlmostEqual(s.DropRatio, 1, 1e-12) {
		t.Errorf("clamps: %+v", s)
	}
	if s.Name() == "" {
		t.Error("name empty")
	}
	if (&TargetError{Target: 0.01}).Name() == "" {
		t.Error("target name empty")
	}
	if (&TargetErrorGEV{Target: 0.01}).Name() == "" {
		t.Error("gev name empty")
	}
}

func TestStaticDropEverything(t *testing.T) {
	input, _ := countInput(6, 50, 2)
	res, err := mapreduce.Run(approxEngine(), sumJob(input, NewStatic(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsCompleted != 0 || res.Counters.MapsDropped != 6 {
		t.Errorf("drop-all counters: %+v", res.Counters)
	}
}
