package approx

import (
	"fmt"
	"math"

	"approxhadoop/internal/mapreduce"
)

// TargetError is the controller for user-specified target error bounds
// over multi-stage-sampling jobs (Sections 4.2 and 4.4).
//
// Operation: the first wave of maps runs precisely (or, with Pilot, a
// small pilot wave runs at PilotRatio). Once that wave completes, the
// controller gathers per-key variance components from the job's
// MultiStageReducers and the fitted cost parameters (t0, tr, tp), and
// solves
//
//	minimize   RET = n2 * t_map(Mbar, m) = n2 * (t0 + Mbar*tr + m*tp)
//	subject to t_{n-1,1-a/2} * sqrt(Var(tau)) <= Target * tau   (all keys)
//
// over the number of additional map tasks n2 and the per-task sample
// size m, by scanning m over a ratio grid and binary-searching the
// minimal feasible n2 (variance decreases monotonically in n). The
// solution is re-derived at every subsequent wave boundary with the
// accumulated statistics. If no approximation satisfies the target,
// the job simply runs to completion precisely.
type TargetError struct {
	// Target is the relative error bound (e.g. 0.01 for ±1% of each
	// key's estimate). Zero disables the relative constraint.
	Target float64
	// Absolute, when positive, additionally bounds the absolute
	// half-width of every key's interval.
	Absolute float64
	// Pilot runs a small first wave at PilotRatio instead of a full
	// precise wave (Section 4.4's pilot sample, needed for jobs whose
	// maps would otherwise complete in a single wave).
	Pilot      bool
	PilotTasks int     // default: 1/4 of the map slots (min 2)
	PilotRatio float64 // default 0.01
	// RatioGrid overrides the sampling-ratio candidates for m.
	RatioGrid []float64
	// Slack multiplies the targets during planning (default 0.8): the
	// plan is derived from noisy first-wave/pilot statistics, so
	// planning against a slightly tighter bound absorbs estimation
	// noise and keeps the realized interval inside the user's target
	// (the paper reports meeting the target in every experiment).
	Slack float64
	// Strict applies the relative Target to every key individually.
	// The default (false) applies it to the key with the maximum
	// predicted absolute error — the key the paper reports errors for.
	// Strict mode is the conservative reading of Section 4.2, but with
	// heavy-tailed key distributions (e.g. page popularity) the rarest
	// key can never satisfy a relative bound and strict mode degrades
	// to precise execution.
	Strict bool

	firstWave int
	ratio     float64 // sampling ratio for post-solve launches
	planned   int     // total maps to launch; 0 = unbounded
	solved    bool
	solveAt   int // completed count that triggers the next re-solve
}

// Name implements mapreduce.Controller.
func (c *TargetError) Name() string {
	return fmt.Sprintf("target-error(%.3g%%)", c.Target*100)
}

func defaultRatioGrid() []float64 {
	return []float64{1, 0.75, 0.5, 0.25, 0.1, 0.05, 0.025, 0.01, 0.005, 0.002, 0.001}
}

func (c *TargetError) init(v *mapreduce.JobView) {
	if c.firstWave > 0 {
		return
	}
	if c.Pilot {
		if c.PilotTasks <= 0 {
			c.PilotTasks = v.TotalMapSlots / 4
			if c.PilotTasks < 2 {
				c.PilotTasks = 2
			}
		}
		if c.PilotTasks > v.TotalMaps {
			c.PilotTasks = v.TotalMaps
		}
		if c.PilotRatio <= 0 || c.PilotRatio > 1 {
			c.PilotRatio = 0.01
		}
		c.firstWave = c.PilotTasks
	} else {
		c.firstWave = v.TotalMapSlots
		if c.firstWave > v.TotalMaps {
			c.firstWave = v.TotalMaps
		}
	}
}

// Plan implements mapreduce.Controller.
func (c *TargetError) Plan(v *mapreduce.JobView) (float64, mapreduce.PlanAction) {
	c.init(v)
	if !c.solved {
		if v.Launched < c.firstWave {
			if c.Pilot {
				return c.PilotRatio, mapreduce.PlanRun
			}
			return 1, mapreduce.PlanRun
		}
		// First wave fully launched: wait for it before deciding.
		return 0, mapreduce.PlanDefer
	}
	if c.planned > 0 && v.Launched >= c.planned {
		// Plan reached: hold the remaining tasks pending (rather than
		// dropping them outright) until the realized bound of the
		// planned tasks is confirmed; Completed either drops them or
		// extends the plan.
		return 0, mapreduce.PlanDefer
	}
	return c.ratio, mapreduce.PlanRun
}

// Completed implements mapreduce.Controller.
func (c *TargetError) Completed(v *mapreduce.JobView) mapreduce.Directive {
	c.init(v)
	switch {
	case !c.solved:
		if v.Completed < c.firstWave {
			return mapreduce.Directive{}
		}
		c.solve(v)
	case c.planned > 0 && v.Launched >= c.planned && v.Running == 0:
		// The planned tasks have all finished. Verify the realized
		// bound: if it meets the user's target, drop everything still
		// pending; otherwise extend the plan with the (now much
		// richer) statistics — the closed loop that lets ApproxHadoop
		// meet the target in every run even when first-wave estimates
		// were noisy.
		if c.realizedMet(v) || v.Pending == 0 {
			return mapreduce.Directive{DropPending: true, SampleRatio: c.ratio}
		}
		c.solve(v)
		if c.planned <= v.Launched {
			// The re-solve believes the target is met but the
			// realized bound disagrees (estimation noise): run one
			// more wave-quarter of precise tasks to tighten.
			extra := v.TotalMapSlots / 4
			if extra < 1 {
				extra = 1
			}
			c.planned = v.Launched + extra
			c.ratio = 1
		}
	case v.Completed >= c.solveAt && (c.planned == 0 || v.Launched < c.planned):
		// Wave boundary: refine the plan with the richer statistics.
		c.solve(v)
	default:
		return mapreduce.Directive{}
	}
	return mapreduce.Directive{SampleRatio: c.ratio}
}

// realizedMet checks the job's current (realized) error bounds against
// the user's targets, without the planning slack.
func (c *TargetError) realizedMet(v *mapreduce.JobView) bool {
	if v.Estimates == nil {
		return true
	}
	ests := v.Estimates()
	if len(ests) == 0 {
		return true // no online estimates (e.g. barrier mode)
	}
	metRaw := func(errHalf, value float64) bool {
		if math.IsInf(errHalf, 1) || math.IsNaN(errHalf) {
			return false
		}
		if c.Target > 0 {
			if value == 0 {
				if errHalf > 0 {
					return false
				}
			} else if errHalf > c.Target*math.Abs(value) {
				return false
			}
		}
		if c.Absolute > 0 && errHalf > c.Absolute {
			return false
		}
		return true
	}
	if c.Strict {
		for _, e := range ests {
			if !metRaw(e.Est.Err, e.Est.Value) {
				return false
			}
		}
		return true
	}
	worstErr, worstVal := 0.0, 0.0
	for _, e := range ests {
		if math.IsInf(e.Est.Err, 1) || math.IsNaN(e.Est.Err) {
			return false
		}
		if e.Est.Err > worstErr {
			worstErr, worstVal = e.Est.Err, e.Est.Value
		}
	}
	return metRaw(worstErr, worstVal)
}

// solve runs the Section 4.4 optimization and stores the plan.
func (c *TargetError) solve(v *mapreduce.JobView) {
	c.solved = true
	c.solveAt = v.Completed + v.TotalMapSlots // next wave boundary
	// Fallback: no approximation possible — run everything precisely.
	c.ratio = 1
	c.planned = 0

	comps := c.gatherComponents(v)
	if len(comps) == 0 || v.Completed < 2 || v.AvgItems <= 0 {
		return
	}
	t0, tr, tp := v.CostParams()
	mbar := v.AvgItems
	n1 := v.Completed
	committed := v.Running // already launched, will complete regardless
	maxExtra := v.TotalMaps - v.Launched
	if maxExtra < 0 {
		maxExtra = 0
	}
	grid := c.RatioGrid
	if len(grid) == 0 {
		grid = defaultRatioGrid()
	}

	feasible := func(n2 int, m float64) bool {
		if c.Strict {
			for _, pc := range comps {
				errHalf := PredictError(pc, v.TotalMaps, n1, n2, mbar, m, v.Confidence)
				if !c.meets(errHalf, pc.Tau) {
					return false
				}
			}
			return true
		}
		// Default: bound the key with the maximum predicted absolute
		// error (the paper's reported key).
		worstErr := 0.0
		worstTau := 0.0
		for _, pc := range comps {
			errHalf := PredictError(pc, v.TotalMaps, n1, n2, mbar, m, v.Confidence)
			if math.IsInf(errHalf, 1) || math.IsNaN(errHalf) {
				return false
			}
			if errHalf > worstErr {
				worstErr, worstTau = errHalf, pc.Tau
			}
		}
		return c.meets(worstErr, worstTau)
	}

	bestRET := math.Inf(1)
	found := false
	var bestExtra int
	var bestRatio float64
	for _, ratio := range grid {
		m := math.Max(1, math.Round(ratio*mbar))
		hi := committed + maxExtra
		if !feasible(hi, m) {
			continue
		}
		// Binary search the minimal feasible n2 in [committed, hi].
		lo := committed
		for lo < hi {
			mid := (lo + hi) / 2
			if feasible(mid, m) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		extra := lo - committed
		ret := float64(extra) * (t0 + mbar*tr + m*tp)
		if ret < bestRET {
			bestRET = ret
			bestExtra = extra
			bestRatio = m / mbar
			found = true
		}
	}
	if !found {
		return // keep precise fallback
	}
	if bestRatio > 1 {
		bestRatio = 1
	}
	c.ratio = bestRatio
	// planned == launched means everything still pending is dropped.
	// MaxLaunch must stay positive to take effect, hence the floor.
	c.planned = v.Launched + bestExtra
	if c.planned < 1 {
		c.planned = 1
	}
}

// meets checks one key's predicted half-width against the targets,
// tightened by the planning slack.
func (c *TargetError) meets(errHalf, tau float64) bool {
	if math.IsInf(errHalf, 1) || math.IsNaN(errHalf) {
		return false
	}
	slack := c.Slack
	if slack <= 0 || slack > 1 {
		slack = 0.8
	}
	if c.Target > 0 {
		if tau == 0 {
			if errHalf > 0 {
				return false
			}
		} else if errHalf > slack*c.Target*math.Abs(tau) {
			return false
		}
	}
	if c.Absolute > 0 && errHalf > slack*c.Absolute {
		return false
	}
	return true
}

// gatherComponents pulls planning statistics from every partition's
// MultiStageReducer.
func (c *TargetError) gatherComponents(v *mapreduce.JobView) []PlanComponent {
	return gatherPlanComponents(v)
}
