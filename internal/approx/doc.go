// Package approx is ApproxHadoop: the approximation layer on top of
// the mapreduce framework, implementing the paper's three mechanisms
// and its error-bound machinery.
//
// Mechanisms (Section 3):
//
//   - Input data sampling: ApproxTextInput parses a block like the
//     precise TextInputFormat but returns a random subset of records
//     at the requested sampling ratio (the paper's
//     ApproxTextInputFormat).
//   - Task dropping: the Static controller drops a user-specified
//     fraction of map tasks; target-error controllers drop and kill
//     tasks dynamically.
//   - User-defined approximation: PerTaskMappers selects between a
//     precise and an approximate map implementation per task.
//
// Error bounds:
//
//   - MultiStageReducer applies two-stage sampling theory to
//     aggregations (sum / count / average), tagging every cluster with
//     its map task ID and block unit counts, exactly as Section 4.4
//     describes. Sampled-away units count as implicit zeros.
//   - ExtremeValueReducer fits a Generalized Extreme Value
//     distribution (Block Minima/Maxima + MLE) to min/max
//     computations, per Section 3.2.
//
// Controllers (Section 4.2):
//
//   - Static: user-specified dropping and/or sampling ratios; bounds
//     are computed for the chosen ratios.
//   - TargetError: user-specified target error bound; after the first
//     wave (or a cheap pilot wave) it solves the optimization problem
//     of Section 4.4 — minimize remaining execution time
//     n2 * t_map(M, m) subject to the predicted confidence interval
//     staying within the target — and re-solves each wave.
//   - TargetErrorGEV: kills all outstanding maps the moment the
//     GEV-based interval meets the target (Section 4.5).
//
// Beyond the paper's core mechanisms, the package implements the
// mitigations Section 3.1 sketches for missed intermediate keys:
// FinalizeWithKnownKeys reports unobserved known keys as 0 plus a
// bound, and DistinctKeys extrapolates the total key-space size with
// the Chao1 estimator (the paper cites Haas et al. for this). The
// opt-in ThreeStageReducer estimates per-pair means when the
// population units are the intermediate pairs rather than the input
// items (three-stage sampling).
package approx
