package approx

import (
	"math"
	"testing"
	"testing/quick"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// genOutputs builds a deterministic set of map outputs from a seed.
func genOutputs(seed int64, clusters int) []*mapreduce.MapOutput {
	rng := stats.NewRand(seed)
	outs := make([]*mapreduce.MapOutput, clusters)
	for i := range outs {
		M := int64(50 + rng.Intn(100))
		m := int64(10 + rng.Intn(int(M)-10))
		var pairs []mapreduce.KV
		for j := int64(0); j < m; j++ {
			if rng.Float64() < 0.6 {
				key := []string{"a", "b", "c"}[rng.Intn(3)]
				pairs = append(pairs, mapreduce.KV{Key: key, Value: rng.Float64() * 10})
			}
		}
		outs[i] = &mapreduce.MapOutput{TaskID: i, Items: M, Sampled: m, Pairs: pairs}
	}
	return outs
}

// combinedCopy converts a raw output into its combiner-compacted form.
func combinedCopy(out *mapreduce.MapOutput) *mapreduce.MapOutput {
	comb := make(map[string]stats.RunningStat)
	for _, kv := range out.Pairs {
		rs := comb[kv.Key]
		rs.Add(kv.Value)
		comb[kv.Key] = rs
	}
	return &mapreduce.MapOutput{TaskID: out.TaskID, Items: out.Items, Sampled: out.Sampled, Combined: comb}
}

func estimatesEqual(a, b []mapreduce.KeyEstimate, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			return false
		}
		if math.Abs(a[i].Est.Value-b[i].Est.Value) > tol*(1+math.Abs(b[i].Est.Value)) {
			return false
		}
		ea, eb := a[i].Est.Err, b[i].Est.Err
		if math.IsInf(ea, 1) != math.IsInf(eb, 1) {
			return false
		}
		if !math.IsInf(ea, 1) && math.Abs(ea-eb) > tol*(1+math.Abs(eb)) {
			return false
		}
	}
	return true
}

// TestPropertyConsumeOrderInvariance: the multi-stage estimators are
// symmetric in their clusters, so any consumption order must give the
// same estimates.
func TestPropertyConsumeOrderInvariance(t *testing.T) {
	err := quick.Check(func(seedRaw uint32, permSeed uint32) bool {
		outs := genOutputs(int64(seedRaw%1000), 8)
		view := mapreduce.EstimateView{TotalMaps: 16, Consumed: 8, Confidence: 0.95}

		fwd := NewMultiStageReducer(OpSum)
		for _, o := range outs {
			fwd.Consume(o)
		}
		perm := stats.NewRand(int64(permSeed)).Perm(len(outs))
		shuf := NewMultiStageReducer(OpSum)
		for _, i := range perm {
			shuf.Consume(outs[i])
		}
		return estimatesEqual(fwd.Finalize(view), shuf.Finalize(view), 1e-9)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyCombinerEquivalence: combiner-compacted outputs must
// produce exactly the same estimates as raw pairs.
func TestPropertyCombinerEquivalence(t *testing.T) {
	for _, op := range []AggOp{OpSum, OpMean} {
		err := quick.Check(func(seedRaw uint32) bool {
			outs := genOutputs(int64(seedRaw%1000)+7, 6)
			view := mapreduce.EstimateView{TotalMaps: 10, Consumed: 6, Confidence: 0.95}
			raw := NewMultiStageReducer(op)
			comb := NewMultiStageReducer(op)
			for _, o := range outs {
				raw.Consume(o)
				comb.Consume(combinedCopy(o))
			}
			return estimatesEqual(raw.Finalize(view), comb.Finalize(view), 1e-9)
		}, &quick.Config{MaxCount: 20})
		if err != nil {
			t.Errorf("op %v: %v", op, err)
		}
	}
}

// TestPropertyMoreDataNeverWidens: adding a cluster with data can only
// shrink (or keep) the error bound of the sum estimate in expectation;
// we check the deterministic monotone case of identical clusters.
func TestPropertyMoreDataNeverWidens(t *testing.T) {
	err := quick.Check(func(valSeed uint32) bool {
		rng := stats.NewRand(int64(valSeed % 997))
		mk := func(task int) *mapreduce.MapOutput {
			var rs stats.RunningStat
			for j := 0; j < 40; j++ {
				rs.Add(5 + rng.Float64()) // low-variance values
			}
			return &mapreduce.MapOutput{TaskID: task, Items: 80, Sampled: 40,
				Combined: map[string]stats.RunningStat{"k": rs}}
		}
		small := NewMultiStageReducer(OpSum)
		large := NewMultiStageReducer(OpSum)
		for task := 0; task < 4; task++ {
			o := mk(task)
			small.Consume(o)
			large.Consume(o)
		}
		for task := 4; task < 12; task++ {
			large.Consume(mk(task))
		}
		viewS := mapreduce.EstimateView{TotalMaps: 20, Consumed: 4, Confidence: 0.95}
		viewL := mapreduce.EstimateView{TotalMaps: 20, Consumed: 12, Confidence: 0.95}
		es := small.Finalize(viewS)[0].Est
		el := large.Finalize(viewL)[0].Est
		return el.Err <= es.Err*1.5 // generous: variance estimates fluctuate
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyExtremeReducerMonotone: the observed extreme is monotone
// under additional consumption.
func TestPropertyExtremeReducerMonotone(t *testing.T) {
	err := quick.Check(func(seedRaw uint32) bool {
		rng := stats.NewRand(int64(seedRaw % 4099))
		r := NewMinReducer()
		obs := math.Inf(1)
		for task := 0; task < 20; task++ {
			v := rng.NormFloat64() * 100
			r.Consume(&mapreduce.MapOutput{TaskID: task, Items: 1, Sampled: 1,
				Pairs: []mapreduce.KV{{Key: "m", Value: v}}})
			if v < obs {
				obs = v
			}
			got, ok := r.Observed("m")
			if !ok || !stats.AlmostEqual(got, obs, 1e-12) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}
