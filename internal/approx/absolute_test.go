package approx

import (
	"math"
	"testing"

	"approxhadoop/internal/mapreduce"
)

// TestAbsoluteTargetBound drives the controller with an absolute
// half-width bound instead of a relative one.
func TestAbsoluteTargetBound(t *testing.T) {
	input, want := countInput(40, 400, 21)
	// Pick an absolute bound around 1% of the largest key's total.
	biggest := 0.0
	for _, v := range want {
		if v > biggest {
			biggest = v
		}
	}
	absTarget := biggest * 0.02
	job := sumJob(input, &TargetError{Absolute: absTarget})
	res, err := mapreduce.Run(approxEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	worstAbs := 0.0
	for _, o := range res.Outputs {
		if !math.IsInf(o.Est.Err, 1) && o.Est.Err > worstAbs {
			worstAbs = o.Est.Err
		}
	}
	if worstAbs > absTarget {
		t.Errorf("absolute bound %v exceeds target %v", worstAbs, absTarget)
	}
	if res.Counters.MapsCompleted >= res.Counters.MapsTotal {
		t.Errorf("a loose absolute target should allow approximation: %+v", res.Counters)
	}
}

// TestGEVAbsoluteTarget drives the extreme-value controller with an
// absolute bound.
func TestGEVAbsoluteTarget(t *testing.T) {
	ctl := &TargetErrorGEV{Absolute: 5, MinMaps: 3}
	if ctl.meets(4, 100) != true {
		t.Error("4 <= 5 should meet")
	}
	if ctl.meets(6, 100) != false {
		t.Error("6 > 5 should not meet")
	}
	if ctl.meets(math.Inf(1), 100) {
		t.Error("infinite bound never meets")
	}
	both := &TargetErrorGEV{Target: 0.01, Absolute: 5}
	if both.meets(4, 100) {
		t.Error("4 above 1 percent of 100 should fail the relative part")
	}
	if !both.meets(0.5, 100) {
		t.Error("0.5 meets both bounds")
	}
}
