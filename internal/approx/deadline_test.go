package approx

import (
	"strings"
	"testing"

	"approxhadoop/internal/mapreduce"
)

// slowView builds a synthetic JobView with fixed cost parameters for
// exercising the DeadlineSLO planner without a cluster.
func slowView(totalMaps, slots, launched, completed, running int, elapsed float64) *mapreduce.JobView {
	return &mapreduce.JobView{
		TotalMaps:     totalMaps,
		TotalMapSlots: slots,
		Launched:      launched,
		Completed:     completed,
		Running:       running,
		Pending:       totalMaps - launched,
		Confidence:    0.95,
		Elapsed:       elapsed,
		AvgItems:      100,
		CostParams:    func() (float64, float64, float64) { return 0.1, 0.001, 0.002 },
	}
}

func TestDeadlineSLOPilotPhase(t *testing.T) {
	c := &DeadlineSLO{Deadline: 100, PilotTasks: 4, PilotRatio: 0.02}
	v := slowView(64, 8, 0, 0, 0, 0)

	ratio, action := c.Plan(v)
	if action != mapreduce.PlanRun || !(ratio < 0.021) || !(ratio > 0.019) {
		t.Fatalf("pilot launch: got (%v, %v)", ratio, action)
	}
	v.Launched = 4
	if _, action = c.Plan(v); action != mapreduce.PlanDefer {
		t.Fatalf("pilot fully launched should defer, got %v", action)
	}
	// Mid-pilot completions are quiet.
	v.Completed = 2
	if d := c.Completed(v); d.DropPending || d.Abort != nil {
		t.Fatalf("mid-pilot directive should be empty, got %+v", d)
	}
}

func TestDeadlineSLOPlansWithinBudget(t *testing.T) {
	c := &DeadlineSLO{Deadline: 100, PilotTasks: 4, PilotRatio: 0.02}
	v := slowView(64, 8, 4, 4, 0, 1)

	d := c.Completed(v)
	if d.Abort != nil || d.DropPending {
		t.Fatalf("ample budget should plan launches, got %+v", d)
	}
	if d.SampleRatio <= 0 || d.SampleRatio > 1 {
		t.Fatalf("planned ratio %v out of range", d.SampleRatio)
	}
	ratio, action := c.Plan(v)
	if action != mapreduce.PlanRun {
		t.Fatalf("post-solve Plan should run, got %v", action)
	}
	if !(ratio > 0) || ratio > 1 {
		t.Fatalf("post-solve ratio %v", ratio)
	}
	// With ~80s of budget and map time around 0.1+0.1+m*0.002 the whole
	// job fits: the plan should extend well past the pilot.
	if c.planned <= 4 {
		t.Fatalf("plan stuck at pilot: planned %d", c.planned)
	}
}

func TestDeadlineSLOExhaustedBudgetDrops(t *testing.T) {
	c := &DeadlineSLO{Deadline: 10, PilotTasks: 4, PilotRatio: 0.02}
	// Pilot done, but virtual time already past Slack*Deadline.
	v := slowView(64, 8, 4, 4, 0, 9.5)
	d := c.Completed(v)
	if d.Abort != nil {
		t.Fatalf("two clusters completed: should degrade, not abort (%v)", d.Abort)
	}
	if !d.DropPending {
		t.Fatalf("exhausted budget should drop pending, got %+v", d)
	}
}

func TestDeadlineSLOInfeasibleAborts(t *testing.T) {
	c := &DeadlineSLO{Deadline: 10, PilotTasks: 1, PilotRatio: 0.02}
	// Only one cluster done when the budget runs out: no valid interval
	// is possible.
	v := slowView(64, 8, 1, 1, 0, 9.5)
	d := c.Completed(v)
	if d.Abort == nil {
		t.Fatalf("want abort, got %+v", d)
	}
	if !strings.Contains(d.Abort.Error(), "infeasible") {
		t.Errorf("abort error %q does not say infeasible", d.Abort)
	}
}

func TestDeadlineSLOBestEffortNeverAborts(t *testing.T) {
	c := &DeadlineSLO{Deadline: 10, PilotTasks: 1, PilotRatio: 0.02, BestEffort: true}
	v := slowView(64, 8, 1, 1, 0, 9.5)
	d := c.Completed(v)
	if d.Abort != nil {
		t.Fatalf("best effort must not abort: %v", d.Abort)
	}
	if !d.DropPending {
		t.Fatalf("best effort should finish with what it has, got %+v", d)
	}
}

func TestDeadlineSLOReplansAtWaveBoundary(t *testing.T) {
	c := &DeadlineSLO{Deadline: 1000, PilotTasks: 4, PilotRatio: 0.02}
	v := slowView(640, 8, 4, 4, 0, 1)
	if d := c.Completed(v); d.Abort != nil {
		t.Fatal(d.Abort)
	}
	firstPlan := c.planned
	// A wave of completions later (solveAt = 4+8) with launches still
	// below the plan, the boundary triggers a re-solve.
	v = slowView(640, 8, 20, 12, 0, 2)
	if d := c.Completed(v); d.Abort != nil {
		t.Fatal(d.Abort)
	}
	if c.planned < firstPlan {
		t.Errorf("replan shrank the plan with budget to spare: %d -> %d", firstPlan, c.planned)
	}
}

func TestDeadlineSLOName(t *testing.T) {
	c := &DeadlineSLO{Deadline: 30}
	if !strings.Contains(c.Name(), "deadline-slo") {
		t.Errorf("name %q", c.Name())
	}
}
