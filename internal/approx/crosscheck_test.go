package approx

import (
	"testing"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// TestReducerMatchesTwoStageTheory cross-checks the incremental
// MultiStageReducer against the reference stats.TwoStage estimator on
// identical cluster data: the reducer is an O(keys)-memory rewrite of
// the same math and must agree to floating-point precision.
func TestReducerMatchesTwoStageTheory(t *testing.T) {
	rng := stats.NewRand(31)
	const totalMaps = 12
	view := mapreduce.EstimateView{TotalMaps: totalMaps, Consumed: 7, Dropped: 0, Confidence: 0.95}

	for _, op := range []AggOp{OpSum, OpMean} {
		r := NewMultiStageReducer(op)
		ref := stats.TwoStage{N: totalMaps}
		for task := 0; task < 7; task++ {
			M := int64(80 + rng.Intn(40))
			m := int64(20 + rng.Intn(int(M)-20))
			var rs stats.RunningStat
			for j := int64(0); j < m; j++ {
				if rng.Float64() < 0.7 { // some units emit nothing
					rs.Add(rng.Float64() * 10)
				}
			}
			r.Consume(&mapreduce.MapOutput{
				TaskID: task, Items: M, Sampled: m,
				Combined: map[string]stats.RunningStat{"k": rs},
			})
			ref.Clusters = append(ref.Clusters, stats.ClusterSample{M: M, Sam: m, Stat: rs})
		}
		got := r.Finalize(view)
		if len(got) != 1 {
			t.Fatalf("op %v: outputs = %d", op, len(got))
		}
		var want stats.Estimate
		if op == OpMean {
			want = ref.Mean(0.95)
		} else {
			want = ref.Sum(0.95)
		}
		g := got[0].Est
		if diff := relDiff(g.Value, want.Value); diff > 1e-9 {
			t.Errorf("op %v: value %v vs reference %v", op, g.Value, want.Value)
		}
		if diff := relDiff(g.Err, want.Err); diff > 1e-9 {
			t.Errorf("op %v: err %v vs reference %v", op, g.Err, want.Err)
		}
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	den := 1.0
	if b != 0 {
		if b < 0 {
			den = -b
		} else {
			den = b
		}
	}
	return d / den
}
