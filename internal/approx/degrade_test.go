package approx

import (
	"math"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
)

// TestDegradedDropCoverage is the statistical regression test for
// failure-aware degradation: under injected transient faults with a
// one-attempt budget and DegradeToDrop on, failed map tasks become
// non-sampled clusters, and the multi-stage estimator's 95% intervals
// must still cover the ground truth at roughly the nominal rate.
// Coverage is checked across (seed, key) pairs; the 0.85 floor leaves
// slack for the small cluster count (finite-sample t intervals).
func TestDegradedDropCoverage(t *testing.T) {
	const seeds = 20
	covered, intervals := 0, 0
	degradedRuns, nonExact := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		input, want := countInput(24, 400, 1000+seed)
		eng := approxEngine()
		job := sumJob(input, nil)
		job.Seed = seed
		job.DegradeToDrop = true
		job.Retry = mapreduce.RetryPolicy{MaxAttemptsPerTask: 1}
		// With T0=1 and 16 map slots over 24 blocks the map phase runs
		// ~2 waves of ~1.5s; spread transient faults across it. Servers
		// 0 and 1 host the reduces, but task faults never kill servers,
		// so no server is excluded.
		var faults []cluster.Fault
		for i := 0; i < 6; i++ {
			faults = append(faults, cluster.Fault{
				At:     0.4 + 0.45*float64(i),
				Kind:   cluster.FaultTask,
				Server: int(seed+int64(i)) % 4,
			})
		}
		job.Faults = &cluster.FaultPlan{Faults: faults}
		res, err := mapreduce.Run(eng, job)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Counters.MapsDegraded > 0 {
			degradedRuns++
		}
		if res.Counters.MapsCompleted+res.Counters.MapsDegraded != res.Counters.MapsTotal {
			t.Fatalf("seed %d: accounting: %+v", seed, res.Counters)
		}
		for _, o := range res.Outputs {
			truth := want[o.Key]
			if o.Exact {
				// Exact outputs (no task degraded this run) must match.
				if math.Abs(o.Est.Value-truth) > 1e-6 {
					t.Errorf("seed %d key %s: exact value %v != truth %v", seed, o.Key, o.Est.Value, truth)
				}
				continue
			}
			nonExact++
			if math.IsNaN(o.Est.Err) || o.Est.Err <= 0 {
				t.Errorf("seed %d key %s: degraded output needs a real error bound, got %v", seed, o.Key, o.Est.Err)
				continue
			}
			intervals++
			if o.Est.Lo() <= truth && truth <= o.Est.Hi() {
				covered++
			}
		}
	}
	if degradedRuns < seeds/2 {
		t.Fatalf("only %d/%d runs saw degraded tasks; fault plan too weak for a coverage test", degradedRuns, seeds)
	}
	if intervals < 20 {
		t.Fatalf("only %d non-exact intervals; not enough to assess coverage", intervals)
	}
	if rate := float64(covered) / float64(intervals); rate < 0.85 {
		t.Errorf("95%% CI covered truth in %d/%d intervals (%.2f); degraded drops are biasing the estimator",
			covered, intervals, rate)
	}
	if nonExact == 0 {
		t.Error("no non-exact outputs: degradation never reached the estimator")
	}
}

// TestReplicaLossDropCoverage is the same check for the other
// degradation trigger: single-replica blocks lost to a permanent
// server failure become non-sampled clusters.
func TestReplicaLossDropCoverage(t *testing.T) {
	const seeds = 12
	covered, intervals := 0, 0
	degradedRuns := 0
	for seed := int64(0); seed < seeds; seed++ {
		input, want := countInput(24, 400, 2000+seed)
		eng := approxEngine()
		var ids []string
		for _, s := range eng.Servers() {
			ids = append(ids, s.ID)
		}
		// Replication 1: any server death loses data for good.
		nn := dfs.NewNameNode(ids, 1)
		if err := nn.Register(input); err != nil {
			t.Fatal(err)
		}
		job := sumJob(input, nil)
		job.Seed = seed
		job.DegradeToDrop = true
		// Server 3 hosts no reduce (reduces 0,1 round-robin) and dies
		// mid-map-phase, taking its single-replica blocks along.
		job.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
			{At: 0.8, Kind: cluster.FaultServer, Server: 3},
		}}
		res, err := mapreduce.Run(eng, job)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Counters.MapsDegraded > 0 {
			degradedRuns++
		}
		for _, o := range res.Outputs {
			if o.Exact {
				continue
			}
			if math.IsNaN(o.Est.Err) || o.Est.Err <= 0 {
				t.Errorf("seed %d key %s: bad error bound %v", seed, o.Key, o.Est.Err)
				continue
			}
			intervals++
			if truth := want[o.Key]; o.Est.Lo() <= truth && truth <= o.Est.Hi() {
				covered++
			}
		}
	}
	if degradedRuns < seeds/2 {
		t.Fatalf("only %d/%d runs degraded; scenario too weak", degradedRuns, seeds)
	}
	if intervals == 0 {
		t.Fatal("no intervals produced")
	}
	if rate := float64(covered) / float64(intervals); rate < 0.85 {
		t.Errorf("95%% CI covered truth in %d/%d intervals (%.2f)", covered, intervals, rate)
	}
}
