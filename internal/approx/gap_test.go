package approx

import (
	"math"
	"testing"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

func TestMaxReducerEndToEnd(t *testing.T) {
	r := NewMaxReducer()
	if r.Min || !r.AlreadyExtrema {
		t.Fatalf("max reducer config: %+v", r)
	}
	rng := stats.NewRand(7)
	view := mapreduce.EstimateView{TotalMaps: 60, Consumed: 30, Dropped: 30, Confidence: 0.95}
	obs := math.Inf(-1)
	for task := 0; task < 30; task++ {
		v := 100 + rng.NormFloat64()*10
		if v > obs {
			obs = v
		}
		r.Consume(&mapreduce.MapOutput{TaskID: task, Items: 1, Sampled: 1,
			Pairs: []mapreduce.KV{{Key: "max", Value: v}}})
	}
	out := r.Finalize(view)
	if len(out) != 1 || !stats.AlmostEqual(out[0].Est.Value, obs, 1e-12) {
		t.Fatalf("max output: %+v (obs %v)", out, obs)
	}
	if out[0].Est.Err <= 0 || math.IsInf(out[0].Est.Err, 1) {
		t.Errorf("max bound: %v", out[0].Est.Err)
	}
	if got, ok := r.Observed("max"); !ok || !stats.AlmostEqual(got, obs, 1e-12) {
		t.Errorf("Observed = %v %v", got, ok)
	}
	// Custom tail percentile path.
	r.TailP = 0.05
	if !stats.AlmostEqual(r.tailP(), 0.05, 1e-12) {
		t.Error("tailP override ignored")
	}
	r.TailP = 7 // invalid -> default
	if !stats.AlmostEqual(r.tailP(), 0.01, 1e-12) {
		t.Error("invalid tailP should default")
	}
}

func TestSampledUnitsAccumulates(t *testing.T) {
	r := NewMultiStageReducer(OpSum)
	r.Consume(&mapreduce.MapOutput{TaskID: 0, Items: 100, Sampled: 40})
	r.Consume(&mapreduce.MapOutput{TaskID: 1, Items: 100, Sampled: 25})
	if got := r.SampledUnits(); got != 65 {
		t.Errorf("SampledUnits = %d, want 65", got)
	}
}

func TestTargetErrorGEVPlanAfterStop(t *testing.T) {
	ctl := &TargetErrorGEV{Target: 0.5}
	ctl.stopped = true
	if _, action := ctl.Plan(&mapreduce.JobView{}); action != mapreduce.PlanDrop {
		t.Error("stopped controller should drop everything")
	}
	if d := ctl.Completed(&mapreduce.JobView{}); d.DropPending || d.KillRunning {
		t.Error("stopped controller should be quiescent")
	}
}

func TestTargetErrorGEVNoEstimates(t *testing.T) {
	ctl := &TargetErrorGEV{Target: 0.5, MinMaps: 1}
	v := &mapreduce.JobView{Completed: 5, Estimates: func() []mapreduce.KeyEstimate { return nil }}
	if d := ctl.Completed(v); d.DropPending {
		t.Error("no estimates: must not stop")
	}
	// Unmet estimate: keep running.
	v.Estimates = func() []mapreduce.KeyEstimate {
		return []mapreduce.KeyEstimate{{Key: "m", Est: stats.Estimate{Value: 10, Err: 9}}}
	}
	if d := ctl.Completed(v); d.DropPending {
		t.Error("wide bound: must not stop")
	}
}

func TestTargetErrorRealizedMetStrict(t *testing.T) {
	ctl := &TargetError{Target: 0.1, Strict: true}
	mk := func(ests []mapreduce.KeyEstimate) *mapreduce.JobView {
		return &mapreduce.JobView{Estimates: func() []mapreduce.KeyEstimate { return ests }}
	}
	ok := []mapreduce.KeyEstimate{
		{Key: "a", Est: stats.Estimate{Value: 100, Err: 5}},
		{Key: "b", Est: stats.Estimate{Value: 10, Err: 0.5}},
	}
	if !ctl.realizedMet(mk(ok)) {
		t.Error("all keys within 10% should meet strictly")
	}
	bad := append(ok, mapreduce.KeyEstimate{Key: "c", Est: stats.Estimate{Value: 1, Err: 0.5}})
	if ctl.realizedMet(mk(bad)) {
		t.Error("a 50% key should fail strict mode")
	}
	// Nil estimates treated as met (barrier mode).
	if !ctl.realizedMet(&mapreduce.JobView{}) {
		t.Error("nil estimates should be treated as met")
	}
}
