package approx

import (
	"math"
	"sort"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// ExtremeValueReducer is the paper's ApproxMinReducer/ApproxMaxReducer
// (Section 3.2): it keeps the raw values produced for each key and, at
// estimate time, fits a Generalized Extreme Value distribution to them
// to bound how far the true extreme may lie beyond the observed one.
//
// In the common pattern each map task already outputs the min/max of
// its own search (so the values form a sample of block extrema and
// AlreadyExtrema should stay true); for raw value streams set
// AlreadyExtrema to false and the reducer applies the Block
// Minima/Maxima transform first.
//
// The reported estimate is the extreme observed so far; its interval
// half-width covers the GEV tail estimate: for a minimum,
// [gevLow, observed], where gevLow is the lower confidence bound of
// the GEV quantile at TailP. Combiner output is unsupported — the fit
// needs raw values — and is reported as an unbounded estimate.
type ExtremeValueReducer struct {
	Min            bool    // estimate a minimum (false: maximum)
	TailP          float64 // tail percentile for the GEV quantile (default 0.01)
	MinSample      int     // minimum extrema before fitting (default 8)
	AlreadyExtrema bool    // values are already per-task extrema
	Blocks         int     // block count for the transform (default sqrt(n))

	values        map[string][]float64
	consumed      int
	sampled       bool
	misconfigured bool // combiner output seen
}

// NewMinReducer builds an ExtremeValueReducer for minima over per-task
// extrema (the DC-placement pattern).
func NewMinReducer() *ExtremeValueReducer {
	return &ExtremeValueReducer{Min: true, AlreadyExtrema: true}
}

// NewMaxReducer builds an ExtremeValueReducer for maxima over per-task
// extrema.
func NewMaxReducer() *ExtremeValueReducer {
	return &ExtremeValueReducer{Min: false, AlreadyExtrema: true}
}

func (r *ExtremeValueReducer) tailP() float64 {
	if r.TailP <= 0 || r.TailP >= 1 {
		return 0.01
	}
	return r.TailP
}

func (r *ExtremeValueReducer) minSample() int {
	if r.MinSample <= 0 {
		return 8
	}
	return r.MinSample
}

// Consume implements mapreduce.ReduceLogic.
func (r *ExtremeValueReducer) Consume(out *mapreduce.MapOutput) {
	if r.values == nil {
		r.values = make(map[string][]float64)
	}
	r.consumed++
	if out.Sampled < out.Items {
		r.sampled = true
	}
	if out.IsCombined() {
		r.misconfigured = true
		return
	}
	out.EachPair(func(k string, v float64) {
		r.values[k] = append(r.values[k], v)
	})
}

// Observed returns the raw extreme seen so far for a key.
func (r *ExtremeValueReducer) Observed(key string) (float64, bool) {
	vals := r.values[key]
	if len(vals) == 0 {
		return 0, false
	}
	lo, hi := stats.MinMax(vals)
	if r.Min {
		return lo, true
	}
	return hi, true
}

func (r *ExtremeValueReducer) estimate(vals []float64, view mapreduce.EstimateView) (stats.Estimate, bool) {
	obs := vals[0]
	for _, v := range vals[1:] {
		if r.Min && v < obs || !r.Min && v > obs {
			obs = v
		}
	}
	est := stats.Estimate{Value: obs, Conf: view.Confidence, DF: float64(len(vals) - 1)}
	exact := !r.sampled && view.Dropped == 0 && r.consumed == view.TotalMaps && !r.misconfigured
	if exact {
		return est, true
	}
	if r.misconfigured {
		est.Err = math.NaN()
		est.StdErr = math.NaN()
		return est, false
	}
	sample := vals
	if !r.AlreadyExtrema {
		blocks := r.Blocks
		if blocks <= 0 {
			blocks = int(math.Sqrt(float64(len(vals))))
		}
		sample = stats.BlockExtrema(vals, blocks, r.Min)
	}
	if len(sample) < r.minSample() {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est, false
	}
	var fit stats.GEVFit
	var err error
	if r.Min {
		fit, err = stats.FitGEVMinima(sample)
	} else {
		fit, err = stats.FitGEVMaxima(sample)
	}
	if err != nil {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est, false
	}
	tail := fit.ExtremeEstimate(r.tailP(), view.Confidence)
	// The true extreme can only be at or beyond the observed one; the
	// GEV tail bound says how far beyond is plausible.
	var half float64
	if r.Min {
		half = obs - (tail.Value - tail.Err)
	} else {
		half = (tail.Value + tail.Err) - obs
	}
	if half < 0 || math.IsNaN(half) {
		half = 0
	}
	est.Err = half
	est.StdErr = tail.StdErr
	return est, false
}

// Estimates implements mapreduce.ReduceLogic.
func (r *ExtremeValueReducer) Estimates(view mapreduce.EstimateView) []mapreduce.KeyEstimate {
	return r.Finalize(view)
}

// Finalize implements mapreduce.ReduceLogic.
func (r *ExtremeValueReducer) Finalize(view mapreduce.EstimateView) []mapreduce.KeyEstimate {
	out := make([]mapreduce.KeyEstimate, 0, len(r.values))
	for key, vals := range r.values {
		if len(vals) == 0 {
			continue
		}
		est, exact := r.estimate(vals, view)
		out = append(out, mapreduce.KeyEstimate{Key: key, Est: est, Exact: exact})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
