package approx

import (
	"fmt"
	"math"

	"approxhadoop/internal/mapreduce"
)

// Static is the controller for user-specified dropping/sampling ratios
// (Section 4.2, first submission mode): the framework randomly drops
// DropRatio of the map tasks (the launch order is already random, so
// declining the tail of the order is a uniform random subset) and runs
// every executed task at SampleRatio. Error bounds for the chosen
// ratios come out of the job's approximation-aware reducers.
type Static struct {
	SampleRatio float64 // input data sampling ratio in (0, 1]; 0 means 1
	DropRatio   float64 // fraction of map tasks to drop, in [0, 1)

	target int // number of tasks to run; computed on first Plan
}

// NewStatic builds a Static controller, clamping ratios into range.
func NewStatic(sampleRatio, dropRatio float64) *Static {
	if sampleRatio <= 0 || sampleRatio > 1 {
		sampleRatio = 1
	}
	if dropRatio < 0 {
		dropRatio = 0
	}
	if dropRatio > 1 {
		dropRatio = 1
	}
	return &Static{SampleRatio: sampleRatio, DropRatio: dropRatio}
}

// Name implements mapreduce.Controller.
func (s *Static) Name() string {
	return fmt.Sprintf("static(sample=%.3g,drop=%.3g)", s.SampleRatio, s.DropRatio)
}

// Plan implements mapreduce.Controller.
func (s *Static) Plan(v *mapreduce.JobView) (float64, mapreduce.PlanAction) {
	if s.target == 0 {
		run := int(math.Round((1 - s.DropRatio) * float64(v.TotalMaps)))
		if run < 1 && s.DropRatio < 1 {
			run = 1
		}
		s.target = run
		if s.target == 0 {
			s.target = -1 // drop everything
		}
	}
	if s.target > 0 && v.Launched < s.target {
		r := s.SampleRatio
		if r <= 0 || r > 1 {
			r = 1
		}
		return r, mapreduce.PlanRun
	}
	return 0, mapreduce.PlanDrop
}

// Completed implements mapreduce.Controller.
func (s *Static) Completed(*mapreduce.JobView) mapreduce.Directive {
	return mapreduce.Directive{}
}
