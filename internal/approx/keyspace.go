package approx

import (
	"math"
	"sort"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// This file implements the two answers Section 3.1 gives to the
// "missed intermediate keys" limitation of online sampling:
//
//  1. If the set of all keys is known a priori, keys absent from the
//     sample can be reported as 0 plus a bound at the job's confidence
//     level (KnownKeys / MissingKeyBound).
//  2. Otherwise, the overall number of distinct keys can be estimated
//     by extrapolating from the sample (the paper cites Haas et al.,
//     VLDB'95); DistinctKeys implements the Chao1 abundance estimator
//     with its standard variance.

// SampledUnits returns the total number of units actually processed
// across consumed clusters (sum of m_i).
func (r *MultiStageReducer) SampledUnits() int64 { return r.sampledUnits }

// MissingKeyBound bounds the total value of a key that was never
// observed in the sample, assuming at most one occurrence per input
// unit (indicator-style counts, e.g. word-count or histogram apps).
//
// If a key had per-unit prevalence p, the chance that s independent
// sampled units all missed it is (1-p)^s; requiring this to be at
// least alpha = 1-confidence gives p <= 1 - alpha^(1/s), so the key's
// population total is at most T-hat * (1 - alpha^(1/s)). This is the
// paper's "0 plus a bound, with a certain level of confidence": small
// relative to the bounds of observed keys because misses only happen
// to rare keys (e.g. the WikiLength missing sizes were bounded at ±197
// against ±33,408 for observed sizes).
func (r *MultiStageReducer) MissingKeyBound(view mapreduce.EstimateView) stats.Estimate {
	est := stats.Estimate{Value: 0, Conf: view.Confidence, DF: float64(r.n - 1)}
	s := float64(r.sampledUnits)
	if s <= 0 {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	alpha := 1 - view.Confidence
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	pMax := 1 - math.Pow(alpha, 1/s)
	// T-hat: estimated number of units in the population.
	var tHat float64
	if r.n > 0 {
		tHat = float64(view.TotalMaps) / float64(r.n) * r.sumM
	}
	est.Err = tHat * pMax
	est.StdErr = est.Err / 2 // nominal; the bound itself is the deliverable
	return est
}

// FinalizeWithKnownKeys is Finalize plus zero-estimates for every key
// in known that the sample never observed.
func (r *MultiStageReducer) FinalizeWithKnownKeys(view mapreduce.EstimateView, known []string) []mapreduce.KeyEstimate {
	out := r.Finalize(view)
	if len(known) == 0 {
		return out
	}
	missingBound := r.MissingKeyBound(view)
	seen := make(map[string]bool, len(out))
	for _, o := range out {
		seen[o.Key] = true
	}
	for _, k := range known {
		if !seen[k] {
			out = append(out, mapreduce.KeyEstimate{Key: k, Est: missingBound, Exact: r.exact(view)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// DistinctKeys estimates the number of distinct keys in the whole
// population from the sampled keys' unit frequencies, using the Chao1
// lower-bound estimator:
//
//	D-hat = d + f1^2 / (2 f2)
//
// where d is the number of distinct keys observed, f1 the keys
// observed in exactly one sampled unit and f2 in exactly two. The
// returned interval uses Chao's asymptotic variance. When f2 = 0 the
// bias-corrected form d + f1(f1-1)/2 is used.
func (r *MultiStageReducer) DistinctKeys(view mapreduce.EstimateView) stats.Estimate {
	est := stats.Estimate{Conf: view.Confidence}
	d := float64(len(r.keys))
	if r.exact(view) {
		est.Value = d
		return est
	}
	var f1, f2 float64
	for _, agg := range r.keys {
		switch agg.units {
		case 1:
			f1++
		case 2:
			f2++
		}
	}
	switch {
	case f1 == 0:
		// Every key seen at least twice: the sample has likely
		// saturated the key space.
		est.Value = d
		est.Err = 0
	case f2 == 0:
		est.Value = d + f1*(f1-1)/2
		est.Err = est.Value - d // crude: the extrapolated part
		est.StdErr = est.Err / 2
	default:
		g := f1 / f2
		est.Value = d + f1*f1/(2*f2)
		variance := f2 * (g*g*g*g/4 + g*g*g + g*g/2)
		est.StdErr = math.Sqrt(variance)
		est.Err = stats.NormalQuantile(1-(1-view.Confidence)/2) * est.StdErr
	}
	est.DF = d - 1
	return est
}
