package approx

import (
	"fmt"
	"testing"

	"approxhadoop/internal/mapreduce"
)

// TestSamplingDataPlaneEquivalence gates the push-mode sampling reader:
// a sampled job over generated blocks must produce a byte-identical
// Result and trace whether records flow through the legacy pull path or
// the zero-copy push path — same RNG draw sequence, same metered
// Begin/End sequence, same float operations in the emitters and
// estimators.
func TestSamplingDataPlaneEquivalence(t *testing.T) {
	for _, combine := range []bool{false, true} {
		combine := combine
		t.Run(fmt.Sprintf("combine=%v", combine), func(t *testing.T) {
			run := func(legacy bool) (*mapreduce.Result, []mapreduce.Event) {
				input, _ := countInput(16, 300, 9)
				job := sumJob(input, NewStatic(0.3, 0.1))
				job.Combine = combine
				job.LegacyDataPlane = legacy
				var events []mapreduce.Event
				job.Trace = func(e mapreduce.Event) { events = append(events, e) }
				res, err := mapreduce.Run(approxEngine(), job)
				if err != nil {
					t.Fatalf("legacy=%v: %v", legacy, err)
				}
				return res, events
			}
			legacyRes, legacyEvents := run(true)
			arenaRes, arenaEvents := run(false)
			want := fmt.Sprintf("%+v", *legacyRes)
			if got := fmt.Sprintf("%+v", *arenaRes); got != want {
				t.Errorf("arena data plane Result differs from legacy:\n got %s\nwant %s", got, want)
			}
			if len(arenaEvents) != len(legacyEvents) {
				t.Fatalf("arena path emitted %d trace events, legacy %d", len(arenaEvents), len(legacyEvents))
			}
			for i := range arenaEvents {
				if arenaEvents[i] != legacyEvents[i] {
					t.Errorf("event %d = %v, legacy %v", i, arenaEvents[i], legacyEvents[i])
				}
			}
		})
	}
}
