package approx

import (
	"fmt"
	"math"

	"approxhadoop/internal/mapreduce"
)

// TargetErrorGEV is the target-error controller for extreme-value jobs
// (Section 4.5): every map runs precisely (dropping is the only
// mechanism — sampling an optimization search makes no sense), the
// reduce re-estimates the GEV bound as each map completes, and the
// moment every key's interval is inside the target the controller
// kills and drops all outstanding maps.
type TargetErrorGEV struct {
	// Target is the relative error bound (interval half-width over the
	// observed extreme).
	Target float64
	// Absolute, when positive, bounds the absolute half-width instead
	// of or in addition to Target.
	Absolute float64
	// MinMaps completed before a stop is considered (default 8,
	// matching the reducer's minimum GEV sample).
	MinMaps int

	stopped bool
}

// Name implements mapreduce.Controller.
func (c *TargetErrorGEV) Name() string {
	return fmt.Sprintf("target-error-gev(%.3g%%)", c.Target*100)
}

// Plan implements mapreduce.Controller.
func (c *TargetErrorGEV) Plan(*mapreduce.JobView) (float64, mapreduce.PlanAction) {
	if c.stopped {
		return 0, mapreduce.PlanDrop
	}
	return 1, mapreduce.PlanRun
}

// Completed implements mapreduce.Controller.
func (c *TargetErrorGEV) Completed(v *mapreduce.JobView) mapreduce.Directive {
	if c.stopped {
		return mapreduce.Directive{}
	}
	minMaps := c.MinMaps
	if minMaps <= 0 {
		minMaps = 8
	}
	if v.Completed < minMaps {
		return mapreduce.Directive{}
	}
	ests := v.Estimates()
	if len(ests) == 0 {
		return mapreduce.Directive{}
	}
	for _, e := range ests {
		if !c.meets(e.Est.Err, e.Est.Value) {
			return mapreduce.Directive{}
		}
	}
	c.stopped = true
	return mapreduce.Directive{DropPending: true, KillRunning: true}
}

func (c *TargetErrorGEV) meets(errHalf, value float64) bool {
	if math.IsInf(errHalf, 1) || math.IsNaN(errHalf) {
		return false
	}
	ok := true
	if c.Target > 0 {
		ok = ok && errHalf <= c.Target*math.Abs(value)
	}
	if c.Absolute > 0 {
		ok = ok && errHalf <= c.Absolute
	}
	return ok
}
