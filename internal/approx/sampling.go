package approx

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/vtime"
)

// ApproxTextInput is the sampling analog of TextInputFormat (the
// paper's ApproxTextInputFormat): it parses every line of the block —
// input data sampling cannot avoid the read I/O, which is why task
// dropping saves more time (Section 5.2) — but returns each record
// with probability sampleRatio. The record reader tracks both the
// block's total unit count M and the sampled count m, which the
// framework forwards to reducers for the multi-stage estimators.
type ApproxTextInput struct{}

// Open implements mapreduce.InputFormat.
func (ApproxTextInput) Open(b *dfs.Block, sampleRatio float64, seed int64) (mapreduce.RecordReader, error) {
	if b == nil {
		return nil, fmt.Errorf("approx: nil block")
	}
	if sampleRatio <= 0 || sampleRatio > 1 {
		sampleRatio = 1
	}
	rc := b.Open()
	s := bufio.NewScanner(rc)
	s.Buffer(make([]byte, 64<<10), 16<<20)
	return &samplingReader{
		keyPrefix: b.ID() + ":",
		rc:        rc,
		scan:      s,
		ratio:     sampleRatio,
		rng:       stats.NewRand(seed),
		meter:     vtime.NewDeterministic(),
	}, nil
}

type samplingReader struct {
	keyPrefix string
	rc        io.ReadCloser
	scan      *bufio.Scanner
	ratio     float64
	rng       *rand.Rand
	meter     vtime.Meter
	m         mapreduce.ReaderMeasure
	keyBuf    []byte
}

// SetMeter implements mapreduce.MeterSetter.
func (r *samplingReader) SetMeter(m vtime.Meter) { r.meter = m }

// Next scans forward to the next sampled line. Skipped lines still
// count toward Items and Bytes — and toward the metered read cost:
// the block is read in full either way.
func (r *samplingReader) Next() (mapreduce.Record, bool, error) {
	r.meter.Begin(vtime.OpRead)
	var units, bytes int64
	for r.scan.Scan() {
		line := r.scan.Text()
		idx := r.m.Items
		r.m.Items++
		r.m.Bytes += int64(len(line)) + 1
		units++
		bytes += int64(len(line)) + 1
		if r.ratio < 1 && r.rng.Float64() >= r.ratio {
			continue // unit not in the sample
		}
		r.m.Sampled++
		r.keyBuf = append(r.keyBuf[:0], r.keyPrefix...)
		r.keyBuf = strconv.AppendInt(r.keyBuf, idx, 10)
		r.m.ReadSecs += r.meter.End(vtime.OpRead, units, bytes)
		return mapreduce.Record{Key: string(r.keyBuf), Value: line}, true, nil
	}
	r.m.ReadSecs += r.meter.End(vtime.OpRead, units, bytes)
	if err := r.scan.Err(); err != nil {
		return mapreduce.Record{}, false, fmt.Errorf("approx: reading %s: %w", r.keyPrefix, err)
	}
	return mapreduce.Record{}, false, nil
}

func (r *samplingReader) Measure() mapreduce.ReaderMeasure { return r.m }

func (r *samplingReader) Close() error { return r.rc.Close() }
