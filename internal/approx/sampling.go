package approx

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/vtime"
	"approxhadoop/internal/zerocopy"
)

// ApproxTextInput is the sampling analog of TextInputFormat (the
// paper's ApproxTextInputFormat): it parses every line of the block —
// input data sampling cannot avoid the read I/O, which is why task
// dropping saves more time (Section 5.2) — but returns each record
// with probability sampleRatio. The record reader tracks both the
// block's total unit count M and the sampled count m, which the
// framework forwards to reducers for the multi-stage estimators.
type ApproxTextInput struct{}

// Open implements mapreduce.InputFormat. Like TextInputFormat, the
// reader supports pull mode (Next, durable records) and push mode
// (Push, zero-copy records over the block's line backing); both draw
// the identical per-line sample decisions from the same seeded RNG.
//
//approx:compute
func (ApproxTextInput) Open(b *dfs.Block, sampleRatio float64, seed int64) (mapreduce.RecordReader, error) {
	if b == nil {
		return nil, fmt.Errorf("approx: nil block")
	}
	if sampleRatio <= 0 || sampleRatio > 1 {
		sampleRatio = 1
	}
	return &samplingReader{
		block:     b,
		keyPrefix: b.ID() + ":",
		ratio:     sampleRatio,
		rng:       stats.NewRand(seed),
		meter:     vtime.NewDeterministic(),
	}, nil
}

type samplingReader struct {
	block     *dfs.Block
	keyPrefix string
	rc        io.ReadCloser // pull mode only, opened lazily
	scan      *bufio.Scanner
	ratio     float64
	rng       *rand.Rand
	meter     vtime.Meter
	m         mapreduce.ReaderMeasure
	bufs      *mapreduce.BufList
	keyBuf    []byte // "blockID:" prefix resident, offset digits rewritten per record
}

// SetMeter implements mapreduce.MeterSetter.
func (r *samplingReader) SetMeter(m vtime.Meter) { r.meter = m }

// SetBuffers implements mapreduce.BufferLender.
func (r *samplingReader) SetBuffers(l *mapreduce.BufList) { r.bufs = l }

// key formats the record key for the given record index into keyBuf and
// returns a view of it, valid until the next call.
//
//approx:hotpath
func (r *samplingReader) key(idx int64) []byte {
	if r.keyBuf == nil {
		min := len(r.keyPrefix) + 20
		if r.bufs != nil {
			r.keyBuf = r.bufs.Get(min)
		} else {
			r.keyBuf = make([]byte, 0, min)
		}
		r.keyBuf = append(r.keyBuf, r.keyPrefix...)
	}
	r.keyBuf = strconv.AppendInt(r.keyBuf[:len(r.keyPrefix)], idx, 10)
	return r.keyBuf
}

// sampleLine accounts one scanned line and reports whether it is in the
// sample. Skipped lines still count toward Items and Bytes — and toward
// the metered read cost — because the block is read in full either way.
//
//approx:hotpath
func (r *samplingReader) sampleLine(n int64, units, bytes *int64) bool {
	r.m.Items++
	r.m.Bytes += n + 1
	*units++
	*bytes += n + 1
	if r.ratio < 1 && r.rng.Float64() >= r.ratio {
		return false // unit not in the sample
	}
	r.m.Sampled++
	return true
}

// Next scans forward to the next sampled line.
//
//approx:compute
func (r *samplingReader) Next() (mapreduce.Record, bool, error) {
	if r.scan == nil {
		r.rc = r.block.Open()
		r.scan = newLineScanner(r.rc)
	}
	r.meter.Begin(vtime.OpRead)
	var units, bytes int64
	for r.scan.Scan() {
		line := r.scan.Text()
		idx := r.m.Items
		if !r.sampleLine(int64(len(line)), &units, &bytes) {
			continue
		}
		key := r.key(idx)
		r.m.ReadSecs += r.meter.End(vtime.OpRead, units, bytes)
		return mapreduce.Record{Key: string(key), Value: line}, true, nil
	}
	r.m.ReadSecs += r.meter.End(vtime.OpRead, units, bytes)
	if err := r.scan.Err(); err != nil {
		return mapreduce.Record{}, false, fmt.Errorf("approx: reading %s: %w", r.keyPrefix, err)
	}
	return mapreduce.Record{}, false, nil
}

// newLineScanner builds a scanner with a generous line-length cap.
func newLineScanner(rd io.Reader) *bufio.Scanner {
	s := bufio.NewScanner(rd)
	s.Buffer(make([]byte, 64<<10), 16<<20)
	return s
}

// Push implements mapreduce.RecordPusher over the block's line backing.
// The meter call sequence replicates the Next loop exactly: one
// Begin(OpRead) per sampled-record segment, with skipped lines'
// units/bytes accumulating into the segment's End — so virtual timings
// are bit-identical across modes. Record Key/Value are views of
// reusable buffers, valid only inside fn.
//
//approx:compute
//approx:hotpath
func (r *samplingReader) Push(fn func(rec mapreduce.Record)) (bool, error) {
	if !r.block.CanYieldLines() {
		return false, nil
	}
	var carry []byte
	if r.bufs != nil {
		carry = r.bufs.Get(256)
	}
	r.meter.Begin(vtime.OpRead)
	var units, bytes int64
	carry, err := r.block.Lines(carry, func(line []byte) error {
		idx := r.m.Items
		if !r.sampleLine(int64(len(line)), &units, &bytes) {
			return nil
		}
		key := r.key(idx)
		r.m.ReadSecs += r.meter.End(vtime.OpRead, units, bytes)
		units, bytes = 0, 0
		fn(mapreduce.Record{Key: zerocopy.String(key), Value: zerocopy.String(line)})
		r.meter.Begin(vtime.OpRead)
		return nil
	})
	if r.bufs != nil {
		r.bufs.Put(carry)
	}
	r.m.ReadSecs += r.meter.End(vtime.OpRead, units, bytes)
	if err != nil {
		//lint:ignore hotpath error path, taken at most once per block
		return true, fmt.Errorf("approx: reading %s: %w", r.keyPrefix, err)
	}
	return true, nil
}

func (r *samplingReader) Measure() mapreduce.ReaderMeasure { return r.m }

//approx:compute
func (r *samplingReader) Close() error {
	if r.bufs != nil && r.keyBuf != nil {
		r.bufs.Put(r.keyBuf)
		r.keyBuf = nil
	}
	if r.rc != nil {
		return r.rc.Close()
	}
	return nil
}
