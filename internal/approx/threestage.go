package approx

import (
	"sort"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// ThreeStageReducer estimates per-PAIR means: the population units are
// the intermediate <key, value> pairs the Map phase produces, not the
// input data items (Section 3.1, "Three-stage sampling" — e.g. the
// average number of occurrences of a word per paragraph when each
// input item is a whole page). The programmer opts in explicitly by
// choosing this reducer; the map task's pair production per sampled
// unit becomes the third sampling stage's size variable.
//
// Unlike MultiStageReducer this keeps per-(key, cluster) state, so it
// is intended for low-cardinality keys (aggregate metrics), which is
// also the paper's use case.
type ThreeStageReducer struct {
	clusters []clusterMeta
	keys     map[string][]tsEntry
	sampled  bool
}

type clusterMeta struct {
	items   int64 // M_i
	sampled int64 // m_i
}

type tsEntry struct {
	cluster int32
	pairs   int64 // intermediate pairs observed for the key in this cluster
	stat    stats.RunningStat
}

// NewThreeStageReducer builds a per-pair mean reducer.
func NewThreeStageReducer() *ThreeStageReducer {
	return &ThreeStageReducer{keys: make(map[string][]tsEntry)}
}

// Consume implements mapreduce.ReduceLogic. Combined outputs are
// accepted: the per-key running stat carries the pair count and sums.
func (r *ThreeStageReducer) Consume(out *mapreduce.MapOutput) {
	ci := int32(len(r.clusters))
	r.clusters = append(r.clusters, clusterMeta{items: out.Items, sampled: out.Sampled})
	if out.Sampled < out.Items {
		r.sampled = true
	}
	add := func(key string, rs stats.RunningStat) {
		r.keys[key] = append(r.keys[key], tsEntry{cluster: ci, pairs: rs.Count, stat: rs})
	}
	if out.IsCombined() {
		out.EachCombined(add)
		return
	}
	tmp := make(map[string]stats.RunningStat)
	out.EachPair(func(k string, v float64) {
		rs := tmp[k]
		rs.Add(v)
		tmp[k] = rs
	})
	for k, rs := range tmp {
		add(k, rs)
	}
}

// Estimates implements mapreduce.ReduceLogic.
func (r *ThreeStageReducer) Estimates(view mapreduce.EstimateView) []mapreduce.KeyEstimate {
	return r.Finalize(view)
}

// Finalize implements mapreduce.ReduceLogic.
func (r *ThreeStageReducer) Finalize(view mapreduce.EstimateView) []mapreduce.KeyEstimate {
	exact := !r.sampled && view.Dropped == 0 && len(r.clusters) == view.TotalMaps
	out := make([]mapreduce.KeyEstimate, 0, len(r.keys))
	for key, entries := range r.keys {
		tsc := make([]stats.ThreeStageCluster, len(r.clusters))
		for i, c := range r.clusters {
			tsc[i] = stats.ThreeStageCluster{M: c.items, Sam: c.sampled}
		}
		for _, e := range entries {
			tsc[e.cluster].G = e.pairs
			tsc[e.cluster].Stat = e.stat
		}
		est := stats.ThreeStageMean(int64(view.TotalMaps), tsc, view.Confidence)
		if exact {
			est.Err = 0
			est.StdErr = 0
		}
		out = append(out, mapreduce.KeyEstimate{Key: key, Est: est, Exact: exact})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
