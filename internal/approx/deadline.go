package approx

import (
	"fmt"
	"math"

	"approxhadoop/internal/mapreduce"
)

// DeadlineSLO is the controller for per-job deadline service-level
// objectives. It inverts the paper's target-error optimization
// (Section 4.4): instead of minimizing time subject to an error bound,
// it minimizes the predicted error subject to a virtual-time budget.
//
// Operation: a small pilot wave runs at PilotRatio to measure the cost
// parameters (t0, tr, tp) and the per-key variance components. Once
// the pilot completes, the controller computes the remaining budget
// against Slack*Deadline and, scanning the sampling-ratio grid, asks
// for each candidate ratio how many additional map tasks fit the
// budget given the job's effective slot share (waves of TotalMapSlots
// tasks, each costing t0 + Mbar*tr + m*tp). Among the affordable
// (n2, m) pairs it picks the one with the smallest predicted
// worst-key relative error via Equation 7, exactly the machinery the
// TargetError controller searches in the other direction. The plan is
// re-derived at every wave boundary with the accumulated statistics,
// so early mispredictions self-correct while budget remains.
//
// The intervals stay honest: tasks beyond the plan are dropped — not
// silently truncated — so the multi-stage estimators widen the 95%
// confidence intervals to account for exactly what was skipped.
//
// When even the cheapest configuration cannot produce a valid
// interval by the deadline (fewer than two clusters would complete),
// the controller aborts the job with a descriptive infeasibility
// error rather than returning a result whose bounds would be a lie.
// BestEffort instead lets such a job finish with whatever it has
// (unbounded intervals included).
//
// DeadlineSLO plans toward Slack*Deadline but does not enforce the
// cutoff itself; pair it with RetryPolicy.JobDeadline so the
// framework hard-stops the map phase if the plan mispredicts.
type DeadlineSLO struct {
	// Deadline is the virtual-time budget, in seconds from job start,
	// for the map phase. Required.
	Deadline float64
	// PilotTasks and PilotRatio size the pilot wave (defaults: 1/4 of
	// the job's map-slot share, min 2, at ratio 0.01).
	PilotTasks int
	PilotRatio float64
	// RatioGrid overrides the sampling-ratio candidates.
	RatioGrid []float64
	// Slack multiplies the deadline during planning (default 0.8):
	// plans are derived from noisy pilot statistics, and the reduces
	// still need time to finalize after the last map, so budgeting
	// against a tighter deadline keeps the realized runtime inside the
	// user's SLO.
	Slack float64
	// BestEffort finishes infeasible jobs with whatever completed
	// (possibly unbounded intervals) instead of aborting them.
	BestEffort bool

	firstWave int
	ratio     float64 // sampling ratio for post-solve launches
	planned   int     // total maps to launch; 0 = not yet planned
	solved    bool
	solveAt   int // completed count that triggers the next re-solve
}

// Name implements mapreduce.Controller.
func (c *DeadlineSLO) Name() string {
	return fmt.Sprintf("deadline-slo(%gs)", c.Deadline)
}

func (c *DeadlineSLO) init(v *mapreduce.JobView) {
	if c.firstWave > 0 {
		return
	}
	if c.PilotTasks <= 0 {
		c.PilotTasks = v.TotalMapSlots / 4
		if c.PilotTasks < 2 {
			c.PilotTasks = 2
		}
	}
	if c.PilotTasks > v.TotalMaps {
		c.PilotTasks = v.TotalMaps
	}
	if c.PilotRatio <= 0 || c.PilotRatio > 1 {
		c.PilotRatio = 0.01
	}
	c.firstWave = c.PilotTasks
}

// budget returns the remaining planning budget at the current instant.
func (c *DeadlineSLO) budget(v *mapreduce.JobView) float64 {
	slack := c.Slack
	if slack <= 0 || slack > 1 {
		slack = 0.8
	}
	return slack*c.Deadline - v.Elapsed
}

// Plan implements mapreduce.Controller.
func (c *DeadlineSLO) Plan(v *mapreduce.JobView) (float64, mapreduce.PlanAction) {
	c.init(v)
	if !c.solved {
		if v.Launched < c.firstWave {
			return c.PilotRatio, mapreduce.PlanRun
		}
		// Pilot fully launched: wait for it before spending budget.
		return 0, mapreduce.PlanDefer
	}
	if v.Launched >= c.planned {
		// Plan exhausted: hold the rest pending until Completed either
		// drops them or, at a wave boundary with budget left over,
		// extends the plan.
		return 0, mapreduce.PlanDefer
	}
	return c.ratio, mapreduce.PlanRun
}

// Completed implements mapreduce.Controller.
func (c *DeadlineSLO) Completed(v *mapreduce.JobView) mapreduce.Directive {
	c.init(v)
	switch {
	case !c.solved:
		if v.Completed < c.firstWave {
			return mapreduce.Directive{}
		}
		return c.solve(v)
	case v.Launched >= c.planned && v.Running == 0:
		// Everything planned has finished. If budget remains, re-solve
		// to spend it on accuracy; otherwise drop what's left so the
		// job finalizes inside the deadline.
		if v.Pending == 0 {
			return mapreduce.Directive{}
		}
		if c.budget(v) > 0 {
			return c.solve(v)
		}
		return mapreduce.Directive{DropPending: true, SampleRatio: c.ratio}
	case v.Completed >= c.solveAt && v.Launched < c.planned:
		// Wave boundary: refine the plan with the richer statistics.
		return c.solve(v)
	}
	return mapreduce.Directive{}
}

// solve picks (n2, m) = (additional maps, per-task sample size)
// minimizing the predicted worst-key relative error subject to the
// remaining budget, and stores the plan. It returns the directive
// enacting the decision (possibly an infeasibility abort).
func (c *DeadlineSLO) solve(v *mapreduce.JobView) mapreduce.Directive {
	c.solved = true
	c.solveAt = v.Completed + v.TotalMapSlots // next wave boundary
	c.planned = v.Launched
	if c.ratio <= 0 {
		c.ratio = c.PilotRatio
	}

	budget := c.budget(v)
	remaining := v.TotalMaps - v.Launched
	if remaining <= 0 {
		return mapreduce.Directive{}
	}
	if budget <= 0 {
		return c.outOfBudget(v)
	}

	t0, tr, tp := v.CostParams()
	mbar := v.AvgItems
	n1 := v.Completed
	committed := v.Running // already launched, will complete regardless
	comps := gatherPlanComponents(v)
	grid := c.RatioGrid
	if len(grid) == 0 {
		grid = defaultRatioGrid()
	}
	slots := v.TotalMapSlots
	if slots < 1 {
		slots = 1
	}
	// Tasks already running occupy the slots until their wave drains;
	// that time comes out of the budget before any new wave can start.
	// Without this reservation every wave-boundary re-solve would
	// overcommit by roughly one wave and blow the deadline.
	drain := 0.0
	if v.Running > 0 {
		mCur := math.Max(1, math.Round(c.ratio*mbar))
		drain = t0 + mbar*tr + mCur*tp
	}

	type candidate struct {
		extra int
		ratio float64
		err   float64 // predicted worst-key relative error
		cost  float64
	}
	best := candidate{extra: -1}
	for _, ratio := range grid {
		m := math.Max(1, math.Round(ratio*mbar))
		tmap := t0 + mbar*tr + m*tp
		if tmap <= 0 {
			tmap = math.SmallestNonzeroFloat64
		}
		avail := budget - drain
		if avail < 0 {
			avail = 0
		}
		waves := int(avail / tmap)
		extra := waves * slots
		if extra > remaining {
			extra = remaining
		}
		cand := candidate{extra: extra, ratio: m / mbar, cost: float64(extra) * tmap}
		if mbar <= 0 {
			cand.ratio = ratio
		}
		if len(comps) > 0 && n1 >= 2 && mbar > 0 {
			cand.err = worstRelError(comps, v, n1, committed+extra, mbar, m)
		} else {
			// No variance statistics yet (e.g. precise reducers):
			// surrogate objective — prefer more coverage, then more
			// data per task.
			cand.err = 1/(float64(extra)+2) - cand.ratio*1e-9
		}
		better := false
		switch {
		case best.extra < 0:
			better = true
		case cand.err < best.err:
			better = true
		//lint:ignore nofloateq exact ties between grid candidates break toward the cheaper plan
		case cand.err == best.err && cand.cost < best.cost:
			better = true
		}
		if better {
			best = cand
		}
	}

	if best.extra <= 0 {
		// Not even one more wave fits the budget.
		return c.outOfBudget(v)
	}
	if best.ratio > 1 {
		best.ratio = 1
	}
	c.ratio = best.ratio
	c.planned = v.Launched + best.extra
	return mapreduce.Directive{SampleRatio: c.ratio}
}

// outOfBudget resolves a plan that cannot afford further launches:
// drop the pending tail when enough clusters (two) will complete to
// form a valid interval, otherwise declare the SLO infeasible.
func (c *DeadlineSLO) outOfBudget(v *mapreduce.JobView) mapreduce.Directive {
	c.planned = v.Launched
	if v.Completed+v.Running >= 2 || c.BestEffort {
		return mapreduce.Directive{DropPending: true, SampleRatio: c.ratio}
	}
	return mapreduce.Directive{Abort: fmt.Errorf(
		"approx: deadline SLO of %gs is infeasible: %.1fs of the planning budget already consumed with only %d map tasks complete — fewer than the two sampling clusters a confidence interval requires; raise the deadline or set BestEffort",
		c.Deadline, v.Elapsed, v.Completed)}
}

// worstRelError evaluates Equation 7 for every key and returns the
// worst predicted relative half-width at the candidate plan (n1
// completed plus n2 further clusters at per-task sample size m).
func worstRelError(comps []PlanComponent, v *mapreduce.JobView, n1, n2 int, mbar, m float64) float64 {
	worst := 0.0
	for _, pc := range comps {
		errHalf := PredictError(pc, v.TotalMaps, n1, n2, mbar, m, v.Confidence)
		if math.IsInf(errHalf, 1) || math.IsNaN(errHalf) {
			return math.Inf(1)
		}
		rel := errHalf
		if pc.Tau != 0 {
			rel = errHalf / math.Abs(pc.Tau)
		}
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// gatherPlanComponents pulls Equation 7 planning statistics from every
// partition's MultiStageReducer (shared by the TargetError and
// DeadlineSLO planners).
func gatherPlanComponents(v *mapreduce.JobView) []PlanComponent {
	if v.Logics == nil {
		return nil
	}
	view := mapreduce.EstimateView{
		TotalMaps:  v.TotalMaps,
		Consumed:   v.Completed,
		Dropped:    v.Dropped,
		Confidence: v.Confidence,
	}
	var all []PlanComponent
	for _, logic := range v.Logics() {
		if msr, ok := logic.(*MultiStageReducer); ok {
			all = append(all, msr.PlanComponents(view)...)
		}
	}
	return all
}
