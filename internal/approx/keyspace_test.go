package approx

import (
	"math"
	"testing"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// feedClusters pushes n clusters of synthetic per-key stats into r.
func feedClusters(r *MultiStageReducer, n int, items, sampled int64, keysPerCluster func(task int) map[string]stats.RunningStat) {
	for task := 0; task < n; task++ {
		r.Consume(&mapreduce.MapOutput{
			TaskID:   task,
			Items:    items,
			Sampled:  sampled,
			Combined: keysPerCluster(task),
		})
	}
}

func TestMissingKeyBound(t *testing.T) {
	r := NewMultiStageReducer(OpSum)
	view := mapreduce.EstimateView{TotalMaps: 20, Consumed: 10, Confidence: 0.95}
	feedClusters(r, 10, 1000, 100, func(task int) map[string]stats.RunningStat {
		rs := stats.RunningStat{}
		for i := 0; i < 50; i++ {
			rs.Add(1)
		}
		return map[string]stats.RunningStat{"common": rs}
	})
	bound := r.MissingKeyBound(view)
	if bound.Value != 0 {
		t.Errorf("missing key value = %v, want 0", bound.Value)
	}
	if bound.Err <= 0 || math.IsInf(bound.Err, 1) {
		t.Fatalf("missing key bound = %v", bound.Err)
	}
	// The bound must be far smaller than the bounds on observed keys
	// (the paper: ±197 vs ±33,408 for WikiLength).
	common := r.Finalize(view)[0]
	if bound.Err >= common.Est.Value {
		t.Errorf("missing-key bound %v should be far below the common key's value %v",
			bound.Err, common.Est.Value)
	}
	// More sampled units tighten the bound.
	r2 := NewMultiStageReducer(OpSum)
	feedClusters(r2, 10, 1000, 1000, func(int) map[string]stats.RunningStat {
		return map[string]stats.RunningStat{}
	})
	b2 := r2.MissingKeyBound(view)
	if b2.Err >= bound.Err {
		t.Errorf("10x sampling should tighten missing-key bound: %v >= %v", b2.Err, bound.Err)
	}
}

func TestMissingKeyBoundNoSamples(t *testing.T) {
	r := NewMultiStageReducer(OpSum)
	b := r.MissingKeyBound(mapreduce.EstimateView{TotalMaps: 5, Confidence: 0.95})
	if !math.IsInf(b.Err, 1) {
		t.Errorf("no samples should give an infinite bound, got %v", b.Err)
	}
}

func TestFinalizeWithKnownKeys(t *testing.T) {
	r := NewMultiStageReducer(OpSum)
	view := mapreduce.EstimateView{TotalMaps: 10, Consumed: 5, Confidence: 0.95}
	feedClusters(r, 5, 100, 50, func(int) map[string]stats.RunningStat {
		rs := stats.RunningStat{}
		rs.Add(3)
		rs.Add(4)
		return map[string]stats.RunningStat{"seen": rs}
	})
	out := r.FinalizeWithKnownKeys(view, []string{"seen", "never-a", "never-b"})
	if len(out) != 3 {
		t.Fatalf("outputs = %d, want 3", len(out))
	}
	found := map[string]mapreduce.KeyEstimate{}
	for _, o := range out {
		found[o.Key] = o
	}
	if found["never-a"].Est.Value != 0 || found["never-a"].Est.Err <= 0 {
		t.Errorf("missing key estimate: %+v", found["never-a"].Est)
	}
	if found["seen"].Est.Value <= 0 {
		t.Errorf("seen key estimate: %+v", found["seen"].Est)
	}
	// Without known keys it's plain Finalize.
	if got := r.FinalizeWithKnownKeys(view, nil); len(got) != 1 {
		t.Errorf("nil known keys should be plain finalize: %d", len(got))
	}
}

func TestDistinctKeysChao(t *testing.T) {
	// Population with 200 distinct keys, Zipf-ish unit frequencies;
	// sample a fraction of units and check the Chao estimate recovers
	// the order of magnitude and brackets the truth.
	rng := stats.NewRand(9)
	trueKeys := 200
	r := NewMultiStageReducer(OpSum)
	view := mapreduce.EstimateView{TotalMaps: 50, Consumed: 10, Dropped: 40, Confidence: 0.95}
	zipf := stats.NewZipf(rng, 1.3, uint64(trueKeys))
	for task := 0; task < 10; task++ {
		combined := map[string]stats.RunningStat{}
		for i := 0; i < 120; i++ {
			k := zipf.Next()
			key := "k" + string(rune('A'+k%26)) + string(rune('a'+(k/26)%26)) + string(rune('0'+(k/676)%10))
			rs := combined[key]
			rs.Add(1)
			combined[key] = rs
		}
		r.Consume(&mapreduce.MapOutput{TaskID: task, Items: 500, Sampled: 120, Combined: combined})
	}
	est := r.DistinctKeys(view)
	observed := float64(len(r.keys))
	if est.Value < observed {
		t.Errorf("Chao estimate %v cannot be below observed %v", est.Value, observed)
	}
	if est.Value > 3*float64(trueKeys) {
		t.Errorf("Chao estimate %v way above plausible key space %d", est.Value, trueKeys)
	}
}

func TestDistinctKeysExact(t *testing.T) {
	r := NewMultiStageReducer(OpSum)
	view := mapreduce.EstimateView{TotalMaps: 2, Consumed: 2, Confidence: 0.95}
	feedClusters(r, 2, 10, 10, func(int) map[string]stats.RunningStat {
		rs := stats.RunningStat{}
		rs.Add(1)
		return map[string]stats.RunningStat{"a": rs, "b": rs}
	})
	est := r.DistinctKeys(view)
	if !stats.AlmostEqual(est.Value, 2, 1e-12) || est.Err != 0 {
		t.Errorf("exhaustive distinct count = %+v, want exactly 2", est)
	}
}

func TestDistinctKeysSaturated(t *testing.T) {
	// All keys seen many times: no singletons -> no extrapolation.
	r := NewMultiStageReducer(OpSum)
	view := mapreduce.EstimateView{TotalMaps: 10, Consumed: 2, Dropped: 8, Confidence: 0.95}
	feedClusters(r, 2, 100, 50, func(int) map[string]stats.RunningStat {
		rs := stats.RunningStat{}
		for i := 0; i < 25; i++ {
			rs.Add(1)
		}
		return map[string]stats.RunningStat{"x": rs, "y": rs}
	})
	est := r.DistinctKeys(view)
	if !stats.AlmostEqual(est.Value, 2, 1e-12) || est.Err != 0 {
		t.Errorf("saturated distinct count = %+v", est)
	}
}

func TestThreeStageReducerMeanOverPairs(t *testing.T) {
	// Cluster A units produce 3 pairs each of value 2; cluster B units
	// produce 1 pair each of value 8. Mean over pairs = (3*2+1*8)/4 = 3.5
	// per unit-pair mix; with equal unit counts the pair-weighted mean
	// is (6+8)/(3+1) = 3.5.
	r := NewThreeStageReducer()
	view := mapreduce.EstimateView{TotalMaps: 2, Consumed: 2, Confidence: 0.95}
	a := stats.RunningStat{}
	for i := 0; i < 30; i++ { // 10 units x 3 pairs of value 2
		a.Add(2)
	}
	b := stats.RunningStat{}
	for i := 0; i < 10; i++ { // 10 units x 1 pair of value 8
		b.Add(8)
	}
	r.Consume(&mapreduce.MapOutput{TaskID: 0, Items: 10, Sampled: 10,
		Combined: map[string]stats.RunningStat{"m": a}})
	r.Consume(&mapreduce.MapOutput{TaskID: 1, Items: 10, Sampled: 10,
		Combined: map[string]stats.RunningStat{"m": b}})
	out := r.Finalize(view)
	if len(out) != 1 {
		t.Fatalf("outputs = %d", len(out))
	}
	if got := out[0].Est.Value; math.Abs(got-3.5) > 1e-9 {
		t.Errorf("pair mean = %v, want 3.5 (pair-weighted, not unit-weighted)", got)
	}
	if !out[0].Exact {
		t.Error("full consumption should be exact")
	}
}

func TestThreeStageReducerRawPairsAndEstimates(t *testing.T) {
	r := NewThreeStageReducer()
	view := mapreduce.EstimateView{TotalMaps: 4, Consumed: 2, Dropped: 0, Confidence: 0.95}
	r.Consume(&mapreduce.MapOutput{TaskID: 0, Items: 5, Sampled: 3,
		Pairs: []mapreduce.KV{{Key: "m", Value: 1}, {Key: "m", Value: 3}}})
	r.Consume(&mapreduce.MapOutput{TaskID: 1, Items: 5, Sampled: 3,
		Pairs: []mapreduce.KV{{Key: "m", Value: 2}}})
	out := r.Estimates(view)
	if len(out) != 1 || out[0].Exact {
		t.Fatalf("estimates = %+v", out)
	}
	if got := out[0].Est.Value; math.Abs(got-2) > 1e-9 {
		t.Errorf("pair mean = %v, want 2", got)
	}
}
