package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureDep is a sibling fixture package a fixture imports; it is
// typechecked first and analyzed together with the main fixture so the
// whole-program analyzers see across the package boundary.
type fixtureDep struct{ dir, path string }

// fixtureCases maps each testdata/src directory to the import path its
// package poses as. virtualclock only fires inside simulator packages,
// so that fixture borrows a simulator path; the lockheld fixture poses
// as the job service for the same reason. The purity fixture spans two
// packages: the violation lives in the dep package, where the
// intra-package sharedstate closure provably cannot see it.
var fixtureCases = []struct {
	dir, path string
	deps      []fixtureDep
}{
	{dir: "virtualclock", path: "approxhadoop/internal/cluster"},
	{dir: "seededrand", path: "example.test/workload"},
	{dir: "nofloateq", path: "example.test/floats"},
	{dir: "nopanic", path: "example.test/lib"},
	{dir: "errcheck", path: "example.test/errs"},
	{dir: "ignore", path: "example.test/ignored"},
	{dir: "sharedstate", path: "example.test/compute"},
	{dir: "purity", path: "example.test/purity",
		deps: []fixtureDep{{dir: "purity/dep", path: "example.test/purity/dep"}}},
	{dir: "hotpath", path: "example.test/hot"},
	{dir: "lockheld", path: "approxhadoop/internal/jobserver"},
}

// wantRe matches expected-diagnostic comments in fixtures:
//
//	expr // want: analyzer[ analyzer...]      (on this line)
//	// want-above: analyzer                   (on the previous line)
var wantRe = regexp.MustCompile(`//\s*want(-above)?:\s*([a-z ]+)$`)

// expectedDiags scans a fixture file for want comments and returns the
// expected "line:analyzer" keys.
func expectedDiags(t *testing.T, path string) map[string]int {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ln := i + 1
		if m[1] == "-above" {
			ln--
		}
		for _, name := range strings.Fields(m[2]) {
			want[fmt.Sprintf("%d:%s", ln, name)]++
		}
	}
	return want
}

// parseFixtureDir parses the .go files directly inside
// testdata/src/<dir> and merges their want comments into want.
func parseFixtureDir(t *testing.T, fset *token.FileSet, dir string, want map[string]int) []*ast.File {
	t.Helper()
	full := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(full, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for k, n := range expectedDiags(t, name) {
			want[k] += n
		}
	}
	return files
}

// fixtureImports lists the stdlib packages fixtures may import.
var fixtureImports = []string{"time", "math/rand", "fmt", "strings", "errors", "sync", "strconv", "os"}

// loadFixture typechecks one fixture case (dep packages first, wired
// through a registering importer) and returns the packages in
// dependency order plus the merged want keys.
func loadFixture(t *testing.T, fset *token.FileSet, imp types.Importer, c struct {
	dir, path string
	deps      []fixtureDep
}) ([]*Package, map[string]int) {
	t.Helper()
	si := NewSourceImporter(imp)
	want := map[string]int{}
	var pkgs []*Package
	for _, dep := range c.deps {
		files := parseFixtureDir(t, fset, dep.dir, want)
		pkg, err := CheckParsed(fset, dep.path, files, si)
		if err != nil {
			t.Fatal(err)
		}
		si.Register(pkg.Types)
		pkgs = append(pkgs, pkg)
	}
	files := parseFixtureDir(t, fset, c.dir, want)
	pkg, err := CheckParsed(fset, c.path, files, si)
	if err != nil {
		t.Fatal(err)
	}
	return append(pkgs, pkg), want
}

func TestFixtures(t *testing.T) {
	fset := token.NewFileSet()
	imp, err := StdImporter("../..", fset, fixtureImports...)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, c := range fixtureCases {
		t.Run(strings.ReplaceAll(c.dir, "/", "_"), func(t *testing.T) {
			pkgs, want := loadFixture(t, fset, imp, c)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no want comments", c.dir)
			}
			got := map[string]int{}
			for _, d := range Run(pkgs, All()) {
				got[fmt.Sprintf("%d:%s", d.Pos.Line, d.Analyzer)]++
				covered[d.Analyzer] = true
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("expected %d diagnostic(s) at %s, got %d", n, k, got[k])
				}
			}
			for k, n := range got {
				if want[k] != n {
					t.Errorf("unexpected diagnostic(s) at %s (%d)", k, n)
				}
			}
		})
	}
	// Every analyzer in the registry must have caught at least one
	// fixture violation (plus the suppression pseudo-analyzer).
	var missing []string
	for _, a := range All() {
		if !covered[a.Name] {
			missing = append(missing, a.Name)
		}
	}
	if !covered["ignore"] {
		missing = append(missing, "ignore")
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("analyzers with no fixture coverage: %v", missing)
	}
}

// TestStaleIgnores checks both halves of stale-suppression detection:
// a live directive keeps its finding suppressed and is not reported,
// while a directive that suppresses nothing is reported (only) when
// StaleIgnores is on.
func TestStaleIgnores(t *testing.T) {
	fset := token.NewFileSet()
	imp, err := StdImporter("../..", fset, fixtureImports...)
	if err != nil {
		t.Fatal(err)
	}
	files := parseFixtureDir(t, fset, "stale", map[string]int{})
	pkg, err := CheckParsed(fset, "example.test/stale", files, imp)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, All()); len(diags) != 0 {
		t.Errorf("without StaleIgnores: want 0 diagnostics, got %v", diags)
	}
	diags := RunWithOptions([]*Package{pkg}, All(), Options{StaleIgnores: true})
	if len(diags) != 1 {
		t.Fatalf("with StaleIgnores: want exactly 1 diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != "ignore" || !strings.Contains(d.Message, "stale lint:ignore nopanic") {
		t.Errorf("unexpected stale report: %s", d)
	}
}

// TestSelect covers the -enable/-disable resolution: unknown names
// must error instead of silently running nothing.
func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\",\"\") = %d analyzers, err %v; want full suite", len(all), err)
	}
	one, err := Select("errcheck", "")
	if err != nil || len(one) != 1 || one[0].Name != "errcheck" {
		t.Fatalf("Select(errcheck) = %v, err %v", one, err)
	}
	most, err := Select("", "nopanic,errcheck")
	if err != nil || len(most) != len(All())-2 {
		t.Fatalf("Select(disable two) = %d analyzers, err %v", len(most), err)
	}
	for _, a := range most {
		if a.Name == "nopanic" || a.Name == "errcheck" {
			t.Errorf("disabled analyzer %s still selected", a.Name)
		}
	}
	if _, err := Select("bogus", ""); err == nil {
		t.Error("Select(enable bogus) did not error")
	}
	if _, err := Select("", "bogus"); err == nil {
		t.Error("Select(disable bogus) did not error")
	}
	if _, err := Select("errcheck,bogus", ""); err == nil {
		t.Error("Select with one bad name in a list did not error")
	}
}

// TestDeterminism requires byte-identical JSON output run-to-run and
// under permuted package order, which the stable sort plus dedupe
// guarantees.
func TestDeterminism(t *testing.T) {
	fset := token.NewFileSet()
	imp, err := StdImporter("../..", fset, fixtureImports...)
	if err != nil {
		t.Fatal(err)
	}
	var c = fixtureCases[7] // the two-package purity fixture
	if c.dir != "purity" {
		t.Fatal("fixture order changed; update the index")
	}
	pkgs, _ := loadFixture(t, fset, imp, c)
	if len(pkgs) != 2 {
		t.Fatalf("want 2 packages, got %d", len(pkgs))
	}
	encode := func(pkgs []*Package) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(RunWithOptions(pkgs, All(), Options{StaleIgnores: true})); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := encode(pkgs)
	if len(first) <= len("[]\n") {
		t.Fatal("determinism fixture produced no findings")
	}
	if again := encode(pkgs); !bytes.Equal(first, again) {
		t.Errorf("output differs between identical runs:\n%s\nvs\n%s", first, again)
	}
	reversed := []*Package{pkgs[1], pkgs[0]}
	if perm := encode(reversed); !bytes.Equal(first, perm) {
		t.Errorf("output depends on package order:\n%s\nvs\n%s", first, perm)
	}
}

// TestRepoClean runs the full suite — including the whole-program
// purity, hotpath, and lockheld analyzers and stale-suppression
// detection — over the whole repository. The tree must stay
// lint-clean: new wall-clock reads, global rand draws, exact float
// comparisons, stray panics, dropped errors, compute-plane impurities,
// hot-path allocations, lock-discipline breaches, and dead lint:ignore
// comments show up here (and in CI) immediately.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole repository")
	}
	loader := &Loader{Dir: "../..", Tests: true}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunWithOptions(pkgs, All(), Options{StaleIgnores: true}); len(diags) > 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
