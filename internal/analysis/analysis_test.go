package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureCases maps each testdata/src directory to the import path its
// package poses as. virtualclock only fires inside simulator packages,
// so that fixture borrows a simulator path.
var fixtureCases = []struct{ dir, path string }{
	{"virtualclock", "approxhadoop/internal/cluster"},
	{"seededrand", "example.test/workload"},
	{"nofloateq", "example.test/floats"},
	{"nopanic", "example.test/lib"},
	{"errcheck", "example.test/errs"},
	{"ignore", "example.test/ignored"},
	{"sharedstate", "example.test/compute"},
}

// wantRe matches expected-diagnostic comments in fixtures:
//
//	expr // want: analyzer[ analyzer...]      (on this line)
//	// want-above: analyzer                   (on the previous line)
var wantRe = regexp.MustCompile(`//\s*want(-above)?:\s*([a-z ]+)$`)

// expectedDiags scans a fixture file for want comments and returns the
// expected "line:analyzer" keys.
func expectedDiags(t *testing.T, path string) map[string]int {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ln := i + 1
		if m[1] == "-above" {
			ln--
		}
		for _, name := range strings.Fields(m[2]) {
			want[fmt.Sprintf("%d:%s", ln, name)]++
		}
	}
	return want
}

func TestFixtures(t *testing.T) {
	fset := token.NewFileSet()
	imp, err := StdImporter("../..", fset, "time", "math/rand", "fmt", "strings", "errors", "sync")
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, c := range fixtureCases {
		t.Run(c.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", c.dir)
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var files []*ast.File
			want := map[string]int{}
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				name := filepath.Join(dir, e.Name())
				f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
				if err != nil {
					t.Fatal(err)
				}
				files = append(files, f)
				for k, n := range expectedDiags(t, name) {
					want[k] += n
				}
			}
			if len(want) == 0 {
				t.Fatalf("fixture %s has no want comments", c.dir)
			}
			pkg, err := CheckParsed(fset, c.path, files, imp)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, d := range Run([]*Package{pkg}, All()) {
				got[fmt.Sprintf("%d:%s", d.Pos.Line, d.Analyzer)]++
				covered[d.Analyzer] = true
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("expected %d diagnostic(s) at %s, got %d", n, k, got[k])
				}
			}
			for k, n := range got {
				if want[k] != n {
					t.Errorf("unexpected diagnostic(s) at %s (%d)", k, n)
				}
			}
		})
	}
	// Every analyzer in the registry must have caught at least one
	// fixture violation (plus the suppression pseudo-analyzer).
	var missing []string
	for _, a := range All() {
		if !covered[a.Name] {
			missing = append(missing, a.Name)
		}
	}
	if !covered["ignore"] {
		missing = append(missing, "ignore")
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("analyzers with no fixture coverage: %v", missing)
	}
}

// TestRepoClean runs the full suite over the whole repository. The
// tree must stay lint-clean: new wall-clock reads, global rand draws,
// exact float comparisons, stray panics, and dropped errors show up
// here (and in CI) immediately.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole repository")
	}
	loader := &Loader{Dir: "../..", Tests: true}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkgs, All()); len(diags) > 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
