package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// schedulerPlaneTypes are the type names whose state belongs to the
// single-threaded virtual-time plane. Any selector on a value of such
// a type inside compute-plane code is a data race waiting to happen
// (and, even when benign, makes results depend on pool scheduling).
var schedulerPlaneTypes = map[string]bool{
	"tracker":     true,
	"Engine":      true,
	"Server":      true,
	"RunningTask": true,
	// The streaming plane's router: Pipeline configuration and the
	// runState owning window lifecycle and controller plans live on the
	// one goroutine driving Run; reservoir folds dispatched to the
	// compute pool must never reach back into either.
	"Pipeline": true,
	"runState": true,
}

// Sharedstate enforces the two-plane execution contract of the
// worker-pool simulator: functions marked //approx:compute, plus
// everything they statically reach inside the same package, must not
// touch scheduler/engine state, the shared Job.Meter, or package-level
// variables. The closure is intra-package; the purity analyzer extends
// the same checks across package boundaries via the call graph and
// reports frontier calls the closure cannot follow.
var Sharedstate = &Analyzer{
	Name: "sharedstate",
	Doc: "forbid compute-plane code (functions marked //approx:compute and their " +
		"same-package callees) from touching scheduler-plane state: selectors on " +
		"tracker/Engine/Server/RunningTask values (batch plane) and Pipeline/runState " +
		"values (stream router), the shared Job.Meter, writes " +
		"to package-level variables, and sync.Pool (pool hand-out order depends on " +
		"goroutine scheduling; use an attempt-owned free list like BufList); map " +
		"compute runs on pool goroutines concurrently with the virtual-time " +
		"scheduler and must stay pure",
	Run: runSharedstate,
}

func runSharedstate(p *Pass) {
	roots := p.Facts.PackageRoots(p.Pkg)
	if len(roots) == 0 {
		return
	}
	// Transitive closure over intra-package static calls, walked
	// through the shared call graph.
	graph := p.Facts.Graph()
	marked := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if marked[fn] {
			return
		}
		marked[fn] = true
		for _, callee := range graph.StaticCallees(fn) {
			if callee.Pkg() != p.Pkg {
				continue // cross-package reach is the purity analyzer's job
			}
			// A method on a scheduler-plane type is scheduler-plane
			// code, not part of the compute closure: the call site
			// itself is flagged as the violation.
			if named := recvNamed(callee); named != nil && schedulerPlaneTypes[named.Obj().Name()] {
				continue
			}
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	for _, fn := range sortedFuncs(marked) {
		info := p.Facts.DeclOf(fn)
		if info == nil || info.Decl.Body == nil {
			continue
		}
		c := &computeBodyChecker{
			info:   p.Info,
			pkg:    p.Pkg,
			fn:     fn.Name(),
			report: p.Reportf,
		}
		c.check(info.Decl.Body)
	}
}

// sortedFuncs returns the set's functions in source-position order,
// for deterministic reporting.
func sortedFuncs(set map[*types.Func]bool) []*types.Func {
	out := make([]*types.Func, 0, len(set))
	for fn := range set {
		out = append(out, fn)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos() < out[j-1].Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// computeBodyChecker reports every scheduler-plane touch inside one
// compute-plane function body. It is shared by sharedstate (intra-
// package closure) and purity (whole-program closure): info and pkg
// describe the package declaring the function, report routes to the
// owning pass, and chain carries the cross-package call-chain suffix
// purity appends to its messages.
type computeBodyChecker struct {
	info   *types.Info
	pkg    *types.Package
	fn     string
	chain  string
	report func(pos token.Pos, format string, args ...interface{})
}

func (c *computeBodyChecker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if named := derefNamed(c.info.Types[n].Type); named != nil && isSyncPool(named) {
				c.reportSyncPool(n.Pos())
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if v, ok := c.info.Defs[id].(*types.Var); ok {
					if named := derefNamed(v.Type()); named != nil && isSyncPool(named) {
						c.reportSyncPool(id.Pos())
					}
				}
			}
		case *ast.SelectorExpr:
			t := c.info.Types[n.X].Type
			if t == nil {
				return true
			}
			named := derefNamed(t)
			if named == nil {
				return true
			}
			if isSyncPool(named) {
				c.reportSyncPool(n.Pos())
			}
			obj := named.Obj()
			if schedulerPlaneTypes[obj.Name()] && fromSchedulerPlane(c.pkg, obj) {
				c.report(n.Pos(),
					"compute-plane function %s touches scheduler-plane %s state (.%s); code reachable from %s runs on pool goroutines and must stay pure%s",
					c.fn, obj.Name(), n.Sel.Name, computeDirective, c.chain)
			}
			if obj.Name() == "Job" && n.Sel.Name == "Meter" {
				c.report(n.Pos(),
					"compute-plane function %s reads the shared Job.Meter; fork a per-attempt meter (vtime.Fork) at decide time instead%s",
					c.fn, c.chain)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkPkgVarWrite(lhs)
			}
		case *ast.IncDecStmt:
			c.checkPkgVarWrite(n.X)
		}
		return true
	})
}

// isSyncPool reports whether a named type is sync.Pool. Pools hand
// buffers out in goroutine-scheduling order, so any use inside the
// compute plane lets pool size leak into results.
func isSyncPool(named *types.Named) bool {
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func (c *computeBodyChecker) reportSyncPool(pos token.Pos) {
	c.report(pos,
		"compute-plane function %s uses sync.Pool; pool hand-out order depends on goroutine scheduling — use an attempt-owned free list (mapreduce.BufList) instead%s",
		c.fn, c.chain)
}

// fromSchedulerPlane reports whether a named type belongs to the
// analyzed package or the cluster engine package — the two homes of
// scheduler-plane state (fixtures declare local doubles; the real
// Engine/Server/RunningTask live in internal/cluster).
func fromSchedulerPlane(pkg *types.Package, obj *types.TypeName) bool {
	if obj.Pkg() == nil {
		return false
	}
	if obj.Pkg() == pkg {
		return true
	}
	path := obj.Pkg().Path()
	return path == "cluster" || strings.HasSuffix(path, "/cluster")
}

// checkPkgVarWrite reports assignments and inc/dec statements whose
// target resolves to a package-level variable (of any package).
func (c *computeBodyChecker) checkPkgVarWrite(lhs ast.Expr) {
	var obj types.Object
	switch e := lhs.(type) {
	case *ast.Ident:
		obj = c.info.Uses[e]
	case *ast.SelectorExpr:
		obj = c.info.Uses[e.Sel]
	default:
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	if v.Parent() == v.Pkg().Scope() {
		c.report(lhs.Pos(),
			"compute-plane function %s writes package-level variable %s; pool workers share it, so results would depend on pool scheduling%s",
			c.fn, v.Name(), c.chain)
	}
}
