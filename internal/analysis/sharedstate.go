package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// computeDirective marks a function as compute-plane root: it (and
// every same-package function statically reachable from it) may run on
// a worker-pool goroutine concurrently with the virtual-time
// scheduler, so it must be a pure function of its arguments.
const computeDirective = "//approx:compute"

// schedulerPlaneTypes are the type names whose state belongs to the
// single-threaded virtual-time plane. Any selector on a value of such
// a type inside compute-plane code is a data race waiting to happen
// (and, even when benign, makes results depend on pool scheduling).
var schedulerPlaneTypes = map[string]bool{
	"tracker":     true,
	"Engine":      true,
	"Server":      true,
	"RunningTask": true,
}

// Sharedstate enforces the two-plane execution contract of the
// worker-pool simulator: functions marked //approx:compute, plus
// everything they statically reach inside the same package, must not
// touch scheduler/engine state, the shared Job.Meter, or package-level
// variables. The closure is intra-package and by identifier, so calls
// through interfaces (readers, mappers) are not followed — their
// implementations earn the directive themselves when they live in a
// simulator package.
var Sharedstate = &Analyzer{
	Name: "sharedstate",
	Doc: "forbid compute-plane code (functions marked //approx:compute and their " +
		"same-package callees) from touching scheduler-plane state: selectors on " +
		"tracker/Engine/Server/RunningTask values, the shared Job.Meter, writes " +
		"to package-level variables, and sync.Pool (pool hand-out order depends on " +
		"goroutine scheduling; use an attempt-owned free list like BufList); map " +
		"compute runs on pool goroutines concurrently with the virtual-time " +
		"scheduler and must stay pure",
	Run: runSharedstate,
}

func runSharedstate(p *Pass) {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fd
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == computeDirective {
						roots = append(roots, obj)
					}
				}
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	// Transitive closure over intra-package calls (functions and
	// methods alike: every callee identifier resolves through
	// Info.Uses, including the Sel of a method call).
	marked := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if marked[fn] {
			return
		}
		marked[fn] = true
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := p.Info.Uses[id].(*types.Func)
			if !ok || decls[callee] == nil {
				return true
			}
			// A method on a scheduler-plane type is scheduler-plane
			// code, not part of the compute closure: the call site
			// itself is flagged as the violation.
			if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
				if named := derefNamed(recv.Type()); named != nil && schedulerPlaneTypes[named.Obj().Name()] {
					return true
				}
			}
			visit(callee)
			return true
		})
	}
	for _, r := range roots {
		visit(r)
	}
	for fn := range marked {
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		checkComputeBody(p, fd)
	}
}

// checkComputeBody reports every scheduler-plane touch inside one
// compute-plane function body.
func checkComputeBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if named := derefNamed(p.Info.Types[n].Type); named != nil && isSyncPool(named) {
				reportSyncPool(p, name, n.Pos())
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if v, ok := p.Info.Defs[id].(*types.Var); ok {
					if named := derefNamed(v.Type()); named != nil && isSyncPool(named) {
						reportSyncPool(p, name, id.Pos())
					}
				}
			}
		case *ast.SelectorExpr:
			t := p.Info.Types[n.X].Type
			if t == nil {
				return true
			}
			named := derefNamed(t)
			if named == nil {
				return true
			}
			if isSyncPool(named) {
				reportSyncPool(p, name, n.Pos())
			}
			obj := named.Obj()
			if schedulerPlaneTypes[obj.Name()] && fromSchedulerPlane(p, obj) {
				p.Reportf(n.Pos(),
					"compute-plane function %s touches scheduler-plane %s state (.%s); code reachable from %s runs on pool goroutines and must stay pure",
					name, obj.Name(), n.Sel.Name, computeDirective)
			}
			if obj.Name() == "Job" && n.Sel.Name == "Meter" {
				p.Reportf(n.Pos(),
					"compute-plane function %s reads the shared Job.Meter; fork a per-attempt meter (vtime.Fork) at decide time instead",
					name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkPkgVarWrite(p, name, lhs)
			}
		case *ast.IncDecStmt:
			checkPkgVarWrite(p, name, n.X)
		}
		return true
	})
}

// isSyncPool reports whether a named type is sync.Pool. Pools hand
// buffers out in goroutine-scheduling order, so any use inside the
// compute plane lets pool size leak into results.
func isSyncPool(named *types.Named) bool {
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func reportSyncPool(p *Pass, fn string, pos token.Pos) {
	p.Reportf(pos,
		"compute-plane function %s uses sync.Pool; pool hand-out order depends on goroutine scheduling — use an attempt-owned free list (mapreduce.BufList) instead",
		fn)
}

// derefNamed unwraps one pointer level and returns the named type, if
// any.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fromSchedulerPlane reports whether a named type belongs to this
// package or the cluster engine package — the two homes of
// scheduler-plane state (fixtures declare local doubles; the real
// Engine/Server/RunningTask live in internal/cluster).
func fromSchedulerPlane(p *Pass, obj *types.TypeName) bool {
	if obj.Pkg() == nil {
		return false
	}
	if obj.Pkg() == p.Pkg {
		return true
	}
	path := obj.Pkg().Path()
	return path == "cluster" || strings.HasSuffix(path, "/cluster")
}

// checkPkgVarWrite reports assignments and inc/dec statements whose
// target resolves to a package-level variable (of any package).
func checkPkgVarWrite(p *Pass, fn string, lhs ast.Expr) {
	var obj types.Object
	switch e := lhs.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[e.Sel]
	default:
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	if v.Parent() == v.Pkg().Scope() {
		p.Reportf(lhs.Pos(),
			"compute-plane function %s writes package-level variable %s; pool workers share it, so results would depend on pool scheduling",
			fn, v.Name())
	}
}
