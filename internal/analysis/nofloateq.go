package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Nofloateq flags exact ==/!= between floating-point operands.
var Nofloateq = &Analyzer{
	Name: "nofloateq",
	Doc: "flag ==/!= between floating-point operands (estimator outputs " +
		"go through enough transcendental math that bit-exact equality is " +
		"fragile); compare with stats.AlmostEqual(got, want, tol). " +
		"Comparisons against the literal 0 are allowed: zero is an exact " +
		"sentinel for 'field not set' throughout the codebase",
	Run: runNofloateq,
}

func runNofloateq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p, be.X) && !isFloat(p, be.Y) {
				return true
			}
			// Exact-zero sentinel comparisons are deliberate; and a
			// comparison folded entirely at compile time cannot
			// misbehave at run time.
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			if isConst(p, be.X) && isConst(p, be.Y) {
				return true
			}
			p.Reportf(be.OpPos,
				"exact floating-point %s comparison; use stats.AlmostEqual(got, want, tol)", be.Op)
			return true
		})
	}
}

func isFloat(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(p *Pass, e ast.Expr) bool {
	return p.Info.Types[e].Value != nil
}

func isZeroConst(p *Pass, e ast.Expr) bool {
	v := p.Info.Types[e].Value
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
