// Package analysis is a stdlib-only static-analysis engine with
// repo-specific analyzers that mechanically enforce the invariants the
// paper's statistics depend on — above all simulator determinism. The
// multi-stage sampling confidence intervals and GEV tail bounds this
// repository reproduces are only meaningful if the simulated schedule
// and sample draws are a pure function of the configured seed; wall
// clocks and the global math/rand source silently break that, so the
// analyzers here forbid them (plus a few classic correctness traps:
// exact float comparison, stray panics, discarded errors).
//
// The engine loads packages through the go command (`go list -export`)
// and typechecks target sources with go/types, so analyzers see fully
// resolved types without any dependency outside the standard library.
// Findings can be suppressed with
//
//	//lint:ignore <analyzer>[,<analyzer>...] reason
//
// placed on the offending line or the line directly above it; the
// reason is mandatory. `all` suppresses every analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// lint:ignore directives.
	Name string
	// Doc is a one-paragraph description shown by `approxlint -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(p *Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one typechecked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // package import path ("_test" suffix for external test packages)
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ErrorType is the universe error interface type, for analyzers that
// look for discarded errors.
var ErrorType = types.Universe.Lookup("error").Type()

// Run applies every analyzer to every package, filters findings
// through lint:ignore directives, and returns the surviving
// diagnostics sorted by position. Malformed directives are themselves
// reported under the pseudo-analyzer "ignore".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		idx, bad := directiveIndex(pkg.Fset, pkg.Files)
		all = append(all, bad...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !idx.suppresses(d) {
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all
}
