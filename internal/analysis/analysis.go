// Package analysis is a stdlib-only static-analysis engine with
// repo-specific analyzers that mechanically enforce the invariants the
// paper's statistics depend on — above all simulator determinism. The
// multi-stage sampling confidence intervals and GEV tail bounds this
// repository reproduces are only meaningful if the simulated schedule
// and sample draws are a pure function of the configured seed; wall
// clocks and the global math/rand source silently break that, so the
// analyzers here forbid them (plus a few classic correctness traps:
// exact float comparison, stray panics, discarded errors).
//
// The engine loads packages through the go command (`go list -export`)
// and typechecks target sources with go/types, so analyzers see fully
// resolved types without any dependency outside the standard library.
// Findings can be suppressed with
//
//	//lint:ignore <analyzer>[,<analyzer>...] reason
//
// placed on the offending line or the line directly above it; the
// reason is mandatory. `all` suppresses every analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Per-package analyzers set Run;
// whole-program analyzers (which need the cross-package call graph)
// set RunProgram. Exactly one of the two must be non-nil.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// lint:ignore directives.
	Name string
	// Doc is a one-paragraph description shown by `approxlint -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(p *Pass)
	// RunProgram inspects the whole loaded program at once.
	RunProgram func(p *ProgramPass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one typechecked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // package import path ("_test" suffix for external test packages)
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the shared whole-program layer (declarations, directive
	// marks, call graph) built once per run.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ProgramPass carries the whole loaded program to one whole-program
// analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Facts    *Facts

	fset  *token.FileSet
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *ProgramPass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.fset.Position(pos).Filename, "_test.go")
}

// ErrorType is the universe error interface type, for analyzers that
// look for discarded errors.
var ErrorType = types.Universe.Lookup("error").Type()

// Options tunes one engine run.
type Options struct {
	// StaleIgnores additionally reports (under the pseudo-analyzer
	// "ignore") every well-formed lint:ignore directive that suppressed
	// nothing. Only meaningful when the full analyzer suite runs: with
	// a subset enabled, directives for the disabled analyzers would be
	// falsely stale.
	StaleIgnores bool
}

// Run applies every analyzer to every package with default options.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWithOptions(pkgs, analyzers, Options{})
}

// RunWithOptions builds the whole-program facts layer once, applies
// every analyzer (per-package Run passes and whole-program RunProgram
// passes), filters findings through lint:ignore directives, and
// returns the surviving diagnostics deduplicated and sorted in stable
// file:line:column:analyzer order, so output is byte-identical from
// run to run regardless of package order. Malformed directives are
// reported under the pseudo-analyzer "ignore".
func RunWithOptions(pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	facts := NewFacts(pkgs)

	// All packages from one Loader share a FileSet; directives are
	// indexed globally so program-level findings in any package can be
	// suppressed at their position.
	var all, raw []Diagnostic
	idx := newDirectives()
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		all = append(all, idx.scan(pkg.Fset, pkg.Files)...)
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				diags:    &raw,
			})
		}
	}
	if fset != nil {
		for _, a := range analyzers {
			if a.RunProgram == nil {
				continue
			}
			a.RunProgram(&ProgramPass{Analyzer: a, Facts: facts, fset: fset, diags: &raw})
		}
	}

	for _, d := range raw {
		if !idx.suppresses(d) {
			all = append(all, d)
		}
	}
	if opts.StaleIgnores {
		all = append(all, idx.stale()...)
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if all[i].Analyzer != all[j].Analyzer {
			return all[i].Analyzer < all[j].Analyzer
		}
		return all[i].Message < all[j].Message
	})
	out := all[:0]
	for i, d := range all {
		if i > 0 && d == all[i-1] {
			continue // identical finding reported twice (e.g. by two passes)
		}
		out = append(out, d)
	}
	return out
}
