// Fixture posed as package approxhadoop/internal/cluster, one of the
// simulator packages where wall-clock reads are forbidden.
package cluster

import "time"

func badClock() time.Duration {
	t0 := time.Now()             // want: virtualclock
	time.Sleep(time.Millisecond) // want: virtualclock
	return time.Since(t0)        // want: virtualclock
}

// Durations and duration constants are values, not clock reads.
func okDuration() time.Duration { return 3 * time.Second }
