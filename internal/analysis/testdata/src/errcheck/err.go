// Fixture for the errcheck analyzer: error results must be handled,
// whether the call is a bare statement, deferred, spawned, or
// blank-assigned.
package errs

import (
	"fmt"
	"strings"
)

func fail() error { return nil }

func failPair() (int, error) { return 0, nil }

func bad() {
	fail()            // want: errcheck
	_ = fail()        // want: errcheck
	_, _ = failPair() // want: errcheck
	defer fail()      // want: errcheck
	go fail()         // want: errcheck
}

func okHandled() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := failPair()
	_ = n
	return err
}

// The fmt.Print family and never-failing writers are excluded.
func okExcluded() {
	fmt.Println("hello")
	var sb strings.Builder
	sb.WriteString("ok")
}
