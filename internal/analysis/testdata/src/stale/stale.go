// Package stale exercises stale-suppression detection: the first
// directive suppresses a real finding and stays silent, the second
// suppresses nothing and is reported when StaleIgnores is on.
package stale

import "math/rand"

// draw uses the global rand source; the directive keeps the finding
// suppressed, so it is live.
func draw() float64 {
	//lint:ignore seededrand fixture exercises a live suppression
	return rand.Float64()
}

// clean carries a directive with nothing left to suppress.
func clean() int {
	//lint:ignore nopanic nothing here panics anymore
	return 1
}

var _ = draw
var _ = clean
