// Package hot exercises the hotpath allocation checks: constructs that
// allocate per record are flagged inside //approx:hotpath functions
// and ignored everywhere else.
package hot

import (
	"fmt"
	"strconv"
)

type rec struct {
	Key string
	Val []byte
}

// format is per-record hot: every construct below allocates once per
// loop iteration.
//
//approx:hotpath
func format(recs []rec, buf []byte) []byte {
	for _, r := range recs {
		s := r.Key + "!"                      // want: hotpath
		v := string(r.Val)                    // want: hotpath
		m := map[string]int{"n": len(v)}      // want: hotpath
		parts := []string{s}                  // want: hotpath
		f := func() int { return len(r.Key) } // want: hotpath
		extra := append(buf, r.Val...)        // want: hotpath
		_, _, _ = m, parts, extra
		_ = f
		buf = append(buf, r.Key...) // hinted append: sanctioned
	}
	return buf
}

// report is hot and calls fmt, which is flagged anywhere in the body,
// not just inside loops.
//
//approx:hotpath
func report(n int) string {
	return fmt.Sprintf("n=%d", n) // want: hotpath
}

// sink accepts boxed values.
type sink interface{ accept(any) }

// box passes a concrete struct to an interface parameter, which heap-
// allocates the copy at every call.
//
//approx:hotpath
func box(s sink, r rec) {
	s.accept(r) // want: hotpath
}

// sketchFold mirrors a sketch Add/Merge loop: the fold itself is
// allocation-free, but boxing the element into an any and
// concatenating a scratch key allocate per element.
//
//approx:hotpath
func sketchFold(elements []string, registers []uint8, s sink) {
	for _, e := range elements {
		key := "g:" + e // want: hotpath
		s.accept(e)     // want: hotpath
		h := uint64(len(key))
		registers[h%uint64(len(registers))]++
	}
}

// sketchMerge is the merge side: element-wise register max is clean,
// but a per-register error string would allocate.
//
//approx:hotpath
func sketchMerge(dst, src []uint8, tag string) string {
	msg := ""
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
		msg = tag + "!" // want: hotpath
	}
	return msg
}

// cold is unmarked: the identical constructs carry no finding.
func cold(recs []rec) string {
	out := ""
	for _, r := range recs {
		out += r.Key + ","
	}
	return strconv.Itoa(len(out)) + out
}
