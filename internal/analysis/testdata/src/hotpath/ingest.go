// Stream-ingest shapes: the router's per-record loop must route,
// stratify, and batch with zero allocations per record.
package hot

import "fmt"

// shardLike doubles for a stream shard's event arena.
type shardLike struct {
	buf []byte
	evs []int32
}

// ingest mirrors the stream router's per-record loop: subslice
// stratify and arena appends are the sanctioned idiom; the per-record
// conveniences below each allocate.
//
//approx:hotpath
func ingest(lines [][]byte, sh *shardLike) int {
	n := 0
	for _, line := range lines {
		stratum := line[:4] // subslice: allocation-free
		name := string(stratum)             // want: hotpath
		tag := fmt.Sprintf("s=%s", stratum) // want: hotpath
		evs := append(sh.evs, int32(len(sh.buf))) // want: hotpath
		_ = evs
		sh.buf = append(sh.buf, line...) // hinted append: sanctioned
		sh.evs = append(sh.evs, int32(len(name)+len(tag)))
		n++
	}
	return n
}
