// Fixture for the seededrand analyzer: top-level math/rand functions
// draw from the process-global source and are forbidden; constructors
// and methods on an injected *rand.Rand are fine.
package workload

import "math/rand"

func badGlobal() float64 {
	return rand.Float64() // want: seededrand
}

func badGlobalInt() int {
	return rand.Intn(10) // want: seededrand
}

func okInjected(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
