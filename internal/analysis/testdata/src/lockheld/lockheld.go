// Package jobserver poses as the job service so the lockheld scope
// applies: blocking operations under a held mutex, Cond.Wait outside a
// for loop, and inconsistent lock-acquisition order are flagged.
package jobserver

import (
	"os"
	"sync"
)

type svc struct {
	mu   sync.Mutex
	reg  sync.Mutex
	cond *sync.Cond
	jobs chan int
	n    int
}

// sendUnderLock blocks on a channel send while holding mu.
func (s *svc) sendUnderLock(v int) {
	s.mu.Lock()
	s.jobs <- v // want: lockheld
	s.mu.Unlock()
}

// recvUnderDeferredLock: defer Unlock keeps mu held to the end, so the
// receive blocks under it.
func (s *svc) recvUnderDeferredLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.jobs // want: lockheld
}

// waitNoLoop re-checks no predicate: Cond.Wait must sit in a for loop.
func (s *svc) waitNoLoop() {
	s.mu.Lock()
	if s.n == 0 {
		s.cond.Wait() // want: lockheld
	}
	s.mu.Unlock()
}

// waitLoop is the compliant pattern.
func (s *svc) waitLoop() {
	s.mu.Lock()
	for s.n == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// lockAB and lockBA acquire the mu/reg pair in opposite orders: a
// deadlock under contention.
func (s *svc) lockAB() {
	s.mu.Lock()
	s.reg.Lock() // want: lockheld
	s.n++
	s.reg.Unlock()
	s.mu.Unlock()
}

func (s *svc) lockBA() {
	s.reg.Lock()
	s.mu.Lock() // want: lockheld
	s.n++
	s.mu.Unlock()
	s.reg.Unlock()
}

// blockingHelper reaches a channel send; holding callers are flagged
// at their call site through the static call graph.
func (s *svc) blockingHelper(v int) {
	s.jobs <- v
}

func (s *svc) indirectSend(v int) {
	s.mu.Lock()
	s.blockingHelper(v) // want: lockheld
	s.mu.Unlock()
}

// afterUnlock is compliant: the send happens after release.
func (s *svc) afterUnlock(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.jobs <- v
}

// callback creates a literal that sends: the literal runs on some
// other goroutine, so the creator's lock is not considered held there.
func (s *svc) callback(v int) func() {
	s.mu.Lock()
	fn := func() { s.jobs <- v }
	s.mu.Unlock()
	return fn
}

// journal mimics the write-ahead log: Commit performs file I/O
// (fsync), which must never run under the service mutex — the
// production journal discipline releases mu before every append or
// commit.
type journal struct {
	f *os.File
}

func (j *journal) commit() error {
	return j.f.Sync()
}

// flushUnderLock commits the journal while holding mu: every
// submitter and streamer stalls behind the disk.
func (s *svc) flushUnderLock(j *journal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.commit() // want: lockheld
}

// syncUnderLock is the direct form: the fsync itself sits under mu.
func (s *svc) syncUnderLock(f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.Sync() // want: lockheld
}

// flushAfterUnlock is the compliant journal discipline: mutate state
// under the lock, release, then do the I/O.
func (s *svc) flushAfterUnlock(j *journal) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return j.commit()
}
