// Fixture for the nofloateq analyzer.
package floats

func badEq(a, b float64) bool {
	return a == b // want: nofloateq
}

func badNeqLiteral(a float64) bool {
	return a != 1.5 // want: nofloateq
}

// Comparisons against an exact zero are a deliberate sentinel idiom.
func okZero(a float64) bool { return a == 0 }

// A comparison folded entirely at compile time cannot misbehave.
func okConstFold() bool { return 1.5 == 3.0/2 }

// Integer equality is exact by nature.
func okInts(a, b int) bool { return a == b }
