// Package compute poses as a simulator package with worker-pool map
// compute: run is marked as a compute-plane root, so it and its
// callees must not touch scheduler-plane state.
package compute

import "sync"

// Engine doubles for the cluster engine (scheduler plane).
type Engine struct{ now float64 }

// Now reads the virtual clock.
func (e *Engine) Now() float64 { return e.now }

// tracker doubles for the job tracker (scheduler plane).
type tracker struct {
	eng      *Engine
	launched int
}

// Meterlike stands in for vtime.Meter.
type Meterlike interface{ Charge(float64) }

// Job doubles for the mapreduce job config with its shared meter.
type Job struct {
	Meter Meterlike
	Seed  int64
}

var totalPairs int

//approx:compute
func run(job *Job, t *tracker) float64 {
	totalPairs++   // want: sharedstate purity
	m := job.Meter // want: sharedstate purity
	m.Charge(1)    // want: purity
	return helper(t) + pooled() + float64(job.Seed)
}

// pooled is reachable from run: sync.Pool hands buffers out in
// goroutine-scheduling order, so every use is a determinism leak.
func pooled() float64 {
	var bufPool sync.Pool                                     // want: sharedstate purity
	bufPool.Put(make([]byte, 0, 8))                           // want: sharedstate purity
	buf, _ := bufPool.Get().([]byte)                          // want: sharedstate purity
	shared := &sync.Pool{New: func() any { return new(int) }} // want: sharedstate purity
	_ = shared
	return float64(len(buf))
}

// helper is reachable from run, so the compute contract extends here.
func helper(t *tracker) float64 {
	t.launched++       // want: sharedstate purity
	return t.eng.Now() // want: sharedstate sharedstate purity purity
}

// unmarked is NOT reachable from a compute root: the same accesses are
// legal scheduler-plane code and must not be flagged.
func unmarked(t *tracker) float64 {
	t.launched++
	return t.eng.Now()
}

// unmarkedPool is NOT reachable from a compute root: scheduler-plane
// code may use sync.Pool freely.
func unmarkedPool() interface{} {
	var p sync.Pool
	return p.Get()
}

// keep the symbols used so the fixture typechecks without imports
var _ = run
var _ = unmarked
var _ = unmarkedPool
