// Stream-plane doubles: the router (Pipeline, runState) owns window
// lifecycle on a single goroutine; reservoir folds run on the compute
// pool and may only touch shard-owned state.
package compute

// Pipeline doubles for the stream pipeline config (scheduler plane).
type Pipeline struct {
	workers int
	closed  int
}

// runState doubles for the stream router's mutable state (scheduler
// plane).
type runState struct {
	plan      float64
	nextClose int64
}

// reservoirLike doubles for the per-(window, stratum) reservoir:
// shard-owned fold state the compute plane may freely mutate.
type reservoirLike struct {
	vals []float64
	seen int64
}

// foldStream is a compute-plane root that wrongly reads pipeline
// config and advances router state from a pool goroutine.
//
//approx:compute
func foldStream(p *Pipeline, rs *runState, res *reservoirLike, v float64) int {
	if p.closed > 0 { // want: sharedstate purity
		return -1
	}
	rs.plan += v // want: sharedstate purity
	return admitStream(res, v)
}

// admitStream is the legal part of the closure: it touches only the
// reservoir its shard owns, so it carries no finding.
func admitStream(res *reservoirLike, v float64) int {
	res.seen++
	if len(res.vals) < cap(res.vals) {
		res.vals = append(res.vals, v)
		return len(res.vals) - 1
	}
	return -1
}

// routerClose is NOT reachable from a compute root: the router may
// touch its own state and the pipeline config freely.
func routerClose(p *Pipeline, rs *runState) {
	rs.nextClose++
	p.closed++
}

var _ = foldStream
var _ = routerClose
