// Fixture for the nopanic analyzer: panics in library packages should
// be errors (or documented invariants with a suppression).
package lib

import "errors"

func bad(x int) {
	if x < 0 {
		panic("negative") // want: nopanic
	}
}

func good(x int) error {
	if x < 0 {
		return errors.New("negative")
	}
	return nil
}
