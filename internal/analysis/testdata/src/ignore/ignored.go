// Fixture for the suppression machinery: a well-formed lint:ignore
// silences the finding on its line or the line below; a malformed one
// (missing reason) is itself reported and suppresses nothing.
package ignored

func suppressedSameLine(a, b float64) bool {
	return a == b //lint:ignore nofloateq fixture exercises same-line suppression
}

func suppressedLineAbove(a, b float64) bool {
	//lint:ignore nofloateq fixture exercises line-above suppression
	return a == b
}

func malformed(a, b float64) bool {
	//lint:ignore nofloateq
	// want-above: ignore
	return a != b // want: nofloateq
}

func wrongAnalyzer(a, b float64) bool {
	//lint:ignore errcheck reason names the wrong analyzer, so this does not suppress
	return a == b // want: nofloateq
}
