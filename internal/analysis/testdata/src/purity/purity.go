// Package purity exercises the whole-program reach of the purity
// analyzer: the package-variable write lives in the dep package, the
// frontier cases (interfaces and function values) demonstrate the
// //approx:pure escape hatch, and calls into non-allowlisted external
// packages are reported.
package purity

import (
	"os"
	"strconv"

	"example.test/purity/dep"
)

// handlers carries per-record callbacks.
type handlers struct {
	// onRec implementations are contractually pure.
	//
	//approx:pure
	onRec func(float64) float64
	// other carries no contract.
	other func(float64) float64
}

// Meter doubles for vtime.Meter: implementations are contractually
// pure.
//
//approx:pure
type Meter interface{ Charge(float64) }

// Raw carries no purity contract.
type Raw interface{ Touch() }

//approx:compute
func root(h *handlers, v float64) float64 {
	v = dep.Process(v) // violation is inside dep, reported there
	v = dep.Helper(v)
	v = h.onRec(v)    // pure-marked field: trusted
	return h.other(v) // want: purity
}

// localClosures shows the trusted func-value cases: locals bound to
// literals analyzed inline, and parameters filled by a checked caller.
//
//approx:compute
func localClosures(v float64, f func(float64) float64) float64 {
	g := func(x float64) float64 { return x + v }
	return g(f(v))
}

//approx:compute
func ifaces(m Meter, r Raw) {
	m.Charge(1)
	r.Touch() // want: purity
}

// external calls an allowlisted stdlib package (strconv: fine) and a
// non-allowlisted one (os: reported).
//
//approx:compute
func external(n int) string {
	pid := os.Getpid() // want: purity
	return strconv.Itoa(n + pid)
}
