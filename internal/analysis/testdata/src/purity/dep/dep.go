// Package dep sits one package away from the compute root in the
// purity fixture: the intra-package sharedstate closure stops at the
// import boundary, so the violation below is only reachable through
// the whole-program call graph.
package dep

// Calls counts invocations — shared mutable state that makes results
// depend on worker-pool scheduling.
var Calls int

// Process looks pure from the caller's side.
func Process(v float64) float64 {
	Calls++ // want: purity
	return v * 2
}

// Helper is deeper in the chain; it reuses Process, which must be
// reported only once (first chain wins).
func Helper(v float64) float64 {
	return Process(v) + 1
}
