package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string // import path; external test packages get a "_test" suffix
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves package patterns through the go command and
// typechecks their sources with go/types. Dependencies are imported
// from compiler export data (`go list -export`), so only the target
// packages themselves are parsed — no network, no third-party tooling.
type Loader struct {
	// Dir is the directory go list runs in (the module root, usually).
	Dir string
	// Tests includes _test.go files: in-package test files are checked
	// together with the package, external ones as a separate package.
	Tests bool
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` on the patterns and
// decodes the stream.
func goList(dir string, extraArgs []string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,TestImports,XTestImports,Error"},
		extraArgs...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportIndex maps import paths to compiler export data files and
// already source-checked packages.
type exportIndex struct {
	files  map[string]string
	source map[string]*types.Package
}

// Lookup implements the importer.Lookup contract.
func (x *exportIndex) Lookup(path string) (io.ReadCloser, error) {
	f, ok := x.files[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(f)
}

// srcImporter prefers in-memory source-checked packages (needed so
// external test packages see identifiers declared in in-package test
// files) and falls back to export data.
type srcImporter struct {
	idx *exportIndex
	gc  types.Importer
}

func (si srcImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.idx.source[path]; ok {
		return p, nil
	}
	return si.gc.Import(path)
}

// Load lists, parses and typechecks the packages matching patterns
// (default "./...").
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(l.Dir, []string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	idx := &exportIndex{files: map[string]string{}, source: map[string]*types.Package{}}
	var targets []*listedPkg
	var missing []string
	seen := map[string]bool{}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			idx.files[p.ImportPath] = p.Export
		}
		seen[p.ImportPath] = true
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	// Test-only imports are not part of the -deps closure; resolve
	// their export data in one extra go list call.
	if l.Tests {
		need := map[string]bool{}
		for _, p := range targets {
			for _, imp := range append(append([]string{}, p.TestImports...), p.XTestImports...) {
				if imp != "C" && !seen[imp] && !need[imp] {
					need[imp] = true
					missing = append(missing, imp)
				}
			}
		}
		if len(missing) > 0 {
			extra, err := goList(l.Dir, []string{"-deps"}, missing...)
			if err != nil {
				return nil, err
			}
			for _, p := range extra {
				if p.Export != "" {
					idx.files[p.ImportPath] = p.Export
				}
			}
		}
	}

	fset := token.NewFileSet()
	imp := srcImporter{idx: idx, gc: importer.ForCompiler(fset, "gc", idx.Lookup)}
	var out []*Package
	// Pass 1: the targets themselves, in the dependency order go list
	// -deps emits, so imports between targets resolve to source-checked
	// packages rather than export data (mixing the two gives the same
	// type two identities).
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", p.ImportPath)
		}
		names := append([]string{}, p.GoFiles...)
		if l.Tests {
			names = append(names, p.TestGoFiles...)
		}
		pkg, err := checkFiles(fset, p.ImportPath, p.Dir, names, imp)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			idx.source[p.ImportPath] = pkg.Types
			out = append(out, pkg)
		}
	}
	// Pass 2: external test packages, after every target is source-
	// checked. An external test may import sibling targets beyond the
	// package under test (a stream test driving the apps catalog);
	// checking it inside pass 1 would resolve later siblings from
	// export data and collide with their source-checked identities.
	if l.Tests {
		for _, p := range targets {
			if len(p.XTestGoFiles) == 0 {
				continue
			}
			xpkg, err := checkFiles(fset, p.ImportPath+"_test", p.Dir, p.XTestGoFiles, imp)
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	return out, nil
}

// checkFiles parses the named files from dir and typechecks them as
// one package.
func checkFiles(fset *token.FileSet, path, dir string, names []string, imp types.Importer) (*Package, error) {
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	return CheckParsed(fset, path, files, imp)
}

// CheckParsed typechecks already-parsed files as one package; it is
// the entry point fixture tests use to pose as arbitrary import paths.
func CheckParsed(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// SourceImporter resolves registered source-checked packages first and
// falls back to a base importer. Multi-package fixture tests use it so
// a fixture package can import a sibling fixture package that was
// typechecked in memory.
type SourceImporter struct {
	Base types.Importer
	pkgs map[string]*types.Package
}

// NewSourceImporter wraps base.
func NewSourceImporter(base types.Importer) *SourceImporter {
	return &SourceImporter{Base: base, pkgs: map[string]*types.Package{}}
}

// Register makes pkg resolvable by its import path.
func (s *SourceImporter) Register(pkg *types.Package) { s.pkgs[pkg.Path()] = pkg }

// Import implements types.Importer.
func (s *SourceImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.pkgs[path]; ok {
		return p, nil
	}
	return s.Base.Import(path)
}

// StdImporter builds an importer that resolves the given import paths
// (plus their dependencies) from compiler export data. Fixture tests
// use it to typecheck standalone files.
func StdImporter(dir string, fset *token.FileSet, paths ...string) (types.Importer, error) {
	idx := &exportIndex{files: map[string]string{}, source: map[string]*types.Package{}}
	if len(paths) > 0 {
		listed, err := goList(dir, []string{"-deps"}, paths...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				idx.files[p.ImportPath] = p.Export
			}
		}
	}
	return srcImporter{idx: idx, gc: importer.ForCompiler(fset, "gc", idx.Lookup)}, nil
}
