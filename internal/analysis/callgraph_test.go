package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const callgraphSrc = `package cg

type impl struct{ n int }

func (i impl) Do() int { return i.n }

type doer interface{ Do() int }

func helper() int {
	var i impl
	return i.Do()
}

func direct() int { return helper() }

func viaIface(d doer) int { return d.Do() }

func viaValue(f func() int) int { return f() }

func inLiteral() int {
	g := func() int { return helper() }
	return g()
}

var _ = direct
var _ = viaIface
var _ = viaValue
var _ = inLiteral
`

// loadCallgraphFixture typechecks the inline source and returns the
// facts layer plus a name → *types.Func index.
func loadCallgraphFixture(t *testing.T) (*Facts, map[string]*types.Func) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cg.go", callgraphSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := StdImporter("../..", fset)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckParsed(fset, "example.test/cg", []*ast.File{f}, imp)
	if err != nil {
		t.Fatal(err)
	}
	facts := NewFacts([]*Package{pkg})
	byName := map[string]*types.Func{}
	for fn := range facts.Funcs {
		byName[fn.Name()] = fn
	}
	return facts, byName
}

// TestCallGraphDevirtualization: a method call on a concrete receiver
// resolves to a static edge; plain function calls do too, including
// from inside function literals (attributed to the enclosing
// function).
func TestCallGraphDevirtualization(t *testing.T) {
	facts, fns := loadCallgraphFixture(t)
	g := facts.Graph()

	callees := g.StaticCallees(fns["helper"])
	if len(callees) != 1 || callees[0].Name() != "Do" {
		t.Errorf("helper static callees = %v; want the devirtualized impl.Do", callees)
	}
	if fr := g.Frontier(fns["helper"]); len(fr) != 0 {
		t.Errorf("helper frontier = %v; want none", fr)
	}

	callees = g.StaticCallees(fns["direct"])
	if len(callees) != 1 || callees[0] != fns["helper"] {
		t.Errorf("direct static callees = %v; want helper", callees)
	}

	// Calls inside the literal belong to inLiteral; the call through
	// the local variable g is frontier, but exempt-by-locality is the
	// purity analyzer's policy, not the graph's.
	callees = g.StaticCallees(fns["inLiteral"])
	if len(callees) != 1 || callees[0] != fns["helper"] {
		t.Errorf("inLiteral static callees = %v; want helper (literal body inlined)", callees)
	}
	if fr := g.Frontier(fns["inLiteral"]); len(fr) != 1 || fr[0].Kind != CallFuncValue || fr[0].Target == nil || fr[0].Target.Name() != "g" {
		t.Errorf("inLiteral frontier = %v; want one func-value call through g", fr)
	}
}

// TestCallGraphFrontier: interface method calls and function-value
// calls are recorded as frontier, not dropped.
func TestCallGraphFrontier(t *testing.T) {
	facts, fns := loadCallgraphFixture(t)
	g := facts.Graph()

	fr := g.Frontier(fns["viaIface"])
	if len(fr) != 1 || fr[0].Kind != CallInterface {
		t.Fatalf("viaIface frontier = %v; want one interface call", fr)
	}
	if fr[0].Callee == nil || fr[0].Callee.Name() != "Do" {
		t.Errorf("viaIface frontier callee = %v; want the interface method Do", fr[0].Callee)
	}
	if len(g.StaticCallees(fns["viaIface"])) != 0 {
		t.Errorf("viaIface has static callees; the interface call must not devirtualize")
	}

	fr = g.Frontier(fns["viaValue"])
	if len(fr) != 1 || fr[0].Kind != CallFuncValue || fr[0].Target == nil || fr[0].Target.Name() != "f" {
		t.Fatalf("viaValue frontier = %v; want one func-value call through parameter f", fr)
	}
}

// TestCallGraphReachable: reachability follows static edges only.
func TestCallGraphReachable(t *testing.T) {
	facts, fns := loadCallgraphFixture(t)
	g := facts.Graph()

	reach := g.Reachable([]*types.Func{fns["direct"]})
	for _, name := range []string{"direct", "helper", "Do"} {
		if !reach[fns[name]] {
			t.Errorf("%s not reachable from direct", name)
		}
	}
	if reach[fns["viaIface"]] || reach[fns["viaValue"]] {
		t.Errorf("unrelated functions reported reachable: %v", reach)
	}
}
