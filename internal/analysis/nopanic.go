package analysis

import (
	"go/ast"
	"go/types"
)

// Nopanic flags panic calls in library packages.
var Nopanic = &Analyzer{
	Name: "nopanic",
	Doc: "flag panic(...) in library (non-main, non-test) packages; return " +
		"an error instead. Documented invariant checks — conditions the " +
		"package's own API contract says callers must uphold — may stay, " +
		"suppressed with //lint:ignore nopanic <reason>",
	Run: runNopanic,
}

func runNopanic(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				if p.InTestFile(call.Pos()) {
					return true
				}
				p.Reportf(call.Pos(),
					"panic in library package; return an error (or document the invariant and suppress with //lint:ignore nopanic <reason>)")
			}
			return true
		})
	}
}
