package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Source directives recognized by the whole-program analyzers. Each
// must appear alone on a comment line in the doc comment of the
// declaration it marks.
const (
	// computeDirective marks a function as a compute-plane root: it may
	// run on a worker-pool goroutine concurrently with the virtual-time
	// scheduler, so everything reachable from it must be a pure function
	// of its arguments (purity, sharedstate).
	computeDirective = "//approx:compute"
	// hotpathDirective marks a function as per-record hot: the hotpath
	// analyzer forbids allocation-causing constructs inside it.
	hotpathDirective = "//approx:hotpath"
	// pureDirective, on an interface type or a func-valued field/var,
	// asserts that every implementation (or stored value) honors the
	// compute-plane purity contract. The purity analyzer trusts the
	// assertion instead of reporting calls through it as an
	// un-analyzable frontier.
	pureDirective = "//approx:pure"
)

// FuncInfo is one function or method declaration in the loaded
// program, paired with the package that declares it.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Facts is the shared whole-program layer: every loaded package,
// every function declaration with source, the directive marks, and the
// cross-package call graph. It is built once per RunWithOptions call
// and handed to every analyzer (program-level analyzers receive it on
// the ProgramPass; per-package analyzers reach it through Pass.Facts).
type Facts struct {
	Pkgs  []*Package
	Funcs map[*types.Func]*FuncInfo

	// ComputeRoots and HotpathFuncs hold the marked functions in
	// deterministic (source position) order.
	ComputeRoots []*types.Func
	HotpathFuncs []*types.Func

	pureIfaces map[*types.TypeName]bool // interfaces marked //approx:pure
	pureVars   map[*types.Var]bool      // func-valued fields/vars marked //approx:pure

	graph *CallGraph
}

// NewFacts indexes the loaded packages: declarations, directives, and
// (lazily) the call graph.
func NewFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Pkgs:       pkgs,
		Funcs:      map[*types.Func]*FuncInfo{},
		pureIfaces: map[*types.TypeName]bool{},
		pureVars:   map[*types.Var]bool{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					f.Funcs[obj] = &FuncInfo{Obj: obj, Decl: d, Pkg: pkg}
					if hasDirective(d.Doc, computeDirective) {
						f.ComputeRoots = append(f.ComputeRoots, obj)
					}
					if hasDirective(d.Doc, hotpathDirective) {
						f.HotpathFuncs = append(f.HotpathFuncs, obj)
					}
				case *ast.GenDecl:
					f.scanGenDecl(pkg, d)
				}
			}
		}
	}
	sortFuncs := func(fns []*types.Func) {
		sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	}
	sortFuncs(f.ComputeRoots)
	sortFuncs(f.HotpathFuncs)
	return f
}

// scanGenDecl collects //approx:pure marks from type and var
// declarations: interface types, func-valued struct fields, and
// func-valued package variables.
func (f *Facts) scanGenDecl(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			if hasDirective(doc, pureDirective) {
				if tn, ok := pkg.Info.Defs[s.Name].(*types.TypeName); ok {
					f.pureIfaces[tn] = true
				}
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				f.scanStructFields(pkg, st)
			}
		case *ast.ValueSpec:
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			if !hasDirective(doc, pureDirective) && !hasDirective(s.Comment, pureDirective) {
				continue
			}
			for _, name := range s.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					f.pureVars[v] = true
				}
			}
		}
	}
}

// scanStructFields collects //approx:pure marks on struct fields (the
// directive sits in the field's doc comment or line comment).
func (f *Facts) scanStructFields(pkg *Package, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !hasDirective(field.Doc, pureDirective) && !hasDirective(field.Comment, pureDirective) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				f.pureVars[v] = true
			}
		}
	}
}

// hasDirective reports whether the comment group contains the
// directive alone on one line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// PureInterface reports whether the named interface carries an
// //approx:pure mark.
func (f *Facts) PureInterface(tn *types.TypeName) bool { return f.pureIfaces[tn] }

// PureVar reports whether the func-valued field or variable carries an
// //approx:pure mark.
func (f *Facts) PureVar(v *types.Var) bool { return f.pureVars[v] }

// Graph returns the cross-package static call graph, building it on
// first use.
func (f *Facts) Graph() *CallGraph {
	if f.graph == nil {
		f.graph = buildCallGraph(f)
	}
	return f.graph
}

// DeclOf returns the declaration info for fn, or nil when fn has no
// source in the loaded program (an external function).
func (f *Facts) DeclOf(fn *types.Func) *FuncInfo { return f.Funcs[fn] }

// PackageRoots returns the compute roots declared in pkg, in source
// order.
func (f *Facts) PackageRoots(pkg *types.Package) []*types.Func {
	var out []*types.Func
	for _, r := range f.ComputeRoots {
		if r.Pkg() == pkg {
			out = append(out, r)
		}
	}
	return out
}

// calleeStatic resolves a call expression to the *types.Func it
// statically invokes: a plain function, a qualified pkg.Func, or a
// method (devirtualized when the receiver is concrete). It returns nil
// for calls through function values, builtins, and conversions.
// Shared by errcheck, the call-graph builder, and lockheld.
func calleeStatic(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil // field access: function value, not a static callee
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// derefNamed unwraps one pointer level and returns the named type, if
// any.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// recvNamed returns the named type of fn's receiver (nil for plain
// functions and interface methods on unnamed interfaces).
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return derefNamed(sig.Recv().Type())
}

// isInterfaceMethod reports whether fn is declared on an interface
// (so a call to it can never be resolved statically).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// pkgPathOf returns the import path of the package declaring obj, or
// "" for universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
