package analysis

import (
	"fmt"
	"strings"
)

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Virtualclock,
		Seededrand,
		Nofloateq,
		Nopanic,
		Errcheck,
		Sharedstate,
		Purity,
		Hotpath,
		Lockheld,
	}
}

// ByName resolves an analyzer by its Name; nil when unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Select resolves comma-separated -enable/-disable lists into the
// analyzers to run. Unknown names are an error, not a silent no-op: a
// typo must not turn the lint run into a vacuous pass. Both lists
// empty means the full suite.
func Select(enable, disable string) ([]*Analyzer, error) {
	resolve := func(list string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		names := map[string]bool{}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (run with -list to see the suite)", name)
			}
			names[name] = true
		}
		return names, nil
	}
	enabled, err := resolve(enable)
	if err != nil {
		return nil, err
	}
	disabled, err := resolve(disable)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All() {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		if disabled[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
