package analysis

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Virtualclock,
		Seededrand,
		Nofloateq,
		Nopanic,
		Errcheck,
		Sharedstate,
	}
}

// ByName resolves an analyzer by its Name; nil when unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
