package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimulatorPackages are the import paths (and their subtrees) in which
// wall-clock access is forbidden: everything inside them must advance
// on the discrete-event engine's virtual clock, or charge compute
// through a vtime.Meter, for simulations to be reproducible.
var SimulatorPackages = []string{
	"approxhadoop/internal/cluster",
	"approxhadoop/internal/mapreduce",
	"approxhadoop/internal/dfs",
	"approxhadoop/internal/approx",
}

// wallClockFuncs are the package time functions that read or depend on
// the host clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
	"Tick":  true,
	"After": true,
}

// Virtualclock forbids wall-clock access inside simulator packages.
var Virtualclock = &Analyzer{
	Name: "virtualclock",
	Doc: "forbid time.Now/Since/Until/Sleep/Tick/After in simulator packages " +
		"(internal/cluster, internal/mapreduce, internal/dfs, internal/approx); " +
		"use the engine's virtual clock (Engine.Now/At/After) or a vtime.Meter, " +
		"so task durations cannot depend on host load",
	Run: runVirtualclock,
}

func isSimulatorPackage(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range SimulatorPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runVirtualclock(p *Pass) {
	if !isSimulatorPackage(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallClockFuncs[fn.Name()] {
				p.Reportf(sel.Pos(),
					"wall-clock time.%s in simulator package %s breaks reproducibility; use the cluster engine's virtual clock or a vtime.Meter",
					fn.Name(), strings.TrimSuffix(p.Path, "_test"))
			}
			return true
		})
	}
}
