package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errcheck flags discarded error returns in non-test code: bare call
// statements (including defer/go), and assignments that throw every
// result away with blank identifiers.
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc: "flag discarded error returns (`_ =` discards and bare calls, " +
		"including defer/go) in non-test code; propagate the error or " +
		"justify the discard with //lint:ignore errcheck <reason>. The " +
		"fmt.Print family and writers documented never to fail " +
		"(strings.Builder, bytes.Buffer, package hash) are excluded",
	Run: runErrcheck,
}

// errcheckExcludedPkgs lists packages whose io.Writer-shaped methods
// are documented to never return a non-nil error.
var errcheckExcludedPkgs = map[string]bool{
	"strings": true, // strings.Builder
	"bytes":   true, // bytes.Buffer
	"hash":    true, // hash.Hash and friends
}

func runErrcheck(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(p, s.X, "unchecked")
			case *ast.DeferStmt:
				checkDiscardedCall(p, s.Call, "deferred unchecked")
			case *ast.GoStmt:
				checkDiscardedCall(p, s.Call, "unchecked")
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 || !allBlank(s.Lhs) {
					return true
				}
				checkDiscardedCall(p, s.Rhs[0], "blank-discarded")
			}
			return true
		})
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// checkDiscardedCall reports expr when it is a call whose results
// include an error that the statement throws away.
func checkDiscardedCall(p *Pass, expr ast.Expr, how string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	if !returnsError(p, call) || excludedCallee(p, call) {
		return
	}
	p.Reportf(call.Pos(), "%s error return of %s; handle it or suppress with //lint:ignore errcheck <reason>",
		how, calleeName(p, call))
}

func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if types.Identical(rt.At(i).Type(), ErrorType) {
				return true
			}
		}
	default:
		return types.Identical(rt, ErrorType)
	}
	return false
}

// excludedCallee reports whether the statically-known callee is on the
// never-fails list.
func excludedCallee(p *Pass, call *ast.CallExpr) bool {
	fn := calleeStatic(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return errcheckExcludedPkgs[path]
	}
	return false
}

func calleeName(p *Pass, call *ast.CallExpr) string {
	if fn := calleeStatic(p.Info, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}
