package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath turns the bench-only allocs/op guard into a compile-time
// gate: functions marked //approx:hotpath (the interner, arena
// shuffle, push-mode readers, strconv-based generators) must avoid
// constructs that allocate per record. Whole-body checks: fmt calls
// and interface boxing at call sites. Per-record-context checks
// (inside loops and function literals, which run once per record):
// string concatenation, string(bytes) conversions, map/slice literals,
// closures capturing outer variables, and append calls whose result is
// not assigned back to the same destination (un-hinted growth).
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid allocation-causing constructs in functions marked //approx:hotpath: " +
		"fmt calls and interface boxing anywhere in the body; string concatenation, " +
		"string(bytes) conversions, map/slice composite literals, variable-capturing " +
		"closures, and un-hinted append (result not assigned back to its first " +
		"argument) inside loops and function literals, which execute per record",
	Run: runHotpath,
}

func runHotpath(p *Pass) {
	for _, fn := range p.Facts.HotpathFuncs {
		if fn.Pkg() != p.Pkg {
			continue
		}
		info := p.Facts.DeclOf(fn)
		if info == nil || info.Decl.Body == nil {
			continue
		}
		h := &hotpathChecker{pass: p, fn: fn.Name()}
		h.checkBody(info.Decl.Body)
	}
}

type hotpathChecker struct {
	pass *Pass
	fn   string
	// hintedAppends holds append call sites of the sanctioned
	// x = append(x, ...) shape.
	hintedAppends map[*ast.CallExpr]bool
}

// checkBody applies the whole-body checks everywhere and enters
// per-record mode at every loop body and function literal.
func (h *hotpathChecker) checkBody(body *ast.BlockStmt) {
	h.walk(body, false)
}

// walk visits nodes below n; perRecord marks code inside a loop or a
// function literal, where the per-record checks also apply.
func (h *hotpathChecker) walk(n ast.Node, perRecord bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			h.walkExprs(perRecord, n.Init, n.Cond, n.Post)
			h.walk(n.Body, true)
			return false
		case *ast.RangeStmt:
			h.walkExprs(perRecord, n.X)
			h.walk(n.Body, true)
			return false
		case *ast.FuncLit:
			if perRecord {
				h.checkCapture(n)
			}
			h.walk(n.Body, true)
			return false
		case *ast.CallExpr:
			h.checkCall(n, perRecord)
		case *ast.BinaryExpr:
			if perRecord {
				h.checkConcat(n)
			}
		case *ast.CompositeLit:
			if perRecord {
				h.checkCompositeLit(n)
			}
		case *ast.AssignStmt:
			// Mark hinted appends (x = append(x, ...)) before the
			// CallExpr visit below sees them.
			h.markHintedAppends(n)
		}
		return true
	})
}

// walkExprs visits loop-header components (which stay in the enclosing
// context, not the per-record body).
func (h *hotpathChecker) walkExprs(perRecord bool, nodes ...ast.Node) {
	for _, n := range nodes {
		if n != nil {
			h.walk(n, perRecord)
		}
	}
}

// markHintedAppends records append calls of the x = append(x, ...)
// shape, which grow an existing buffer in place (amortized,
// pre-sizable) and are the sanctioned idiom.
func (h *hotpathChecker) markHintedAppends(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !h.isAppend(call) {
			continue
		}
		if len(call.Args) > 0 && exprEqual(as.Lhs[i], call.Args[0]) {
			h.hinted(call)
		}
	}
}

// hintedSet lazily allocates the per-checker set of sanctioned append
// sites.
func (h *hotpathChecker) hinted(call *ast.CallExpr) {
	if h.hintedAppends == nil {
		h.hintedAppends = map[*ast.CallExpr]bool{}
	}
	h.hintedAppends[call] = true
}

func (h *hotpathChecker) isAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := h.pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// checkCall handles fmt calls, boxing, string(bytes) conversions, and
// un-hinted appends.
func (h *hotpathChecker) checkCall(call *ast.CallExpr, perRecord bool) {
	fun := ast.Unparen(call.Fun)

	// Conversions: string([]byte) / string([]rune) copy per record.
	if tv, ok := h.pass.Info.Types[fun]; ok && tv.IsType() {
		if perRecord && isStringOfBytes(h.pass.Info, call) {
			h.pass.Reportf(call.Pos(),
				"hot-path function %s converts a byte slice to string per record, which copies; use zerocopy.String or keep the []byte",
				h.fn)
		}
		return
	}

	if perRecord && h.isAppend(call) && !h.hintedAppends[call] {
		h.pass.Reportf(call.Pos(),
			"hot-path function %s calls append per record without assigning the result back to its first argument; grow a reused buffer (x = append(x, ...)) so capacity amortizes",
			h.fn)
	}

	callee := calleeStatic(h.pass.Info, call)
	if callee != nil && pkgPathOf(callee) == "fmt" {
		h.pass.Reportf(call.Pos(),
			"hot-path function %s calls fmt.%s, which allocates (interface boxing, scratch buffers); use strconv appends or a reused buffer",
			h.fn, callee.Name())
		return // skip the boxing check: fmt's ...any params would double-report
	}
	h.checkBoxing(call)
}

// checkBoxing reports concrete non-pointer-shaped arguments passed to
// interface-typed parameters: each such call boxes the value on the
// heap.
func (h *hotpathChecker) checkBoxing(call *ast.CallExpr) {
	sigTV, ok := h.pass.Info.Types[ast.Unparen(call.Fun)]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no boxing here
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		argTV := h.pass.Info.Types[arg]
		if argTV.Type == nil || argTV.Value != nil || types.IsInterface(argTV.Type) {
			continue // constants and interface-to-interface: no new box
		}
		if isPointerShaped(argTV.Type) {
			continue
		}
		h.pass.Reportf(arg.Pos(),
			"hot-path function %s boxes a %s into interface %s at this call, which allocates; pass a pointer-shaped value or restructure the call",
			h.fn, argTV.Type.String(), paramType.String())
	}
}

// checkConcat reports string + string inside per-record code.
func (h *hotpathChecker) checkConcat(be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv := h.pass.Info.Types[be]
	if tv.Value != nil {
		return // constant-folded at compile time
	}
	if t, ok := tv.Type.(*types.Basic); ok && t.Info()&types.IsString != 0 {
		h.pass.Reportf(be.Pos(),
			"hot-path function %s concatenates strings per record, which allocates; append into a reused []byte instead",
			h.fn)
	}
}

// checkCompositeLit reports map and slice literals inside per-record
// code (each evaluation allocates a fresh backing store).
func (h *hotpathChecker) checkCompositeLit(cl *ast.CompositeLit) {
	t := h.pass.Info.Types[cl].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		h.pass.Reportf(cl.Pos(),
			"hot-path function %s builds a map literal per record; hoist it out of the loop or reuse a cleared map",
			h.fn)
	case *types.Slice:
		h.pass.Reportf(cl.Pos(),
			"hot-path function %s builds a slice literal per record; hoist it out of the loop or append into a reused buffer",
			h.fn)
	}
}

// checkCapture reports function literals created per record that
// capture outer variables: each evaluation allocates the closure (and
// moves captured variables to the heap).
func (h *hotpathChecker) checkCapture(fl *ast.FuncLit) {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := h.pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: not a capture
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			captured = true
		}
		return true
	})
	if captured {
		h.pass.Reportf(fl.Pos(),
			"hot-path function %s creates a variable-capturing closure per record, which allocates; hoist the closure out of the loop or pass state explicitly",
			h.fn)
	}
}

// exprEqual reports structural equality of the lvalue shapes the
// append-hint check cares about: identifiers, selector chains, index
// expressions, and pointer dereferences.
func exprEqual(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && exprEqual(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(a.X, b.X) && exprEqual(a.Index, b.Index)
	case *ast.StarExpr:
		b, ok := b.(*ast.StarExpr)
		return ok && exprEqual(a.X, b.X)
	case *ast.BasicLit:
		b, ok := b.(*ast.BasicLit)
		return ok && a.Kind == b.Kind && a.Value == b.Value
	}
	return false
}

// isStringOfBytes reports whether the conversion call is
// string([]byte) or string([]rune).
func isStringOfBytes(info *types.Info, call *ast.CallExpr) bool {
	tv := info.Types[call]
	if tv.Type == nil {
		return false
	}
	if t, ok := tv.Type.Underlying().(*types.Basic); !ok || t.Info()&types.IsString == 0 {
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	argT := info.Types[call.Args[0]].Type
	if argT == nil {
		return false
	}
	_, isSlice := argT.Underlying().(*types.Slice)
	return isSlice
}

// isPointerShaped reports whether values of t fit in a pointer word
// without heap allocation when stored in an interface.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	return false
}
