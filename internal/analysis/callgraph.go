package analysis

import (
	"go/ast"
	"go/types"
)

// CallKind classifies one call site in the call graph.
type CallKind int

const (
	// CallStatic is a resolved call to a function whose declaration is
	// in the loaded program: a direct function call, a qualified
	// pkg.Func call, or a method call devirtualized by its concrete
	// receiver type.
	CallStatic CallKind = iota
	// CallExternal is a resolved call to a function with no source in
	// the loaded program (stdlib or export-data-only dependency).
	CallExternal
	// CallInterface is a method call through an interface-typed
	// receiver: the concrete callee is unknown, so the edge is part of
	// the graph frontier.
	CallInterface
	// CallFuncValue is a call through a function value (a variable,
	// field, parameter, or expression): also frontier.
	CallFuncValue
)

func (k CallKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallExternal:
		return "external"
	case CallInterface:
		return "interface"
	default:
		return "func-value"
	}
}

// Call is one call site attributed to the innermost enclosing function
// declaration (calls inside function literals belong to the function
// whose body created the literal — the literal's body is analyzed
// inline).
type Call struct {
	Caller *types.Func
	Site   *ast.CallExpr
	Kind   CallKind
	// Callee is the resolved target for CallStatic and CallExternal,
	// and the interface method for CallInterface. It is nil for
	// CallFuncValue.
	Callee *types.Func
	// Target is the variable or field holding the function value, when
	// one is identifiable (CallFuncValue only).
	Target *types.Var
}

// CallGraph is the whole-program static call graph: every call site in
// every loaded function, keyed by caller. Unresolvable calls stay in
// the graph as frontier edges (CallInterface, CallFuncValue) so
// analyzers can reason about what escapes the analysis.
type CallGraph struct {
	calls map[*types.Func][]Call
}

// CallsFrom returns every call site inside fn's declaration, in source
// order.
func (g *CallGraph) CallsFrom(fn *types.Func) []Call { return g.calls[fn] }

// StaticCallees returns the deduplicated CallStatic targets of fn, in
// first-call-site order.
func (g *CallGraph) StaticCallees(fn *types.Func) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, c := range g.calls[fn] {
		if c.Kind == CallStatic && !seen[c.Callee] {
			seen[c.Callee] = true
			out = append(out, c.Callee)
		}
	}
	return out
}

// Frontier returns fn's unresolvable call sites (interface and
// func-value calls), in source order.
func (g *CallGraph) Frontier(fn *types.Func) []Call {
	var out []Call
	for _, c := range g.calls[fn] {
		if c.Kind == CallInterface || c.Kind == CallFuncValue {
			out = append(out, c)
		}
	}
	return out
}

// Reachable returns the set of declared functions reachable from the
// roots over static edges, including the roots themselves.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	stack := append([]*types.Func{}, roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		for _, callee := range g.StaticCallees(fn) {
			if !seen[callee] {
				stack = append(stack, callee)
			}
		}
	}
	return seen
}

// buildCallGraph walks every declared function body and classifies its
// call sites.
func buildCallGraph(f *Facts) *CallGraph {
	g := &CallGraph{calls: map[*types.Func][]Call{}}
	for _, pkg := range f.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if c, ok := classifyCall(f, pkg.Info, obj, call); ok {
						g.calls[obj] = append(g.calls[obj], c)
					}
					return true
				})
			}
		}
	}
	return g
}

// classifyCall resolves one call expression. It returns ok=false for
// non-calls that parse as CallExpr (type conversions, builtins) and
// for immediately-invoked function literals, whose bodies are already
// analyzed inline as part of the enclosing function.
func classifyCall(f *Facts, info *types.Info, caller *types.Func, call *ast.CallExpr) (Call, bool) {
	c := Call{Caller: caller, Site: call}
	fun := ast.Unparen(call.Fun)

	// Conversions look like calls; skip them.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return c, false
	}

	switch e := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			return resolvedCall(f, c, obj), true
		case *types.Builtin, *types.TypeName, nil:
			return c, false
		case *types.Var:
			c.Kind, c.Target = CallFuncValue, obj
			return c, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn := sel.Obj().(*types.Func)
				// A method whose own receiver is an interface stays
				// unresolved even when selected from a concrete value
				// (promotion through an embedded interface).
				if isInterfaceMethod(fn) {
					c.Kind, c.Callee = CallInterface, fn
					return c, true
				}
				return resolvedCall(f, c, fn), true
			case types.FieldVal:
				c.Kind = CallFuncValue
				c.Target, _ = sel.Obj().(*types.Var)
				return c, true
			}
			return c, false
		}
		// Qualified identifier: pkg.Func or pkg.Var.
		switch obj := info.Uses[e.Sel].(type) {
		case *types.Func:
			return resolvedCall(f, c, obj), true
		case *types.Var:
			c.Kind, c.Target = CallFuncValue, obj
			return c, true
		}
		return c, false
	case *ast.FuncLit:
		return c, false // body analyzed inline
	}
	// Call of a call result, an index expression, etc.
	c.Kind = CallFuncValue
	return c, true
}

// resolvedCall fills in the kind for a call whose *types.Func target
// is known: static when its declaration was loaded, interface when the
// target is an interface method, external otherwise.
func resolvedCall(f *Facts, c Call, fn *types.Func) Call {
	c.Callee = fn
	switch {
	case isInterfaceMethod(fn):
		c.Kind = CallInterface
	case f.Funcs[fn] != nil:
		c.Kind = CallStatic
	default:
		c.Kind = CallExternal
	}
	return c
}
