package analysis

import (
	"go/types"
	"strings"
)

// pureStdlibPrefixes lists standard-library package path prefixes
// whose functions the purity analyzer trusts: pure computation or
// process-local formatting with no scheduler-plane coupling. A prefix
// matches the package itself and everything below it ("math" covers
// math/rand and math/bits). Notably absent: os, net, time, sync,
// runtime — calling those from the compute plane is exactly what the
// analyzer exists to catch.
var pureStdlibPrefixes = []string{
	"bufio",
	"bytes",
	"errors",
	"fmt",
	"hash",
	"io",
	"math",
	"sort",
	"strconv",
	"strings",
	"unicode",
	"unsafe",
}

func pureStdlibPkg(path string) bool {
	for _, p := range pureStdlibPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Purity is the interprocedural successor to sharedstate: it follows
// //approx:compute roots across package boundaries over the static
// call graph, applies the scheduler-plane body checks to every
// function reached, and reports every frontier call (interface or
// function value) that escapes into code it cannot analyze — unless
// the call goes through a declaration marked //approx:pure or into a
// trusted pure stdlib package. Each finding carries the call chain
// from the root that reached it.
var Purity = &Analyzer{
	Name: "purity",
	Doc: "follow //approx:compute roots across package boundaries over the static " +
		"call graph and report (with the full call chain) any scheduler-plane " +
		"touch, package-level variable write, sync.Pool use, or unresolvable " +
		"frontier call — interface methods and function values not marked " +
		"//approx:pure, and calls into non-allowlisted external packages; the " +
		"intra-package sharedstate closure provably misses violations one " +
		"package away",
	RunProgram: runPurity,
}

func runPurity(p *ProgramPass) {
	f := p.Facts
	graph := f.Graph()

	// Breadth-first walk from the roots in source order; the first
	// chain to reach a function wins, so reports are deterministic.
	type visitState struct {
		chain string // "root → f → g", built from function names
	}
	visited := map[*types.Func]visitState{}
	queue := make([]*types.Func, 0, len(f.ComputeRoots))
	for _, r := range f.ComputeRoots {
		if _, ok := visited[r]; ok {
			continue
		}
		visited[r] = visitState{chain: r.Name()}
		queue = append(queue, r)
	}

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := f.DeclOf(fn)
		if info == nil || info.Decl.Body == nil {
			continue
		}
		state := visited[fn]
		chainSuffix := ""
		if strings.Contains(state.chain, "→") {
			chainSuffix = " [call chain: " + state.chain + "]"
		}

		c := &computeBodyChecker{
			info:   info.Pkg.Info,
			pkg:    info.Pkg.Types,
			fn:     fn.Name(),
			chain:  chainSuffix,
			report: p.Reportf,
		}
		c.check(info.Decl.Body)

		for _, call := range graph.CallsFrom(fn) {
			switch call.Kind {
			case CallStatic:
				callee := call.Callee
				// Methods on scheduler-plane types are not part of the
				// compute closure; the selector check above already
				// flags the call site.
				if named := recvNamed(callee); named != nil && schedulerPlaneTypes[named.Obj().Name()] {
					continue
				}
				if _, ok := visited[callee]; ok {
					continue
				}
				visited[callee] = visitState{chain: state.chain + " → " + callee.Name()}
				queue = append(queue, callee)
			case CallExternal:
				callee := call.Callee
				if named := recvNamed(callee); named != nil && isSyncPool(named) {
					continue // the sync.Pool body check already reports this site
				}
				if pureStdlibPkg(pkgPathOf(callee)) {
					continue
				}
				p.Reportf(call.Site.Pos(),
					"compute-plane function %s calls %s.%s, which has no loaded source and is not a trusted pure stdlib package%s",
					fn.Name(), pkgPathOf(callee), callee.Name(), chainSuffix)
			case CallInterface:
				callee := call.Callee
				if pureStdlibPkg(pkgPathOf(callee)) {
					continue
				}
				if named := recvNamed(callee); named != nil && f.PureInterface(named.Obj()) {
					continue
				}
				p.Reportf(call.Site.Pos(),
					"compute-plane function %s calls %s through an interface not marked %s; the concrete implementation cannot be analyzed%s",
					fn.Name(), callee.Name(), pureDirective, chainSuffix)
			case CallFuncValue:
				if exemptFuncValue(f, fn, call) {
					continue
				}
				desc := "a function value"
				if call.Target != nil {
					desc = "function value " + call.Target.Name()
				}
				p.Reportf(call.Site.Pos(),
					"compute-plane function %s calls %s not marked %s; the called code cannot be analyzed%s",
					fn.Name(), desc, pureDirective, chainSuffix)
			}
		}
	}
}

// exemptFuncValue reports whether a func-value call is trusted: the
// value is marked //approx:pure (field or variable), or it is a local
// variable or parameter of the calling function — locals are bound to
// function literals whose bodies were analyzed inline where they were
// created, and parameters receive values produced inside the compute
// plane by an already-checked caller.
func exemptFuncValue(f *Facts, caller *types.Func, call Call) bool {
	v := call.Target
	if v == nil {
		return false
	}
	if f.PureVar(v) {
		return true
	}
	if v.IsField() {
		return false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return false // package-level func variable: anyone may swap it
	}
	// Local or parameter: declared inside the caller's declaration.
	info := f.DeclOf(caller)
	return info != nil && v.Pos() >= info.Decl.Pos() && v.Pos() <= info.Decl.End()
}
