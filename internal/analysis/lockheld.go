package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Lockheld is the static groundwork for the sharded-daemon refactor:
// inside internal/jobserver and the mapreduce worker pool it flags
// operations that can block — channel sends/receives, select without
// default, Cond.Wait, network/file I/O, time.Sleep, WaitGroup.Wait —
// while a sync.Mutex or RWMutex is held (directly or through a static
// call chain), requires every sync.Cond.Wait to sit inside a for loop,
// and reports lock pairs acquired in inconsistent order across the
// arbiter/service pair.
//
// The held-lock tracking is a straight-line approximation: branches
// are analyzed with a copy of the held set and their changes do not
// escape, and function literals start with an empty held set (a
// callback may run on any goroutine, where the creator's locks are not
// held).
var Lockheld = &Analyzer{
	Name: "lockheld",
	Doc: "flag blocking operations (channel send/receive, select without default, " +
		"network/file I/O, time.Sleep, WaitGroup.Wait) performed while a " +
		"sync.Mutex/RWMutex is held in internal/jobserver and the mapreduce worker " +
		"pool — including through static call chains — plus sync.Cond.Wait outside " +
		"a for loop and inconsistent lock-acquisition order",
	RunProgram: runLockheld,
}

// lockheldScope reports whether a function declared in the given
// package and file is subject to lock-discipline checks.
func lockheldScope(pkgPath, filename string) bool {
	if strings.HasSuffix(filename, "_test.go") {
		return false
	}
	path := strings.TrimSuffix(pkgPath, "_test")
	if path == "jobserver" || strings.HasSuffix(path, "/jobserver") {
		return true
	}
	if path == "mapreduce" || strings.HasSuffix(path, "/mapreduce") {
		return filepath.Base(filename) == "pool.go"
	}
	return false
}

// orderSite is the first observed site acquiring lock pair[1] while
// holding pair[0].
type orderSite struct {
	pos  token.Pos
	inFn string
}

type lockheldRunner struct {
	p *ProgramPass
	f *Facts

	// blockCache memoizes, per function, a description of the first
	// blocking operation anywhere in its body or static call tree ("" =
	// none).
	blockCache map[*types.Func]string
	blockBusy  map[*types.Func]bool
	// acquireCache memoizes the set of lock variables a function may
	// acquire, directly or transitively.
	acquireCache map[*types.Func]map[*types.Var]bool
	acquireBusy  map[*types.Func]bool

	// orders maps (held, acquired) lock pairs to their first site.
	orders map[[2]*types.Var]orderSite
}

func runLockheld(p *ProgramPass) {
	r := &lockheldRunner{
		p:            p,
		f:            p.Facts,
		blockCache:   map[*types.Func]string{},
		blockBusy:    map[*types.Func]bool{},
		acquireCache: map[*types.Func]map[*types.Var]bool{},
		acquireBusy:  map[*types.Func]bool{},
		orders:       map[[2]*types.Var]orderSite{},
	}
	var scoped []*FuncInfo
	for _, fi := range p.Facts.Funcs {
		if fi.Decl.Body == nil {
			continue
		}
		file := p.fset.Position(fi.Decl.Pos()).Filename
		if lockheldScope(fi.Pkg.Path, file) {
			scoped = append(scoped, fi)
		}
	}
	sort.Slice(scoped, func(i, j int) bool { return scoped[i].Decl.Pos() < scoped[j].Decl.Pos() })
	for _, fi := range scoped {
		r.checkFunc(fi)
		r.checkCondWait(fi)
	}
	r.reportOrderInversions()
}

// checkFunc walks one function body tracking held locks.
func (r *lockheldRunner) checkFunc(fi *FuncInfo) {
	held := map[*types.Var]token.Pos{}
	r.walkBlock(fi, fi.Decl.Body, held)
}

func clone(held map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	c := make(map[*types.Var]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (r *lockheldRunner) walkBlock(fi *FuncInfo, b *ast.BlockStmt, held map[*types.Var]token.Pos) {
	for _, s := range b.List {
		r.walkStmt(fi, s, held)
	}
}

func (r *lockheldRunner) walkStmt(fi *FuncInfo, s ast.Stmt, held map[*types.Var]token.Pos) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		r.walkBlock(fi, s, held)
	case *ast.LabeledStmt:
		r.walkStmt(fi, s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			r.walkStmt(fi, s.Init, held)
		}
		r.inspect(fi, s.Cond, held)
		r.walkBlock(fi, s.Body, clone(held))
		if s.Else != nil {
			r.walkStmt(fi, s.Else, clone(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			r.walkStmt(fi, s.Init, held)
		}
		if s.Cond != nil {
			r.inspect(fi, s.Cond, held)
		}
		inner := clone(held)
		r.walkBlock(fi, s.Body, inner)
		if s.Post != nil {
			r.walkStmt(fi, s.Post, inner)
		}
	case *ast.RangeStmt:
		r.inspect(fi, s.X, held)
		if t := fi.Pkg.Info.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				r.reportBlocked(fi, s.Pos(), "ranges over a channel", held)
			}
		}
		r.walkBlock(fi, s.Body, clone(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			r.walkStmt(fi, s.Init, held)
		}
		if s.Tag != nil {
			r.inspect(fi, s.Tag, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			inner := clone(held)
			for _, st := range cc.Body {
				r.walkStmt(fi, st, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			r.walkStmt(fi, s.Init, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			inner := clone(held)
			for _, st := range cc.Body {
				r.walkStmt(fi, st, inner)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			r.reportBlocked(fi, s.Pos(), "selects without a default case", held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := clone(held)
			for _, st := range cc.Body {
				r.walkStmt(fi, st, inner)
			}
		}
	case *ast.SendStmt:
		r.reportBlocked(fi, s.Pos(), "sends on a channel", held)
		r.inspect(fi, s.Chan, held)
		r.inspect(fi, s.Value, held)
	case *ast.GoStmt:
		// The goroutine body runs elsewhere: fresh held set. Spawning
		// itself does not block.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			r.walkBlock(fi, fl.Body, map[*types.Var]token.Pos{})
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the lock stays held
		// for the rest of the function, which the linear walk already
		// models by not removing it. Other deferred work runs at
		// return and is out of scope.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			r.walkBlock(fi, fl.Body, map[*types.Var]token.Pos{})
		}
	default:
		r.inspect(fi, s, held)
	}
}

// inspect scans one simple statement or expression in source order,
// handling lock operations, blocking constructs, and calls. Function
// literals are walked with a fresh empty held set.
func (r *lockheldRunner) inspect(fi *FuncInfo, n ast.Node, held map[*types.Var]token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			r.walkBlock(fi, n.Body, map[*types.Var]token.Pos{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				r.reportBlocked(fi, n.Pos(), "receives from a channel", held)
			}
		case *ast.CallExpr:
			r.handleCall(fi, n, held)
		}
		return true
	})
}

// handleCall processes one call: lock/unlock tracking, blocking
// classification, and transitive summaries.
func (r *lockheldRunner) handleCall(fi *FuncInfo, call *ast.CallExpr, held map[*types.Var]token.Pos) {
	info := fi.Pkg.Info
	if lockVar, op := mutexOp(info, call); lockVar != nil {
		switch op {
		case "Lock", "RLock":
			r.recordAcquire(fi, lockVar, call.Pos(), held)
			held[lockVar] = call.Pos()
		case "Unlock", "RUnlock":
			delete(held, lockVar)
		}
		return
	}
	if isCondMethod(info, call) {
		return // Wait releases its lock; the for-loop check runs separately
	}
	if desc := blockingCall(info, call); desc != "" {
		r.reportBlocked(fi, call.Pos(), desc, held)
		return
	}
	callee := calleeStatic(info, call)
	if callee == nil {
		return
	}
	ci := r.f.DeclOf(callee)
	if ci == nil {
		return
	}
	if len(held) > 0 {
		if desc := r.blocks(callee); desc != "" {
			r.reportBlockedVia(fi, call.Pos(), callee, desc, held)
		}
		for lock := range r.acquires(callee) {
			r.recordAcquire(fi, lock, call.Pos(), held)
		}
	}
}

// reportBlocked reports a direct blocking operation when any lock is
// held.
func (r *lockheldRunner) reportBlocked(fi *FuncInfo, pos token.Pos, what string, held map[*types.Var]token.Pos) {
	for _, lock := range sortedLocks(held) {
		r.p.Reportf(pos,
			"%s %s while holding %s (acquired at %s); blocking under a lock stalls every other goroutine contending for it",
			fi.Obj.Name(), what, lock.Name(), r.p.fset.Position(held[lock]))
	}
}

// reportBlockedVia reports a blocking operation reached through a
// static call.
func (r *lockheldRunner) reportBlockedVia(fi *FuncInfo, pos token.Pos, callee *types.Func, what string, held map[*types.Var]token.Pos) {
	for _, lock := range sortedLocks(held) {
		r.p.Reportf(pos,
			"%s calls %s, which %s, while holding %s (acquired at %s); blocking under a lock stalls every other goroutine contending for it",
			fi.Obj.Name(), callee.Name(), what, lock.Name(), r.p.fset.Position(held[lock]))
	}
}

func sortedLocks(held map[*types.Var]token.Pos) []*types.Var {
	out := make([]*types.Var, 0, len(held))
	for v := range held {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// recordAcquire notes an acquisition of lock while holding the current
// set, for the order-inversion report.
func (r *lockheldRunner) recordAcquire(fi *FuncInfo, lock *types.Var, pos token.Pos, held map[*types.Var]token.Pos) {
	for prior := range held {
		if prior == lock {
			continue
		}
		key := [2]*types.Var{prior, lock}
		if _, ok := r.orders[key]; !ok {
			r.orders[key] = orderSite{pos: pos, inFn: fi.Obj.Name()}
		}
	}
}

// reportOrderInversions reports every lock pair observed in both
// acquisition orders, once per direction at its first site.
func (r *lockheldRunner) reportOrderInversions() {
	type finding struct {
		site  orderSite
		other orderSite
		a, b  *types.Var
	}
	var out []finding
	for key, site := range r.orders {
		rev, ok := r.orders[[2]*types.Var{key[1], key[0]}]
		if !ok {
			continue
		}
		out = append(out, finding{site: site, other: rev, a: key[0], b: key[1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].site.pos < out[j].site.pos })
	for _, f := range out {
		r.p.Reportf(f.site.pos,
			"%s acquires %s while holding %s, but %s acquires them in the opposite order at %s; inconsistent lock order deadlocks under contention",
			f.site.inFn, f.b.Name(), f.a.Name(), f.other.inFn, r.p.fset.Position(f.other.pos))
	}
}

// checkCondWait requires every sync.Cond.Wait call to sit inside a for
// loop within the same function literal (spurious wakeups require
// re-checking the predicate in a loop).
func (r *lockheldRunner) checkCondWait(fi *FuncInfo) {
	info := fi.Pkg.Info
	var stack []ast.Node
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCondWait(info, call) {
			return true
		}
		inFor := false
		for i := len(stack) - 2; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inFor = true
			case *ast.FuncLit:
				i = -1 // the loop must be in the same function body
			}
			if inFor || i < 0 {
				break
			}
		}
		if !inFor {
			r.p.Reportf(call.Pos(),
				"%s calls sync.Cond.Wait outside a for loop; spurious wakeups require re-checking the predicate in a loop around Wait",
				fi.Obj.Name())
		}
		return true
	})
}

// mutexOp matches calls to sync.Mutex/RWMutex Lock/RLock/Unlock/
// RUnlock methods and resolves the lock variable (the field or
// variable the method is called on). A nil variable means the lock
// expression is too complex to track.
func mutexOp(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok || pkgPathOf(fn) != "sync" {
		return nil, ""
	}
	named := recvNamed(fn)
	if named == nil {
		return nil, ""
	}
	name := named.Obj().Name()
	if name != "Mutex" && name != "RWMutex" {
		return nil, ""
	}
	op := fn.Name()
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return lockVarOf(info, se.X), op
	}
	return nil, ""
}

// lockVarOf resolves the variable holding the mutex: `mu` or `x.y.mu`.
func lockVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockVarOf(info, e.X)
		}
	}
	return nil
}

// isCondMethod matches any method call on sync.Cond.
func isCondMethod(info *types.Info, call *ast.CallExpr) bool {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok || pkgPathOf(fn) != "sync" {
		return false
	}
	named := recvNamed(fn)
	return named != nil && named.Obj().Name() == "Cond"
}

func isCondWait(info *types.Info, call *ast.CallExpr) bool {
	if !isCondMethod(info, call) {
		return false
	}
	se := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return se.Sel.Name == "Wait"
}

// blockingPkgs are external packages any call into which counts as
// potentially blocking I/O.
var blockingPkgs = map[string]bool{
	"net":      true,
	"net/http": true,
	"os":       true,
	"os/exec":  true,
	"syscall":  true,
}

// blockingCall classifies a call to an external function as blocking,
// returning a description or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeStatic(info, call)
	if fn == nil {
		return ""
	}
	path := pkgPathOf(fn)
	if blockingPkgs[path] {
		return "performs " + path + " I/O (" + path + "." + fn.Name() + ")"
	}
	switch path {
	case "time":
		if fn.Name() == "Sleep" {
			return "sleeps (time.Sleep)"
		}
	case "sync":
		if named := recvNamed(fn); named != nil && named.Obj().Name() == "WaitGroup" && fn.Name() == "Wait" {
			return "waits on a sync.WaitGroup"
		}
	case "io":
		switch fn.Name() {
		case "Copy", "CopyN", "ReadAll":
			return "performs io." + fn.Name()
		}
	}
	return ""
}

// blocks returns a description of the first blocking operation in fn's
// body or static call tree, or "". Function literals are excluded: a
// callback stored for later does not block the caller.
func (r *lockheldRunner) blocks(fn *types.Func) string {
	if desc, ok := r.blockCache[fn]; ok {
		return desc
	}
	if r.blockBusy[fn] {
		return ""
	}
	r.blockBusy[fn] = true
	defer func() { r.blockBusy[fn] = false }()
	fi := r.f.DeclOf(fn)
	if fi == nil || fi.Decl.Body == nil {
		r.blockCache[fn] = ""
		return ""
	}
	info := fi.Pkg.Info
	desc := ""
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			desc = "sends on a channel"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				desc = "receives from a channel"
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				desc = "selects without a default case"
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					desc = "ranges over a channel"
				}
			}
		case *ast.CallExpr:
			if isCondMethod(info, n) {
				return true
			}
			if d := blockingCall(info, n); d != "" {
				desc = d
				return false
			}
			if callee := calleeStatic(info, n); callee != nil && callee != fn {
				if r.f.DeclOf(callee) != nil {
					if d := r.blocks(callee); d != "" {
						desc = d + " (via " + callee.Name() + ")"
					}
				}
			}
		}
		return desc == ""
	})
	r.blockCache[fn] = desc
	return desc
}

// acquires returns the set of lock variables fn may acquire, directly
// or through its static call tree (function literals excluded).
func (r *lockheldRunner) acquires(fn *types.Func) map[*types.Var]bool {
	if set, ok := r.acquireCache[fn]; ok {
		return set
	}
	if r.acquireBusy[fn] {
		return nil
	}
	r.acquireBusy[fn] = true
	defer func() { r.acquireBusy[fn] = false }()
	set := map[*types.Var]bool{}
	fi := r.f.DeclOf(fn)
	if fi == nil || fi.Decl.Body == nil {
		r.acquireCache[fn] = set
		return set
	}
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lockVar, op := mutexOp(info, call); lockVar != nil && (op == "Lock" || op == "RLock") {
			set[lockVar] = true
			return true
		}
		if callee := calleeStatic(info, call); callee != nil && callee != fn {
			if r.f.DeclOf(callee) != nil {
				for v := range r.acquires(callee) {
					set[v] = true
				}
			}
		}
		return true
	})
	r.acquireCache[fn] = set
	return set
}
