package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers map[string]bool // nil means "all"
	names     string          // the analyzer list as written, for stale reports
	pos       token.Position
	used      bool // suppressed at least one finding this run
}

// directives indexes suppression comments by file and line.
type directives struct {
	byLine map[string]map[int]*directive
}

const ignorePrefix = "//lint:ignore"

func newDirectives() *directives {
	return &directives{byLine: map[string]map[int]*directive{}}
}

// scan collects //lint:ignore directives from file comments. A
// directive suppresses matching findings on its own line or the line
// immediately below (so it can sit above the offending statement).
// Malformed directives — no analyzer list, or no reason — are returned
// as diagnostics of the pseudo-analyzer "ignore".
func (ds *directives) scan(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		bad = append(bad, Diagnostic{
			Analyzer: "ignore",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "lint:ignore needs an analyzer name and a reason")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "lint:ignore %s needs a reason", fields[0])
					continue
				}
				d := &directive{names: fields[0], pos: fset.Position(c.Pos())}
				if fields[0] != "all" {
					d.analyzers = make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						d.analyzers[name] = true
					}
				}
				if ds.byLine[d.pos.Filename] == nil {
					ds.byLine[d.pos.Filename] = make(map[int]*directive)
				}
				ds.byLine[d.pos.Filename][d.pos.Line] = d
			}
		}
	}
	return bad
}

// suppresses reports whether a directive covers the diagnostic, and
// marks every covering directive as used (both the same-line and the
// line-above one, when present — each on its own suppresses the
// finding, so neither is stale).
func (ds *directives) suppresses(d Diagnostic) bool {
	lines := ds.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok {
			if dir.analyzers == nil || dir.analyzers[d.Analyzer] {
				dir.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns one "ignore" diagnostic per well-formed directive that
// suppressed nothing, in deterministic position order.
func (ds *directives) stale() []Diagnostic {
	var out []Diagnostic
	for _, lines := range ds.byLine {
		for _, dir := range lines {
			if dir.used {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "ignore",
				Pos:      dir.pos,
				Message: fmt.Sprintf(
					"stale lint:ignore %s: it suppresses no diagnostic and should be removed",
					dir.names),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}
