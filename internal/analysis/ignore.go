package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers map[string]bool // nil means "all"
	file      string
	line      int
}

// directives indexes suppression comments by file and line.
type directives struct {
	byLine map[string]map[int]*directive
}

const ignorePrefix = "//lint:ignore"

// directiveIndex scans file comments for //lint:ignore directives. A
// directive suppresses matching findings on its own line or the line
// immediately below (so it can sit above the offending statement).
// Malformed directives — no analyzer list, or no reason — are returned
// as diagnostics of the pseudo-analyzer "ignore".
func directiveIndex(fset *token.FileSet, files []*ast.File) (*directives, []Diagnostic) {
	idx := &directives{byLine: make(map[string]map[int]*directive)}
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		bad = append(bad, Diagnostic{
			Analyzer: "ignore",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "lint:ignore needs an analyzer name and a reason")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "lint:ignore %s needs a reason", fields[0])
					continue
				}
				d := &directive{}
				if fields[0] != "all" {
					d.analyzers = make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						d.analyzers[name] = true
					}
				}
				pos := fset.Position(c.Pos())
				d.file, d.line = pos.Filename, pos.Line
				if idx.byLine[d.file] == nil {
					idx.byLine[d.file] = make(map[int]*directive)
				}
				idx.byLine[d.file][d.line] = d
			}
		}
	}
	return idx, bad
}

// suppresses reports whether a directive covers the diagnostic.
func (ds *directives) suppresses(d Diagnostic) bool {
	lines := ds.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok {
			if dir.analyzers == nil || dir.analyzers[d.Analyzer] {
				return true
			}
		}
	}
	return false
}
