package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Seededrand forbids the global math/rand source in non-test code.
var Seededrand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid top-level math/rand functions (the process-global, " +
		"unseeded source) in non-test code; inject a seeded *rand.Rand " +
		"(stats.NewRand) so every sample draw is reproducible",
	Run: runSeededrand,
}

func runSeededrand(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand / *rand.Zipf are fine — they draw
			// from an explicitly seeded source. Constructors (rand.New,
			// rand.NewSource, rand.NewZipf, ...) are equally fine: they
			// bind a caller-supplied seed or source and never touch the
			// global generator. Only the remaining package-level
			// functions hit it.
			if strings.HasPrefix(fn.Name(), "New") {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				p.Reportf(sel.Pos(),
					"global math/rand source (rand.%s) is unseeded and process-wide; inject a seeded *rand.Rand (stats.NewRand)",
					fn.Name())
			}
			return true
		})
	}
}
