// Live stream emission for the workload generators.
//
// A LogStream replays a dfs.File as an unbounded-looking, event-time
// paced stream: records come out in exactly the batch file's byte
// order and content, but each carries a virtual arrival timestamp
// drawn from a seeded Poisson process whose intensity follows a caller
// supplied rate curve (constant, diurnal, ...). The pacing is entirely
// virtual — no sleeping, no wall clock — so a fixed (file, rate curve,
// seed) triple always produces the identical (timestamp, record)
// sequence, which is what lets the streaming plane promise
// byte-identical window series across runs and worker counts.
package workload

import (
	"errors"
	"math"

	"approxhadoop/internal/dfs"
	"approxhadoop/internal/stats"
)

// ErrStop is returned by a LogStream.Run callback to end the stream
// early without error (for example once enough windows have closed).
var ErrStop = errors.New("workload: stop stream")

// RateFunc is a stream intensity curve: expected records per virtual
// second at virtual time t (seconds since stream start). Values are
// clamped to a small positive floor so a zero-rate trough advances
// time instead of dividing by zero.
//
//approx:pure
type RateFunc func(t float64) float64

// minRate floors RateFunc values; a curve that dips to zero would
// otherwise stall virtual time forever.
const minRate = 1e-9

// ConstantRate emits perSec records per virtual second, forever.
func ConstantRate(perSec float64) RateFunc {
	return func(float64) float64 { return perSec }
}

// DiurnalRate is a day-shaped sinusoid: base*(1 + swing*sin(2πt/period)).
// swing in [0,1) keeps the curve positive; swing 0.5 sweeps a 3x range
// (0.5x..1.5x base), the kind of input-rate excursion the adaptive
// controller must ride out.
func DiurnalRate(base, swing, period float64) RateFunc {
	return func(t float64) float64 {
		return base * (1 + swing*math.Sin(2*math.Pi*t/period))
	}
}

// StreamOptions configure how a file is replayed as a stream.
type StreamOptions struct {
	// Rate is the arrival intensity curve. Required.
	Rate RateFunc
	// Seed drives the Poisson jitter between arrivals. The same seed
	// reproduces the same timestamp sequence; 0 defaults to 1.
	Seed int64
	// Start offsets the first arrival's virtual time (default 0).
	Start float64
}

// LogStream replays a generated (or byte-backed) dfs file as a
// virtual-clock paced record stream.
type LogStream struct {
	file *dfs.File
	opt  StreamOptions
}

// StreamFrom wraps a dfs file — typically a workload generator's
// File() — as a live stream. The file's blocks must support the
// record-yielding Lines fast path (all generated and SplitText files
// do); Run reports dfs.ErrNoLineBacking otherwise.
func StreamFrom(f *dfs.File, opt StreamOptions) *LogStream {
	if opt.Rate == nil {
		opt.Rate = ConstantRate(1)
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	return &LogStream{file: f, opt: opt}
}

// Run drives fn once per record, in file order, with strictly
// increasing virtual arrival times. Arrivals are a non-homogeneous
// Poisson process: each inter-arrival gap is -ln(u)/rate(t) with u
// drawn from the stream's seeded RNG, so the expected instantaneous
// rate tracks the curve while individual gaps jitter realistically.
// The yielded line slice is only valid during the call (it aliases
// the block generator's buffer); fn must copy what it keeps. fn may
// return ErrStop to end the stream cleanly; any other error aborts
// Run and is returned as-is.
func (s *LogStream) Run(fn func(t float64, line []byte) error) error {
	rng := stats.NewRand(s.opt.Seed)
	t := s.opt.Start
	var carry []byte
	for _, b := range s.file.Blocks {
		var err error
		carry, err = b.Lines(carry, func(line []byte) error {
			// 1-Float64() is in (0,1]: -ln never overflows to +Inf.
			u := 1 - rng.Float64()
			r := s.opt.Rate(t)
			if r < minRate {
				r = minRate
			}
			t += -math.Log(u) / r
			return fn(t, line)
		})
		if err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
	return nil
}
