package workload

import (
	"bytes"
	"io"
	"testing"

	"approxhadoop/internal/dfs"
)

// readAll concatenates a generated file's blocks through Open.
func readAllBlocks(t *testing.T, blocks []io.ReadCloser) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rc := range blocks {
		if _, err := buf.ReadFrom(rc); err != nil {
			t.Fatalf("read block: %v", err)
		}
		if err := rc.Close(); err != nil {
			t.Fatalf("close block: %v", err)
		}
	}
	return buf.Bytes()
}

// TestStreamMatchesBatchBytes: the streamed records of both live
// generators must be byte-identical to the batch file contents — the
// stream is the same data, just paced.
func TestStreamMatchesBatchBytes(t *testing.T) {
	edits := EditLog{Blocks: 4, LinesPerBlock: 500, Projects: 20, Editors: 500, Pages: 2000, Seed: 9}
	web := WebLog{Blocks: 3, LinesPerBlock: 700, Clients: 300, Attackers: 10, AttackRate: 0.02, Seed: 5}

	check := func(name string, mk func(n string) *dfs.File) {
		t.Run(name, func(t *testing.T) {
			f := mk("batch")
			var rcs []io.ReadCloser
			for _, b := range f.Blocks {
				rcs = append(rcs, b.Open())
			}
			want := readAllBlocks(t, rcs)

			var got bytes.Buffer
			var lastT float64
			s := StreamFrom(mk("live"), StreamOptions{Rate: DiurnalRate(200, 0.5, 30), Seed: 17})
			err := s.Run(func(tm float64, line []byte) error {
				if tm <= lastT {
					t.Fatalf("arrival times not strictly increasing: %g after %g", tm, lastT)
				}
				lastT = tm
				got.Write(line)
				got.WriteByte('\n')
				return nil
			})
			if err != nil {
				t.Fatalf("stream: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("streamed bytes differ from batch contents (%d vs %d bytes)", got.Len(), len(want))
			}
		})
	}
	check("editlog", func(n string) *dfs.File { return edits.File(n) })
	check("weblog", func(n string) *dfs.File { return web.File(n) })
}

// TestStreamTimestampsDeterministic: the same (file, rate, seed)
// reproduces the identical arrival-time sequence; a different seed
// does not.
func TestStreamTimestampsDeterministic(t *testing.T) {
	e := EditLog{Blocks: 2, LinesPerBlock: 300, Projects: 10, Editors: 100, Pages: 500, Seed: 3}
	times := func(seed int64) []float64 {
		var ts []float64
		s := StreamFrom(e.File("x"), StreamOptions{Rate: ConstantRate(100), Seed: seed})
		if err := s.Run(func(tm float64, _ []byte) error {
			ts = append(ts, tm)
			return nil
		}); err != nil {
			t.Fatalf("stream: %v", err)
		}
		return ts
	}
	a, b, c := times(4), times(4), times(5)
	if len(a) != 600 {
		t.Fatalf("streamed %d records; want 600", len(a))
	}
	for i := range a {
		if a[i] != b[i] { //lint:ignore nofloateq determinism check wants bit equality
			t.Fatalf("run 1 and 2 diverge at record %d: %g vs %g", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] { //lint:ignore nofloateq deliberate bit comparison
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different jitter seeds produced identical arrival times")
	}
}

// TestStreamStop: ErrStop ends the stream cleanly mid-file.
func TestStreamStop(t *testing.T) {
	e := EditLog{Blocks: 2, LinesPerBlock: 300, Seed: 3}
	n := 0
	s := StreamFrom(e.File("x"), StreamOptions{Rate: ConstantRate(50), Seed: 2})
	err := s.Run(func(float64, []byte) error {
		n++
		if n == 100 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStop should end the stream cleanly, got %v", err)
	}
	if n != 100 {
		t.Fatalf("stream yielded %d records after stop at 100", n)
	}
}

// TestStreamRateTracksCurve: over a long constant-rate stream the
// empirical rate must converge to the curve.
func TestStreamRateTracksCurve(t *testing.T) {
	e := EditLog{Blocks: 5, LinesPerBlock: 2000, Seed: 7}
	var last float64
	n := 0
	s := StreamFrom(e.File("x"), StreamOptions{Rate: ConstantRate(250), Seed: 11})
	if err := s.Run(func(tm float64, _ []byte) error {
		last, n = tm, n+1
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	rate := float64(n) / last
	if rate < 235 || rate > 265 {
		t.Fatalf("empirical rate %.1f rec/s; want ~250", rate)
	}
}
