package workload

import (
	"io"
	"strings"
	"testing"
	"testing/quick"

	"approxhadoop/internal/dfs"
)

func blockLines(t *testing.T, b *dfs.Block) []string {
	t.Helper()
	rc := b.Open()
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	return lines
}

func TestWikiDumpGeneration(t *testing.T) {
	w := WikiDump{Blocks: 4, ArticlesPerBlock: 50, LinkUniverse: 100, MeanLinks: 4, Seed: 7}
	f := w.File("wiki")
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	seen := map[string]bool{}
	for _, b := range f.Blocks {
		lines := blockLines(t, b)
		if len(lines) != 50 {
			t.Errorf("block %d has %d lines", b.Index, len(lines))
		}
		for _, line := range lines {
			a, ok := ParseArticle(line)
			if !ok {
				t.Fatalf("unparseable line: %q", line)
			}
			if a.Size <= 0 {
				t.Errorf("non-positive size: %+v", a)
			}
			if seen[a.ID] {
				t.Errorf("duplicate article id %s", a.ID)
			}
			seen[a.ID] = true
			for _, l := range a.Links {
				if !strings.HasPrefix(l, "A") {
					t.Errorf("bad link %q", l)
				}
			}
		}
	}
	// Determinism.
	again := blockLines(t, w.File("wiki2").Blocks[0])
	first := blockLines(t, f.Blocks[0])
	for i := range first {
		if first[i] != again[i] {
			t.Fatal("generation must be deterministic per seed/index")
		}
	}
}

func TestParseArticleMalformed(t *testing.T) {
	if _, ok := ParseArticle("garbage"); ok {
		t.Error("no tabs should fail")
	}
	if _, ok := ParseArticle("A1\tnotanumber\tA2"); ok {
		t.Error("bad size should fail")
	}
	a, ok := ParseArticle("A1\t100\t")
	if !ok || len(a.Links) != 0 {
		t.Errorf("empty links should parse: %+v ok=%v", a, ok)
	}
}

func TestSizeBin(t *testing.T) {
	cases := map[int]string{1: "1B", 2: "2B", 3: "4B", 100: "128B", 1024: "1024B", 1025: "2048B"}
	for size, want := range cases {
		if got := SizeBin(size); got != want {
			t.Errorf("SizeBin(%d) = %s, want %s", size, got, want)
		}
	}
}

func TestAccessLogGeneration(t *testing.T) {
	a := AccessLog{Blocks: 3, LinesPerBlock: 200, Projects: 20, Pages: 100, Seed: 5}
	f := a.File("log")
	projCounts := map[string]int{}
	for _, b := range f.Blocks {
		for _, line := range blockLines(t, b) {
			acc, ok := ParseAccess(line)
			if !ok {
				t.Fatalf("unparseable: %q", line)
			}
			if acc.Bytes <= 0 || acc.Epoch < 0 {
				t.Errorf("bad record: %+v", acc)
			}
			projCounts[acc.Project]++
		}
	}
	// Zipf popularity: proj1 should dominate.
	if projCounts["proj1"] <= projCounts["proj10"] {
		t.Errorf("proj1 (%d) should dominate proj10 (%d)", projCounts["proj1"], projCounts["proj10"])
	}
}

func TestParseAccessMalformed(t *testing.T) {
	for _, bad := range []string{"", "a\tb", "x\tproj\tpage\tbytes", "notanum\tp\tq\t5"} {
		if _, ok := ParseAccess(bad); ok {
			t.Errorf("should fail: %q", bad)
		}
	}
}

func TestScaledAccessLogGrowsLinearly(t *testing.T) {
	d1 := ScaledAccessLog(1, 4, 100, 9)
	d30 := ScaledAccessLog(30, 4, 100, 9)
	if d30.Blocks != 30*d1.Blocks {
		t.Errorf("30 days should have 30x blocks: %d vs %d", d30.Blocks, d1.Blocks)
	}
}

func TestWebLogGeneration(t *testing.T) {
	w := WebLog{Blocks: 4, LinesPerBlock: 2000, Clients: 100, Attackers: 5, AttackRate: 0.2, Seed: 11}
	f := w.File("weblog")
	attacks, benign := 0, 0
	hourCounts := map[int]int{}
	for _, b := range f.Blocks {
		for _, line := range blockLines(t, b) {
			rec, ok := ParseWebAccess(line)
			if !ok {
				t.Fatalf("unparseable: %q", line)
			}
			if rec.IsAttack() {
				attacks++
				if !strings.HasPrefix(rec.Client, "c") {
					t.Errorf("bad attacker client %q", rec.Client)
				}
			} else {
				benign++
			}
			hourCounts[rec.HourOfWeek]++
		}
	}
	if attacks == 0 {
		t.Error("expected some attacks")
	}
	if attacks > benign/5 {
		t.Errorf("attacks should be rare: %d vs %d benign", attacks, benign)
	}
	// Office hours (Tue 11:00 = hour 35) should beat night (Tue 03:00 = 27).
	if hourCounts[35] <= hourCounts[27] {
		t.Errorf("weekly shape missing: office %d vs night %d", hourCounts[35], hourCounts[27])
	}
}

func TestParseWebAccessMalformed(t *testing.T) {
	for _, bad := range []string{"", "a\tb\tc\td\te", "c1\t200\t/p\t10\tFirefox\t-", "c1\tx\t/p\t10\tF\t-"} {
		if _, ok := ParseWebAccess(bad); ok {
			t.Errorf("should fail: %q", bad)
		}
	}
	rec, ok := ParseWebAccess("c1\t35\t/p1\t100\tFirefox\tsqlinj")
	if !ok || !rec.IsAttack() || rec.HourOfWeek != 35 {
		t.Errorf("parse: %+v ok=%v", rec, ok)
	}
}

func TestSearchSeeds(t *testing.T) {
	f := SearchSeeds("seeds", 10, 3)
	if len(f.Blocks) != 10 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	seen := map[int64]bool{}
	for _, b := range f.Blocks {
		lines := blockLines(t, b)
		if len(lines) != 1 {
			t.Fatalf("block %d should hold one seed line", b.Index)
		}
		s, ok := ParseSeed(lines[0])
		if !ok {
			t.Fatalf("unparseable seed line %q", lines[0])
		}
		if seen[s] {
			t.Errorf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if _, ok := ParseSeed("bogus"); ok {
		t.Error("bogus seed line should fail")
	}
	if _, ok := ParseSeed("seed\tx"); ok {
		t.Error("non-numeric seed should fail")
	}
}

func TestGeneratorsHandleZeroConfigs(t *testing.T) {
	if f := (WikiDump{}).File("w"); len(f.Blocks) != 1 {
		t.Error("zero-config wiki should clamp to 1 block")
	}
	if f := (AccessLog{}).File("a"); len(f.Blocks) != 1 {
		t.Error("zero-config log should clamp")
	}
	if f := (WebLog{}).File("b"); len(f.Blocks) != 1 {
		t.Error("zero-config weblog should clamp")
	}
	if f := SearchSeeds("s", 0, 1); len(f.Blocks) != 1 {
		t.Error("zero maps should clamp")
	}
}

func TestHourWeightProperty(t *testing.T) {
	err := quick.Check(func(h uint16) bool {
		w := hourWeight(int(h) % 168)
		return w > 0 && w < 2
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDefaultsAreSane(t *testing.T) {
	if d := DefaultWikiDump(); d.Blocks != 161 {
		t.Errorf("wiki default blocks = %d (paper: 161 maps)", d.Blocks)
	}
	if d := DefaultAccessLog(); d.Blocks != 740 {
		t.Errorf("access default blocks = %d (paper: ~740 maps/week)", d.Blocks)
	}
	if d := DefaultWebLog(); d.Blocks != 80 {
		t.Errorf("weblog default blocks = %d (paper: 80 weeks)", d.Blocks)
	}
}

func TestWikiLinkPopularityIsHeavyTailed(t *testing.T) {
	w := WikiDump{Blocks: 6, ArticlesPerBlock: 300, LinkUniverse: 500, MeanLinks: 6, Seed: 13}
	f := w.File("wiki")
	counts := map[string]int{}
	for _, b := range f.Blocks {
		for _, line := range blockLines(t, b) {
			a, _ := ParseArticle(line)
			for _, l := range a.Links {
				counts[l]++
			}
		}
	}
	if counts["A1"] <= counts["A100"] {
		t.Errorf("A1 (%d) should attract more links than A100 (%d)", counts["A1"], counts["A100"])
	}
}
