// Package workload generates the synthetic datasets that stand in for
// the paper's inputs: the English Wikipedia article dump (Section 5.2,
// Data Analysis), the Wikipedia access logs (Log Processing and the
// Table 2 scaling series), and a department web-server access log
// (Section 5.4). All generators are deterministic functions of a seed
// and back dfs generated blocks, so multi-terabyte-equivalent inputs
// exist only as block descriptors until a map task reads them.
//
// The generators preserve the statistical properties the paper's
// evaluation depends on: heavy-tailed (Zipf) page/project popularity,
// heavy-tailed article sizes, intra-block locality (consecutive
// records are correlated, which is what widens task-dropping
// confidence intervals relative to in-block sampling), stable hourly
// request rates with a weekly pattern, and rare attack events.
package workload

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"approxhadoop/internal/dfs"
	"approxhadoop/internal/stats"
)

// intSource is the minimal RNG surface dfs generators receive.
type intSource = dfs.RandSource

// lineBuf is a reusable line-formatting buffer for generators. Blocks
// regenerate on every map read, so per-line fmt formatting (which boxes
// every operand) used to dominate the simulator's allocation profile;
// generators instead strconv.Append* into one buffer per block and
// flush it line by line, producing byte-identical output.
type lineBuf []byte

//approx:hotpath
func (b *lineBuf) reset() { *b = (*b)[:0] }

//approx:hotpath
func (b *lineBuf) str(s string) { *b = append(*b, s...) }

//approx:hotpath
func (b *lineBuf) byte(c byte) { *b = append(*b, c) }

//approx:hotpath
func (b *lineBuf) int(v int64) { *b = strconv.AppendInt(*b, v, 10) }

//approx:hotpath
func (b *lineBuf) uint(v uint64) { *b = strconv.AppendUint(*b, v, 10) }

//approx:hotpath
func (b *lineBuf) flush(w io.Writer) error {
	_, err := w.Write(*b)
	return err
}

// ---------------------------------------------------------------------------
// Wikipedia article dump
// ---------------------------------------------------------------------------

// WikiDump describes a synthetic Wikipedia article dump. Each line is
// one article: "id<TAB>size<TAB>link link link ...".
type WikiDump struct {
	Blocks           int   // number of 64MB-equivalent blocks (map tasks)
	ArticlesPerBlock int   // articles per block
	LinkUniverse     int   // articles that can be linked to
	MeanLinks        int   // mean outgoing links per article
	Seed             int64 // generator seed
}

// DefaultWikiDump is a laptop-scale analog of the May 2014 snapshot
// (161 blocks in the paper).
func DefaultWikiDump() WikiDump {
	return WikiDump{Blocks: 161, ArticlesPerBlock: 2000, LinkUniverse: 20000, MeanLinks: 8, Seed: 1}
}

// File materializes the dump as a generated dfs file. The generator
// literal runs once per block read, per line — hot-path rules apply.
//
//approx:hotpath
func (w WikiDump) File(name string) *dfs.File {
	if w.Blocks <= 0 {
		w.Blocks = 1
	}
	if w.ArticlesPerBlock <= 0 {
		w.ArticlesPerBlock = 100
	}
	if w.LinkUniverse <= 0 {
		w.LinkUniverse = 1000
	}
	if w.MeanLinks <= 0 {
		w.MeanLinks = 5
	}
	gen := func(idx int, r intSource, bw io.Writer) error {
		rr := stats.NewRand(r.Int63())
		zipf := stats.NewZipf(rr, 1.3, uint64(w.LinkUniverse))
		// Intra-block locality: articles in the same block share a
		// size regime (they were dumped together), like the paper's
		// observation that "data within blocks usually has locality".
		blockBias := 0.6 + rr.Float64()
		var lb lineBuf
		for i := 0; i < w.ArticlesPerBlock; i++ {
			id := idx*w.ArticlesPerBlock + i
			size := int(stats.Pareto(rr, 300*blockBias, 1.3))
			if size > 2_000_000 {
				size = 2_000_000
			}
			nLinks := int(stats.Pareto(rr, float64(w.MeanLinks)/2, 1.5))
			if nLinks > 60 {
				nLinks = 60
			}
			lb.reset()
			lb.byte('A')
			lb.int(int64(id))
			lb.byte('\t')
			lb.int(int64(size))
			lb.byte('\t')
			for l := 0; l < nLinks; l++ {
				if l > 0 {
					lb.byte(' ')
				}
				lb.byte('A')
				lb.uint(zipf.Next())
			}
			lb.byte('\n')
			if err := lb.flush(bw); err != nil {
				return err
			}
		}
		return nil
	}
	estSize := int64(w.ArticlesPerBlock) * 64
	return dfs.GeneratedFile(name, w.Blocks, w.Seed, estSize, int64(w.ArticlesPerBlock), gen)
}

// Article is one parsed dump record.
type Article struct {
	ID    string
	Size  int
	Links []string
}

// ParseArticle parses one dump line. Malformed lines yield ok=false
// (and should be skipped, as Hadoop text jobs conventionally do).
func ParseArticle(line string) (Article, bool) {
	parts := strings.SplitN(line, "\t", 3)
	if len(parts) < 2 {
		return Article{}, false
	}
	size, err := strconv.Atoi(parts[1])
	if err != nil {
		return Article{}, false
	}
	a := Article{ID: parts[0], Size: size}
	if len(parts) == 3 && parts[2] != "" {
		a.Links = strings.Fields(parts[2])
	}
	return a, true
}

// SizeBin assigns an article size to its histogram bin (power of two),
// the WikiLength binning.
func SizeBin(size int) string {
	bin := 1
	for bin < size {
		bin <<= 1
	}
	return fmt.Sprintf("%dB", bin)
}

// ---------------------------------------------------------------------------
// Wikipedia access log
// ---------------------------------------------------------------------------

// AccessLog describes a synthetic Wikipedia HTTP access log. Each line
// is "epochSecond<TAB>project<TAB>page<TAB>bytes".
type AccessLog struct {
	Blocks        int // blocks == map tasks (~740 for "1 week" in the paper)
	LinesPerBlock int // log entries per block
	Projects      int // project universe (>2,640 in the paper)
	Pages         int // page universe
	Seed          int64
}

// DefaultAccessLog is a laptop-scale analog of the one-week 46GB log:
// 46GB of compressed blocks is ~740 map tasks (the paper's week runs
// in roughly nine waves on the 80-slot cluster), with per-block record
// counts scaled down to laptop size.
func DefaultAccessLog() AccessLog {
	return AccessLog{Blocks: 740, LinesPerBlock: 2000, Projects: 400, Pages: 20000, Seed: 2}
}

// ScaledAccessLog returns the log descriptor for a Table 2 period: the
// block count grows linearly with the number of days, exactly like the
// paper's 92 maps/day... 6,500 maps/year series (scaled down by
// blocksPerDay).
func ScaledAccessLog(days, blocksPerDay, linesPerBlock int, seed int64) AccessLog {
	return AccessLog{
		Blocks:        days * blocksPerDay,
		LinesPerBlock: linesPerBlock,
		Projects:      400,
		Pages:         20000,
		Seed:          seed,
	}
}

// File materializes the log as a generated dfs file. The generator
// literal runs once per block read, per line — hot-path rules apply.
//
//approx:hotpath
func (a AccessLog) File(name string) *dfs.File {
	if a.Blocks <= 0 {
		a.Blocks = 1
	}
	if a.LinesPerBlock <= 0 {
		a.LinesPerBlock = 1000
	}
	if a.Projects <= 0 {
		a.Projects = 10
	}
	if a.Pages <= 0 {
		a.Pages = 100
	}
	gen := func(idx int, r intSource, bw io.Writer) error {
		rr := stats.NewRand(r.Int63())
		projZipf := stats.NewZipf(rr, 1.4, uint64(a.Projects))
		pageZipf := stats.NewZipf(rr, 1.2, uint64(a.Pages))
		// Blocks are time-contiguous: entries in block idx carry
		// timestamps from that slice of the period (locality again).
		base := int64(idx) * 3600
		var lb lineBuf
		for i := 0; i < a.LinesPerBlock; i++ {
			ts := base + rr.Int63()%3600
			proj := projZipf.Next()
			page := pageZipf.Next()
			bytes := int(stats.Pareto(rr, 800, 1.4))
			if bytes > 5_000_000 {
				bytes = 5_000_000
			}
			lb.reset()
			lb.int(ts)
			lb.str("\tproj")
			lb.uint(proj)
			lb.str("\tpage")
			lb.uint(page)
			lb.byte('\t')
			lb.int(int64(bytes))
			lb.byte('\n')
			if err := lb.flush(bw); err != nil {
				return err
			}
		}
		return nil
	}
	estSize := int64(a.LinesPerBlock) * 32
	return dfs.GeneratedFile(name, a.Blocks, a.Seed, estSize, int64(a.LinesPerBlock), gen)
}

// Access is one parsed access-log record.
type Access struct {
	Epoch   int64
	Project string
	Page    string
	Bytes   int
}

// ParseAccess parses one access-log line.
func ParseAccess(line string) (Access, bool) {
	parts := strings.SplitN(line, "\t", 4)
	if len(parts) != 4 {
		return Access{}, false
	}
	ts, err1 := strconv.ParseInt(parts[0], 10, 64)
	b, err2 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil {
		return Access{}, false
	}
	return Access{Epoch: ts, Project: parts[1], Page: parts[2], Bytes: b}, true
}

// ---------------------------------------------------------------------------
// Wikipedia edit log
// ---------------------------------------------------------------------------

// EditLog describes a synthetic Wikipedia edit-history log, the input
// for the sketch-plane queries (distinct editors per project, editor
// membership). Each line is "epochSecond<TAB>project<TAB>editor<TAB>page".
// Editor activity is Zipf-skewed (a core of prolific editors plus a
// long tail), and each block additionally biases toward a per-block
// window of the editor universe — the temporal locality real edit
// history has, which keeps per-task distinct counts well below the
// global count and makes the multi-stage composition observable.
type EditLog struct {
	Blocks        int
	LinesPerBlock int
	Projects      int // project universe
	Editors       int // editor universe
	Pages         int // page universe
	Seed          int64
}

// DefaultEditLog is the laptop-scale edit history paired with
// DefaultAccessLog: fewer blocks (edits are rarer than reads), the
// same project universe shape.
func DefaultEditLog() EditLog {
	return EditLog{Blocks: 120, LinesPerBlock: 2000, Projects: 40, Editors: 5000, Pages: 20000, Seed: 4}
}

// File materializes the edit log as a generated dfs file. The
// generator literal runs once per block read, per line — hot-path
// rules apply.
//
//approx:hotpath
func (e EditLog) File(name string) *dfs.File {
	if e.Blocks <= 0 {
		e.Blocks = 1
	}
	if e.LinesPerBlock <= 0 {
		e.LinesPerBlock = 1000
	}
	if e.Projects <= 0 {
		e.Projects = 10
	}
	if e.Editors <= 0 {
		e.Editors = 100
	}
	if e.Pages <= 0 {
		e.Pages = 100
	}
	gen := func(idx int, r intSource, bw io.Writer) error {
		rr := stats.NewRand(r.Int63())
		projZipf := stats.NewZipf(rr, 1.3, uint64(e.Projects))
		editorZipf := stats.NewZipf(rr, 1.1, uint64(e.Editors))
		pageZipf := stats.NewZipf(rr, 1.2, uint64(e.Pages))
		// Temporal locality: half the edits come from a sliding window
		// of the editor universe anchored at this block.
		window := e.Editors / 10
		if window < 1 {
			window = 1
		}
		winBase := (idx * window / 2) % e.Editors
		base := int64(idx) * 7200
		var lb lineBuf
		for i := 0; i < e.LinesPerBlock; i++ {
			ts := base + rr.Int63()%7200
			proj := projZipf.Next()
			var editor uint64
			if rr.Intn(2) == 0 {
				editor = uint64((winBase + rr.Intn(window)) % e.Editors)
			} else {
				editor = editorZipf.Next()
			}
			page := pageZipf.Next()
			lb.reset()
			lb.int(ts)
			lb.str("\tproj")
			lb.uint(proj)
			lb.str("\ted")
			lb.uint(editor)
			lb.str("\tpage")
			lb.uint(page)
			lb.byte('\n')
			if err := lb.flush(bw); err != nil {
				return err
			}
		}
		return nil
	}
	estSize := int64(e.LinesPerBlock) * 30
	return dfs.GeneratedFile(name, e.Blocks, e.Seed, estSize, int64(e.LinesPerBlock), gen)
}

// Edit is one parsed edit-log record.
type Edit struct {
	Epoch   int64
	Project string
	Editor  string
	Page    string
}

// ParseEdit parses one edit-log line.
func ParseEdit(line string) (Edit, bool) {
	parts := strings.SplitN(line, "\t", 4)
	if len(parts) != 4 {
		return Edit{}, false
	}
	ts, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return Edit{}, false
	}
	return Edit{Epoch: ts, Project: parts[1], Editor: parts[2], Page: parts[3]}, true
}

// ---------------------------------------------------------------------------
// Department web-server log
// ---------------------------------------------------------------------------

// WebLog describes a synthetic departmental web-server access log
// (Section 5.4): stable request rates following a weekly pattern, and
// a small set of attacker clients producing rare attack requests. Each
// line is "client<TAB>hourOfWeek<TAB>path<TAB>bytes<TAB>agent<TAB>attack"
// with attack being a pattern name or "-".
type WebLog struct {
	Blocks        int // one per week in the paper (8 weeks)
	LinesPerBlock int
	Clients       int
	Attackers     int     // clients that also send attacks
	AttackRate    float64 // fraction of an attacker's lines that are attacks
	Seed          int64
}

// DefaultWebLog is a laptop-scale analog of the 80-week log (80 blocks
// in the paper; we keep their one-block-per-week structure).
func DefaultWebLog() WebLog {
	return WebLog{Blocks: 80, LinesPerBlock: 8000, Clients: 3000, Attackers: 40, AttackRate: 0.02, Seed: 3}
}

var browsers = []string{"Firefox", "Chrome", "Safari", "IE", "Edge", "curl", "bot"}

var attackPatterns = []string{"sqlinj", "xss", "pathtrav", "shellshock"}

// hourWeight is the weekly request-rate shape: business hours on
// weekdays dominate; nights and weekends are quieter. Rates vary by
// roughly a third, matching Figure 10(b)'s stability.
func hourWeight(hourOfWeek int) float64 {
	day := hourOfWeek / 24
	hour := hourOfWeek % 24
	w := 1.0
	if day >= 5 {
		w *= 0.85 // weekend dip
	}
	if hour >= 9 && hour <= 18 {
		w *= 1.25 // office hours
	} else if hour < 6 {
		w *= 0.85
	}
	return w
}

// File materializes the web log as a generated dfs file. The generator
// literal runs once per block read, per line — hot-path rules apply.
//
//approx:hotpath
func (w WebLog) File(name string) *dfs.File {
	if w.Blocks <= 0 {
		w.Blocks = 1
	}
	if w.LinesPerBlock <= 0 {
		w.LinesPerBlock = 1000
	}
	if w.Clients <= 0 {
		w.Clients = 100
	}
	if w.Attackers < 0 {
		w.Attackers = 0
	}
	if w.AttackRate <= 0 {
		w.AttackRate = 0.01
	}
	// Precompute the hour-of-week sampling distribution.
	var cum [168]float64
	total := 0.0
	for h := 0; h < 168; h++ {
		total += hourWeight(h)
		cum[h] = total
	}
	gen := func(idx int, r intSource, bw io.Writer) error {
		rr := stats.NewRand(r.Int63())
		clientZipf := stats.NewZipf(rr, 1.1, uint64(w.Clients))
		pathZipf := stats.NewZipf(rr, 1.3, 2000)
		var lb lineBuf
		for i := 0; i < w.LinesPerBlock; i++ {
			// Draw the hour of week from the weekly shape.
			u := rr.Float64() * total
			hour := 0
			for hour < 167 && cum[hour] < u {
				hour++
			}
			client := int(clientZipf.Next())
			path := pathZipf.Next()
			bytes := int(stats.Pareto(rr, 500, 1.5))
			if bytes > 2_000_000 {
				bytes = 2_000_000
			}
			agent := browsers[int(rr.Int63())%len(browsers)]
			attack := "-"
			if client <= w.Attackers && rr.Float64() < w.AttackRate {
				attack = attackPatterns[int(rr.Int63())%len(attackPatterns)]
			}
			lb.reset()
			lb.byte('c')
			lb.int(int64(client))
			lb.byte('\t')
			lb.int(int64(hour))
			lb.str("\t/p")
			lb.uint(path)
			lb.byte('\t')
			lb.int(int64(bytes))
			lb.byte('\t')
			lb.str(agent)
			lb.byte('\t')
			lb.str(attack)
			lb.byte('\n')
			if err := lb.flush(bw); err != nil {
				return err
			}
		}
		return nil
	}
	estSize := int64(w.LinesPerBlock) * 40
	return dfs.GeneratedFile(name, w.Blocks, w.Seed, estSize, int64(w.LinesPerBlock), gen)
}

// WebAccess is one parsed web-server log record.
type WebAccess struct {
	Client     string
	HourOfWeek int
	Path       string
	Bytes      int
	Agent      string
	Attack     string // "-" when the request is benign
}

// ParseWebAccess parses one web-server log line.
func ParseWebAccess(line string) (WebAccess, bool) {
	parts := strings.SplitN(line, "\t", 6)
	if len(parts) != 6 {
		return WebAccess{}, false
	}
	hour, err1 := strconv.Atoi(parts[1])
	b, err2 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || hour < 0 || hour >= 168 {
		return WebAccess{}, false
	}
	return WebAccess{
		Client:     parts[0],
		HourOfWeek: hour,
		Path:       parts[2],
		Bytes:      b,
		Agent:      parts[4],
		Attack:     parts[5],
	}, true
}

// IsAttack reports whether the record is an attack request.
func (w WebAccess) IsAttack() bool { return w.Attack != "-" }

// ---------------------------------------------------------------------------
// Optimization seeds (DC placement and similar search workloads)
// ---------------------------------------------------------------------------

// SearchSeeds builds an input file with one search-seed line per map
// task ("seed <n>"), for jobs where every map performs an independent
// randomized search (the DC-placement pattern).
func SearchSeeds(name string, maps int, seed int64) *dfs.File {
	if maps <= 0 {
		maps = 1
	}
	gen := func(idx int, r intSource, bw io.Writer) error {
		_, err := fmt.Fprintf(bw, "seed\t%d\n", r.Int63())
		return err
	}
	return dfs.GeneratedFile(name, maps, seed, 24, 1, gen)
}

// ParseSeed extracts the seed from a SearchSeeds line.
func ParseSeed(line string) (int64, bool) {
	parts := strings.SplitN(line, "\t", 2)
	if len(parts) != 2 || parts[0] != "seed" {
		return 0, false
	}
	s, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return s, true
}
