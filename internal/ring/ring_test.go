package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return out
}

// Placement must be a pure function of (seed, member set, key):
// rebuilding the ring — even with members inserted in a different
// order — routes every key identically.
func TestDeterministicPlacement(t *testing.T) {
	build := func(order []string) *Ring {
		r := New(7, 0)
		for _, m := range order {
			r.Add(m)
		}
		return r
	}
	members := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	a := build(members)
	b := build([]string{"shard-3", "shard-1", "shard-0", "shard-2"})
	for _, k := range keys(500) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %q: insertion order changed placement: %q vs %q", k, a.Lookup(k), b.Lookup(k))
		}
	}
	// And a second identical build is bit-for-bit the same routing table.
	c := build(members)
	for _, k := range keys(500) {
		if a.Lookup(k) != c.Lookup(k) {
			t.Fatalf("key %q: rebuild changed placement", k)
		}
	}
}

// Different seeds must place keys independently — otherwise the seed
// is decorative and every deployment shares hotspots.
func TestSeedChangesPlacement(t *testing.T) {
	a, b := New(1, 0), New(2, 0)
	for i := 0; i < 4; i++ {
		m := fmt.Sprintf("shard-%d", i)
		a.Add(m)
		b.Add(m)
	}
	moved := 0
	for _, k := range keys(1000) {
		if a.Lookup(k) != b.Lookup(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("seed had no effect on placement")
	}
}

// Adding one member to an N-member ring must move roughly 1/(N+1) of
// the keys and leave everything else in place — the property that
// makes consistent hashing "consistent".
func TestBoundedMovementOnAdd(t *testing.T) {
	const n = 4
	r := New(11, 0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	ks := keys(4000)
	before := make([]string, len(ks))
	for i, k := range ks {
		before[i] = r.Lookup(k)
	}
	r.Add(fmt.Sprintf("shard-%d", n))
	moved := 0
	for i, k := range ks {
		after := r.Lookup(k)
		if after != before[i] {
			if after != fmt.Sprintf("shard-%d", n) {
				t.Fatalf("key %q moved between pre-existing members: %q -> %q", k, before[i], after)
			}
			moved++
		}
	}
	frac := float64(moved) / float64(len(ks))
	ideal := 1.0 / float64(n+1)
	if frac > 2.5*ideal {
		t.Fatalf("add moved %.1f%% of keys, want about %.1f%%", frac*100, ideal*100)
	}
	if moved == 0 {
		t.Fatal("new member received no keys")
	}
}

// Removing a member must only reassign that member's keys.
func TestBoundedMovementOnRemove(t *testing.T) {
	const n = 5
	r := New(11, 0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	ks := keys(4000)
	before := make([]string, len(ks))
	for i, k := range ks {
		before[i] = r.Lookup(k)
	}
	r.Remove("shard-2")
	for i, k := range ks {
		after := r.Lookup(k)
		if before[i] != "shard-2" && after != before[i] {
			t.Fatalf("key %q not owned by removed member moved: %q -> %q", k, before[i], after)
		}
		if after == "shard-2" {
			t.Fatalf("key %q still routed to removed member", k)
		}
	}
}

// Virtual points must spread load: no member of a 4-shard ring should
// own a wildly disproportionate share of a uniform keyspace.
func TestLoadSpread(t *testing.T) {
	const n = 4
	r := New(3, 0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	counts := map[string]int{}
	ks := keys(8000)
	for _, k := range ks {
		counts[r.Lookup(k)]++
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d members received keys", len(counts), n)
	}
	ideal := float64(len(ks)) / n
	for m, c := range counts {
		if float64(c) < 0.4*ideal || float64(c) > 1.9*ideal {
			t.Fatalf("member %s owns %d keys, ideal %.0f — spread too skewed", m, c, ideal)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	r := New(1, 0)
	if got := r.Lookup("anything"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
	r.Add("only")
	for _, k := range keys(50) {
		if r.Lookup(k) != "only" {
			t.Fatal("singleton ring must own every key")
		}
	}
	if got := r.Members(); len(got) != 1 || got[0] != "only" {
		t.Fatalf("Members = %v", got)
	}
	r.Add("only") // duplicate add is a no-op
	if r.Size() != 1 {
		t.Fatalf("duplicate add changed size to %d", r.Size())
	}
}
