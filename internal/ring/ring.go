// Package ring implements a deterministic consistent-hash ring for
// placing jobs onto engine shards.
//
// Each member is projected onto the ring at a fixed number of virtual
// points derived from a seeded FNV-64a hash, so placement is a pure
// function of (seed, member set, key): the same ring built twice — or
// rebuilt after a daemon restart — routes every key identically.
// Virtual points smooth the load split and bound how many keys move
// when a member is added or removed to roughly 1/N of the keyspace,
// which is what keeps idempotency-key dedup meaningful across small
// topology changes.
package ring

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-point count per member. 64 points
// keeps the max/min load ratio within a few percent for small fleets
// while the ring stays tiny (N*64 entries).
const DefaultReplicas = 64

type point struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring. It is not safe for concurrent
// mutation; build it once at daemon boot and share it read-only.
type Ring struct {
	seed     uint64
	replicas int
	points   []point
	members  map[string]bool
}

// New returns an empty ring. All hashes are salted with seed, so two
// rings with equal seeds and equal member sets are identical and two
// rings with different seeds place keys independently.
func New(seed uint64, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{seed: seed, replicas: replicas, members: map[string]bool{}}
}

// hash64 is seeded FNV-64a over s, run through a 64-bit finalizer:
// cheap, allocation-free, and stable across processes (no
// map-iteration or ASLR dependence). The finalizer matters — raw
// FNV-1a mixes a trailing byte into only the low ~40 bits, so
// similar keys ("tenant-0001", "tenant-0002", ...) share their high
// bits and pile onto one arc of the ring; the extra mixing rounds
// spread every input bit across the full word.
func (r *Ring) hash64(s string) uint64 {
	h := fnv.New64a()
	var salt [8]byte
	binary.LittleEndian.PutUint64(salt[:], r.seed)
	h.Write(salt[:])   //lint:ignore errcheck hash.Hash.Write never fails
	h.Write([]byte(s)) //lint:ignore errcheck hash.Hash.Write never fails
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member at its virtual points. Adding a present member
// is a no-op, so rebuilding a ring from an unordered member list is
// safe and order-independent.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{
			hash:   r.hash64(fmt.Sprintf("%s#%d", member, i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on member name so placement stays deterministic
		// even in the astronomically unlikely event of a hash collision.
		return r.points[a].member < r.points[b].member
	})
}

// Remove deletes a member and all its virtual points. Keys that
// hashed to the removed member redistribute to their next clockwise
// points; everyone else's placement is untouched.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the member owning key: the first virtual point at or
// clockwise of the key's hash. It returns "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := r.hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].member
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.members) }
