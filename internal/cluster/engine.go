// Package cluster simulates the server cluster that the paper's
// evaluation ran on: a set of servers, each with a configurable number
// of map and reduce slots, advanced by a discrete-event virtual clock.
//
// Tasks execute *real Go code* when they are started; the measured (or
// analytically modeled) duration places their completion event on the
// virtual timeline. All scheduling decisions — waves of map tasks,
// killing running tasks when an error target is met, straggler
// speculation, powering idle servers down to ACPI S3 — happen in
// virtual-time order, so the simulated cluster reproduces the temporal
// structure of a real Hadoop deployment while running on one machine.
//
// Energy is integrated continuously over the virtual timeline from a
// linear power model (idle..peak watts proportional to slot
// utilization, with a deep-sleep S3 state), matching the paper's
// measured 60 W idle / 150 W peak servers.
package cluster

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"approxhadoop/internal/stats"
)

// SlotKind distinguishes map slots from reduce slots.
type SlotKind int

// Slot kinds.
const (
	MapSlot SlotKind = iota
	ReduceSlot
)

func (k SlotKind) String() string {
	if k == MapSlot {
		return "map"
	}
	return "reduce"
}

// Config describes the simulated cluster.
type Config struct {
	Servers              int     // number of servers
	MapSlotsPerServer    int     // concurrent map tasks per server
	ReduceSlotsPerServer int     // concurrent reduce tasks per server
	IdleWatts            float64 // power draw of an idle (awake) server
	PeakWatts            float64 // power draw with all slots busy
	S3Watts              float64 // power draw in the S3 sleep state
	StragglerProb        float64 // probability a task runs slow
	StragglerFactor      float64 // slowdown multiplier for stragglers
	Seed                 int64   // randomness seed for perturbations
	// SpeedFactors optionally assigns per-server speed multipliers
	// (task durations are divided by the factor); missing entries
	// default to 1. Heterogeneous clusters are a systematic source of
	// stragglers (Zaharia et al., OSDI'08), which the JobTracker's
	// speculative execution mitigates.
	SpeedFactors map[int]float64
}

// DefaultConfig mirrors the paper's Xeon cluster: 10 servers, 8 map
// slots and 1 reduce slot each, 60 W idle and 150 W peak.
func DefaultConfig() Config {
	return Config{
		Servers:              10,
		MapSlotsPerServer:    8,
		ReduceSlotsPerServer: 1,
		IdleWatts:            60,
		PeakWatts:            150,
		S3Watts:              3,
		StragglerProb:        0,
		StragglerFactor:      3,
		Seed:                 1,
	}
}

// AtomConfig mirrors the paper's 60-node Atom cluster used for the
// large scaling experiments (4 map slots, 1 reduce slot per server).
func AtomConfig() Config {
	c := DefaultConfig()
	c.Servers = 60
	c.MapSlotsPerServer = 4
	c.IdleWatts = 25
	c.PeakWatts = 45
	return c
}

// Server is one simulated machine.
type Server struct {
	ID         string
	mapBusy    int
	reduceBusy int
	mapSlots   int
	redSlots   int
	asleep     bool
	dead       bool
	speed      float64 // duration divisor; 1 = nominal
}

// Speed returns the server's speed factor (1 = nominal).
func (s *Server) Speed() float64 { return s.speed }

// Dead reports whether the server has fail-stopped.
func (s *Server) Dead() bool { return s.dead }

// FreeSlots returns the number of free slots of the given kind; a
// sleeping server has none until woken.
func (s *Server) FreeSlots(k SlotKind) int {
	if s.asleep || s.dead {
		return 0
	}
	if k == MapSlot {
		return s.mapSlots - s.mapBusy
	}
	return s.redSlots - s.reduceBusy
}

// Busy returns the number of busy slots of the given kind.
func (s *Server) Busy(k SlotKind) int {
	if k == MapSlot {
		return s.mapBusy
	}
	return s.reduceBusy
}

// Asleep reports whether the server is in the S3 state.
func (s *Server) Asleep() bool { return s.asleep }

// power returns the instantaneous power draw under cfg.
func (s *Server) power(cfg Config) float64 {
	if s.dead {
		return 0
	}
	if s.asleep {
		return cfg.S3Watts
	}
	total := s.mapSlots + s.redSlots
	if total == 0 {
		return cfg.IdleWatts
	}
	util := float64(s.mapBusy+s.reduceBusy) / float64(total)
	return cfg.IdleWatts + (cfg.PeakWatts-cfg.IdleWatts)*util
}

// event is a scheduled callback on the virtual timeline.
type event struct {
	at  float64
	seq int64 // tie-break so equal-time events run FIFO
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	//lint:ignore nofloateq event timestamps must order exactly: equal times fall through to the seq tie-break, which is what makes the schedule deterministic
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// RunningTask is a handle for a task occupying a slot.
type RunningTask struct {
	Server   *Server
	Kind     SlotKind
	Start    float64
	Finish   float64
	seq      int64 // start order; the deterministic tie-break for fault victims
	done     bool
	killed   bool
	failed   bool // killed by a fault (task fault or server death), not deliberately
	onFinish func(killed bool)
}

// Killed reports whether the task was killed before completing.
func (t *RunningTask) Killed() bool { return t.killed }

// Failed reports whether the task was terminated by a fault — a
// transient task fault or its server's death — rather than a
// deliberate Kill. Schedulers use this to choose re-execution over
// drop accounting.
func (t *RunningTask) Failed() bool { return t.failed }

// Done reports whether the task has finished or been killed.
func (t *RunningTask) Done() bool { return t.done }

// EnergyBreakdown splits integrated energy by server state.
type EnergyBreakdown struct {
	BusyJ  float64 // servers with at least one busy slot
	IdleJ  float64 // awake servers with no busy slots
	SleepJ float64 // servers in S3
}

// TotalJ returns the total integrated energy in joules.
func (b EnergyBreakdown) TotalJ() float64 { return b.BusyJ + b.IdleJ + b.SleepJ }

// Engine is the discrete-event cluster simulator.
type Engine struct {
	cfg     Config
	servers []*Server
	queue   eventQueue
	seq     int64
	now     float64
	energyJ float64 // integrated energy in joules (watt-seconds)
	breakd  EnergyBreakdown
	lastAcc float64 // time up to which energy is integrated
	rng     *rand.Rand
	running map[*RunningTask]bool
	taskSeq int64
}

// New builds an engine from cfg. Invalid slot counts are clamped to 1.
func New(cfg Config) *Engine {
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.MapSlotsPerServer < 1 {
		cfg.MapSlotsPerServer = 1
	}
	if cfg.ReduceSlotsPerServer < 0 {
		cfg.ReduceSlotsPerServer = 0
	}
	e := &Engine{
		cfg:     cfg,
		rng:     stats.NewRand(cfg.Seed),
		running: make(map[*RunningTask]bool),
	}
	for i := 0; i < cfg.Servers; i++ {
		speed := 1.0
		if f, ok := cfg.SpeedFactors[i]; ok && f > 0 {
			speed = f
		}
		e.servers = append(e.servers, &Server{
			ID:       fmt.Sprintf("server-%02d", i),
			mapSlots: cfg.MapSlotsPerServer,
			redSlots: cfg.ReduceSlotsPerServer,
			speed:    speed,
		})
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Servers returns the simulated servers.
func (e *Engine) Servers() []*Server { return e.servers }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EnergyJoules returns the energy integrated so far, including the
// interval up to the current virtual time.
func (e *Engine) EnergyJoules() float64 {
	e.accrue()
	return e.energyJ
}

// EnergyWh returns integrated energy in watt-hours.
func (e *Engine) EnergyWh() float64 { return e.EnergyJoules() / 3600 }

// accrue integrates power draw from lastAcc to now, split by state.
func (e *Engine) accrue() {
	dt := e.now - e.lastAcc
	if dt <= 0 {
		return
	}
	for _, s := range e.servers {
		p := s.power(e.cfg) * dt
		e.energyJ += p
		switch {
		case s.dead:
			// no draw, no attribution
		case s.asleep:
			e.breakd.SleepJ += p
		case s.mapBusy+s.reduceBusy > 0:
			e.breakd.BusyJ += p
		default:
			e.breakd.IdleJ += p
		}
	}
	e.lastAcc = e.now
}

// EnergyBreakdown returns energy split by server state up to now.
func (e *Engine) EnergyBreakdown() EnergyBreakdown {
	e.accrue()
	return e.breakd
}

// At schedules fn to run at virtual time t (clamped to now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.at > e.now {
			e.accrue()
			e.now = ev.at
		}
		ev.fn()
	}
	e.accrue()
}

// Step processes a single event; it returns false when no events
// remain. Useful for tests that need fine-grained control.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.at > e.now {
		e.accrue()
		e.now = ev.at
	}
	ev.fn()
	return true
}

// PerturbDuration applies straggler noise: with probability
// StragglerProb the duration is multiplied by StragglerFactor.
func (e *Engine) PerturbDuration(d float64) float64 {
	if e.cfg.StragglerProb > 0 && e.rng.Float64() < e.cfg.StragglerProb {
		return d * e.cfg.StragglerFactor
	}
	return d
}

// StartTask occupies one slot of the given kind on srv for duration
// seconds of virtual time. onFinish is invoked (in virtual-time order)
// when the task completes or is killed. StartTask panics if the server
// has no free slot — the scheduler must check FreeSlots first.
func (e *Engine) StartTask(srv *Server, kind SlotKind, duration float64, onFinish func(killed bool)) *RunningTask {
	if srv.FreeSlots(kind) <= 0 {
		//lint:ignore nopanic documented invariant: the API contract requires callers to check FreeSlots first
		panic(fmt.Sprintf("cluster: no free %v slot on %s", kind, srv.ID))
	}
	if srv.speed > 0 {
		duration /= srv.speed // x/1 == x exactly, so speed 1 is a no-op
	}
	e.accrue()
	if kind == MapSlot {
		srv.mapBusy++
	} else {
		srv.reduceBusy++
	}
	e.taskSeq++
	t := &RunningTask{
		Server:   srv,
		Kind:     kind,
		Start:    e.now,
		Finish:   e.now + duration,
		seq:      e.taskSeq,
		onFinish: onFinish,
	}
	e.running[t] = true
	e.At(t.Finish, func() { e.finish(t, false) })
	return t
}

// StartOpenTask occupies a slot for a task whose duration is not known
// up front (e.g. an incremental reduce task that finishes only when the
// job does). No completion event is scheduled; the owner must call
// FinishTask (or Kill). It panics if the server has no free slot.
func (e *Engine) StartOpenTask(srv *Server, kind SlotKind, onFinish func(killed bool)) *RunningTask {
	if srv.FreeSlots(kind) <= 0 {
		//lint:ignore nopanic documented invariant: the API contract requires callers to check FreeSlots first
		panic(fmt.Sprintf("cluster: no free %v slot on %s", kind, srv.ID))
	}
	e.accrue()
	if kind == MapSlot {
		srv.mapBusy++
	} else {
		srv.reduceBusy++
	}
	e.taskSeq++
	t := &RunningTask{
		Server:   srv,
		Kind:     kind,
		Start:    e.now,
		Finish:   -1, // unknown
		seq:      e.taskSeq,
		onFinish: onFinish,
	}
	e.running[t] = true
	return t
}

// FinishAfter converts an open-ended task into a fixed-duration one:
// its completion is scheduled d virtual seconds from now, adjusted by
// the server's speed factor exactly like StartTask. The intended use
// is two-phase task starts — occupy the slot with StartOpenTask while
// the task's compute (which determines its duration) is still being
// produced, then fix the completion once the duration is known at the
// same virtual instant. Calling it on a finished or killed task is a
// no-op.
func (e *Engine) FinishAfter(t *RunningTask, d float64) {
	if t == nil || t.done {
		return
	}
	if t.Server.speed > 0 {
		d /= t.Server.speed // x/1 == x exactly, so speed 1 is a no-op
	}
	t.Finish = e.now + d
	e.At(t.Finish, func() { e.finish(t, false) })
}

// FinishTask completes an open-ended task at the current virtual time.
func (e *Engine) FinishTask(t *RunningTask) {
	if t == nil || t.done {
		return
	}
	t.Finish = e.now
	e.finish(t, false)
}

// Kill terminates a running task immediately; its slot is released at
// the current virtual time and onFinish fires with killed=true. Killing
// an already-finished task is a no-op.
func (e *Engine) Kill(t *RunningTask) {
	if t == nil || t.done {
		return
	}
	e.finish(t, true)
}

func (e *Engine) finish(t *RunningTask, killed bool) {
	if t.done {
		return
	}
	e.accrue()
	t.done = true
	t.killed = killed
	if killed {
		t.Finish = e.now
	}
	if t.Kind == MapSlot {
		t.Server.mapBusy--
	} else {
		t.Server.reduceBusy--
	}
	delete(e.running, t)
	if t.onFinish != nil {
		t.onFinish(killed)
	}
}

// RunningTasks returns the number of currently running tasks.
func (e *Engine) RunningTasks() int { return len(e.running) }

// tasksOn returns the running tasks hosted by s in start order (the
// deterministic order required for fault callbacks — e.running is a
// map, and map iteration order must never leak into the schedule).
func (e *Engine) tasksOn(s *Server, kind SlotKind, any bool) []*RunningTask {
	var ts []*RunningTask
	for t := range e.running {
		if t.Server == s && (any || t.Kind == kind) {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].seq < ts[j].seq })
	return ts
}

// FailServer fail-stops a server at the current virtual time: every
// task running on it is killed in start order (their onFinish
// callbacks fire with killed=true and the server's Dead flag set, so
// schedulers can distinguish failure from a deliberate kill and
// re-execute), its slots disappear, and it draws no power.
func (e *Engine) FailServer(s *Server) {
	if s.dead {
		return
	}
	e.accrue()
	s.dead = true
	for _, t := range e.tasksOn(s, MapSlot, true) {
		t.failed = true
		e.finish(t, true)
	}
}

// RecoverServer rejoins a failed server at the current virtual time:
// its slots become free and it draws idle power again. Tasks lost when
// it died stay lost (they were already killed); re-execution is the
// scheduler's business. Recovering a live server is a no-op.
func (e *Engine) RecoverServer(s *Server) {
	if !s.dead {
		return
	}
	e.accrue()
	s.dead = false
	s.asleep = false
}

// SetSpeed changes a server's speed factor (duration divisor) for
// tasks started from now on; tasks already running keep their
// scheduled completion. Non-positive factors are ignored.
func (e *Engine) SetSpeed(s *Server, factor float64) {
	if factor > 0 {
		s.speed = factor
	}
}

// FailRandomMapTask injects a transient task fault: one running map
// attempt on s (chosen by the engine's seeded RNG) is terminated with
// Failed set, while the server itself survives. It reports whether a
// victim existed. Reduce attempts are never targeted — the simulator's
// incremental reduces cannot be re-executed (documented limitation).
func (e *Engine) FailRandomMapTask(s *Server) bool {
	ts := e.tasksOn(s, MapSlot, false)
	if len(ts) == 0 {
		return false
	}
	t := ts[e.rng.Intn(len(ts))]
	t.failed = true
	e.finish(t, true)
	return true
}

// ScheduleFailure arranges a fail-stop of server s at virtual time at.
func (e *Engine) ScheduleFailure(s *Server, at float64) {
	e.At(at, func() { e.FailServer(s) })
}

// ScheduleRecovery arranges a rejoin of server s at virtual time at.
func (e *Engine) ScheduleRecovery(s *Server, at float64) {
	e.At(at, func() { e.RecoverServer(s) })
}

// Sleep transitions an idle server to the S3 state. It fails if the
// server still has busy slots.
func (e *Engine) Sleep(s *Server) error {
	if s.mapBusy > 0 || s.reduceBusy > 0 {
		return fmt.Errorf("cluster: cannot sleep %s with busy slots", s.ID)
	}
	e.accrue()
	s.asleep = true
	return nil
}

// Wake returns a sleeping server to the awake/idle state.
func (e *Engine) Wake(s *Server) {
	e.accrue()
	s.asleep = false
}

// TotalSlots returns the cluster-wide slot count of the given kind.
func (e *Engine) TotalSlots(k SlotKind) int {
	n := 0
	for _, s := range e.servers {
		if k == MapSlot {
			n += s.mapSlots
		} else {
			n += s.redSlots
		}
	}
	return n
}
