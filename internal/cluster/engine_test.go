package cluster

import (
	"math"
	"testing"

	"approxhadoop/internal/stats"
)

func tinyConfig() Config {
	c := DefaultConfig()
	c.Servers = 2
	c.MapSlotsPerServer = 2
	c.ReduceSlotsPerServer = 1
	return c
}

func TestEventOrdering(t *testing.T) {
	e := New(tinyConfig())
	var order []int
	e.At(5, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 3) }) // same time: FIFO
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if !stats.AlmostEqual(e.Now(), 5, 1e-12) {
		t.Errorf("Now = %v, want 5", e.Now())
	}
}

func TestAfterAndClamping(t *testing.T) {
	e := New(tinyConfig())
	fired := 0.0
	e.At(10, func() {
		e.At(3, func() { fired = e.Now() }) // in the past: clamps to now
	})
	e.Run()
	if !stats.AlmostEqual(fired, 10, 1e-12) {
		t.Errorf("past event should clamp to current time, fired at %v", fired)
	}

	e2 := New(tinyConfig())
	var at float64
	e2.At(2, func() { e2.After(3, func() { at = e2.Now() }) })
	e2.Run()
	if !stats.AlmostEqual(at, 5, 1e-12) {
		t.Errorf("After should be relative: %v", at)
	}
}

func TestTaskLifecycle(t *testing.T) {
	e := New(tinyConfig())
	srv := e.Servers()[0]
	finished := false
	task := e.StartTask(srv, MapSlot, 10, func(killed bool) {
		if killed {
			t.Error("task should not be killed")
		}
		finished = true
	})
	if srv.FreeSlots(MapSlot) != 1 {
		t.Errorf("slot not occupied")
	}
	if e.RunningTasks() != 1 {
		t.Error("running count wrong")
	}
	e.Run()
	if !finished || !task.Done() || task.Killed() {
		t.Error("task should complete normally")
	}
	if srv.FreeSlots(MapSlot) != 2 {
		t.Error("slot not released")
	}
	if !stats.AlmostEqual(task.Finish, 10, 1e-12) {
		t.Errorf("finish time %v", task.Finish)
	}
}

func TestTaskKill(t *testing.T) {
	e := New(tinyConfig())
	srv := e.Servers()[0]
	var killedAt float64 = -1
	task := e.StartTask(srv, MapSlot, 100, func(killed bool) {
		if killed {
			killedAt = e.Now()
		}
	})
	e.At(30, func() { e.Kill(task) })
	e.Run()
	if !stats.AlmostEqual(killedAt, 30, 1e-12) {
		t.Errorf("killed at %v, want 30", killedAt)
	}
	if !stats.AlmostEqual(task.Finish, 30, 1e-12) {
		t.Errorf("finish adjusted to %v", task.Finish)
	}
	// Double kill is a no-op.
	e.Kill(task)
	if srv.FreeSlots(MapSlot) != 2 {
		t.Error("slot leak after kill")
	}
}

func TestStartTaskPanicsWithoutSlot(t *testing.T) {
	e := New(tinyConfig())
	srv := e.Servers()[0]
	e.StartTask(srv, ReduceSlot, 10, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic when no slot free")
		}
	}()
	e.StartTask(srv, ReduceSlot, 10, nil)
}

func TestEnergyIntegration(t *testing.T) {
	cfg := tinyConfig() // 2 servers, idle 60, peak 150
	e := New(cfg)
	// Nothing running for 100 s: 2 * 60 W * 100 s = 12000 J.
	e.At(100, func() {})
	e.Run()
	if got := e.EnergyJoules(); math.Abs(got-12000) > 1e-6 {
		t.Errorf("idle energy %v, want 12000", got)
	}
}

func TestEnergyWithLoadAndSleep(t *testing.T) {
	cfg := tinyConfig() // 2 map + 1 reduce slots per server
	e := New(cfg)
	s0, s1 := e.Servers()[0], e.Servers()[1]
	// Fully load server 0's three slots for 50 s -> peak 150 W.
	e.StartTask(s0, MapSlot, 50, nil)
	e.StartTask(s0, MapSlot, 50, nil)
	e.StartTask(s0, ReduceSlot, 50, nil)
	// Sleep server 1 the whole time -> 3 W.
	if err := e.Sleep(s1); err != nil {
		t.Fatal(err)
	}
	e.Run()
	want := 50 * (150.0 + 3.0)
	if got := e.EnergyJoules(); math.Abs(got-want) > 1e-6 {
		t.Errorf("energy %v, want %v", got, want)
	}
	if !s1.Asleep() || s1.FreeSlots(MapSlot) != 0 {
		t.Error("sleeping server should expose no slots")
	}
	e.Wake(s1)
	if s1.Asleep() || s1.FreeSlots(MapSlot) != 2 {
		t.Error("wake should restore slots")
	}
}

func TestSleepBusyServerFails(t *testing.T) {
	e := New(tinyConfig())
	s := e.Servers()[0]
	e.StartTask(s, MapSlot, 10, nil)
	if err := e.Sleep(s); err == nil {
		t.Error("sleeping a busy server should fail")
	}
}

func TestPartialUtilizationPower(t *testing.T) {
	cfg := tinyConfig()
	e := New(cfg)
	s := e.Servers()[0]
	// 1 of 3 slots busy: 60 + 90*(1/3) = 90 W; other server idle 60 W.
	e.StartTask(s, MapSlot, 30, nil)
	e.Run()
	want := 30 * (90.0 + 60.0)
	if got := e.EnergyJoules(); math.Abs(got-want) > 1e-6 {
		t.Errorf("energy %v, want %v", got, want)
	}
}

func TestStep(t *testing.T) {
	e := New(tinyConfig())
	count := 0
	e.At(1, func() { count++ })
	e.At(2, func() { count++ })
	if !e.Step() || count != 1 {
		t.Error("first step")
	}
	if !e.Step() || count != 2 {
		t.Error("second step")
	}
	if e.Step() {
		t.Error("empty queue should return false")
	}
}

func TestPerturbDuration(t *testing.T) {
	cfg := tinyConfig()
	cfg.StragglerProb = 1
	cfg.StragglerFactor = 3
	e := New(cfg)
	if got := e.PerturbDuration(10); !stats.AlmostEqual(got, 30, 1e-12) {
		t.Errorf("always-straggle should triple: %v", got)
	}
	cfg.StragglerProb = 0
	e2 := New(cfg)
	if got := e2.PerturbDuration(10); !stats.AlmostEqual(got, 10, 1e-12) {
		t.Errorf("no stragglers: %v", got)
	}
}

func TestConfigClamps(t *testing.T) {
	e := New(Config{Servers: 0, MapSlotsPerServer: 0, ReduceSlotsPerServer: -1})
	if len(e.Servers()) != 1 {
		t.Error("servers clamp")
	}
	if e.TotalSlots(MapSlot) != 1 || e.TotalSlots(ReduceSlot) != 0 {
		t.Errorf("slots: %d map, %d reduce", e.TotalSlots(MapSlot), e.TotalSlots(ReduceSlot))
	}
}

func TestSlotKindString(t *testing.T) {
	if MapSlot.String() != "map" || ReduceSlot.String() != "reduce" {
		t.Error("SlotKind strings")
	}
}

func TestDefaultAndAtomConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.Servers != 10 || d.MapSlotsPerServer != 8 {
		t.Errorf("DefaultConfig: %+v", d)
	}
	a := AtomConfig()
	if a.Servers != 60 || a.MapSlotsPerServer != 4 {
		t.Errorf("AtomConfig: %+v", a)
	}
}

func TestMeasuredCost(t *testing.T) {
	m := TaskMeasure{Items: 100, Processed: 50, SetupSecs: 1, ReadSecs: 2, ProcSecs: 3}
	c := MeasuredCost{}
	if got := c.MapDuration(m); !stats.AlmostEqual(got, 6, 1e-12) {
		t.Errorf("MapDuration = %v", got)
	}
	c2 := MeasuredCost{Scale: 10}
	if got := c2.MapDuration(m); !stats.AlmostEqual(got, 60, 1e-12) {
		t.Errorf("scaled MapDuration = %v", got)
	}
	if got := c.ReduceDuration(0, 4); !stats.AlmostEqual(got, 4, 1e-12) {
		t.Errorf("ReduceDuration = %v", got)
	}
	t0, tr, tp := c.Params([]TaskMeasure{m, m})
	if !stats.AlmostEqual(t0, 1, 1e-12) || !stats.AlmostEqual(tr, 0.02, 1e-12) || !stats.AlmostEqual(tp, 0.06, 1e-12) {
		t.Errorf("Params = %v %v %v", t0, tr, tp)
	}
	if a, b, cc := c.Params(nil); a != 0 || b != 0 || cc != 0 {
		t.Error("empty Params should be zeros")
	}
}

func TestAnalyticCost(t *testing.T) {
	c := AnalyticCost{T0: 2, Tr: 0.01, Tp: 0.1, RedPerK: 1}
	m := TaskMeasure{Items: 100, Processed: 10}
	if got := c.MapDuration(m); math.Abs(got-(2+1+1)) > 1e-12 {
		t.Errorf("MapDuration = %v, want 4", got)
	}
	if got := c.ReduceDuration(2000, 99); !stats.AlmostEqual(got, 2, 1e-12) {
		t.Errorf("ReduceDuration = %v, want 2", got)
	}
	t0, tr, tp := c.Params([]TaskMeasure{m})
	if !stats.AlmostEqual(t0, 2, 1e-12) || !stats.AlmostEqual(tr, 0.01, 1e-12) || !stats.AlmostEqual(tp, 0.1, 1e-12) {
		t.Errorf("Params = %v %v %v", t0, tr, tp)
	}
	cb := AnalyticCost{Tr: 0.01, TrPerByte: 0.001}
	_, tr2, _ := cb.Params([]TaskMeasure{{Items: 10, Bytes: 1000}})
	if math.Abs(tr2-(0.01+0.1)) > 1e-12 {
		t.Errorf("byte-folded tr = %v", tr2)
	}
	if DefaultAnalyticCost().T0 <= 0 {
		t.Error("default analytic cost should have positive setup")
	}
}
