package cluster

import (
	"math"
	"testing"
)

func TestEnergyBreakdown(t *testing.T) {
	cfg := tinyConfig() // 2 servers x (2 map + 1 reduce slots)
	e := New(cfg)
	s0, s1 := e.Servers()[0], e.Servers()[1]
	// Server 0 busy 50s; server 1 asleep 50s.
	e.StartTask(s0, MapSlot, 50, nil)
	if err := e.Sleep(s1); err != nil {
		t.Fatal(err)
	}
	e.Run()
	b := e.EnergyBreakdown()
	// s0: 1 of 3 slots busy -> 60 + 90/3 = 90 W * 50 s.
	if math.Abs(b.BusyJ-90*50) > 1e-9 {
		t.Errorf("BusyJ = %v, want %v", b.BusyJ, 90*50.0)
	}
	if math.Abs(b.SleepJ-3*50) > 1e-9 {
		t.Errorf("SleepJ = %v, want %v", b.SleepJ, 3*50.0)
	}
	if b.IdleJ != 0 {
		t.Errorf("IdleJ = %v, want 0", b.IdleJ)
	}
	if math.Abs(b.TotalJ()-e.EnergyJoules()) > 1e-9 {
		t.Errorf("breakdown %v != total %v", b.TotalJ(), e.EnergyJoules())
	}
}

func TestEnergyBreakdownIdle(t *testing.T) {
	e := New(tinyConfig())
	e.At(10, func() {})
	e.Run()
	b := e.EnergyBreakdown()
	if b.BusyJ != 0 || b.SleepJ != 0 {
		t.Errorf("idle-only run: %+v", b)
	}
	if math.Abs(b.IdleJ-2*60*10) > 1e-9 {
		t.Errorf("IdleJ = %v", b.IdleJ)
	}
}
