package cluster

// TaskMeasure carries what a map task actually did, so a cost model can
// attribute a virtual duration: total record count of its block (M),
// records actually processed after sampling (m), raw bytes scanned, and
// the compute seconds the in-process execution was charged by the
// job's meter (deterministic modeled seconds by default, host
// wall-clock under a calibration meter), split into the time spent
// reading/parsing the block and the time spent inside the user's map
// function.
type TaskMeasure struct {
	Items     int64   // M: records in the block
	Processed int64   // m: records passed to map()
	Bytes     int64   // raw bytes scanned
	ReadSecs  float64 // metered seconds spent reading/parsing
	ProcSecs  float64 // metered seconds spent in map()
	SetupSecs float64 // metered fixed setup seconds
}

// RealSecs returns the total metered compute time.
func (t TaskMeasure) RealSecs() float64 { return t.SetupSecs + t.ReadSecs + t.ProcSecs }

// CostModel converts a task's measurements into virtual seconds on the
// simulated cluster, and exposes the per-item time parameters the
// target-error controller needs to model t_map(M, m) = t0 + M*tr + m*tp
// (the paper's Equation 5).
type CostModel interface {
	// MapDuration returns the virtual duration of a map task.
	MapDuration(m TaskMeasure) float64
	// ReduceDuration returns the virtual seconds to reduce-process
	// `pairs` intermediate pairs, given measured seconds.
	ReduceDuration(pairs int64, measuredSecs float64) float64
	// Params estimates (t0, tr, tp) from completed task measurements;
	// the controller plugs these into the optimization of Section 4.4.
	Params(completed []TaskMeasure) (t0, tr, tp float64)
}

// MeasuredCost attributes each task its metered execution time
// multiplied by Scale. With Scale == 1 virtual time equals the charged
// compute time of a single-threaded execution, spread across the
// simulated cluster's slots.
type MeasuredCost struct {
	Scale float64 // defaults to 1 when zero
}

func (c MeasuredCost) scale() float64 {
	if c.Scale == 0 {
		return 1
	}
	return c.Scale
}

// MapDuration implements CostModel.
func (c MeasuredCost) MapDuration(m TaskMeasure) float64 {
	return m.RealSecs() * c.scale()
}

// ReduceDuration implements CostModel.
func (c MeasuredCost) ReduceDuration(pairs int64, measuredSecs float64) float64 {
	return measuredSecs * c.scale()
}

// Params implements CostModel by averaging per-item measured times.
func (c MeasuredCost) Params(completed []TaskMeasure) (t0, tr, tp float64) {
	if len(completed) == 0 {
		return 0, 0, 0
	}
	var sumSetup, sumRead, sumProc float64
	var items, proc int64
	for _, t := range completed {
		sumSetup += t.SetupSecs
		sumRead += t.ReadSecs
		sumProc += t.ProcSecs
		items += t.Items
		proc += t.Processed
	}
	t0 = sumSetup / float64(len(completed)) * c.scale()
	if items > 0 {
		tr = sumRead / float64(items) * c.scale()
	}
	if proc > 0 {
		tp = sumProc / float64(proc) * c.scale()
	}
	return t0, tr, tp
}

// AnalyticCost models task duration with fixed constants, following
// Equation 5: t_map(M, m) = T0 + M*Tr + m*Tp. It decouples simulated
// runtimes from the host machine, producing paper-scale numbers: the
// defaults are calibrated so a 161-map WikiLength-style job lands near
// the paper's ~180 s precise runtime on the default cluster.
type AnalyticCost struct {
	T0        float64 // seconds of fixed per-task setup
	Tr        float64 // seconds to read one record
	Tp        float64 // seconds to process one record
	TrPerByte float64 // optional per-byte read cost added to Tr-based time
	RedPerK   float64 // reduce seconds per 1000 pairs
}

// DefaultAnalyticCost returns constants producing paper-scale runtimes
// for the synthetic workloads in this repository.
func DefaultAnalyticCost() AnalyticCost {
	return AnalyticCost{T0: 1.5, Tr: 4e-5, Tp: 4e-4, RedPerK: 0.02}
}

// MapDuration implements CostModel.
func (c AnalyticCost) MapDuration(m TaskMeasure) float64 {
	return c.T0 + float64(m.Items)*c.Tr + float64(m.Processed)*c.Tp + float64(m.Bytes)*c.TrPerByte
}

// ReduceDuration implements CostModel.
func (c AnalyticCost) ReduceDuration(pairs int64, measuredSecs float64) float64 {
	return float64(pairs) / 1000 * c.RedPerK
}

// Params implements CostModel.
func (c AnalyticCost) Params(completed []TaskMeasure) (t0, tr, tp float64) {
	// The analytic model's read cost may include a per-byte term;
	// fold it into tr using the observed bytes-per-item.
	tr = c.Tr
	var items, bytes int64
	for _, t := range completed {
		items += t.Items
		bytes += t.Bytes
	}
	if items > 0 {
		tr += c.TrPerByte * float64(bytes) / float64(items)
	}
	return c.T0, tr, c.Tp
}
