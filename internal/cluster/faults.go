package cluster

import (
	"sort"

	"approxhadoop/internal/stats"
)

// FaultKind classifies injectable faults.
type FaultKind int

// Fault kinds.
const (
	// FaultTask is a transient task fault: one running map attempt on
	// the target server dies; the server survives. A no-op when the
	// server has no running map attempt at the fault time.
	FaultTask FaultKind = iota
	// FaultServer fail-stops the target server; with Recover > 0 the
	// server rejoins after that much downtime.
	FaultServer
	// FaultSlow degrades (or restores) the target server's speed
	// factor for tasks started from then on.
	FaultSlow
	// FaultGroup fail-stops every server in Servers at once — a
	// rack-style correlated failure; with Recover > 0 they all rejoin
	// together after the downtime.
	FaultGroup
)

func (k FaultKind) String() string {
	switch k {
	case FaultTask:
		return "task-fault"
	case FaultServer:
		return "server-down"
	case FaultSlow:
		return "server-slow"
	case FaultGroup:
		return "group-down"
	default:
		return "unknown"
	}
}

// Fault is one injected failure on the virtual timeline.
type Fault struct {
	At      float64 // seconds after injection (relative to Inject time)
	Kind    FaultKind
	Server  int     // target server index (FaultTask, FaultServer, FaultSlow)
	Servers []int   // target group (FaultGroup)
	Factor  float64 // new speed factor (FaultSlow)
	Recover float64 // downtime before rejoin; 0 = permanent (FaultServer, FaultGroup)
}

// FaultPlan is a scripted sequence of faults. Plans are driven
// entirely by the virtual clock and (for victim selection within a
// server) the engine's seeded RNG, so a simulation with a fault plan
// is exactly as reproducible as one without.
type FaultPlan struct {
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// Inject schedules every fault in the plan, with fault times taken
// relative to the engine's current virtual time.
func (e *Engine) Inject(p *FaultPlan) {
	if p.Empty() {
		return
	}
	for _, f := range p.Faults {
		f := f
		e.After(f.At, func() { e.applyFault(f) })
	}
}

// applyFault executes one fault at the current virtual time. Server
// indices out of range are ignored.
func (e *Engine) applyFault(f Fault) {
	srv := func(i int) *Server {
		if i < 0 || i >= len(e.servers) {
			return nil
		}
		return e.servers[i]
	}
	switch f.Kind {
	case FaultTask:
		if s := srv(f.Server); s != nil {
			e.FailRandomMapTask(s)
		}
	case FaultSlow:
		if s := srv(f.Server); s != nil {
			e.SetSpeed(s, f.Factor)
		}
	case FaultServer:
		if s := srv(f.Server); s != nil && !s.dead {
			e.FailServer(s)
			if f.Recover > 0 {
				e.After(f.Recover, func() { e.RecoverServer(s) })
			}
		}
	case FaultGroup:
		for _, i := range f.Servers {
			if s := srv(i); s != nil && !s.dead {
				e.FailServer(s)
				if f.Recover > 0 {
					e.After(f.Recover, func() { e.RecoverServer(s) })
				}
			}
		}
	}
}

// RandomFaultPlan builds a seeded plan of n faults spread over
// [0, horizon) across a cluster of `servers` servers: a deterministic
// mix of transient task faults, slowdowns, fail-stops (half of them
// with recovery) and small correlated group failures. Server indices
// listed in protect are exempt from fail-stop faults (they may still
// be slowed or suffer task faults) — pass the reduce-hosting servers
// to keep a job's unreplicated reduce state alive.
func RandomFaultPlan(seed int64, n, servers int, horizon float64, protect ...int) FaultPlan {
	if n <= 0 || servers <= 0 || horizon <= 0 {
		return FaultPlan{}
	}
	prot := make(map[int]bool, len(protect))
	for _, i := range protect {
		prot[i] = true
	}
	rng := stats.NewRand(seed)
	var plan FaultPlan
	for i := 0; i < n; i++ {
		at := rng.Float64() * horizon
		target := rng.Intn(servers)
		kind := rng.Intn(4)
		if (kind == 2 || kind == 3) && prot[target] {
			kind = 0 // protected servers degrade to a transient task fault
		}
		switch kind {
		case 0:
			plan.Faults = append(plan.Faults, Fault{At: at, Kind: FaultTask, Server: target})
		case 1:
			plan.Faults = append(plan.Faults, Fault{
				At: at, Kind: FaultSlow, Server: target,
				Factor: 0.25 + rng.Float64()*0.75,
			})
		case 2:
			rec := 0.0
			if rng.Intn(2) == 0 {
				rec = horizon * (0.1 + 0.4*rng.Float64())
			}
			plan.Faults = append(plan.Faults, Fault{
				At: at, Kind: FaultServer, Server: target, Recover: rec,
			})
		case 3:
			// Correlated "rack" failure: a run of consecutive indices,
			// skipping protected servers, always recovering.
			k := 2 + rng.Intn(2)
			var group []int
			for j := 0; j < k; j++ {
				s := (target + j) % servers
				if !prot[s] {
					group = append(group, s)
				}
			}
			if len(group) == 0 {
				plan.Faults = append(plan.Faults, Fault{At: at, Kind: FaultTask, Server: target})
				continue
			}
			plan.Faults = append(plan.Faults, Fault{
				At: at, Kind: FaultGroup, Servers: group,
				Recover: horizon * (0.1 + 0.3*rng.Float64()),
			})
		}
	}
	sort.SliceStable(plan.Faults, func(i, j int) bool { return plan.Faults[i].At < plan.Faults[j].At })
	return plan
}
