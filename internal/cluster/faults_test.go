package cluster

import (
	"testing"

	"approxhadoop/internal/stats"
)

// TestTransientTaskFault verifies a task fault kills exactly one map
// attempt with Failed set while the server stays alive.
func TestTransientTaskFault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 1
	cfg.MapSlotsPerServer = 2
	eng := New(cfg)
	s := eng.Servers()[0]
	var failedTasks, finished int
	var a, b *RunningTask
	a = eng.StartTask(s, MapSlot, 10, func(killed bool) {
		if killed && a.Failed() {
			failedTasks++
		} else {
			finished++
		}
	})
	b = eng.StartTask(s, MapSlot, 10, func(killed bool) {
		if killed && b.Failed() {
			failedTasks++
		} else {
			finished++
		}
	})
	eng.At(1, func() {
		if !eng.FailRandomMapTask(s) {
			t.Error("expected a victim")
		}
	})
	eng.Run()
	if failedTasks != 1 || finished != 1 {
		t.Errorf("failed=%d finished=%d, want 1/1", failedTasks, finished)
	}
	if s.Dead() {
		t.Error("task fault must not kill the server")
	}
	if eng.FailRandomMapTask(s) {
		t.Error("no running tasks: fault should be a no-op")
	}
}

// TestServerRecovery verifies a failed server rejoins with free slots
// and idle power draw.
func TestServerRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 1
	cfg.MapSlotsPerServer = 2
	eng := New(cfg)
	s := eng.Servers()[0]
	eng.ScheduleFailure(s, 10)
	eng.ScheduleRecovery(s, 30)
	eng.At(50, func() {})
	eng.Run()
	if s.Dead() {
		t.Fatal("server should have recovered")
	}
	if s.FreeSlots(MapSlot) != 2 {
		t.Errorf("recovered server has %d free slots", s.FreeSlots(MapSlot))
	}
	// 0..10 idle, 10..30 dead (no draw), 30..50 idle.
	want := 30 * cfg.IdleWatts
	if got := eng.EnergyJoules(); !stats.AlmostEqual(got, want, 1e-9) {
		t.Errorf("energy %v, want %v", got, want)
	}
	eng.RecoverServer(s) // no-op on a live server
	if s.Dead() {
		t.Error("recover on live server must be a no-op")
	}
}

// TestSetSpeedAffectsFutureTasks verifies a slowdown changes only
// tasks started after it.
func TestSetSpeedAffectsFutureTasks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 1
	cfg.MapSlotsPerServer = 2
	eng := New(cfg)
	s := eng.Servers()[0]
	before := eng.StartTask(s, MapSlot, 10, nil)
	eng.SetSpeed(s, 0.5)
	after := eng.StartTask(s, MapSlot, 10, nil)
	eng.Run()
	if !stats.AlmostEqual(before.Finish, 10, 1e-12) {
		t.Errorf("pre-slowdown task finished at %v, want 10", before.Finish)
	}
	if !stats.AlmostEqual(after.Finish, 20, 1e-12) {
		t.Errorf("slowed task finished at %v, want 20", after.Finish)
	}
	eng.SetSpeed(s, 0) // ignored
	if !stats.AlmostEqual(s.Speed(), 0.5, 0) {
		t.Error("non-positive speed factor must be ignored")
	}
}

// TestFaultPlanInjection runs a scripted plan covering every kind and
// checks the cluster's state at the end.
func TestFaultPlanInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 6
	eng := New(cfg)
	plan := FaultPlan{Faults: []Fault{
		{At: 1, Kind: FaultSlow, Server: 0, Factor: 0.5},
		{At: 2, Kind: FaultServer, Server: 1}, // permanent
		{At: 3, Kind: FaultServer, Server: 2, Recover: 5},
		{At: 4, Kind: FaultGroup, Servers: []int{3, 4}, Recover: 2},
		{At: 5, Kind: FaultTask, Server: 5},    // no-op: nothing running
		{At: 6, Kind: FaultServer, Server: 99}, // out of range: ignored
	}}
	eng.Inject(&plan)
	eng.At(20, func() {})
	eng.Run()
	ss := eng.Servers()
	if !stats.AlmostEqual(ss[0].Speed(), 0.5, 0) {
		t.Error("slowdown not applied")
	}
	if !ss[1].Dead() {
		t.Error("server 1 should stay dead")
	}
	for _, i := range []int{2, 3, 4, 5} {
		if ss[i].Dead() {
			t.Errorf("server %d should be alive at the end", i)
		}
	}
	var empty *FaultPlan
	eng.Inject(empty) // nil plan is a no-op
}

// TestRandomFaultPlanDeterministicAndProtected verifies seeding and
// the protect list.
func TestRandomFaultPlanDeterministicAndProtected(t *testing.T) {
	a := RandomFaultPlan(7, 40, 8, 100, 0, 1)
	b := RandomFaultPlan(7, 40, 8, 100, 0, 1)
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		af, bf := a.Faults[i], b.Faults[i]
		if af.Kind != bf.Kind || af.Server != bf.Server ||
			!stats.AlmostEqual(af.At, bf.At, 0) {
			t.Fatalf("plans diverge at %d: %+v vs %+v", i, af, bf)
		}
	}
	last := 0.0
	for _, f := range a.Faults {
		if f.At < last {
			t.Fatal("plan not sorted by time")
		}
		last = f.At
		if f.Kind == FaultServer && (f.Server == 0 || f.Server == 1) {
			t.Errorf("protected server %d got a fail-stop", f.Server)
		}
		if f.Kind == FaultGroup {
			for _, s := range f.Servers {
				if s == 0 || s == 1 {
					t.Errorf("protected server %d in failed group", s)
				}
			}
		}
	}
	if got := RandomFaultPlan(1, 0, 4, 10); !got.Empty() {
		t.Error("n=0 plan should be empty")
	}
	if (&FaultPlan{}).Empty() != true {
		t.Error("zero plan should be empty")
	}
}

// TestFailServerDeterministicVictimOrder fails a server hosting many
// tasks twice and checks the kill callbacks fire in start order both
// times (map iteration order must not leak into the schedule).
func TestFailServerDeterministicVictimOrder(t *testing.T) {
	run := func() []int {
		cfg := DefaultConfig()
		cfg.Servers = 1
		cfg.MapSlotsPerServer = 16
		eng := New(cfg)
		s := eng.Servers()[0]
		var order []int
		for i := 0; i < 16; i++ {
			i := i
			eng.StartTask(s, MapSlot, 100, func(killed bool) {
				if killed {
					order = append(order, i)
				}
			})
		}
		eng.ScheduleFailure(s, 1)
		eng.Run()
		return order
	}
	a := run()
	if len(a) != 16 {
		t.Fatalf("expected 16 kills, got %d", len(a))
	}
	for i, v := range a {
		if v != i {
			t.Fatalf("kills out of start order: %v", a)
		}
	}
}
