package cluster

import "testing"

func TestHeterogeneousSpeeds(t *testing.T) {
	cfg := tinyConfig()
	cfg.SpeedFactors = map[int]float64{0: 2, 1: 0.5}
	e := New(cfg)
	fast, slow := e.Servers()[0], e.Servers()[1]
	if fast.Speed() != 2 || slow.Speed() != 0.5 {
		t.Fatalf("speeds: %v %v", fast.Speed(), slow.Speed())
	}
	var fastDone, slowDone float64
	e.StartTask(fast, MapSlot, 10, func(bool) { fastDone = e.Now() })
	e.StartTask(slow, MapSlot, 10, func(bool) { slowDone = e.Now() })
	e.Run()
	if fastDone != 5 {
		t.Errorf("2x server should finish a 10s task in 5s, got %v", fastDone)
	}
	if slowDone != 20 {
		t.Errorf("0.5x server should take 20s, got %v", slowDone)
	}
}

func TestHeterogeneousDefaultsToNominal(t *testing.T) {
	e := New(tinyConfig())
	for _, s := range e.Servers() {
		if s.Speed() != 1 {
			t.Errorf("default speed should be 1, got %v", s.Speed())
		}
	}
	cfg := tinyConfig()
	cfg.SpeedFactors = map[int]float64{0: -3} // invalid: ignored
	if New(cfg).Servers()[0].Speed() != 1 {
		t.Error("non-positive factors should default to 1")
	}
}
