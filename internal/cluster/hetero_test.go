package cluster

import (
	"testing"

	"approxhadoop/internal/stats"
)

func TestHeterogeneousSpeeds(t *testing.T) {
	cfg := tinyConfig()
	cfg.SpeedFactors = map[int]float64{0: 2, 1: 0.5}
	e := New(cfg)
	fast, slow := e.Servers()[0], e.Servers()[1]
	if !stats.AlmostEqual(fast.Speed(), 2, 1e-12) || !stats.AlmostEqual(slow.Speed(), 0.5, 1e-12) {
		t.Fatalf("speeds: %v %v", fast.Speed(), slow.Speed())
	}
	var fastDone, slowDone float64
	e.StartTask(fast, MapSlot, 10, func(bool) { fastDone = e.Now() })
	e.StartTask(slow, MapSlot, 10, func(bool) { slowDone = e.Now() })
	e.Run()
	if !stats.AlmostEqual(fastDone, 5, 1e-12) {
		t.Errorf("2x server should finish a 10s task in 5s, got %v", fastDone)
	}
	if !stats.AlmostEqual(slowDone, 20, 1e-12) {
		t.Errorf("0.5x server should take 20s, got %v", slowDone)
	}
}

func TestHeterogeneousDefaultsToNominal(t *testing.T) {
	e := New(tinyConfig())
	for _, s := range e.Servers() {
		if !stats.AlmostEqual(s.Speed(), 1, 1e-12) {
			t.Errorf("default speed should be 1, got %v", s.Speed())
		}
	}
	cfg := tinyConfig()
	cfg.SpeedFactors = map[int]float64{0: -3} // invalid: ignored
	if !stats.AlmostEqual(New(cfg).Servers()[0].Speed(), 1, 1e-12) {
		t.Error("non-positive factors should default to 1")
	}
}
