package apps

import (
	"fmt"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/workload"
)

// WikiLength produces a histogram of Wikipedia article lengths: the
// map emits <sizeBin, 1> per article, the reduce sums per bin
// (Section 5.2). Input is a workload.WikiDump file.
func WikiLength(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseArticle(rec.Value); ok {
				emit.Emit(workload.SizeBin(a.Size), 1)
			}
		})
	}
	return aggregationJob("WikiLength", input, mapper, approx.OpSum, opts)
}

// WikiPageRank counts the number of articles that link to each
// article, the main processing component of PageRank: the map emits
// <target, 1> per link, the reduce sums per target.
func WikiPageRank(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseArticle(rec.Value); ok {
				for _, target := range a.Links {
					emit.Emit(target, 1)
				}
			}
		})
	}
	return aggregationJob("WikiPageRank", input, mapper, approx.OpSum, opts)
}

// ProjectPopularity counts accesses per project from the Wikipedia
// access log (the paper's headline application).
func ProjectPopularity(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseAccess(rec.Value); ok {
				emit.Emit(a.Project, 1)
			}
		})
	}
	return aggregationJob("ProjectPopularity", input, mapper, approx.OpSum, opts)
}

// PagePopularity counts accesses per page from the Wikipedia access
// log — the high-key-cardinality application that memory-swaps when
// run precisely in the paper's cluster, motivating the pilot wave.
func PagePopularity(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseAccess(rec.Value); ok {
				emit.Emit(a.Page, 1)
			}
		})
	}
	return aggregationJob("PagePopularity", input, mapper, approx.OpSum, opts)
}

// PageTraffic sums bytes served per page from the Wikipedia access
// log.
func PageTraffic(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseAccess(rec.Value); ok {
				emit.Emit(a.Page, float64(a.Bytes))
			}
		})
	}
	return aggregationJob("PageTraffic", input, mapper, approx.OpSum, opts)
}

// WikiRequestRate counts accesses per hour of day from the Wikipedia
// access log.
func WikiRequestRate(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseAccess(rec.Value); ok {
				hour := (a.Epoch / 3600) % 24
				emit.Emit(fmt.Sprintf("hour%02d", hour), 1)
			}
		})
	}
	return aggregationJob("RequestRate(wiki)", input, mapper, approx.OpSum, opts)
}
