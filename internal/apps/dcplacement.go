package apps

import (
	"math"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/workload"
)

// Geography models the DC-placement optimization domain of Goiri et
// al. (ICDCS'11), as used in Section 5.2: a two-dimensional grid of
// candidate datacenter locations over a populated area. Each cell has
// a deterministic client population and a land/energy cost, both
// derived from the seed, so every map task optimizes the same
// instance.
type Geography struct {
	Rows, Cols   int
	K            int     // datacenters to place
	MaxLatencyMS float64 // latency constraint for every populated cell
	MSPerCell    float64 // network latency per grid-cell distance
	Seed         int64
}

// DefaultGeography matches the paper's setup in spirit: a US-scale
// grid with a 50 ms maximum latency constraint.
func DefaultGeography() Geography {
	return Geography{Rows: 18, Cols: 30, K: 4, MaxLatencyMS: 50, MSPerCell: 4, Seed: 17}
}

// cellHash gives a deterministic pseudo-random value in [0, 1) per
// (geo, cell, salt).
func (g Geography) cellHash(idx, salt int64) float64 {
	x := uint64(g.Seed)*0x9E3779B97F4A7C15 ^ uint64(idx+1)*0xBF58476D1CE4E5B9 ^ uint64(salt+1)*0x94D049BB133111EB
	x ^= x >> 31
	x *= 0x2545F4914F6CDD1D
	x ^= x >> 29
	return float64(x%1_000_000) / 1_000_000
}

// Population returns the client population of a cell (0 for ~40% of
// cells, heavy-tailed for the rest — metro areas).
func (g Geography) Population(cell int) float64 {
	u := g.cellHash(int64(cell), 1)
	if u < 0.4 {
		return 0
	}
	v := g.cellHash(int64(cell), 2)
	return math.Pow(v, 3) * 1000 // a few large metros, many small towns
}

// SiteCost returns the fixed cost of building a datacenter in a cell
// (land + energy prices).
func (g Geography) SiteCost(cell int) float64 {
	return 50 + 100*g.cellHash(int64(cell), 3)
}

// Cells returns the number of grid cells.
func (g Geography) Cells() int { return g.Rows * g.Cols }

func (g Geography) dist(a, b int) float64 {
	ar, ac := a/g.Cols, a%g.Cols
	br, bc := b/g.Cols, b%g.Cols
	dr, dc := float64(ar-br), float64(ac-bc)
	return math.Sqrt(dr*dr + dc*dc)
}

// PlacementCost evaluates a placement (K cell indices): the sum of
// site costs plus population-weighted network distance, with a large
// penalty per population unit violating the latency constraint. Lower
// is better.
func (g Geography) PlacementCost(placement []int) float64 {
	cost := 0.0
	for _, dc := range placement {
		cost += g.SiteCost(dc)
	}
	for cell := 0; cell < g.Cells(); cell++ {
		pop := g.Population(cell)
		if pop == 0 {
			continue
		}
		nearest := math.Inf(1)
		for _, dc := range placement {
			if d := g.dist(cell, dc); d < nearest {
				nearest = d
			}
		}
		latency := nearest * g.MSPerCell
		cost += pop * latency * 0.01
		if latency > g.MaxLatencyMS {
			cost += pop * 10 // constraint violation penalty
		}
	}
	return cost
}

// Anneal runs one simulated-annealing search from the given seed and
// returns the best cost found and its placement. Each map task runs
// one independent search (the paper's setup).
func (g Geography) Anneal(seed int64, iters int) (float64, []int) {
	if iters <= 0 {
		iters = 2000
	}
	r := stats.NewRand(seed)
	cur := make([]int, g.K)
	for i := range cur {
		cur[i] = r.Intn(g.Cells())
	}
	curCost := g.PlacementCost(cur)
	best := make([]int, g.K)
	copy(best, cur)
	bestCost := curCost
	t0 := curCost * 0.1
	for it := 0; it < iters; it++ {
		temp := t0 * (1 - float64(it)/float64(iters))
		if temp < 1e-6 {
			temp = 1e-6
		}
		i := r.Intn(g.K)
		old := cur[i]
		cur[i] = r.Intn(g.Cells())
		newCost := g.PlacementCost(cur)
		if newCost <= curCost || r.Float64() < math.Exp((curCost-newCost)/temp) {
			curCost = newCost
			if newCost < bestCost {
				bestCost = newCost
				copy(best, cur)
			}
		} else {
			cur[i] = old
		}
	}
	return bestCost, best
}

// DCPlacementConfig couples the geography with per-map search effort.
type DCPlacementConfig struct {
	Geo   Geography
	Iters int // annealing iterations per map task
}

// DCPlacement builds the optimization job: the input holds one search
// seed per map task (workload.SearchSeeds); every map anneals
// independently and emits the minimum cost it found; the single reduce
// uses the GEV machinery to estimate the achievable minimum and its
// confidence interval (Section 3.2, Figure 2).
func DCPlacement(input *dfs.File, cfg DCPlacementConfig, opts Options) *mapreduce.Job {
	if cfg.Geo.Rows == 0 {
		cfg.Geo = DefaultGeography()
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 2000
	}
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if seed, ok := workload.ParseSeed(rec.Value); ok {
				cost, _ := cfg.Geo.Anneal(seed, cfg.Iters)
				emit.Emit("min-cost", cost)
			}
		})
	}
	job := &mapreduce.Job{
		Name:        "DCPlacement",
		Input:       input,
		Format:      mapreduce.TextInputFormat{}, // dropping only: no input sampling
		NewMapper:   mapper,
		NewReduce:   func(int) mapreduce.ReduceLogic { return approx.NewMinReducer() },
		Reduces:     1,
		Controller:  opts.Controller,
		Cost:        opts.Cost,
		Seed:        opts.Seed,
		SleepIdle:   opts.SleepIdle,
		Barrier:     opts.Barrier,
		Speculation: opts.Speculation,
	}
	if opts.Plain {
		job.NewReduce = func(int) mapreduce.ReduceLogic { return mapreduce.MinReduce() }
	}
	return job
}
