// Package apps implements every application from the paper's Table 1
// on top of the ApproxHadoop stack, plus the applications of the
// technical report's user-defined-approximation study (K-Means and
// video encoding):
//
//	Data analysis  (Wikipedia dump):  WikiLength, WikiPageRank
//	Log processing (Wikipedia log):   ProjectPopularity, PagePopularity,
//	                                  RequestRate, PageTraffic
//	Log processing (web-server log):  TotalSize, RequestSize, Clients,
//	                                  ClientBrowser, AttackFrequencies,
//	                                  WebRequestRate
//	Optimization:                     DCPlacement (simulated annealing,
//	                                  GEV error bounds)
//	User-defined approximation:       KMeans, VideoEncoding
//
// Every builder returns a ready-to-run mapreduce.Job; passing a nil
// Controller yields the precise execution (bounds of width zero),
// while Static/TargetError controllers yield the paper's approximate
// executions.
package apps

import (
	"approxhadoop/internal/approx"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
)

// Options configures how an application job is assembled.
type Options struct {
	// Controller steers approximation; nil = precise execution.
	Controller mapreduce.Controller
	// Plain uses the stock Hadoop classes (TextInputFormat and a plain
	// sum reducer) instead of the ApproxHadoop templates, for
	// measuring the framework's overhead (Section 5.2).
	Plain bool
	// Cost is the task cost model (default cluster.MeasuredCost{}).
	Cost cluster.CostModel
	// Seed for task ordering and sampling.
	Seed int64
	// Reduces overrides the reduce task count (default: one per server).
	Reduces int
	// SleepIdle enables the S3 energy policy.
	SleepIdle bool
	// Barrier disables incremental reduces (ablation).
	Barrier bool
	// Speculation enables straggler duplicates.
	Speculation bool
}

// aggregationJob assembles the common shape of the Table 1 analytics
// jobs: ApproxTextInput + combiner + MultiStageReducer (or the plain
// Hadoop classes when opts.Plain).
func aggregationJob(name string, input *dfs.File, mapper func() mapreduce.Mapper, op approx.AggOp, opts Options) *mapreduce.Job {
	job := &mapreduce.Job{
		Name:        name,
		Input:       input,
		NewMapper:   mapper,
		Reduces:     opts.Reduces,
		Controller:  opts.Controller,
		Cost:        opts.Cost,
		Seed:        opts.Seed,
		SleepIdle:   opts.SleepIdle,
		Barrier:     opts.Barrier,
		Speculation: opts.Speculation,
	}
	if opts.Plain {
		job.Format = mapreduce.TextInputFormat{}
		switch op {
		case approx.OpMean:
			job.NewReduce = func(int) mapreduce.ReduceLogic { return mapreduce.MeanReduce() }
		default:
			job.NewReduce = func(int) mapreduce.ReduceLogic { return mapreduce.SumReduce() }
		}
		return job
	}
	job.Format = approx.ApproxTextInput{}
	job.Combine = true
	job.NewReduce = func(int) mapreduce.ReduceLogic { return approx.NewMultiStageReducer(op) }
	return job
}

// Spec describes one application for the Table 1 inventory.
type Spec struct {
	Name        string
	Domain      string // data analysis, log processing, optimization, ...
	Input       string // which dataset it runs on
	Sampling    bool   // supports input data sampling (S)
	Dropping    bool   // supports task dropping (D)
	UserDefined bool   // supports user-defined approximation (U)
	ErrEst      string // MS (multi-stage sampling), GEV, U (user-defined)
}

// Registry lists every application, mirroring the paper's Table 1.
func Registry() []Spec {
	return []Spec{
		{"WikiLength", "data analysis", "Wikipedia dump", true, true, false, "MS"},
		{"WikiPageRank", "data analysis", "Wikipedia dump", true, true, false, "MS"},
		{"RequestRate(wiki)", "log processing", "Wikipedia log", true, true, false, "MS"},
		{"ProjectPopularity", "log processing", "Wikipedia log", true, true, false, "MS"},
		{"PagePopularity", "log processing", "Wikipedia log", true, true, false, "MS"},
		{"PageTraffic", "log processing", "Wikipedia log", true, true, false, "MS"},
		{"TotalSize", "log processing", "Webserver log", true, true, false, "MS"},
		{"RequestSize", "log processing", "Webserver log", true, true, false, "MS"},
		{"Clients", "log processing", "Webserver log", true, true, false, "MS"},
		{"ClientBrowser", "log processing", "Webserver log", true, true, false, "MS"},
		{"RequestRate(web)", "log processing", "Webserver log", true, true, false, "MS"},
		{"AttackFrequencies", "log processing", "Webserver log", true, true, false, "MS"},
		{"AvgBytesPerLink", "data analysis", "Wikipedia dump", true, true, false, "MS3"},
		{"DCPlacement", "optimization", "US/Europe grid", false, true, false, "GEV"},
		{"VideoEncoding", "video encoding", "Movie frames", false, false, true, "U"},
		{"KMeans", "machine learning", "Point set", false, false, true, "U"},
		{"WikiDistinctEditors", "log processing", "Wikipedia edit log", true, true, false, "SK"},
		{"WikiTopPages", "log processing", "Wikipedia log", true, true, false, "SK"},
	}
}
