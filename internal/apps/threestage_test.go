package apps

import (
	"math"
	"testing"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/workload"
)

func TestAvgBytesPerLinkThreeStage(t *testing.T) {
	input := smallWiki().File("wiki3s")
	// Ground truth: pair-weighted mean of size/len(links) over links.
	var sum, pairs float64
	for _, b := range input.Blocks {
		rc := b.Open()
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := rc.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		rc.Close()
		start := 0
		for i := 0; i <= len(buf); i++ {
			if i == len(buf) || buf[i] == '\n' {
				if i > start {
					if a, ok := workload.ParseArticle(string(buf[start:i])); ok && len(a.Links) > 0 {
						sum += float64(a.Size)
						pairs += float64(len(a.Links))
					}
				}
				start = i + 1
			}
		}
	}
	truth := sum / pairs

	precise := run(t, AvgBytesPerLink(input, Options{Seed: 1}))
	if len(precise.Outputs) != 1 {
		t.Fatalf("outputs = %+v", precise.Outputs)
	}
	if got := precise.Outputs[0].Est.Value; math.Abs(got-truth)/truth > 1e-9 {
		t.Errorf("precise pair mean %v, want %v", got, truth)
	}
	if !precise.Outputs[0].Exact {
		t.Error("precise run should be exact")
	}

	apx := run(t, AvgBytesPerLink(input, Options{Seed: 1, Controller: approx.NewStatic(0.3, 0.25)}))
	a := apx.Outputs[0].Est
	if math.Abs(a.Value-truth)/truth > 0.3 {
		t.Errorf("approx pair mean %v too far from %v", a.Value, truth)
	}
	if a.Err <= 0 || math.IsInf(a.Err, 1) {
		t.Errorf("approx bound = %v", a.Err)
	}
	if a.Lo() > truth || truth > a.Hi() {
		t.Logf("note: truth %v outside [%v, %v] (expected ~5%% of seeds)", truth, a.Lo(), a.Hi())
	}
}
