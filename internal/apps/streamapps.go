// Streaming scenario catalog: continuous queries over the live wiki
// edit and web access streams. Each builder pairs a workload
// generator's stream with a stream.Query the way the batch builders
// pair files with Jobs, so cmd/approxrun, the jobserver and the
// harness all submit the same scenarios by name.
package apps

import (
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/stream"
	"approxhadoop/internal/workload"
)

// StreamOptions configure a streaming scenario.
type StreamOptions struct {
	// Seed drives the source jitter and every reservoir (default 1).
	Seed int64
	// Rate is the arrival intensity curve (default: diurnal around
	// 400 rec/s swinging 0.5, i.e. a 3x trough-to-peak excursion).
	Rate workload.RateFunc
	// Window spec (default: 10s tumbling).
	Window stream.Window
	// SLO for the adaptive controller; the zero value runs with a
	// fixed plan.
	SLO stream.SLO
	// Capacity is the starting per-stratum reservoir size (default
	// stream.Query default, 64).
	Capacity int
	// Workers sizes the fold pool (byte-invisible; 0 = GOMAXPROCS).
	Workers int
	// MaxWindows stops the stream after N windows (0 = drain source).
	MaxWindows int
	// Cost overrides the latency model (zero value = DefaultCost).
	Cost stream.Cost
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Rate == nil {
		o.Rate = workload.DiurnalRate(400, 0.5, 120)
	}
	if o.Window.Size <= 0 {
		o.Window = stream.Window{Size: 10}
	}
	return o
}

// controller builds the adaptive controller when the SLO asks for one.
func (o StreamOptions) controller() *stream.Controller {
	if o.SLO == (stream.SLO{}) {
		return nil
	}
	return stream.NewController(o.SLO, o.Cost)
}

// fileProvider is the workload-generator shape the builders need: all
// generators expose their dataset as a named dfs file.
type fileProvider interface {
	File(name string) *dfs.File
}

// pipeline assembles the common Pipeline scaffolding around a query.
func (o StreamOptions) pipeline(q stream.Query, f fileProvider) *stream.Pipeline {
	q.Window = o.Window
	q.SLO = o.SLO
	q.Seed = o.Seed
	q.Capacity = o.Capacity
	return &stream.Pipeline{
		Query:      q,
		Source:     workload.StreamFrom(f.File("stream-input"), workload.StreamOptions{Rate: o.Rate, Seed: o.Seed}),
		Workers:    o.Workers,
		Controller: o.controller(),
		Cost:       o.Cost,
		MaxWindows: o.MaxWindows,
	}
}

// tsvField returns the idx-th tab-separated field of line, nil when
// the field does not exist.
func tsvField(line []byte, idx int) []byte {
	start := 0
	field := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == '\t' {
			if field == idx {
				return line[start:i]
			}
			field++
			start = i + 1
		}
	}
	return nil
}

// atoiBytes parses a non-negative decimal integer without allocating;
// ok is false for empty or non-numeric input.
func atoiBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// EditRateStream counts wiki edits per window, stratified by project
// (the EditLog's ~40 natural substreams): a live edits-per-interval
// dashboard. Count queries sample nothing per-unit; their only
// degradation lever is stratum shedding under latency pressure.
func EditRateStream(gen workload.EditLog, opts StreamOptions) *stream.Pipeline {
	opts = opts.withDefaults()
	q := stream.Query{
		Name: "edit-rate",
		Op:   stream.OpCount,
		Stratify: func(line []byte) []byte {
			return tsvField(line, 1) // project
		},
	}
	return opts.pipeline(q, gen)
}

// WebBytesStream estimates bytes served per window from the web
// access stream. Clients are hashed into 32 fixed substreams
// (StreamApprox's bounded stratification for high-cardinality keys),
// and the heavy-tailed per-request byte sizes are what the per-stratum
// reservoirs sample.
func WebBytesStream(gen workload.WebLog, opts StreamOptions) *stream.Pipeline {
	opts = opts.withDefaults()
	q := stream.Query{
		Name: "web-bytes",
		Op:   stream.OpSum,
		Stratify: func(line []byte) []byte {
			return tsvField(line, 0) // client id
		},
		Value: func(line []byte) (float64, bool) {
			n, ok := atoiBytes(tsvField(line, 3))
			return float64(n), ok
		},
		Buckets: 32,
	}
	return opts.pipeline(q, gen)
}

// StreamApps lists the streaming scenario names for CLI catalogs.
func StreamApps() []string { return []string{"edit-rate", "web-bytes"} }
