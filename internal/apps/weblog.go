package apps

import (
	"fmt"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/workload"
)

// WebRequestRate counts requests per hour of the week from the
// department web-server log (Figure 10a/b: a stable distribution,
// quite unlike the Zipf popularity apps).
func WebRequestRate(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseWebAccess(rec.Value); ok {
				emit.Emit(fmt.Sprintf("h%03d", a.HourOfWeek), 1)
			}
		})
	}
	return aggregationJob("RequestRate(web)", input, mapper, approx.OpSum, opts)
}

// AttackFrequencies counts attacks per client for a set of well-known
// attack patterns (Figure 10c) — the rare-key application where
// approximation is least effective.
func AttackFrequencies(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseWebAccess(rec.Value); ok && a.IsAttack() {
				emit.Emit(a.Client, 1)
			}
		})
	}
	return aggregationJob("AttackFrequencies", input, mapper, approx.OpSum, opts)
}

// TotalSize sums the bytes served by the web server (a single-key
// aggregation).
func TotalSize(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseWebAccess(rec.Value); ok {
				emit.Emit("total-bytes", float64(a.Bytes))
			}
		})
	}
	return aggregationJob("TotalSize", input, mapper, approx.OpSum, opts)
}

// RequestSize estimates the mean request size (bytes per request), a
// per-unit average handled by the OpMean ratio estimator.
func RequestSize(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseWebAccess(rec.Value); ok {
				emit.Emit("mean-bytes", float64(a.Bytes))
			}
		})
	}
	return aggregationJob("RequestSize", input, mapper, approx.OpMean, opts)
}

// Clients counts requests per client.
func Clients(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseWebAccess(rec.Value); ok {
				emit.Emit(a.Client, 1)
			}
		})
	}
	return aggregationJob("Clients", input, mapper, approx.OpSum, opts)
}

// ClientBrowser counts requests per user agent family.
func ClientBrowser(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			if a, ok := workload.ParseWebAccess(rec.Value); ok {
				emit.Emit(a.Agent, 1)
			}
		})
	}
	return aggregationJob("ClientBrowser", input, mapper, approx.OpSum, opts)
}
