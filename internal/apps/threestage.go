package apps

import (
	"approxhadoop/internal/approx"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/workload"
)

// AvgBytesPerLink estimates the mean article bytes attributable to
// each outgoing link — a per-PAIR average: every article (input unit)
// produces one intermediate pair per link, so the mean must be taken
// over the produced pairs rather than over articles (Section 3.1's
// three-stage sampling example: the programmer knows her application
// and opts into the third stage explicitly via the ThreeStageReducer).
func AvgBytesPerLink(input *dfs.File, opts Options) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			a, ok := workload.ParseArticle(rec.Value)
			if !ok || len(a.Links) == 0 {
				return
			}
			share := float64(a.Size) / float64(len(a.Links))
			for range a.Links {
				emit.Emit("bytes-per-link", share)
			}
		})
	}
	job := &mapreduce.Job{
		Name:        "AvgBytesPerLink",
		Input:       input,
		Format:      approx.ApproxTextInput{},
		NewMapper:   mapper,
		NewReduce:   func(int) mapreduce.ReduceLogic { return approx.NewThreeStageReducer() },
		Reduces:     1,
		Combine:     true,
		Controller:  opts.Controller,
		Cost:        opts.Cost,
		Seed:        opts.Seed,
		SleepIdle:   opts.SleepIdle,
		Barrier:     opts.Barrier,
		Speculation: opts.Speculation,
	}
	return job
}
