package apps

import (
	"math"
	"strings"
	"testing"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/workload"
)

func appEngine() *cluster.Engine {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 4
	return cluster.New(cfg)
}

func smallWiki() workload.WikiDump {
	return workload.WikiDump{Blocks: 16, ArticlesPerBlock: 300, LinkUniverse: 500, MeanLinks: 5, Seed: 4}
}

func smallLog() workload.AccessLog {
	return workload.AccessLog{Blocks: 16, LinesPerBlock: 800, Projects: 40, Pages: 400, Seed: 6}
}

func smallWeb() workload.WebLog {
	return workload.WebLog{Blocks: 16, LinesPerBlock: 800, Clients: 200, Attackers: 10, AttackRate: 0.1, Seed: 8}
}

func run(t *testing.T, job *mapreduce.Job) *mapreduce.Result {
	t.Helper()
	res, err := mapreduce.Run(appEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runPair executes an app precisely and approximately and returns both.
func runPair(t *testing.T, build func(Options) *mapreduce.Job, ctl mapreduce.Controller) (precise, apx *mapreduce.Result) {
	t.Helper()
	precise = run(t, build(Options{Seed: 1}))
	apx = run(t, build(Options{Seed: 1, Controller: ctl}))
	return precise, apx
}

// checkApproxClose verifies the approximate totals track the precise
// ones for the heaviest keys.
func checkApproxClose(t *testing.T, precise, apx *mapreduce.Result, relTol float64) {
	t.Helper()
	checked := 0
	for _, p := range precise.Outputs {
		if p.Est.Value < 200 {
			continue // light keys: sampling noise dominates
		}
		a, ok := apx.Output(p.Key)
		if !ok {
			continue // rare keys may be missed entirely (Section 3.1)
		}
		if rel := math.Abs(a.Est.Value-p.Est.Value) / p.Est.Value; rel > relTol {
			t.Errorf("key %s: approx %v vs precise %v (rel %.3f)", p.Key, a.Est.Value, p.Est.Value, rel)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no heavy keys compared")
	}
}

func TestWikiLengthPreciseVsApprox(t *testing.T) {
	input := smallWiki().File("wiki")
	build := func(o Options) *mapreduce.Job { return WikiLength(input, o) }
	precise, apx := runPair(t, build, approx.NewStatic(0.25, 0))
	if precise.MaxRelErr() != 0 {
		t.Error("precise run should be exact")
	}
	checkApproxClose(t, precise, apx, 0.4)
	if apx.Counters.ItemsProcessed >= apx.Counters.ItemsTotal {
		t.Error("sampling should process fewer items")
	}
}

func TestWikiPageRank(t *testing.T) {
	input := smallWiki().File("wiki")
	build := func(o Options) *mapreduce.Job { return WikiPageRank(input, o) }
	precise, apx := runPair(t, build, approx.NewStatic(0.5, 0.25))
	// The most-linked articles must rank the same at the top.
	pTop, _ := precise.Output("A1")
	aTop, ok := apx.Output("A1")
	if !ok || pTop.Est.Value == 0 {
		t.Fatal("A1 should be present in both runs")
	}
	if rel := math.Abs(aTop.Est.Value-pTop.Est.Value) / pTop.Est.Value; rel > 0.4 {
		t.Errorf("A1 in-links: %v vs %v", aTop.Est.Value, pTop.Est.Value)
	}
}

func TestProjectAndPagePopularity(t *testing.T) {
	input := smallLog().File("log")
	pp, ppApx := runPair(t, func(o Options) *mapreduce.Job { return ProjectPopularity(input, o) },
		approx.NewStatic(0.25, 0))
	checkApproxClose(t, pp, ppApx, 0.35)

	pg := run(t, PagePopularity(input, Options{Seed: 2}))
	if len(pg.Outputs) < 50 {
		t.Errorf("page popularity should have many keys, got %d", len(pg.Outputs))
	}
	pt := run(t, PageTraffic(input, Options{Seed: 2}))
	if len(pt.Outputs) == 0 {
		t.Error("page traffic empty")
	}
	rr := run(t, WikiRequestRate(input, Options{Seed: 2}))
	if len(rr.Outputs) == 0 || len(rr.Outputs) > 24 {
		t.Errorf("request rate keys = %d", len(rr.Outputs))
	}
	for _, o := range rr.Outputs {
		if !strings.HasPrefix(o.Key, "hour") {
			t.Errorf("bad hour key %q", o.Key)
		}
	}
}

func TestWebLogApps(t *testing.T) {
	input := smallWeb().File("weblog")
	rate := run(t, WebRequestRate(input, Options{Seed: 3}))
	if len(rate.Outputs) != 168 {
		t.Errorf("hour-of-week keys = %d, want 168", len(rate.Outputs))
	}
	attacks := run(t, AttackFrequencies(input, Options{Seed: 3}))
	if len(attacks.Outputs) == 0 || len(attacks.Outputs) > 10 {
		t.Errorf("attack keys = %d, want <= 10 attackers", len(attacks.Outputs))
	}
	total := run(t, TotalSize(input, Options{Seed: 3}))
	if len(total.Outputs) != 1 || total.Outputs[0].Est.Value <= 0 {
		t.Errorf("total size = %+v", total.Outputs)
	}
	size := run(t, RequestSize(input, Options{Seed: 3}))
	if len(size.Outputs) != 1 || size.Outputs[0].Est.Value < 500 {
		t.Errorf("mean request size = %+v", size.Outputs)
	}
	clients := run(t, Clients(input, Options{Seed: 3}))
	if len(clients.Outputs) < 50 {
		t.Errorf("client keys = %d", len(clients.Outputs))
	}
	browsers := run(t, ClientBrowser(input, Options{Seed: 3}))
	if len(browsers.Outputs) < 3 || len(browsers.Outputs) > 10 {
		t.Errorf("browser keys = %d", len(browsers.Outputs))
	}
}

func TestAttackFrequenciesWideBounds(t *testing.T) {
	// Rare keys get relatively wider intervals than common keys
	// (Section 5.4's point about Attack Frequencies). Compare the mean
	// relative bound across keys under the same sampling ratio.
	input := workload.WebLog{Blocks: 16, LinesPerBlock: 4000, Clients: 200,
		Attackers: 10, AttackRate: 0.05, Seed: 8}.File("weblog-wide")
	rate := run(t, WebRequestRate(input, Options{Seed: 4, Controller: approx.NewStatic(0.2, 0)}))
	attacks := run(t, AttackFrequencies(input, Options{Seed: 4, Controller: approx.NewStatic(0.2, 0)}))
	if len(attacks.Outputs) == 0 {
		t.Fatal("sampling missed every attack")
	}
	meanRel := func(res *mapreduce.Result) float64 {
		s, n := 0.0, 0
		for _, o := range res.Outputs {
			if re := o.Est.RelErr(); !math.IsInf(re, 1) {
				s += re
				n++
			}
		}
		return s / float64(n)
	}
	if meanRel(attacks) <= meanRel(rate) {
		t.Errorf("rare-key app should have wider relative bounds: attacks %.3f vs rate %.3f",
			meanRel(attacks), meanRel(rate))
	}
}

func TestRequestSizeMeanMatchesPrecise(t *testing.T) {
	input := smallWeb().File("weblog")
	precise := run(t, RequestSize(input, Options{Seed: 5}))
	apx := run(t, RequestSize(input, Options{Seed: 5, Controller: approx.NewStatic(0.2, 0)}))
	p := precise.Outputs[0].Est.Value
	a := apx.Outputs[0].Est
	if math.Abs(a.Value-p)/p > 0.25 {
		t.Errorf("mean size approx %v vs precise %v", a.Value, p)
	}
	if a.Err <= 0 {
		t.Errorf("mean estimate should carry a bound, got %v", a.Err)
	}
}

func TestDCPlacementGeography(t *testing.T) {
	geo := DefaultGeography()
	if geo.Cells() != geo.Rows*geo.Cols {
		t.Error("cells")
	}
	// Deterministic per cell.
	if !stats.AlmostEqual(geo.Population(5), geo.Population(5), 0) || !stats.AlmostEqual(geo.SiteCost(7), geo.SiteCost(7), 0) {
		t.Error("geography must be deterministic")
	}
	popCells := 0
	for c := 0; c < geo.Cells(); c++ {
		if geo.Population(c) > 0 {
			popCells++
		}
	}
	if popCells < geo.Cells()/3 || popCells > geo.Cells() {
		t.Errorf("populated cells = %d of %d", popCells, geo.Cells())
	}
	// Annealing improves over a random placement, deterministically.
	randCost := geo.PlacementCost([]int{0, 1, 2, 3})
	best, placement := geo.Anneal(42, 1500)
	if best >= randCost {
		t.Errorf("annealing (%v) should beat corner placement (%v)", best, randCost)
	}
	if len(placement) != geo.K {
		t.Errorf("placement size %d", len(placement))
	}
	best2, _ := geo.Anneal(42, 1500)
	if !stats.AlmostEqual(best, best2, 0) {
		t.Error("annealing must be deterministic per seed")
	}
}

func TestDCPlacementJob(t *testing.T) {
	input := workload.SearchSeeds("seeds", 32, 9)
	precise := run(t, DCPlacement(input, DCPlacementConfig{Iters: 600}, Options{Seed: 1}))
	if len(precise.Outputs) != 1 {
		t.Fatalf("outputs = %+v", precise.Outputs)
	}
	pMin := precise.Outputs[0].Est.Value

	apx := run(t, DCPlacement(input, DCPlacementConfig{Iters: 600},
		Options{Seed: 1, Controller: approx.NewStatic(1, 0.5)}))
	aMin := apx.Outputs[0].Est
	if aMin.Value < pMin {
		t.Errorf("approx min %v cannot beat precise %v on same seeds", aMin.Value, pMin)
	}
	if rel := (aMin.Value - pMin) / pMin; rel > 0.2 {
		t.Errorf("approx min %.1f too far above precise %.1f", aMin.Value, pMin)
	}
	if aMin.Err <= 0 || math.IsInf(aMin.Err, 1) {
		t.Errorf("expected finite GEV bound, got %v", aMin.Err)
	}
	if apx.Counters.MapsCompleted != 16 {
		t.Errorf("dropping 50%% of 32 maps should complete 16: %+v", apx.Counters)
	}
}

func TestDCPlacementTargetError(t *testing.T) {
	input := workload.SearchSeeds("seeds", 48, 9)
	job := DCPlacement(input, DCPlacementConfig{Iters: 400},
		Options{Seed: 1, Controller: &approx.TargetErrorGEV{Target: 0.15, MinMaps: 10}})
	res := run(t, job)
	if res.Counters.MapsCompleted >= 48 {
		t.Errorf("loose GEV target should stop early: %+v", res.Counters)
	}
	if res.MaxRelErr() > 0.15 {
		t.Errorf("bound %.3f exceeds target", res.MaxRelErr())
	}
}

func TestKMeans(t *testing.T) {
	input := KMeansData("points", 12, 500, 4, 7)
	cfg := KMeansConfig{Centroids: [][2]float64{{2, 2}, {12, 2}, {2, 12}, {12, 12}}}
	precise := run(t, KMeansIteration(input, cfg, Options{Seed: 1}))
	pCent := CentroidsFromResult(precise, 4)
	for i, c := range pCent {
		if c[0] == 0 && c[1] == 0 {
			t.Errorf("centroid %d empty", i)
		}
	}
	// User-defined approximation: all tasks subsampled.
	cfg.ApproxRatio = 1
	apx := run(t, KMeansIteration(input, cfg, Options{Seed: 1}))
	aCent := CentroidsFromResult(apx, 4)
	if shift := CentroidShift(pCent, aCent); shift > 1.0 {
		t.Errorf("subsampled centroids shifted too far: %v", shift)
	}
	if apx.RealSecs >= precise.RealSecs {
		t.Logf("note: approx real %.4fs vs precise %.4fs (tiny input; timing noise)", apx.RealSecs, precise.RealSecs)
	}
	// True centers are near (5,5), (15,5), (5,15), (15,15).
	truth := [][2]float64{{5, 5}, {15, 5}, {5, 15}, {15, 15}}
	if d := CentroidShift(pCent, truth); d > 3 {
		t.Errorf("one Lloyd step from good init should approach truth, shift %v", d)
	}
}

func TestVideoEncoding(t *testing.T) {
	input := VideoData("movie", 8, 120, 5)
	precise := run(t, VideoEncoding(input, VideoEncodingConfig{}, Options{Seed: 1}))
	q, _ := precise.Output("quality")
	f, _ := precise.Output("frames")
	if !stats.AlmostEqual(f.Est.Value, 8*120, 1e-9) {
		t.Errorf("frames = %v", f.Est.Value)
	}
	pq := q.Est.Value / f.Est.Value

	apx := run(t, VideoEncoding(input, VideoEncodingConfig{ApproxRatio: 1}, Options{Seed: 1}))
	qa, _ := apx.Output("quality")
	fa, _ := apx.Output("frames")
	aq := qa.Est.Value / fa.Est.Value
	if aq >= pq {
		t.Errorf("approximate encoding should lose quality: %v >= %v", aq, pq)
	}
	if aq < pq*0.7 {
		t.Errorf("quality loss too severe: %v vs %v", aq, pq)
	}
	if apx.RealSecs >= precise.RealSecs {
		t.Errorf("approximate encoding should be faster in real compute: %v >= %v",
			apx.RealSecs, precise.RealSecs)
	}
}

func TestPlainVsTemplateOverhead(t *testing.T) {
	// The approximate stack at ratio 1 must agree exactly with the
	// plain Hadoop classes (the paper's <1% overhead comparison is
	// about time; here we check result equality).
	input := smallWiki().File("wiki")
	plain := run(t, WikiLength(input, Options{Seed: 1, Plain: true}))
	templ := run(t, WikiLength(input, Options{Seed: 1}))
	if len(plain.Outputs) != len(templ.Outputs) {
		t.Fatalf("key counts differ: %d vs %d", len(plain.Outputs), len(templ.Outputs))
	}
	for i := range plain.Outputs {
		p, q := plain.Outputs[i], templ.Outputs[i]
		if p.Key != q.Key || !stats.AlmostEqual(p.Est.Value, q.Est.Value, 0) {
			t.Errorf("mismatch at %s: %v vs %v", p.Key, p.Est.Value, q.Est.Value)
		}
	}
}

func TestRegistryMatchesTable1(t *testing.T) {
	reg := Registry()
	if len(reg) != 18 { // paper's 16 rows + the two sketch-plane scenarios
		t.Errorf("registry size = %d", len(reg))
	}
	byName := map[string]Spec{}
	for _, s := range reg {
		if s.Name == "" || s.ErrEst == "" {
			t.Errorf("incomplete spec: %+v", s)
		}
		byName[s.Name] = s
	}
	if s := byName["DCPlacement"]; !s.Dropping || s.Sampling || s.ErrEst != "GEV" {
		t.Errorf("DCPlacement spec wrong: %+v", s)
	}
	if s := byName["AvgBytesPerLink"]; s.ErrEst != "MS3" {
		t.Errorf("AvgBytesPerLink spec wrong: %+v", s)
	}
	if s := byName["KMeans"]; !s.UserDefined || s.ErrEst != "U" {
		t.Errorf("KMeans spec wrong: %+v", s)
	}
	if s := byName["ProjectPopularity"]; !s.Sampling || !s.Dropping || s.ErrEst != "MS" {
		t.Errorf("ProjectPopularity spec wrong: %+v", s)
	}
}

func TestTargetErrorOnProjectPopularity(t *testing.T) {
	input := workload.AccessLog{Blocks: 32, LinesPerBlock: 1500, Projects: 30, Pages: 300, Seed: 12}.File("log")
	precise := run(t, ProjectPopularity(input, Options{Seed: 2}))
	job := ProjectPopularity(input, Options{
		Seed:       2,
		Controller: &approx.TargetError{Target: 0.05},
		Cost:       cluster.AnalyticCost{T0: 1, Tr: 1e-4, Tp: 1e-3},
	})
	res := run(t, job)
	// The default controller bounds the worst absolute-error key (the
	// paper's reported key); rare projects may have wider relative CIs.
	worstAbs := res.Outputs[0]
	for _, o := range res.Outputs {
		if !math.IsInf(o.Est.Err, 1) && o.Est.Err > worstAbs.Est.Err {
			worstAbs = o
		}
	}
	if worstAbs.Est.RelErr() > 0.05 {
		t.Errorf("bound %.4f exceeds 5%% target", worstAbs.Est.RelErr())
	}
	// Actual error of the worst-bound key should be inside its interval
	// (95% of the time; this seed is deterministic and passes).
	worst := res.Outputs[0]
	for _, o := range res.Outputs {
		if o.Est.Err > worst.Est.Err {
			worst = o
		}
	}
	p, ok := precise.Output(worst.Key)
	if !ok {
		t.Fatalf("precise missing key %s", worst.Key)
	}
	if p.Est.Value < worst.Est.Lo() || p.Est.Value > worst.Est.Hi() {
		t.Errorf("true value %v outside [%v, %v] for %s",
			p.Est.Value, worst.Est.Lo(), worst.Est.Hi(), worst.Key)
	}
}
