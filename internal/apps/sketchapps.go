package apps

import (
	"approxhadoop/internal/approx"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/workload"
)

// This file adds the two sketch-plane wiki scenarios: distinct editors
// per project (HLL over the edit log) and top-k hot pages (Count-Min
// over the access log). Both mappers emit through
// mapreduce.EmitElement, so the SAME job definition runs in either
// representation: with opts.Sketch the map output is one fixed-size
// sketch per group, without it the elements travel as composite pairs
// (with map-side combining) and the reducers compute exactly — the
// baseline the shuffle-volume comparison and the accuracy cross-checks
// run against.

// SketchOptions extends Options with the representation toggle.
type SketchOptions struct {
	Options
	// Sketch selects the sketch-compressed map-output representation;
	// false runs the composite-pairs baseline.
	Sketch bool
	// Plan overrides the default sketch parameters (optional; the Kind
	// is always set by the scenario).
	Plan *mapreduce.SketchPlan
}

// sketchElementJob assembles the common shape of the sketch scenarios.
func sketchElementJob(name string, input *dfs.File, mapper func() mapreduce.Mapper,
	kind mapreduce.SketchKind, reduce func() mapreduce.ReduceLogic, opts SketchOptions) *mapreduce.Job {
	job := &mapreduce.Job{
		Name:        name,
		Input:       input,
		Format:      approx.ApproxTextInput{},
		NewMapper:   mapper,
		NewReduce:   func(int) mapreduce.ReduceLogic { return reduce() },
		Reduces:     opts.Reduces,
		Controller:  opts.Controller,
		Cost:        opts.Cost,
		Seed:        opts.Seed,
		SleepIdle:   opts.SleepIdle,
		Barrier:     opts.Barrier,
		Speculation: opts.Speculation,
	}
	if opts.Sketch {
		plan := opts.Plan
		if plan == nil {
			plan = &mapreduce.SketchPlan{}
		}
		plan.Kind = kind
		job.Sketch = plan
	} else {
		job.Combine = true
	}
	return job
}

// WikiDistinctEditors counts the distinct editors of each project over
// the edit log: a per-group HLL under the sketch representation, exact
// sets under pairs.
func WikiDistinctEditors(input *dfs.File, opts SketchOptions) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			e, ok := workload.ParseEdit(rec.Value)
			if !ok {
				return
			}
			mapreduce.EmitElement(emit, e.Project, e.Editor, 1)
		})
	}
	return sketchElementJob("WikiDistinctEditors", input, mapper, mapreduce.SketchDistinct,
		func() mapreduce.ReduceLogic { return mapreduce.NewDistinctReduce() }, opts)
}

// topPagesK is the k of the hot-pages query (the paper-style "top
// pages" report).
const topPagesK = 10

// WikiTopPages reports the k most-requested pages across the whole
// access log (a single global group): a Count-Min + candidate-set
// sketch under the sketch representation, exact tallies under pairs.
func WikiTopPages(input *dfs.File, opts SketchOptions) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			a, ok := workload.ParseAccess(rec.Value)
			if !ok {
				return
			}
			mapreduce.EmitElement(emit, "", a.Page, 1)
		})
	}
	k := topPagesK
	if opts.Plan != nil && opts.Plan.K > 0 {
		k = opts.Plan.K
	}
	return sketchElementJob("WikiTopPages", input, mapper, mapreduce.SketchTopK,
		func() mapreduce.ReduceLogic { return mapreduce.NewTopKReduce(k) }, opts)
}

// WikiEditorMembership records which editors touched each project, for
// point membership queries: a per-group Bloom filter under the sketch
// representation, exact sets under pairs. The job's output value per
// project is the estimated member count.
func WikiEditorMembership(input *dfs.File, opts SketchOptions) *mapreduce.Job {
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			e, ok := workload.ParseEdit(rec.Value)
			if !ok {
				return
			}
			mapreduce.EmitElement(emit, e.Project, e.Editor, 1)
		})
	}
	return sketchElementJob("WikiEditorMembership", input, mapper, mapreduce.SketchMembership,
		func() mapreduce.ReduceLogic { return mapreduce.NewMembershipReduce() }, opts)
}
