package apps

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/vtime"
)

// ---------------------------------------------------------------------------
// K-Means (user-defined approximation, machine learning)
// ---------------------------------------------------------------------------

// KMeansData generates a 2-D point set with `centers` true clusters,
// one line per point: "x<TAB>y".
func KMeansData(name string, blocks, pointsPerBlock, centers int, seed int64) *dfs.File {
	if centers <= 0 {
		centers = 4
	}
	gen := func(idx int, r dfs.RandSource, bw io.Writer) error {
		rr := stats.NewRand(r.Int63())
		for i := 0; i < pointsPerBlock; i++ {
			c := rr.Intn(centers)
			cx := float64(c%2)*10 + 5
			cy := float64(c/2)*10 + 5
			x := cx + rr.NormFloat64()*1.5
			y := cy + rr.NormFloat64()*1.5
			if _, err := fmt.Fprintf(bw, "%.4f\t%.4f\n", x, y); err != nil {
				return err
			}
		}
		return nil
	}
	return dfs.GeneratedFile(name, blocks, seed, int64(pointsPerBlock)*16, int64(pointsPerBlock), gen)
}

// parsePoint parses "x<TAB>y".
func parsePoint(line string) (x, y float64, ok bool) {
	parts := strings.SplitN(line, "\t", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	x, err1 := strconv.ParseFloat(parts[0], 64)
	y, err2 := strconv.ParseFloat(parts[1], 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return x, y, true
}

// KMeansConfig holds the current centroids and the user-defined
// approximation level for one Lloyd iteration.
type KMeansConfig struct {
	Centroids [][2]float64
	// ApproxRatio is the fraction of map tasks that run the
	// approximate mapper, which subsamples its points 10:1 — the
	// user-defined approximation from the technical report.
	ApproxRatio float64
	SubSample   float64 // fraction of points the approximate mapper uses (default 0.1)
}

// kmeansMapper assigns points to the nearest centroid and emits the
// per-centroid partial sums a reduce needs to recompute centroids:
// c<i>/count, c<i>/x, c<i>/y. stride > 1 makes it the approximate
// variant (it processes every stride-th point and scales its sums).
func kmeansMapper(cfg KMeansConfig, stride int) mapreduce.Mapper {
	n := 0
	return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
		n++
		if stride > 1 && n%stride != 0 {
			return
		}
		x, y, ok := parsePoint(rec.Value)
		if !ok {
			return
		}
		bestI, bestD := 0, math.Inf(1)
		for i, c := range cfg.Centroids {
			dx, dy := x-c[0], y-c[1]
			if d := dx*dx + dy*dy; d < bestD {
				bestI, bestD = i, d
			}
		}
		if ch, ok := emit.(vtime.Charger); ok {
			// Parse + one distance evaluation per centroid.
			ch.ChargeCompute(float64(4 * (len(cfg.Centroids) + 1)))
		}
		w := float64(stride) // rescale so approximate sums stay unbiased
		emit.Emit(fmt.Sprintf("c%d/count", bestI), w)
		emit.Emit(fmt.Sprintf("c%d/x", bestI), w*x)
		emit.Emit(fmt.Sprintf("c%d/y", bestI), w*y)
	})
}

// KMeansIteration builds one Lloyd iteration with user-defined
// approximation: cfg.ApproxRatio of the map tasks run a subsampled
// mapper. Error bounds are user-defined territory (the framework
// cannot bound them), so the reduce is a plain sum.
func KMeansIteration(input *dfs.File, cfg KMeansConfig, opts Options) *mapreduce.Job {
	if len(cfg.Centroids) == 0 {
		cfg.Centroids = [][2]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	}
	if cfg.SubSample <= 0 || cfg.SubSample > 1 {
		cfg.SubSample = 0.1
	}
	stride := int(math.Round(1 / cfg.SubSample))
	if stride < 2 {
		stride = 2
	}
	precise := func() mapreduce.Mapper { return kmeansMapper(cfg, 1) }
	approxV := func() mapreduce.Mapper { return kmeansMapper(cfg, stride) }
	return &mapreduce.Job{
		Name:         "KMeans",
		Input:        input,
		Format:       mapreduce.TextInputFormat{},
		NewMapperFor: approx.PerTaskMappers(cfg.ApproxRatio, opts.Seed, precise, approxV),
		NewReduce:    func(int) mapreduce.ReduceLogic { return mapreduce.SumReduce() },
		Reduces:      opts.Reduces,
		Cost:         opts.Cost,
		Seed:         opts.Seed,
		SleepIdle:    opts.SleepIdle,
		Barrier:      opts.Barrier,
		Speculation:  opts.Speculation,
	}
}

// CentroidsFromResult recomputes centroids from a KMeansIteration
// result; k is the centroid count.
func CentroidsFromResult(res *mapreduce.Result, k int) [][2]float64 {
	out := make([][2]float64, k)
	for i := 0; i < k; i++ {
		cnt, _ := res.Output(fmt.Sprintf("c%d/count", i))
		sx, _ := res.Output(fmt.Sprintf("c%d/x", i))
		sy, _ := res.Output(fmt.Sprintf("c%d/y", i))
		if cnt.Est.Value > 0 {
			out[i] = [2]float64{sx.Est.Value / cnt.Est.Value, sy.Est.Value / cnt.Est.Value}
		}
	}
	return out
}

// CentroidShift is the user-defined quality metric: the max distance
// between corresponding centroids of two iterations.
func CentroidShift(a, b [][2]float64) float64 {
	worst := 0.0
	for i := range a {
		if i >= len(b) {
			break
		}
		dx, dy := a[i][0]-b[i][0], a[i][1]-b[i][1]
		if d := math.Sqrt(dx*dx + dy*dy); d > worst {
			worst = d
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// Video encoding (user-defined approximation)
// ---------------------------------------------------------------------------

// VideoData generates a synthetic movie: one line per frame,
// "frame<TAB>complexity" with scene-correlated complexity (consecutive
// frames belong to the same scene).
func VideoData(name string, blocks, framesPerBlock int, seed int64) *dfs.File {
	gen := func(idx int, r dfs.RandSource, bw io.Writer) error {
		rr := stats.NewRand(r.Int63())
		complexity := 50 + rr.Float64()*100
		for i := 0; i < framesPerBlock; i++ {
			if rr.Float64() < 0.02 { // scene cut
				complexity = 50 + rr.Float64()*100
			}
			c := complexity * (0.9 + 0.2*rr.Float64())
			if _, err := fmt.Fprintf(bw, "f%d\t%.2f\n", idx*framesPerBlock+i, c); err != nil {
				return err
			}
		}
		return nil
	}
	return dfs.GeneratedFile(name, blocks, seed, int64(framesPerBlock)*16, int64(framesPerBlock), gen)
}

// encodeFrame is the synthetic encoding kernel: `passes` motion-search
// passes over the frame. More passes cost proportionally more compute
// — reported as work units for the job's meter — and yield a better
// (higher) quality score with diminishing returns.
func encodeFrame(complexity float64, passes int) (quality, bits, work float64) {
	work = complexity * float64(passes) * 40 // motion-search inner loop
	quality = 100 * (1 - math.Exp(-0.8*float64(passes)))
	bits = complexity * 100 / float64(passes)
	return quality, bits, work
}

// videoMapper encodes each frame with the given number of passes and
// emits aggregate quality/bits/frame counters. The kernel declares its
// motion-search work to the meter, so cheaper settings deterministically
// cost less compute.
func videoMapper(passes int) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
		parts := strings.SplitN(rec.Value, "\t", 2)
		if len(parts) != 2 {
			return
		}
		c, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return
		}
		q, b, work := encodeFrame(c, passes)
		if ch, ok := emit.(vtime.Charger); ok {
			ch.ChargeCompute(work)
		}
		emit.Emit("quality", q)
		emit.Emit("bits", b)
		emit.Emit("frames", 1)
	})
}

// VideoEncodingConfig sets the precise and approximate encoder
// settings and the fraction of tasks encoded approximately.
type VideoEncodingConfig struct {
	PrecisePasses int     // default 6
	ApproxPasses  int     // default 2
	ApproxRatio   float64 // fraction of tasks using the approximate encoder
}

// VideoEncoding builds the encoding job with user-defined
// approximation: a fraction of the map tasks encode with the cheap
// setting. Quality loss is the user's own metric (average quality of
// the output), not a statistical bound.
func VideoEncoding(input *dfs.File, cfg VideoEncodingConfig, opts Options) *mapreduce.Job {
	if cfg.PrecisePasses <= 0 {
		cfg.PrecisePasses = 6
	}
	if cfg.ApproxPasses <= 0 {
		cfg.ApproxPasses = 2
	}
	precise := func() mapreduce.Mapper { return videoMapper(cfg.PrecisePasses) }
	approxV := func() mapreduce.Mapper { return videoMapper(cfg.ApproxPasses) }
	return &mapreduce.Job{
		Name:         "VideoEncoding",
		Input:        input,
		Format:       mapreduce.TextInputFormat{},
		NewMapperFor: approx.PerTaskMappers(cfg.ApproxRatio, opts.Seed, precise, approxV),
		NewReduce:    func(int) mapreduce.ReduceLogic { return mapreduce.SumReduce() },
		Reduces:      opts.Reduces,
		Cost:         opts.Cost,
		Seed:         opts.Seed,
		SleepIdle:    opts.SleepIdle,
		Barrier:      opts.Barrier,
		Speculation:  opts.Speculation,
	}
}
