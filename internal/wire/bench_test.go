package wire

import (
	"io"
	"testing"
)

// jobFrameEncodeAllocBaseline is the recorded allocs-per-encode of a
// representative 3-estimate job frame into a reused buffer: zero. The
// encode path must stay append-only — any per-frame allocation here is
// multiplied by every snapshot of every job the daemon serves.
// Re-record deliberately if the frame layout changes;
// TestFrameEncodeAllocGuard fails CI when the live number drifts.
const jobFrameEncodeAllocBaseline = 0

// TestFrameEncodeAllocGuard is the allocation regression guard for
// binary frame encoding, run by the CI bench job (same pattern as the
// shuffle-arena guard in internal/mapreduce).
func TestFrameEncodeAllocGuard(t *testing.T) {
	jf := sampleJobFrame()
	wf := sampleWindowFrame()
	buf := make([]byte, 0, 1024)
	jobAllocs := testing.AllocsPerRun(100, func() {
		buf = AppendJobFrame(buf[:0], jf)
	})
	if jobAllocs > jobFrameEncodeAllocBaseline {
		t.Errorf("job frame encode allocates %.0f times per frame, recorded baseline is %d",
			jobAllocs, jobFrameEncodeAllocBaseline)
	}
	winAllocs := testing.AllocsPerRun(100, func() {
		buf = AppendWindowFrame(buf[:0], wf)
	})
	if winAllocs > jobFrameEncodeAllocBaseline {
		t.Errorf("window frame encode allocates %.0f times per frame, recorded baseline is %d",
			winAllocs, jobFrameEncodeAllocBaseline)
	}
}

// TestMulticastEncodeOnce proves the encode-once contract at the wire
// layer: fanning one encoded frame out to any number of subscribers
// performs zero additional encodes and zero per-subscriber encoding
// allocations — the subscriber count multiplies only cheap writes.
func TestMulticastEncodeOnce(t *testing.T) {
	f := sampleJobFrame()
	for _, subs := range []int{1, 64} {
		before := Encodes()
		payload := AppendJobFrame(make([]byte, 0, 1024), f) // produce once
		for i := 0; i < subs; i++ {
			if err := WriteFrame(io.Discard, payload); err != nil {
				t.Fatal(err)
			}
		}
		if got := Encodes() - before; got != 1 {
			t.Fatalf("%d subscribers cost %d encodes, want exactly 1", subs, got)
		}
	}
}

func BenchmarkJobFrameEncode(b *testing.B) {
	f := sampleJobFrame()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendJobFrame(buf[:0], f)
	}
}

func BenchmarkWindowFrameEncode(b *testing.B) {
	f := sampleWindowFrame()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendWindowFrame(buf[:0], f)
	}
}

func BenchmarkJobFrameDecode(b *testing.B) {
	payload := AppendJobFrame(nil, sampleJobFrame())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeJobFrame(payload); err != nil {
			b.Fatal(err)
		}
	}
}
