// Package wire is the compact binary frame format of the approxd
// snapshot/stream fan-out path.
//
// The HTTP/JSON stream endpoints re-encoded every frame once per
// subscriber; at fan-out that makes encoding the dominant serving
// cost. This format is built to be encoded exactly once per sequence
// number by the producer and then shared, as raw bytes, across every
// subscriber of a job or stream:
//
//   - Canonical: one valid encoding per frame value. Encoding is a
//     single code path, decoding rejects trailing bytes, so
//     encode(decode(b)) == b and byte comparison is semantic
//     comparison. That is what lets recovery and shard-count
//     experiments diff streams with cmp/bytes.Equal.
//   - Self-describing: every payload starts with magic, version, and a
//     frame kind, so a reader on the wrong endpoint fails loudly
//     instead of misparsing.
//   - Length-prefixed: stream transport is a 4-byte little-endian
//     payload length followed by the payload, so readers never need to
//     parse ahead to find frame boundaries.
//
// Scalars: non-negative counters use uvarint, signed counters use
// zigzag varint, floats are the 8 little-endian bytes of their IEEE754
// bit pattern (NaN/Inf round-trip losslessly; the JSON -1 sentinel
// convention is applied by the caller before encoding so both
// representations of a frame agree), strings are uvarint length plus
// bytes, and booleans pack into one flags byte per struct.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

const (
	// Magic tags every payload; it deliberately differs from '{' so a
	// JSON reader pointed at a binary stream fails immediately.
	Magic = 0xA9
	// Version of the payload layout.
	Version = 1

	// KindJob is a batch-job snapshot frame (WireFrame equivalent).
	KindJob = 0x01
	// KindWindow is a streaming-plane window frame (WireWindow equivalent).
	KindWindow = 0x02
)

// MaxFrameSize bounds a length-prefixed payload on the read side: far
// above any real frame, far below a memory-exhaustion header.
const MaxFrameSize = 16 << 20

// ContentType is the negotiated media type of a binary frame stream.
// Clients request it via the Accept header; servers that honor it echo
// it back as Content-Type, and fall back to application/jsonl.
const ContentType = "application/x-approx-frame"

// encodes counts Append*Frame calls process-wide. The encode-once
// multicast contract is observable: deliveries to any number of
// subscribers must not move this counter, only frame production may.
var encodes atomic.Uint64

// Encodes reports the number of binary frame encodes performed by this
// process. Tests and benchmarks diff it around a fan-out to prove
// O(1) encodes per sequence number regardless of subscriber count.
func Encodes() uint64 { return encodes.Load() }

// Estimate mirrors one jobserver.WireEstimate.
type Estimate struct {
	Key        string
	Value      float64
	Epsilon    float64
	Confidence float64
	Lo         float64
	Hi         float64
	Exact      bool
	Unbounded  bool
}

// JobFrame mirrors one jobserver.WireFrame.
type JobFrame struct {
	Seq       int
	T         float64
	Status    string
	Final     bool
	Estimates []Estimate
}

// WindowFrame mirrors one jobserver.WireWindow.
type WindowFrame struct {
	Seq        int
	Status     string
	Final      bool
	Index      int64
	Start      float64
	End        float64
	Records    int64
	Strata     int
	Processed  int
	Folded     int64
	Sampled    int64
	Capacity   int
	KeepFrac   float64
	Degraded   bool
	Partial    bool
	Exact      bool
	Latency    float64
	Value      float64
	Epsilon    float64
	Confidence float64
	Unbounded  bool
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendJobFrame appends the canonical encoding of f to dst and
// returns the extended slice. It allocates only when dst lacks
// capacity, so a producer reusing a scratch buffer encodes
// allocation-free except for the final retained copy.
func AppendJobFrame(dst []byte, f *JobFrame) []byte {
	encodes.Add(1)
	dst = append(dst, Magic, Version, KindJob)
	dst = binary.AppendUvarint(dst, uint64(f.Seq))
	dst = appendFloat(dst, f.T)
	dst = appendString(dst, f.Status)
	var flags byte
	if f.Final {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(f.Estimates)))
	for i := range f.Estimates {
		e := &f.Estimates[i]
		dst = appendString(dst, e.Key)
		dst = appendFloat(dst, e.Value)
		dst = appendFloat(dst, e.Epsilon)
		dst = appendFloat(dst, e.Confidence)
		dst = appendFloat(dst, e.Lo)
		dst = appendFloat(dst, e.Hi)
		var ef byte
		if e.Exact {
			ef |= 1
		}
		if e.Unbounded {
			ef |= 2
		}
		dst = append(dst, ef)
	}
	return dst
}

// AppendWindowFrame appends the canonical encoding of f to dst.
func AppendWindowFrame(dst []byte, f *WindowFrame) []byte {
	encodes.Add(1)
	dst = append(dst, Magic, Version, KindWindow)
	dst = binary.AppendUvarint(dst, uint64(f.Seq))
	dst = appendString(dst, f.Status)
	var flags byte
	if f.Final {
		flags |= 1
	}
	if f.Degraded {
		flags |= 2
	}
	if f.Partial {
		flags |= 4
	}
	if f.Exact {
		flags |= 8
	}
	if f.Unbounded {
		flags |= 16
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, f.Index)
	dst = appendFloat(dst, f.Start)
	dst = appendFloat(dst, f.End)
	dst = binary.AppendVarint(dst, f.Records)
	dst = binary.AppendUvarint(dst, uint64(f.Strata))
	dst = binary.AppendUvarint(dst, uint64(f.Processed))
	dst = binary.AppendVarint(dst, f.Folded)
	dst = binary.AppendVarint(dst, f.Sampled)
	dst = binary.AppendUvarint(dst, uint64(f.Capacity))
	dst = appendFloat(dst, f.KeepFrac)
	dst = appendFloat(dst, f.Latency)
	dst = appendFloat(dst, f.Value)
	dst = appendFloat(dst, f.Epsilon)
	dst = appendFloat(dst, f.Confidence)
	return dst
}

// reader is a bounds-checked cursor over one payload.
type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or malformed %s at offset %d", what, r.pos)
	}
}

func (r *reader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) float(what string) float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.pos:]))
	r.pos += 8
	return v
}

func (r *reader) string(what string) string {
	n := r.uvarint(what + " length")
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.pos) {
		r.fail(what)
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// header validates magic/version and returns the frame kind.
func (r *reader) header() byte {
	m := r.byte("magic")
	v := r.byte("version")
	k := r.byte("kind")
	if r.err != nil {
		return 0
	}
	if m != Magic {
		r.err = fmt.Errorf("wire: bad magic 0x%02x (want 0x%02x)", m, Magic)
		return 0
	}
	if v != Version {
		r.err = fmt.Errorf("wire: unsupported version %d (want %d)", v, Version)
		return 0
	}
	return k
}

func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after frame", len(r.b)-r.pos)
	}
	return nil
}

// Kind inspects a payload's header and reports its frame kind without
// decoding the body.
func Kind(payload []byte) (byte, error) {
	r := &reader{b: payload}
	k := r.header()
	if r.err != nil {
		return 0, r.err
	}
	return k, nil
}

// DecodeJobFrame decodes one canonical KindJob payload. The whole
// payload must be consumed; trailing bytes are an error.
func DecodeJobFrame(payload []byte) (*JobFrame, error) {
	r := &reader{b: payload}
	if k := r.header(); r.err == nil && k != KindJob {
		return nil, fmt.Errorf("wire: kind 0x%02x is not a job frame", k)
	}
	f := &JobFrame{}
	f.Seq = int(r.uvarint("seq"))
	f.T = r.float("t")
	f.Status = r.string("status")
	flags := r.byte("flags")
	f.Final = flags&1 != 0
	n := r.uvarint("estimate count")
	if r.err == nil && n > uint64(len(payload)) {
		// Each estimate is >1 byte, so a count beyond the payload length
		// is corrupt; reject before allocating.
		return nil, fmt.Errorf("wire: estimate count %d exceeds payload", n)
	}
	if r.err == nil && n > 0 {
		f.Estimates = make([]Estimate, n)
		for i := range f.Estimates {
			e := &f.Estimates[i]
			e.Key = r.string("estimate key")
			e.Value = r.float("estimate value")
			e.Epsilon = r.float("estimate epsilon")
			e.Confidence = r.float("estimate confidence")
			e.Lo = r.float("estimate lo")
			e.Hi = r.float("estimate hi")
			ef := r.byte("estimate flags")
			e.Exact = ef&1 != 0
			e.Unbounded = ef&2 != 0
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeWindowFrame decodes one canonical KindWindow payload.
func DecodeWindowFrame(payload []byte) (*WindowFrame, error) {
	r := &reader{b: payload}
	if k := r.header(); r.err == nil && k != KindWindow {
		return nil, fmt.Errorf("wire: kind 0x%02x is not a window frame", k)
	}
	f := &WindowFrame{}
	f.Seq = int(r.uvarint("seq"))
	f.Status = r.string("status")
	flags := r.byte("flags")
	f.Final = flags&1 != 0
	f.Degraded = flags&2 != 0
	f.Partial = flags&4 != 0
	f.Exact = flags&8 != 0
	f.Unbounded = flags&16 != 0
	f.Index = r.varint("index")
	f.Start = r.float("start")
	f.End = r.float("end")
	f.Records = r.varint("records")
	f.Strata = int(r.uvarint("strata"))
	f.Processed = int(r.uvarint("processed"))
	f.Folded = r.varint("folded")
	f.Sampled = r.varint("sampled")
	f.Capacity = int(r.uvarint("capacity"))
	f.KeepFrac = r.float("keepFrac")
	f.Latency = r.float("latency")
	f.Value = r.float("value")
	f.Epsilon = r.float("epsilon")
	f.Confidence = r.float("confidence")
	if err := r.finish(); err != nil {
		return nil, err
	}
	return f, nil
}

// WriteFrame writes one length-prefixed payload: 4-byte little-endian
// length, then the payload bytes.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(payload), MaxFrameSize)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload. io.EOF at a frame
// boundary is returned as-is (clean end of stream); a partial header
// or body reports io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("wire: torn frame header: %w", err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame length %d exceeds max %d", n, MaxFrameSize)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("wire: torn frame body: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	return payload, nil
}
