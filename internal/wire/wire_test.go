package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func sampleJobFrame() *JobFrame {
	return &JobFrame{
		Seq:    7,
		T:      123.25,
		Status: "running",
		Estimates: []Estimate{
			{Key: "enwiki", Value: 1234.5, Epsilon: 12.5, Confidence: 0.95, Lo: 1222, Hi: 1247, Exact: false},
			{Key: "dewiki", Value: 88, Epsilon: 0, Confidence: 0.95, Lo: 88, Hi: 88, Exact: true},
			{Key: "frwiki", Value: 0, Epsilon: -1, Confidence: 0.95, Lo: 0, Hi: 0, Unbounded: true},
		},
	}
}

func sampleWindowFrame() *WindowFrame {
	return &WindowFrame{
		Seq: 4, Status: "running", Index: 4, Start: 20, End: 25,
		Records: 2500, Strata: 3, Processed: 3, Folded: 2500, Sampled: 640,
		Capacity: 256, KeepFrac: 0.25, Degraded: true, Latency: 0.012,
		Value: 4096.5, Epsilon: 41.25, Confidence: 0.95,
	}
}

func TestJobFrameRoundTrip(t *testing.T) {
	f := sampleJobFrame()
	f.Final = true
	buf := AppendJobFrame(nil, f)
	got, err := DecodeJobFrame(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
	// Canonicality: re-encoding the decoded value reproduces the bytes.
	if again := AppendJobFrame(nil, got); !bytes.Equal(again, buf) {
		t.Fatal("re-encode of decoded frame differs from original bytes")
	}
}

func TestWindowFrameRoundTrip(t *testing.T) {
	f := sampleWindowFrame()
	buf := AppendWindowFrame(nil, f)
	got, err := DecodeWindowFrame(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
	if again := AppendWindowFrame(nil, got); !bytes.Equal(again, buf) {
		t.Fatal("re-encode of decoded frame differs from original bytes")
	}
}

// Unlike JSON, the binary format carries NaN and infinities natively;
// the frame producer may apply the -1 sentinel for parity with the
// JSON view, but the format itself must not corrupt the bits.
func TestNonFiniteFloatsRoundTrip(t *testing.T) {
	f := &JobFrame{Status: "running", Estimates: []Estimate{{
		Key: "k", Value: math.NaN(), Epsilon: math.Inf(1), Lo: math.Inf(-1),
	}}}
	got, err := DecodeJobFrame(AppendJobFrame(nil, f))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	e := got.Estimates[0]
	if math.Float64bits(e.Value) != math.Float64bits(math.NaN()) {
		t.Fatalf("NaN bits corrupted: %x", math.Float64bits(e.Value))
	}
	if !math.IsInf(e.Epsilon, 1) || !math.IsInf(e.Lo, -1) {
		t.Fatalf("infinities corrupted: eps=%v lo=%v", e.Epsilon, e.Lo)
	}
}

func TestKindDispatch(t *testing.T) {
	jb := AppendJobFrame(nil, sampleJobFrame())
	wb := AppendWindowFrame(nil, sampleWindowFrame())
	if k, err := Kind(jb); err != nil || k != KindJob {
		t.Fatalf("Kind(job) = %v, %v", k, err)
	}
	if k, err := Kind(wb); err != nil || k != KindWindow {
		t.Fatalf("Kind(window) = %v, %v", k, err)
	}
	if _, err := DecodeJobFrame(wb); err == nil {
		t.Fatal("decoding a window payload as a job frame must fail")
	}
	if _, err := DecodeWindowFrame(jb); err == nil {
		t.Fatal("decoding a job payload as a window frame must fail")
	}
}

// Every malformed payload must be rejected, never misparsed: bad
// magic, bad version, every truncation point, and trailing garbage.
func TestDecodeRejectsCorruption(t *testing.T) {
	buf := AppendJobFrame(nil, sampleJobFrame())
	if _, err := DecodeJobFrame(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	bad := bytes.Clone(buf)
	bad[0] = '{'
	if _, err := DecodeJobFrame(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = bytes.Clone(buf)
	bad[1] = Version + 1
	if _, err := DecodeJobFrame(bad); err == nil {
		t.Fatal("future version accepted")
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeJobFrame(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(buf))
		}
	}
	if _, err := DecodeJobFrame(append(bytes.Clone(buf), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestLengthPrefixedFraming(t *testing.T) {
	var stream bytes.Buffer
	frames := [][]byte{
		AppendJobFrame(nil, sampleJobFrame()),
		AppendWindowFrame(nil, sampleWindowFrame()),
		AppendJobFrame(nil, &JobFrame{Seq: 9, Status: "done", Final: true}),
	}
	for _, f := range frames {
		if err := WriteFrame(&stream, f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	r := bytes.NewReader(stream.Bytes())
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d bytes differ", i)
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end of stream: got %v, want io.EOF", err)
	}
	// A torn tail (partial header or body) must not look like EOF.
	torn := stream.Bytes()[:stream.Len()-3]
	r = bytes.NewReader(torn)
	var err error
	for err == nil {
		_, err = ReadFrame(r)
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("torn tail reported as clean EOF")
	}
	// An absurd length prefix is rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// The Encodes counter must move once per produced frame and not at
// all for reads — the observable half of the encode-once contract.
func TestEncodesCounter(t *testing.T) {
	buf := AppendJobFrame(nil, sampleJobFrame())
	before := Encodes()
	for i := 0; i < 50; i++ {
		if _, err := DecodeJobFrame(buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := Encodes(); got != before {
		t.Fatalf("decoding moved the encode counter by %d", got-before)
	}
	AppendJobFrame(buf[:0], sampleJobFrame())
	if got := Encodes(); got != before+1 {
		t.Fatalf("one encode moved the counter by %d", got-before)
	}
}
