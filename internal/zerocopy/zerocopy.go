// Package zerocopy holds the one unsafe conversion the data plane is
// allowed: viewing a byte slice as a string without copying. The
// framework uses it for records and interned keys whose lifetime rules
// are documented at the call sites (Hadoop-style object reuse: a view
// over a reusable buffer is only valid until the buffer's owner next
// writes it). Code outside the record hot path should use ordinary
// string conversions.
package zerocopy

import "unsafe"

// String returns a string view sharing b's backing array. The caller
// must guarantee b is not mutated while the string is reachable, or
// must bound the string's lifetime to the window before the next
// mutation (the record-reader contract).
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}
