package core

import "fmt"

// fmtSscan is a tiny indirection so tests read naturally.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }
