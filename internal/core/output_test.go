package core

import (
	"io"
	"strings"
	"testing"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

func TestStoreResult(t *testing.T) {
	sys := testSystem()
	res := &mapreduce.Result{
		Job: "wordcount",
		Outputs: []mapreduce.KeyEstimate{
			{Key: "alpha", Est: stats.Estimate{Value: 10, Err: 1, Conf: 0.95}},
			{Key: "beta", Est: stats.Estimate{Value: 20, Err: 2, Conf: 0.95}},
		},
	}
	f, err := sys.StoreResult(res, "")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "wordcount.out" {
		t.Errorf("name = %q", f.Name)
	}
	got, err := sys.File("wordcount.out")
	if err != nil || got != f {
		t.Fatalf("lookup: %v", err)
	}
	rc := f.Blocks[0].Open()
	data, _ := io.ReadAll(rc)
	rc.Close()
	if !strings.Contains(string(data), "alpha\t10\t1\t0.95") {
		t.Errorf("content: %q", data)
	}
	// Replicas assigned for locality.
	if len(f.Blocks[0].Replicas) == 0 {
		t.Error("output blocks should be replicated")
	}
	// Empty results still materialize.
	ef, err := sys.StoreResult(&mapreduce.Result{Job: "empty"}, "custom.out")
	if err != nil || len(ef.Blocks) != 1 {
		t.Fatalf("empty result: %v %v", ef, err)
	}
	// Duplicate name fails via the NameNode.
	if _, err := sys.StoreResult(res, "wordcount.out"); err == nil {
		t.Error("duplicate output name should fail")
	}
}

// TestEndToEndPipeline runs job -> result -> DFS output -> a second
// job reading that output: the full Figure 4 loop.
func TestEndToEndPipeline(t *testing.T) {
	sys := testSystem()
	input := countFile()
	res, err := sys.Run(countJob(input))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.StoreResult(res, "stage1.out")
	if err != nil {
		t.Fatal(err)
	}
	// Second job: sum the stage-1 values (all 1000) across keys.
	second := &mapreduce.Job{
		Name:  "stage2",
		Input: out,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
				fields := strings.Split(rec.Value, "\t")
				if len(fields) >= 2 {
					var v float64
					if _, err := fmtSscan(fields[1], &v); err == nil {
						emit.Emit("grand-total", v)
					}
				}
			})
		},
		NewReduce: func(int) mapreduce.ReduceLogic { return mapreduce.SumReduce() },
	}
	res2, err := sys.Run(second)
	if err != nil {
		t.Fatal(err)
	}
	total, ok := res2.Output("grand-total")
	if !ok || !stats.AlmostEqual(total.Est.Value, 4000, 1e-9) {
		t.Errorf("grand total = %+v ok=%v, want 4000", total, ok)
	}
}
