// Package core composes the ApproxHadoop system — the paper's primary
// contribution — out of the substrates: the dfs namespace, the cluster
// simulator, the mapreduce runtime and the approx layer. It provides
// the paper's job-submission interface (Section 4.2): a job plus an
// Approximation spec stating either explicit dropping/sampling ratios
// or a target error bound at a confidence level, from which the right
// controller is assembled.
package core

import (
	"errors"
	"fmt"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
)

// Approximation is the paper's job-submission contract (Section 4.2):
// the user specifies either (1) explicit dropping and/or sampling
// ratios, for which ApproxHadoop computes error bounds, or (2) a
// target error bound at a confidence level, for which ApproxHadoop
// chooses the ratios online. The zero value means precise execution.
type Approximation struct {
	// Mode 1: explicit ratios.
	DropRatio   float64 // fraction of map tasks to drop, [0, 1)
	SampleRatio float64 // fraction of input items to process, (0, 1]

	// Mode 2: target error bound.
	TargetError   float64 // relative bound, e.g. 0.01 for ±1%
	AbsoluteError float64 // absolute half-width bound (optional)
	Confidence    float64 // default 0.95
	Extreme       bool    // min/max job: use the GEV controller
	StrictPerKey  bool    // bound every key, not just the worst-absolute one
	Pilot         bool    // bootstrap with a cheap pilot wave
	PilotRatio    float64 // pilot sampling ratio (default 0.01)
	PilotTasks    int     // pilot size (default: 1/4 of the map slots)
}

// precise reports whether the spec requests no approximation.
func (a Approximation) precise() bool {
	//lint:ignore nofloateq ratios are exact config literals; 1 is the no-sampling sentinel, never a computed value
	return a.DropRatio == 0 && (a.SampleRatio == 0 || a.SampleRatio == 1) &&
		a.TargetError == 0 && a.AbsoluteError == 0
}

// controller assembles the mapreduce.Controller for the spec.
func (a Approximation) controller() (mapreduce.Controller, error) {
	targetMode := a.TargetError > 0 || a.AbsoluteError > 0
	ratioMode := a.DropRatio > 0 || (a.SampleRatio > 0 && a.SampleRatio < 1)
	switch {
	case targetMode && ratioMode:
		return nil, errors.New("core: specify either explicit ratios or a target bound, not both")
	case targetMode && a.Extreme:
		return &approx.TargetErrorGEV{Target: a.TargetError, Absolute: a.AbsoluteError}, nil
	case targetMode:
		return &approx.TargetError{
			Target:     a.TargetError,
			Absolute:   a.AbsoluteError,
			Strict:     a.StrictPerKey,
			Pilot:      a.Pilot,
			PilotRatio: a.PilotRatio,
			PilotTasks: a.PilotTasks,
		}, nil
	case ratioMode:
		sr := a.SampleRatio
		if sr == 0 {
			sr = 1
		}
		return approx.NewStatic(sr, a.DropRatio), nil
	default:
		return nil, nil
	}
}

// System is an ApproxHadoop deployment: a cluster configuration plus a
// DFS namespace. Each submitted job runs on a fresh cluster timeline.
type System struct {
	cfg      cluster.Config
	nameNode *dfs.NameNode
}

// NewSystem builds a System over the given cluster configuration.
func NewSystem(cfg cluster.Config) *System {
	eng := cluster.New(cfg)
	servers := make([]string, 0, len(eng.Servers()))
	for _, s := range eng.Servers() {
		servers = append(servers, s.ID)
	}
	return &System{cfg: cfg, nameNode: dfs.NewNameNode(servers, 3)}
}

// Cluster returns the system's cluster configuration.
func (s *System) Cluster() cluster.Config { return s.cfg }

// Store registers a file with the NameNode (assigning block replicas
// across the simulated servers for locality-aware scheduling).
func (s *System) Store(f *dfs.File) error { return s.nameNode.Register(f) }

// File looks up a stored file by name.
func (s *System) File(name string) (*dfs.File, error) { return s.nameNode.File(name) }

// Files lists stored file names.
func (s *System) Files() []string { return s.nameNode.List() }

// Run executes a fully-specified job on a fresh cluster.
func (s *System) Run(job *mapreduce.Job) (*mapreduce.Result, error) {
	eng := cluster.New(s.cfg)
	return mapreduce.Run(eng, job)
}

// Submit applies an Approximation spec to the job and runs it: the
// paper's submission interface. The job's Controller must be unset —
// Submit owns that decision. A non-nil spec controller also forces the
// sampling input format when the job did not set one, so explicit
// SampleRatio specs actually sample.
func (s *System) Submit(job *mapreduce.Job, spec Approximation) (*mapreduce.Result, error) {
	if job.Controller != nil {
		return nil, errors.New("core: job already has a controller; use Run")
	}
	if spec.Confidence > 0 {
		job.Confidence = spec.Confidence
	}
	ctl, err := spec.controller()
	if err != nil {
		return nil, err
	}
	job.Controller = ctl
	if ctl != nil && job.Format == nil {
		job.Format = approx.ApproxTextInput{}
	}
	return s.Run(job)
}

// RunPair executes the job precisely and under the given spec on
// identical data, returning both results — the evaluation idiom used
// throughout Section 5 (actual error = approximate vs precise).
func (s *System) RunPair(build func() *mapreduce.Job, spec Approximation) (precise, apx *mapreduce.Result, err error) {
	precise, err = s.Run(build())
	if err != nil {
		return nil, nil, fmt.Errorf("core: precise run: %w", err)
	}
	if spec.precise() {
		return precise, precise, nil
	}
	apx, err = s.Submit(build(), spec)
	if err != nil {
		return nil, nil, fmt.Errorf("core: approximate run: %w", err)
	}
	return precise, apx, nil
}
