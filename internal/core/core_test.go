package core

import (
	"approxhadoop/internal/stats"
	"math"
	"strings"
	"testing"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
)

func testSystem() *System {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 4
	return NewSystem(cfg)
}

func countFile() *dfs.File {
	var sb strings.Builder
	for i := 0; i < 4000; i++ {
		sb.WriteString("k")
		sb.WriteByte(byte('0' + i%4))
		sb.WriteString(" 1\n")
	}
	return dfs.SplitText("counts.txt", []byte(sb.String()), 2048)
}

func countJob(input *dfs.File) *mapreduce.Job {
	return &mapreduce.Job{
		Name:  "count",
		Input: input,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
				fields := strings.Fields(rec.Value)
				if len(fields) == 2 {
					emit.Emit(fields[0], 1)
				}
			})
		},
		NewReduce: func(int) mapreduce.ReduceLogic { return approx.NewMultiStageReducer(approx.OpSum) },
		Combine:   true,
		Seed:      3,
	}
}

func TestSystemStoreAndRun(t *testing.T) {
	sys := testSystem()
	input := countFile()
	if err := sys.Store(input); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.File("counts.txt"); err != nil {
		t.Fatal(err)
	}
	if files := sys.Files(); len(files) != 1 {
		t.Errorf("Files = %v", files)
	}
	if sys.Cluster().Servers != 4 {
		t.Errorf("cluster config lost")
	}
	res, err := sys.Run(countJob(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
	for _, o := range res.Outputs {
		if !stats.AlmostEqual(o.Est.Value, 1000, 1e-9) || !o.Exact {
			t.Errorf("%s = %+v, want exactly 1000", o.Key, o.Est)
		}
	}
}

func TestSubmitRatios(t *testing.T) {
	sys := testSystem()
	input := countFile()
	res, err := sys.Submit(countJob(input), Approximation{SampleRatio: 0.25, DropRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsDropped == 0 {
		t.Error("expected drops")
	}
	if res.Counters.ItemsProcessed >= res.Counters.ItemsTotal {
		t.Error("expected sampling (Submit must install the sampling format)")
	}
	for _, o := range res.Outputs {
		if o.Est.Err <= 0 {
			t.Errorf("%s should carry a bound", o.Key)
		}
		if math.Abs(o.Est.Value-1000)/1000 > 0.5 {
			t.Errorf("%s = %v implausible", o.Key, o.Est.Value)
		}
	}
}

func TestSubmitTargetBound(t *testing.T) {
	sys := testSystem()
	res, err := sys.Submit(countJob(countFile()), Approximation{TargetError: 0.05, Confidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outputs {
		if !stats.AlmostEqual(o.Est.Conf, 0.99, 1e-12) {
			t.Errorf("confidence should propagate: %v", o.Est.Conf)
		}
	}
	worst := 0.0
	for _, o := range res.Outputs {
		if re := o.Est.RelErr(); re > worst && !math.IsInf(re, 1) {
			worst = re
		}
	}
	if worst > 0.05 {
		t.Errorf("bound %.4f exceeds target", worst)
	}
}

func TestSubmitValidation(t *testing.T) {
	sys := testSystem()
	if _, err := sys.Submit(countJob(countFile()),
		Approximation{SampleRatio: 0.5, TargetError: 0.01}); err == nil {
		t.Error("mixing modes should fail")
	}
	job := countJob(countFile())
	job.Controller = approx.NewStatic(1, 0)
	if _, err := sys.Submit(job, Approximation{}); err == nil {
		t.Error("pre-set controller should be rejected")
	}
}

func TestSubmitExtreme(t *testing.T) {
	spec := Approximation{TargetError: 0.1, Extreme: true}
	ctl, err := spec.controller()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctl.(*approx.TargetErrorGEV); !ok {
		t.Errorf("extreme spec should build a GEV controller, got %T", ctl)
	}
}

func TestRunPair(t *testing.T) {
	sys := testSystem()
	build := func() *mapreduce.Job { return countJob(countFile()) }
	precise, apx, err := sys.RunPair(build, Approximation{SampleRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if precise == apx {
		t.Fatal("distinct runs expected")
	}
	p, _ := precise.Output("k0")
	a, ok := apx.Output("k0")
	if !ok {
		t.Fatal("k0 missing")
	}
	if math.Abs(a.Est.Value-p.Est.Value)/p.Est.Value > 0.5 {
		t.Errorf("approx %v vs precise %v", a.Est.Value, p.Est.Value)
	}
	// Precise spec short-circuits.
	pr, ap, err := sys.RunPair(build, Approximation{})
	if err != nil || pr != ap {
		t.Errorf("precise spec should return the same result twice: %v", err)
	}
}

func TestApproximationPrecise(t *testing.T) {
	cases := []struct {
		spec Approximation
		want bool
	}{
		{Approximation{}, true},
		{Approximation{SampleRatio: 1}, true},
		{Approximation{SampleRatio: 0.5}, false},
		{Approximation{DropRatio: 0.1}, false},
		{Approximation{TargetError: 0.01}, false},
		{Approximation{AbsoluteError: 5}, false},
	}
	for _, c := range cases {
		if got := c.spec.precise(); got != c.want {
			t.Errorf("precise(%+v) = %v, want %v", c.spec, got, c.want)
		}
	}
}
