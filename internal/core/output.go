package core

import (
	"bytes"
	"fmt"

	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
)

// StoreResult completes the paper's Figure 4 pipeline: the reduce
// tasks' ApproxOutput is written back into the DFS namespace as an
// output file (one TSV block per reduce partition's key range,
// approximated here as fixed-size blocks). The file is named
// "<job>.out" unless name is non-empty.
func (s *System) StoreResult(res *mapreduce.Result, name string) (*dfs.File, error) {
	if name == "" {
		name = res.Job + ".out"
	}
	var buf bytes.Buffer
	if err := mapreduce.WriteTSV(&buf, res); err != nil {
		return nil, fmt.Errorf("core: serializing result: %w", err)
	}
	f := dfs.SplitText(name, buf.Bytes(), 1<<20)
	if len(f.Blocks) == 0 {
		// An empty result still materializes as an empty file.
		f.Blocks = append(f.Blocks, dfs.NewByteBlock(name, 0, nil, 0))
	}
	if err := s.Store(f); err != nil {
		return nil, err
	}
	return f, nil
}
