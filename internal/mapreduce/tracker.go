package mapreduce

import (
	"fmt"
	"math"
	"sort"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/vtime"
)

// taskState tracks the lifecycle of one logical map task.
type taskState int

const (
	taskPending taskState = iota
	taskRunning
	taskDone
	taskDropped
)

// reduceTask is the runtime state of one reduce partition.
type reduceTask struct {
	partition int
	logic     ReduceLogic
	server    *cluster.Server
	handle    *cluster.RunningTask
	busyUntil float64      // virtual time the reduce is busy through
	buffered  []*MapOutput // barrier mode only
	pairs     int64
	outputs   []KeyEstimate
}

// tracker is the JobTracker: it owns all scheduling state for one job.
type tracker struct {
	eng *cluster.Engine
	job *Job
	arb SlotArbiter

	blocks  []*dfs.Block
	order   []int // launch order (random unless SequentialOrder)
	nextOrd int
	retry   []int // failed tasks awaiting re-execution

	state     []taskState
	ratios    []float64                      // sampling ratio used per task
	attempts  map[int][]*cluster.RunningTask // running attempts per task
	durations []float64                      // virtual durations of completed attempts

	// Failure-aware scheduling state (RetryPolicy + DegradeToDrop).
	attemptsMade []int                      // launches (incl. retries) per task
	serverByID   map[string]*cluster.Server // engine servers by ID for replica liveness
	serverFaults map[string]int             // failed attempts attributed per server
	blacklist    map[string]bool            // servers removed from map scheduling
	backoffOut   int                        // retry timers not yet fired
	deadlineHit  bool                       // JobDeadline expired (DegradeToDrop mode)

	reduces     []*reduceTask
	reducesLeft int

	measures  []cluster.TaskMeasure
	counters  Counters
	launched  int
	completed int
	dropped   int
	maxLaunch int     // 0 = unlimited
	curRatio  float64 // ratio when controller declines to specify

	realSecs    float64
	fillQueued  bool
	finalizing  bool
	failErr     error
	result      *Result
	startTime   float64
	startEnergy float64
	startBreak  cluster.EnergyBreakdown
	onDone      func(*Result, error)
	doneFired   bool
	events      []Event // recorded when job.RecordTrace

	// Compute-plane state (see pool.go): launches decided during the
	// current scheduling pass await their map compute, which runs on
	// the worker pool; results apply in decide order at flush.
	pool    *computePool
	pending []*pendingLaunch
	// resCache holds the first computed result per task. executeMap is
	// a pure function of (job, block, ratio, seed) and the seed is
	// per-task, so retries and speculative re-attempts at the same
	// ratio reuse the computation instead of re-running the kernel.
	resCache map[int]cachedMap
}

// cachedMap is one memoized map computation.
type cachedMap struct {
	ratio float64
	res   *mapResult
}

// Run executes job on the simulated cluster and returns its result.
// The engine's virtual clock and energy accounting continue from their
// current values, so several jobs can share a timeline; most callers
// use a fresh engine per job.
func Run(eng *cluster.Engine, job *Job) (*Result, error) {
	h, err := Start(eng, job, StartOptions{})
	if err != nil {
		return nil, err
	}
	eng.Run()
	return h.Outcome()
}

// StartOptions configures how a job is attached to a shared engine.
type StartOptions struct {
	// Arbiter grants map slots; nil installs the single-job greedy
	// arbiter (whole cluster, replica-preferring placement).
	Arbiter SlotArbiter
	// OnDone, when set, is invoked exactly once on the scheduler
	// goroutine — in virtual-time order — when the job completes or
	// fails. Multi-job services use it to free admission capacity and
	// dispatch queued work at the correct virtual instant.
	OnDone func(*Result, error)
}

// Handle is the running-job handle returned by Start. Its methods must
// be called from the goroutine driving the engine (the virtual-time
// plane is single-threaded by design).
type Handle struct {
	t *tracker
}

// Job returns the job this handle tracks.
func (h *Handle) Job() *Job { return h.t.job }

// Done reports whether the job has completed or failed.
func (h *Handle) Done() bool { return h.t.result != nil || h.t.failErr != nil }

// Outcome returns the job's result once Done; calling it earlier
// yields a descriptive error.
func (h *Handle) Outcome() (*Result, error) {
	if h.t.failErr != nil {
		return nil, h.t.failErr
	}
	if h.t.result == nil {
		return nil, fmt.Errorf("mapreduce: job %q did not complete", h.t.job.Name)
	}
	return h.t.result, nil
}

// Progress reports the job's counters so far (a copy).
func (h *Handle) Progress() Counters { return h.t.counters }

// MapDemand returns the number of map tasks the job still wants to
// launch (pending, including queued retries). Arbiters use it to tell
// a hungry job from one that is merely waiting out its tail.
func (h *Handle) MapDemand() int { return h.t.pendingCount() }

// RunningAttempts returns the number of map attempts in flight.
func (h *Handle) RunningAttempts() int {
	n := 0
	for _, as := range h.t.attempts {
		n += len(as)
	}
	return n
}

// Kick schedules a scheduling pass for the job at the current virtual
// time. Arbiters call it when capacity frees for a job they previously
// told to wait.
func (h *Handle) Kick() { h.t.scheduleFill() }

// Cancel aborts the job at the current virtual time: running attempts
// are killed, its reduce slots are released, and Outcome reports a
// cancellation error.
func (h *Handle) Cancel() {
	if h.Done() {
		return
	}
	h.t.fail(fmt.Errorf("mapreduce: job %q canceled", h.t.job.Name))
}

// Start attaches a job to the engine without driving it: the tracker's
// events are scheduled on the engine's virtual timeline and the job
// makes progress whenever the caller pumps the engine (Run or Step).
// Many jobs may be started on one engine; the arbiter in opts decides
// how they share map slots.
func Start(eng *cluster.Engine, job *Job, opts StartOptions) (*Handle, error) {
	if err := job.Validate(eng); err != nil {
		return nil, err
	}
	t := &tracker{
		eng:          eng,
		job:          job,
		arb:          opts.Arbiter,
		onDone:       opts.OnDone,
		blocks:       job.Input.Blocks,
		attempts:     make(map[int][]*cluster.RunningTask),
		curRatio:     1,
		serverByID:   make(map[string]*cluster.Server),
		serverFaults: make(map[string]int),
		blacklist:    make(map[string]bool),
		resCache:     make(map[int]cachedMap),
	}
	if t.arb == nil {
		t.arb = newGreedyArbiter(eng)
	}
	workers := job.Workers
	if _, ok := job.Meter.(vtime.Forker); !ok {
		// A meter that cannot fork per-attempt children would be shared
		// across pool workers; run such jobs inline instead.
		workers = 1
	}
	t.pool = newComputePool(workers)
	n := len(t.blocks)
	t.state = make([]taskState, n)
	t.ratios = make([]float64, n)
	t.attemptsMade = make([]int, n)
	t.counters.MapsTotal = n
	for _, s := range eng.Servers() {
		t.serverByID[s.ID] = s
	}

	rng := stats.NewRand(job.Seed)
	if job.SequentialOrder {
		t.order = make([]int, n)
		for i := range t.order {
			t.order[i] = i
		}
	} else {
		// Random task order is required for the sampled map tasks to
		// form a valid first-stage cluster sample (Section 4.3).
		t.order = rng.Perm(n)
	}

	t.startTime = eng.Now()
	t.startEnergy = eng.EnergyWh()
	t.startBreak = eng.EnergyBreakdown()
	eng.Inject(job.Faults)
	if err := t.startReduces(); err != nil {
		t.pool.close()
		return nil, err
	}
	if job.Retry.JobDeadline > 0 {
		eng.After(job.Retry.JobDeadline, t.onDeadline)
	}
	if job.OnSnapshot != nil && job.SnapshotEvery > 0 && !job.Barrier {
		eng.After(job.SnapshotEvery, t.snapshotTick)
	}
	eng.At(eng.Now(), t.fill)
	return &Handle{t: t}, nil
}

// fireDone runs the end-of-job bookkeeping exactly once: the compute
// pool is torn down (late flushes fall back to inline execution) and
// the OnDone hook observes the outcome at the current virtual time.
func (t *tracker) fireDone() {
	if t.doneFired {
		return
	}
	t.doneFired = true
	t.pool.close()
	if t.onDone != nil {
		t.onDone(t.result, t.failErr)
	}
}

// startReduces places one reduce task per partition on servers with
// free reduce slots, round-robin.
func (t *tracker) startReduces() error {
	servers := t.eng.Servers()
	si := 0
	for p := 0; p < t.job.Reduces; p++ {
		var srv *cluster.Server
		for scan := 0; scan < len(servers); scan++ {
			cand := servers[si%len(servers)]
			si++
			if cand.FreeSlots(cluster.ReduceSlot) > 0 {
				srv = cand
				break
			}
		}
		if srv == nil {
			return fmt.Errorf("mapreduce: no reduce slot for partition %d", p)
		}
		r := &reduceTask{partition: p, logic: t.job.NewReduce(p), server: srv}
		part := p
		hostID := srv.ID
		r.handle = t.eng.StartOpenTask(srv, cluster.ReduceSlot, func(killed bool) {
			if killed {
				// Reduce state is not replicated; losing its server
				// loses the partition's accumulated shuffle, so the
				// job fails — even under DegradeToDrop, which bounds
				// lost map *inputs*, not lost reduce *state*
				// (documented limitation).
				t.fail(fmt.Errorf("mapreduce: reduce partition %d lost: server %s failed and reduce state is not replicated", part, hostID))
			}
		})
		t.reduces = append(t.reduces, r)
	}
	t.reducesLeft = len(t.reduces)
	return nil
}

// scheduleFill queues a scheduling pass at the current virtual time;
// passes are deduplicated so nested callbacks stay simple.
func (t *tracker) scheduleFill() {
	if t.fillQueued || t.failErr != nil {
		return
	}
	t.fillQueued = true
	t.eng.At(t.eng.Now(), func() {
		t.fillQueued = false
		t.fill()
	})
}

// fill runs one scheduling pass and then flushes the launches it
// decided through the compute pool. The split keeps all decisions on
// the virtual-time plane while batched map compute runs in parallel.
func (t *tracker) fill() {
	t.fillPass()
	t.flushLaunches()
}

// fillPass launches pending map tasks onto free slots, consults the
// controller, runs speculation, applies S3 policy, and checks for job
// completion.
func (t *tracker) fillPass() {
	if t.failErr != nil || t.finalizing {
		return
	}
	// Re-execute tasks lost to faults before new work, at their
	// original sampling ratio (Hadoop re-runs failed tasks without
	// consulting the job's approximation settings again).
	for len(t.retry) > 0 {
		idx := t.retry[0]
		if t.state[idx] != taskPending {
			t.retry = t.retry[1:]
			continue
		}
		if t.unrunnable(idx) {
			t.retry = t.retry[1:]
			if !t.degradeUnrunnable(idx) {
				return
			}
			continue
		}
		srv, wait := t.pickServer(t.blocks[idx])
		if srv == nil {
			if !wait {
				t.handleStall()
			}
			return
		}
		ratio := t.ratios[idx]
		if ratio == 0 {
			ratio = 1
		}
		t.retry = t.retry[1:]
		t.launch(idx, srv, ratio)
		if t.failErr != nil {
			return
		}
	}
	for t.nextOrd < len(t.order) {
		idx := t.order[t.nextOrd]
		if t.state[idx] != taskPending {
			t.nextOrd++
			continue
		}
		if t.unrunnable(idx) {
			if !t.degradeUnrunnable(idx) {
				return
			}
			t.nextOrd++
			continue
		}
		if t.maxLaunch > 0 && t.launched >= t.maxLaunch {
			t.dropAllPending()
			break
		}
		ratio := t.curRatio
		if t.job.Controller != nil {
			r, action := t.job.Controller.Plan(t.view())
			if action == PlanDefer && t.runningCount() == 0 {
				// Safety net: a defer with nothing in flight would
				// stall the job forever; run the task instead.
				action = PlanRun
			}
			switch action {
			case PlanDrop:
				t.dropTask(idx)
				t.nextOrd++
				continue
			case PlanDefer:
				t.maybeSpeculate()
				t.checkCompletion()
				return
			}
			if r > 0 {
				ratio = r
			}
		}
		srv, wait := t.pickServer(t.blocks[idx])
		if srv == nil {
			if !wait {
				t.handleStall()
			}
			break // no slot granted right now
		}
		t.launch(idx, srv, ratio)
		if t.failErr != nil {
			return
		}
		t.nextOrd++
	}
	if t.failErr != nil {
		return
	}
	t.maybeSpeculate()
	t.maybeSleepIdle()
	t.checkCompletion()
}

// pickServer requests a map slot from the arbiter for the given
// block, preferring its replica holders (data locality, like Hadoop's
// JobTracker) and excluding blacklisted servers. A nil server with
// wait=true means the arbiter applied backpressure and will kick the
// job when capacity frees; wait=false means no eligible server exists
// and stall handling applies.
func (t *tracker) pickServer(b *dfs.Block) (*cluster.Server, bool) {
	return t.arb.AcquireMap(SlotRequest{
		Job:      t.job,
		Prefer:   b.Replicas,
		Eligible: t.eligibleServer,
	})
}

// eligibleServer is the per-job server filter handed to the arbiter.
func (t *tracker) eligibleServer(s *cluster.Server) bool {
	return !t.blacklist[s.ID]
}

// serverAlive is the liveness predicate handed to dfs replica queries.
func (t *tracker) serverAlive(id string) bool {
	s, ok := t.serverByID[id]
	return ok && !s.Dead()
}

// unrunnable reports whether a task's block has lost every replica to
// server failures (blocks never registered with a NameNode have no
// placement to lose and are always runnable).
func (t *tracker) unrunnable(idx int) bool {
	return t.blocks[idx].Unrunnable(t.serverAlive)
}

// degradeUnrunnable resolves a task whose block has no surviving
// replica: degraded to a dropped cluster under DegradeToDrop (return
// true), otherwise a job failure (return false).
func (t *tracker) degradeUnrunnable(idx int) bool {
	if t.job.DegradeToDrop {
		t.degrade(idx, "")
		return true
	}
	b := t.blocks[idx]
	t.fail(fmt.Errorf("mapreduce: map task %d unrunnable: all %d replicas of block %s lost to server failures",
		idx, len(b.Replicas), b.ID()))
	return false
}

// degrade folds a pending task into the dropped-cluster count: the
// estimators treat it exactly like a deliberately dropped map, so its
// absence widens the confidence interval instead of failing the job.
func (t *tracker) degrade(idx int, server string) {
	if t.state[idx] != taskPending {
		return
	}
	t.state[idx] = taskDropped
	t.dropped++
	t.counters.MapsDegraded++
	t.emit(EventMapDegraded, idx, server, 0)
}

// anySchedulableServer reports whether some server can ever host map
// work again: alive and not blacklisted (asleep is fine — sleepers are
// woken on demand).
func (t *tracker) anySchedulableServer() bool {
	for _, s := range t.eng.Servers() {
		if !s.Dead() && !t.blacklist[s.ID] {
			return true
		}
	}
	return false
}

// wakeSleepers wakes alive, non-blacklisted servers put to S3 by
// SleepIdle; pending work (a retry after the map phase seemed over)
// needs their slots back. Reports whether any server was woken.
func (t *tracker) wakeSleepers() bool {
	woke := false
	for _, s := range t.eng.Servers() {
		if s.Asleep() && !s.Dead() && !t.blacklist[s.ID] {
			t.eng.Wake(s)
			woke = true
		}
	}
	return woke
}

// handleStall is called when pending tasks exist but no server could
// take one. If progress is still possible — attempts running, retry
// timers pending, or a sleeping server that can be woken — it waits
// (or wakes). Otherwise the job can never finish: under DegradeToDrop
// the pending tasks become statistically-bounded drops; otherwise the
// job fails with a clear error instead of stalling forever.
func (t *tracker) handleStall() {
	if t.runningCount() > 0 || t.backoffOut > 0 {
		return // in-flight work or a timer will trigger another pass
	}
	if t.wakeSleepers() {
		t.scheduleFill()
		return
	}
	if t.anySchedulableServer() {
		return
	}
	if t.job.DegradeToDrop {
		for idx, st := range t.state {
			if st == taskPending {
				t.degrade(idx, "")
			}
		}
		t.checkCompletion()
		return
	}
	alive := 0
	for _, s := range t.eng.Servers() {
		if !s.Dead() {
			alive++
		}
	}
	t.fail(fmt.Errorf("mapreduce: %d map tasks outstanding but no server can host them (%d alive, %d blacklisted)",
		t.pendingCount(), alive, len(t.blacklist)))
}

// noteServerFault attributes a failed attempt to its host and applies
// RetryPolicy.BlacklistAfter.
func (t *tracker) noteServerFault(s *cluster.Server) {
	t.serverFaults[s.ID]++
	ba := t.job.Retry.BlacklistAfter
	if ba > 0 && !t.blacklist[s.ID] && t.serverFaults[s.ID] >= ba {
		t.blacklist[s.ID] = true
		t.counters.ServersBlacklisted++
		t.emit(EventServerBlacklisted, -1, s.ID, 0)
	}
}

// rescheduleOrDegrade decides the fate of a task whose last running
// attempt was just lost to a fault: re-queue it (with optional
// exponential backoff) while the attempt budget lasts; past the
// budget, degrade to a drop or fail the job.
func (t *tracker) rescheduleOrDegrade(idx int) {
	if max := t.job.Retry.MaxAttemptsPerTask; max > 0 && t.attemptsMade[idx] >= max {
		if t.job.DegradeToDrop {
			t.state[idx] = taskPending
			t.degrade(idx, "")
			return
		}
		t.fail(fmt.Errorf("mapreduce: map task %d exhausted its %d attempts (RetryPolicy.MaxAttemptsPerTask)",
			idx, t.attemptsMade[idx]))
		return
	}
	t.state[idx] = taskPending
	t.counters.MapsRetried++
	t.emit(EventMapRetried, idx, "", 0)
	b := t.job.Retry.Backoff
	if b <= 0 {
		t.retry = append(t.retry, idx)
		return
	}
	exp := t.attemptsMade[idx] - 1
	if exp > 20 {
		exp = 20 // cap the doubling well below float overflow
	}
	delay := b * float64(int64(1)<<uint(exp))
	t.backoffOut++
	t.eng.After(delay, func() {
		t.backoffOut--
		if t.failErr != nil || t.state[idx] != taskPending {
			return
		}
		t.retry = append(t.retry, idx)
		t.scheduleFill()
	})
}

// onDeadline enforces RetryPolicy.JobDeadline: if the map phase is
// still running when the budget expires, the remaining tasks are cut
// off — degraded to drops under DegradeToDrop, a job error otherwise.
// The reduces then finalize from whatever completed in time.
func (t *tracker) onDeadline() {
	if t.failErr != nil || t.finalizing || t.result != nil {
		return
	}
	unfinished := t.pendingCount() + t.runningCount()
	if unfinished == 0 {
		return
	}
	if !t.job.DegradeToDrop {
		t.fail(fmt.Errorf("mapreduce: job deadline %gs exceeded with %d map tasks unfinished (RetryPolicy.JobDeadline)",
			t.job.Retry.JobDeadline, unfinished))
		return
	}
	t.deadlineHit = true
	for idx, st := range t.state {
		if st == taskPending {
			t.degrade(idx, "")
		}
	}
	for idx := 0; idx < len(t.state); idx++ {
		for _, a := range append([]*cluster.RunningTask(nil), t.attempts[idx]...) {
			t.eng.Kill(a)
		}
	}
	t.scheduleFill()
}

// launch decides a map task attempt: the slot is occupied and all
// bookkeeping done now, in virtual-time order, while the attempt's
// real compute is queued for the worker pool and applied at flush.
func (t *tracker) launch(idx int, srv *cluster.Server, ratio float64) {
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	t.ratios[idx] = ratio
	t.state[idx] = taskRunning
	t.launched++
	t.attemptsMade[idx]++
	t.emit(EventMapLaunched, idx, srv.ID, ratio)
	t.enqueueAttempt(idx, srv, ratio, false)
}

// enqueueAttempt occupies a map slot for one attempt of task idx and
// queues its compute. On a cache hit (an earlier attempt of the same
// task at the same ratio) the memoized result is reused — executeMap
// is pure, so re-running it could only waste cycles.
func (t *tracker) enqueueAttempt(idx int, srv *cluster.Server, ratio float64, spec bool) {
	pl := &pendingLaunch{idx: idx, ratio: ratio, spec: spec}
	//lint:ignore nofloateq the cached ratio is the verbatim float stored by a previous attempt of this task; retries and speculation re-use t.ratios[idx] unchanged
	if c, ok := t.resCache[idx]; ok && c.ratio == ratio {
		pl.res = c.res
	} else {
		job, block := t.job, t.blocks[idx]
		seed := job.Seed*1000003 + int64(idx)
		meter := vtime.Fork(job.Meter)
		hint := t.pairsHint()
		pl.run = func() (*mapResult, error) {
			return executeMap(job, block, idx, ratio, seed, meter, hint)
		}
	}
	var handle *cluster.RunningTask
	handle = t.eng.StartOpenTask(srv, cluster.MapSlot, func(killed bool) {
		t.onMapDone(idx, handle, pl.res, killed)
	})
	pl.handle = handle
	t.attempts[idx] = append(t.attempts[idx], handle)
	t.pending = append(t.pending, pl)
}

// pairsHint estimates the pair count of the next map attempt from
// completed maps, for emitter preallocation. It reads only
// decide-time scheduler state, so the hint — like everything else —
// is independent of pool size.
func (t *tracker) pairsHint() int {
	if t.counters.MapsCompleted == 0 {
		return 0
	}
	return int(t.counters.PairsShuffled / int64(t.counters.MapsCompleted))
}

// flushLaunches resolves the compute of every launch decided during
// the current pass (in parallel on the pool) and applies the results
// in decide order: realSecs accrual, duration perturbation draws, and
// completion events all happen in exactly the sequence the sequential
// simulator would produce, which is what makes pool size invisible to
// the virtual timeline.
func (t *tracker) flushLaunches() {
	if len(t.pending) == 0 {
		return
	}
	batch := t.pending
	t.pending = nil
	t.pool.runAll(batch)
	for _, pl := range batch {
		if t.failErr == nil && pl.err != nil {
			t.fail(pl.err)
		}
		if t.failErr != nil {
			t.eng.Kill(pl.handle) // no-op for attempts fail() already killed
			continue
		}
		if _, ok := t.resCache[pl.idx]; !ok {
			t.resCache[pl.idx] = cachedMap{ratio: pl.ratio, res: pl.res}
		}
		t.realSecs += pl.res.measure.RealSecs()
		dur := t.job.Cost.MapDuration(pl.res.measure)
		if !pl.spec {
			dur = t.eng.PerturbDuration(dur)
		}
		// A speculative re-execution does not re-roll the straggler
		// dice with the same bad luck; it keeps the unperturbed
		// duration.
		t.eng.FinishAfter(pl.handle, dur)
	}
}

// onMapDone handles completion or kill of one map attempt.
func (t *tracker) onMapDone(idx int, handle *cluster.RunningTask, res *mapResult, killed bool) {
	// Every attempt end releases its arbiter grant, even on the abort
	// path below — the engine has already freed the physical slot, and
	// multi-job arbiters kick waiting jobs from this notification.
	t.arb.ReleaseMap(t.job, handle.Server)
	if t.failErr != nil {
		return
	}
	// Remove this attempt from the task's running set.
	live := t.attempts[idx][:0]
	for _, a := range t.attempts[idx] {
		if a != handle {
			live = append(live, a)
		}
	}
	t.attempts[idx] = live

	if killed {
		if handle.Failed() && t.state[idx] == taskRunning {
			// Lost to a fault (transient task fault or server death),
			// not a deliberate kill: apply the retry policy, unless a
			// sibling attempt is still running.
			t.counters.MapsFailed++
			t.emit(EventMapFailed, idx, handle.Server.ID, 0)
			t.noteServerFault(handle.Server)
			if len(live) == 0 {
				t.rescheduleOrDegrade(idx)
			}
			t.scheduleFill()
			return
		}
		if t.deadlineHit && t.state[idx] == taskRunning {
			// Cut off by the job deadline: fold into the dropped-
			// cluster count rather than the controller-kill count.
			if len(live) == 0 {
				t.state[idx] = taskPending
				t.degrade(idx, handle.Server.ID)
			}
			t.scheduleFill()
			return
		}
		t.counters.MapsKilled++
		t.emit(EventMapKilled, idx, handle.Server.ID, 0)
		if t.state[idx] == taskRunning && len(live) == 0 {
			// Killed with no surviving attempt: the task is dropped.
			t.state[idx] = taskDropped
			t.dropped++
		}
		t.scheduleFill()
		return
	}
	if t.state[idx] == taskDone {
		// A speculative sibling already delivered; discard.
		t.scheduleFill()
		return
	}
	t.state[idx] = taskDone
	// Forget remaining attempts before killing them: the nested kill
	// callbacks must not re-filter the slice we are iterating.
	t.attempts[idx] = nil
	t.completed++
	t.emit(EventMapCompleted, idx, handle.Server.ID, t.ratios[idx])
	t.durations = append(t.durations, handle.Finish-handle.Start)
	t.measures = append(t.measures, res.measure)
	t.counters.MapsCompleted++
	t.counters.ItemsTotal += res.measure.Items
	t.counters.ItemsProcessed += res.measure.Processed
	t.counters.BytesRead += res.measure.Bytes
	t.counters.PairsShuffled += res.pairs
	// Kill losing speculative siblings.
	for _, a := range live {
		t.eng.Kill(a)
	}
	// Shuffle this task's outputs to every partition (the zero-pair
	// partitions still need the cluster's (M, m) for Equation 3).
	for p, out := range res.partitions {
		t.deliver(t.reduces[p], out)
	}
	if t.job.Controller != nil {
		t.applyDirective(t.job.Controller.Completed(t.view()))
	}
	t.scheduleFill()
}

// deliver hands one map output to a reduce task, accounting its
// processing cost on the virtual timeline (incremental mode) or
// buffering it (barrier mode).
func (t *tracker) deliver(r *reduceTask, out *MapOutput) {
	if t.job.Barrier {
		r.buffered = append(r.buffered, out)
		return
	}
	t.consume(r, out)
}

func (t *tracker) consume(r *reduceTask, out *MapOutput) {
	sz := out.ShuffleSize()
	t.counters.ShuffleBytes += sz
	totalShuffleBytes.Add(sz)
	t.job.Meter.Begin(vtime.OpReduce)
	r.logic.Consume(out)
	n := int64(out.PairLen())
	secs := t.job.Meter.End(vtime.OpReduce, n, 0)
	t.realSecs += secs
	r.pairs += n
	cost := t.job.Cost.ReduceDuration(n, secs)
	now := t.eng.Now()
	if r.busyUntil < now {
		r.busyUntil = now
	}
	r.busyUntil += cost
}

// applyDirective enacts a controller decision.
func (t *tracker) applyDirective(d Directive) {
	if d.Abort != nil {
		// A controller that concludes the job cannot meet its contract
		// (e.g. an infeasible deadline SLO) fails it with the
		// controller's descriptive error instead of guessing.
		t.fail(d.Abort)
		return
	}
	if d.SampleRatio > 0 {
		t.curRatio = math.Min(d.SampleRatio, 1)
	}
	if d.MaxLaunch > 0 {
		t.maxLaunch = d.MaxLaunch
	}
	if d.DropPending {
		t.dropAllPending()
	}
	if d.KillRunning {
		// Index order, not map order: kill callbacks reshape the
		// schedule and must fire deterministically.
		for idx := 0; idx < len(t.state); idx++ {
			for _, a := range append([]*cluster.RunningTask(nil), t.attempts[idx]...) {
				t.eng.Kill(a)
			}
		}
	}
}

func (t *tracker) dropTask(idx int) {
	if t.state[idx] != taskPending {
		return
	}
	t.state[idx] = taskDropped
	t.dropped++
	t.counters.MapsDropped++
	t.emit(EventMapDropped, idx, "", 0)
}

func (t *tracker) dropAllPending() {
	for idx, st := range t.state {
		if st == taskPending {
			t.dropTask(idx)
		}
	}
}

// maybeSpeculate launches duplicates of straggling maps when slots are
// idle and no pending work remains (Hadoop's speculative execution).
func (t *tracker) maybeSpeculate() {
	if !t.job.Speculation || t.pendingCount() > 0 || len(t.durations) < 3 {
		return
	}
	med := stats.Percentile(t.durations, 50)
	threshold := t.job.SpecFactor * med
	now := t.eng.Now()
	for idx, st := range t.state {
		if st != taskRunning || len(t.attempts[idx]) != 1 {
			continue
		}
		a := t.attempts[idx][0]
		if now-a.Start <= threshold {
			continue
		}
		srv, _ := t.pickServer(t.blocks[idx])
		if srv == nil {
			return
		}
		t.counters.MapsSpeculated++
		t.emit(EventMapSpeculated, idx, srv.ID, t.ratios[idx])
		t.enqueueAttempt(idx, srv, t.ratios[idx], true)
	}
}

// maybeSleepIdle powers down servers with no running work once no map
// launches remain (Section 5.4: dropping maps saves energy even when it
// cannot shorten a single-wave job).
func (t *tracker) maybeSleepIdle() {
	if !t.job.SleepIdle || t.pendingCount() > 0 {
		return
	}
	for _, s := range t.eng.Servers() {
		if !s.Asleep() && s.Busy(cluster.MapSlot) == 0 && s.Busy(cluster.ReduceSlot) == 0 {
			//lint:ignore errcheck Sleep fails only on a busy server and both slot classes were just checked idle
			_ = t.eng.Sleep(s)
		}
	}
}

func (t *tracker) pendingCount() int {
	n := 0
	for _, st := range t.state {
		if st == taskPending {
			n++
		}
	}
	return n
}

func (t *tracker) runningCount() int {
	n := 0
	for _, st := range t.state {
		if st == taskRunning {
			n++
		}
	}
	return n
}

// checkCompletion finalizes the reduces once every map task is done or
// dropped and no attempts remain in flight.
func (t *tracker) checkCompletion() {
	if t.finalizing || t.failErr != nil {
		return
	}
	if t.pendingCount() > 0 || t.runningCount() > 0 {
		return
	}
	t.finalizing = true
	t.counters.Waves = t.waves()
	view := t.estView()
	for _, r := range t.reduces {
		r := r
		if t.job.Barrier {
			for _, out := range r.buffered {
				t.consume(r, out)
			}
			r.buffered = nil
		}
		t.job.Meter.Begin(vtime.OpReduce)
		outs := r.logic.Finalize(view)
		fSecs := t.job.Meter.End(vtime.OpReduce, int64(len(outs)), 0)
		t.realSecs += fSecs
		r.outputs = outs
		finish := math.Max(t.eng.Now(), r.busyUntil) + t.job.Cost.ReduceDuration(0, fSecs)
		t.eng.At(finish, func() {
			t.eng.FinishTask(r.handle)
			t.emit(EventReduceFinished, r.partition, r.server.ID, 0)
			t.reducesLeft--
			if t.reducesLeft == 0 {
				t.completeJob()
			}
		})
	}
}

// waves estimates how many waves of map tasks the job ran.
func (t *tracker) waves() int {
	slots := t.eng.TotalSlots(cluster.MapSlot)
	if slots == 0 || t.launched == 0 {
		return 0
	}
	return (t.launched + slots - 1) / slots
}

// completeJob assembles the final Result.
func (t *tracker) completeJob() {
	var outputs []KeyEstimate
	for _, r := range t.reduces {
		outputs = append(outputs, r.outputs...)
	}
	sort.Slice(outputs, func(i, j int) bool { return outputs[i].Key < outputs[j].Key })
	t.emit(EventJobCompleted, -1, "", 0)
	endBreak := t.eng.EnergyBreakdown()
	t.result = &Result{
		Job:      t.job.Name,
		Outputs:  outputs,
		Runtime:  t.eng.Now() - t.startTime,
		EnergyWh: t.eng.EnergyWh() - t.startEnergy,
		Energy: cluster.EnergyBreakdown{
			BusyJ:  endBreak.BusyJ - t.startBreak.BusyJ,
			IdleJ:  endBreak.IdleJ - t.startBreak.IdleJ,
			SleepJ: endBreak.SleepJ - t.startBreak.SleepJ,
		},
		Counters: t.counters,
		RealSecs: t.realSecs,
		Trace:    t.events,
	}
	t.fireDone()
}

// fail aborts the job: running attempts are killed and pending tasks
// dropped so the event queue drains.
func (t *tracker) fail(err error) {
	if t.failErr != nil {
		return
	}
	t.failErr = err
	for idx := 0; idx < len(t.state); idx++ {
		for _, a := range append([]*cluster.RunningTask(nil), t.attempts[idx]...) {
			t.eng.Kill(a)
		}
	}
	for _, r := range t.reduces {
		t.eng.FinishTask(r.handle)
	}
	t.fireDone()
}

// estView builds the EstimateView reduces evaluate against.
func (t *tracker) estView() EstimateView {
	return EstimateView{
		TotalMaps:  len(t.blocks),
		Consumed:   t.completed,
		Dropped:    t.dropped,
		Confidence: t.job.Confidence,
	}
}

// snapshotTick delivers a periodic early-results snapshot and
// re-arms itself while the job is still running.
func (t *tracker) snapshotTick() {
	if t.finalizing || t.failErr != nil || t.result != nil {
		return
	}
	t.job.OnSnapshot(t.eng.Now()-t.startTime, t.snapshot())
	t.eng.After(t.job.SnapshotEvery, t.snapshotTick)
}

// snapshot concatenates the current estimates from every partition.
func (t *tracker) snapshot() []KeyEstimate {
	if t.job.Barrier {
		return nil
	}
	view := t.estView()
	var all []KeyEstimate
	for _, r := range t.reduces {
		all = append(all, r.logic.Estimates(view)...)
	}
	return all
}

// view builds the controller's JobView.
func (t *tracker) view() *JobView {
	avgItems := 0.0
	if len(t.measures) > 0 {
		var s int64
		for _, m := range t.measures {
			s += m.Items
		}
		avgItems = float64(s) / float64(len(t.measures))
	}
	slots := t.eng.TotalSlots(cluster.MapSlot)
	if q := t.arb.MapQuota(t.job); q > 0 && q < slots {
		// Under multi-tenancy the job's effective wave width is its
		// fair share, not the whole cluster; controllers plan waves
		// against what the arbiter will actually grant.
		slots = q
	}
	return &JobView{
		TotalMaps:     len(t.blocks),
		TotalMapSlots: slots,
		Elapsed:       t.eng.Now() - t.startTime,
		Launched:      t.launched,
		Completed:     t.completed,
		Dropped:       t.dropped,
		Running:       t.runningCount(),
		Pending:       t.pendingCount(),
		Confidence:    t.job.Confidence,
		Measures:      t.measures,
		Estimates:     t.snapshot,
		Logics: func() []ReduceLogic {
			logics := make([]ReduceLogic, len(t.reduces))
			for i, r := range t.reduces {
				logics[i] = r.logic
			}
			return logics
		},
		CostParams: func() (float64, float64, float64) {
			return t.job.Cost.Params(t.measures)
		},
		AvgItems: avgItems,
	}
}
