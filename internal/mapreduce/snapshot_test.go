package mapreduce

import (
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/stats"
)

// snapshotLogic is a minimal ReduceLogic with online estimates.
type snapshotLogic struct{ sum float64 }

func (s *snapshotLogic) Consume(out *MapOutput) {
	out.EachPair(func(_ string, v float64) { s.sum += v })
}

func (s *snapshotLogic) Estimates(EstimateView) []KeyEstimate {
	return []KeyEstimate{{Key: "sum", Est: stats.Estimate{Value: s.sum}}}
}

func (s *snapshotLogic) Finalize(view EstimateView) []KeyEstimate {
	return s.Estimates(view)
}

func TestOnlineSnapshots(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	var times []float64
	var lastSum float64
	job := &Job{
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return &snapshotLogic{} },
		Reduces:   1,
		Cost:      cluster.AnalyticCost{T0: 5, Tr: 0.01, Tp: 0.01},
		OnSnapshot: func(at float64, ests []KeyEstimate) {
			times = append(times, at)
			if len(ests) > 0 {
				if ests[0].Est.Value < lastSum {
					t.Errorf("snapshot sum went backwards: %v -> %v", lastSum, ests[0].Est.Value)
				}
				lastSum = ests[0].Est.Value
			}
		},
		SnapshotEvery: 3,
	}
	res, err := Run(testEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) < 2 {
		t.Fatalf("expected multiple snapshots, got %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("snapshot times must increase")
		}
	}
	if lastSum <= 0 || res.Runtime <= 0 {
		t.Errorf("snapshots never observed progress: sum=%v", lastSum)
	}
}

func TestSnapshotsDisabledUnderBarrier(t *testing.T) {
	input, _ := wordCountInput(t, 256)
	called := false
	job := &Job{
		Input:         input,
		NewMapper:     wordCountMapper,
		NewReduce:     func(int) ReduceLogic { return SumReduce() },
		Barrier:       true,
		OnSnapshot:    func(float64, []KeyEstimate) { called = true },
		SnapshotEvery: 1,
	}
	if _, err := Run(testEngine(), job); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("barrier mode has no online estimates; snapshots must not fire")
	}
}
