package mapreduce

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestKeyTableRoundTrip checks the interner's core contract: every
// distinct key gets one stable ID, Resolve returns exactly the interned
// bytes, and the memoized partition matches the live hash.
func TestKeyTableRoundTrip(t *testing.T) {
	const reduces = 7
	tab := newKeyTable(reduces, 0)
	keys := make([]string, 300)
	ids := make([]int32, len(keys))
	for i := range keys {
		keys[i] = "key-" + strconv.Itoa(i%100) // every key seen three times
		id, part := tab.Intern(keys[i])
		ids[i] = id
		if want := int32(Partition(keys[i], reduces)); part != want {
			t.Fatalf("Intern(%q) partition %d, want %d", keys[i], part, want)
		}
	}
	if tab.Len() != 100 {
		t.Fatalf("interned %d distinct keys, want 100", tab.Len())
	}
	for i := range keys {
		if got := tab.Resolve(ids[i]); got != keys[i] {
			t.Fatalf("Resolve(%d) = %q, want %q", ids[i], got, keys[i])
		}
		if id2, _ := tab.Intern(keys[i]); id2 != ids[i] {
			t.Fatalf("re-Intern(%q) = %d, want stable id %d", keys[i], id2, ids[i])
		}
	}
}

// TestKeyTableTransientKeys proves interned strings are durable even
// when Intern is handed views of a buffer that is rewritten afterwards
// — the push-mode record contract.
func TestKeyTableTransientKeys(t *testing.T) {
	tab := newKeyTable(4, 0)
	buf := make([]byte, 0, 64)
	var ids []int32
	var want []string
	for i := 0; i < 50; i++ {
		buf = append(buf[:0], "volatile-"...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		id, _ := tab.Intern(string(buf)) // string(buf) stays, but exercise reuse below too
		ids = append(ids, id)
		want = append(want, "volatile-"+strconv.Itoa(i))
		// Scribble over the buffer the way the next record read would.
		for j := range buf {
			buf[j] = 'x'
		}
	}
	for i, id := range ids {
		if got := tab.Resolve(id); got != want[i] {
			t.Fatalf("Resolve(%d) = %q, want %q (interned copy not durable)", id, got, want[i])
		}
	}
}

// TestKeyTableArenaBoundaries crosses chunk boundaries and the
// oversized-key escape hatch.
func TestKeyTableArenaBoundaries(t *testing.T) {
	tab := newKeyTable(3, 0)
	long := strings.Repeat("L", keyArenaChunk+1) // dedicated allocation path
	medium := strings.Repeat("m", keyArenaChunk/2+1)
	inputs := []string{long, medium, strings.Repeat("n", keyArenaChunk/2+1), "tiny", long, medium}
	ids := make([]int32, len(inputs))
	for i, k := range inputs {
		ids[i], _ = tab.Intern(k)
	}
	if ids[0] != ids[4] || ids[1] != ids[5] {
		t.Fatal("duplicate keys across chunk boundaries got fresh ids")
	}
	for i, k := range inputs {
		if got := tab.Resolve(ids[i]); got != k {
			t.Fatalf("Resolve(%d) has %d bytes, want %d", ids[i], len(got), len(k))
		}
	}
}

// TestKeyTableConcurrentAttempts runs many independent interners on
// concurrent goroutines — the pool execution shape, one table per map
// attempt — and checks each stays collision-free and resolves its own
// keys. Run under -race this also proves attempt-locality: no shared
// state between tables.
func TestKeyTableConcurrentAttempts(t *testing.T) {
	const attempts = 16
	var wg sync.WaitGroup
	errs := make(chan string, attempts)
	for a := 0; a < attempts; a++ {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			tab := newKeyTable(5, 0)
			for i := 0; i < 2000; i++ {
				key := "attempt" + strconv.Itoa(a) + "-key" + strconv.Itoa(i%500)
				id, part := tab.Intern(key)
				if got := tab.Resolve(id); got != key {
					errs <- "attempt " + strconv.Itoa(a) + ": Resolve(" + key + ") = " + got
					return
				}
				if int(part) != Partition(key, 5) {
					errs <- "attempt " + strconv.Itoa(a) + ": partition mismatch for " + key
					return
				}
			}
			if tab.Len() != 500 {
				errs <- "attempt " + strconv.Itoa(a) + ": " + strconv.Itoa(tab.Len()) + " distinct keys, want 500"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// FuzzInternResolve feeds arbitrary key bytes through Intern/Resolve:
// for any pair of inputs, interning must be injective (same id iff same
// key) and Resolve must be the exact inverse of Intern.
func FuzzInternResolve(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte(""), []byte("\x00"))
	f.Add([]byte("a\tb\nc"), []byte("a\tb\nc"))
	f.Add([]byte(strings.Repeat("k", keyArenaChunk)), []byte("k"))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		tab := newKeyTable(4, 0)
		ka, kb := string(a), string(b)
		ia, pa := tab.Intern(ka)
		ib, pb := tab.Intern(kb)
		if (ia == ib) != (ka == kb) {
			t.Fatalf("Intern(%q)=%d, Intern(%q)=%d: id equality must match key equality", ka, ia, kb, ib)
		}
		if tab.Resolve(ia) != ka || tab.Resolve(ib) != kb {
			t.Fatalf("Resolve is not the inverse of Intern for %q / %q", ka, kb)
		}
		if int(pa) != Partition(ka, 4) || int(pb) != Partition(kb, 4) {
			t.Fatalf("memoized partition mismatch for %q / %q", ka, kb)
		}
		// Re-interning after the table grew must return the first ids.
		if ia2, _ := tab.Intern(ka); ia2 != ia {
			t.Fatalf("re-Intern(%q) = %d, want %d", ka, ia2, ia)
		}
	})
}
