package mapreduce

import "approxhadoop/internal/zerocopy"

// keyTable is the per-attempt key interner of the zero-allocation data
// plane. Map emitters hand it every emitted key (often a transient view
// of a reusable line buffer); the table assigns a dense int32 ID per
// distinct key, copies the key bytes into an append-only arena exactly
// once, and memoizes the key's reduce partition so the FNV hash runs
// once per distinct key instead of once per emitted pair. Everything
// downstream of the emitter moves (keyID, value) pairs; strings are
// resolved only when a reducer needs them.
//
// A table is owned by one map attempt (executeMap), so it needs no
// locking — the sharedstate contract holds because no two goroutines
// ever share an instance. Interned strings are durable: the arena
// chunks are append-only and never recycled, so a string view handed
// out by Resolve stays valid for the life of the attempt's MapOutput.
type keyTable struct {
	ids     map[string]int32
	keys    []string // id -> interned key
	parts   []int32  // id -> reduce partition
	reduces int
	arena   []byte // current chunk; full chunks are abandoned to the GC-rooted strings
}

// keyArenaChunk is the arena growth quantum. Keys longer than a chunk
// get a dedicated allocation.
const keyArenaChunk = 16 << 10

// newKeyTable builds an interner for the given partition count. hint
// (an upper bound: the attempt's expected pair count) pre-sizes the id
// map and the dense id-indexed slices so interning new keys never
// reallocates mid-attempt.
func newKeyTable(reduces, hint int) *keyTable {
	// Cap the map pre-size: distinct keys are usually far fewer than
	// pairs, and the runtime allocates large pre-sized maps in many
	// overflow-bucket pieces (measured: hint 4096 costs 18 allocations,
	// hint 512 costs 4). The map still grows past the cap if needed.
	mh := hint
	if mh > 512 {
		mh = 512
	}
	t := &keyTable{
		ids:     make(map[string]int32, mh),
		reduces: reduces,
	}
	if hint > 0 {
		t.keys = make([]string, 0, hint)
		t.parts = make([]int32, 0, hint)
	}
	return t
}

// Intern returns the ID and reduce partition for key, assigning both on
// first sight. The key argument may be a transient buffer view; the
// stored copy is arena-backed and durable.
//
//approx:hotpath
func (t *keyTable) Intern(key string) (id, part int32) {
	if id, ok := t.ids[key]; ok {
		return id, t.parts[id]
	}
	durable := t.copyKey(key)
	id = int32(len(t.keys))
	part = int32(Partition(durable, t.reduces))
	t.ids[durable] = id
	t.keys = append(t.keys, durable)
	t.parts = append(t.parts, part)
	return id, part
}

// InternAt is Intern with the partition supplied by the caller instead
// of hashed from the key — the composite-key emit path partitions by
// the group prefix alone. The caller must pass the same partition for
// every sight of a given key.
//
//approx:hotpath
func (t *keyTable) InternAt(key string, part int32) (id int32) {
	if id, ok := t.ids[key]; ok {
		return id
	}
	durable := t.copyKey(key)
	id = int32(len(t.keys))
	t.ids[durable] = id
	t.keys = append(t.keys, durable)
	t.parts = append(t.parts, part)
	return id
}

// copyKey appends key's bytes to the arena and returns a durable string
// view of the copy. The view aliases arena memory that is never
// rewritten: the chunk only grows by appending past the copy, and a
// full chunk is abandoned (kept alive by the strings into it) rather
// than reused.
//
//approx:hotpath
func (t *keyTable) copyKey(key string) string {
	if len(key) > keyArenaChunk {
		return string(append([]byte(nil), key...))
	}
	if cap(t.arena)-len(t.arena) < len(key) {
		t.arena = make([]byte, 0, keyArenaChunk)
	}
	start := len(t.arena)
	t.arena = append(t.arena, key...)
	return zerocopy.String(t.arena[start:len(t.arena):len(t.arena)])
}

// Resolve returns the interned key for an ID previously returned by
// Intern. The string is durable (arena-backed) and safe to retain.
func (t *keyTable) Resolve(id int32) string { return t.keys[id] }

// Len returns the number of distinct keys interned so far.
func (t *keyTable) Len() int { return len(t.keys) }
