package mapreduce

import (
	"strings"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/stats"
)

// TestMapTaskReexecutionOnServerFailure fail-stops a server mid-job
// and verifies its map tasks are re-executed elsewhere with correct
// final results.
func TestMapTaskReexecutionOnServerFailure(t *testing.T) {
	input, want := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 2
	eng := cluster.New(cfg)
	// Reduces are placed round-robin from server 0; with Reduces=2 they
	// land on servers 0 and 1, so server 3 is a map-only victim. Fail
	// it midway through the first wave.
	eng.ScheduleFailure(eng.Servers()[3], 0.5)

	var failures int
	job := &Job{
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Reduces:   2,
		Cost:      cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
		Seed:      4,
		Trace: func(e Event) {
			if e.Kind == EventMapFailed {
				failures++
			}
		},
	}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if failures == 0 {
		t.Fatal("expected map attempts lost to the failure")
	}
	if res.Counters.MapsFailed != failures {
		t.Errorf("counter %d != trace %d", res.Counters.MapsFailed, failures)
	}
	if res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("all logical maps should complete despite the failure: %+v", res.Counters)
	}
	for _, o := range res.Outputs {
		if !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("%s = %v, want %v (results must survive failures)", o.Key, o.Est.Value, want[o.Key])
		}
		if !o.Exact {
			t.Errorf("failure recovery must not mark results approximate")
		}
	}
}

// TestReduceServerFailureFailsJob documents the limitation: reduce
// state is not replicated, so losing a reduce-hosting server aborts.
func TestReduceServerFailureFailsJob(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 2
	eng := cluster.New(cfg)
	// Reduces are placed round-robin from server 0; with Reduces=1 the
	// only reduce lands on server 0.
	eng.ScheduleFailure(eng.Servers()[0], 1.0)
	job := &Job{
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Reduces:   1,
		Cost:      cluster.AnalyticCost{T0: 5, Tr: 0.001, Tp: 0.001},
	}
	_, err := Run(eng, job)
	if err == nil {
		t.Fatal("losing the reduce server should fail the job")
	}
	// The error must identify the lost partition and the failed server.
	if !strings.Contains(err.Error(), "reduce partition") || !strings.Contains(err.Error(), "server-00") {
		t.Errorf("want a descriptive reduce-loss error, got: %v", err)
	}
}

// TestReduceServerFailureEvenWithDegrade: DegradeToDrop covers map-side
// losses only; reduce state is unreplicated, so losing a reduce host
// still aborts with the same descriptive error.
func TestReduceServerFailureEvenWithDegrade(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 2
	eng := cluster.New(cfg)
	eng.ScheduleFailure(eng.Servers()[0], 1.0)
	job := &Job{
		Input:         input,
		NewMapper:     wordCountMapper,
		NewReduce:     func(int) ReduceLogic { return SumReduce() },
		Reduces:       1,
		Cost:          cluster.AnalyticCost{T0: 5, Tr: 0.001, Tp: 0.001},
		DegradeToDrop: true,
	}
	_, err := Run(eng, job)
	if err == nil {
		t.Fatal("reduce loss is unrecoverable even under DegradeToDrop")
	}
	if !strings.Contains(err.Error(), "reduce partition") {
		t.Errorf("want a descriptive reduce-loss error, got: %v", err)
	}
}

// TestServerFailureAfterCompletionHarmless schedules a failure on the
// engine timeline past the job's end: the job must be unaffected.
func TestServerFailureAfterCompletionHarmless(t *testing.T) {
	input, want := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 2
	eng := cluster.New(cfg)
	eng.ScheduleFailure(eng.Servers()[0], 1e6)
	job := &Job{
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Reduces:   2,
		Cost:      cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
	}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsFailed != 0 || res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("post-completion failure must not affect the job: %+v", res.Counters)
	}
	for _, o := range res.Outputs {
		if !o.Exact || !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("%s = %v exact=%v, want exact %v", o.Key, o.Est.Value, o.Exact, want[o.Key])
		}
	}
}

// TestAllServersFailed verifies the job aborts cleanly when no capacity
// remains.
func TestAllServersFailed(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 2
	cfg.MapSlotsPerServer = 1
	eng := cluster.New(cfg)
	// Kill the non-reduce-hosting server mid-run and the reduce host
	// later; between them every map slot disappears.
	eng.ScheduleFailure(eng.Servers()[1], 0.5)
	eng.ScheduleFailure(eng.Servers()[0], 1.0)
	job := &Job{
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Reduces:   1,
		Cost:      cluster.AnalyticCost{T0: 10, Tr: 0.01, Tp: 0.01},
	}
	if _, err := Run(eng, job); err == nil {
		t.Fatal("a fully failed cluster should produce an error")
	}
}

// TestFailServerIdempotent covers double-failure and energy behavior.
func TestFailServerIdempotent(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 2
	eng := cluster.New(cfg)
	s := eng.Servers()[0]
	eng.FailServer(s)
	eng.FailServer(s) // no-op
	if !s.Dead() || s.FreeSlots(cluster.MapSlot) != 0 {
		t.Error("dead server should expose no capacity")
	}
	// Dead servers draw no power: 100s with one dead, one idle.
	eng.At(100, func() {})
	eng.Run()
	want := 100 * cfg.IdleWatts
	if got := eng.EnergyJoules(); !stats.AlmostEqual(got, want, 1e-9) {
		t.Errorf("energy %v, want %v (dead server draws nothing)", got, want)
	}
}
