package mapreduce

import (
	"math"
	"testing"

	"approxhadoop/internal/cluster"
)

func TestResultEnergyBreakdown(t *testing.T) {
	input, _ := wordCountInput(t, 2048) // single map task
	job := &Job{
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Reduces:   1,
		Cost:      cluster.AnalyticCost{T0: 100, Tr: 0.01, Tp: 0.01},
		SleepIdle: true,
	}
	res, err := Run(testEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.BusyJ <= 0 {
		t.Errorf("busy energy should be positive: %+v", res.Energy)
	}
	if res.Energy.SleepJ <= 0 {
		t.Errorf("S3 job should record sleep energy: %+v", res.Energy)
	}
	if math.Abs(res.Energy.TotalJ()/3600-res.EnergyWh) > 1e-9 {
		t.Errorf("breakdown %v Wh != total %v Wh", res.Energy.TotalJ()/3600, res.EnergyWh)
	}
}
