package mapreduce

import (
	"approxhadoop/internal/stats"
	"testing"

	"approxhadoop/internal/cluster"
)

// TestSpeculationOnHeterogeneousCluster reproduces the LATE/Zaharia
// scenario: one crippled server makes its tasks stragglers; with
// speculation the job finishes much earlier because duplicates land on
// healthy servers.
func TestSpeculationOnHeterogeneousCluster(t *testing.T) {
	input, want := wordCountInput(t, 64)
	build := func(spec bool) (*cluster.Engine, *Job) {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		cfg.MapSlotsPerServer = 2
		cfg.SpeedFactors = map[int]float64{3: 0.05} // one 20x-slower server
		eng := cluster.New(cfg)
		job := &Job{
			Input:       input,
			NewMapper:   wordCountMapper,
			NewReduce:   func(int) ReduceLogic { return SumReduce() },
			Cost:        cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
			Seed:        5,
			Speculation: spec,
		}
		return eng, job
	}
	engN, jobN := build(false)
	noSpec, err := Run(engN, jobN)
	if err != nil {
		t.Fatal(err)
	}
	engS, jobS := build(true)
	withSpec, err := Run(engS, jobS)
	if err != nil {
		t.Fatal(err)
	}
	if withSpec.Counters.MapsSpeculated == 0 {
		t.Fatal("expected speculative attempts against the slow server")
	}
	if withSpec.Runtime >= noSpec.Runtime {
		t.Errorf("speculation should cut runtime: %v >= %v", withSpec.Runtime, noSpec.Runtime)
	}
	// Results identical either way.
	for _, o := range withSpec.Outputs {
		if !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("%s = %v, want %v", o.Key, o.Est.Value, want[o.Key])
		}
	}
}
