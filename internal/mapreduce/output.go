package mapreduce

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// This file is the analog of the paper's ApproxOutput: writers that
// persist a job's estimates (value ± epsilon at the job's confidence)
// in human-readable text, TSV, or JSON.

// WriteText renders the result as an aligned human-readable report.
func WriteText(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "job %s: runtime %.1f s, energy %.2f Wh, maps %d/%d completed (%d dropped, %d killed, %d failed)\n",
		res.Job, res.Runtime, res.EnergyWh,
		res.Counters.MapsCompleted, res.Counters.MapsTotal,
		res.Counters.MapsDropped, res.Counters.MapsKilled, res.Counters.MapsFailed); err != nil {
		return err
	}
	for _, o := range res.Outputs {
		var err error
		switch {
		case o.Lossy:
			_, err = fmt.Fprintf(w, "%s\t%g\t(combiner-lossy)\n", o.Key, o.Est.Value)
		case o.Exact:
			_, err = fmt.Fprintf(w, "%s\t%g\t(exact)\n", o.Key, o.Est.Value)
		case math.IsNaN(o.Est.Err):
			_, err = fmt.Fprintf(w, "%s\t%g\t(unbounded)\n", o.Key, o.Est.Value)
		default:
			_, err = fmt.Fprintf(w, "%s\t%g\t± %g (%.0f%% conf)\n", o.Key, o.Est.Value, o.Est.Err, o.Est.Conf*100)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTSV writes one "key <TAB> value <TAB> epsilon <TAB> confidence"
// line per output. Unbounded estimates carry "NaN" epsilons.
func WriteTSV(w io.Writer, res *Result) error {
	for _, o := range res.Outputs {
		if _, err := fmt.Fprintf(w, "%s\t%g\t%g\t%g\n", o.Key, o.Est.Value, o.Est.Err, o.Est.Conf); err != nil {
			return err
		}
	}
	return nil
}

// jsonOutput is the serialized form of one output key.
type jsonOutput struct {
	Key        string  `json:"key"`
	Value      float64 `json:"value"`
	Epsilon    float64 `json:"epsilon"`             // half-width; -1 when unbounded
	Confidence float64 `json:"confidence"`          // e.g. 0.95
	Exact      bool    `json:"exact"`               // computed from complete data
	Lo         float64 `json:"lo"`                  // interval bounds
	Hi         float64 `json:"hi"`                  //
	Unbounded  bool    `json:"unbounded,omitempty"` // no error estimation applies
	Lossy      bool    `json:"lossy,omitempty"`     // combiner pre-aggregated a non-safe reduce
}

// jsonResult is the serialized form of a Result.
type jsonResult struct {
	Job      string       `json:"job"`
	Runtime  float64      `json:"runtimeSecs"`
	EnergyWh float64      `json:"energyWh"`
	Counters Counters     `json:"counters"`
	Outputs  []jsonOutput `json:"outputs"`
}

// WriteJSON serializes the result, mapping non-finite epsilons to the
// JSON-safe sentinel -1 with Unbounded set.
func WriteJSON(w io.Writer, res *Result) error {
	jr := jsonResult{
		Job:      res.Job,
		Runtime:  res.Runtime,
		EnergyWh: res.EnergyWh,
		Counters: res.Counters,
	}
	for _, o := range res.Outputs {
		jo := jsonOutput{
			Key:        o.Key,
			Value:      o.Est.Value,
			Epsilon:    o.Est.Err,
			Confidence: o.Est.Conf,
			Exact:      o.Exact,
			Lo:         o.Est.Lo(),
			Hi:         o.Est.Hi(),
			Lossy:      o.Lossy,
		}
		if math.IsNaN(jo.Epsilon) || math.IsInf(jo.Epsilon, 0) {
			jo.Epsilon = -1
			jo.Lo = jo.Value
			jo.Hi = jo.Value
			jo.Unbounded = true
		}
		jr.Outputs = append(jr.Outputs, jo)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// jsonEvent is the serialized form of one trace Event.
type jsonEvent struct {
	Time   float64 `json:"t"`
	Kind   string  `json:"kind"`
	Task   int     `json:"task"`
	Server string  `json:"server,omitempty"`
	Ratio  float64 `json:"ratio,omitempty"`
}

// WriteTraceJSONL writes a recorded scheduling trace (Result.Trace) as
// JSON Lines: one event object per line, in virtual-time order.
func WriteTraceJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		je := jsonEvent{
			Time:   ev.Time,
			Kind:   ev.Kind.String(),
			Task:   ev.Task,
			Server: ev.Server,
			Ratio:  ev.Ratio,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}
