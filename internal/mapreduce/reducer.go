package mapreduce

import (
	"math"
	"sort"

	"approxhadoop/internal/stats"
)

// PreciseReduce adapts a classic Hadoop-style reduce function — called
// once per key with all its values — to the incremental ReduceLogic
// interface. It buffers values per key and applies the function at
// finalize time. When the job sampled or dropped anything, the result
// carries an unknown (NaN) error bound, matching the paper: arbitrary
// programs can be approximated, but ApproxHadoop cannot bound their
// error (Section 1).
type PreciseReduce struct {
	fn     func(key string, values []float64) float64
	values map[string][]float64
	approx bool // sampling or dropping observed
	// combinerSafe declares fn distributive over per-task sums:
	// fn(sums of groups) == fn(all values), as for sum/count. Only then
	// may combined outputs fold to rs.Sum losslessly.
	combinerSafe bool
	lossy        bool // a non-safe fn consumed truly combined values
}

// NewPreciseReduce wraps a classic reduce function. The function is
// assumed NOT combiner-safe: if the job also enables Combine, outputs
// are flagged Lossy (see CombinerSafe).
func NewPreciseReduce(fn func(key string, values []float64) float64) *PreciseReduce {
	return &PreciseReduce{fn: fn, values: make(map[string][]float64)}
}

// CombinerSafe declares the reduce function distributive over sums —
// fn applied to per-task partial sums equals fn applied to the raw
// values, as for sum and count — and returns the receiver. Only such
// functions compose correctly with Job.Combine; others get their
// outputs flagged Lossy instead of silently wrong.
func (r *PreciseReduce) CombinerSafe() *PreciseReduce {
	r.combinerSafe = true
	return r
}

// Consume implements ReduceLogic.
func (r *PreciseReduce) Consume(out *MapOutput) {
	if out.Sampled < out.Items {
		r.approx = true
	}
	if out.IsCombined() {
		out.EachCombined(func(key string, rs stats.RunningStat) {
			// Combined outputs lose individual values; the sum is a
			// correct stand-in only for combiner-safe (distributive)
			// functions. For others, record that real aggregation
			// happened (count > 1 means values were actually folded)
			// so Finalize can mark the result lossy rather than emit a
			// silently incorrect number.
			if !r.combinerSafe && rs.Count > 1 {
				r.lossy = true
			}
			r.values[key] = append(r.values[key], rs.Sum)
		})
		return
	}
	out.EachPair(func(key string, value float64) {
		r.values[key] = append(r.values[key], value)
	})
}

// Estimates implements ReduceLogic; precise reduces cannot estimate
// mid-flight, so it returns nil.
func (r *PreciseReduce) Estimates(EstimateView) []KeyEstimate { return nil }

// Finalize implements ReduceLogic.
func (r *PreciseReduce) Finalize(view EstimateView) []KeyEstimate {
	approx := r.approx || view.Dropped > 0
	out := make([]KeyEstimate, 0, len(r.values))
	for key, vals := range r.values {
		ke := KeyEstimate{Key: key, Exact: !approx && !r.lossy, Lossy: r.lossy}
		ke.Est = stats.Estimate{Value: r.fn(key, vals), Conf: view.Confidence}
		if approx || r.lossy {
			ke.Est.Err = math.NaN()
			ke.Est.StdErr = math.NaN()
		}
		out = append(out, ke)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// SumReduce returns a PreciseReduce that sums each key's values — the
// standard Hadoop sum reducer used by precise baselines. Summation is
// combiner-safe, so it composes with Job.Combine losslessly.
func SumReduce() *PreciseReduce {
	return NewPreciseReduce(func(_ string, vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	}).CombinerSafe()
}

// MeanReduce returns a PreciseReduce averaging each key's values.
func MeanReduce() *PreciseReduce {
	return NewPreciseReduce(func(_ string, vals []float64) float64 {
		if len(vals) == 0 {
			return 0
		}
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	})
}

// MinReduce returns a PreciseReduce taking each key's minimum.
func MinReduce() *PreciseReduce {
	return NewPreciseReduce(func(_ string, vals []float64) float64 {
		m := math.Inf(1)
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m
	})
}

// MaxReduce returns a PreciseReduce taking each key's maximum.
func MaxReduce() *PreciseReduce {
	return NewPreciseReduce(func(_ string, vals []float64) float64 {
		m := math.Inf(-1)
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m
	})
}
