package mapreduce

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"approxhadoop/internal/stats"
)

func sampleResult() *Result {
	return &Result{
		Job:      "test",
		Runtime:  12.5,
		EnergyWh: 3.25,
		Counters: Counters{MapsTotal: 4, MapsCompleted: 3, MapsDropped: 1},
		Outputs: []KeyEstimate{
			{Key: "alpha", Est: stats.Estimate{Value: 100, Err: 5, Conf: 0.95}},
			{Key: "beta", Est: stats.Estimate{Value: 7}, Exact: true},
			{Key: "gamma", Est: stats.Estimate{Value: 2, Err: math.NaN()}},
		},
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"job test", "12.5 s", "alpha\t100\t± 5 (95% conf)",
		"beta\t7\t(exact)", "gamma\t2\t(unbounded)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTSV(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "alpha\t100\t5\t0.95" {
		t.Errorf("tsv line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "NaN") {
		t.Errorf("unbounded should serialize as NaN: %q", lines[2])
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Job     string `json:"job"`
		Outputs []struct {
			Key       string  `json:"key"`
			Epsilon   float64 `json:"epsilon"`
			Unbounded bool    `json:"unbounded"`
			Lo        float64 `json:"lo"`
			Hi        float64 `json:"hi"`
			Exact     bool    `json:"exact"`
		} `json:"outputs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if parsed.Job != "test" || len(parsed.Outputs) != 3 {
		t.Fatalf("parsed: %+v", parsed)
	}
	if !stats.AlmostEqual(parsed.Outputs[0].Lo, 95, 1e-9) || !stats.AlmostEqual(parsed.Outputs[0].Hi, 105, 1e-9) {
		t.Errorf("alpha interval: %+v", parsed.Outputs[0])
	}
	if !parsed.Outputs[1].Exact {
		t.Error("beta should be exact")
	}
	g := parsed.Outputs[2]
	if !g.Unbounded || !stats.AlmostEqual(g.Epsilon, -1, 1e-12) {
		t.Errorf("gamma should be unbounded sentinel: %+v", g)
	}
}
