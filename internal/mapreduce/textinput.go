package mapreduce

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"approxhadoop/internal/dfs"
	"approxhadoop/internal/vtime"
	"approxhadoop/internal/zerocopy"
)

// TextInputFormat parses a block into one record per line, like
// Hadoop's TextInputFormat. It is precise: every line is returned and
// the sampleRatio argument is ignored. The approximation-aware
// counterpart lives in the approx package (ApproxTextInput).
type TextInputFormat struct{}

// Open implements InputFormat. The reader supports both modes: pull
// (Next, durable records, used by Job.LegacyDataPlane and external
// callers) and push (Push, zero-copy records over the block's line
// backing — no pipe goroutine, no scanner copy, no per-record string
// allocations).
//
//approx:compute
func (TextInputFormat) Open(b *dfs.Block, _ float64, _ int64) (RecordReader, error) {
	if b == nil {
		return nil, fmt.Errorf("mapreduce: nil block")
	}
	return &textReader{
		block:     b,
		keyPrefix: b.ID() + ":",
		meter:     vtime.NewDeterministic(),
	}, nil
}

// newLineScanner builds a scanner with a generous line-length cap.
func newLineScanner(r io.Reader) *bufio.Scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64<<10), 16<<20)
	return s
}

type textReader struct {
	block     *dfs.Block
	keyPrefix string
	rc        io.ReadCloser // pull mode only, opened lazily
	scan      *bufio.Scanner
	meter     vtime.Meter
	m         ReaderMeasure
	bufs      *BufList
	// keyBuf holds the record key: the "blockID:" prefix stays resident
	// at the front and only the offset digits are rewritten per record,
	// so key formatting allocates nothing (pull mode pays one string
	// copy per record to make the returned key durable; push mode hands
	// out a zero-copy view).
	keyBuf []byte
}

// SetMeter implements MeterSetter.
func (t *textReader) SetMeter(m vtime.Meter) { t.meter = m }

// SetBuffers implements BufferLender: working buffers (key scratch,
// line carry) are borrowed from the attempt's free list.
func (t *textReader) SetBuffers(l *BufList) { t.bufs = l }

// key formats the record key for the given record index into keyBuf and
// returns a view of it, valid until the next call.
//
//approx:hotpath
func (t *textReader) key(idx int64) []byte {
	if t.keyBuf == nil {
		min := len(t.keyPrefix) + 20 // prefix + widest int64 digits
		if t.bufs != nil {
			t.keyBuf = t.bufs.Get(min)
		} else {
			t.keyBuf = make([]byte, 0, min)
		}
		t.keyBuf = append(t.keyBuf, t.keyPrefix...)
	}
	t.keyBuf = strconv.AppendInt(t.keyBuf[:len(t.keyPrefix)], idx, 10)
	return t.keyBuf
}

//approx:compute
func (t *textReader) Next() (Record, bool, error) {
	if t.scan == nil {
		t.rc = t.block.Open()
		t.scan = newLineScanner(t.rc)
	}
	t.meter.Begin(vtime.OpRead)
	if !t.scan.Scan() {
		t.m.ReadSecs += t.meter.End(vtime.OpRead, 0, 0)
		if err := t.scan.Err(); err != nil {
			return Record{}, false, fmt.Errorf("mapreduce: reading %s: %w", t.keyPrefix, err)
		}
		return Record{}, false, nil
	}
	line := t.scan.Text()
	t.m.Items++
	t.m.Sampled++
	t.m.Bytes += int64(len(line)) + 1
	key := t.key(t.m.Items - 1)
	t.m.ReadSecs += t.meter.End(vtime.OpRead, 1, int64(len(line))+1)
	return Record{Key: string(key), Value: line}, true, nil
}

// Push implements RecordPusher over the block's line backing. The meter
// Begin/End sequence per record — End(OpRead, 1, len+1) per line, a
// final End(OpRead, 0, 0) at EOF — replicates the Next loop exactly, so
// virtual timings are bit-identical across modes. Record Key/Value are
// views of reusable buffers, valid only inside fn.
//
//approx:compute
//approx:hotpath
func (t *textReader) Push(fn func(rec Record)) (bool, error) {
	if !t.block.CanYieldLines() {
		return false, nil
	}
	var carry []byte
	if t.bufs != nil {
		carry = t.bufs.Get(256)
	}
	carry, err := t.block.Lines(carry, func(line []byte) error {
		t.meter.Begin(vtime.OpRead)
		t.m.Items++
		t.m.Sampled++
		t.m.Bytes += int64(len(line)) + 1
		key := t.key(t.m.Items - 1)
		t.m.ReadSecs += t.meter.End(vtime.OpRead, 1, int64(len(line))+1)
		fn(Record{Key: zerocopy.String(key), Value: zerocopy.String(line)})
		return nil
	})
	if t.bufs != nil {
		t.bufs.Put(carry)
	}
	if err != nil {
		//lint:ignore hotpath error path, taken at most once per block
		return true, fmt.Errorf("mapreduce: reading %s: %w", t.keyPrefix, err)
	}
	t.meter.Begin(vtime.OpRead)
	t.m.ReadSecs += t.meter.End(vtime.OpRead, 0, 0)
	return true, nil
}

func (t *textReader) Measure() ReaderMeasure { return t.m }

//approx:compute
func (t *textReader) Close() error {
	if t.bufs != nil && t.keyBuf != nil {
		t.bufs.Put(t.keyBuf)
		t.keyBuf = nil
	}
	if t.rc != nil {
		return t.rc.Close()
	}
	return nil
}
