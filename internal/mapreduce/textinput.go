package mapreduce

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"approxhadoop/internal/dfs"
	"approxhadoop/internal/vtime"
)

// TextInputFormat parses a block into one record per line, like
// Hadoop's TextInputFormat. It is precise: every line is returned and
// the sampleRatio argument is ignored. The approximation-aware
// counterpart lives in the approx package (ApproxTextInput).
type TextInputFormat struct{}

// Open implements InputFormat.
func (TextInputFormat) Open(b *dfs.Block, _ float64, _ int64) (RecordReader, error) {
	if b == nil {
		return nil, fmt.Errorf("mapreduce: nil block")
	}
	rc := b.Open()
	return &textReader{
		keyPrefix: b.ID() + ":",
		rc:        rc,
		scan:      newLineScanner(rc),
		meter:     vtime.NewDeterministic(),
	}, nil
}

// newLineScanner builds a scanner with a generous line-length cap.
func newLineScanner(r io.Reader) *bufio.Scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64<<10), 16<<20)
	return s
}

type textReader struct {
	keyPrefix string
	rc        io.ReadCloser
	scan      *bufio.Scanner
	meter     vtime.Meter
	m         ReaderMeasure
	keyBuf    []byte
}

// SetMeter implements MeterSetter.
func (t *textReader) SetMeter(m vtime.Meter) { t.meter = m }

func (t *textReader) Next() (Record, bool, error) {
	t.meter.Begin(vtime.OpRead)
	if !t.scan.Scan() {
		t.m.ReadSecs += t.meter.End(vtime.OpRead, 0, 0)
		if err := t.scan.Err(); err != nil {
			return Record{}, false, fmt.Errorf("mapreduce: reading %s: %w", t.keyPrefix, err)
		}
		return Record{}, false, nil
	}
	line := t.scan.Text()
	t.m.Items++
	t.m.Sampled++
	t.m.Bytes += int64(len(line)) + 1
	t.keyBuf = append(t.keyBuf[:0], t.keyPrefix...)
	t.keyBuf = strconv.AppendInt(t.keyBuf, t.m.Items-1, 10)
	t.m.ReadSecs += t.meter.End(vtime.OpRead, 1, int64(len(line))+1)
	return Record{Key: string(t.keyBuf), Value: line}, true, nil
}

func (t *textReader) Measure() ReaderMeasure { return t.m }

func (t *textReader) Close() error { return t.rc.Close() }
