package mapreduce

import "fmt"

// EventKind classifies job trace events.
type EventKind int

// Trace event kinds.
const (
	EventMapLaunched EventKind = iota
	EventMapCompleted
	EventMapKilled
	EventMapDropped
	EventMapSpeculated
	EventMapFailed
	EventMapRetried
	EventMapDegraded
	EventServerBlacklisted
	EventReduceFinished
	EventJobCompleted
)

func (k EventKind) String() string {
	switch k {
	case EventMapLaunched:
		return "map-launched"
	case EventMapCompleted:
		return "map-completed"
	case EventMapKilled:
		return "map-killed"
	case EventMapDropped:
		return "map-dropped"
	case EventMapSpeculated:
		return "map-speculated"
	case EventMapFailed:
		return "map-failed"
	case EventMapRetried:
		return "map-retried"
	case EventMapDegraded:
		return "map-degraded"
	case EventServerBlacklisted:
		return "server-blacklisted"
	case EventReduceFinished:
		return "reduce-finished"
	case EventJobCompleted:
		return "job-completed"
	default:
		return "unknown"
	}
}

// Event is one entry in a job's execution trace.
type Event struct {
	Kind   EventKind
	Time   float64 // virtual seconds
	Task   int     // map task index or reduce partition (-1 if n/a)
	Server string  // server involved ("" if n/a)
	Ratio  float64 // sampling ratio for launches
}

func (e Event) String() string {
	return fmt.Sprintf("t=%.3f %s task=%d server=%s ratio=%.3g",
		e.Time, e.Kind, e.Task, e.Server, e.Ratio)
}

// Tracer receives job execution events in virtual-time order. Assign
// one to Job.Trace to observe scheduling decisions (used by tests and
// available for debugging).
type Tracer func(Event)

// emit sends an event to the job's tracer and/or the recorded trace.
func (t *tracker) emit(kind EventKind, task int, server string, ratio float64) {
	if t.job.Trace == nil && !t.job.RecordTrace {
		return
	}
	ev := Event{Kind: kind, Time: t.eng.Now(), Task: task, Server: server, Ratio: ratio}
	if t.job.RecordTrace {
		t.events = append(t.events, ev)
	}
	if t.job.Trace != nil {
		t.job.Trace(ev)
	}
}
