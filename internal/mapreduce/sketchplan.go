package mapreduce

import (
	"errors"
	"sync/atomic"

	"approxhadoop/internal/sketch"
)

// SketchKind selects the sketch family a Job.Sketch plan folds
// EmitElement calls into.
type SketchKind int

// Sketch plan kinds.
const (
	// SketchDistinct counts distinct elements per group with a
	// HyperLogLog (relative standard error 1.04/sqrt(2^Precision)).
	SketchDistinct SketchKind = iota + 1
	// SketchTopK finds the K heaviest elements per group with a
	// Count-Min sketch plus a bounded candidate set (overestimation
	// within e/Width of the group's total weight, w.p. 1−e^−Depth).
	SketchTopK
	// SketchMembership records element membership per group in a Bloom
	// filter (no false negatives; FPR from the bit load).
	SketchMembership
)

// SketchPlan configures the sketch-emitting map-output representation:
// when set on a Job, EmitElement calls fold into one fixed-size sketch
// per group instead of emitting pairs, collapsing the task's shuffle
// volume from O(elements) to O(groups · sketch size). Zero-valued
// parameters take the defaults noted per field.
//
// Every map task builds its sketches with identical parameters and the
// same deterministic hash seed, which is what makes them mergeable and
// the merged result independent of merge order and worker count.
type SketchPlan struct {
	Kind SketchKind

	// Precision is the HLL register exponent p in [4, 16] (default 11:
	// 2048 registers, ~2.3% relative standard error).
	Precision int

	// Width and Depth shape the Count-Min grid (defaults 256 and 3:
	// ε ≈ 1.1% of total weight, δ ≈ 5%).
	Width int
	Depth int

	// K is the top-k query size (default 10); Candidates bounds each
	// task's tracked candidate set (default 8·K).
	K          int
	Candidates int

	// Bits and Hashes shape the Bloom filter (defaults 4096 and 4).
	Bits   int
	Hashes int

	// Seed is the sketch hash seed (default 1). It is deliberately
	// independent of Job.Seed: sampling seeds vary per task attempt,
	// sketch seeds must not.
	Seed int64
}

// errBadSketchPlan rejects invalid plans at Validate time.
var errBadSketchPlan = errors.New("mapreduce: invalid Job.Sketch plan")

// normalize applies defaults and validates ranges.
func (p *SketchPlan) normalize() error {
	switch p.Kind {
	case SketchDistinct, SketchTopK, SketchMembership:
	default:
		return errBadSketchPlan
	}
	if p.Precision == 0 {
		p.Precision = 11
	}
	if p.Width == 0 {
		p.Width = 256
	}
	if p.Depth == 0 {
		p.Depth = 3
	}
	if p.K == 0 {
		p.K = 10
	}
	if p.Candidates == 0 {
		p.Candidates = 8 * p.K
	}
	if p.Bits == 0 {
		p.Bits = 4096
	}
	if p.Hashes == 0 {
		p.Hashes = 4
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Precision < 4 || p.Precision > 16 || p.Width < 2 || p.Depth < 1 ||
		p.K < 1 || p.Candidates < p.K || p.Bits < 64 || p.Hashes < 1 || p.Seed < 0 {
		return errBadSketchPlan
	}
	// Construct once to let the sketch package veto anything else.
	if _, err := p.newSketch(); err != nil {
		return errBadSketchPlan
	}
	return nil
}

// newSketch builds one empty sketch per the plan.
func (p *SketchPlan) newSketch() (sketch.Sketch, error) {
	switch p.Kind {
	case SketchDistinct:
		return sketch.NewHLL(uint8(p.Precision), uint64(p.Seed))
	case SketchTopK:
		return sketch.NewTopK(uint32(p.K), uint32(p.Candidates), uint32(p.Width), uint32(p.Depth), uint64(p.Seed))
	case SketchMembership:
		return sketch.NewBloom(uint64(p.Bits), uint32(p.Hashes), uint64(p.Seed))
	}
	return nil, errBadSketchPlan
}

// totalShuffleBytes is the process-wide shuffle-volume accumulator,
// mirroring runtime.MemStats ergonomics: benchmarks snapshot it before
// and after an experiment and report the delta, without threading every
// Result through.
var totalShuffleBytes atomic.Int64

// TotalShuffleBytes returns the modeled shuffle bytes delivered to
// reduces by all jobs in this process since start.
func TotalShuffleBytes() int64 { return totalShuffleBytes.Load() }
