// Slot arbitration between the cluster engine and per-job trackers.
//
// Historically the JobTracker greedily filled every free map slot it
// could see, which is correct when one job owns the cluster but makes
// multi-tenancy impossible: two trackers sharing an engine would race
// each other for slots with no notion of fairness or admission. The
// SlotArbiter interface inverts that relationship — a tracker *requests*
// a slot and the arbiter decides whether, and on which server, the
// request is granted. The default arbiter (one job, whole cluster)
// reproduces the historical greedy placement bit-for-bit; the jobserver
// package supplies multi-job arbiters with FIFO and weighted fair-share
// policies on top of the same interface.

package mapreduce

import "approxhadoop/internal/cluster"

// SlotRequest describes one map-slot acquisition attempt by a job.
type SlotRequest struct {
	// Job identifies the requesting job (arbiter bookkeeping key).
	Job *Job
	// Prefer lists replica-holding server IDs in placement order; the
	// arbiter honors data locality by granting one of these when it can.
	Prefer []string
	// Eligible is the job's own server filter (blacklisting); a nil
	// Eligible accepts every server.
	Eligible func(*cluster.Server) bool
}

// SlotArbiter arbitrates map slots among the jobs sharing one engine.
// Implementations are driven entirely from the engine's single-threaded
// virtual-time plane: every method is called in event order, so arbiter
// state — like everything else in the simulator — must be a pure
// function of the decision sequence, never of wall-clock interleaving.
type SlotArbiter interface {
	// AcquireMap asks for one map slot. A non-nil server is a grant:
	// the caller must occupy a slot on it immediately (same event) and
	// report the attempt's end via ReleaseMap. A nil server with
	// wait=true is backpressure — the job may not take a slot right now
	// but will be kicked (its fill pass re-scheduled) when capacity
	// frees. A nil server with wait=false means no eligible server can
	// host the request now or later, and the tracker's stall handling
	// (degrade or fail) applies.
	AcquireMap(req SlotRequest) (srv *cluster.Server, wait bool)
	// ReleaseMap reports that a previously granted attempt of job on
	// srv has ended (completed, killed, or failed).
	ReleaseMap(job *Job, srv *cluster.Server)
	// MapQuota returns the number of map slots the job may occupy
	// simultaneously under the current policy, or 0 for unlimited. The
	// tracker exposes it to controllers as the job's effective slot
	// count, so wave-based planning adapts to the job's actual share.
	MapQuota(job *Job) int
}

// greedyArbiter is the single-job default: first eligible free server,
// preferring the block's replica holders — exactly the placement the
// JobTracker used before arbitration existed.
type greedyArbiter struct {
	eng *cluster.Engine
}

func newGreedyArbiter(eng *cluster.Engine) *greedyArbiter {
	return &greedyArbiter{eng: eng}
}

// AcquireMap implements SlotArbiter.
func (g *greedyArbiter) AcquireMap(req SlotRequest) (*cluster.Server, bool) {
	var fallback *cluster.Server
	for _, s := range g.eng.Servers() {
		if (req.Eligible != nil && !req.Eligible(s)) || s.FreeSlots(cluster.MapSlot) <= 0 {
			continue
		}
		for _, rep := range req.Prefer {
			if rep == s.ID {
				return s, false
			}
		}
		if fallback == nil {
			fallback = s
		}
	}
	return fallback, false
}

// ReleaseMap implements SlotArbiter; a sole tenant has nothing to
// account.
func (g *greedyArbiter) ReleaseMap(*Job, *cluster.Server) {}

// MapQuota implements SlotArbiter: the whole cluster.
func (g *greedyArbiter) MapQuota(*Job) int { return 0 }
