package mapreduce

import (
	"approxhadoop/internal/stats"
	"fmt"
	"math"
	"strings"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
)

// wordCountInput builds a text file with known word counts.
func wordCountInput(t *testing.T, blockSize int) (*dfs.File, map[string]float64) {
	t.Helper()
	var sb strings.Builder
	want := map[string]float64{}
	words := []string{"ipsum", "lorem", "nisi", "sit", "ut", "laboris"}
	for i := 0; i < 200; i++ {
		var line []string
		for j := 0; j <= i%4; j++ {
			w := words[(i+j)%len(words)]
			line = append(line, w)
			want[w]++
		}
		sb.WriteString(strings.Join(line, " "))
		sb.WriteByte('\n')
	}
	return dfs.SplitText("words.txt", []byte(sb.String()), blockSize), want
}

func wordCountMapper() Mapper {
	return MapperFunc(func(rec Record, emit Emitter) {
		for _, w := range strings.Fields(rec.Value) {
			emit.Emit(w, 1)
		}
	})
}

func testEngine() *cluster.Engine {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 2
	cfg.ReduceSlotsPerServer = 1
	return cluster.New(cfg)
}

func runWordCount(t *testing.T, job *Job) *Result {
	t.Helper()
	res, err := Run(testEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPreciseWordCount(t *testing.T) {
	input, want := wordCountInput(t, 256)
	job := &Job{
		Name:      "wordcount",
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Reduces:   3,
	}
	res := runWordCount(t, job)
	if len(res.Outputs) != len(want) {
		t.Fatalf("got %d keys, want %d", len(res.Outputs), len(want))
	}
	for _, o := range res.Outputs {
		if !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("%s = %v, want %v", o.Key, o.Est.Value, want[o.Key])
		}
		if !o.Exact || o.Est.Err != 0 {
			t.Errorf("%s should be exact", o.Key)
		}
	}
	c := res.Counters
	if c.MapsCompleted != c.MapsTotal || c.MapsDropped != 0 || c.MapsKilled != 0 {
		t.Errorf("counters: %+v", c)
	}
	if c.ItemsTotal != 200 || c.ItemsProcessed != 200 {
		t.Errorf("items: %+v", c)
	}
	if res.Runtime <= 0 || res.EnergyWh <= 0 {
		t.Errorf("runtime %v energy %v should be positive", res.Runtime, res.EnergyWh)
	}
}

func TestWordCountWithCombiner(t *testing.T) {
	input, want := wordCountInput(t, 256)
	job := &Job{
		Name:      "wordcount-combine",
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Combine:   true,
	}
	res := runWordCount(t, job)
	for _, o := range res.Outputs {
		if !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("combined %s = %v, want %v", o.Key, o.Est.Value, want[o.Key])
		}
	}
}

func TestBarrierModeSameResult(t *testing.T) {
	input, want := wordCountInput(t, 256)
	job := &Job{
		Name:      "wordcount-barrier",
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Barrier:   true,
	}
	res := runWordCount(t, job)
	for _, o := range res.Outputs {
		if !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("barrier %s = %v, want %v", o.Key, o.Est.Value, want[o.Key])
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	input, _ := wordCountInput(t, 128)
	mk := func() *Job {
		return &Job{
			Input:     input,
			NewMapper: wordCountMapper,
			NewReduce: func(int) ReduceLogic { return SumReduce() },
			Seed:      7,
			Cost:      cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.01},
		}
	}
	a, err := Run(testEngine(), mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testEngine(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(a.Runtime, b.Runtime, 0) || len(a.Outputs) != len(b.Outputs) {
		t.Errorf("runs differ: %v vs %v", a.Runtime, b.Runtime)
	}
}

// dropController drops every task after the first `run` launches.
type dropController struct{ run int }

func (d *dropController) Name() string { return "drop-test" }
func (d *dropController) Plan(v *JobView) (float64, PlanAction) {
	if v.Launched < d.run {
		return 1, PlanRun
	}
	return 1, PlanDrop
}
func (d *dropController) Completed(v *JobView) Directive { return Directive{} }

func TestControllerDropsTasks(t *testing.T) {
	input, _ := wordCountInput(t, 64) // many small blocks
	n := len(input.Blocks)
	if n < 4 {
		t.Fatalf("need >= 4 blocks, got %d", n)
	}
	job := &Job{
		Input:      input,
		NewMapper:  wordCountMapper,
		NewReduce:  func(int) ReduceLogic { return SumReduce() },
		Controller: &dropController{run: 2},
	}
	res := runWordCount(t, job)
	if res.Counters.MapsCompleted != 2 {
		t.Errorf("completed %d, want 2", res.Counters.MapsCompleted)
	}
	if res.Counters.MapsDropped != n-2 {
		t.Errorf("dropped %d, want %d", res.Counters.MapsDropped, n-2)
	}
	// Approximate (dropped) execution via a plain reduce: bounds unknown.
	for _, o := range res.Outputs {
		if o.Exact || !math.IsNaN(o.Est.Err) {
			t.Errorf("output %s should carry unknown bounds", o.Key)
		}
	}
}

// killController kills all running maps after the first completion.
type killController struct{ fired bool }

func (k *killController) Name() string { return "kill-test" }
func (k *killController) Plan(v *JobView) (float64, PlanAction) {
	// Stop launching after the first wave.
	if v.Launched < v.TotalMapSlots {
		return 1, PlanRun
	}
	return 1, PlanDrop
}
func (k *killController) Completed(v *JobView) Directive {
	if !k.fired {
		k.fired = true
		return Directive{DropPending: true, KillRunning: true}
	}
	return Directive{}
}

func TestControllerKillsRunning(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	job := &Job{
		Input:      input,
		NewMapper:  wordCountMapper,
		NewReduce:  func(int) ReduceLogic { return SumReduce() },
		Controller: &killController{},
		Cost:       cluster.AnalyticCost{T0: 10, Tr: 0.01, Tp: 0.01},
	}
	res := runWordCount(t, job)
	if res.Counters.MapsCompleted != 1 {
		t.Errorf("completed %d, want exactly 1 (rest killed)", res.Counters.MapsCompleted)
	}
	if res.Counters.MapsKilled == 0 {
		t.Error("expected kills")
	}
	total := res.Counters.MapsCompleted + res.Counters.MapsDropped + res.Counters.MapsKilled
	if total < res.Counters.MapsTotal {
		t.Errorf("all maps should be accounted: %+v", res.Counters)
	}
}

func TestMaxLaunchDirective(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	n := len(input.Blocks)
	ctl := &maxLaunchController{cap: 3}
	job := &Job{
		Input:      input,
		NewMapper:  wordCountMapper,
		NewReduce:  func(int) ReduceLogic { return SumReduce() },
		Controller: ctl,
		Cost:       cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
	}
	res := runWordCount(t, job)
	if got := res.Counters.MapsCompleted + res.Counters.MapsKilled; got > 3+8 {
		t.Errorf("launched too many maps: %+v", res.Counters)
	}
	if res.Counters.MapsDropped == 0 && n > 3 {
		t.Error("expected drops under MaxLaunch")
	}
}

type maxLaunchController struct{ cap int }

func (m *maxLaunchController) Name() string                          { return "maxlaunch-test" }
func (m *maxLaunchController) Plan(v *JobView) (float64, PlanAction) { return 1, PlanRun }
func (m *maxLaunchController) Completed(v *JobView) Directive {
	return Directive{MaxLaunch: m.cap}
}

func TestSpeculationRecoversStragglers(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 2
	cfg.MapSlotsPerServer = 2
	cfg.StragglerProb = 0.3
	cfg.StragglerFactor = 50
	eng := cluster.New(cfg)
	job := &Job{
		Input:       input,
		NewMapper:   wordCountMapper,
		NewReduce:   func(int) ReduceLogic { return SumReduce() },
		Cost:        cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
		Speculation: true,
		Seed:        3,
	}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsSpeculated == 0 {
		t.Error("expected speculative attempts with heavy stragglers")
	}
	if res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("all logical tasks should complete: %+v", res.Counters)
	}
}

func TestValidation(t *testing.T) {
	eng := testEngine()
	if _, err := Run(eng, &Job{}); err == nil {
		t.Error("empty job should fail")
	}
	input, _ := wordCountInput(t, 256)
	if _, err := Run(eng, &Job{Input: input}); err == nil {
		t.Error("missing mapper should fail")
	}
	if _, err := Run(eng, &Job{Input: input, NewMapper: wordCountMapper}); err == nil {
		t.Error("missing reducer should fail")
	}
	job := &Job{Input: input, NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() }, Reduces: 99}
	if _, err := Run(eng, job); err == nil {
		t.Error("too many reduces should fail")
	}
}

func TestFormatErrorPropagates(t *testing.T) {
	input, _ := wordCountInput(t, 256)
	job := &Job{
		Input:     input,
		Format:    failingFormat{},
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
	}
	if _, err := Run(testEngine(), job); err == nil {
		t.Error("reader failure should fail the job")
	}
}

type failingFormat struct{}

func (failingFormat) Open(*dfs.Block, float64, int64) (RecordReader, error) {
	return nil, fmt.Errorf("boom")
}

func TestPartitionStable(t *testing.T) {
	for _, key := range []string{"a", "b", "lorem", "zzz"} {
		p := Partition(key, 5)
		if p < 0 || p >= 5 {
			t.Errorf("partition out of range for %q: %d", key, p)
		}
		if Partition(key, 5) != p {
			t.Error("partition must be deterministic")
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[Partition(fmt.Sprint(i), 4)] = true
	}
	if len(seen) != 4 {
		t.Errorf("hash partitioner should use all partitions: %v", seen)
	}
}

func TestResultOutputLookup(t *testing.T) {
	input, want := wordCountInput(t, 256)
	job := &Job{
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
	}
	res := runWordCount(t, job)
	ke, ok := res.Output("lorem")
	if !ok || !stats.AlmostEqual(ke.Est.Value, want["lorem"], 1e-9) {
		t.Errorf("Output lookup failed: %+v ok=%v", ke, ok)
	}
	if _, ok := res.Output("absent-key"); ok {
		t.Error("absent key should not be found")
	}
	if res.MaxRelErr() != 0 {
		t.Errorf("precise MaxRelErr = %v", res.MaxRelErr())
	}
}

func TestLocalityPreferred(t *testing.T) {
	// With free slots everywhere, each map should land on a replica
	// holder. We verify through the scheduler's pickServer directly.
	eng := testEngine()
	nn := dfs.NewNameNode([]string{"server-00", "server-01", "server-02", "server-03"}, 2)
	input, _ := wordCountInput(t, 256)
	if err := nn.Register(input); err != nil {
		t.Fatal(err)
	}
	tr := &tracker{eng: eng, job: &Job{}, arb: newGreedyArbiter(eng)}
	for _, b := range input.Blocks {
		srv, _ := tr.pickServer(b)
		found := false
		for _, rep := range b.Replicas {
			if rep == srv.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("block %d scheduled off-replica: %s not in %v", b.Index, srv.ID, b.Replicas)
		}
	}
}

func TestSleepIdleSavesEnergy(t *testing.T) {
	input, _ := wordCountInput(t, 2048) // single block: one map task
	mk := func(sleep bool) *Job {
		return &Job{
			Input:     input,
			NewMapper: wordCountMapper,
			NewReduce: func(int) ReduceLogic { return SumReduce() },
			Reduces:   1,
			Cost:      cluster.AnalyticCost{T0: 100, Tr: 0.01, Tp: 0.01},
			SleepIdle: sleep,
		}
	}
	awake, err := Run(testEngine(), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	slept, err := Run(testEngine(), mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if slept.EnergyWh >= awake.EnergyWh {
		t.Errorf("S3 should save energy: %v >= %v", slept.EnergyWh, awake.EnergyWh)
	}
	if math.Abs(slept.Runtime-awake.Runtime) > 1e-9 {
		t.Errorf("sleeping idle servers should not change runtime: %v vs %v", slept.Runtime, awake.Runtime)
	}
}

func TestWavesCounter(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	job := &Job{
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Cost:      cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
	}
	res := runWordCount(t, job)
	wantWaves := (len(input.Blocks) + 7) / 8 // 4 servers x 2 slots
	if res.Counters.Waves != wantWaves {
		t.Errorf("waves = %d, want %d", res.Counters.Waves, wantWaves)
	}
}

func TestSequentialOrderAblation(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	job := &Job{
		Input:           input,
		NewMapper:       wordCountMapper,
		NewReduce:       func(int) ReduceLogic { return SumReduce() },
		SequentialOrder: true,
	}
	res := runWordCount(t, job)
	if res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("sequential order should still complete: %+v", res.Counters)
	}
}

func TestPreciseReduceHelpers(t *testing.T) {
	view := EstimateView{Confidence: 0.95}
	min := MinReduce()
	min.Consume(&MapOutput{Pairs: []KV{{"k", 5}, {"k", 2}, {"k", 9}}, Items: 3, Sampled: 3})
	out := min.Finalize(view)
	if len(out) != 1 || !stats.AlmostEqual(out[0].Est.Value, 2, 1e-12) {
		t.Errorf("MinReduce = %+v", out)
	}
	max := MaxReduce()
	max.Consume(&MapOutput{Pairs: []KV{{"k", 5}, {"k", 2}}, Items: 2, Sampled: 2})
	if got := max.Finalize(view); !stats.AlmostEqual(got[0].Est.Value, 5, 1e-12) {
		t.Errorf("MaxReduce = %+v", got)
	}
	mean := MeanReduce()
	mean.Consume(&MapOutput{Pairs: []KV{{"k", 4}, {"k", 8}}, Items: 2, Sampled: 2})
	if got := mean.Finalize(view); !stats.AlmostEqual(got[0].Est.Value, 6, 1e-12) {
		t.Errorf("MeanReduce = %+v", got)
	}
	if mean.Estimates(view) != nil {
		t.Error("precise reduce has no online estimates")
	}
}
