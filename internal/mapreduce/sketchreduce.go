package mapreduce

import (
	"math"
	"sort"

	"approxhadoop/internal/sketch"
	"approxhadoop/internal/stats"
)

// This file implements the sketch reducer family: ReduceLogic
// implementations for the three queries the sketch plane serves —
// distinct count, top-k heavy hitters, and membership. Each consumes
// both payload representations uniformly: sketch outputs (Job.Sketch)
// are merged, which is O(groups) per map task regardless of input
// size, and composite pairs (the EmitElement fallback) are folded
// exactly, which makes the pairs run both the shuffle-volume baseline
// and the ground truth the sketch run is validated against.
//
// Error composition with multi-stage sampling: when the job sampled
// (m_i < M_i) or dropped clusters, the reduce only saw part of the
// population, so a sketch estimate carries two error sources — the
// sketch's own noise and the unseen data. Sums extrapolate by the
// paper's Section 3.1 cluster estimators; distinct counts do not
// (elements recur across clusters), so DistinctReduce and
// MembershipReduce report the observed-distinct estimate widened by
// the worst-case unseen contribution V·(1/coverage − 1) — the bound
// is exact when every unseen element is new (all-singletons), and
// conservative otherwise. TopKReduce counts are additive, so they do
// scale by the standard two-stage factor (N/n)·(ΣM/Σm), as does the
// CMS overestimation bound ε·W.

// sampleTally accumulates the per-cluster unit counts every sketch
// reducer needs to compose sampling error into its estimates.
type sampleTally struct {
	n       int     // clusters consumed
	sumM    float64 // Σ M_i over consumed clusters
	summ    float64 // Σ m_i over consumed clusters
	sampled bool    // any cluster had m_i < M_i
}

func (s *sampleTally) consume(out *MapOutput) {
	s.n++
	s.sumM += float64(out.Items)
	s.summ += float64(out.Sampled)
	if out.Sampled < out.Items {
		s.sampled = true
	}
}

// complete reports whether the reduce saw every unit of every cluster.
func (s *sampleTally) complete(view EstimateView) bool {
	return !s.sampled && view.Dropped == 0 && s.n >= view.TotalMaps
}

// coverage estimates the fraction of population units the reduce saw:
// Σm over the consumed clusters divided by the extrapolated population
// total N·(ΣM/n). Returns 1 when nothing was missed.
func (s *sampleTally) coverage(view EstimateView) float64 {
	if s.complete(view) {
		return 1
	}
	if s.n == 0 || s.sumM <= 0 || s.summ <= 0 {
		return 0
	}
	pop := s.sumM / float64(s.n) * float64(view.TotalMaps)
	cov := s.summ / pop
	if cov > 1 {
		cov = 1
	}
	return cov
}

// scale returns the two-stage expansion factor (N/n)·(ΣM/Σm) for
// additive quantities (counts of occurrences), 1 when complete.
func (s *sampleTally) scale(view EstimateView) float64 {
	if s.complete(view) {
		return 1
	}
	if s.n == 0 || s.summ <= 0 {
		return math.NaN()
	}
	return float64(view.TotalMaps) / float64(s.n) * s.sumM / s.summ
}

// zNormal is the large-df t critical value used for sketch noise
// (sketch error is not a t-statistic; the normal approximation is the
// standard HLL/linear-counting error story).
func zNormal(confidence float64) float64 {
	return stats.TwoSidedT(confidence, 1e9)
}

// widenForSampling adds the worst-case unseen-distinct contribution to
// a distinct-style estimate: with coverage c, the unseen units number
// at most V·(1/c − 1) new elements. exact stays true only at full
// coverage.
func widenForSampling(est stats.Estimate, cov float64) stats.Estimate {
	if cov >= 1 {
		return est
	}
	if cov <= 0 {
		est.Err = math.NaN()
		est.StdErr = math.NaN()
		return est
	}
	est.Err += est.Value * (1/cov - 1)
	return est
}

// --- DistinctReduce ----------------------------------------------------

// DistinctReduce counts distinct elements per group. Sketch outputs
// merge HLLs (estimate error: the HLL relative standard error at the
// job confidence); composite pairs are counted exactly. Either way the
// estimate widens for sampling per the file comment.
type DistinctReduce struct {
	tally sampleTally
	hll   map[string]*sketch.HLL
	exact map[string]map[string]struct{}
}

// NewDistinctReduce builds a DistinctReduce; use with
// Job.Sketch{Kind: SketchDistinct} or the pairs fallback.
func NewDistinctReduce() *DistinctReduce {
	return &DistinctReduce{
		hll:   make(map[string]*sketch.HLL),
		exact: make(map[string]map[string]struct{}),
	}
}

// Consume implements ReduceLogic.
func (r *DistinctReduce) Consume(out *MapOutput) {
	r.tally.consume(out)
	if out.IsSketch() {
		out.EachSketch(func(group string, s sketch.Sketch) {
			h, ok := s.(*sketch.HLL)
			if !ok {
				return
			}
			if cur, ok := r.hll[group]; ok {
				//lint:ignore errcheck same-plan sketches cannot mismatch
				_ = cur.Merge(h)
				return
			}
			r.hll[group] = h.Clone().(*sketch.HLL)
		})
		return
	}
	out.EachPair(func(key string, _ float64) {
		group, element := SplitElement(key)
		set := r.exact[group]
		if set == nil {
			set = make(map[string]struct{})
			r.exact[group] = set
		}
		set[element] = struct{}{}
	})
	out.EachCombined(func(key string, _ stats.RunningStat) {
		group, element := SplitElement(key)
		set := r.exact[group]
		if set == nil {
			set = make(map[string]struct{})
			r.exact[group] = set
		}
		set[element] = struct{}{}
	})
}

// Estimates implements ReduceLogic.
func (r *DistinctReduce) Estimates(view EstimateView) []KeyEstimate { return r.Finalize(view) }

// Finalize implements ReduceLogic.
func (r *DistinctReduce) Finalize(view EstimateView) []KeyEstimate {
	cov := r.tally.coverage(view)
	z := zNormal(view.Confidence)
	out := make([]KeyEstimate, 0, len(r.hll)+len(r.exact))
	for group, h := range r.hll {
		v := h.Estimate()
		est := stats.Estimate{
			Value:  v,
			StdErr: v * h.RelStdErr(),
			DF:     math.Inf(1),
			Conf:   view.Confidence,
		}
		est.Err = z * est.StdErr
		out = append(out, KeyEstimate{Key: group, Est: widenForSampling(est, cov)})
	}
	for group, set := range r.exact {
		est := stats.Estimate{Value: float64(len(set)), Conf: view.Confidence}
		ke := KeyEstimate{Key: group, Est: widenForSampling(est, cov)}
		ke.Exact = cov >= 1
		out = append(out, ke)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// --- TopKReduce --------------------------------------------------------

// TopKReduce reports the k heaviest elements per group, one output key
// per (group, element) as "group/element" (bare "element" for the
// empty group). Sketch outputs merge TopK sketches; counts and the
// CMS ε·W overestimation bound scale by the two-stage expansion
// factor under sampling. Composite pairs are tallied exactly.
type TopKReduce struct {
	k     int
	tally sampleTally
	sk    map[string]*sketch.TopK
	exact map[string]map[string]float64
}

// NewTopKReduce builds a TopKReduce returning the top k elements per
// group; use with Job.Sketch{Kind: SketchTopK, K: k} or the pairs
// fallback.
func NewTopKReduce(k int) *TopKReduce {
	if k < 1 {
		k = 1
	}
	return &TopKReduce{
		k:     k,
		sk:    make(map[string]*sketch.TopK),
		exact: make(map[string]map[string]float64),
	}
}

// Consume implements ReduceLogic.
func (r *TopKReduce) Consume(out *MapOutput) {
	r.tally.consume(out)
	if out.IsSketch() {
		out.EachSketch(func(group string, s sketch.Sketch) {
			t, ok := s.(*sketch.TopK)
			if !ok {
				return
			}
			if cur, ok := r.sk[group]; ok {
				//lint:ignore errcheck same-plan sketches cannot mismatch
				_ = cur.Merge(t)
				return
			}
			r.sk[group] = t.Clone().(*sketch.TopK)
		})
		return
	}
	add := func(key string, w float64) {
		group, element := SplitElement(key)
		m := r.exact[group]
		if m == nil {
			m = make(map[string]float64)
			r.exact[group] = m
		}
		m[element] += w
	}
	out.EachPair(add)
	out.EachCombined(func(key string, rs stats.RunningStat) { add(key, rs.Sum) })
}

// outKey joins group and element for the final output.
func outKey(group, element string) string {
	if group == "" {
		return element
	}
	return group + "/" + element
}

// Estimates implements ReduceLogic.
func (r *TopKReduce) Estimates(view EstimateView) []KeyEstimate { return r.Finalize(view) }

// Finalize implements ReduceLogic.
func (r *TopKReduce) Finalize(view EstimateView) []KeyEstimate {
	scale := r.tally.scale(view)
	complete := r.tally.complete(view)
	var out []KeyEstimate
	for group, t := range r.sk {
		cms := t.CMS()
		bound := cms.ErrBound()
		conf := view.Confidence
		if c := cms.Confidence(); c < conf {
			conf = c
		}
		for _, ent := range t.Top(r.k) {
			est := stats.Estimate{
				Value: scale * float64(ent.Count),
				Err:   scale * bound,
				DF:    math.Inf(1),
				Conf:  conf,
			}
			out = append(out, KeyEstimate{Key: outKey(group, ent.Key), Est: est})
		}
	}
	for group, counts := range r.exact {
		type kc struct {
			e string
			c float64
		}
		all := make([]kc, 0, len(counts))
		for e, c := range counts {
			all = append(all, kc{e, c})
		}
		sort.Slice(all, func(i, j int) bool {
			//lint:ignore nofloateq tallies are sums of integer weights; exact ties must fall through to the key order for deterministic output
			if all[i].c != all[j].c {
				return all[i].c > all[j].c
			}
			return all[i].e < all[j].e
		})
		if len(all) > r.k {
			all = all[:r.k]
		}
		for _, ent := range all {
			est := stats.Estimate{Value: scale * ent.c, Conf: view.Confidence}
			if !complete {
				// Exact tallies of a sample extrapolate but carry no
				// per-element bound: which elements were missed is
				// unknown.
				est.Err = math.NaN()
				est.StdErr = math.NaN()
			}
			out = append(out, KeyEstimate{Key: outKey(group, ent.e), Est: est, Exact: complete})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// --- MembershipReduce --------------------------------------------------

// MembershipReduce answers membership per group: the output value per
// group is the estimated distinct member count (linear counting over
// the Bloom bit load for sketches, exact set size for pairs), and
// Contains answers point queries after the job — definitive negatives,
// positives correct up to the filter's FPR.
type MembershipReduce struct {
	tally sampleTally
	bloom map[string]*sketch.Bloom
	exact map[string]map[string]struct{}
}

// NewMembershipReduce builds a MembershipReduce; use with
// Job.Sketch{Kind: SketchMembership} or the pairs fallback.
func NewMembershipReduce() *MembershipReduce {
	return &MembershipReduce{
		bloom: make(map[string]*sketch.Bloom),
		exact: make(map[string]map[string]struct{}),
	}
}

// Consume implements ReduceLogic.
func (r *MembershipReduce) Consume(out *MapOutput) {
	r.tally.consume(out)
	if out.IsSketch() {
		out.EachSketch(func(group string, s sketch.Sketch) {
			b, ok := s.(*sketch.Bloom)
			if !ok {
				return
			}
			if cur, ok := r.bloom[group]; ok {
				//lint:ignore errcheck same-plan sketches cannot mismatch
				_ = cur.Merge(b)
				return
			}
			r.bloom[group] = b.Clone().(*sketch.Bloom)
		})
		return
	}
	add := func(key string, _ float64) {
		group, element := SplitElement(key)
		set := r.exact[group]
		if set == nil {
			set = make(map[string]struct{})
			r.exact[group] = set
		}
		set[element] = struct{}{}
	}
	out.EachPair(add)
	out.EachCombined(func(key string, rs stats.RunningStat) { add(key, rs.Sum) })
}

// Contains reports whether element was observed in group, with the
// false-positive probability of a true answer (0 for exact sets; a
// sampled job can also have missed the element entirely, which this
// does not account for).
func (r *MembershipReduce) Contains(group, element string) (bool, float64) {
	if b, ok := r.bloom[group]; ok {
		if !b.Contains(element) {
			return false, 0
		}
		return true, b.FPR()
	}
	if set, ok := r.exact[group]; ok {
		_, in := set[element]
		return in, 0
	}
	return false, 0
}

// Estimates implements ReduceLogic.
func (r *MembershipReduce) Estimates(view EstimateView) []KeyEstimate { return r.Finalize(view) }

// Finalize implements ReduceLogic.
func (r *MembershipReduce) Finalize(view EstimateView) []KeyEstimate {
	cov := r.tally.coverage(view)
	z := zNormal(view.Confidence)
	out := make([]KeyEstimate, 0, len(r.bloom)+len(r.exact))
	for group, b := range r.bloom {
		v := b.CountEstimate()
		est := stats.Estimate{
			Value:  v,
			StdErr: b.CountStdErr(),
			DF:     math.Inf(1),
			Conf:   view.Confidence,
		}
		est.Err = z * est.StdErr
		out = append(out, KeyEstimate{Key: group, Est: widenForSampling(est, cov)})
	}
	for group, set := range r.exact {
		est := stats.Estimate{Value: float64(len(set)), Conf: view.Confidence}
		ke := KeyEstimate{Key: group, Est: widenForSampling(est, cov)}
		ke.Exact = cov >= 1
		out = append(out, ke)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
