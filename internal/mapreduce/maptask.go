package mapreduce

import (
	"hash/fnv"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/sketch"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/vtime"
	"approxhadoop/internal/zerocopy"
)

// Partition returns the reduce partition for a key: hash(key) mod R,
// Hadoop's default HashPartitioner.
func Partition(key string, reduces int) int {
	h := fnv.New32a()
	//lint:ignore errcheck hash.Hash documents that Write never returns an error
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(reduces))
}

// mapResult is the in-memory product of executing one map task.
type mapResult struct {
	measure    cluster.TaskMeasure
	partitions []*MapOutput // one per reduce partition
	pairs      int64        // total pairs emitted
}

// mapEmitter partitions emitted pairs, optionally combining.
//
// Two representations exist. The default arena representation interns
// every emitted key once into the attempt's keyTable — which also
// memoizes the key's partition, so the FNV hash runs once per distinct
// key instead of once per emit — and then moves only (keyID, value)
// pairs: raw mode appends idPairs to flat per-partition runs; combine
// mode accumulates into one dense RunningStat slice indexed by key ID.
// The legacy representation (Job.LegacyDataPlane) keeps the original
// string-keyed slices/maps so equivalence tests can diff the two paths.
type mapEmitter struct {
	reduces int
	combine bool
	meter   vtime.Meter
	pairs   int64

	// arena representation (default)
	intern    *keyTable
	runs      [][]idPair          // raw: per-partition (keyID, value) runs
	combIDs   [][]int32           // combine: per-partition key IDs in first-emit order
	combStats []stats.RunningStat // combine: dense aggregates indexed by key ID

	// legacy representation (Job.LegacyDataPlane)
	raw  [][]KV
	comb []map[string]stats.RunningStat

	// sketch representation (Job.Sketch, layered over either of the
	// above for plain Emit calls): groups interns group keys — which
	// also memoizes each group's partition — proto is the empty sketch
	// cloned per new group, sketches is dense by group ID, and
	// sketchIDs lists each partition's group IDs in first-emit order.
	plan      *SketchPlan
	proto     sketch.Sketch
	groups    *keyTable
	sketches  []sketch.Sketch
	sketchIDs [][]int32
	ekey      []byte // composite-key scratch for the pairs fallback
}

// newMapEmitter builds the per-attempt emitter. pairsHint, when > 0,
// is the expected total pair count for the attempt: partition runs are
// carved zero-length from one preallocated backing array (disjoint
// capacities, so in-capacity appends never interfere), the interner's
// id map is pre-sized, and combiner state is pre-sized, which keeps
// growth reallocations off the emit hot path.
func newMapEmitter(reduces int, combine, legacy bool, meter vtime.Meter, pairsHint int) *mapEmitter {
	e := &mapEmitter{reduces: reduces, combine: combine, meter: meter}
	perPart := 0
	if pairsHint > 0 {
		perPart = pairsHint/reduces + 1
	}
	if legacy {
		if combine {
			e.comb = make([]map[string]stats.RunningStat, reduces)
			for i := range e.comb {
				e.comb[i] = make(map[string]stats.RunningStat, perPart)
			}
		} else {
			e.raw = make([][]KV, reduces)
			if perPart > 0 {
				backing := make([]KV, reduces*perPart)
				for i := range e.raw {
					e.raw[i] = backing[i*perPart : i*perPart : (i+1)*perPart]
				}
			}
		}
		return e
	}
	e.intern = newKeyTable(reduces, pairsHint)
	if combine {
		e.combIDs = make([][]int32, reduces)
		if pairsHint > 0 {
			e.combStats = make([]stats.RunningStat, 0, pairsHint)
		}
	} else {
		e.runs = make([][]idPair, reduces)
		if perPart > 0 {
			backing := make([]idPair, reduces*perPart)
			for i := range e.runs {
				e.runs[i] = backing[i*perPart : i*perPart : (i+1)*perPart]
			}
		}
	}
	return e
}

// enableSketch switches EmitElement from the composite-pair fallback
// to folding into per-group sketches.
func (e *mapEmitter) enableSketch(plan *SketchPlan) error {
	proto, err := plan.newSketch()
	if err != nil {
		return err
	}
	e.plan = plan
	e.proto = proto
	e.groups = newKeyTable(e.reduces, 64)
	e.sketchIDs = make([][]int32, e.reduces)
	return nil
}

// Emit implements Emitter. key may be a transient view of a reusable
// buffer (the push-mode record contract): the interner copies it on
// first sight, and the legacy path only runs with pull-mode readers
// whose records are durable.
//
//approx:compute
//approx:hotpath
func (e *mapEmitter) Emit(key string, value float64) {
	e.pairs++
	if e.intern != nil {
		id, p := e.intern.Intern(key)
		if e.combine {
			if int(id) == len(e.combStats) {
				e.combStats = append(e.combStats, stats.RunningStat{})
				e.combIDs[p] = append(e.combIDs[p], id)
			}
			e.combStats[id].Add(value)
			return
		}
		e.runs[p] = append(e.runs[p], idPair{id: id, v: value})
		return
	}
	p := Partition(key, e.reduces)
	if e.combine {
		rs := e.comb[p][key]
		rs.Add(value)
		e.comb[p][key] = rs
		return
	}
	e.raw[p] = append(e.raw[p], KV{Key: key, Value: value})
}

// EmitElement implements ElementEmitter. Under a sketch plan the
// element folds into the group's sketch (weight rounds to a positive
// integer count, minimum 1); otherwise it degrades to the composite
// pair group+ElementSep+element — partitioned by the group alone, so a
// group's elements always meet in one reduce partition in both
// representations. group and element may be transient buffer views:
// the interners copy on first sight, the sketches hash without
// retaining (TopK clones the candidates it keeps), and the legacy path
// only runs with pull-mode readers whose records are durable.
//
//approx:compute
//approx:hotpath
func (e *mapEmitter) EmitElement(group, element string, weight float64) {
	if e.plan == nil {
		p := int32(Partition(group, e.reduces))
		if e.intern == nil {
			e.emitAt(group+ElementSep+element, weight, p)
			return
		}
		e.ekey = append(e.ekey[:0], group...)
		e.ekey = append(e.ekey, ElementSep[0])
		e.ekey = append(e.ekey, element...)
		e.emitAt(zerocopy.String(e.ekey), weight, p)
		return
	}
	e.pairs++
	id, p := e.groups.Intern(group)
	if int(id) == len(e.sketches) {
		e.sketches = append(e.sketches, e.proto.Clone())
		e.sketchIDs[p] = append(e.sketchIDs[p], id)
	}
	n := uint64(1)
	if weight > 1 {
		n = uint64(weight + 0.5)
	}
	e.sketches[id].Fold(element, n)
}

// emitAt is Emit with the partition already decided (the composite-pair
// fallback partitions by group, not by the full key).
//
//approx:compute
//approx:hotpath
func (e *mapEmitter) emitAt(key string, value float64, p int32) {
	e.pairs++
	if e.intern != nil {
		id := e.intern.InternAt(key, p)
		if e.combine {
			if int(id) == len(e.combStats) {
				e.combStats = append(e.combStats, stats.RunningStat{})
				e.combIDs[p] = append(e.combIDs[p], id)
			}
			e.combStats[id].Add(value)
			return
		}
		e.runs[p] = append(e.runs[p], idPair{id: id, v: value})
		return
	}
	if e.combine {
		rs := e.comb[p][key]
		rs.Add(value)
		e.comb[p][key] = rs
		return
	}
	e.raw[p] = append(e.raw[p], KV{Key: key, Value: value})
}

// ChargeCompute implements vtime.Charger: user map kernels declare
// their inner-loop work so the meter can attribute compute time
// deterministically.
//
//approx:compute
func (e *mapEmitter) ChargeCompute(units float64) { e.meter.Charge(units) }

// executeMap runs one map task attempt in-process: it opens the block
// through the job's input format (applying the sampling ratio), feeds
// every returned record to a fresh Mapper, and partitions the emitted
// pairs. The supplied per-attempt meter splits charged compute into
// setup, read and process components so cost models and the
// target-error controller can fit Equation 5.
//
// By default records flow through the zero-allocation data plane: if
// the reader supports push mode (RecordPusher), records are yielded as
// views of reusable buffers straight from the block backing, and the
// emitter interns keys into the attempt's arena. The push loop brackets
// each record with the exact same meter Begin/End sequence as the pull
// loop, and the emitter performs the same float operations in the same
// order, so a (job, seed) pair produces bit-identical results on either
// path (Job.LegacyDataPlane forces the old one; the equivalence tests
// diff them).
//
// executeMap is the compute plane: a pure function of
// (job config, block, ratio, seed) that may run on a pool worker
// concurrently with the virtual-time scheduler. It must never touch
// tracker or engine state, the shared Job.Meter, or package-level
// variables — the approxlint `sharedstate` analyzer enforces this for
// everything reachable from the directive below. Per-attempt buffer
// reuse goes through an attempt-owned BufList, never a sync.Pool,
// which the analyzer also rejects here: pool hand-out order depends on
// goroutine scheduling.
//
//approx:compute
func executeMap(job *Job, block *dfs.Block, taskID int, ratio float64, seed int64, meter vtime.Meter, pairsHint int) (*mapResult, error) {
	meter.Begin(vtime.OpSetup)
	reader, err := job.Format.Open(block, ratio, seed)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck block readers close in-memory sources; nothing to surface
	defer reader.Close()
	if ms, ok := reader.(MeterSetter); ok {
		ms.SetMeter(meter)
	}
	var bufs *BufList
	if !job.LegacyDataPlane {
		if bl, ok := reader.(BufferLender); ok {
			bufs = &BufList{}
			bl.SetBuffers(bufs)
		}
	}
	var mapper Mapper
	if job.NewMapperFor != nil {
		mapper = job.NewMapperFor(taskID)
	} else {
		mapper = job.NewMapper()
	}
	emitter := newMapEmitter(job.Reduces, job.Combine, job.LegacyDataPlane, meter, pairsHint)
	if job.Sketch != nil {
		if err := emitter.enableSketch(job.Sketch); err != nil {
			return nil, err
		}
	}
	setup := meter.End(vtime.OpSetup, 1, 0)

	var procSecs float64
	mapOne := func(rec Record) {
		meter.Begin(vtime.OpProc)
		mapper.Map(rec, emitter)
		procSecs += meter.End(vtime.OpProc, 1, 0)
	}
	pushed := false
	if !job.LegacyDataPlane {
		if p, ok := reader.(RecordPusher); ok {
			pushed, err = p.Push(mapOne)
			if err != nil {
				return nil, err
			}
		}
	}
	if !pushed {
		for {
			rec, ok, err := reader.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			mapOne(rec)
		}
	}
	rm := reader.Measure()
	res := &mapResult{
		measure: cluster.TaskMeasure{
			Items:     rm.Items,
			Processed: rm.Sampled,
			Bytes:     rm.Bytes,
			ReadSecs:  rm.ReadSecs,
			ProcSecs:  procSecs,
			SetupSecs: setup,
		},
		pairs: emitter.pairs,
	}
	res.partitions = make([]*MapOutput, job.Reduces)
	outs := make([]MapOutput, job.Reduces) // one allocation for all partitions
	for p := 0; p < job.Reduces; p++ {
		out := &outs[p]
		out.TaskID = taskID
		out.Items = rm.Items
		out.Sampled = rm.Sampled
		if emitter.intern != nil {
			out.keys = emitter.intern
			if job.Combine {
				ids := emitter.combIDs[p]
				if ids == nil {
					ids = []int32{} // non-nil marks the output combined
				}
				out.combIDs = ids
				out.combStats = emitter.combStats
			} else {
				out.run = emitter.runs[p]
			}
		} else if job.Combine {
			out.Combined = emitter.comb[p]
		} else {
			out.Pairs = emitter.raw[p]
		}
		if emitter.groups != nil {
			out.groups = emitter.groups
			out.sketchIDs = emitter.sketchIDs[p]
			out.sketches = emitter.sketches
		}
		res.partitions[p] = out
	}
	return res, nil
}
