package mapreduce

import (
	"hash/fnv"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/vtime"
)

// Partition returns the reduce partition for a key: hash(key) mod R,
// Hadoop's default HashPartitioner.
func Partition(key string, reduces int) int {
	h := fnv.New32a()
	//lint:ignore errcheck hash.Hash documents that Write never returns an error
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(reduces))
}

// mapResult is the in-memory product of executing one map task.
type mapResult struct {
	measure    cluster.TaskMeasure
	partitions []*MapOutput // one per reduce partition
	pairs      int64        // total pairs emitted
}

// mapEmitter partitions emitted pairs, optionally combining.
type mapEmitter struct {
	reduces int
	combine bool
	raw     [][]KV
	comb    []map[string]stats.RunningStat
	pairs   int64
	meter   vtime.Meter
}

// newMapEmitter builds the per-attempt emitter. pairsHint, when > 0,
// is the expected total pair count for the attempt: raw partition
// slices are carved zero-length from one preallocated backing array
// (disjoint capacities, so in-capacity appends never interfere) and
// combiner maps are pre-sized, which keeps append-growth reallocations
// off the map hot path.
func newMapEmitter(reduces int, combine bool, meter vtime.Meter, pairsHint int) *mapEmitter {
	e := &mapEmitter{reduces: reduces, combine: combine, meter: meter}
	perPart := 0
	if pairsHint > 0 {
		perPart = pairsHint/reduces + 1
	}
	if combine {
		e.comb = make([]map[string]stats.RunningStat, reduces)
		for i := range e.comb {
			e.comb[i] = make(map[string]stats.RunningStat, perPart)
		}
	} else {
		e.raw = make([][]KV, reduces)
		if perPart > 0 {
			backing := make([]KV, reduces*perPart)
			for i := range e.raw {
				e.raw[i] = backing[i*perPart : i*perPart : (i+1)*perPart]
			}
		}
	}
	return e
}

// Emit implements Emitter.
func (e *mapEmitter) Emit(key string, value float64) {
	e.pairs++
	p := Partition(key, e.reduces)
	if e.combine {
		rs := e.comb[p][key]
		rs.Add(value)
		e.comb[p][key] = rs
		return
	}
	e.raw[p] = append(e.raw[p], KV{Key: key, Value: value})
}

// ChargeCompute implements vtime.Charger: user map kernels declare
// their inner-loop work so the meter can attribute compute time
// deterministically.
func (e *mapEmitter) ChargeCompute(units float64) { e.meter.Charge(units) }

// executeMap runs one map task attempt in-process: it opens the block
// through the job's input format (applying the sampling ratio), feeds
// every returned record to a fresh Mapper, and partitions the emitted
// pairs. The supplied per-attempt meter splits charged compute into
// setup, read and process components so cost models and the
// target-error controller can fit Equation 5.
//
// executeMap is the compute plane: a pure function of
// (job config, block, ratio, seed) that may run on a pool worker
// concurrently with the virtual-time scheduler. It must never touch
// tracker or engine state, the shared Job.Meter, or package-level
// variables — the approxlint `sharedstate` analyzer enforces this for
// everything reachable from the directive below.
//
//approx:compute
func executeMap(job *Job, block *dfs.Block, taskID int, ratio float64, seed int64, meter vtime.Meter, pairsHint int) (*mapResult, error) {
	meter.Begin(vtime.OpSetup)
	reader, err := job.Format.Open(block, ratio, seed)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck block readers close in-memory sources; nothing to surface
	defer reader.Close()
	if ms, ok := reader.(MeterSetter); ok {
		ms.SetMeter(meter)
	}
	var mapper Mapper
	if job.NewMapperFor != nil {
		mapper = job.NewMapperFor(taskID)
	} else {
		mapper = job.NewMapper()
	}
	emitter := newMapEmitter(job.Reduces, job.Combine, meter, pairsHint)
	setup := meter.End(vtime.OpSetup, 1, 0)

	var procSecs float64
	for {
		rec, ok, err := reader.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		meter.Begin(vtime.OpProc)
		mapper.Map(rec, emitter)
		procSecs += meter.End(vtime.OpProc, 1, 0)
	}
	rm := reader.Measure()
	res := &mapResult{
		measure: cluster.TaskMeasure{
			Items:     rm.Items,
			Processed: rm.Sampled,
			Bytes:     rm.Bytes,
			ReadSecs:  rm.ReadSecs,
			ProcSecs:  procSecs,
			SetupSecs: setup,
		},
		pairs: emitter.pairs,
	}
	res.partitions = make([]*MapOutput, job.Reduces)
	outs := make([]MapOutput, job.Reduces) // one allocation for all partitions
	for p := 0; p < job.Reduces; p++ {
		out := &outs[p]
		out.TaskID = taskID
		out.Items = rm.Items
		out.Sampled = rm.Sampled
		if job.Combine {
			out.Combined = emitter.comb[p]
		} else {
			out.Pairs = emitter.raw[p]
		}
		res.partitions[p] = out
	}
	return res, nil
}
