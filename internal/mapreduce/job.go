package mapreduce

import (
	"errors"
	"fmt"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/vtime"
)

// RetryPolicy bounds the JobTracker's response to task attempts lost
// to faults. The zero value reproduces classic Hadoop semantics:
// unlimited immediate re-execution, no blacklisting, no deadline.
type RetryPolicy struct {
	// MaxAttemptsPerTask caps launches (first attempt + retries) of
	// one logical map task; a task whose last allowed attempt fails is
	// exhausted — degraded to a dropped cluster under DegradeToDrop,
	// otherwise a job error. 0 = unlimited.
	MaxAttemptsPerTask int
	// Backoff is the virtual-time delay before re-queuing a failed
	// task, doubling per failed attempt (exponential backoff). 0 =
	// immediate re-queue.
	Backoff float64
	// BlacklistAfter removes a server from map scheduling after it has
	// hosted this many failed attempts (Hadoop's TaskTracker
	// blacklisting). Blacklisting does not destroy the server's block
	// replicas and does not touch work already running there. 0 =
	// never blacklist.
	BlacklistAfter int
	// JobDeadline is a virtual-time budget for the map phase, measured
	// from job start. When it expires with maps still unfinished, the
	// remaining tasks are degraded to drops under DegradeToDrop;
	// otherwise the job fails. 0 = no deadline.
	JobDeadline float64
}

// Job describes one MapReduce job. The zero values of optional fields
// select sensible defaults (see Validate).
type Job struct {
	Name   string
	Input  *dfs.File
	Format InputFormat

	// NewMapper builds one Mapper per map task attempt.
	//
	//approx:pure
	NewMapper func() Mapper
	// NewMapperFor, when set, overrides NewMapper with a per-task
	// factory. This is how user-defined approximation selects between
	// precise and approximate map variants per task.
	//
	//approx:pure
	NewMapperFor func(taskID int) Mapper
	// NewReduce builds the ReduceLogic for each reduce partition.
	NewReduce func(partition int) ReduceLogic
	// Reduces is the number of reduce tasks (default: one per server,
	// matching the paper's configuration).
	Reduces int

	// Combine enables map-side combining: intermediate pairs are
	// pre-aggregated per key into (count, sum, sumsq) before the
	// shuffle. Lossless for aggregation reducers; reducers that need
	// raw values (GEV, user reduce functions) must leave it off.
	Combine bool

	// Sketch, when non-nil, enables the sketch-emitting map-output
	// representation: EmitElement calls fold into one fixed-size
	// mergeable sketch per group (distinct count, top-k, or membership
	// per Kind), and the reduce side merges sketches instead of
	// iterating pairs. Pair with a sketch-aware ReduceLogic
	// (DistinctReduce, TopKReduce, MembershipReduce). Plain Emit calls
	// still travel as pairs. Nil keeps the pairs representation:
	// EmitElement then degrades to composite group+element pairs.
	Sketch *SketchPlan

	// Controller steers approximation; nil runs the job precisely.
	Controller Controller
	// Confidence for error bounds (default 0.95).
	Confidence float64

	// Cost converts metered task execution into virtual durations
	// (default cluster.MeasuredCost{}).
	Cost cluster.CostModel

	// Meter attributes compute seconds to in-process map and reduce
	// execution (default vtime.NewDeterministic(), which makes task
	// measurements — and therefore the whole simulation — reproducible).
	// vtime.NewWall() restores host wall-clock measurement for
	// calibration runs.
	Meter vtime.Meter

	// Seed drives task-order randomization and sampling.
	Seed int64

	// Workers bounds the map-compute worker pool: map attempts execute
	// their real user code on up to this many goroutines while the
	// discrete-event scheduler keeps making every decision
	// single-threaded in virtual-time order. Results are applied in
	// deterministic launch order, so a (job, seed) pair produces
	// bit-identical results for any pool size. 0 = GOMAXPROCS; 1 = run
	// attempts inline on the scheduler goroutine. Pools larger than 1
	// require Meter to implement vtime.Forker (the built-in meters do);
	// otherwise the job falls back to inline execution.
	Workers int

	// LegacyDataPlane forces the pre-interning data plane: pull-mode
	// record readers (one durable string per record) and string-keyed
	// shuffle payloads instead of push-mode buffer views, interned key
	// IDs and arena runs. Results are bit-identical either way — the
	// equivalence tests diff the two paths — so this exists for those
	// tests, allocation A/B measurements, and as an escape hatch.
	LegacyDataPlane bool

	// Barrier disables incremental reduces: outputs buffer until all
	// maps finish (the stock-Hadoop ablation). Online error estimation
	// is unavailable, so target-error controllers cannot make progress
	// and user-specified-ratio jobs only get their bounds at the end.
	Barrier bool

	// SequentialOrder disables the random map-task order that
	// multi-stage sampling requires (ablation only: biased block order
	// invalidates the cluster-sampling assumptions).
	SequentialOrder bool

	// Speculation enables straggler duplicates: when no pending work
	// remains, running maps slower than SpecFactor times the median
	// completed duration are re-launched; the first attempt to finish
	// wins.
	Speculation bool
	SpecFactor  float64 // default 2.0

	// SleepIdle sends servers with no remaining map work to ACPI S3
	// for the rest of the job (the paper's Section 5.4 energy mode).
	SleepIdle bool

	// Retry bounds fault recovery (attempt caps, backoff, server
	// blacklisting, a map-phase deadline). The zero value retries
	// forever, immediately, like stock Hadoop.
	Retry RetryPolicy

	// DegradeToDrop turns unrecoverable map-task failures into
	// statistically-bounded drops: a task that exhausts its retry
	// budget, loses every block replica, or is cut off by the job
	// deadline is folded into the estimator's dropped-cluster count —
	// the same accounting as a deliberately dropped map — so the job
	// completes with Exact=false outputs and valid (wider) confidence
	// intervals instead of failing. Off, such failures abort the job
	// with a descriptive error (today's semantics). Meaningful for
	// multi-stage-sampling reducers; precise reducers still finish but
	// report unknown (NaN) error bounds, exactly as for deliberate
	// drops.
	DegradeToDrop bool

	// Faults, when non-nil, is injected into the engine at job start
	// (fault times relative to submission). Convenience for
	// single-job engines; multi-job timelines can call Engine.Inject
	// directly.
	Faults *cluster.FaultPlan

	// Trace, when set, receives scheduling events in virtual-time
	// order (launches, completions, kills, drops, speculation).
	Trace Tracer

	// RecordTrace additionally accumulates every scheduling event into
	// Result.Trace, so completed runs can be dumped (approxrun -trace)
	// or replay-diffed without wiring a live Tracer.
	RecordTrace bool

	// OnSnapshot, when set together with SnapshotEvery > 0, receives
	// the job's current cross-partition estimates every SnapshotEvery
	// virtual seconds while maps are still running — the "online
	// aggregation" early results of MapReduce Online (Condie et al.),
	// which ApproxHadoop's barrier-less reduces make possible.
	OnSnapshot    func(virtualTime float64, estimates []KeyEstimate)
	SnapshotEvery float64
}

// Validate applies defaults and checks required fields.
func (j *Job) Validate(eng *cluster.Engine) error {
	if j.Input == nil || len(j.Input.Blocks) == 0 {
		return errors.New("mapreduce: job has no input blocks")
	}
	if j.NewMapper == nil && j.NewMapperFor == nil {
		return errors.New("mapreduce: job has no mapper")
	}
	if j.NewReduce == nil {
		return errors.New("mapreduce: job has no reducer")
	}
	if j.Format == nil {
		j.Format = TextInputFormat{}
	}
	if j.Reduces <= 0 {
		j.Reduces = len(eng.Servers())
	}
	if rs := eng.TotalSlots(cluster.ReduceSlot); j.Reduces > rs {
		return fmt.Errorf("mapreduce: %d reduces exceed %d reduce slots", j.Reduces, rs)
	}
	if j.Confidence <= 0 || j.Confidence >= 1 {
		j.Confidence = 0.95
	}
	if j.Cost == nil {
		j.Cost = cluster.MeasuredCost{}
	}
	if j.Meter == nil {
		j.Meter = vtime.NewDeterministic()
	}
	if j.SpecFactor <= 1 {
		j.SpecFactor = 2.0
	}
	if j.Workers < 0 {
		j.Workers = 1
	}
	if j.Retry.MaxAttemptsPerTask < 0 {
		j.Retry.MaxAttemptsPerTask = 0
	}
	if j.Retry.Backoff < 0 || j.Retry.BlacklistAfter < 0 || j.Retry.JobDeadline < 0 {
		return errors.New("mapreduce: RetryPolicy fields must be non-negative")
	}
	if j.Name == "" {
		j.Name = "job"
	}
	if j.Sketch != nil {
		if err := j.Sketch.normalize(); err != nil {
			return err
		}
	}
	return nil
}
