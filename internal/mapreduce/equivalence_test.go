package mapreduce

import (
	"fmt"
	"io"
	"testing"

	"approxhadoop/internal/dfs"
)

// equivScenarios builds job configurations that exercise every data
// plane surface the zero-allocation path replaced: raw and combined
// emitters, byte-backed and generator-backed blocks, multiple reduce
// partitions, and mid-stream state (speculation, drops) via the pool
// scenarios' controller.
func equivScenarios(t *testing.T) []poolScenario {
	t.Helper()
	scenarios := poolScenarios(t)
	scenarios = append(scenarios,
		poolScenario{"combine", func(t *testing.T) *Job {
			input, _ := wordCountInput(t, 96)
			return &Job{
				Name:      "equiv-combine",
				Input:     input,
				NewMapper: wordCountMapper,
				NewReduce: func(int) ReduceLogic { return SumReduce() },
				Reduces:   3,
				Combine:   true,
				Seed:      31,
			}
		}},
		poolScenario{"generated-blocks", func(t *testing.T) *Job {
			gen := func(idx int, r dfs.RandSource, w io.Writer) error {
				for i := 0; i < 120; i++ {
					if _, err := fmt.Fprintf(w, "k%d %d\n", r.Int63()%7, r.Int63()%5); err != nil {
						return err
					}
				}
				return nil
			}
			return &Job{
				Name:      "equiv-generated",
				Input:     dfs.GeneratedFile("gen.txt", 8, 5, 0, 120, gen),
				NewMapper: wordCountMapper,
				NewReduce: func(int) ReduceLogic { return SumReduce() },
				Reduces:   2,
				Seed:      13,
			}
		}},
	)
	return scenarios
}

// runEquiv executes one scenario with the chosen data plane, capturing
// the full Result and trace event sequence.
func runEquiv(t *testing.T, sc poolScenario, legacy bool) (*Result, []Event) {
	t.Helper()
	job := sc.build(t)
	job.LegacyDataPlane = legacy
	var events []Event
	job.Trace = func(e Event) { events = append(events, e) }
	res, err := Run(testEngine(), job)
	if err != nil {
		t.Fatalf("%s legacy=%v: %v", sc.name, legacy, err)
	}
	return res, events
}

// TestLegacyDataPlaneEquivalence is the zero-allocation data plane's
// gate: for a fixed (job, seed), the interned-key push path must
// produce a byte-identical Result — estimates, counters, energy — and
// the identical trace event sequence as the legacy pull path with
// string-keyed shuffle, across precise, combined, generated-input,
// speculative and fault scenarios. Same comparison discipline as
// TestPoolSizeInvisible: %+v is bijective on float64.
func TestLegacyDataPlaneEquivalence(t *testing.T) {
	for _, sc := range equivScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			legacyRes, legacyEvents := runEquiv(t, sc, true)
			arenaRes, arenaEvents := runEquiv(t, sc, false)
			want := fmt.Sprintf("%+v", *legacyRes)
			if got := fmt.Sprintf("%+v", *arenaRes); got != want {
				t.Errorf("arena data plane Result differs from legacy:\n got %s\nwant %s", got, want)
			}
			if len(arenaEvents) != len(legacyEvents) {
				t.Fatalf("arena path emitted %d trace events, legacy %d", len(arenaEvents), len(legacyEvents))
			}
			for i := range arenaEvents {
				if arenaEvents[i] != legacyEvents[i] {
					t.Errorf("event %d = %v, legacy %v", i, arenaEvents[i], legacyEvents[i])
				}
			}
		})
	}
}
