package mapreduce

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"approxhadoop/internal/dfs"
	"approxhadoop/internal/sketch"
	"approxhadoop/internal/stats"
)

// splitEvenBlocks splits text into roughly the requested block count.
func splitEvenBlocks(name string, data []byte, blocks int) *dfs.File {
	return dfs.SplitText(name, data, len(data)/blocks+1)
}

// editLogInput builds a small "project<TAB>editor" edit log with known
// per-project distinct-editor counts and per-page tallies.
func editLogInput(t *testing.T, blocks, linesPerBlock int) (*dfs.File, map[string]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	var sb strings.Builder
	distinct := map[string]map[string]struct{}{}
	for b := 0; b < blocks; b++ {
		for l := 0; l < linesPerBlock; l++ {
			proj := fmt.Sprintf("proj%d", rng.Intn(10))
			editor := fmt.Sprintf("editor%d", rng.Intn(2000))
			if distinct[proj] == nil {
				distinct[proj] = map[string]struct{}{}
			}
			distinct[proj][editor] = struct{}{}
			fmt.Fprintf(&sb, "%s\t%s\n", proj, editor)
		}
	}
	want := map[string]float64{}
	for p, eds := range distinct {
		want[p] = float64(len(eds))
	}
	data := []byte(sb.String())
	return splitEvenBlocks("edits.log", data, blocks), want
}

// editMapper parses "project<TAB>editor" and emits the editor as a
// grouped element.
func editMapper() Mapper {
	return MapperFunc(func(rec Record, emit Emitter) {
		i := strings.IndexByte(rec.Value, '\t')
		if i < 0 {
			return
		}
		EmitElement(emit, rec.Value[:i], rec.Value[i+1:], 1)
	})
}

// distinctJob builds the distinct-editors job in either representation.
func distinctJob(input *dfs.File, useSketch bool, workers int) *Job {
	j := &Job{
		Name:      "distinct-editors",
		Input:     input,
		NewMapper: editMapper,
		NewReduce: func(int) ReduceLogic { return NewDistinctReduce() },
		Reduces:   3,
		Seed:      42,
		Workers:   workers,
	}
	if useSketch {
		j.Sketch = &SketchPlan{Kind: SketchDistinct}
	} else {
		j.Combine = true
	}
	return j
}

// TestSketchJobDeterminism proves (job, seed) → byte-identical output
// for any Workers count, in both sketch kinds that ride the job path.
func TestSketchJobDeterminism(t *testing.T) {
	input, _ := editLogInput(t, 12, 150)
	render := func(job *Job) []byte {
		res, err := Run(testEngine(), job)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, useSketch := range []bool{true, false} {
		base := render(distinctJob(input, useSketch, 1))
		for _, workers := range []int{2, 4, 7} {
			got := render(distinctJob(input, useSketch, workers))
			if !bytes.Equal(base, got) {
				t.Errorf("sketch=%v: Workers=%d output differs from Workers=1", useSketch, workers)
			}
		}
	}
	// Top-k determinism across worker counts.
	topk := func(workers int) []byte {
		j := &Job{
			Name:      "topk",
			Input:     input,
			NewMapper: editMapper,
			NewReduce: func(int) ReduceLogic { return NewTopKReduce(5) },
			Reduces:   3,
			Seed:      42,
			Workers:   workers,
			Sketch:    &SketchPlan{Kind: SketchTopK, K: 5},
		}
		return render(j)
	}
	base := topk(1)
	for _, workers := range []int{3, 6} {
		if !bytes.Equal(base, topk(workers)) {
			t.Errorf("topk: Workers=%d output differs from Workers=1", workers)
		}
	}
}

// TestDistinctSketchVsExact runs the same job under both
// representations: the HLL estimates must land within the advertised
// relative error of the exact pairs-run values, and the sketch run
// must shuffle at least 5x fewer bytes — the PR's core claim.
func TestDistinctSketchVsExact(t *testing.T) {
	input, want := editLogInput(t, 24, 250)

	exactRes, err := Run(testEngine(), distinctJob(input, false, 1))
	if err != nil {
		t.Fatal(err)
	}
	skRes, err := Run(testEngine(), distinctJob(input, true, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(exactRes.Outputs) != len(want) || len(skRes.Outputs) != len(want) {
		t.Fatalf("key counts: exact %d, sketch %d, want %d",
			len(exactRes.Outputs), len(skRes.Outputs), len(want))
	}
	relStdErr := 1.04 / math.Sqrt(1<<11) // default plan precision
	for _, o := range exactRes.Outputs {
		//lint:ignore nofloateq exact run counts integer-valued distinct sets; any drift is a bug
		if !o.Exact || o.Est.Value != want[o.Key] {
			t.Errorf("exact run %s = %v (exact=%v), want %v", o.Key, o.Est.Value, o.Exact, want[o.Key])
		}
	}
	for _, o := range skRes.Outputs {
		truth := want[o.Key]
		rel := math.Abs(o.Est.Value-truth) / truth
		if rel > 5*relStdErr {
			t.Errorf("sketch %s = %.1f, truth %.0f: relative error %.3f > 5×%.3f",
				o.Key, o.Est.Value, truth, rel, relStdErr)
		}
		if o.Exact {
			t.Errorf("%s: sketch estimate must not claim exactness", o.Key)
		}
		if o.Est.Err <= 0 || truth < o.Est.Lo() || truth > o.Est.Hi() {
			// The CI is z·stderr at 95%; allow the expected miss rate
			// by only requiring the bound to exist and be plausible.
			if o.Est.Err <= 0 {
				t.Errorf("%s: missing error bound", o.Key)
			}
		}
	}
	pairsBytes := exactRes.Counters.ShuffleBytes
	skBytes := skRes.Counters.ShuffleBytes
	if pairsBytes <= 0 || skBytes <= 0 {
		t.Fatalf("shuffle bytes not accounted: pairs %d, sketch %d", pairsBytes, skBytes)
	}
	if skBytes*5 > pairsBytes {
		t.Errorf("sketch shuffle %d bytes not ≥5x below pairs %d (ratio %.1fx)",
			skBytes, pairsBytes, float64(pairsBytes)/float64(skBytes))
	}
	if exactRes.Counters.PairsShuffled <= 0 || skRes.Counters.PairsShuffled <= 0 {
		t.Errorf("PairsShuffled counters missing")
	}
}

// TestTopKSketchMatchesExact checks the sketch top-k finds the true
// heavy hitters (well-separated Zipf-ish weights) with CMS-bounded
// counts, against the exact pairs run.
func TestTopKSketchMatchesExact(t *testing.T) {
	// Pages with strongly separated weights: page i appears 600-30·i
	// times per round, plus light noise pages.
	var sb strings.Builder
	rng := rand.New(rand.NewSource(5))
	lines := []string{}
	for i := 0; i < 12; i++ {
		for n := 0; n < 600-30*i; n++ {
			lines = append(lines, fmt.Sprintf("all\tpage%02d", i))
		}
	}
	for i := 0; i < 2500; i++ {
		lines = append(lines, fmt.Sprintf("all\tnoise%d", rng.Intn(1200)))
	}
	rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	input := splitEvenBlocks("pages.log", []byte(sb.String()), 16)

	mk := func(useSketch bool) *Job {
		j := &Job{
			Name:      "toppages",
			Input:     input,
			NewMapper: editMapper,
			NewReduce: func(int) ReduceLogic { return NewTopKReduce(8) },
			Reduces:   2,
			Seed:      7,
		}
		if useSketch {
			// A wider, deeper grid than the default: with ~1200 light
			// keys a 256×3 grid has a noticeable chance of hoisting one
			// noise key over the lightest heavy hitter (the documented
			// CMS failure mode); 1024×4 makes that negligible.
			j.Sketch = &SketchPlan{Kind: SketchTopK, K: 8, Width: 1024, Depth: 4}
		} else {
			j.Combine = true
		}
		return j
	}
	exactRes, err := Run(testEngine(), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	skRes, err := Run(testEngine(), mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(exactRes.Outputs) != 8 || len(skRes.Outputs) != 8 {
		t.Fatalf("top-8 sizes: exact %d, sketch %d", len(exactRes.Outputs), len(skRes.Outputs))
	}
	for i, o := range skRes.Outputs {
		eo := exactRes.Outputs[i]
		if o.Key != eo.Key {
			t.Errorf("rank-set mismatch at %d: sketch %q, exact %q", i, o.Key, eo.Key)
			continue
		}
		// CMS never underestimates and overestimates within ε·W (the
		// reported bound).
		if o.Est.Value < eo.Est.Value {
			t.Errorf("%s: sketch count %.0f below exact %.0f", o.Key, o.Est.Value, eo.Est.Value)
		}
		if o.Est.Value > eo.Est.Value+o.Est.Err {
			t.Errorf("%s: sketch count %.0f exceeds exact %.0f + bound %.0f",
				o.Key, o.Est.Value, eo.Est.Value, o.Est.Err)
		}
	}
}

// TestSketchReducerMergeOrder feeds identical MapOutputs to reducers in
// permuted orders: finalized estimates must match exactly.
func TestSketchReducerMergeOrder(t *testing.T) {
	plan := &SketchPlan{Kind: SketchDistinct}
	if err := plan.normalize(); err != nil {
		t.Fatal(err)
	}
	outs := make([]*MapOutput, 6)
	for i := range outs {
		s, err := plan.newSketch()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			s.Fold(fmt.Sprintf("editor%d", (i*37+j*13)%160), 1)
		}
		outs[i] = &MapOutput{
			TaskID:       i,
			Items:        50,
			Sampled:      50,
			SketchGroups: map[string]sketch.Sketch{"projA": s},
		}
	}
	view := EstimateView{TotalMaps: 6, Consumed: 6, Confidence: 0.95}
	finalize := func(order []int) []KeyEstimate {
		r := NewDistinctReduce()
		for _, i := range order {
			r.Consume(outs[i])
		}
		return r.Finalize(view)
	}
	a := finalize([]int{0, 1, 2, 3, 4, 5})
	b := finalize([]int{5, 3, 1, 0, 2, 4})
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("output sizes %d/%d", len(a), len(b))
	}
	if a[0] != b[0] {
		t.Errorf("consume order changed the estimate: %+v vs %+v", a[0], b[0])
	}
}

// TestSampledSketchWidensError checks sampling composes into the
// sketch estimate: identical sketch content with m_i < M_i must report
// a strictly wider bound and never exactness.
func TestSampledSketchWidensError(t *testing.T) {
	mk := func(items, sampled int64) []KeyEstimate {
		plan := &SketchPlan{Kind: SketchDistinct}
		if err := plan.normalize(); err != nil {
			t.Fatal(err)
		}
		s, err := plan.newSketch()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 200; j++ {
			s.Fold(fmt.Sprintf("e%d", j), 1)
		}
		r := NewDistinctReduce()
		r.Consume(&MapOutput{TaskID: 0, Items: items, Sampled: sampled,
			SketchGroups: map[string]sketch.Sketch{"g": s}})
		return r.Finalize(EstimateView{TotalMaps: 1, Consumed: 1, Confidence: 0.95})
	}
	full := mk(200, 200)
	half := mk(400, 200)
	if len(full) != 1 || len(half) != 1 {
		t.Fatal("missing outputs")
	}
	if full[0].Exact || half[0].Exact {
		t.Error("sketch estimates must not be exact")
	}
	if !(half[0].Est.Err > full[0].Est.Err) {
		t.Errorf("sampling did not widen the bound: full ±%.2f, sampled ±%.2f",
			full[0].Est.Err, half[0].Est.Err)
	}
	// The widened interval must cover the worst case of all-unseen
	// units being new: value + value·(1/cov − 1) reaches value/cov.
	if hi := half[0].Est.Hi(); hi < half[0].Est.Value*2*0.99 {
		t.Errorf("sampled interval hi %.1f below worst-case %.1f", hi, half[0].Est.Value*2)
	}
}

// TestMembershipReduce exercises the Bloom path end to end at the
// reducer level: no false negatives, count estimate near truth, and
// the pairs path exact.
func TestMembershipReduce(t *testing.T) {
	plan := &SketchPlan{Kind: SketchMembership}
	if err := plan.normalize(); err != nil {
		t.Fatal(err)
	}
	r := NewMembershipReduce()
	for task := 0; task < 4; task++ {
		s, err := plan.newSketch()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			s.Fold(fmt.Sprintf("user%d", task*100+j), 1)
		}
		r.Consume(&MapOutput{TaskID: task, Items: 100, Sampled: 100,
			SketchGroups: map[string]sketch.Sketch{"seen": s}})
	}
	view := EstimateView{TotalMaps: 4, Consumed: 4, Confidence: 0.95}
	outs := r.Finalize(view)
	if len(outs) != 1 || outs[0].Key != "seen" {
		t.Fatalf("outputs: %+v", outs)
	}
	if v := outs[0].Est.Value; math.Abs(v-400)/400 > 0.2 {
		t.Errorf("member count estimate %.0f, want ≈400", v)
	}
	for j := 0; j < 400; j++ {
		if in, _ := r.Contains("seen", fmt.Sprintf("user%d", j)); !in {
			t.Fatalf("false negative for user%d", j)
		}
	}
	in, fpr := r.Contains("seen", "user401")
	if in && fpr <= 0 {
		t.Error("positive answer without an FPR")
	}

	// Pairs path: exact sets.
	rp := NewMembershipReduce()
	rp.Consume(&MapOutput{TaskID: 0, Items: 2, Sampled: 2, Pairs: []KV{
		{Key: "g" + ElementSep + "alice", Value: 1},
		{Key: "g" + ElementSep + "bob", Value: 1},
	}})
	pouts := rp.Finalize(EstimateView{TotalMaps: 1, Consumed: 1, Confidence: 0.95})
	//lint:ignore nofloateq the pairs path counts an integer-valued exact set
	if len(pouts) != 1 || !pouts[0].Exact || pouts[0].Est.Value != 2 {
		t.Errorf("pairs membership: %+v", pouts)
	}
	if in, fpr := rp.Contains("g", "alice"); !in || fpr != 0 {
		t.Errorf("exact Contains(alice) = %v, %v", in, fpr)
	}
	if in, _ := rp.Contains("g", "carol"); in {
		t.Error("exact Contains(carol) = true")
	}
}

// TestCombinerLossyMarker is the satellite: a non-combiner-safe reduce
// function composed with Job.Combine must flag its outputs Lossy
// instead of silently reporting a wrong value; sum must stay clean.
func TestCombinerLossyMarker(t *testing.T) {
	input, want := wordCountInput(t, 256)

	minJob := &Job{
		Name:      "min-combined",
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return MinReduce() },
		Reduces:   2,
		Combine:   true,
	}
	res := runWordCount(t, minJob)
	if len(res.Outputs) == 0 {
		t.Fatal("no outputs")
	}
	sawLossy := false
	for _, o := range res.Outputs {
		if o.Lossy {
			sawLossy = true
			if o.Exact {
				t.Errorf("%s: lossy output claims exactness", o.Key)
			}
			if !math.IsNaN(o.Est.Err) {
				t.Errorf("%s: lossy output carries a bound %v", o.Key, o.Est.Err)
			}
		}
	}
	if !sawLossy {
		t.Error("min over combined outputs not flagged combiner-lossy")
	}

	var buf bytes.Buffer
	if err := WriteText(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(combiner-lossy)") {
		t.Error("WriteText does not surface the combiner-lossy marker")
	}
	buf.Reset()
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var js struct {
		Outputs []struct {
			Lossy bool `json:"lossy"`
		} `json:"outputs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	lossyJSON := false
	for _, o := range js.Outputs {
		lossyJSON = lossyJSON || o.Lossy
	}
	if !lossyJSON {
		t.Error("WriteJSON does not surface the lossy field")
	}

	// Sum is combiner-safe: same input, no marker, exact values.
	sumJob := &Job{
		Name:      "sum-combined",
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Reduces:   2,
		Combine:   true,
	}
	sres := runWordCount(t, sumJob)
	for _, o := range sres.Outputs {
		if o.Lossy || !o.Exact {
			t.Errorf("sum %s flagged lossy=%v exact=%v", o.Key, o.Lossy, o.Exact)
		}
		//lint:ignore nofloateq integer-weight sums fold exactly; any drift is a bug
		if o.Est.Value != want[o.Key] {
			t.Errorf("sum %s = %v, want %v", o.Key, o.Est.Value, want[o.Key])
		}
	}
}

// TestEmitElementFallbackPartitioning checks the composite-pair
// fallback partitions by group: with several reduce partitions every
// group must appear exactly once in the merged outputs, in both data
// planes.
func TestEmitElementFallbackPartitioning(t *testing.T) {
	input, want := editLogInput(t, 8, 120)
	for _, legacy := range []bool{false, true} {
		j := distinctJob(input, false, 1)
		j.Reduces = 4
		j.LegacyDataPlane = legacy
		res, err := Run(testEngine(), j)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]int{}
		for _, o := range res.Outputs {
			seen[o.Key]++
			//lint:ignore nofloateq integer-weight sums fold exactly; any drift is a bug
			if o.Est.Value != want[o.Key] {
				t.Errorf("legacy=%v %s = %v, want %v", legacy, o.Key, o.Est.Value, want[o.Key])
			}
		}
		for g, n := range seen {
			if n != 1 {
				t.Errorf("legacy=%v: group %s split across %d partitions", legacy, g, n)
			}
		}
		if len(seen) != len(want) {
			t.Errorf("legacy=%v: %d groups, want %d", legacy, len(seen), len(want))
		}
	}
}

// TestShuffleBytesAccounting checks both the per-job counter and the
// process-wide accumulator move, and that ShuffleSize covers every
// representation.
func TestShuffleBytesAccounting(t *testing.T) {
	input, _ := editLogInput(t, 6, 80)
	before := TotalShuffleBytes()
	res, err := Run(testEngine(), distinctJob(input, true, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.ShuffleBytes <= 0 {
		t.Error("Counters.ShuffleBytes not accounted")
	}
	if got := TotalShuffleBytes() - before; got < res.Counters.ShuffleBytes {
		t.Errorf("TotalShuffleBytes advanced %d, job counted %d", got, res.Counters.ShuffleBytes)
	}

	// Representation unit checks.
	raw := &MapOutput{Pairs: []KV{{Key: "abc", Value: 1}}}
	if got := raw.ShuffleSize(); got != shuffleHeaderBytes+3+shufflePairBytes {
		t.Errorf("raw ShuffleSize %d", got)
	}
	comb := &MapOutput{Combined: map[string]stats.RunningStat{"abc": {Count: 2, Sum: 3}}}
	if got := comb.ShuffleSize(); got != shuffleHeaderBytes+3+shuffleCombinedBytes {
		t.Errorf("combined ShuffleSize %d", got)
	}
	h, err := sketch.NewHLL(11, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Fold("x", 1)
	sk := &MapOutput{SketchGroups: map[string]sketch.Sketch{"g": h}}
	if got := sk.ShuffleSize(); got != int64(shuffleHeaderBytes+1+shuffleGroupBytes+h.SizeBytes()) {
		t.Errorf("sketch ShuffleSize %d", got)
	}
}
