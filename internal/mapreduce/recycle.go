package mapreduce

// BufList is an explicit free list of byte buffers owned by one map
// attempt. Readers borrow line/key/carry buffers from it instead of
// allocating per record, and return them on Close so a later reader of
// the same attempt can reuse the memory.
//
// It is deliberately not a sync.Pool: pools hand buffers out in
// scheduling-dependent order, which would let pool size leak into any
// code that (even accidentally) observes buffer identity, and the
// sharedstate analyzer could no longer prove the compute plane pure.
// A BufList is plain attempt-local state — created in executeMap,
// reachable only from that attempt's reader and emitter, and dead when
// the attempt's MapOutput is materialized. The approxlint sharedstate
// analyzer flags sync.Pool inside //approx:compute closures for
// exactly this reason.
type BufList struct {
	free [][]byte
}

// Get returns a zero-length buffer with at least min capacity,
// preferring the most recently freed one that fits.
func (l *BufList) Get(min int) []byte {
	for i := len(l.free) - 1; i >= 0; i-- {
		if cap(l.free[i]) >= min {
			b := l.free[i]
			l.free = append(l.free[:i], l.free[i+1:]...)
			return b[:0]
		}
	}
	return make([]byte, 0, min)
}

// Put returns a buffer to the free list. Callers must not retain views
// into it afterwards.
func (l *BufList) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	l.free = append(l.free, b[:0])
}

// BufferLender is implemented by RecordReaders that can borrow their
// working buffers (line carry, key scratch) from an attempt-owned free
// list instead of allocating their own. The framework injects the
// attempt's list right after InputFormat.Open, alongside SetMeter.
//
//approx:pure
type BufferLender interface {
	SetBuffers(l *BufList)
}
