package mapreduce

import (
	"fmt"
	"runtime"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/vtime"
)

// poolTestController samples at a fixed ratio and drops a fixed count
// of tasks, exercising the approximation paths without importing the
// approx package (which would cycle).
type poolTestController struct {
	ratio float64
	drop  int
}

func (c *poolTestController) Name() string { return "pool-test" }

func (c *poolTestController) Plan(v *JobView) (float64, PlanAction) {
	if v.TotalMaps-v.Launched-v.Dropped <= c.drop && v.Dropped < c.drop {
		return 0, PlanDrop
	}
	return c.ratio, PlanRun
}

func (c *poolTestController) Completed(v *JobView) Directive { return Directive{} }

// poolScenario builds one job configuration per invocation; runs with
// different Workers settings must otherwise be identical.
type poolScenario struct {
	name  string
	build func(t *testing.T) *Job
}

func poolScenarios(t *testing.T) []poolScenario {
	t.Helper()
	return []poolScenario{
		{"precise", func(t *testing.T) *Job {
			input, _ := wordCountInput(t, 128)
			return &Job{
				Name:      "pool-precise",
				Input:     input,
				NewMapper: wordCountMapper,
				NewReduce: func(int) ReduceLogic { return SumReduce() },
				Reduces:   3,
				Seed:      7,
			}
		}},
		{"approx-speculative", func(t *testing.T) *Job {
			input, _ := wordCountInput(t, 64)
			return &Job{
				Name:        "pool-approx",
				Input:       input,
				NewMapper:   wordCountMapper,
				NewReduce:   func(int) ReduceLogic { return SumReduce() },
				Reduces:     2,
				Controller:  &poolTestController{ratio: 0.5, drop: 2},
				Speculation: true,
				SpecFactor:  1.2,
				Seed:        11,
			}
		}},
		{"straggler-speculation", func(t *testing.T) *Job {
			input, _ := wordCountInput(t, 64)
			return stragglerJob(input)
		}},
		{"faults-degrade", func(t *testing.T) *Job {
			input, _ := wordCountInput(t, 64)
			var faults []cluster.Fault
			for i := 0; i < 6; i++ {
				faults = append(faults, cluster.Fault{At: 0.5 + 0.3*float64(i), Kind: cluster.FaultTask, Server: i % 4})
			}
			faults = append(faults, cluster.Fault{At: 1.1, Kind: cluster.FaultServer, Server: 2, Recover: 2})
			return &Job{
				Name:          "pool-faults",
				Input:         input,
				NewMapper:     wordCountMapper,
				NewReduce:     func(int) ReduceLogic { return SumReduce() },
				Reduces:       2,
				Cost:          cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
				Seed:          17,
				Retry:         RetryPolicy{MaxAttemptsPerTask: 2, Backoff: 0.25},
				DegradeToDrop: true,
				Faults:        &cluster.FaultPlan{Faults: faults},
			}
		}},
	}
}

// stragglerJob slows one server to a crawl mid-job so its attempts
// straggle past the speculation threshold, forcing duplicate attempts
// through the pool.
func stragglerJob(input *dfs.File) *Job {
	return &Job{
		Name:        "pool-straggler",
		Input:       input,
		NewMapper:   wordCountMapper,
		NewReduce:   func(int) ReduceLogic { return SumReduce() },
		Reduces:     2,
		Cost:        cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
		Speculation: true,
		SpecFactor:  1.5,
		Seed:        23,
		Faults: &cluster.FaultPlan{Faults: []cluster.Fault{
			{At: 0.1, Kind: cluster.FaultSlow, Server: 1, Factor: 0.1},
		}},
	}
}

// TestPoolSpeculationExercised guards the straggler scenario against
// silently losing its coverage: it must actually speculate.
func TestPoolSpeculationExercised(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	res, err := Run(testEngine(), stragglerJob(input))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsSpeculated == 0 {
		t.Fatal("straggler scenario did not speculate; pool speculation path untested")
	}
}

// runPool executes one scenario at the given pool size, capturing the
// full Result and trace event sequence.
func runPool(t *testing.T, sc poolScenario, workers int) (*Result, []Event) {
	t.Helper()
	job := sc.build(t)
	job.Workers = workers
	var events []Event
	job.Trace = func(e Event) { events = append(events, e) }
	res, err := Run(testEngine(), job)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", sc.name, workers, err)
	}
	return res, events
}

// TestPoolSizeInvisible is the tentpole contract: a (job, seed) pair
// must produce a byte-identical Result — estimates, counters, energy,
// and trace event order — whether map compute runs inline (Workers=1)
// or on a worker pool (Workers=2, GOMAXPROCS), including under fault
// plans with retries, degradation, and speculation.
func TestPoolSizeInvisible(t *testing.T) {
	sizes := []int{1, 2, runtime.GOMAXPROCS(0) + 1, 0}
	for _, sc := range poolScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseRes, baseEvents := runPool(t, sc, sizes[0])
			// Compare the full Result via its exhaustive rendering: %v is
			// bijective on float64 (and renders NaN error bounds equal,
			// which DeepEqual would not), so equal strings mean
			// bit-identical estimates, counters, and energy.
			baseStr := fmt.Sprintf("%+v", *baseRes)
			for _, w := range sizes[1:] {
				res, events := runPool(t, sc, w)
				if got := fmt.Sprintf("%+v", *res); got != baseStr {
					t.Errorf("workers=%d: Result differs from workers=1:\n got %s\nwant %s", w, got, baseStr)
				}
				if len(events) != len(baseEvents) {
					t.Fatalf("workers=%d: %d trace events, want %d", w, len(events), len(baseEvents))
				}
				for i := range events {
					if events[i] != baseEvents[i] {
						t.Errorf("workers=%d: event %d = %v, want %v", w, i, events[i], baseEvents[i])
					}
				}
			}
		})
	}
}

// TestPoolResultCacheReusesCompute verifies that retries and
// speculative duplicates of a (task, ratio) reuse the memoized pure
// result instead of recomputing: mapper constructions are bounded by
// the number of distinct tasks even when attempts exceed it.
func TestPoolResultCacheReusesCompute(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	var faults []cluster.Fault
	for i := 0; i < 6; i++ {
		faults = append(faults, cluster.Fault{At: 0.5 + 0.3*float64(i), Kind: cluster.FaultTask, Server: i % 4})
	}
	built := 0
	job := &Job{
		Name:  "pool-cache",
		Input: input,
		NewMapper: func() Mapper {
			built++
			return wordCountMapper()
		},
		NewReduce:     func(int) ReduceLogic { return SumReduce() },
		Reduces:       2,
		Cost:          cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
		Seed:          17,
		Workers:       1, // inline so the counter needs no synchronization
		Retry:         RetryPolicy{MaxAttemptsPerTask: 3, Backoff: 0.25},
		DegradeToDrop: true,
		Faults:        &cluster.FaultPlan{Faults: faults},
	}
	res, err := Run(testEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.MapsRetried == 0 {
		t.Fatal("scenario produced no retries; cache not exercised")
	}
	if built > c.MapsTotal {
		t.Errorf("built %d mappers for %d tasks (%d retries): retries must reuse cached results",
			built, c.MapsTotal, c.MapsRetried)
	}
}

// TestPoolFallsBackWithoutForker checks that a custom meter that
// cannot fork forces inline execution rather than racing on shared
// meter state.
func TestPoolFallsBackWithoutForker(t *testing.T) {
	input, _ := wordCountInput(t, 128)
	job := &Job{
		Name:      "pool-noforker",
		Input:     input,
		NewMapper: wordCountMapper,
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Meter:     nonForkingMeter{},
		Workers:   8,
		Seed:      3,
	}
	res, err := Run(testEngine(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("counters: %+v", res.Counters)
	}
}

// nonForkingMeter is a vtime.Meter without Fork support.
type nonForkingMeter struct{}

func (nonForkingMeter) Begin(op vtime.Op)                           {}
func (nonForkingMeter) End(op vtime.Op, units, bytes int64) float64 { return 0 }
func (nonForkingMeter) Charge(units float64)                        {}
