package mapreduce

import (
	"strings"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/stats"
)

// faultJob builds a small wordcount job over input with the given
// retry/degradation settings.
func faultJob(input *dfs.File, retry RetryPolicy, degrade bool) *Job {
	return &Job{
		Name:          "fault-wordcount",
		Input:         input,
		NewMapper:     wordCountMapper,
		NewReduce:     func(int) ReduceLogic { return SumReduce() },
		Reduces:       2,
		Cost:          cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
		Seed:          17,
		Retry:         retry,
		DegradeToDrop: degrade,
	}
}

// TestDegradeToDropOnExhaustedRetries injects transient task faults
// with a one-attempt budget: every faulted task must fold into the
// dropped-cluster count and the job must complete approximately.
func TestDegradeToDropOnExhaustedRetries(t *testing.T) {
	input, want := wordCountInput(t, 64)
	eng := testEngine()
	// A burst of transient task faults across the first wave.
	var faults []cluster.Fault
	for i := 0; i < 6; i++ {
		faults = append(faults, cluster.Fault{At: 0.5 + 0.3*float64(i), Kind: cluster.FaultTask, Server: i % 4})
	}
	job := faultJob(input, RetryPolicy{MaxAttemptsPerTask: 1}, true)
	job.Faults = &cluster.FaultPlan{Faults: faults}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.MapsDegraded == 0 {
		t.Fatal("expected degraded tasks (no fault hit a running attempt?)")
	}
	if c.MapsFailed < c.MapsDegraded {
		t.Errorf("degraded %d tasks but only %d failed attempts", c.MapsDegraded, c.MapsFailed)
	}
	if c.MapsCompleted+c.MapsDegraded != c.MapsTotal {
		t.Errorf("accounting: completed %d + degraded %d != total %d", c.MapsCompleted, c.MapsDegraded, c.MapsTotal)
	}
	for _, o := range res.Outputs {
		if o.Exact {
			t.Errorf("key %s: degraded job must not report exact results", o.Key)
		}
	}
	// Sanity: the surviving data still resembles the truth.
	for _, o := range res.Outputs {
		if o.Est.Value <= 0 || o.Est.Value > 2*want[o.Key] {
			t.Errorf("key %s: estimate %v implausible vs truth %v", o.Key, o.Est.Value, want[o.Key])
		}
	}
}

// TestExhaustedRetriesFailWithoutDegrade is the same scenario with
// DegradeToDrop off: the job must fail with a descriptive error.
func TestExhaustedRetriesFailWithoutDegrade(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	eng := testEngine()
	job := faultJob(input, RetryPolicy{MaxAttemptsPerTask: 1}, false)
	job.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
		{At: 0.5, Kind: cluster.FaultTask, Server: 0},
	}}
	_, err := Run(eng, job)
	if err == nil {
		t.Fatal("exhausted attempts without DegradeToDrop must fail the job")
	}
	if !strings.Contains(err.Error(), "MaxAttemptsPerTask") {
		t.Errorf("error should name the policy: %v", err)
	}
}

// TestRetryBackoffDelaysReexecution verifies the virtual-time backoff:
// the relaunch of a faulted task happens no sooner than Backoff after
// the failure, and doubles on repeat failures.
func TestRetryBackoffDelaysReexecution(t *testing.T) {
	input, _ := wordCountInput(t, 512) // few blocks, low parallel noise
	eng := testEngine()
	var events []Event
	job := faultJob(input, RetryPolicy{Backoff: 4}, false)
	job.Trace = func(e Event) { events = append(events, e) }
	job.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
		{At: 0.5, Kind: cluster.FaultTask, Server: 0},
	}}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsRetried == 0 {
		t.Fatal("expected a retried task")
	}
	// Find the failed task and compare failure time vs next launch.
	var failT, nextLaunch float64
	var failTask = -1
	for _, e := range events {
		if e.Kind == EventMapFailed && failTask == -1 {
			failTask, failT = e.Task, e.Time
		}
		if e.Kind == EventMapLaunched && e.Task == failTask && e.Time > failT && nextLaunch == 0 {
			nextLaunch = e.Time
		}
	}
	if failTask == -1 || nextLaunch == 0 {
		t.Fatalf("trace missing failure/relaunch pair: %v", events)
	}
	if nextLaunch-failT < 4 {
		t.Errorf("relaunch after %.2fs, want >= Backoff of 4s", nextLaunch-failT)
	}
	if res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("all tasks should complete eventually: %+v", res.Counters)
	}
}

// TestBlacklistAfterRepeatedFaults verifies a server accumulating
// faults is removed from map scheduling and counted.
func TestBlacklistAfterRepeatedFaults(t *testing.T) {
	input, want := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 2
	eng := cluster.New(cfg)
	// Server 3 suffers a fault every second for a while.
	var faults []cluster.Fault
	for i := 0; i < 8; i++ {
		faults = append(faults, cluster.Fault{At: 0.4 + 0.9*float64(i), Kind: cluster.FaultTask, Server: 3})
	}
	var blacklisted []string
	var launchesOn3After float64 = -1
	var blTime float64 = -1
	job := faultJob(input, RetryPolicy{BlacklistAfter: 2}, false)
	job.Faults = &cluster.FaultPlan{Faults: faults}
	job.Trace = func(e Event) {
		switch e.Kind {
		case EventServerBlacklisted:
			blacklisted = append(blacklisted, e.Server)
			blTime = e.Time
		case EventMapLaunched, EventMapSpeculated:
			if e.Server == "server-03" && blTime >= 0 {
				launchesOn3After = e.Time
			}
		}
	}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.ServersBlacklisted != 1 || len(blacklisted) != 1 || blacklisted[0] != "server-03" {
		t.Fatalf("expected exactly server-03 blacklisted: counter=%d trace=%v",
			res.Counters.ServersBlacklisted, blacklisted)
	}
	if launchesOn3After >= 0 {
		t.Errorf("map launched on blacklisted server-03 at t=%.2f (blacklisted at t=%.2f)",
			launchesOn3After, blTime)
	}
	if res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("blacklisting must not lose tasks: %+v", res.Counters)
	}
	for _, o := range res.Outputs {
		if !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("%s = %v, want %v", o.Key, o.Est.Value, want[o.Key])
		}
	}
}

// TestAllServersBlacklistedCleanError is the all-capacity-gone
// regression test: when every server is blacklisted and maps are still
// pending, Run must return a clear error, not stall.
func TestAllServersBlacklistedCleanError(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 2
	cfg.MapSlotsPerServer = 1
	eng := cluster.New(cfg)
	job := faultJob(input, RetryPolicy{BlacklistAfter: 1}, false)
	job.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
		{At: 0.5, Kind: cluster.FaultTask, Server: 0},
		{At: 0.7, Kind: cluster.FaultTask, Server: 1},
	}}
	_, err := Run(eng, job)
	if err == nil {
		t.Fatal("fully blacklisted cluster with pending maps must error, not stall")
	}
	if !strings.Contains(err.Error(), "no server can host") {
		t.Errorf("want a clear capacity error, got: %v", err)
	}
}

// TestAllServersBlacklistedDegrades: same scenario under DegradeToDrop
// — the pending tasks become bounded drops and the job completes.
func TestAllServersBlacklistedDegrades(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 2
	cfg.MapSlotsPerServer = 1
	eng := cluster.New(cfg)
	job := faultJob(input, RetryPolicy{BlacklistAfter: 1}, true)
	job.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
		{At: 0.5, Kind: cluster.FaultTask, Server: 0},
		{At: 0.7, Kind: cluster.FaultTask, Server: 1},
	}}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.MapsDegraded == 0 {
		t.Fatal("expected pending tasks degraded to drops")
	}
	if c.MapsCompleted+c.MapsDegraded != c.MapsTotal {
		t.Errorf("accounting: %+v", c)
	}
	for _, o := range res.Outputs {
		if o.Exact {
			t.Error("degraded job must not be exact")
		}
	}
}

// TestUnrunnableBlockDegrades stores blocks with replication 1 and
// permanently kills a server: its blocks lose their only replica and
// must degrade (DegradeToDrop on) or fail descriptively (off).
func TestUnrunnableBlockDegrades(t *testing.T) {
	mkInput := func(eng *cluster.Engine, t *testing.T) *dfs.File {
		t.Helper()
		var ids []string
		for _, s := range eng.Servers() {
			ids = append(ids, s.ID)
		}
		nn := dfs.NewNameNode(ids, 1) // replication 1: any death loses data
		input, _ := wordCountInput(t, 64)
		if err := nn.Register(input); err != nil {
			t.Fatal(err)
		}
		return input
	}

	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 2

	eng := cluster.New(cfg)
	input := mkInput(eng, t)
	job := faultJob(input, RetryPolicy{}, true)
	// Server 3 hosts no reduce (reduces 0 and 1 round-robin) and dies
	// early, taking its single-replica blocks with it.
	job.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
		{At: 0.5, Kind: cluster.FaultServer, Server: 3},
	}}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsDegraded == 0 {
		t.Fatal("losing a replica-1 server must degrade its unlaunched blocks")
	}
	for _, o := range res.Outputs {
		if o.Exact {
			t.Error("replica loss must mark results approximate")
		}
	}

	eng2 := cluster.New(cfg)
	input2 := mkInput(eng2, t)
	job2 := faultJob(input2, RetryPolicy{}, false)
	job2.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
		{At: 0.5, Kind: cluster.FaultServer, Server: 3},
	}}
	_, err = Run(eng2, job2)
	if err == nil {
		t.Fatal("unrunnable block without DegradeToDrop must fail the job")
	}
	if !strings.Contains(err.Error(), "unrunnable") {
		t.Errorf("want an unrunnable-block error, got: %v", err)
	}
}

// TestJobDeadline verifies the map-phase deadline in both modes: cut
// off to bounded drops under DegradeToDrop, clean failure otherwise.
func TestJobDeadline(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 2
	cfg.MapSlotsPerServer = 1 // many waves: the deadline cuts mid-job
	eng := cluster.New(cfg)
	job := faultJob(input, RetryPolicy{JobDeadline: 5}, true)
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.MapsDegraded == 0 {
		t.Fatal("deadline should have cut off unfinished maps")
	}
	if c.MapsCompleted+c.MapsDegraded != c.MapsTotal {
		t.Errorf("accounting: %+v", c)
	}
	for _, o := range res.Outputs {
		if o.Exact {
			t.Error("deadline-cut job must not be exact")
		}
	}

	eng2 := cluster.New(cfg)
	job2 := faultJob(input, RetryPolicy{JobDeadline: 5}, false)
	_, err = Run(eng2, job2)
	if err == nil {
		t.Fatal("deadline without DegradeToDrop must fail the job")
	}
	if !strings.Contains(err.Error(), "JobDeadline") {
		t.Errorf("want a deadline error, got: %v", err)
	}

	// A generous deadline changes nothing.
	eng3 := cluster.New(cfg)
	job3 := faultJob(input, RetryPolicy{JobDeadline: 1e6}, false)
	res3, err := Run(eng3, job3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Counters.MapsCompleted != res3.Counters.MapsTotal {
		t.Errorf("generous deadline should not cut anything: %+v", res3.Counters)
	}
}

// TestServerRecoveryRestoresCapacity fails half the cluster with a
// recovery and verifies the job still completes exactly, re-using the
// rejoined capacity.
func TestServerRecoveryRestoresCapacity(t *testing.T) {
	input, want := wordCountInput(t, 64)
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.MapSlotsPerServer = 2
	eng := cluster.New(cfg)
	var launchedOn3AfterRecovery bool
	job := faultJob(input, RetryPolicy{}, false)
	job.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
		{At: 0.5, Kind: cluster.FaultServer, Server: 3, Recover: 2},
	}}
	job.Trace = func(e Event) {
		if e.Kind == EventMapLaunched && e.Server == "server-03" && e.Time > 2.5 {
			launchedOn3AfterRecovery = true
		}
	}
	res, err := Run(eng, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapsFailed == 0 {
		t.Error("expected attempts lost to the failure")
	}
	if !launchedOn3AfterRecovery {
		t.Error("recovered server should host maps again")
	}
	if res.Counters.MapsCompleted != res.Counters.MapsTotal {
		t.Errorf("recovery run must complete all maps: %+v", res.Counters)
	}
	for _, o := range res.Outputs {
		if !o.Exact || !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
			t.Errorf("%s = %v exact=%v, want exact %v", o.Key, o.Est.Value, o.Exact, want[o.Key])
		}
	}
}
