package mapreduce

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/vtime"
)

// benchInput builds a reusable word-count corpus.
func benchInput(lines int) *dfs.File {
	var sb strings.Builder
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < lines; i++ {
		sb.WriteString(words[i%len(words)])
		sb.WriteByte(' ')
		sb.WriteString(words[(i*3)%len(words)])
		sb.WriteByte('\n')
	}
	return dfs.SplitText("bench.txt", []byte(sb.String()), 8192)
}

func benchJob(input *dfs.File, combine bool) *Job {
	return &Job{
		Input: input,
		NewMapper: func() Mapper {
			return MapperFunc(func(rec Record, emit Emitter) {
				for _, w := range strings.Fields(rec.Value) {
					emit.Emit(w, 1)
				}
			})
		},
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Combine:   combine,
		Cost:      cluster.AnalyticCost{T0: 1, Tr: 1e-5, Tp: 1e-4},
	}
}

// BenchmarkJobThroughput measures end-to-end framework throughput:
// scheduling, real map execution, shuffle and reduce for a 10k-line
// word count.
func BenchmarkJobThroughput(b *testing.B) {
	input := benchInput(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		if _, err := Run(cluster.New(cfg), benchJob(input, false)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(input.Size()))
}

// BenchmarkJobThroughputCombined measures the same job with map-side
// combining (fewer shuffled pairs).
func BenchmarkJobThroughputCombined(b *testing.B) {
	input := benchInput(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		if _, err := Run(cluster.New(cfg), benchJob(input, true)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(input.Size()))
}

// benchEmit drives one emitter through a fixed pair stream, the same
// shape the map hot path produces.
func benchEmit(e *mapEmitter, pairs int) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < pairs; i++ {
		e.Emit(words[i%len(words)], 1)
	}
}

// BenchmarkMapEmitterHinted measures the map-side emit hot path with an
// accurate pairsHint: one backing-array allocation up front, no append
// growth during the run.
func BenchmarkMapEmitterHinted(b *testing.B) {
	const pairs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := newMapEmitter(8, false, false, vtime.NewDeterministic(), pairs)
		benchEmit(e, pairs)
	}
}

// BenchmarkMapEmitterUnhinted is the same workload without a size hint
// (first wave of a job, before MapsCompleted feeds pairsHint): every
// partition slice grows by repeated append reallocation.
func BenchmarkMapEmitterUnhinted(b *testing.B) {
	const pairs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := newMapEmitter(8, false, false, vtime.NewDeterministic(), 0)
		benchEmit(e, pairs)
	}
}

// BenchmarkMapEmitterCombined measures the combining emitter with its
// dense id-indexed aggregate slice.
func BenchmarkMapEmitterCombined(b *testing.B) {
	const pairs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := newMapEmitter(8, true, false, vtime.NewDeterministic(), pairs)
		benchEmit(e, pairs)
	}
}

// BenchmarkMapEmitterLegacy is the pre-interning string-keyed emitter
// (Job.LegacyDataPlane), kept as the A/B reference for the arena path.
func BenchmarkMapEmitterLegacy(b *testing.B) {
	const pairs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := newMapEmitter(8, false, true, vtime.NewDeterministic(), pairs)
		benchEmit(e, pairs)
	}
}

// balancedKeys returns one key per reduce partition, found by probing
// candidate strings through the real Partition hash, so a round-robin
// emit stream fills every partition evenly.
func balancedKeys(t *testing.T, reduces int) []string {
	t.Helper()
	keys := make([]string, reduces)
	found := 0
	for i := 0; found < reduces && i < 10000; i++ {
		k := "key-" + strconv.Itoa(i)
		p := Partition(k, reduces)
		if keys[p] == "" {
			keys[p] = k
			found++
		}
	}
	if found < reduces {
		t.Fatalf("found keys for only %d/%d partitions", found, reduces)
	}
	return keys
}

// TestMapEmitterHintedAllocs pins the allocation contract of the
// preallocated emit paths: with a pairsHint that covers every
// partition, the whole emit stream costs exactly the up-front
// allocations, so appends never grow a partition mid-attempt.
func TestMapEmitterHintedAllocs(t *testing.T) {
	const (
		reduces = 8
		pairs   = 4096
	)
	keys := balancedKeys(t, reduces)
	meter := vtime.NewDeterministic()
	emitAll := func(e *mapEmitter) {
		for i := 0; i < pairs; i++ {
			e.Emit(keys[i%reduces], 1)
		}
	}
	// Legacy path: emitter struct + partition header slice + one backing
	// array, plus one of slack for runtime accounting noise.
	legacy := testing.AllocsPerRun(20, func() {
		emitAll(newMapEmitter(reduces, false, true, meter, pairs))
	})
	if legacy > 4 {
		t.Errorf("legacy hinted emit path allocates %.0f times per attempt, want <= 4 (preallocation regressed)", legacy)
	}
	// Arena path adds the interner's fixed-size state (id map, dense
	// key/partition slices, one arena chunk) but still nothing per emit.
	hinted := testing.AllocsPerRun(20, func() {
		emitAll(newMapEmitter(reduces, false, false, meter, pairs))
	})
	if hinted > 12 {
		t.Errorf("arena hinted emit path allocates %.0f times per attempt, want <= 12 (preallocation regressed)", hinted)
	}
	unhinted := testing.AllocsPerRun(20, func() {
		emitAll(newMapEmitter(reduces, false, false, meter, 0))
	})
	if hinted >= unhinted {
		t.Errorf("hinted path allocates %.0f times vs %.0f unhinted; hint should eliminate append growth", hinted, unhinted)
	}
}

// BenchmarkPartition measures the shuffle partitioner.
func BenchmarkPartition(b *testing.B) {
	keys := []string{"alpha", "beta", "gamma", "delta", "a-much-longer-key-for-hashing"}
	for i := 0; i < b.N; i++ {
		_ = Partition(keys[i%len(keys)], 16)
	}
}

// shuffleKeys builds a distinct-key universe of the given size for the
// shuffle benchmarks ("word-0" ... "word-N").
func shuffleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "word-" + strconv.Itoa(i)
	}
	return keys
}

// shuffleRound runs one map attempt's worth of shuffle end to end in
// the chosen representation: emit a fixed pair stream, materialize the
// per-partition MapOutputs exactly like executeMap, and drain every
// partition through EachPair the way a reducer does. Returns the value
// sum as a cheap output check.
func shuffleRound(legacy bool, keys []string, reduces, pairs int) float64 {
	e := newMapEmitter(reduces, false, legacy, vtime.NewDeterministic(), pairs)
	for i := 0; i < pairs; i++ {
		e.Emit(keys[i%len(keys)], float64(i))
	}
	outs := make([]MapOutput, reduces)
	var sum float64
	add := func(_ string, v float64) { sum += v }
	for p := 0; p < reduces; p++ {
		out := &outs[p]
		if legacy {
			out.Pairs = e.raw[p]
		} else {
			out.keys = e.intern
			out.run = e.runs[p]
		}
		out.EachPair(add)
	}
	return sum
}

// BenchmarkShuffleArena measures the arena shuffle: interned (keyID,
// value) runs in flat per-partition slices, strings resolved only at
// EachPair time.
func BenchmarkShuffleArena(b *testing.B) {
	keys := shuffleKeys(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shuffleRound(false, keys, 4, 8192)
	}
}

// BenchmarkShuffleLegacy measures the old string-keyed shuffle for the
// same pair stream.
func BenchmarkShuffleLegacy(b *testing.B) {
	keys := shuffleKeys(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shuffleRound(true, keys, 4, 8192)
	}
}

// arenaShuffleAllocBaseline is the recorded allocs-per-attempt of
// BenchmarkShuffleArena's workload (64 distinct keys, 4 partitions,
// 8192 pairs, no hint). Re-record it deliberately when the shuffle
// layout changes; TestShuffleArenaAllocGuard fails CI when the live
// number drifts more than 15% above it.
const arenaShuffleAllocBaseline = 40

// TestShuffleArenaAllocGuard is the allocation regression guard for the
// arena shuffle, run by the CI bench job.
func TestShuffleArenaAllocGuard(t *testing.T) {
	keys := shuffleKeys(64)
	allocs := testing.AllocsPerRun(10, func() {
		shuffleRound(false, keys, 4, 8192)
	})
	if allocs > arenaShuffleAllocBaseline*1.15 {
		t.Errorf("arena shuffle allocates %.0f times per attempt, more than 1.15x the recorded baseline %d",
			allocs, arenaShuffleAllocBaseline)
	}
}

// TestShuffleEquivalence cross-checks the two shuffle representations
// on the same pair stream: identical pair counts and value sums.
func TestShuffleEquivalence(t *testing.T) {
	keys := shuffleKeys(64)
	arena := shuffleRound(false, keys, 4, 8192)
	legacy := shuffleRound(true, keys, 4, 8192)
	// Bit-level comparison: both paths must perform the identical float
	// additions in the identical order.
	if math.Float64bits(arena) != math.Float64bits(legacy) {
		t.Errorf("arena shuffle drained sum %v, legacy %v", arena, legacy)
	}
}

// BenchmarkTextReader measures raw record-reader throughput.
func BenchmarkTextReader(b *testing.B) {
	input := benchInput(20000)
	block := input.Blocks[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := TextInputFormat{}.Open(block, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := rr.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		rr.Close()
	}
	b.SetBytes(block.Size)
}
