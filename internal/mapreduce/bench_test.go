package mapreduce

import (
	"strconv"
	"strings"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/vtime"
)

// benchInput builds a reusable word-count corpus.
func benchInput(lines int) *dfs.File {
	var sb strings.Builder
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < lines; i++ {
		sb.WriteString(words[i%len(words)])
		sb.WriteByte(' ')
		sb.WriteString(words[(i*3)%len(words)])
		sb.WriteByte('\n')
	}
	return dfs.SplitText("bench.txt", []byte(sb.String()), 8192)
}

func benchJob(input *dfs.File, combine bool) *Job {
	return &Job{
		Input: input,
		NewMapper: func() Mapper {
			return MapperFunc(func(rec Record, emit Emitter) {
				for _, w := range strings.Fields(rec.Value) {
					emit.Emit(w, 1)
				}
			})
		},
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Combine:   combine,
		Cost:      cluster.AnalyticCost{T0: 1, Tr: 1e-5, Tp: 1e-4},
	}
}

// BenchmarkJobThroughput measures end-to-end framework throughput:
// scheduling, real map execution, shuffle and reduce for a 10k-line
// word count.
func BenchmarkJobThroughput(b *testing.B) {
	input := benchInput(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		if _, err := Run(cluster.New(cfg), benchJob(input, false)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(input.Size()))
}

// BenchmarkJobThroughputCombined measures the same job with map-side
// combining (fewer shuffled pairs).
func BenchmarkJobThroughputCombined(b *testing.B) {
	input := benchInput(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		if _, err := Run(cluster.New(cfg), benchJob(input, true)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(input.Size()))
}

// benchEmit drives one emitter through a fixed pair stream, the same
// shape the map hot path produces.
func benchEmit(e *mapEmitter, pairs int) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < pairs; i++ {
		e.Emit(words[i%len(words)], 1)
	}
}

// BenchmarkMapEmitterHinted measures the map-side emit hot path with an
// accurate pairsHint: one backing-array allocation up front, no append
// growth during the run.
func BenchmarkMapEmitterHinted(b *testing.B) {
	const pairs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := newMapEmitter(8, false, vtime.NewDeterministic(), pairs)
		benchEmit(e, pairs)
	}
}

// BenchmarkMapEmitterUnhinted is the same workload without a size hint
// (first wave of a job, before MapsCompleted feeds pairsHint): every
// partition slice grows by repeated append reallocation.
func BenchmarkMapEmitterUnhinted(b *testing.B) {
	const pairs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := newMapEmitter(8, false, vtime.NewDeterministic(), 0)
		benchEmit(e, pairs)
	}
}

// BenchmarkMapEmitterCombined measures the combining emitter with
// pre-sized maps.
func BenchmarkMapEmitterCombined(b *testing.B) {
	const pairs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := newMapEmitter(8, true, vtime.NewDeterministic(), pairs)
		benchEmit(e, pairs)
	}
}

// balancedKeys returns one key per reduce partition, found by probing
// candidate strings through the real Partition hash, so a round-robin
// emit stream fills every partition evenly.
func balancedKeys(t *testing.T, reduces int) []string {
	t.Helper()
	keys := make([]string, reduces)
	found := 0
	for i := 0; found < reduces && i < 10000; i++ {
		k := "key-" + strconv.Itoa(i)
		p := Partition(k, reduces)
		if keys[p] == "" {
			keys[p] = k
			found++
		}
	}
	if found < reduces {
		t.Fatalf("found keys for only %d/%d partitions", found, reduces)
	}
	return keys
}

// TestMapEmitterHintedAllocs pins the allocation contract of the
// preallocated raw-emit path: with a pairsHint that covers every
// partition, the whole emit stream costs exactly the up-front
// allocations (emitter struct + partition header slice + one backing
// array), so appends never grow a partition.
func TestMapEmitterHintedAllocs(t *testing.T) {
	const (
		reduces = 8
		pairs   = 4096
	)
	keys := balancedKeys(t, reduces)
	meter := vtime.NewDeterministic()
	emitAll := func(e *mapEmitter) {
		for i := 0; i < pairs; i++ {
			e.Emit(keys[i%reduces], 1)
		}
	}
	hinted := testing.AllocsPerRun(20, func() {
		emitAll(newMapEmitter(reduces, false, meter, pairs))
	})
	// One of slack over the three expected allocations for runtime
	// accounting noise.
	if hinted > 4 {
		t.Errorf("hinted emit path allocates %.0f times per attempt, want <= 4 (preallocation regressed)", hinted)
	}
	unhinted := testing.AllocsPerRun(20, func() {
		emitAll(newMapEmitter(reduces, false, meter, 0))
	})
	if hinted >= unhinted {
		t.Errorf("hinted path allocates %.0f times vs %.0f unhinted; hint should eliminate append growth", hinted, unhinted)
	}
}

// BenchmarkPartition measures the shuffle partitioner.
func BenchmarkPartition(b *testing.B) {
	keys := []string{"alpha", "beta", "gamma", "delta", "a-much-longer-key-for-hashing"}
	for i := 0; i < b.N; i++ {
		_ = Partition(keys[i%len(keys)], 16)
	}
}

// BenchmarkTextReader measures raw record-reader throughput.
func BenchmarkTextReader(b *testing.B) {
	input := benchInput(20000)
	block := input.Blocks[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := TextInputFormat{}.Open(block, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := rr.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		rr.Close()
	}
	b.SetBytes(block.Size)
}
