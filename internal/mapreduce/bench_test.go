package mapreduce

import (
	"strings"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
)

// benchInput builds a reusable word-count corpus.
func benchInput(lines int) *dfs.File {
	var sb strings.Builder
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < lines; i++ {
		sb.WriteString(words[i%len(words)])
		sb.WriteByte(' ')
		sb.WriteString(words[(i*3)%len(words)])
		sb.WriteByte('\n')
	}
	return dfs.SplitText("bench.txt", []byte(sb.String()), 8192)
}

func benchJob(input *dfs.File, combine bool) *Job {
	return &Job{
		Input: input,
		NewMapper: func() Mapper {
			return MapperFunc(func(rec Record, emit Emitter) {
				for _, w := range strings.Fields(rec.Value) {
					emit.Emit(w, 1)
				}
			})
		},
		NewReduce: func(int) ReduceLogic { return SumReduce() },
		Combine:   combine,
		Cost:      cluster.AnalyticCost{T0: 1, Tr: 1e-5, Tp: 1e-4},
	}
}

// BenchmarkJobThroughput measures end-to-end framework throughput:
// scheduling, real map execution, shuffle and reduce for a 10k-line
// word count.
func BenchmarkJobThroughput(b *testing.B) {
	input := benchInput(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		if _, err := Run(cluster.New(cfg), benchJob(input, false)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(input.Size()))
}

// BenchmarkJobThroughputCombined measures the same job with map-side
// combining (fewer shuffled pairs).
func BenchmarkJobThroughputCombined(b *testing.B) {
	input := benchInput(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		if _, err := Run(cluster.New(cfg), benchJob(input, true)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(input.Size()))
}

// BenchmarkPartition measures the shuffle partitioner.
func BenchmarkPartition(b *testing.B) {
	keys := []string{"alpha", "beta", "gamma", "delta", "a-much-longer-key-for-hashing"}
	for i := 0; i < b.N; i++ {
		_ = Partition(keys[i%len(keys)], 16)
	}
}

// BenchmarkTextReader measures raw record-reader throughput.
func BenchmarkTextReader(b *testing.B) {
	input := benchInput(20000)
	block := input.Blocks[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := TextInputFormat{}.Open(block, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := rr.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		rr.Close()
	}
	b.SetBytes(block.Size)
}
