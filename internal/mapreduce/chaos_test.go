package mapreduce

import (
	"math/rand"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/stats"
)

// chaosController makes random decisions on every hook: random
// sampling ratios, random drops/defers, random kills. Whatever it
// does, the scheduler must uphold its invariants.
type chaosController struct {
	rng *rand.Rand
}

func (c *chaosController) Name() string { return "chaos" }

func (c *chaosController) Plan(v *JobView) (float64, PlanAction) {
	switch c.rng.Intn(10) {
	case 0:
		return 0, PlanDrop
	case 1:
		return 0, PlanDefer
	default:
		return 0.05 + c.rng.Float64()*0.95, PlanRun
	}
}

func (c *chaosController) Completed(v *JobView) Directive {
	d := Directive{}
	switch c.rng.Intn(12) {
	case 0:
		d.DropPending = true
	case 1:
		d.DropPending = true
		d.KillRunning = true
	case 2:
		d.MaxLaunch = 1 + c.rng.Intn(v.TotalMaps)
	case 3:
		d.SampleRatio = c.rng.Float64()
	}
	// Exercise the view accessors too.
	_ = v.Estimates()
	_, _, _ = v.CostParams()
	return d
}

// TestChaosControllerInvariants runs many jobs under a randomized
// controller and verifies the scheduler's accounting invariants hold
// in every case.
func TestChaosControllerInvariants(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	for trial := 0; trial < 30; trial++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 2 + trial%3
		cfg.MapSlotsPerServer = 1 + trial%4
		cfg.StragglerProb = float64(trial%3) * 0.2
		cfg.StragglerFactor = 5
		cfg.Seed = int64(trial)
		eng := cluster.New(cfg)

		var events []Event
		job := &Job{
			Input:       input,
			NewMapper:   wordCountMapper,
			NewReduce:   func(int) ReduceLogic { return SumReduce() },
			Controller:  &chaosController{rng: stats.NewRand(int64(trial) * 31)},
			Cost:        cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.01},
			Seed:        int64(trial),
			Speculation: trial%2 == 0,
			SleepIdle:   trial%3 == 0,
			Trace:       func(e Event) { events = append(events, e) },
		}
		res, err := Run(eng, job)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c := res.Counters

		// Invariant: every logical task is accounted for exactly once.
		if c.MapsCompleted+c.MapsDropped > c.MapsTotal {
			t.Errorf("trial %d: completed %d + dropped-unlaunched %d exceeds total %d",
				trial, c.MapsCompleted, c.MapsDropped, c.MapsTotal)
		}
		// Killed-without-completion tasks are the remaining gap.
		accounted := c.MapsCompleted + c.MapsDropped
		if gap := c.MapsTotal - accounted; gap > c.MapsKilled {
			t.Errorf("trial %d: %d tasks unaccounted (killed=%d): %+v", trial, gap, c.MapsKilled, c)
		}
		// Invariant: no slot leaks — all servers idle at the end.
		for _, s := range eng.Servers() {
			if s.Busy(cluster.MapSlot) != 0 || s.Busy(cluster.ReduceSlot) != 0 {
				t.Errorf("trial %d: slot leak on %s", trial, s.ID)
			}
		}
		// Invariant: virtual time and energy are finite and positive.
		if !(res.Runtime >= 0) || !(res.EnergyWh >= 0) {
			t.Errorf("trial %d: runtime %v energy %v", trial, res.Runtime, res.EnergyWh)
		}
		// Invariant: outputs sorted by key.
		for i := 1; i < len(res.Outputs); i++ {
			if res.Outputs[i-1].Key > res.Outputs[i].Key {
				t.Fatalf("trial %d: outputs unsorted", trial)
			}
		}
		// Trace invariants: events in non-decreasing virtual time,
		// exactly one job-completed event at the end.
		jobDone := 0
		for i, e := range events {
			if i > 0 && e.Time < events[i-1].Time-1e-9 {
				t.Fatalf("trial %d: trace time went backwards at %d", trial, i)
			}
			if e.Kind == EventJobCompleted {
				jobDone++
			}
		}
		if jobDone != 1 {
			t.Errorf("trial %d: %d job-completed events", trial, jobDone)
		}
		// Launch/completion pairing: a completion/kill for every launch.
		launches, terminations := 0, 0
		for _, e := range events {
			switch e.Kind {
			case EventMapLaunched, EventMapSpeculated:
				launches++
			case EventMapCompleted, EventMapKilled:
				terminations++
			}
		}
		if launches != terminations {
			t.Errorf("trial %d: %d launches vs %d terminations", trial, launches, terminations)
		}
	}
}

// TestTraceEventStrings covers the String methods.
func TestTraceEventStrings(t *testing.T) {
	kinds := []EventKind{EventMapLaunched, EventMapCompleted, EventMapKilled,
		EventMapDropped, EventMapSpeculated, EventReduceFinished, EventJobCompleted, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	e := Event{Kind: EventMapLaunched, Time: 1.5, Task: 3, Server: "s", Ratio: 0.5}
	if e.String() == "" {
		t.Error("empty event string")
	}
}

// TestDeterministicTrace verifies the whole schedule is reproducible.
func TestDeterministicTrace(t *testing.T) {
	input, _ := wordCountInput(t, 128)
	runOnce := func() []Event {
		var events []Event
		job := &Job{
			Input:     input,
			NewMapper: wordCountMapper,
			NewReduce: func(int) ReduceLogic { return SumReduce() },
			Cost:      cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.01},
			Seed:      99,
			Trace:     func(e Event) { events = append(events, e) },
		}
		if _, err := Run(testEngine(), job); err != nil {
			t.Fatal(err)
		}
		return events
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
