package mapreduce

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/stats"
)

// chaosController makes random decisions on every hook: random
// sampling ratios, random drops/defers, random kills. Whatever it
// does, the scheduler must uphold its invariants.
type chaosController struct {
	rng *rand.Rand
}

func (c *chaosController) Name() string { return "chaos" }

func (c *chaosController) Plan(v *JobView) (float64, PlanAction) {
	switch c.rng.Intn(10) {
	case 0:
		return 0, PlanDrop
	case 1:
		return 0, PlanDefer
	default:
		return 0.05 + c.rng.Float64()*0.95, PlanRun
	}
}

func (c *chaosController) Completed(v *JobView) Directive {
	d := Directive{}
	switch c.rng.Intn(12) {
	case 0:
		d.DropPending = true
	case 1:
		d.DropPending = true
		d.KillRunning = true
	case 2:
		d.MaxLaunch = 1 + c.rng.Intn(v.TotalMaps)
	case 3:
		d.SampleRatio = c.rng.Float64()
	}
	// Exercise the view accessors too.
	_ = v.Estimates()
	_, _, _ = v.CostParams()
	return d
}

// TestChaosControllerInvariants runs many jobs under a randomized
// controller and verifies the scheduler's accounting invariants hold
// in every case.
func TestChaosControllerInvariants(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	for trial := 0; trial < 30; trial++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 2 + trial%3
		cfg.MapSlotsPerServer = 1 + trial%4
		cfg.StragglerProb = float64(trial%3) * 0.2
		cfg.StragglerFactor = 5
		cfg.Seed = int64(trial)
		eng := cluster.New(cfg)

		var events []Event
		job := &Job{
			Input:       input,
			NewMapper:   wordCountMapper,
			NewReduce:   func(int) ReduceLogic { return SumReduce() },
			Controller:  &chaosController{rng: stats.NewRand(int64(trial) * 31)},
			Cost:        cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.01},
			Seed:        int64(trial),
			Speculation: trial%2 == 0,
			SleepIdle:   trial%3 == 0,
			Trace:       func(e Event) { events = append(events, e) },
		}
		res, err := Run(eng, job)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c := res.Counters

		// Invariant: every logical task is accounted for exactly once.
		if c.MapsCompleted+c.MapsDropped > c.MapsTotal {
			t.Errorf("trial %d: completed %d + dropped-unlaunched %d exceeds total %d",
				trial, c.MapsCompleted, c.MapsDropped, c.MapsTotal)
		}
		// Killed-without-completion tasks are the remaining gap.
		accounted := c.MapsCompleted + c.MapsDropped
		if gap := c.MapsTotal - accounted; gap > c.MapsKilled {
			t.Errorf("trial %d: %d tasks unaccounted (killed=%d): %+v", trial, gap, c.MapsKilled, c)
		}
		// Invariant: no slot leaks — all servers idle at the end.
		for _, s := range eng.Servers() {
			if s.Busy(cluster.MapSlot) != 0 || s.Busy(cluster.ReduceSlot) != 0 {
				t.Errorf("trial %d: slot leak on %s", trial, s.ID)
			}
		}
		// Invariant: virtual time and energy are finite and positive.
		if !(res.Runtime >= 0) || !(res.EnergyWh >= 0) {
			t.Errorf("trial %d: runtime %v energy %v", trial, res.Runtime, res.EnergyWh)
		}
		// Invariant: outputs sorted by key.
		for i := 1; i < len(res.Outputs); i++ {
			if res.Outputs[i-1].Key > res.Outputs[i].Key {
				t.Fatalf("trial %d: outputs unsorted", trial)
			}
		}
		// Trace invariants: events in non-decreasing virtual time,
		// exactly one job-completed event at the end.
		jobDone := 0
		for i, e := range events {
			if i > 0 && e.Time < events[i-1].Time-1e-9 {
				t.Fatalf("trial %d: trace time went backwards at %d", trial, i)
			}
			if e.Kind == EventJobCompleted {
				jobDone++
			}
		}
		if jobDone != 1 {
			t.Errorf("trial %d: %d job-completed events", trial, jobDone)
		}
		// Launch/completion pairing: a completion/kill for every launch.
		launches, terminations := 0, 0
		for _, e := range events {
			switch e.Kind {
			case EventMapLaunched, EventMapSpeculated:
				launches++
			case EventMapCompleted, EventMapKilled:
				terminations++
			}
		}
		if launches != terminations {
			t.Errorf("trial %d: %d launches vs %d terminations", trial, launches, terminations)
		}
	}
}

// chaosSeedBase returns the base seed for fault-plan chaos trials.
// CI's seed matrix sets APPROX_CHAOS_SEED to sweep disjoint seed
// ranges; locally it defaults to 0.
func chaosSeedBase(t *testing.T) int64 {
	v := os.Getenv("APPROX_CHAOS_SEED")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("APPROX_CHAOS_SEED=%q: %v", v, err)
	}
	return n
}

// TestChaosUnderFaultPlan runs jobs under randomized fault plans
// (task faults, fail-stops, slowdowns, rack failures, recoveries) and
// verifies the scheduler's invariants. With DegradeToDrop off and
// unlimited retries, every completing job must produce exact results:
// faults may cost time, never correctness.
func TestChaosUnderFaultPlan(t *testing.T) {
	input, want := wordCountInput(t, 64)
	base := chaosSeedBase(t)
	for trial := 0; trial < 25; trial++ {
		seed := base*1000 + int64(trial)
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		cfg.MapSlotsPerServer = 2
		cfg.Seed = seed
		eng := cluster.New(cfg)

		degrade := trial%2 == 1
		// Reduces land round-robin on servers 0 and 1; protect them
		// from fail-stops (reduce state is not replicated) so the only
		// acceptable outcome is completion.
		plan := cluster.RandomFaultPlan(seed*7+1, 3+trial%4, cfg.Servers, 4.0, 0, 1)
		var events []Event
		job := &Job{
			Input:         input,
			NewMapper:     wordCountMapper,
			NewReduce:     func(int) ReduceLogic { return SumReduce() },
			Reduces:       2,
			Cost:          cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
			Seed:          seed,
			Speculation:   trial%3 == 0,
			SleepIdle:     trial%5 == 0,
			Faults:        &plan,
			DegradeToDrop: degrade,
			Retry: RetryPolicy{
				MaxAttemptsPerTask: map[bool]int{false: 0, true: 3}[degrade],
				Backoff:            float64(trial%3) * 0.5,
				BlacklistAfter:     map[bool]int{false: 0, true: 4}[degrade],
			},
			Trace: func(e Event) { events = append(events, e) },
		}
		res, err := Run(eng, job)
		if err != nil {
			t.Fatalf("trial %d (seed %d): %v", trial, seed, err)
		}
		c := res.Counters

		// Accounting: every logical task completes or is degraded
		// (nothing is dropped/killed by a controller here).
		if c.MapsCompleted+c.MapsDegraded != c.MapsTotal {
			t.Errorf("trial %d: completed %d + degraded %d != total %d",
				trial, c.MapsCompleted, c.MapsDegraded, c.MapsTotal)
		}
		if !degrade && c.MapsDegraded != 0 {
			t.Errorf("trial %d: degraded %d tasks with DegradeToDrop off", trial, c.MapsDegraded)
		}
		// Launch/termination pairing: failures count as terminations.
		launches, terminations := 0, 0
		for _, e := range events {
			switch e.Kind {
			case EventMapLaunched, EventMapSpeculated:
				launches++
			case EventMapCompleted, EventMapKilled, EventMapFailed:
				terminations++
			}
		}
		if launches != terminations {
			t.Errorf("trial %d: %d launches vs %d terminations", trial, launches, terminations)
		}
		// No slot leaks on surviving servers.
		for _, s := range eng.Servers() {
			if s.Dead() {
				continue
			}
			if s.Busy(cluster.MapSlot) != 0 || s.Busy(cluster.ReduceSlot) != 0 {
				t.Errorf("trial %d: slot leak on %s", trial, s.ID)
			}
		}
		// Correctness: exact results whenever nothing was degraded.
		if c.MapsDegraded == 0 {
			for _, o := range res.Outputs {
				if !o.Exact || !stats.AlmostEqual(o.Est.Value, want[o.Key], 1e-9) {
					t.Errorf("trial %d: %s = %v exact=%v, want exact %v",
						trial, o.Key, o.Est.Value, o.Exact, want[o.Key])
				}
			}
		} else {
			for _, o := range res.Outputs {
				if o.Exact {
					t.Errorf("trial %d: exact output %s despite %d degraded maps",
						trial, o.Key, c.MapsDegraded)
				}
			}
		}
	}
}

// TestChaosFaultPlanDeterministic replays one faulted trial twice and
// requires identical traces: fault injection must be as reproducible
// as the rest of the simulator.
func TestChaosFaultPlanDeterministic(t *testing.T) {
	input, _ := wordCountInput(t, 64)
	runOnce := func() []Event {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4
		cfg.MapSlotsPerServer = 2
		cfg.Seed = 5
		eng := cluster.New(cfg)
		plan := cluster.RandomFaultPlan(42, 5, cfg.Servers, 4.0, 0, 1)
		var events []Event
		job := &Job{
			Input:         input,
			NewMapper:     wordCountMapper,
			NewReduce:     func(int) ReduceLogic { return SumReduce() },
			Reduces:       2,
			Cost:          cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.001},
			Seed:          5,
			Faults:        &plan,
			DegradeToDrop: true,
			Retry:         RetryPolicy{MaxAttemptsPerTask: 2, Backoff: 0.5, BlacklistAfter: 3},
			Trace:         func(e Event) { events = append(events, e) },
		}
		if _, err := Run(eng, job); err != nil {
			t.Fatal(err)
		}
		return events
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestTraceEventStrings covers the String methods.
func TestTraceEventStrings(t *testing.T) {
	kinds := []EventKind{EventMapLaunched, EventMapCompleted, EventMapKilled,
		EventMapDropped, EventMapSpeculated, EventMapFailed, EventMapRetried,
		EventMapDegraded, EventServerBlacklisted, EventReduceFinished,
		EventJobCompleted, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	e := Event{Kind: EventMapLaunched, Time: 1.5, Task: 3, Server: "s", Ratio: 0.5}
	if e.String() == "" {
		t.Error("empty event string")
	}
}

// TestDeterministicTrace verifies the whole schedule is reproducible.
func TestDeterministicTrace(t *testing.T) {
	input, _ := wordCountInput(t, 128)
	runOnce := func() []Event {
		var events []Event
		job := &Job{
			Input:     input,
			NewMapper: wordCountMapper,
			NewReduce: func(int) ReduceLogic { return SumReduce() },
			Cost:      cluster.AnalyticCost{T0: 1, Tr: 0.001, Tp: 0.01},
			Seed:      99,
			Trace:     func(e Event) { events = append(events, e) },
		}
		if _, err := Run(testEngine(), job); err != nil {
			t.Fatal(err)
		}
		return events
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
