// Package mapreduce implements a Hadoop-style MapReduce framework on
// top of the dfs and cluster packages: a JobTracker schedules one map
// task per input block onto simulated TaskTracker slots (locality
// aware), map outputs are hash-partitioned and shuffled to reduce
// tasks, and reduce tasks consume outputs either incrementally
// (barrier-less, following Verma et al., which ApproxHadoop requires
// for online error estimation) or after a conventional barrier.
//
// The approximation hooks are exactly the paper's Section 4.3
// modifications: map tasks run in random order, a Controller can direct
// per-task input sampling ratios and drop pending or kill running
// tasks, and dropped maps are tracked so job completion is detected
// despite them never finishing.
package mapreduce

import (
	"sort"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/sketch"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/vtime"
)

// KV is one intermediate or final key/value pair. Values are float64
// because every reducer in the paper (sum, count, average, ratio, min,
// max) is numeric; string payloads travel in the Record input side.
type KV struct {
	Key   string
	Value float64
}

// Record is one input record handed to a map function: for text inputs
// Key identifies the record position and Value is the line.
//
// Lifetime: when the framework drives a mapper through the push-mode
// fast path (see RecordPusher), Key and Value are views over reusable
// attempt-owned buffers — valid only for the duration of the Map call,
// exactly Hadoop's Writable-reuse contract. Mappers that retain a
// record past Map must copy it; emitting (sub)strings of it is always
// safe because the emitter interns every key on first sight. Records
// obtained by calling RecordReader.Next directly are plain copies with
// no lifetime restriction.
type Record struct {
	Key   string
	Value string
}

// Emitter receives intermediate pairs from a map function.
//
//approx:pure
type Emitter interface {
	Emit(key string, value float64)
}

// ElementEmitter is the grouped-element extension of Emitter that the
// sketch plane consumes: EmitElement declares "element occurred weight
// times within group" instead of handing over an opaque (key, value)
// pair. Under a Job.Sketch plan the framework folds the element into
// the group's fixed-size sketch; without a plan it degrades to the
// composite pair group+ElementSep+element (partitioned by group, so
// each group still lands on exactly one reduce) — the O(keys) baseline
// the sketch representation is measured against. The framework emitter
// implements this in both data planes.
//
//approx:pure
type ElementEmitter interface {
	EmitElement(group, element string, weight float64)
}

// ElementSep joins group and element in the composite-pair fallback.
// 0x1f is ASCII Unit Separator — absent from the text workloads.
const ElementSep = "\x1f"

// EmitElement routes a grouped element through emit: the framework's
// ElementEmitter fast path when available, otherwise the composite-pair
// encoding. Mappers for distinct/top-k/membership jobs call this and
// work identically under both the sketch and pairs representations.
func EmitElement(emit Emitter, group, element string, weight float64) {
	if ee, ok := emit.(ElementEmitter); ok {
		ee.EmitElement(group, element, weight)
		return
	}
	emit.Emit(group+ElementSep+element, weight)
}

// SplitElement decomposes a composite pair key produced by the
// EmitElement fallback. Keys without a separator were emitted by plain
// Emit; they are returned as a bare element with an empty group.
func SplitElement(key string) (group, element string) {
	for i := 0; i < len(key); i++ {
		if key[i] == ElementSep[0] {
			return key[:i], key[i+1:]
		}
	}
	return "", key
}

// Mapper is user map() code. One instance is created per map task, so
// implementations may keep per-task state without synchronization.
//
//approx:pure
type Mapper interface {
	Map(rec Record, emit Emitter)
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(rec Record, emit Emitter)

// Map implements Mapper.
func (f MapperFunc) Map(rec Record, emit Emitter) { f(rec, emit) }

// ReaderMeasure reports what a RecordReader has done so far.
type ReaderMeasure struct {
	Items    int64   // records seen in the block (M_i so far)
	Sampled  int64   // records returned to the caller (m_i so far)
	Bytes    int64   // raw bytes scanned
	ReadSecs float64 // metered seconds spent reading/parsing
}

// MeterSetter is implemented by RecordReaders that account their read
// cost against a compute meter. The framework injects the job's meter
// right after InputFormat.Open; readers fall back to a private
// deterministic meter when used standalone.
//
//approx:pure
type MeterSetter interface {
	SetMeter(m vtime.Meter)
}

// RecordReader iterates over the records of one block, possibly
// returning only a sample of them.
//
//approx:pure
type RecordReader interface {
	// Next returns the next record; ok=false signals the end of the
	// block (after which Measure totals are final).
	Next() (rec Record, ok bool, err error)
	// Measure returns read statistics accumulated so far.
	Measure() ReaderMeasure
	// Close releases the underlying block reader.
	Close() error
}

// InputFormat opens blocks for reading. sampleRatio in (0, 1] asks a
// sampling-aware format to return roughly that fraction of records;
// precise formats process everything regardless (and should be paired
// with ratio 1). seed makes sampling deterministic per task attempt.
//
//approx:pure
type InputFormat interface {
	Open(b *dfs.Block, sampleRatio float64, seed int64) (RecordReader, error)
}

// RecordPusher is the push-mode fast path a RecordReader may offer on
// top of Next: the reader drives the whole block through fn itself,
// yielding zero-copy records (see the Record lifetime contract) and
// metering reads through exactly the same Begin/End sequence the
// equivalent Next loop would issue — so with a deterministic meter the
// two paths charge identical seconds. Push returns ok=false without
// consuming anything when the underlying block has no line-yielding
// backing; the caller then falls back to the Next loop.
//
//approx:pure
type RecordPusher interface {
	Push(fn func(rec Record)) (ok bool, err error)
}

// MapOutput is what one completed map task delivers to one reduce
// partition: the task/cluster identity, the block unit counts needed by
// multi-stage sampling (Section 4.4 — "each map task tags each
// key/value pair with its unique task ID" and forwards M_i and m_i),
// and the pairs themselves, either raw or combiner-aggregated.
//
// Two payload representations exist. The legacy fields Pairs/Combined
// carry string-keyed data and remain the construction API for tests and
// external callers. The framework's default arena representation keys
// pairs by interned IDs into flat per-partition runs sharing one
// attempt-wide key table, deferring string resolution to reduce time;
// reducers consume either representation uniformly through EachPair /
// EachCombined / PairLen.
type MapOutput struct {
	TaskID  int   // map task index; the sampling "cluster" identifier
	Items   int64 // M_i: data items in the task's block
	Sampled int64 // m_i: items actually processed
	// At most one of Pairs/Combined is populated (legacy string-keyed
	// payload), depending on Job.Combine. Combined carries per-key
	// (count, sum, sumsq), which is lossless for aggregation reducers.
	Pairs    []KV
	Combined map[string]stats.RunningStat

	// SketchGroups is the third payload representation (Job.Sketch):
	// one fixed-size mergeable sketch per group key, so the partition's
	// shuffle volume is O(groups·sketchSize) regardless of how many
	// records the task folded — O(1) per partition for bounded group
	// sets. This map is the construction API for tests; the framework
	// default is the arena form below. Payload sketches are shared
	// (attempt results are memoized across speculative attempts), so
	// consumers must Clone before merging.
	SketchGroups map[string]sketch.Sketch

	// Arena payload (framework default): keys is the attempt's interner,
	// shared by all partitions of the attempt; run is this partition's
	// raw (keyID, value) pairs in emit order; combIDs lists this
	// partition's distinct key IDs in first-emit order, whose aggregates
	// live in the attempt-wide dense combStats slice indexed by key ID.
	keys      *keyTable
	run       []idPair
	combIDs   []int32
	combStats []stats.RunningStat

	// Arena sketch payload: groups is the attempt's group interner,
	// sketchIDs this partition's group IDs in first-emit order, and
	// sketches the attempt-wide dense sketch slice indexed by group ID.
	groups    *keyTable
	sketchIDs []int32
	sketches  []sketch.Sketch
}

// idPair is one arena-shuffled intermediate pair: an interned key ID
// and its value. 16 bytes versus the 24 of a string-keyed KV, and no
// per-pair string header to trace during GC.
type idPair struct {
	id int32
	v  float64
}

// IsCombined reports whether the output carries combiner-aggregated
// per-key statistics rather than raw pairs.
func (o *MapOutput) IsCombined() bool {
	return o.Combined != nil || o.combIDs != nil
}

// IsSketch reports whether the output carries per-group sketches.
func (o *MapOutput) IsSketch() bool {
	return o.SketchGroups != nil || o.groups != nil
}

// PairLen returns the number of payload entries: raw pairs, distinct
// keys for combined outputs, or groups for sketch outputs. It is the
// unit count reduce-side cost accounting charges, identical across
// representations.
func (o *MapOutput) PairLen() int {
	n := len(o.sketchIDs) + len(o.SketchGroups)
	if o.keys != nil {
		if o.combIDs != nil {
			return n + len(o.combIDs)
		}
		return n + len(o.run)
	}
	return n + len(o.Pairs) + len(o.Combined)
}

// EachPair calls fn for every raw pair in shuffle (emit) order. Keys
// handed to fn are durable — interned arena strings or the original KV
// keys — so reducers may retain them without copying.
//
//approx:hotpath
func (o *MapOutput) EachPair(fn func(key string, value float64)) {
	if o.keys != nil {
		for _, p := range o.run {
			fn(o.keys.Resolve(p.id), p.v)
		}
		return
	}
	for _, kv := range o.Pairs {
		fn(kv.Key, kv.Value)
	}
}

// EachCombined calls fn for every per-key aggregate of a combined
// output. Arena outputs iterate in first-emit order (deterministic);
// legacy map outputs iterate in Go map order, which reducers must not
// depend on (per-key aggregation is order-free). Keys are durable.
//
//approx:hotpath
func (o *MapOutput) EachCombined(fn func(key string, rs stats.RunningStat)) {
	if o.keys != nil {
		for _, id := range o.combIDs {
			fn(o.keys.Resolve(id), o.combStats[id])
		}
		return
	}
	for k, rs := range o.Combined {
		fn(k, rs)
	}
}

// EachSketch calls fn for every (group, sketch) of a sketch output.
// Arena outputs iterate in first-emit order; the legacy SketchGroups
// map iterates in sorted key order, so both are deterministic. Group
// keys are durable; sketches are shared payload — Clone before
// mutating.
//
//approx:hotpath
func (o *MapOutput) EachSketch(fn func(group string, s sketch.Sketch)) {
	if o.groups != nil {
		for _, id := range o.sketchIDs {
			fn(o.groups.Resolve(id), o.sketches[id])
		}
		return
	}
	if len(o.SketchGroups) == 0 {
		return
	}
	keys := make([]string, 0, len(o.SketchGroups))
	for g := range o.SketchGroups {
		keys = append(keys, g)
	}
	sort.Strings(keys)
	for _, g := range keys {
		fn(g, o.SketchGroups[g])
	}
}

// Per-entry wire-size constants for ShuffleSize: what a compact binary
// shuffle format would spend beyond the key bytes. A raw pair carries a
// float64 value plus a ~1-byte length prefix; a combined entry carries
// (count, sum, sumsq) plus the prefix; every entry kind pays the
// prefix; each output pays a fixed header (task ID and the M_i/m_i
// cluster counts).
const (
	shuffleHeaderBytes   = 24
	shufflePairBytes     = 9
	shuffleCombinedBytes = 25
	shuffleGroupBytes    = 4 // group-key length prefix + sketch length
)

// ShuffleSize returns the output's modeled shuffle cost in bytes: the
// size of a compact binary encoding of its payload (sketches use their
// exact canonical serialized size). This is what Counters.ShuffleBytes
// accumulates — the quantity the sketch representation collapses from
// O(keys folded) to O(1) per partition.
func (o *MapOutput) ShuffleSize() int64 {
	n := int64(shuffleHeaderBytes)
	if o.groups != nil {
		for _, id := range o.sketchIDs {
			n += int64(len(o.groups.Resolve(id))) + shuffleGroupBytes + int64(o.sketches[id].SizeBytes())
		}
	}
	for g, s := range o.SketchGroups {
		n += int64(len(g)) + shuffleGroupBytes + int64(s.SizeBytes())
	}
	if o.keys != nil {
		if o.combIDs != nil {
			for _, id := range o.combIDs {
				n += int64(len(o.keys.Resolve(id))) + shuffleCombinedBytes
			}
		} else {
			for _, p := range o.run {
				n += int64(len(o.keys.Resolve(p.id))) + shufflePairBytes
			}
		}
		return n
	}
	for _, kv := range o.Pairs {
		n += int64(len(kv.Key)) + shufflePairBytes
	}
	for k := range o.Combined {
		n += int64(len(k)) + shuffleCombinedBytes
	}
	return n
}

// KeyEstimate is one final (or in-flight) output: a key and its
// estimate with confidence interval. Exact marks values computed from
// complete data (no sampling, no dropping), whose interval is zero.
// Lossy marks values a combiner silently pre-aggregated for a reduce
// function that is not combiner-safe: the value may be wrong, not just
// imprecise, and writers surface the marker instead of the number
// standing alone.
type KeyEstimate struct {
	Key   string
	Est   stats.Estimate
	Exact bool
	Lossy bool
}

// EstimateView gives ReduceLogic the job-level facts needed to evaluate
// the estimators: the population cluster count N and the confidence.
type EstimateView struct {
	TotalMaps  int     // N: clusters in the population
	Consumed   int     // n: map outputs consumed so far
	Dropped    int     // dropped or killed maps so far
	Confidence float64 // e.g. 0.95
}

// ReduceLogic is the reduce-side computation for one partition. The
// framework calls Consume once per completed map task (with that task's
// slice of the shuffle), possibly interleaved with Estimates calls from
// the controller, and Finalize exactly once at the end.
type ReduceLogic interface {
	Consume(out *MapOutput)
	// Estimates returns the current per-key estimates; used by target-
	// error controllers while maps are still running. Implementations
	// for which online estimation is meaningless may return nil.
	Estimates(view EstimateView) []KeyEstimate
	// Finalize returns the partition's final outputs.
	Finalize(view EstimateView) []KeyEstimate
}

// Directive is returned by a Controller after a map completion to steer
// the rest of the job.
type Directive struct {
	DropPending bool    // drop all not-yet-launched maps
	KillRunning bool    // also kill currently running maps
	SampleRatio float64 // if > 0, input sampling ratio for future launches
	MaxLaunch   int     // if > 0, cap total map launches at this count
	// Abort, when non-nil, fails the job with this error: the
	// controller has concluded the job cannot meet its contract (e.g.
	// a deadline SLO that is infeasible even at the cheapest ratios).
	Abort error
}

// JobView is the read-only window a Controller gets onto a running job.
type JobView struct {
	TotalMaps     int
	TotalMapSlots int
	Launched      int
	Completed     int
	Dropped       int // dropped + killed
	Running       int
	Pending       int
	Confidence    float64
	// Elapsed is the virtual time since the job started — what a
	// deadline controller budgets against. Note TotalMapSlots is the
	// job's *effective* slot count: under a multi-tenant arbiter it is
	// the job's share, not the whole cluster.
	Elapsed float64
	// Measures holds the cluster.TaskMeasure of each completed map, in
	// completion order, for cost-model fitting.
	Measures []cluster.TaskMeasure
	// Estimates returns the current cross-partition estimate snapshot.
	Estimates func() []KeyEstimate
	// Logics exposes the per-partition ReduceLogic instances so
	// controllers can extract richer planning statistics (e.g. the
	// variance components of Equation 7) via type assertion.
	Logics func() []ReduceLogic
	// CostParams returns (t0, tr, tp) fitted from completed maps.
	CostParams func() (t0, tr, tp float64)
	// AvgItems is the mean M_i over completed maps (0 if none).
	AvgItems float64
}

// PlanAction is a Controller's verdict on the next map task launch.
type PlanAction int

// Plan actions.
const (
	// PlanRun launches the task with the returned sampling ratio.
	PlanRun PlanAction = iota
	// PlanDrop drops the task without executing it.
	PlanDrop
	// PlanDefer leaves the task pending and pauses launching until the
	// next scheduling pass (e.g. while waiting for a pilot wave to
	// finish). Controllers must never defer when nothing is running,
	// or the job would stall; the tracker converts such a defer into a
	// run as a safety net.
	PlanDefer
)

// Controller steers approximation while a job runs. The precise
// framework uses a nil controller: every task runs with ratio 1.
type Controller interface {
	// Name identifies the controller in logs and results.
	Name() string
	// Plan is consulted immediately before launching a map task.
	Plan(v *JobView) (sampleRatio float64, action PlanAction)
	// Completed is invoked after each map task's output has been
	// consumed by the reduces.
	Completed(v *JobView) Directive
}

// Counters aggregates what happened during a job.
type Counters struct {
	MapsTotal      int
	MapsCompleted  int
	MapsDropped    int // never launched
	MapsKilled     int // launched, then deliberately killed
	MapsFailed     int // attempts lost to faults (task faults or server death)
	MapsRetried    int // re-executions queued for failed attempts
	MapsDegraded   int // tasks degraded to statistically-bounded drops
	MapsSpeculated int // duplicate attempts launched
	// ServersBlacklisted counts servers removed from map scheduling
	// after RetryPolicy.BlacklistAfter failed attempts.
	ServersBlacklisted int
	ItemsTotal         int64
	ItemsProcessed     int64
	BytesRead          int64
	PairsShuffled      int64
	// ShuffleBytes is the modeled shuffle volume: the summed
	// MapOutput.ShuffleSize of every output delivered to a reduce.
	ShuffleBytes int64
	Waves        int
}

// Result is the outcome of a job execution.
type Result struct {
	Job      string
	Outputs  []KeyEstimate // merged across partitions, sorted by key
	Runtime  float64       // virtual seconds from submission to completion
	EnergyWh float64       // cluster energy over the job's timeline
	// Energy splits the job's energy by server state (busy slots,
	// awake-idle, S3 sleep), in joules.
	Energy   cluster.EnergyBreakdown
	Counters Counters
	// RealSecs is the compute charged by the job's meter for executing
	// map and reduce code in-process: deterministic modeled seconds
	// under the default vtime.Deterministic meter, host wall-clock
	// seconds under vtime.Wall (calibration and benchmarks).
	RealSecs float64
	// Trace is the job's full scheduling-event log in virtual-time
	// order, recorded when Job.RecordTrace is set (nil otherwise).
	Trace []Event
}

// Output returns the estimate for a key, with ok=false when absent
// (e.g. the key was missed entirely by sampling, Section 3.1's stated
// limitation).
func (r *Result) Output(key string) (KeyEstimate, bool) {
	// Outputs are sorted by key; binary search.
	lo, hi := 0, len(r.Outputs)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.Outputs[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.Outputs) && r.Outputs[lo].Key == key {
		return r.Outputs[lo], true
	}
	return KeyEstimate{}, false
}

// MaxRelErr returns the largest relative error bound across outputs —
// the paper reports "the key with the maximum predicted absolute
// error"; relative bounds are what target-error mode constrains.
func (r *Result) MaxRelErr() float64 {
	worst := 0.0
	for _, o := range r.Outputs {
		if re := o.Est.RelErr(); re > worst {
			worst = re
		}
	}
	return worst
}
