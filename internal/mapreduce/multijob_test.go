package mapreduce

import (
	"testing"

	"approxhadoop/internal/cluster"
)

// TestSequentialJobsSharedTimeline runs two jobs on one engine: the
// virtual clock and energy accounting continue across jobs, but each
// Result reports only its own deltas.
func TestSequentialJobsSharedTimeline(t *testing.T) {
	input, _ := wordCountInput(t, 128)
	eng := testEngine()
	mk := func(name string) *Job {
		return &Job{
			Name:      name,
			Input:     input,
			NewMapper: wordCountMapper,
			NewReduce: func(int) ReduceLogic { return SumReduce() },
			Cost:      cluster.AnalyticCost{T0: 2, Tr: 0.001, Tp: 0.001},
		}
	}
	first, err := Run(eng, mk("first"))
	if err != nil {
		t.Fatal(err)
	}
	midClock := eng.Now()
	second, err := Run(eng, mk("second"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Now() <= midClock {
		t.Error("clock should advance across jobs")
	}
	// Deltas, not absolutes: both jobs are identical, so runtimes match.
	if diff := first.Runtime - second.Runtime; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("identical jobs should report identical runtimes: %v vs %v",
			first.Runtime, second.Runtime)
	}
	if second.EnergyWh <= 0 || first.EnergyWh <= 0 {
		t.Error("per-job energy deltas should be positive")
	}
	// Results identical.
	if len(first.Outputs) != len(second.Outputs) {
		t.Error("outputs differ across identical jobs")
	}
}
