// Worker-pool execution of map-attempt compute.
//
// The simulator separates two planes. The *virtual-time plane* (the
// tracker plus the cluster engine) is strictly single-threaded: every
// scheduling, speculation, energy and perturbation decision happens in
// virtual-time order on the goroutine driving Engine.Run. The *compute
// plane* is the real user code of map attempts — executeMap — which is
// a pure function of (job config, block, ratio, seed, meter) and so
// may execute on any goroutine at any wall-clock moment without
// affecting the simulation.
//
// The tracker exploits that purity: within one scheduling pass it only
// *decides* launches (occupying slots via StartOpenTask), queues their
// compute as pendingLaunch entries, and then flushes the batch through
// this pool. Results are applied in launch order on the scheduler
// goroutine, so the virtual timeline — and therefore every Result
// byte — is identical whether the pool has 1 or N workers.
package mapreduce

import (
	"runtime"
	"sync"

	"approxhadoop/internal/cluster"
)

// pendingLaunch is one decided-but-not-yet-computed map attempt.
type pendingLaunch struct {
	idx    int
	ratio  float64
	spec   bool                       // speculative: duration is not re-perturbed
	handle *cluster.RunningTask       // slot occupied at decide time
	run    func() (*mapResult, error) // nil on a cache hit
	res    *mapResult                 // filled by the pool (or the cache)
	err    error
}

// computePool executes map-attempt compute on a bounded set of
// persistent worker goroutines. Workers start lazily on the first
// parallel batch and exit when the pool is closed.
type computePool struct {
	workers int
	once    sync.Once
	jobs    chan func()
	wg      sync.WaitGroup
	closed  bool
}

// newComputePool sizes a pool; workers <= 0 means GOMAXPROCS.
func newComputePool(workers int) *computePool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &computePool{workers: workers}
}

// start spins up the worker goroutines (called once, lazily).
func (p *computePool) start() {
	p.jobs = make(chan func(), p.workers)
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
}

// runAll resolves every unresolved entry of batch, in parallel when
// the pool has more than one worker and the batch more than one entry.
// It returns only when all entries have res or err set; callers then
// apply results in batch order, which is what keeps the virtual
// timeline independent of pool size.
func (p *computePool) runAll(batch []*pendingLaunch) {
	var todo []*pendingLaunch
	for _, pl := range batch {
		if pl.res == nil && pl.run != nil {
			todo = append(todo, pl)
		}
	}
	if len(todo) == 0 {
		return
	}
	if p.workers <= 1 || len(todo) == 1 || p.closed {
		// Inline execution: single-worker pools, single-entry batches,
		// and the tail flush of a job whose pool was already torn down
		// (a fail() mid-pass) all resolve on the scheduler goroutine.
		for _, pl := range todo {
			pl.res, pl.err = pl.run()
		}
		return
	}
	p.once.Do(p.start)
	var wg sync.WaitGroup
	wg.Add(len(todo))
	for _, pl := range todo {
		pl := pl
		p.jobs <- func() {
			defer wg.Done()
			pl.res, pl.err = pl.run()
		}
	}
	wg.Wait()
}

// close shuts the workers down; later runAll calls execute inline.
func (p *computePool) close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.jobs != nil {
		close(p.jobs)
		p.wg.Wait()
	}
}
