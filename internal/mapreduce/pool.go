// Worker-pool execution of map-attempt compute.
//
// The simulator separates two planes. The *virtual-time plane* (the
// tracker plus the cluster engine) is strictly single-threaded: every
// scheduling, speculation, energy and perturbation decision happens in
// virtual-time order on the goroutine driving Engine.Run. The *compute
// plane* is the real user code of map attempts — executeMap — which is
// a pure function of (job config, block, ratio, seed, meter) and so
// may execute on any goroutine at any wall-clock moment without
// affecting the simulation.
//
// The tracker exploits that purity: within one scheduling pass it only
// *decides* launches (occupying slots via StartOpenTask), queues their
// compute as pendingLaunch entries, and then flushes the batch through
// this pool. Results are applied in launch order on the scheduler
// goroutine, so the virtual timeline — and therefore every Result
// byte — is identical whether the pool has 1 or N workers.
package mapreduce

import (
	"runtime"
	"sync"

	"approxhadoop/internal/cluster"
)

// pendingLaunch is one decided-but-not-yet-computed map attempt.
type pendingLaunch struct {
	idx    int
	ratio  float64
	spec   bool                       // speculative: duration is not re-perturbed
	handle *cluster.RunningTask       // slot occupied at decide time
	run    func() (*mapResult, error) // nil on a cache hit
	res    *mapResult                 // filled by the pool (or the cache)
	err    error
}

// computePool executes map-attempt compute on a bounded set of
// persistent worker goroutines. Workers start lazily on the first
// parallel batch and exit when the pool is closed.
type computePool struct {
	workers int
	once    sync.Once
	jobs    chan func()
	wg      sync.WaitGroup
	closed  bool
}

// newComputePool sizes a pool; workers <= 0 means GOMAXPROCS.
func newComputePool(workers int) *computePool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &computePool{workers: workers}
}

// start spins up the worker goroutines (called once, lazily).
func (p *computePool) start() {
	p.jobs = make(chan func(), p.workers)
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
}

// runAll resolves every unresolved entry of batch, in parallel when
// the pool has more than one worker and the batch more than one entry.
// It returns only when all entries have res or err set; callers then
// apply results in batch order, which is what keeps the virtual
// timeline independent of pool size.
func (p *computePool) runAll(batch []*pendingLaunch) {
	var todo []func()
	for _, pl := range batch {
		if pl.res == nil && pl.run != nil {
			pl := pl
			todo = append(todo, func() { pl.res, pl.err = pl.run() })
		}
	}
	p.runFuncs(todo)
}

// runFuncs executes every task and returns when all have finished.
// Single-worker pools, single-task batches, and pools already torn
// down (a fail() mid-pass) all resolve inline on the caller's
// goroutine; otherwise tasks fan out across the persistent workers.
// Tasks must be independent: they may not submit to the pool
// themselves and must confine writes to state no other task touches.
func (p *computePool) runFuncs(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	if p.workers <= 1 || len(tasks) == 1 || p.closed {
		for _, f := range tasks {
			f()
		}
		return
	}
	p.once.Do(p.start)
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, f := range tasks {
		f := f
		p.jobs <- func() {
			defer wg.Done()
			f()
		}
	}
	wg.Wait()
}

// ComputePool is the exported face of the compute-plane worker pool,
// for subsystems outside the batch tracker (the streaming plane's
// per-shard reservoir folds) that follow the same two-plane contract:
// a single-threaded scheduler decides batches of pure, disjoint-state
// tasks, runs them through the pool, and applies the outcomes in
// decide order so the worker count is byte-invisible in every result.
type ComputePool struct {
	p *computePool
}

// NewComputePool sizes a pool; workers <= 0 means GOMAXPROCS and
// workers == 1 executes everything inline on the caller's goroutine.
func NewComputePool(workers int) *ComputePool {
	return &ComputePool{p: newComputePool(workers)}
}

// Run executes every task, returning once all have finished. Tasks
// must be independent: no two may touch the same state, and none may
// call back into the pool. Results must be gathered by the caller in
// a deterministic order of its own (never completion order).
func (c *ComputePool) Run(tasks []func()) { c.p.runFuncs(tasks) }

// Workers reports the resolved pool size.
func (c *ComputePool) Workers() int { return c.p.workers }

// Close shuts the workers down; later Run calls execute inline.
func (c *ComputePool) Close() { c.p.close() }

// close shuts the workers down; later runAll calls execute inline.
func (p *computePool) close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.jobs != nil {
		close(p.jobs)
		p.wg.Wait()
	}
}
