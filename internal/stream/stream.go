// Package stream is the streaming approximation plane: it runs the
// multi-stage sampling estimators of the batch engine over event-time
// windows of an unbounded record stream.
//
// The design transplants the paper's two-stage cluster theory onto
// substreams (Quoc et al., "Approximate Stream Analytics"): within one
// window, each stratum (a substream — one wiki project, one client
// bucket, ...) plays the role the paper gives to an input block. A
// deterministic seeded reservoir per (window, stratum) is the
// second-stage unit sample; a stratum the controller sheds entirely is
// a dropped cluster and widens the interval through the between-
// cluster variance term, exactly like a dropped map task in the batch
// plane. At window close the strata fold into a stats.TwoStage sample
// and the window's estimate ships with a t-based confidence interval.
//
// Execution follows the repo's two-plane contract (see
// internal/mapreduce/pool.go): a single-threaded router assigns each
// record to its stratum's shard, and batches of per-shard reservoir
// folds — pure, disjoint-state compute — run on a mapreduce.ComputePool.
// A stratum is wholly owned by one shard and the shard count is part
// of the query (never derived from Workers), so reservoir RNG draws
// happen in record order regardless of pool size: the same (query,
// seed, rate trace) yields a byte-identical window series for any
// worker count.
//
// Feedback closes the loop per window (EARL's expansion loop, turned
// streaming): the realized error and modeled latency of window w
// retune window w+1's plan — reservoir capacity first, stratum
// shedding only under latency pressure — so an error/latency SLO
// holds while the input rate swings.
package stream

import (
	"errors"
	"fmt"

	"approxhadoop/internal/stats"
)

// Op selects the per-window aggregate.
type Op int

const (
	// OpCount estimates the number of records in the window.
	OpCount Op = iota
	// OpSum estimates the sum of Value over the window's records.
	OpSum
	// OpMean estimates the per-record mean of Value over the window.
	OpMean
)

// String names the op for output rows.
func (o Op) String() string {
	switch o {
	case OpCount:
		return "count"
	case OpSum:
		return "sum"
	case OpMean:
		return "mean"
	}
	return "op?"
}

// Window is an event-time window specification, in virtual seconds.
// Slide == Size (or 0) is tumbling; Slide < Size is sliding, with each
// record folded into every window that contains it. Window k covers
// [k*Slide, k*Slide+Size) and closes when the stream time reaches its
// end; windows are emitted in index order with no gaps.
type Window struct {
	Size  float64
	Slide float64
}

// SLO is the per-window service-level objective the adaptive
// controller steers toward.
type SLO struct {
	// TargetRelErr is the target relative CI half-width at Confidence
	// (0.05 = ±5%). 0 disables error-driven capacity tuning.
	TargetRelErr float64
	// MaxLatency bounds the modeled per-window processing time
	// (virtual seconds, via Cost). 0 disables latency-driven shedding.
	MaxLatency float64
	// Confidence is the CI level (default 0.95).
	Confidence float64
}

// Query is a continuous windowed aggregation. Shards, Buckets, Seed
// and Capacity are part of the query's identity: changing any of them
// changes the emitted series, while Pipeline.Workers never does.
type Query struct {
	Name string
	Op   Op

	// Stratify extracts the stratum (substream) label from a record.
	// Returning nil drops the record as unparseable. The returned
	// slice is read before the next record; subslices of line are fine.
	// Runs on the router goroutine, but must stay pure: it is part of
	// the query's deterministic identity.
	//
	//approx:pure
	Stratify func(line []byte) []byte

	// Value extracts the aggregated value from a record (unused by
	// OpCount). ok=false folds the record as an implicit zero, the
	// estimator's single assumption about malformed values. Runs on
	// compute-plane workers.
	//
	//approx:pure
	Value func(line []byte) (float64, bool)

	Window Window
	SLO    SLO

	// Buckets > 0 hashes strata into this many fixed buckets —
	// StreamApprox's bounded substream set for high-cardinality keys
	// (e.g. clients). 0 keeps natural strata.
	Buckets int

	// Shards is the number of compute shards strata are hashed onto.
	// Fixed per query (default 16); deliberately independent of the
	// worker count.
	Shards int

	// Capacity is the initial per-(window, stratum) reservoir size
	// (default 64). The controller retunes it per window.
	Capacity int

	// Seed drives every reservoir and shedding decision (default 1).
	Seed int64
}

// normalized returns the query with defaults applied, or an error for
// unusable specs.
func (q Query) normalized() (Query, error) {
	if q.Window.Size <= 0 {
		return q, errors.New("stream: query needs Window.Size > 0")
	}
	if q.Window.Slide <= 0 {
		q.Window.Slide = q.Window.Size
	}
	if q.Window.Slide > q.Window.Size {
		return q, fmt.Errorf("stream: Slide %g > Size %g leaves gaps", q.Window.Slide, q.Window.Size)
	}
	if q.Stratify == nil {
		return q, errors.New("stream: query needs Stratify")
	}
	if q.Op != OpCount && q.Value == nil {
		return q, fmt.Errorf("stream: op %v needs Value", q.Op)
	}
	if q.Shards <= 0 {
		q.Shards = 16
	}
	if q.Capacity <= 0 {
		q.Capacity = 64
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	if q.SLO.Confidence <= 0 || q.SLO.Confidence >= 1 {
		q.SLO.Confidence = 0.95
	}
	return q, nil
}

// Source is an event-time record stream; workload.LogStream satisfies
// it. Run must drive fn in nondecreasing time order and propagate fn's
// error verbatim (the pipeline stops ingestion through it).
type Source interface {
	Run(fn func(t float64, line []byte) error) error
}

// PlanSpec is one window's sampling plan, fixed at window open.
type PlanSpec struct {
	// Capacity is the per-stratum reservoir size.
	Capacity int
	// KeepFrac is the fraction of strata processed; the rest are shed
	// by a seeded per-(window, stratum) coin and surface as dropped
	// clusters in the estimate.
	KeepFrac float64
}

// WindowResult is one closed window of the output series.
type WindowResult struct {
	Index      int64   // window index k (start = k*Slide)
	Start, End float64 // event-time bounds [Start, End)

	Records   int64 // records routed into the window (all strata)
	Strata    int   // strata observed (population N for the estimator)
	Processed int   // strata sampled (not shed)
	Folded    int64 // records of processed strata (offered to reservoirs)
	Sampled   int64 // units held in the sample at close (== Folded when fully enumerated; OpCount observes every folded unit)

	Plan     PlanSpec // the plan this window ran under
	Degraded bool     // plan shed strata (KeepFrac < 1)
	Partial  bool     // closed by stream end, not by the watermark

	// Latency is the modeled processing time of the window (seconds)
	// under the pipeline's Cost; a pure function of the counts above,
	// so it is identical for any worker count.
	Latency float64

	Est   stats.Estimate // windowed multi-stage estimate with CI
	Exact bool           // every stratum fully enumerated, Err == 0
}

// Ratio is the realized sampling fraction Sampled/Folded (1 when the
// window folded nothing).
func (r WindowResult) Ratio() float64 {
	if r.Folded == 0 {
		return 1
	}
	return float64(r.Sampled) / float64(r.Folded)
}
