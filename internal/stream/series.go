// Byte-stable serialization of a window series. The TSV row is the
// determinism contract's unit of account: the soak test and the CI
// job compare these bytes across runs and worker counts, so every
// float goes through strconv's shortest round-trip formatting and
// nothing in a row depends on maps, pointers, or wall-clock state.
package stream

import (
	"io"
	"strconv"
)

// SeriesHeader names the columns of AppendWindowTSV, ready to print
// above a series.
const SeriesHeader = "window\tstart\tend\trecords\tstrata\tkept\tfolded\tsampled\tcapacity\tkeepfrac\tvalue\teps\tstderr\tdf\tlatency\tflags"

// AppendWindowTSV appends one window's row (no trailing newline).
func AppendWindowTSV(b []byte, r WindowResult) []byte {
	b = strconv.AppendInt(b, r.Index, 10)
	b = append(b, '\t')
	b = strconv.AppendFloat(b, r.Start, 'g', -1, 64)
	b = append(b, '\t')
	b = strconv.AppendFloat(b, r.End, 'g', -1, 64)
	b = append(b, '\t')
	b = strconv.AppendInt(b, r.Records, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(r.Strata), 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(r.Processed), 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, r.Folded, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, r.Sampled, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(r.Plan.Capacity), 10)
	b = append(b, '\t')
	b = strconv.AppendFloat(b, r.Plan.KeepFrac, 'g', -1, 64)
	b = append(b, '\t')
	b = strconv.AppendFloat(b, r.Est.Value, 'g', -1, 64)
	b = append(b, '\t')
	b = strconv.AppendFloat(b, r.Est.Err, 'g', -1, 64)
	b = append(b, '\t')
	b = strconv.AppendFloat(b, r.Est.StdErr, 'g', -1, 64)
	b = append(b, '\t')
	b = strconv.AppendFloat(b, r.Est.DF, 'g', -1, 64)
	b = append(b, '\t')
	b = strconv.AppendFloat(b, r.Latency, 'g', -1, 64)
	b = append(b, '\t')
	b = appendFlags(b, r)
	return b
}

// appendFlags writes a compact flag column: "exact", "degraded",
// "partial", combinations joined with "+", or "-" for none.
func appendFlags(b []byte, r WindowResult) []byte {
	n := len(b)
	if r.Exact {
		b = append(b, "exact"...)
	}
	if r.Degraded {
		if len(b) > n {
			b = append(b, '+')
		}
		b = append(b, "degraded"...)
	}
	if r.Partial {
		if len(b) > n {
			b = append(b, '+')
		}
		b = append(b, "partial"...)
	}
	if len(b) == n {
		b = append(b, '-')
	}
	return b
}

// SeriesBytes renders the whole series, one row per line with a
// trailing newline each — the canonical byte form two runs of the
// same (query, seed, trace) must reproduce exactly.
func SeriesBytes(series []WindowResult) []byte {
	var b []byte
	for _, r := range series {
		b = AppendWindowTSV(b, r)
		b = append(b, '\n')
	}
	return b
}

// WriteSeries writes SeriesHeader plus the series rows to w.
func WriteSeries(w io.Writer, series []WindowResult) error {
	if _, err := io.WriteString(w, SeriesHeader+"\n"); err != nil {
		return err
	}
	_, err := w.Write(SeriesBytes(series))
	return err
}
