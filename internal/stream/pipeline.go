// Pipeline execution: the router/scheduler plane of the stream.
//
// All window lifecycle decisions — opening windows (snapshotting the
// controller's plan), flushing batches, closing windows, feeding the
// controller — happen on the single goroutine driving Run. The only
// concurrent code is shard.foldBatch, a pure compute task over state
// no other shard touches, dispatched through mapreduce.ComputePool and
// gathered back in shard order. That separation is what makes
// Pipeline.Workers byte-invisible in the emitted series.
package stream

import (
	"errors"
	"math"
	"sort"
	"strconv"

	"approxhadoop/internal/mapreduce"
)

// flushBudget bounds the bytes (plus a fixed per-event charge) batched
// between fold flushes. It only affects wall-clock batching, never the
// series: fold order within a stratum is record order regardless of
// where flush boundaries fall, and the boundaries themselves are a
// deterministic function of the record sizes.
const flushBudget = 1 << 20

// eventOverhead is the per-event charge against flushBudget, so
// count-style queries that batch no line bytes still flush regularly.
const eventOverhead = 48

// errStopIngest stops the source cleanly once MaxWindows have closed.
var errStopIngest = errors.New("stream: window budget reached")

// Pipeline runs one Query over one Source.
type Pipeline struct {
	Query  Query
	Source Source

	// Workers sizes the compute pool for reservoir folds (0 =
	// GOMAXPROCS, 1 = inline). Never part of the query identity.
	Workers int

	// Controller, when set, retunes each window's PlanSpec from the
	// previous window's realized error and modeled latency. Nil runs
	// the query's fixed plan (Capacity, KeepFrac 1) forever.
	Controller *Controller

	// Cost is the analytic latency model (zero value = DefaultCost).
	Cost Cost

	// MaxWindows stops the stream after this many closed windows
	// (0 = run until the source drains).
	MaxWindows int
}

// event is one routed record awaiting fold: offsets into the owning
// shard's byte arena instead of slices, so a batch is two flat
// allocations however many records it holds.
type event struct {
	t                float64
	key              uint64
	nameOff, nameLen int32
	lineOff, lineLen int32
}

// stratumState is the per-(window, stratum) fold state. It lives in
// exactly one shard.
type stratumState struct {
	name     string
	count    int64 // records observed (M_h)
	shed     bool
	res      *reservoir // nil when shed or OpCount
	admitted int64      // reservoir admissions (value parses)
}

// winShard is one window's strata within one shard.
type winShard struct {
	strata map[uint64]*stratumState
}

// shard owns a disjoint set of strata (stratum key mod Shards). The
// router fills buf/evs; foldBatch consumes them on the compute plane;
// win/plans are written by the router only between fold batches.
type shard struct {
	cfg *foldConfig

	buf []byte
	evs []event

	win   map[int64]*winShard
	plans map[int64]PlanSpec
}

// foldConfig is the read-only query excerpt the compute plane sees.
type foldConfig struct {
	op          Op
	seed        int64
	size, slide float64
	bucketed    bool

	//approx:pure
	value func(line []byte) (float64, bool)
}

// newStratum materializes fold state for a stratum first seen in
// window k, applying the window's plan: the shedding coin and the
// reservoir seed are pure functions of (seed, window, stratum), so
// the outcome is identical no matter when or where the stratum shows
// up.
func (s *shard) newStratum(k int64, ev *event) *stratumState {
	st := &stratumState{}
	if s.cfg.bucketed {
		st.name = string(strconv.AppendUint([]byte("b"), ev.key, 10))
	} else {
		st.name = string(s.buf[ev.nameOff : ev.nameOff+ev.nameLen])
	}
	plan := s.plans[k]
	if plan.KeepFrac < 1 && keepCoin(s.cfg.seed, k, ev.key) >= plan.KeepFrac {
		st.shed = true
		return st
	}
	if s.cfg.op != OpCount {
		st.res = newReservoir(plan.Capacity, stratumSeed(s.cfg.seed, k, ev.key))
	}
	return st
}

// foldBatch folds every batched event into its windows' strata:
// bump the stratum count, offer the record to the reservoir, parse the
// value only on admission. Pure compute over shard-private state; runs
// on pool workers.
//
//approx:compute
func (s *shard) foldBatch() {
	cfg := s.cfg
	for i := range s.evs {
		ev := &s.evs[i]
		kHi := int64(math.Floor(ev.t / cfg.slide))
		kLo := int64(math.Floor((ev.t-cfg.size)/cfg.slide)) + 1
		if kLo < 0 {
			kLo = 0
		}
		for k := kLo; k <= kHi; k++ {
			ws := s.win[k]
			if ws == nil {
				ws = &winShard{strata: make(map[uint64]*stratumState)}
				s.win[k] = ws
			}
			st := ws.strata[ev.key]
			if st == nil {
				st = s.newStratum(k, ev)
				ws.strata[ev.key] = st
			}
			st.count++
			if st.shed || st.res == nil {
				continue
			}
			slot := st.res.admit()
			if slot < 0 {
				continue
			}
			v, ok := cfg.value(s.buf[ev.lineOff : ev.lineOff+ev.lineLen])
			if !ok {
				v = 0
			}
			st.res.vals[slot] = v
			st.admitted++
		}
	}
	s.buf = s.buf[:0]
	s.evs = s.evs[:0]
}

// runState is the router's mutable state for one Run.
type runState struct {
	q      Query
	shards []*shard
	pool   *mapreduce.ComputePool
	ctrl   *Controller
	cost   Cost

	plan     PlanSpec           // applied to windows opened from now on
	winPlans map[int64]PlanSpec // plan each open window runs under

	maxOpened  int64 // highest window index opened
	nextClose  int64 // next window index to close
	closed     int
	maxWindows int
	batched    int

	emit func(WindowResult) error
}

// Run executes the pipeline until the source drains or MaxWindows
// close, returning the full window series.
func (p *Pipeline) Run() ([]WindowResult, error) {
	var series []WindowResult
	err := p.RunEach(func(r WindowResult) error {
		series = append(series, r)
		return nil
	})
	return series, err
}

// RunEach executes the pipeline, invoking fn once per closed window in
// index order. fn errors abort the stream and are returned verbatim.
func (p *Pipeline) RunEach(fn func(WindowResult) error) error {
	q, err := p.Query.normalized()
	if err != nil {
		return err
	}
	if p.Source == nil {
		return errors.New("stream: pipeline needs a Source")
	}
	cost := p.Cost.normalized()
	plan := PlanSpec{Capacity: q.Capacity, KeepFrac: 1}
	ctrl := p.Controller
	if ctrl != nil {
		plan = ctrl.init(q, cost)
	}
	cfg := &foldConfig{
		op:       q.Op,
		seed:     q.Seed,
		size:     q.Window.Size,
		slide:    q.Window.Slide,
		bucketed: q.Buckets > 0,
		value:    q.Value,
	}
	st := &runState{
		q:          q,
		shards:     make([]*shard, q.Shards),
		pool:       mapreduce.NewComputePool(p.Workers),
		ctrl:       ctrl,
		cost:       cost,
		plan:       plan,
		winPlans:   make(map[int64]PlanSpec),
		maxOpened:  -1,
		maxWindows: p.MaxWindows,
		emit:       fn,
	}
	defer st.pool.Close()
	for i := range st.shards {
		st.shards[i] = &shard{
			cfg:   cfg,
			win:   make(map[int64]*winShard),
			plans: make(map[int64]PlanSpec),
		}
	}
	err = p.Source.Run(st.ingest)
	if err != nil {
		if errors.Is(err, errStopIngest) {
			return nil
		}
		return err
	}
	// Source drained: flush the tail and close every open window as
	// partial (cut by stream end rather than the watermark).
	st.flush()
	for k := st.nextClose; k <= st.maxOpened; k++ {
		if st.maxWindows > 0 && st.closed >= st.maxWindows {
			break
		}
		if err := st.closeWindow(k, true); err != nil {
			return err
		}
	}
	return nil
}

// ingest routes one record: stratify, hash to a stratum key, advance
// the watermark (flushing and closing windows whose end has passed),
// and batch the event into its stratum's shard. This is the per-record
// hot loop of the plane.
//
//approx:hotpath
func (st *runState) ingest(t float64, line []byte) error {
	strat := st.q.Stratify(line)
	if strat == nil {
		return nil
	}
	key := fnv1a(strat)
	if st.q.Buckets > 0 {
		key %= uint64(st.q.Buckets)
	}
	kHi := int64(math.Floor(t / st.q.Window.Slide))
	if kHi > st.maxOpened {
		if err := st.advance(t, kHi); err != nil {
			return err
		}
	}
	sh := st.shards[key%uint64(len(st.shards))]
	ev := event{t: t, key: key}
	if st.q.Buckets == 0 {
		ev.nameOff = int32(len(sh.buf))
		ev.nameLen = int32(len(strat))
		sh.buf = append(sh.buf, strat...)
	}
	if st.q.Op != OpCount {
		ev.lineOff = int32(len(sh.buf))
		ev.lineLen = int32(len(line))
		sh.buf = append(sh.buf, line...)
	}
	sh.evs = append(sh.evs, ev)
	st.batched += int(ev.nameLen) + int(ev.lineLen) + eventOverhead
	if st.batched >= flushBudget {
		st.flush()
	}
	return nil
}

// advance moves the watermark to kHi: closes every window whose end
// time has passed (flushing batched folds first so their state is
// complete) and opens the new windows under the controller's current
// plan.
func (st *runState) advance(t float64, kHi int64) error {
	closeThrough := int64(math.Floor((t - st.q.Window.Size) / st.q.Window.Slide))
	if closeThrough > st.maxOpened {
		// Windows the stream skipped entirely (a rate trough longer
		// than a window) still emit, as empty rows; open them first so
		// the series stays gap-free.
		st.openThrough(closeThrough)
	}
	if st.nextClose <= closeThrough {
		st.flush()
		for k := st.nextClose; k <= closeThrough; k++ {
			if err := st.closeWindow(k, false); err != nil {
				return err
			}
			if st.maxWindows > 0 && st.closed >= st.maxWindows {
				return errStopIngest
			}
		}
		st.nextClose = closeThrough + 1
	}
	st.openThrough(kHi)
	return nil
}

// openThrough snapshots the current plan into every window up to and
// including kHi. Fold tasks read the snapshot from their shard's plan
// table, so a plan change mid-stream only ever affects windows opened
// after it.
func (st *runState) openThrough(kHi int64) {
	for k := st.maxOpened + 1; k <= kHi; k++ {
		st.winPlans[k] = st.plan
		for _, sh := range st.shards {
			sh.plans[k] = st.plan
		}
	}
	if kHi > st.maxOpened {
		st.maxOpened = kHi
	}
}

// flush runs the batched folds of every shard through the compute
// pool. The router blocks until the batch completes, so shard state is
// never touched concurrently.
func (st *runState) flush() {
	var tasks []func()
	for _, sh := range st.shards {
		if len(sh.evs) == 0 {
			continue
		}
		sh := sh
		tasks = append(tasks, sh.foldBatch)
	}
	st.pool.Run(tasks)
	st.batched = 0
}

// closeWindow gathers window k's strata from all shards, sorts them
// into a canonical order, estimates, emits, and feeds the controller.
func (st *runState) closeWindow(k int64, partial bool) error {
	var strata []*stratumState
	for _, sh := range st.shards {
		if ws := sh.win[k]; ws != nil {
			for _, s := range ws.strata {
				strata = append(strata, s)
			}
			delete(sh.win, k)
		}
		delete(sh.plans, k)
	}
	sort.Slice(strata, func(i, j int) bool { return strata[i].name < strata[j].name })

	plan := st.winPlans[k]
	delete(st.winPlans, k)
	if plan.Capacity == 0 {
		plan = st.plan
	}

	res := WindowResult{
		Index:   k,
		Start:   float64(k) * st.q.Window.Slide,
		End:     float64(k)*st.q.Window.Slide + st.q.Window.Size,
		Strata:  len(strata),
		Plan:    plan,
		Partial: partial,
	}
	var parses int64
	for _, s := range strata {
		res.Records += s.count
		if s.shed {
			continue
		}
		res.Processed++
		res.Folded += s.count
		if st.q.Op == OpCount {
			res.Sampled += s.count
		} else {
			// Sampled is the held sample size (what the variance sees);
			// admissions — which also count evicted values — are what
			// parsing work scales with.
			res.Sampled += int64(len(s.res.vals))
			parses += s.admitted
		}
	}
	res.Degraded = plan.KeepFrac < 1
	res.Latency = st.cost.Window(res.Records, res.Folded, parses, res.Processed)
	res.Est, res.Exact = estimateWindow(st.q.Op, strata, st.q.SLO.Confidence)

	if err := st.emit(res); err != nil {
		return err
	}
	st.closed++
	if st.ctrl != nil && !partial {
		st.plan = st.ctrl.Observe(res)
	}
	return nil
}
