package stream_test

import (
	"testing"

	"approxhadoop/internal/stream"
	"approxhadoop/internal/workload"
)

// exactTwin reruns a pipeline's query over the same arrival trace with
// unbounded reservoirs and no controller, yielding per-window ground
// truth: every window must come back Exact.
func exactTwin(t *testing.T, mk func(capacity int, ctrl *stream.Controller) *stream.Pipeline) []stream.WindowResult {
	t.Helper()
	truth := mustRun(t, mk(1<<20, nil))
	for _, r := range truth {
		if !r.Exact {
			t.Fatalf("ground-truth twin window %d not exact (capacity unbounded, nothing shed)", r.Index)
		}
	}
	return truth
}

// coverageCount tallies how many non-exact windows' intervals cover
// the exact value, over windows where a finite interval was claimed.
func coverageCount(t *testing.T, truth, approx []stream.WindowResult) (covered, claimed, degraded int) {
	t.Helper()
	if len(truth) != len(approx) {
		t.Fatalf("twin runs emitted %d vs %d windows; traces diverged", len(truth), len(approx))
	}
	for i, r := range approx {
		exact := truth[i]
		if exact.Records != r.Records {
			t.Fatalf("window %d routed %d records in the twin, %d approximate; traces diverged", r.Index, exact.Records, r.Records)
		}
		if r.Exact {
			if r.Est.Value != exact.Est.Value { //lint:ignore nofloateq exact windows must agree bit-for-bit
				t.Fatalf("window %d: exact approximate value %g != ground truth %g", r.Index, r.Est.Value, exact.Est.Value)
			}
			continue
		}
		if r.Degraded {
			degraded++
		}
		claimed++
		if exact.Est.Value >= r.Est.Lo() && exact.Est.Value <= r.Est.Hi() {
			covered++
		}
	}
	return covered, claimed, degraded
}

// TestWindowCICalibrationSum: across seeds and a 3x rate swing,
// ~95% of per-window sum intervals must cover the exact per-window
// value. The value here (edit page ids over project strata) has a
// skewed but finite-variance distribution — the regime the t-based
// theory targets.
func TestWindowCICalibrationSum(t *testing.T) {
	gen := workload.EditLog{Blocks: 8, LinesPerBlock: 2000, Projects: 40, Editors: 2000, Pages: 20000, Seed: 6}
	q := stream.Query{
		Name: "edit-volume",
		Op:   stream.OpSum,
		Stratify: func(line []byte) []byte {
			return tsvFieldTest(line, 1)
		},
		Value: func(line []byte) (float64, bool) {
			f := tsvFieldTest(line, 3) // "page<N>"
			if len(f) < 5 {
				return 0, false
			}
			var n int64
			for _, c := range f[4:] {
				if c < '0' || c > '9' {
					return 0, false
				}
				n = n*10 + int64(c-'0')
			}
			return float64(n), true
		},
		Window:  stream.Window{Size: 5},
		Buckets: 16,
	}
	var covered, claimed int
	for seed := int64(1); seed <= 24; seed++ {
		mk := func(capacity int, ctrl *stream.Controller) *stream.Pipeline {
			qq := q
			qq.Seed = seed
			qq.Capacity = capacity
			return &stream.Pipeline{
				Query:      qq,
				Source:     workload.StreamFrom(gen.File("cal"), workload.StreamOptions{Rate: workload.DiurnalRate(400, 0.5, 60), Seed: seed}),
				Controller: ctrl,
				Workers:    1,
			}
		}
		truth := exactTwin(t, mk)
		approx := mustRun(t, mk(64, nil))
		c, n, _ := coverageCount(t, truth, approx)
		covered += c
		claimed += n
	}
	if claimed < 150 {
		t.Fatalf("only %d sampled windows across trials; the scenario should be approximating", claimed)
	}
	frac := float64(covered) / float64(claimed)
	t.Logf("sum calibration: %d/%d windows covered (%.3f)", covered, claimed, frac)
	// 95% nominal; demand >= 0.90 to leave room for binomial noise
	// (~200 trials) and the skew of the value distribution.
	if frac < 0.90 {
		t.Errorf("per-window CI coverage %.3f below 0.90 for nominal 95%% intervals", frac)
	}
}

// TestWindowCICalibrationDegraded: coverage must also hold for count
// windows whose plan the controller degraded (shed strata = dropped
// clusters), which exercises the between-cluster variance term under
// a rate swing.
func TestWindowCICalibrationDegraded(t *testing.T) {
	var covered, claimed, degraded int
	for seed := int64(1); seed <= 24; seed++ {
		web := workload.WebLog{Blocks: 3, LinesPerBlock: 8000, Clients: 3000, Attackers: 40, AttackRate: 0.02, Seed: 8}
		q := stream.Query{
			Name: "web-hits",
			Op:   stream.OpCount,
			// Stratify by hour-of-week: time-of-day substreams have
			// near-balanced traffic (±30%), the exchangeable-cluster
			// regime task dropping assumes.
			Stratify: func(line []byte) []byte {
				return tsvFieldTest(line, 1)
			},
			Buckets: 32,
			Window:  stream.Window{Size: 5},
			Seed:    seed,
		}
		mk := func(capacity int, ctrl *stream.Controller) *stream.Pipeline {
			qq := q
			qq.Capacity = capacity
			return &stream.Pipeline{
				Query:      qq,
				Source:     workload.StreamFrom(web.File("cal"), workload.StreamOptions{Rate: workload.DiurnalRate(500, 0.5, 60), Seed: seed}),
				Controller: ctrl,
				Workers:    1,
			}
		}
		truth := exactTwin(t, mk)
		// A latency budget only shedding can meet: count queries do no
		// per-unit sampling, so KeepFrac is the controller's only lever.
		ctrl := stream.NewController(stream.SLO{MaxLatency: 0.035}, stream.DefaultCost())
		approx := mustRun(t, mk(64, ctrl))
		c, n, d := coverageCount(t, truth, approx)
		covered += c
		claimed += n
		degraded += d
	}
	if degraded < 50 {
		t.Fatalf("only %d degraded windows across trials; shedding never engaged", degraded)
	}
	frac := float64(covered) / float64(claimed)
	t.Logf("degraded-count calibration: %d/%d covered (%.3f), %d degraded", covered, claimed, frac, degraded)
	if frac < 0.88 {
		t.Errorf("degraded-window CI coverage %.3f below 0.88 for nominal 95%% intervals", frac)
	}
}

// tsvFieldTest mirrors the apps helper for test-local queries.
func tsvFieldTest(line []byte, idx int) []byte {
	start, field := 0, 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == '\t' {
			if field == idx {
				return line[start:i]
			}
			field++
			start = i + 1
		}
	}
	return nil
}
