package stream_test

import (
	"bytes"
	"math"
	"testing"

	"approxhadoop/internal/apps"
	"approxhadoop/internal/stream"
	"approxhadoop/internal/workload"
)

// smallWeb is a web access log big enough for ~40k records.
func smallWeb() workload.WebLog {
	w := workload.DefaultWebLog()
	w.Blocks = 5
	w.LinesPerBlock = 8000
	return w
}

// smallEdits is a wiki edit log with ~24k records.
func smallEdits() workload.EditLog {
	e := workload.DefaultEditLog()
	e.Blocks = 12
	e.LinesPerBlock = 2000
	return e
}

func mustRun(t *testing.T, p *stream.Pipeline) []stream.WindowResult {
	t.Helper()
	series, err := p.Run()
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(series) == 0 {
		t.Fatalf("pipeline emitted no windows")
	}
	return series
}

// TestSeriesDeterministicAcrossWorkers is the plane's core contract:
// the same (query, seed, rate trace) must produce a byte-identical
// window series whatever the fold pool size, and across repeat runs.
func TestSeriesDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		opts := apps.StreamOptions{
			Seed:       7,
			Rate:       workload.DiurnalRate(500, 0.5, 90),
			Window:     stream.Window{Size: 8},
			SLO:        stream.SLO{TargetRelErr: 0.05, MaxLatency: 0.25},
			Workers:    workers,
			MaxWindows: 12,
		}
		return stream.SeriesBytes(mustRun(t, apps.WebBytesStream(smallWeb(), opts)))
	}
	base := render(1)
	for _, workers := range []int{2, 4, 7} {
		if got := render(workers); !bytes.Equal(got, base) {
			t.Errorf("series differs between Workers=1 and Workers=%d:\n%s\nvs\n%s", workers, base, got)
		}
	}
	if again := render(1); !bytes.Equal(again, base) {
		t.Errorf("series differs between two identical runs")
	}
}

// TestTumblingWindows checks window accounting: contiguous indexes,
// Size-spaced bounds, and all routed records accounted for exactly
// once.
func TestTumblingWindows(t *testing.T) {
	opts := apps.StreamOptions{
		Seed:   3,
		Rate:   workload.ConstantRate(300),
		Window: stream.Window{Size: 10},
	}
	series := mustRun(t, apps.EditRateStream(smallEdits(), opts))
	var total int64
	for i, r := range series {
		if r.Index != int64(i) {
			t.Fatalf("window %d has index %d; series must be gap-free", i, r.Index)
		}
		if math.Abs(r.Start-float64(i)*10) > 1e-9 || math.Abs(r.End-r.Start-10) > 1e-9 {
			t.Fatalf("window %d bounds [%g,%g); want [%g,%g)", i, r.Start, r.End, float64(i)*10, float64(i)*10+10)
		}
		total += r.Records
	}
	e := smallEdits()
	want := int64(e.Blocks * e.LinesPerBlock)
	if total != want {
		t.Fatalf("windows account for %d records; stream carried %d", total, want)
	}
	if !series[len(series)-1].Partial {
		t.Errorf("last window of a drained source should be partial")
	}
}

// TestSlidingWindows: with Slide = Size/2 every record folds into two
// windows, so summed window records come to ~2x the stream (minus the
// first window's single-coverage head and the partial tail).
func TestSlidingWindows(t *testing.T) {
	opts := apps.StreamOptions{
		Seed:   5,
		Rate:   workload.ConstantRate(400),
		Window: stream.Window{Size: 10, Slide: 5},
	}
	series := mustRun(t, apps.EditRateStream(smallEdits(), opts))
	var total int64
	for i, r := range series {
		if r.Index != int64(i) {
			t.Fatalf("window %d has index %d", i, r.Index)
		}
		if math.Abs(r.Start-float64(i)*5) > 1e-9 {
			t.Fatalf("window %d starts at %g; want %g", i, r.Start, float64(i)*5)
		}
		total += r.Records
	}
	e := smallEdits()
	n := int64(e.Blocks * e.LinesPerBlock)
	if total < n+n/2 || total > 2*n {
		t.Fatalf("sliding windows hold %d record-folds for %d records; want ~2x", total, n)
	}
}

// TestUnconstrainedWindowsAreExact: without a controller and with
// reservoirs larger than any stratum, the estimator degrades to exact
// per-window ground truth with a zero-width interval.
func TestUnconstrainedWindowsAreExact(t *testing.T) {
	opts := apps.StreamOptions{
		Seed:       11,
		Rate:       workload.ConstantRate(500),
		Window:     stream.Window{Size: 5},
		Capacity:   1 << 20,
		MaxWindows: 8,
	}
	series := mustRun(t, apps.WebBytesStream(smallWeb(), opts))
	for _, r := range series {
		if !r.Exact {
			t.Fatalf("window %d not exact: %+v", r.Index, r)
		}
		if r.Est.Err != 0 {
			t.Fatalf("window %d exact but Err %g", r.Index, r.Est.Err)
		}
		if r.Sampled != r.Folded {
			t.Fatalf("window %d sampled %d of %d despite unbounded capacity", r.Index, r.Sampled, r.Folded)
		}
	}
}

// TestControllerHoldsErrorSLO: under a 3x diurnal rate swing the
// adaptive controller must keep the realized per-window error at or
// under the SLO target once it has one window of feedback, while
// actually sampling (not just enumerating everything).
func TestControllerHoldsErrorSLO(t *testing.T) {
	const target = 0.05
	opts := apps.StreamOptions{
		Seed:       9,
		Rate:       workload.DiurnalRate(500, 0.5, 120),
		Window:     stream.Window{Size: 6},
		SLO:        stream.SLO{TargetRelErr: target},
		Capacity:   48,
		MaxWindows: 13,
	}
	series := mustRun(t, apps.WebBytesStream(smallWeb(), opts))
	var sampledWindows, violations int
	for _, r := range series[1:] { // window 0 runs on the uninformed initial plan
		if r.Exact {
			continue
		}
		sampledWindows++
		if rel := r.Est.RelErr(); rel > target {
			violations++
			t.Logf("window %d: rel err %.4f > target (cap %d, records %d)", r.Index, rel, r.Plan.Capacity, r.Records)
		}
	}
	if sampledWindows < 6 {
		t.Fatalf("only %d sampled windows; the scenario should be approximating", sampledWindows)
	}
	// The target is a 95%-confidence half-width aimed with headroom;
	// allow one stray window.
	if violations > 1 {
		t.Errorf("%d of %d sampled windows violated the %.0f%% error SLO", violations, sampledWindows, target*100)
	}
}

// TestControllerShedsUnderLatencyBudget: a latency budget the full
// stream cannot fit forces KeepFrac below 1; degraded windows must
// say so, respect the keep floor, and come back under budget.
func TestControllerShedsUnderLatencyBudget(t *testing.T) {
	cost := stream.DefaultCost()
	opts := apps.StreamOptions{
		Seed:       13,
		Rate:       workload.DiurnalRate(600, 0.5, 100),
		Window:     stream.Window{Size: 8},
		SLO:        stream.SLO{TargetRelErr: 0.25, MaxLatency: 0.05},
		Cost:       cost,
		MaxWindows: 12,
	}
	series := mustRun(t, apps.WebBytesStream(smallWeb(), opts))
	var degraded int
	for _, r := range series[1:] {
		if !r.Degraded {
			continue
		}
		degraded++
		if r.Plan.KeepFrac < 0.25-1e-9 || r.Plan.KeepFrac >= 1 {
			t.Fatalf("window %d keep frac %g outside [0.25, 1)", r.Index, r.Plan.KeepFrac)
		}
		if r.Processed >= r.Strata {
			t.Errorf("window %d marked degraded but kept all %d strata", r.Index, r.Strata)
		}
	}
	if degraded < 4 {
		t.Fatalf("only %d degraded windows under a budget of %gs; shedding never engaged", degraded, opts.SLO.MaxLatency)
	}
	// After the first feedback round the modeled latency should track
	// the budget (the forecast can overshoot briefly on the swing).
	for _, r := range series[2:] {
		if r.Partial {
			continue
		}
		if r.Latency > opts.SLO.MaxLatency*1.6 {
			t.Errorf("window %d modeled latency %gs far above budget %gs (keep %g)", r.Index, r.Latency, opts.SLO.MaxLatency, r.Plan.KeepFrac)
		}
	}
}

// TestMaxWindowsStopsEarly: the window budget must stop the source
// without error and without a partial tail.
func TestMaxWindowsStopsEarly(t *testing.T) {
	opts := apps.StreamOptions{
		Seed:       2,
		Rate:       workload.ConstantRate(400),
		Window:     stream.Window{Size: 5},
		MaxWindows: 4,
	}
	series := mustRun(t, apps.EditRateStream(smallEdits(), opts))
	if len(series) != 4 {
		t.Fatalf("got %d windows; want 4", len(series))
	}
	for _, r := range series {
		if r.Partial {
			t.Errorf("window %d partial; budget-stopped windows are watermark-closed", r.Index)
		}
	}
}

// TestQueryValidation: broken specs must fail up front.
func TestQueryValidation(t *testing.T) {
	src := workload.StreamFrom(smallEdits().File("x"), workload.StreamOptions{Rate: workload.ConstantRate(10)})
	cases := []stream.Query{
		{},                        // no window
		{Window: stream.Window{Size: 10, Slide: 20}, Stratify: func([]byte) []byte { return nil }}, // gapping slide
		{Window: stream.Window{Size: 10}},                                                          // no stratify
		{Window: stream.Window{Size: 10}, Stratify: func([]byte) []byte { return nil }, Op: stream.OpSum}, // sum without Value
	}
	for i, q := range cases {
		p := &stream.Pipeline{Query: q, Source: src, MaxWindows: 1}
		if _, err := p.Run(); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
	if _, err := (&stream.Pipeline{Query: cases[0]}).Run(); err == nil {
		t.Errorf("missing source accepted")
	}
}
