// The adaptive per-window controller: the streaming sibling of
// approx.DeadlineSLO. The batch controller sees a pilot wave and
// solves once; here every closed window is a pilot for the next one.
// Two nested loops share the plan:
//
//   - error loop: under simple random sampling within a stratum the
//     variance scales as (1/f - 1) with f the realized sampling
//     fraction, so inverting the error model is algebra: to move the
//     realized relative error e to the target ε, the next window needs
//     (1/f' - 1) = (1/f - 1) · (ε/e)². The per-stratum reservoir
//     capacity that realizes f' falls out of the rate forecast.
//   - latency loop: the modeled window cost is affine in the kept
//     fraction of strata, so the latency budget solves directly for
//     KeepFrac; shedding is the pressure valve when the input rate
//     outruns what sampling alone can absorb, and the shed strata
//     surface honestly as a wider interval (dropped clusters).
//
// Rate and stratum-count forecasts are EWMAs of the closed windows —
// deterministic state fed only by deterministic WindowResults, so the
// controller never threatens the replay guarantee.
package stream

import "math"

// Cost is the analytic per-window latency model, in seconds. Modeled
// — not measured — latency keeps the series independent of the worker
// count and the wall clock while still scaling with exactly the work
// a real ingest loop would do; the same philosophy as the batch
// plane's AnalyticCost.
type Cost struct {
	Base    float64 // fixed per-window close overhead
	Route   float64 // per record routed (stratify, hash, batch)
	Fold    float64 // per record folded into a kept stratum
	Sample  float64 // per reservoir admission (value parse + store)
	Stratum float64 // per kept stratum at close (estimate merge)
}

// DefaultCost roughly mirrors the batch plane's PaperCost scaled to
// per-record streaming work.
func DefaultCost() Cost {
	return Cost{Base: 2e-3, Route: 2e-6, Fold: 6e-6, Sample: 4e-5, Stratum: 1e-4}
}

// normalized substitutes DefaultCost for the zero value.
func (c Cost) normalized() Cost {
	if c == (Cost{}) {
		return DefaultCost()
	}
	return c
}

// Window evaluates the model for one closed window.
func (c Cost) Window(records, folded, parses int64, keptStrata int) float64 {
	return c.Base +
		c.Route*float64(records) +
		c.Fold*float64(folded) +
		c.Sample*float64(parses) +
		c.Stratum*float64(keptStrata)
}

// expectedAdmissions is the expected number of reservoir admissions
// when m records are offered to a capacity-k reservoir:
// min(m, k·(1 + ln(m/k))).
func expectedAdmissions(k int, m float64) float64 {
	fk := float64(k)
	if m <= fk {
		return m
	}
	return fk * (1 + math.Log(m/fk))
}

// Controller retunes the next window's PlanSpec from each closed
// window. Zero-value knobs get defaults at init.
type Controller struct {
	SLO  SLO
	Cost Cost

	// MinCapacity/MaxCapacity clamp the per-stratum reservoir size
	// (defaults 8 and 8192).
	MinCapacity int
	MaxCapacity int
	// MinKeepFrac floors stratum shedding (default 0.25): the
	// estimator keeps enough clusters to say something.
	MinKeepFrac float64
	// Headroom is the fraction of TargetRelErr the error loop aims at
	// (default 0.8), absorbing forecast error before the SLO line.
	Headroom float64
	// Margin multiplies the solved capacity (default 1.25): the
	// capacity is sized against the *forecast* mean stratum volume, and
	// both the forecast lag on an upswing and the dispersion of real
	// stratum sizes around the mean eat into the solved fraction.
	Margin float64
	// Alpha is the EWMA weight of the newest window in the rate and
	// stratum forecasts (default 0.5).
	Alpha float64

	plan     PlanSpec
	rate     float64 // records/sec forecast
	strata   float64 // observed-strata forecast
	haveRate bool
	size     float64 // window duration (seconds)
}

// NewController builds a controller for an SLO under a cost model.
func NewController(slo SLO, cost Cost) *Controller {
	return &Controller{SLO: slo, Cost: cost}
}

// init applies defaults and the query's starting plan; the pipeline
// calls it once before the first window opens.
func (c *Controller) init(q Query, cost Cost) PlanSpec {
	if c.Cost == (Cost{}) {
		c.Cost = cost
	}
	if c.SLO == (SLO{}) {
		c.SLO = q.SLO
	}
	if c.SLO.Confidence <= 0 || c.SLO.Confidence >= 1 {
		c.SLO.Confidence = 0.95
	}
	if c.MinCapacity <= 0 {
		c.MinCapacity = 8
	}
	if c.MaxCapacity <= 0 {
		c.MaxCapacity = 8192
	}
	if c.MinKeepFrac <= 0 {
		c.MinKeepFrac = 0.25
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 0.8
	}
	if c.Margin <= 0 {
		c.Margin = 1.25
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	c.size = q.Window.Size
	c.plan = PlanSpec{Capacity: q.Capacity, KeepFrac: 1}
	return c.plan
}

// Observe folds one closed window into the forecasts and returns the
// plan for the next window to open.
func (c *Controller) Observe(r WindowResult) PlanSpec {
	dur := r.End - r.Start
	if dur <= 0 {
		dur = c.size
	}
	rateNow := float64(r.Records) / dur
	if !c.haveRate {
		c.rate = rateNow
		c.strata = float64(r.Strata)
		c.haveRate = true
	} else {
		c.rate += c.Alpha * (rateNow - c.rate)
		c.strata += c.Alpha * (float64(r.Strata) - c.strata)
	}
	expRecords := c.rate * c.size
	nStrata := c.strata
	if nStrata < 1 {
		nStrata = 1
	}
	perStratum := expRecords / nStrata

	plan := c.plan
	plan.Capacity = c.retuneCapacity(r, perStratum, plan.Capacity)
	plan.KeepFrac = c.solveKeep(expRecords, nStrata, &plan.Capacity)
	c.plan = plan
	return plan
}

// retuneCapacity inverts the error model: scale the realized
// (1/f - 1) variance lever by (target/realized)² and solve the
// capacity that yields the new sampling fraction at the forecast
// per-stratum volume.
func (c *Controller) retuneCapacity(r WindowResult, perStratum float64, capNow int) int {
	if c.SLO.TargetRelErr <= 0 || r.Folded == 0 || r.Sampled >= r.Folded {
		// No error target, an empty window, or nothing was left out of
		// the sample (exact, or a count query whose only error lever
		// is shedding): capacity carries no signal — keep it.
		return capNow
	}
	rel := r.Est.RelErr()
	if math.IsNaN(rel) || rel <= 0 {
		return capNow
	}
	target := c.SLO.TargetRelErr * c.Headroom
	f := float64(r.Sampled) / float64(r.Folded)
	var fNext float64
	if math.IsInf(rel, 1) {
		// Unbounded interval (too few sampled units for a variance):
		// grow aggressively rather than divide by infinity.
		fNext = math.Min(1, 4*f)
	} else {
		scale := (target / rel) * (target / rel)
		lever := (1/f - 1) * scale
		fNext = 1 / (1 + lever)
	}
	capNext := int(math.Ceil(fNext * perStratum * c.Margin))
	if rel > c.SLO.TargetRelErr {
		// The window violated the SLO outright: expand, never shrink.
		// Take the larger of the fpc inversion and a direct 1/m
		// variance scaling (the right answer far from enumeration,
		// and a conservative one near it), capped at 4x per window to
		// bound the overshoot a noisy variance estimate can cause.
		growth := (rel / target) * (rel / target)
		if growth > 4 {
			growth = 4
		}
		if byVar := int(math.Ceil(float64(capNow) * growth)); capNext < byVar {
			capNext = byVar
		}
		if capNext < capNow {
			capNext = capNow
		}
	} else if capNext < capNow*9/10 {
		// Under target: drift down slowly (10% per window at most).
		// The realized error of a heavy-tailed window is itself noisy;
		// one quiet window must not gut the sample the violations
		// before it demanded.
		capNext = capNow * 9 / 10
	}
	if capNext < c.MinCapacity {
		capNext = c.MinCapacity
	}
	if capNext > c.MaxCapacity {
		capNext = c.MaxCapacity
	}
	return capNext
}

// solveKeep solves the latency budget for the kept-stratum fraction.
// The model is affine in keep: fixed routing work plus keep-scaled
// fold/sample/close work. If even the floor fraction blows the budget
// the reservoir capacity is cut too — latency wins over error, and
// the wider interval reports the price.
func (c *Controller) solveKeep(expRecords, nStrata float64, capacity *int) float64 {
	if c.SLO.MaxLatency <= 0 {
		return 1
	}
	keep := c.keepFor(expRecords, nStrata, *capacity)
	if keep >= 1 {
		return 1
	}
	if keep < c.MinKeepFrac {
		// Shedding alone cannot hold the budget: degrade capacity to
		// the floor as well and re-solve once.
		if *capacity > c.MinCapacity {
			*capacity = c.MinCapacity
			keep = c.keepFor(expRecords, nStrata, *capacity)
		}
		if keep < c.MinKeepFrac {
			keep = c.MinKeepFrac
		}
	}
	if keep > 1 {
		keep = 1
	}
	return keep
}

// keepFor returns the keep fraction that exactly spends the latency
// budget at the given capacity (>= 1 means no shedding needed).
func (c *Controller) keepFor(expRecords, nStrata float64, capacity int) float64 {
	admitPer := expectedAdmissions(capacity, expRecords/nStrata)
	fixed := c.Cost.Base + c.Cost.Route*expRecords
	perKeep := c.Cost.Fold*expRecords + c.Cost.Sample*nStrata*admitPer + c.Cost.Stratum*nStrata
	if perKeep <= 0 {
		return 1
	}
	return (c.SLO.MaxLatency - fixed) / perKeep
}
