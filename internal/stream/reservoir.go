// Deterministic seeded reservoirs: the second-stage unit sample of the
// streaming plane. One reservoir exists per (window, stratum); its RNG
// is seeded from (query seed, window index, stratum key), so the
// admission sequence depends only on the stratum's record order —
// which the shard-ownership rule makes deterministic — never on
// scheduling.
package stream

import (
	"math/rand"

	"approxhadoop/internal/stats"
)

// reservoir is Waterman's Algorithm R: the first cap records are
// admitted outright, record i > cap replaces a uniform slot with
// probability cap/i. The resulting sample is uniform without
// replacement over everything offered, which is exactly the
// simple-random-sample the within-stratum variance term assumes.
type reservoir struct {
	cap  int
	rng  *rand.Rand
	vals []float64
	seen int64
}

func newReservoir(capacity int, seed int64) *reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &reservoir{cap: capacity, rng: stats.NewRand(seed)}
}

// admit registers one offered record and returns the slot its value
// should be stored in, or -1 when the record is not sampled. Callers
// parse the record's value only on admission, so a shrunken capacity
// directly shrinks per-record work.
//
//approx:compute
func (r *reservoir) admit() int {
	r.seen++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, 0)
		return len(r.vals) - 1
	}
	j := r.rng.Int63n(r.seen)
	if j < int64(r.cap) {
		return int(j)
	}
	return -1
}

// stat folds the sampled values into a running statistic for the
// estimator.
func (r *reservoir) stat() stats.RunningStat {
	var s stats.RunningStat
	for _, v := range r.vals {
		s.Add(v)
	}
	return s
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed hash for
// deriving per-(window, stratum) seeds and shedding coins from the
// query seed.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stratumSeed derives the reservoir seed for (seed, window, stratum).
func stratumSeed(seed, window int64, key uint64) int64 {
	h := mix64(uint64(seed) ^ mix64(uint64(window)) ^ mix64(key))
	s := int64(h & (1<<62 - 1)) // rand.NewSource wants a non-huge positive
	if s == 0 {
		s = 1
	}
	return s
}

// keepCoin returns a uniform [0,1) value for the shedding decision of
// (seed, window, stratum): the stratum is processed iff its coin is
// below the plan's KeepFrac. Using a hash rather than a shared RNG
// keeps the decision independent of stratum arrival order.
func keepCoin(seed, window int64, key uint64) float64 {
	h := mix64(uint64(seed)*0x9e3779b97f4a7c15 + mix64(uint64(window)) + mix64(key^0xa5a5a5a5a5a5a5a5))
	return float64(h>>11) / (1 << 53)
}

// fnv1a hashes a stratum label to its 64-bit key.
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
