// Per-window estimation: a closed window's strata become a two-stage
// cluster sample and the batch plane's estimator does the rest.
//
// The mapping (Section 3 of the paper, reinterpreted per StreamApprox):
// the window's strata are the first-stage clusters — all of them are
// "known" (N counts shed strata too, since the router observed every
// record), the processed ones are the n sampled clusters. Within a
// processed stratum the reservoir is the second-stage unit sample:
// M_h records were offered, m_h = |reservoir| made it in, uniformly
// without replacement. Shedding therefore widens the interval through
// the between-cluster term and a tight reservoir through the
// within-cluster term, and both shrink to zero when everything is
// kept — the estimate degrades to exact, Err 0.
package stream

import "approxhadoop/internal/stats"

// estimateWindow builds the window's TwoStage sample from its sorted
// strata and returns the op's estimate plus whether it is exact
// (nothing shed, every stratum fully enumerated).
func estimateWindow(op Op, strata []*stratumState, conf float64) (stats.Estimate, bool) {
	ts := stats.TwoStage{N: int64(len(strata))}
	exact := true
	for _, s := range strata {
		if s.shed {
			exact = false
			continue
		}
		cs := stats.ClusterSample{M: s.count}
		if op == OpCount {
			// Counting observes every unit: the per-unit value is the
			// constant 1, fully enumerated.
			cs.Sam = s.count
			cs.Stat = stats.RunningStat{Count: s.count, Sum: float64(s.count), SumSq: float64(s.count)}
		} else {
			cs.Sam = int64(len(s.res.vals))
			cs.Stat = s.res.stat()
			if cs.Sam < cs.M {
				exact = false
			}
		}
		ts.Clusters = append(ts.Clusters, cs)
	}
	if len(strata) == 0 {
		// An empty window: zero records is a fact, not an estimate.
		return stats.Estimate{Conf: conf}, true
	}
	var est stats.Estimate
	switch op {
	case OpCount:
		est = ts.Count(conf)
	case OpMean:
		est = ts.Mean(conf)
	default:
		est = ts.Sum(conf)
	}
	return est, exact
}
