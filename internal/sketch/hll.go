package sketch

import (
	"math"
	"math/bits"
)

// HLL is a HyperLogLog distinct counter (Flajolet et al. 2007) with the
// standard small-range linear-counting correction. Precision p selects
// m = 2^p registers; the relative standard error of Estimate is
// 1.04/sqrt(m) (~2.3% at the default p=11).
//
// Representation: a map task's per-group sketch usually sees far fewer
// distinct elements than it has registers, so the sketch starts sparse —
// a sorted slice of packed (register index, rho) entries — and promotes
// to the dense 2^p register array only past a load threshold. The
// serialized form always picks the representation from the *content*
// (non-zero register count), never from the in-memory history, keeping
// bytes canonical across merge orders. Sparse serialization is what
// makes the shuffle O(min(distinct, m)) instead of a flat 2^p bytes per
// group per task.
type HLL struct {
	p    uint8
	seed uint64
	// sparse holds packed entries idx<<8|rho sorted ascending by idx
	// (idx unique); nil once promoted to dense.
	sparse []uint32
	dense  []uint8
}

// HLL precision bounds: p in [4, 16] keeps register indexes within
// uint16 for the packed sparse form and m within 64 KiB dense.
const (
	minHLLPrecision = 4
	maxHLLPrecision = 16
)

// NewHLL builds an empty HLL with 2^p registers and the given hash
// seed. Precision outside [4, 16] returns ErrBadParams.
func NewHLL(p uint8, seed uint64) (*HLL, error) {
	if p < minHLLPrecision || p > maxHLLPrecision {
		return nil, ErrBadParams
	}
	return &HLL{p: p, seed: seed}, nil
}

// Kind implements Sketch.
func (h *HLL) Kind() Kind { return KindHLL }

// Precision returns p (m = 2^p registers).
func (h *HLL) Precision() uint8 { return h.p }

// m returns the register count.
func (h *HLL) m() int { return 1 << h.p }

// Fold implements Sketch: count is ignored (distinct counting is
// presence-only), the element's register is raised to max(reg, rho).
//
//approx:hotpath
func (h *HLL) Fold(element string, _ uint64) {
	x := hash64(h.seed, element)
	idx := uint32(x >> (64 - h.p))
	w := x << h.p
	var rho uint8
	if w == 0 {
		rho = uint8(64 - int(h.p) + 1)
	} else {
		rho = uint8(bits.LeadingZeros64(w) + 1)
	}
	h.set(idx, rho)
}

// set raises register idx to at least rho.
//
//approx:hotpath
func (h *HLL) set(idx uint32, rho uint8) {
	if h.dense != nil {
		if rho > h.dense[idx] {
			h.dense[idx] = rho
		}
		return
	}
	// Binary search the sorted sparse entries by register index.
	lo, hi := 0, len(h.sparse)
	for lo < hi {
		mid := (lo + hi) >> 1
		if h.sparse[mid]>>8 < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.sparse) && h.sparse[lo]>>8 == idx {
		if rho > uint8(h.sparse[lo]) {
			h.sparse[lo] = idx<<8 | uint32(rho)
		}
		return
	}
	h.sparse = append(h.sparse, 0)
	copy(h.sparse[lo+1:], h.sparse[lo:])
	h.sparse[lo] = idx<<8 | uint32(rho)
	if h.overloaded(len(h.sparse)) {
		h.promote()
	}
}

// overloaded reports whether n sparse entries should live dense: past
// m/4 entries the 4-byte packed form stops being smaller than the
// 1-byte-per-register array.
func (h *HLL) overloaded(n int) bool { return n*4 >= h.m() }

// promote converts the sparse entries to the dense register array.
func (h *HLL) promote() {
	d := make([]uint8, h.m())
	for _, e := range h.sparse {
		idx := e >> 8
		if uint8(e) > d[idx] {
			d[idx] = uint8(e)
		}
	}
	h.dense = d
	h.sparse = nil
}

// Merge implements Sketch: element-wise register max. Two sparse
// sketches merge by a sorted merge-join; any dense operand promotes the
// receiver.
func (h *HLL) Merge(other Sketch) error {
	o, ok := other.(*HLL)
	if !ok || o.p != h.p || o.seed != h.seed {
		return ErrMismatch
	}
	if h.dense == nil && o.dense == nil {
		h.mergeSparse(o.sparse)
		return nil
	}
	if h.dense == nil {
		h.promote()
	}
	if o.dense != nil {
		for i, r := range o.dense {
			if r > h.dense[i] {
				h.dense[i] = r
			}
		}
		return nil
	}
	for _, e := range o.sparse {
		idx := e >> 8
		if uint8(e) > h.dense[idx] {
			h.dense[idx] = uint8(e)
		}
	}
	return nil
}

// mergeSparse merge-joins another sorted sparse entry list into the
// receiver, promoting if the union overflows the sparse threshold.
//
//approx:hotpath
func (h *HLL) mergeSparse(other []uint32) {
	if len(other) == 0 {
		return
	}
	merged := make([]uint32, 0, len(h.sparse)+len(other))
	i, j := 0, 0
	for i < len(h.sparse) && j < len(other) {
		a, b := h.sparse[i], other[j]
		switch {
		case a>>8 < b>>8:
			merged = append(merged, a)
			i++
		case a>>8 > b>>8:
			merged = append(merged, b)
			j++
		default:
			if uint8(b) > uint8(a) {
				a = b
			}
			merged = append(merged, a)
			i++
			j++
		}
	}
	merged = append(merged, h.sparse[i:]...)
	merged = append(merged, other[j:]...)
	h.sparse = merged
	if h.overloaded(len(h.sparse)) {
		h.promote()
	}
}

// nonZero returns the number of non-zero registers.
func (h *HLL) nonZero() int {
	if h.dense == nil {
		return len(h.sparse)
	}
	n := 0
	for _, r := range h.dense {
		if r != 0 {
			n++
		}
	}
	return n
}

// Estimate returns the estimated distinct count: the standard HLL
// harmonic-mean estimator with linear counting below 2.5m when empty
// registers remain.
func (h *HLL) Estimate() float64 {
	m := float64(h.m())
	sum := 0.0
	zeros := 0
	if h.dense != nil {
		for _, r := range h.dense {
			if r == 0 {
				zeros++
				sum += 1
				continue
			}
			sum += math.Ldexp(1, -int(r))
		}
	} else {
		zeros = h.m() - len(h.sparse)
		sum = float64(zeros)
		for _, e := range h.sparse {
			sum += math.Ldexp(1, -int(uint8(e)))
		}
	}
	est := h.alpha() * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return est
}

// alpha is the bias-correction constant for m registers.
func (h *HLL) alpha() float64 {
	switch h.m() {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(h.m()))
}

// RelStdErr returns the advertised relative standard error of Estimate:
// 1.04/sqrt(m).
func (h *HLL) RelStdErr() float64 { return 1.04 / math.Sqrt(float64(h.m())) }

// Clone implements Sketch.
func (h *HLL) Clone() Sketch {
	c := &HLL{p: h.p, seed: h.seed}
	if h.dense != nil {
		c.dense = append([]uint8(nil), h.dense...)
	} else if len(h.sparse) > 0 {
		c.sparse = append([]uint32(nil), h.sparse...)
	}
	return c
}

// Serialized layout (little-endian):
//
//	byte 0: kind (1)          byte 1: version
//	byte 2: p                 byte 3: form (0 sparse, 1 dense)
//	u64: seed
//	sparse: u32 count, then count packed u32 entries sorted by index
//	dense:  2^p register bytes
//
// The form byte is chosen from the non-zero register count alone, so
// two sketches with equal content serialize identically regardless of
// their in-memory representation.

// AppendBinary implements Sketch.
func (h *HLL) AppendBinary(dst []byte) []byte {
	nz := h.nonZero()
	dst = append(dst, byte(KindHLL), serialVersion, h.p)
	if h.serializeSparse(nz) {
		dst = append(dst, 0)
		dst = appendU64(dst, h.seed)
		dst = appendU32(dst, uint32(nz))
		if h.dense == nil {
			for _, e := range h.sparse {
				dst = appendU32(dst, e)
			}
			return dst
		}
		for idx, r := range h.dense {
			if r != 0 {
				dst = appendU32(dst, uint32(idx)<<8|uint32(r))
			}
		}
		return dst
	}
	dst = append(dst, 1)
	dst = appendU64(dst, h.seed)
	if h.dense != nil {
		return append(dst, h.dense...)
	}
	start := len(dst)
	for i := 0; i < h.m(); i++ {
		dst = append(dst, 0)
	}
	for _, e := range h.sparse {
		dst[start+int(e>>8)] = uint8(e)
	}
	return dst
}

// serializeSparse picks the canonical wire form for nz non-zero
// registers: sparse while 4-byte entries undercut the dense array.
func (h *HLL) serializeSparse(nz int) bool { return nz*4 < h.m() }

// SizeBytes implements Sketch.
func (h *HLL) SizeBytes() int {
	nz := h.nonZero()
	if h.serializeSparse(nz) {
		return 4 + 8 + 4 + 4*nz
	}
	return 4 + 8 + h.m()
}

func decodeHLL(b []byte) (Sketch, error) {
	if len(b) < 12 {
		return nil, ErrCorrupt
	}
	p, form := b[2], b[3]
	h, err := NewHLL(p, 0)
	if err != nil {
		return nil, ErrCorrupt
	}
	var ok bool
	h.seed, _, ok = readU64(b, 4)
	if !ok {
		return nil, ErrCorrupt
	}
	off := 12
	switch form {
	case 0:
		cnt, off2, ok := readU32(b, off)
		if !ok || len(b) != off2+4*int(cnt) || h.overloaded(int(cnt)) {
			return nil, ErrCorrupt
		}
		off = off2
		prev := int64(-1)
		for i := 0; i < int(cnt); i++ {
			e, off2, _ := readU32(b, off)
			off = off2
			if int64(e>>8) <= prev || int(e>>8) >= h.m() || uint8(e) == 0 {
				return nil, ErrCorrupt
			}
			prev = int64(e >> 8)
			h.sparse = append(h.sparse, e)
		}
		return h, nil
	case 1:
		if len(b) != off+h.m() {
			return nil, ErrCorrupt
		}
		h.dense = append([]uint8(nil), b[off:]...)
		return h, nil
	}
	return nil, ErrCorrupt
}
