package sketch

import (
	"bytes"
	"testing"
)

// fuzzElements derives a deterministic element stream from raw fuzz
// bytes: each byte contributes one short element plus a weight, so the
// fuzzer controls duplication structure, ordering, and shard skew.
func fuzzElements(data []byte) ([]string, []uint64) {
	es := make([]string, 0, len(data))
	ws := make([]uint64, 0, len(data))
	for i, b := range data {
		// Element universe of 64 values with varying lengths; weight
		// 1..4 exercises the counted sketches.
		e := string([]byte{'e', b & 0x3f})
		if b&0x40 != 0 {
			e += "-long-suffix"
		}
		es = append(es, e)
		ws = append(ws, uint64(b>>6)+1)
		_ = i
	}
	return es, ws
}

// FuzzSketchMerge is the merge-order/associativity fuzz target for all
// three sketch families: it shards a fuzz-derived element stream across
// `shards` sketches, merges them left-to-right, right-to-left, and as a
// balanced tree, and requires byte-identical canonical serializations —
// the same property the job-level determinism tests rely on for any
// Workers count.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte("approx"), uint8(3))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 250, 251, 252}, uint8(5))
	f.Add(bytes.Repeat([]byte{0xa5}, 300), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, nshard uint8) {
		shards := int(nshard%8) + 2
		es, ws := fuzzElements(data)
		mks := []func() Sketch{
			func() Sketch { h, _ := NewHLL(6, 11); return h },
			func() Sketch { c, _ := NewCMS(32, 3, 11); return c },
			func() Sketch { k, _ := NewTopK(3, 9, 32, 3, 11); return k },
			func() Sketch { b, _ := NewBloom(128, 3, 11); return b },
		}
		for _, mk := range mks {
			parts := make([]Sketch, shards)
			for i := range parts {
				parts[i] = mk()
			}
			for i, e := range es {
				parts[i%shards].Fold(e, ws[i])
			}
			ltr := mk()
			for _, p := range parts {
				if err := ltr.Merge(p); err != nil {
					t.Fatalf("merge: %v", err)
				}
			}
			rtl := mk()
			for i := len(parts) - 1; i >= 0; i-- {
				if err := rtl.Merge(parts[i]); err != nil {
					t.Fatalf("merge: %v", err)
				}
			}
			tree := parts[0].Clone()
			rest := parts[1:]
			for len(rest) > 0 {
				next := make([]Sketch, 0, len(rest)/2+1)
				for i := 0; i+1 < len(rest); i += 2 {
					c := rest[i].Clone()
					if err := c.Merge(rest[i+1]); err != nil {
						t.Fatalf("merge: %v", err)
					}
					next = append(next, c)
				}
				if len(rest)%2 == 1 {
					next = append(next, rest[len(rest)-1])
				}
				if len(next) == 1 {
					if err := tree.Merge(next[0]); err != nil {
						t.Fatalf("merge: %v", err)
					}
					break
				}
				rest = next
			}
			a, b, c := ltr.AppendBinary(nil), rtl.AppendBinary(nil), tree.AppendBinary(nil)
			if !bytes.Equal(a, b) || !bytes.Equal(a, c) {
				t.Fatalf("%s: merge order changed serialized bytes (%d/%d/%d)",
					ltr.Kind(), len(a), len(b), len(c))
			}
		}
	})
}

// FuzzSketchDecode feeds arbitrary bytes to Decode: it must never
// panic, and anything it accepts must re-serialize to the exact input
// (canonical-form fixed point).
func FuzzSketchDecode(f *testing.F) {
	for _, mk := range []func() Sketch{
		func() Sketch { h, _ := NewHLL(6, 11); return h },
		func() Sketch { c, _ := NewCMS(32, 3, 11); return c },
		func() Sketch { k, _ := NewTopK(3, 9, 32, 3, 11); return k },
		func() Sketch { b, _ := NewBloom(128, 3, 11); return b },
	} {
		s := mk()
		for _, e := range []string{"a", "bb", "ccc", "dddd"} {
			s.Fold(e, 2)
		}
		f.Add(s.AppendBinary(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{1, 1, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(data, s.AppendBinary(nil)) {
			t.Fatalf("accepted non-canonical encoding (kind %s)", s.Kind())
		}
	})
}
