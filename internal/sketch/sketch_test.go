package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// elems returns n deterministic element strings drawn from a universe
// of size u with the given seed (duplicates expected when n > u).
func elems(n, u int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = "elem" + strconv.Itoa(rng.Intn(u))
	}
	return out
}

func distinct(es []string) int {
	set := map[string]struct{}{}
	for _, e := range es {
		set[e] = struct{}{}
	}
	return len(set)
}

func newTestSketches(t *testing.T) map[string]func() Sketch {
	t.Helper()
	return map[string]func() Sketch{
		"hll": func() Sketch {
			h, err := NewHLL(11, 7)
			if err != nil {
				t.Fatalf("NewHLL: %v", err)
			}
			return h
		},
		"cms": func() Sketch {
			c, err := NewCMS(256, 3, 7)
			if err != nil {
				t.Fatalf("NewCMS: %v", err)
			}
			return c
		},
		"topk": func() Sketch {
			k, err := NewTopK(8, 32, 256, 3, 7)
			if err != nil {
				t.Fatalf("NewTopK: %v", err)
			}
			return k
		},
		"bloom": func() Sketch {
			b, err := NewBloom(4096, 4, 7)
			if err != nil {
				t.Fatalf("NewBloom: %v", err)
			}
			return b
		},
	}
}

// TestRoundTrip serializes each kind and decodes it back, checking the
// bytes re-serialize identically (fixed point) at several fill levels,
// including the HLL sparse→dense boundary.
func TestRoundTrip(t *testing.T) {
	for name, mk := range newTestSketches(t) {
		for _, n := range []int{0, 1, 17, 400, 5000} {
			s := mk()
			for _, e := range elems(n, n/2+1, 42) {
				s.Fold(e, 3)
			}
			raw := s.AppendBinary(nil)
			if got := s.SizeBytes(); got != len(raw) {
				t.Errorf("%s n=%d: SizeBytes=%d, serialized len=%d", name, n, got, len(raw))
			}
			dec, err := Decode(raw)
			if err != nil {
				t.Fatalf("%s n=%d: Decode: %v", name, n, err)
			}
			if dec.Kind() != s.Kind() {
				t.Fatalf("%s: kind mismatch after decode", name)
			}
			re := dec.AppendBinary(nil)
			if !bytes.Equal(raw, re) {
				t.Errorf("%s n=%d: decode+re-encode changed bytes (%d vs %d)", name, n, len(raw), len(re))
			}
			// A decoded sketch must keep working: fold + merge.
			dec.Fold("post-decode", 1)
			if err := dec.Merge(s); err != nil {
				t.Errorf("%s: merge into decoded copy: %v", name, err)
			}
		}
	}
}

// TestMergeOrderIndependence splits one element stream into shards and
// merges the shard sketches in several orders and shapes (left fold,
// reversed, balanced tree), requiring byte-identical serializations.
func TestMergeOrderIndependence(t *testing.T) {
	es := elems(6000, 900, 9)
	for name, mk := range newTestSketches(t) {
		const shards = 7
		parts := make([]Sketch, shards)
		for i := range parts {
			parts[i] = mk()
		}
		for i, e := range es {
			parts[i%shards].Fold(e, uint64(i%5+1))
		}
		merge := func(order []int) []byte {
			acc := mk()
			for _, i := range order {
				if err := acc.Merge(parts[i].Clone()); err != nil {
					t.Fatalf("%s: merge: %v", name, err)
				}
			}
			return acc.AppendBinary(nil)
		}
		fwd := merge([]int{0, 1, 2, 3, 4, 5, 6})
		rev := merge([]int{6, 5, 4, 3, 2, 1, 0})
		shuf := merge([]int{3, 0, 6, 1, 5, 2, 4})
		if !bytes.Equal(fwd, rev) || !bytes.Equal(fwd, shuf) {
			t.Errorf("%s: merge order changed serialized bytes", name)
		}
		// Tree-shaped merge: ((0+1)+(2+3)) + ((4+5)+6).
		pair := func(a, b Sketch) Sketch {
			c := a.Clone()
			if err := c.Merge(b); err != nil {
				t.Fatalf("%s: merge: %v", name, err)
			}
			return c
		}
		tree := pair(pair(pair(parts[0], parts[1]), pair(parts[2], parts[3])),
			pair(pair(parts[4], parts[5]), parts[6]))
		if !bytes.Equal(fwd, tree.AppendBinary(nil)) {
			t.Errorf("%s: tree-shaped merge changed serialized bytes", name)
		}
		// Merging must also equal folding everything into one sketch
		// for the register/counter state (HLL, CMS, Bloom are exactly
		// mergeable; TopK candidate sets legitimately differ by cap).
		if name != "topk" {
			one := mk()
			for i, e := range es {
				one.Fold(e, uint64(i%5+1))
			}
			if !bytes.Equal(fwd, one.AppendBinary(nil)) {
				t.Errorf("%s: sharded merge differs from single-sketch fold", name)
			}
		}
	}
}

// TestMergeMismatch checks parameter/seed/kind mismatches are rejected.
func TestMergeMismatch(t *testing.T) {
	h1, _ := NewHLL(11, 7)
	h2, _ := NewHLL(12, 7)
	h3, _ := NewHLL(11, 8)
	c1, _ := NewCMS(256, 3, 7)
	if err := h1.Merge(h2); err != ErrMismatch {
		t.Errorf("precision mismatch: got %v", err)
	}
	if err := h1.Merge(h3); err != ErrMismatch {
		t.Errorf("seed mismatch: got %v", err)
	}
	if err := h1.Merge(c1); err != ErrMismatch {
		t.Errorf("kind mismatch: got %v", err)
	}
	if err := c1.Merge(h1); err != ErrMismatch {
		t.Errorf("kind mismatch: got %v", err)
	}
}

// TestHLLAccuracy checks the estimate lands within the advertised
// relative error (with generous sigma slack) across cardinalities that
// exercise linear counting, the sparse form, and the dense form.
func TestHLLAccuracy(t *testing.T) {
	for _, card := range []int{10, 100, 1000, 20000, 200000} {
		h, _ := NewHLL(11, 7)
		for i := 0; i < card; i++ {
			h.Fold("item-"+strconv.Itoa(i), 1)
		}
		est := h.Estimate()
		rel := math.Abs(est-float64(card)) / float64(card)
		if rel > 5*h.RelStdErr() {
			t.Errorf("cardinality %d: estimate %.0f, relative error %.3f > 5×%.3f",
				card, est, rel, h.RelStdErr())
		}
	}
}

// TestCMSBounds checks the fundamental CMS guarantees on a skewed
// stream: no underestimates, and overestimates within ε·W.
func TestCMSBounds(t *testing.T) {
	c, _ := NewCMS(256, 3, 7)
	truth := map[string]uint64{}
	for i, e := range elems(30000, 2000, 5) {
		n := uint64(i%7 + 1)
		c.Fold(e, n)
		truth[e] += n
	}
	bound := c.ErrBound()
	over := 0
	for e, want := range truth {
		got := c.Count(e)
		if got < want {
			t.Fatalf("CMS underestimated %q: got %d want %d", e, got, want)
		}
		if float64(got-want) > bound {
			over++
		}
	}
	// ε·W holds per query with probability ≥ 1−e^−depth ≈ 95% at
	// depth 3; allow the expected tail.
	if frac := float64(over) / float64(len(truth)); frac > 0.1 {
		t.Errorf("%.1f%% of queries exceeded the ε·W bound (expected ≤ ~5%%)", frac*100)
	}
}

// TestTopKRecall checks heavy hitters on a skewed stream: every element
// whose true count clears the ε·W noise floor by a margin must be
// reported, in the deterministic (count desc, key asc) order.
func TestTopKRecall(t *testing.T) {
	tk, err := NewTopK(10, 80, 512, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy elements get count 1000·(21−i); light ones count 1.
	truth := map[string]uint64{}
	for i := 1; i <= 20; i++ {
		e := "heavy-" + strconv.Itoa(i)
		truth[e] = uint64(1000 * (21 - i))
	}
	rng := rand.New(rand.NewSource(3))
	stream := make([]string, 0, 40000)
	for e, n := range truth {
		for j := uint64(0); j < n; j++ {
			stream = append(stream, e)
		}
	}
	for i := 0; i < 8000; i++ {
		stream = append(stream, "light-"+strconv.Itoa(rng.Intn(4000)))
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, e := range stream {
		tk.Fold(e, 1)
	}
	top := tk.Top(10)
	if len(top) != 10 {
		t.Fatalf("Top(10) returned %d entries", len(top))
	}
	for i, ent := range top {
		want := "heavy-" + strconv.Itoa(i+1)
		if ent.Key != want {
			t.Errorf("rank %d: got %q (count %d), want %q", i+1, ent.Key, ent.Count, want)
		}
		if ent.Count < truth[want] {
			t.Errorf("%s: CMS estimate %d below true count %d", want, ent.Count, truth[want])
		}
		if i > 0 && weaker(top[i-1].Count, top[i-1].Key, ent.Count, ent.Key) {
			t.Errorf("Top order violated at rank %d", i+1)
		}
	}
}

// TestBloom checks the no-false-negative guarantee and a sane FPR.
func TestBloom(t *testing.T) {
	f, _ := NewBloom(1<<13, 4, 7)
	const n = 500
	for i := 0; i < n; i++ {
		f.Fold("member-"+strconv.Itoa(i), 1)
	}
	for i := 0; i < n; i++ {
		if !f.Contains("member-" + strconv.Itoa(i)) {
			t.Fatalf("false negative for member-%d", i)
		}
	}
	fp := 0
	const probes = 5000
	for i := 0; i < probes; i++ {
		if f.Contains("absent-" + strconv.Itoa(i)) {
			fp++
		}
	}
	if rate, bound := float64(fp)/probes, f.FPR(); rate > 3*bound+0.01 {
		t.Errorf("observed FPR %.4f far above estimate %.4f", rate, bound)
	}
	if est := f.CountEstimate(); math.Abs(est-n)/n > 0.15 {
		t.Errorf("CountEstimate %.0f, want ≈%d", est, n)
	}
	if se := f.CountStdErr(); se <= 0 || se > n {
		t.Errorf("CountStdErr %.1f out of range", se)
	}
}

// TestDecodeCorrupt checks truncations and mutations of valid sketches
// error out instead of panicking.
func TestDecodeCorrupt(t *testing.T) {
	for name, mk := range newTestSketches(t) {
		s := mk()
		for _, e := range elems(100, 40, 1) {
			s.Fold(e, 2)
		}
		raw := s.AppendBinary(nil)
		for cut := 0; cut < len(raw); cut += 3 {
			if _, err := Decode(raw[:cut]); err == nil {
				t.Errorf("%s: truncation at %d decoded successfully", name, cut)
			}
		}
		bad := append([]byte(nil), raw...)
		bad[1] = 99 // version
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: bad version decoded successfully", name)
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Error("nil input decoded successfully")
	}
}

// TestCloneIndependence checks Clone produces a deep copy.
func TestCloneIndependence(t *testing.T) {
	for name, mk := range newTestSketches(t) {
		s := mk()
		for _, e := range elems(300, 100, 2) {
			s.Fold(e, 1)
		}
		before := s.AppendBinary(nil)
		c := s.Clone()
		for _, e := range elems(300, 100, 99) {
			c.Fold(e, 4)
		}
		if !bytes.Equal(before, s.AppendBinary(nil)) {
			t.Errorf("%s: folding into a clone mutated the original", name)
		}
	}
}

// TestBadParams checks constructor validation.
func TestBadParams(t *testing.T) {
	if _, err := NewHLL(3, 0); err != ErrBadParams {
		t.Errorf("HLL p=3: got %v", err)
	}
	if _, err := NewHLL(17, 0); err != ErrBadParams {
		t.Errorf("HLL p=17: got %v", err)
	}
	if _, err := NewCMS(1, 3, 0); err != ErrBadParams {
		t.Errorf("CMS width=1: got %v", err)
	}
	if _, err := NewTopK(0, 8, 64, 2, 0); err != ErrBadParams {
		t.Errorf("TopK k=0: got %v", err)
	}
	if _, err := NewTopK(9, 8, 64, 2, 0); err != ErrBadParams {
		t.Errorf("TopK cap<k: got %v", err)
	}
	if _, err := NewBloom(8, 2, 0); err != ErrBadParams {
		t.Errorf("Bloom 8 bits: got %v", err)
	}
}
