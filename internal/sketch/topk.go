package sketch

import (
	"sort"
	"strings"
)

// TopK finds heavy hitters: a Count-Min sketch for frequency estimates
// plus a bounded candidate set of element keys. The construction keeps
// the determinism contract that a plain "CMS + top-k heap" breaks:
// pruning candidates during Merge would make the surviving set depend
// on merge order, so Merge never prunes — it adds the CMS grids and
// unions the candidate sets (both commutative and associative). Only
// Fold, which is strictly local to one map task and therefore sees one
// deterministic record order, caps the candidate set, evicting by a
// total order (lowest estimate first, largest key on ties). Top applies
// the same total order at query time.
//
// The candidate cap bounds state: a task sketch carries at most
// Candidates keys, and a reduce-side merge of t task sketches at most
// t·Candidates.
type TopK struct {
	k       uint32
	maxCand uint32
	cms     *CMS
	cand    map[string]struct{}
	// minEst caches a lower bound on the weakest candidate's estimate
	// so Fold can skip the eviction scan for clearly-light elements.
	// CMS counters only grow, so the bound stays valid until the set
	// changes; Merge resets it.
	minEst uint64
}

// NewTopK builds a heavy-hitter sketch returning the k top elements,
// tracking up to maxCand ≥ k candidates (slack absorbs estimate noise),
// over a width×depth Count-Min grid.
func NewTopK(k, maxCand, width, depth uint32, seed uint64) (*TopK, error) {
	if k < 1 || maxCand < k || maxCand > 1<<16 {
		return nil, ErrBadParams
	}
	cms, err := NewCMS(width, depth, seed)
	if err != nil {
		return nil, err
	}
	return &TopK{k: k, maxCand: maxCand, cms: cms, cand: make(map[string]struct{}, maxCand)}, nil
}

// Kind implements Sketch.
func (t *TopK) Kind() Kind { return KindTopK }

// K returns the query size k.
func (t *TopK) K() int { return int(t.k) }

// CMS exposes the underlying Count-Min sketch (for its error story).
func (t *TopK) CMS() *CMS { return t.cms }

// weaker reports whether candidate (aEst, aKey) ranks below (bEst,
// bKey) in the keep order: lower estimate loses, ties lose on the
// lexicographically larger key. This total order is what makes
// eviction and Top deterministic.
func weaker(aEst uint64, aKey string, bEst uint64, bKey string) bool {
	if aEst != bEst {
		return aEst < bEst
	}
	return aKey > bKey
}

// Fold implements Sketch: counts the element in the CMS and maintains
// the bounded candidate set. The element string may be a transient
// buffer view (the push-mode record contract); retained candidates are
// cloned.
//
//approx:hotpath
func (t *TopK) Fold(element string, count uint64) {
	t.cms.Fold(element, count)
	if _, ok := t.cand[element]; ok {
		return
	}
	if len(t.cand) < int(t.maxCand) {
		t.cand[strings.Clone(element)] = struct{}{}
		t.minEst = 0
		return
	}
	est := t.cms.Count(element)
	if est < t.minEst {
		return
	}
	// Scan for the weakest candidate under the total order.
	wEst := ^uint64(0)
	wKey := ""
	for c := range t.cand {
		ce := t.cms.Count(c)
		if wEst == ^uint64(0) || weaker(ce, c, wEst, wKey) {
			wEst, wKey = ce, c
		}
	}
	t.minEst = wEst
	if weaker(wEst, wKey, est, element) {
		delete(t.cand, wKey)
		t.cand[strings.Clone(element)] = struct{}{}
		t.minEst = 0
	}
}

// Merge implements Sketch: CMS addition plus candidate-set union, with
// no pruning — see the type comment for why.
func (t *TopK) Merge(other Sketch) error {
	o, ok := other.(*TopK)
	if !ok || o.k != t.k || o.maxCand != t.maxCand {
		return ErrMismatch
	}
	if err := t.cms.Merge(o.cms); err != nil {
		return err
	}
	for c := range o.cand {
		t.cand[c] = struct{}{}
	}
	t.minEst = 0
	return nil
}

// Entry is one heavy-hitter result.
type Entry struct {
	Key   string
	Count uint64 // CMS estimate: true count ≤ Count ≤ true + ε·W (w.h.p.)
}

// Top returns up to k entries sorted by (estimate desc, key asc).
func (t *TopK) Top(k int) []Entry {
	out := make([]Entry, 0, len(t.cand))
	for c := range t.cand {
		out = append(out, Entry{Key: c, Count: t.cms.Count(c)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Clone implements Sketch.
func (t *TopK) Clone() Sketch {
	c := &TopK{k: t.k, maxCand: t.maxCand, cms: t.cms.Clone().(*CMS), cand: make(map[string]struct{}, len(t.cand))}
	for k := range t.cand {
		c.cand[k] = struct{}{}
	}
	return c
}

// Serialized layout:
//
//	byte 0: kind (3)   byte 1: version
//	u32 k, u32 maxCand,
//	u32 cmsLen, cmsLen bytes of the embedded CMS,
//	u32 candidate count, then per candidate uvarint len + bytes,
//	candidates sorted lexicographically.
//
// Sorting the candidate set makes the bytes canonical: the set has no
// inherent order, the wire form imposes one.

// AppendBinary implements Sketch.
func (t *TopK) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(KindTopK), serialVersion)
	dst = appendU32(dst, t.k)
	dst = appendU32(dst, t.maxCand)
	cms := t.cms.AppendBinary(nil)
	dst = appendU32(dst, uint32(len(cms)))
	dst = append(dst, cms...)
	keys := make([]string, 0, len(t.cand))
	for c := range t.cand {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	dst = appendU32(dst, uint32(len(keys)))
	for _, c := range keys {
		dst = appendUvarint(dst, uint64(len(c)))
		dst = append(dst, c...)
	}
	return dst
}

// SizeBytes implements Sketch.
func (t *TopK) SizeBytes() int {
	n := 2 + 4 + 4 + 4 + t.cms.SizeBytes() + 4
	for c := range t.cand {
		n += uvarintLen(uint64(len(c))) + len(c)
	}
	return n
}

func decodeTopK(b []byte) (Sketch, error) {
	off := 2
	k, off, ok := readU32(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	maxCand, off, ok := readU32(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	cmsLen, off, ok := readU32(b, off)
	if !ok || off+int(cmsLen) > len(b) {
		return nil, ErrCorrupt
	}
	inner, err := Decode(b[off : off+int(cmsLen)])
	if err != nil {
		return nil, err
	}
	cms, ok := inner.(*CMS)
	if !ok {
		return nil, ErrCorrupt
	}
	off += int(cmsLen)
	t := &TopK{k: k, maxCand: maxCand, cms: cms, cand: make(map[string]struct{})}
	if t.k < 1 || t.maxCand < t.k || t.maxCand > 1<<16 {
		return nil, ErrCorrupt
	}
	cnt, off, ok := readU32(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	prev := ""
	for i := 0; i < int(cnt); i++ {
		var n uint64
		n, off, ok = readUvarint(b, off)
		if !ok || off+int(n) > len(b) {
			return nil, ErrCorrupt
		}
		c := string(b[off : off+int(n)])
		off += int(n)
		if i > 0 && c <= prev {
			return nil, ErrCorrupt
		}
		prev = c
		t.cand[c] = struct{}{}
	}
	if off != len(b) {
		return nil, ErrCorrupt
	}
	return t, nil
}
