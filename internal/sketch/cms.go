package sketch

import "math"

// CMS is a Count-Min sketch (Cormode & Muthukrishnan 2005): a depth×width
// grid of uint64 counters. Count(x) never underestimates the true count
// and overestimates by at most ε·W with probability ≥ 1−δ, where
// ε = e/width, δ = e^−depth, and W is the total folded weight.
//
// Counters are integers, not floats: integer addition is associative, so
// merged counters — and the serialized bytes — are bit-identical for any
// merge order. The wire form stores counters as varints, which is what
// keeps a lightly-loaded task sketch small on the shuffle.
type CMS struct {
	width  uint32
	depth  uint32
	seed   uint64
	weight uint64 // total folded count W
	counts []uint64
}

// cms size bounds keep decode allocations sane.
const (
	maxCMSWidth = 1 << 20
	maxCMSDepth = 16
)

// NewCMS builds an empty width×depth Count-Min sketch.
func NewCMS(width, depth uint32, seed uint64) (*CMS, error) {
	if width < 2 || width > maxCMSWidth || depth < 1 || depth > maxCMSDepth {
		return nil, ErrBadParams
	}
	return &CMS{width: width, depth: depth, seed: seed, counts: make([]uint64, int(width)*int(depth))}, nil
}

// Kind implements Sketch.
func (c *CMS) Kind() Kind { return KindCMS }

// Width and Depth expose the grid parameters.
func (c *CMS) Width() uint32 { return c.width }

// Depth returns the number of hash rows.
func (c *CMS) Depth() uint32 { return c.depth }

// Weight returns the total folded count W.
func (c *CMS) Weight() uint64 { return c.weight }

// Fold implements Sketch: adds count to one counter per row.
//
//approx:hotpath
func (c *CMS) Fold(element string, count uint64) {
	if count == 0 {
		return
	}
	c.weight += count
	h := hash64(c.seed, element)
	w := uint64(c.width)
	for r := uint64(0); r < uint64(c.depth); r++ {
		c.counts[r*w+doubleHash(h, r, w)] += count
	}
}

// Count returns the (over-)estimate of element's folded weight: the
// minimum counter across rows.
//
//approx:hotpath
func (c *CMS) Count(element string) uint64 {
	h := hash64(c.seed, element)
	w := uint64(c.width)
	min := ^uint64(0)
	for r := uint64(0); r < uint64(c.depth); r++ {
		if v := c.counts[r*w+doubleHash(h, r, w)]; v < min {
			min = v
		}
	}
	return min
}

// Epsilon returns the relative overestimation factor e/width: Count
// exceeds the true count by at most Epsilon()·Weight() with probability
// at least Confidence().
func (c *CMS) Epsilon() float64 { return math.E / float64(c.width) }

// ErrBound returns the absolute overestimation bound ε·W.
func (c *CMS) ErrBound() float64 { return c.Epsilon() * float64(c.weight) }

// Confidence returns 1 − δ = 1 − e^−depth, the probability the ε·W
// bound holds for a single query.
func (c *CMS) Confidence() float64 { return 1 - math.Exp(-float64(c.depth)) }

// Merge implements Sketch: element-wise counter addition.
func (c *CMS) Merge(other Sketch) error {
	o, ok := other.(*CMS)
	if !ok || o.width != c.width || o.depth != c.depth || o.seed != c.seed {
		return ErrMismatch
	}
	c.weight += o.weight
	for i, v := range o.counts {
		c.counts[i] += v
	}
	return nil
}

// Clone implements Sketch.
func (c *CMS) Clone() Sketch {
	cp := *c
	cp.counts = append([]uint64(nil), c.counts...)
	return &cp
}

// Serialized layout (little-endian):
//
//	byte 0: kind (2)   byte 1: version
//	u32 width, u32 depth, u64 seed, uvarint weight,
//	then width·depth uvarint counters in row-major order.
//
// Counters are a pure function of the folded multiset (integer sums),
// so the varint stream is canonical.

// AppendBinary implements Sketch.
func (c *CMS) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(KindCMS), serialVersion)
	dst = appendU32(dst, c.width)
	dst = appendU32(dst, c.depth)
	dst = appendU64(dst, c.seed)
	dst = appendUvarint(dst, c.weight)
	for _, v := range c.counts {
		dst = appendUvarint(dst, v)
	}
	return dst
}

// SizeBytes implements Sketch.
func (c *CMS) SizeBytes() int {
	n := 2 + 4 + 4 + 8 + uvarintLen(c.weight)
	for _, v := range c.counts {
		n += uvarintLen(v)
	}
	return n
}

func decodeCMS(b []byte) (Sketch, error) {
	off := 2
	width, off, ok := readU32(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	depth, off, ok := readU32(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	seed, off, ok := readU64(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	c, err := NewCMS(width, depth, seed)
	if err != nil {
		return nil, ErrCorrupt
	}
	c.weight, off, ok = readUvarint(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	for i := range c.counts {
		c.counts[i], off, ok = readUvarint(b, off)
		if !ok {
			return nil, ErrCorrupt
		}
	}
	if off != len(b) {
		return nil, ErrCorrupt
	}
	return c, nil
}
