package sketch

import (
	"math"
	"math/bits"
)

// Bloom is a standard Bloom filter: mbits bits, hashes probes per
// element. Contains never reports a false negative; the false-positive
// rate after folding is estimated from the observed bit load as
// (ones/m)^hashes. Merge is bit-OR — trivially commutative and
// associative, so the filter is merge-order independent by
// construction.
type Bloom struct {
	mbits  uint64
	hashes uint32
	seed   uint64
	words  []uint64
}

// bloom bounds keep decode allocations sane.
const (
	minBloomBits = 64
	maxBloomBits = 1 << 26
	maxBloomHash = 16
)

// NewBloom builds an empty filter with bits bits (rounded up to a
// multiple of 64) and the given probe count.
func NewBloom(bitCount uint64, hashes uint32, seed uint64) (*Bloom, error) {
	if bitCount < minBloomBits || bitCount > maxBloomBits || hashes < 1 || hashes > maxBloomHash {
		return nil, ErrBadParams
	}
	bitCount = (bitCount + 63) &^ 63
	return &Bloom{mbits: bitCount, hashes: hashes, seed: seed, words: make([]uint64, bitCount/64)}, nil
}

// Kind implements Sketch.
func (f *Bloom) Kind() Kind { return KindBloom }

// Bits returns the filter size in bits.
func (f *Bloom) Bits() uint64 { return f.mbits }

// Hashes returns the probe count.
func (f *Bloom) Hashes() uint32 { return f.hashes }

// Fold implements Sketch: count is ignored (membership is
// presence-only).
//
//approx:hotpath
func (f *Bloom) Fold(element string, _ uint64) {
	h := hash64(f.seed, element)
	for i := uint64(0); i < uint64(f.hashes); i++ {
		bit := doubleHash(h, i, f.mbits)
		f.words[bit>>6] |= 1 << (bit & 63)
	}
}

// Contains reports whether element may have been folded: false is
// definitive, true is correct up to FPR.
//
//approx:hotpath
func (f *Bloom) Contains(element string) bool {
	h := hash64(f.seed, element)
	for i := uint64(0); i < uint64(f.hashes); i++ {
		bit := doubleHash(h, i, f.mbits)
		if f.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// Ones returns the number of set bits.
func (f *Bloom) Ones() uint64 {
	n := uint64(0)
	for _, w := range f.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// FPR returns the current false-positive rate estimate (ones/m)^hashes.
func (f *Bloom) FPR() float64 {
	load := float64(f.Ones()) / float64(f.mbits)
	return math.Pow(load, float64(f.hashes))
}

// CountEstimate returns the linear-counting estimate of the distinct
// elements folded: −(m/k)·ln(1 − ones/m) (Swamidass & Baldi 2007). A
// saturated filter returns +Inf.
func (f *Bloom) CountEstimate() float64 {
	ones := f.Ones()
	if ones >= f.mbits {
		return math.Inf(1)
	}
	m := float64(f.mbits)
	return -m / float64(f.hashes) * math.Log(1-float64(ones)/m)
}

// CountStdErr returns the approximate standard error of CountEstimate
// for the current load: sqrt(m·(e^λ − λ − 1))/k with λ = k·n/m
// (linear-counting variance, Whang et al. 1990).
func (f *Bloom) CountStdErr() float64 {
	m := float64(f.mbits)
	k := float64(f.hashes)
	n := f.CountEstimate()
	if math.IsInf(n, 1) {
		return math.Inf(1)
	}
	lambda := k * n / m
	v := m * (math.Exp(lambda) - lambda - 1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v) / k
}

// Merge implements Sketch: bit-OR.
func (f *Bloom) Merge(other Sketch) error {
	o, ok := other.(*Bloom)
	if !ok || o.mbits != f.mbits || o.hashes != f.hashes || o.seed != f.seed {
		return ErrMismatch
	}
	for i, w := range o.words {
		f.words[i] |= w
	}
	return nil
}

// Clone implements Sketch.
func (f *Bloom) Clone() Sketch {
	c := *f
	c.words = append([]uint64(nil), f.words...)
	return &c
}

// Serialized layout:
//
//	byte 0: kind (4)   byte 1: version
//	u64 bits, u32 hashes, u64 seed, then bits/64 u64 words.

// AppendBinary implements Sketch.
func (f *Bloom) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(KindBloom), serialVersion)
	dst = appendU64(dst, f.mbits)
	dst = appendU32(dst, f.hashes)
	dst = appendU64(dst, f.seed)
	for _, w := range f.words {
		dst = appendU64(dst, w)
	}
	return dst
}

// SizeBytes implements Sketch.
func (f *Bloom) SizeBytes() int { return 2 + 8 + 4 + 8 + len(f.words)*8 }

func decodeBloom(b []byte) (Sketch, error) {
	off := 2
	bitCount, off, ok := readU64(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	hashes, off, ok := readU32(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	seed, off, ok := readU64(b, off)
	if !ok {
		return nil, ErrCorrupt
	}
	if bitCount%64 != 0 {
		return nil, ErrCorrupt
	}
	f, err := NewBloom(bitCount, hashes, seed)
	if err != nil {
		return nil, ErrCorrupt
	}
	if len(b) != off+len(f.words)*8 {
		return nil, ErrCorrupt
	}
	for i := range f.words {
		f.words[i], off, _ = readU64(b, off)
	}
	return f, nil
}
