// Package sketch implements the mergeable probabilistic summaries the
// sketch-compressed shuffle is built on: HyperLogLog (distinct count),
// Count-Min with a candidate set (top-k heavy hitters), and a Bloom
// filter (membership). All three share the properties the data plane
// needs:
//
//   - Fixed-size state: a map task's output per group is bounded by the
//     sketch parameters, not by the number of records folded in, which
//     collapses shuffle volume from O(keys) per task to O(1) per
//     partition.
//   - Commutative, associative Merge: merging is register-max (HLL),
//     element-wise integer addition (CMS), or bit-OR (Bloom), so the
//     merged state — and therefore the job output — is identical for
//     any merge order and any worker count. Count-Min counters are
//     uint64 on purpose: float addition is not associative and would
//     break the bit-identity contract.
//   - Canonical serialization: AppendBinary emits bytes that are a pure
//     function of the sketch's logical content (never of its insertion
//     or merge history), so byte-level comparison is a valid
//     determinism test.
//
// Hashing is deterministic and stdlib-only: seeded FNV-1a 64 finished
// with a splitmix64-style avalanche, so the same (seed, element) pair
// hashes identically on every platform and every run.
package sketch

import (
	"encoding/binary"
	"errors"
)

// Kind discriminates the sketch families.
type Kind uint8

// Sketch kinds, also used as the leading byte of the serialized form.
const (
	KindHLL   Kind = 1
	KindCMS   Kind = 2
	KindTopK  Kind = 3
	KindBloom Kind = 4
)

// String returns the kind's short name.
func (k Kind) String() string {
	switch k {
	case KindHLL:
		return "hll"
	case KindCMS:
		return "cms"
	case KindTopK:
		return "topk"
	case KindBloom:
		return "bloom"
	}
	return "unknown"
}

// serialVersion is the second byte of every serialized sketch.
const serialVersion = 1

// Static errors: Merge and Decode run on hot framework paths where
// fmt.Errorf would allocate (and trip the hotpath analyzer).
var (
	ErrMismatch  = errors.New("sketch: merge of incompatible sketches (kind, parameters and seed must match)")
	ErrCorrupt   = errors.New("sketch: corrupt or truncated serialized sketch")
	ErrBadParams = errors.New("sketch: invalid parameters")
)

// Sketch is the interface the data plane moves around. Fold and Merge
// are the only mutators; everything else observes.
//
// The determinism contract: for any multiset of (element, count) folds
// distributed across any number of Sketch instances and merged in any
// order, the final AppendBinary bytes are identical.
//
//approx:pure
type Sketch interface {
	// Kind returns the sketch family.
	Kind() Kind
	// Fold folds count occurrences of element into the sketch. HLL and
	// Bloom ignore count (presence-only); CMS/TopK add it.
	Fold(element string, count uint64)
	// Merge folds another sketch of the same kind and parameters into
	// this one. It returns ErrMismatch when kinds, parameters, or seeds
	// differ; the receiver is unchanged on error.
	Merge(other Sketch) error
	// AppendBinary appends the canonical serialized form to dst and
	// returns the extended slice.
	AppendBinary(dst []byte) []byte
	// SizeBytes returns len of the canonical serialized form without
	// materializing it — the shuffle-bytes accounting cost.
	SizeBytes() int
	// Clone returns an independent deep copy. Reducers clone before
	// merging because MapOutput payloads are shared (memoized across
	// speculative attempts) and must stay immutable.
	Clone() Sketch
}

// Decode parses a sketch serialized by AppendBinary.
func Decode(b []byte) (Sketch, error) {
	if len(b) < 2 {
		return nil, ErrCorrupt
	}
	if b[1] != serialVersion {
		return nil, ErrCorrupt
	}
	switch Kind(b[0]) {
	case KindHLL:
		return decodeHLL(b)
	case KindCMS:
		return decodeCMS(b)
	case KindTopK:
		return decodeTopK(b)
	case KindBloom:
		return decodeBloom(b)
	}
	return nil, ErrCorrupt
}

// hash64 is the deterministic seeded element hash: FNV-1a 64 over the
// element bytes with the (mixed) seed folded into the offset basis,
// then a splitmix64 finalizer so low-entropy inputs still spread across
// all 64 bits. Stdlib-only and allocation-free.
//
//approx:hotpath
func hash64(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037) ^ mix64(seed+0x9e3779b97f4a7c15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 avalanche function.
//
//approx:hotpath
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// doubleHash derives the i-th table index from two halves of one 64-bit
// hash (Kirsch–Mitzenmacher): idx_i = h1 + i*h2 mod size, with h2 forced
// odd so successive probes cover the table.
//
//approx:hotpath
func doubleHash(h uint64, i, size uint64) uint64 {
	h1 := h >> 32
	h2 := (h & 0xffffffff) | 1
	return (h1 + i*h2) % size
}

// --- varint helpers (canonical LEB128, unsigned) -----------------------

// appendUvarint appends v in unsigned LEB128.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// uvarintLen returns the encoded length of v without encoding it.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readUvarint decodes a uvarint from b, returning the value and the new
// offset, or ok=false on truncation.
func readUvarint(b []byte, off int) (v uint64, next int, ok bool) {
	if off < 0 || off > len(b) {
		return 0, 0, false
	}
	v, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, 0, false
	}
	return v, off + n, true
}

// appendU32/appendU64 append fixed-width little-endian integers.
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

func readU32(b []byte, off int) (uint32, int, bool) {
	if off+4 > len(b) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint32(b[off:]), off + 4, true
}

func readU64(b []byte, off int) (uint64, int, bool) {
	if off+8 > len(b) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(b[off:]), off + 8, true
}
