// The write-ahead job journal: an append-only JSONL log of every job
// state transition the service performs. Because (spec, seed) runs are
// bit-identical, the journal never needs result checkpoints to make the
// service crash-safe — a submit record is enough to re-execute a job
// after a restart and obtain the exact bytes an uninterrupted run would
// have produced. Terminal records carry the full result anyway so that
// recovery can restore completed jobs without re-simulating them and so
// duplicate submissions (same idempotency key) can be answered from the
// journal after a crash.
//
// Durability contract. A submission is acknowledged to the client only
// after its submit record is fsynced (Service.Submit commits before
// returning). Mid-run transitions — admitted, degraded, done — are
// buffered and ride along with the next commit: the periodic
// quiescent-point commit in the daemon loop, the next submission, a
// drain, or Close. Losing a buffered done record is safe by design:
// recovery simply re-executes the job and deterministically reproduces
// the same result.
//
// Concurrency: a Journal belongs to the goroutine driving the engine
// (the daemon's driver). Nothing here takes the service mutex and the
// service never appends or commits while holding it — fsync under a
// held lock would stall every HTTP reader (the lockheld analyzer
// guards this pattern across the package).
package jobserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// JournalOp tags one journal record with the transition it logs.
type JournalOp string

// Journal record operations.
const (
	// JournalSubmit records an accepted submission: the assigned id,
	// the full spec (including seed and idempotency key), and the
	// virtual submission time. It is the only record recovery strictly
	// needs — everything else is reproducible from (spec, seed).
	JournalSubmit JournalOp = "submit"
	// JournalAdmit records a job leaving the queue for the cluster.
	JournalAdmit JournalOp = "admit"
	// JournalDegrade records that a job folded unrecoverable tasks
	// into the estimator's dropped-cluster count before finishing.
	JournalDegrade JournalOp = "degrade"
	// JournalDone records a terminal transition with the final status,
	// error, timeline, and (for successful jobs) the full result.
	JournalDone JournalOp = "done"
	// JournalCancel records a cancellation request against a running
	// job. A cancel with no following done record means the daemon died
	// before the kill landed; recovery honors the request and restores
	// the job as canceled rather than re-executing it.
	JournalCancel JournalOp = "cancel"
)

// JournalRecord is one JSONL line of the write-ahead journal.
type JournalRecord struct {
	Op       JournalOp      `json:"op"`
	ID       string         `json:"id,omitempty"`
	// Shard is the engine shard the job was placed on at submit time.
	// Recovery asserts each journal segment replays onto the shard that
	// wrote it, so a sharded restart reproduces the original placement
	// bit-identically. Absent (0) in pre-shard journals, which belong
	// to shard 0 by construction.
	Shard    int            `json:"shard,omitempty"`
	Spec     *JobSpec       `json:"spec,omitempty"`
	Status   JobStatus      `json:"status,omitempty"`
	Err      string         `json:"error,omitempty"`
	SubmitVT float64        `json:"submitVT,omitempty"`
	StartVT  float64        `json:"startVT,omitempty"`
	EndVT    float64        `json:"endVT,omitempty"`
	Result   *JournalResult `json:"result,omitempty"`
}

// JFloat is a float64 that survives JSON: non-finite values, which
// encoding/json rejects, are encoded as the quoted strings "NaN",
// "+Inf", and "-Inf". Estimator error bounds are legitimately NaN or
// infinite (unbounded intervals), and the journal must round-trip them
// so restored results re-serve byte-identical wire payloads.
type JFloat float64

// MarshalJSON implements json.Marshaler.
func (f JFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *JFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("journal: bad float %q: %w", s, err)
		}
		*f = JFloat(v)
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JFloat(v)
	return nil
}

// JournalEstimate is the NaN-safe journal form of one KeyEstimate,
// carrying every field of the underlying stats.Estimate so restoration
// is lossless (the HTTP wire form drops StdErr/DF; the journal must
// not).
type JournalEstimate struct {
	Key    string `json:"key"`
	Value  JFloat `json:"value"`
	Err    JFloat `json:"err"`
	StdErr JFloat `json:"stdErr"`
	DF     JFloat `json:"df"`
	Conf   JFloat `json:"conf"`
	Exact  bool   `json:"exact,omitempty"`
}

// JournalResult is the journal form of a completed job's result.
type JournalResult struct {
	Job      string             `json:"job"`
	Runtime  float64            `json:"runtimeSecs"`
	EnergyWh float64            `json:"energyWh"`
	RealSecs float64            `json:"realSecs,omitempty"`
	BusyJ    float64            `json:"busyJ,omitempty"`
	IdleJ    float64            `json:"idleJ,omitempty"`
	SleepJ   float64            `json:"sleepJ,omitempty"`
	Counters mapreduce.Counters `json:"counters"`
	Outputs  []JournalEstimate  `json:"outputs"`
}

// toJournalResult converts a Result for journaling (nil-safe).
func toJournalResult(res *mapreduce.Result) *JournalResult {
	if res == nil {
		return nil
	}
	outs := make([]JournalEstimate, 0, len(res.Outputs))
	for _, e := range res.Outputs {
		outs = append(outs, JournalEstimate{
			Key:    e.Key,
			Value:  JFloat(e.Est.Value),
			Err:    JFloat(e.Est.Err),
			StdErr: JFloat(e.Est.StdErr),
			DF:     JFloat(e.Est.DF),
			Conf:   JFloat(e.Est.Conf),
			Exact:  e.Exact,
		})
	}
	return &JournalResult{
		Job:      res.Job,
		Runtime:  res.Runtime,
		EnergyWh: res.EnergyWh,
		RealSecs: res.RealSecs,
		BusyJ:    res.Energy.BusyJ,
		IdleJ:    res.Energy.IdleJ,
		SleepJ:   res.Energy.SleepJ,
		Counters: res.Counters,
		Outputs:  outs,
	}
}

// Restore rebuilds the in-memory result a journal record describes
// (nil-safe). The job's scheduling trace is the one thing not
// journaled; restored results have a nil Trace.
func (jr *JournalResult) Restore() *mapreduce.Result {
	if jr == nil {
		return nil
	}
	outs := make([]mapreduce.KeyEstimate, 0, len(jr.Outputs))
	for _, e := range jr.Outputs {
		outs = append(outs, mapreduce.KeyEstimate{
			Key: e.Key,
			Est: stats.Estimate{
				Value:  float64(e.Value),
				Err:    float64(e.Err),
				StdErr: float64(e.StdErr),
				DF:     float64(e.DF),
				Conf:   float64(e.Conf),
			},
			Exact: e.Exact,
		})
	}
	return &mapreduce.Result{
		Job:      jr.Job,
		Outputs:  outs,
		Runtime:  jr.Runtime,
		EnergyWh: jr.EnergyWh,
		RealSecs: jr.RealSecs,
		Energy:   cluster.EnergyBreakdown{BusyJ: jr.BusyJ, IdleJ: jr.IdleJ, SleepJ: jr.SleepJ},
		Counters: jr.Counters,
	}
}

// Journal is the append-only JSONL write-ahead log. Methods must run on
// the goroutine driving the engine (or after it has stopped); the
// journal deliberately has no mutex so that misuse shows up under the
// race detector instead of hiding behind accidental serialization.
type Journal struct {
	path string
	f    *os.File
	w    *bufio.Writer
	// dirty counts appended records not yet fsynced; SyncEvery bounds
	// it (an append auto-commits at the threshold).
	dirty     int
	SyncEvery int
	closed    bool
}

// DefaultSyncEvery is the auto-commit threshold: at most this many
// buffered records before an append forces an fsync. Submissions and
// drains commit explicitly regardless.
const DefaultSyncEvery = 32

// OpenJournal opens (creating if absent) the journal at path, replays
// the existing records, and positions the writer at the end. A torn
// final line — the signature of a crash mid-append — is tolerated and
// truncated away; corruption anywhere else is an error, because silently
// skipping interior records would un-journal acknowledged jobs.
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, keep, err := readJournal(f)
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, nil, fmt.Errorf("journal: %w (and close failed: %v)", err, cerr)
		}
		return nil, nil, err
	}
	if err := f.Truncate(keep); err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, nil, fmt.Errorf("journal: truncate torn tail: %w (and close failed: %v)", err, cerr)
		}
		return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(keep, 0); err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, nil, fmt.Errorf("journal: %w (and close failed: %v)", err, cerr)
		}
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f, w: bufio.NewWriter(f), SyncEvery: DefaultSyncEvery}
	return j, recs, nil
}

// readJournal parses records from the start of f, returning them plus
// the byte offset of the last fully parsed line (everything past it is
// a torn tail to truncate).
func readJournal(f *os.File) ([]JournalRecord, int64, error) {
	if _, err := f.Seek(0, 0); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var (
		recs []JournalRecord
		keep int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // the scanner strips the newline
		if len(bytes.TrimSpace(line)) == 0 {
			keep += lineLen
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A parse failure on what the file claims is a complete
			// line (newline present) is interior corruption only if
			// more records follow; otherwise it is the torn tail of a
			// crashed append and is dropped.
			rest := make([]byte, 1)
			if n, _ := f.ReadAt(rest, keep+lineLen); n > 0 {
				return nil, 0, fmt.Errorf("journal: corrupt record at byte %d: %w", keep, err)
			}
			return recs, keep, nil
		}
		recs = append(recs, rec)
		keep += lineLen
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	return recs, keep, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append buffers one record, auto-committing when SyncEvery records
// have accumulated. The record is not durable until the next Commit.
func (j *Journal) Append(rec JournalRecord) error {
	if j.closed {
		return fmt.Errorf("journal: append after close")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.dirty++
	if j.SyncEvery > 0 && j.dirty >= j.SyncEvery {
		return j.Commit()
	}
	return nil
}

// Commit flushes buffered records and fsyncs the file. A no-op when
// nothing is dirty, so quiescent-point callers can invoke it freely.
func (j *Journal) Commit() error {
	if j.closed || j.dirty == 0 {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.dirty = 0
	return nil
}

// Close commits and closes the journal. Idempotent: second and later
// calls are no-ops, so Service.Close and daemon teardown may both call
// it.
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	err := j.Commit()
	j.closed = true
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}
