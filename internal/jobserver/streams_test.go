package jobserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"

	"approxhadoop/internal/stream"
)

// tinyStreamSpec is a continuous query small enough for unit tests.
func tinyStreamSpec(seed int64) StreamSpec {
	return StreamSpec{
		App:           "edit-rate",
		Blocks:        8,
		LinesPerBlock: 1500,
		Seed:          seed,
		Window:        5,
		MaxLatency:    0.05,
		Rate:          300,
		Swing:         0.5,
		Period:        60,
		MaxWindows:    6,
	}
}

// watchAll drains a stream through WatchFrom the way an HTTP client
// would: loop on the cursor until terminal.
func watchAll(t *testing.T, s *StreamSet, id string, from int) ([]stream.WindowResult, StreamStatus) {
	t.Helper()
	var wins []stream.WindowResult
	cursor := from
	for {
		fresh, status, next, err := s.WatchFrom(id, cursor)
		if err != nil {
			t.Fatalf("WatchFrom(%s, %d): %v", id, cursor, err)
		}
		wins = append(wins, fresh...)
		cursor = next
		if status.Terminal() {
			return wins, status
		}
	}
}

// TestStreamSetWatchAndResume: a watcher sees every window exactly
// once, a resumed watcher sees exactly the suffix, and reopening the
// same spec — even in a fresh set, as after a daemon restart — replays
// a byte-identical series.
func TestStreamSetWatchAndResume(t *testing.T) {
	s := NewStreamSet(4, 2)
	defer s.Close()
	id, err := s.Open(tinyStreamSpec(11))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	wins, status := watchAll(t, s, id, 0)
	if status != StreamDone {
		t.Fatalf("stream ended %s; want done", status)
	}
	if len(wins) != 6 {
		t.Fatalf("watched %d windows; want 6 (MaxWindows)", len(wins))
	}

	// Resume mid-series: the suffix must match what the full watch saw.
	tail, _ := watchAll(t, s, id, 3)
	if len(tail) != 3 {
		t.Fatalf("resume from 3 returned %d windows; want 3", len(tail))
	}
	if !bytes.Equal(stream.SeriesBytes(tail), stream.SeriesBytes(wins[3:])) {
		t.Errorf("resumed suffix differs from the original series")
	}
	// A cursor past the end clamps instead of erroring.
	none, st2, next, err := s.WatchFrom(id, 99)
	if err != nil || len(none) != 0 || next != 6 || !st2.Terminal() {
		t.Errorf("over-large cursor: got %d wins, status %s, next %d, err %v", len(none), st2, next, err)
	}

	// Replay-from-spec: a second set (a restarted daemon) re-emits the
	// identical series.
	s2 := NewStreamSet(4, 7)
	defer s2.Close()
	id2, err := s2.Open(tinyStreamSpec(11))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	wins2, _ := watchAll(t, s2, id2, 0)
	if !bytes.Equal(stream.SeriesBytes(wins), stream.SeriesBytes(wins2)) {
		t.Errorf("reopened stream series differs:\n%s\nvs\n%s", stream.SeriesBytes(wins), stream.SeriesBytes(wins2))
	}
}

// TestStreamSetValidation: broken specs are rejected at Open, not at
// first window.
func TestStreamSetValidation(t *testing.T) {
	s := NewStreamSet(2, 1)
	defer s.Close()
	if _, err := s.Open(StreamSpec{App: "no-such-app"}); err == nil {
		t.Errorf("unknown app accepted")
	}
	if _, err := s.Open(StreamSpec{App: "edit-rate", Swing: 1.5}); err == nil {
		t.Errorf("swing >= 1 accepted")
	}
	if _, err := s.Open(tinyStreamSpec(1)); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestStreamHTTPWatch: the /v1/streams routes end to end — open over
// HTTP, watch the JSONL frames to the final one, resume with ?from,
// and read back the listed state.
func TestStreamHTTPWatch(t *testing.T) {
	svc := New(Config{Workers: 1})
	d := NewDaemon(svc, false)
	defer d.Stop()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	spec, _ := json.Marshal(tinyStreamSpec(5))
	resp, err := srv.Client().Post(srv.URL+"/v1/streams", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var opened map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		t.Fatalf("open decode: %v", err)
	}
	resp.Body.Close()
	id := opened["id"]
	if id == "" {
		t.Fatalf("open returned no id: %v", opened)
	}

	frames := watchHTTP(t, srv, id, 0)
	if len(frames) != 6 {
		t.Fatalf("watched %d frames; want 6", len(frames))
	}
	for i, f := range frames {
		if f.Seq != i {
			t.Fatalf("frame %d has seq %d; frames must be gap-free", i, f.Seq)
		}
		if f.Records <= 0 {
			t.Errorf("frame %d carries no records", i)
		}
	}
	if !frames[len(frames)-1].Final {
		t.Errorf("last frame not marked final")
	}

	// Seq-resume: frames 4.. must match the first watch byte-for-byte
	// up to the Status field (terminal on resume).
	tail := watchHTTP(t, srv, id, 4)
	if len(tail) != 2 || tail[0].Seq != 4 {
		t.Fatalf("resume from 4: got %d frames starting at %v", len(tail), tail)
	}
	if tail[0].Index != frames[4].Index || tail[0].Value != frames[4].Value { //lint:ignore nofloateq resumed frames must be bit-identical
		t.Errorf("resumed frame differs: %+v vs %+v", tail[0], frames[4])
	}

	var listed []WireStream
	if code := getJSON(t, srv.URL+"/v1/streams", &listed); code != 200 {
		t.Fatalf("list returned %d", code)
	}
	if len(listed) != 1 || listed[0].ID != id || listed[0].Windows != 6 || listed[0].Status != StreamDone {
		t.Errorf("listed state %+v; want %s done with 6 windows", listed, id)
	}

	// Bad specs come back 400.
	resp, err = srv.Client().Post(srv.URL+"/v1/streams", "application/json", bytes.NewReader([]byte(`{"app":"nope"}`)))
	if err != nil {
		t.Fatalf("bad open: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown app returned %d; want 400", resp.StatusCode)
	}
}

// watchHTTP drains /v1/streams/{id}/watch?from=N into frames.
func watchHTTP(t *testing.T, srv *httptest.Server, id string, from int) []WireWindow {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/v1/streams/" + id + "/watch?from=" + strconv.Itoa(from))
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer resp.Body.Close()
	var frames []WireWindow
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var f WireWindow
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("watch read: %v", err)
	}
	return frames
}
