package jobserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ServeConfig configures Serve, the crash-safe daemon front end shared
// by cmd/approxd and the chaos harness (which must boot the exact
// production path it kills).
type ServeConfig struct {
	// Addr is the listen address (":0" picks an ephemeral port; OnReady
	// learns the real one).
	Addr string
	// Service configures the underlying Service.
	Service Config
	// Hold enables hold mode (see Daemon).
	Hold bool
	// JournalPath, when non-empty, opens (creating if absent) the
	// write-ahead journal there and recovers any previous life's jobs
	// before serving traffic.
	JournalPath string
	// Grace bounds how long a SIGTERM/SIGINT drain waits for running
	// jobs before giving up and relying on the journal (default 10s).
	Grace time.Duration
	// RequestTimeout bounds quick HTTP endpoints (default 10s; negative
	// disables). Streams and replays are exempt — see Daemon.Handler.
	RequestTimeout time.Duration
	// MaxBody bounds POST request bodies (default 4 MiB).
	MaxBody int64
	// OnReady, if set, runs once the listener is accepting; addr is the
	// bound address.
	OnReady func(addr string, d *Daemon)
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// Serve runs the daemon to completion: open and replay the journal,
// re-admit interrupted work, listen, serve, and on SIGTERM/SIGINT
// drain gracefully — new submissions get 503 + Retry-After, running
// jobs finish within the grace, queued jobs stay journaled for the
// next boot — then flush and exit. It returns once the listener is
// closed and every journaled byte is durable.
func Serve(cfg ServeConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 10 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}

	svc := New(cfg.Service)
	if cfg.JournalPath != "" {
		j, recs, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return err
		}
		svc.UseJournal(j)
		// Recovery runs before the driver goroutine exists, so the
		// engine-goroutine-only methods are safe here by construction.
		rs, err := svc.Recover(recs)
		if err != nil {
			if cerr := j.Close(); cerr != nil {
				return fmt.Errorf("%w (and journal close failed: %v)", err, cerr)
			}
			return err
		}
		if rs.Terminal+rs.Requeued+rs.Canceled > 0 {
			logf("journal %s: restored %d completed, re-admitted %d interrupted, finalized %d canceled",
				cfg.JournalPath, rs.Terminal, rs.Requeued, rs.Canceled)
		}
	}

	d := NewDaemon(svc, cfg.Hold)
	d.RequestTimeout = cfg.RequestTimeout
	d.MaxBody = cfg.MaxBody

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		d.Stop()
		return err
	}
	srv := &http.Server{
		Handler: d.Handler(),
		// Slowloris guard; full-request reads are bounded per endpoint
		// by MaxBytesReader + TimeoutHandler instead of a blanket
		// ReadTimeout, which would kill long-lived streams.
		ReadHeaderTimeout: 5 * time.Second,
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigs)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logf("listening on %s", ln.Addr())
	if cfg.OnReady != nil {
		cfg.OnReady(ln.Addr().String(), d)
	}

	select {
	case err := <-serveErr:
		d.Stop()
		return err
	case sig := <-sigs:
		logf("%v: draining (grace %s)", sig, cfg.Grace)
		if d.Drain(cfg.Grace) {
			logf("drain complete: running jobs finished, queued jobs stay journaled for the next boot")
		} else {
			logf("drain grace expired with jobs still running; the journal re-executes them on restart")
		}
		// Stop the driver and close the journal first: Service.Close
		// broadcasts to every stream waiter, so in-flight stream
		// handlers observe the shutdown and return, letting Shutdown's
		// in-flight-handler wait below actually finish.
		d.Stop()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(sctx)
		cancel()
		<-serveErr // srv.Serve has returned http.ErrServerClosed
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				logf("shutdown timed out waiting for in-flight requests; exiting anyway")
				return nil
			}
			return err
		}
		logf("shutdown complete")
		return nil
	}
}
