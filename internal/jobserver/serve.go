package jobserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ServeConfig configures Serve, the crash-safe daemon front end shared
// by cmd/approxd and the chaos harness (which must boot the exact
// production path it kills).
type ServeConfig struct {
	// Addr is the listen address (":0" picks an ephemeral port; OnReady
	// learns the real one).
	Addr string
	// Service configures the underlying Service (each shard gets a
	// copy; see Shards).
	Service Config
	// Shards is the engine-fleet size (0 or 1 = the classic standalone
	// daemon). Each shard is an independent engine with its own virtual
	// clock and journal segment; jobs are placed by consistent hashing
	// on JobSpec.PlacementKey. Restart with the same count — recovery
	// refuses journal segments that would re-place recovered jobs.
	Shards int
	// MaxLag is the slow-subscriber drop threshold for frame streams
	// (0 = DefaultMaxLag; negative disables dropping).
	MaxLag int
	// Hold enables hold mode (see Daemon).
	Hold bool
	// JournalPath, when non-empty, opens (creating if absent) the
	// write-ahead journal there and recovers any previous life's jobs
	// before serving traffic. A sharded daemon keeps one segment per
	// shard: shard 0 uses the path verbatim (so a 1-shard fleet is
	// journal-compatible with the pre-fleet daemon), shard i uses
	// "<path>.shard<i>".
	JournalPath string
	// Grace bounds how long a SIGTERM/SIGINT drain waits for running
	// jobs before giving up and relying on the journal (default 10s).
	Grace time.Duration
	// RequestTimeout bounds quick HTTP endpoints (default 10s; negative
	// disables). Streams and replays are exempt — see Daemon.Handler.
	RequestTimeout time.Duration
	// MaxBody bounds POST request bodies (default 4 MiB).
	MaxBody int64
	// OnReady, if set, runs once the listener is accepting; addr is the
	// bound address.
	OnReady func(addr string, d *Daemon)
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// shardJournalPath is shard i's journal segment path: shard 0 keeps
// the configured path exactly (pre-fleet compatibility), later shards
// get a ".shard<i>" suffix.
func shardJournalPath(path string, i int) string {
	if i == 0 {
		return path
	}
	return fmt.Sprintf("%s.shard%d", path, i)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// closeServices closes already-built services during an aborted boot
// (committing and closing any journals they hold).
func closeServices(svcs []*Service) {
	for _, svc := range svcs {
		if svc != nil {
			svc.Close()
		}
	}
}

// Serve runs the daemon to completion: open and replay the journal,
// re-admit interrupted work, listen, serve, and on SIGTERM/SIGINT
// drain gracefully — new submissions get 503 + Retry-After, running
// jobs finish within the grace, queued jobs stay journaled for the
// next boot — then flush and exit. It returns once the listener is
// closed and every journaled byte is durable.
func Serve(cfg ServeConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 10 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}

	shardCfgs := ShardConfigs(cfg.Service, cfg.Shards)
	if cfg.JournalPath != "" {
		// A segment for shard len(shardCfgs) means a previous life ran
		// with more shards: booting smaller would silently orphan its
		// jobs. Refuse before touching any journal.
		if orphan := shardJournalPath(cfg.JournalPath, len(shardCfgs)); fileExists(orphan) {
			return fmt.Errorf("jobserver: journal segment %s exists but this boot has only %d shard(s); restart with the original shard count", orphan, len(shardCfgs))
		}
	}
	svcs := make([]*Service, len(shardCfgs))
	for i, scfg := range shardCfgs {
		svc := New(scfg)
		if cfg.JournalPath != "" {
			path := shardJournalPath(cfg.JournalPath, i)
			j, recs, err := OpenJournal(path)
			if err != nil {
				closeServices(svcs[:i])
				return err
			}
			svc.UseJournal(j)
			// Recovery runs before the driver goroutine exists, so the
			// engine-goroutine-only methods are safe here by construction.
			rs, err := svc.Recover(recs)
			if err != nil {
				closeServices(svcs[:i])
				if cerr := j.Close(); cerr != nil {
					return fmt.Errorf("%w (and journal close failed: %v)", err, cerr)
				}
				return err
			}
			if rs.Terminal+rs.Requeued+rs.Canceled > 0 {
				logf("journal %s: restored %d completed, re-admitted %d interrupted, finalized %d canceled",
					path, rs.Terminal, rs.Requeued, rs.Canceled)
			}
		}
		svcs[i] = svc
	}

	d := NewFleetDaemon(svcs, cfg.Hold)
	d.RequestTimeout = cfg.RequestTimeout
	d.MaxBody = cfg.MaxBody
	d.MaxLag = cfg.MaxLag

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		d.Stop()
		return err
	}
	srv := &http.Server{
		Handler: d.Handler(),
		// Slowloris guard; full-request reads are bounded per endpoint
		// by MaxBytesReader + TimeoutHandler instead of a blanket
		// ReadTimeout, which would kill long-lived streams.
		ReadHeaderTimeout: 5 * time.Second,
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigs)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logf("listening on %s", ln.Addr())
	if cfg.OnReady != nil {
		cfg.OnReady(ln.Addr().String(), d)
	}

	select {
	case err := <-serveErr:
		d.Stop()
		return err
	case sig := <-sigs:
		logf("%v: draining (grace %s)", sig, cfg.Grace)
		if d.Drain(cfg.Grace) {
			logf("drain complete: running jobs finished, queued jobs stay journaled for the next boot")
		} else {
			logf("drain grace expired with jobs still running; the journal re-executes them on restart")
		}
		// Stop the driver and close the journal first: Service.Close
		// broadcasts to every stream waiter, so in-flight stream
		// handlers observe the shutdown and return, letting Shutdown's
		// in-flight-handler wait below actually finish.
		d.Stop()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(sctx)
		cancel()
		<-serveErr // srv.Serve has returned http.ErrServerClosed
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				logf("shutdown timed out waiting for in-flight requests; exiting anyway")
				return nil
			}
			return err
		}
		logf("shutdown complete")
		return nil
	}
}
