package jobserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"approxhadoop/internal/stream"
	"approxhadoop/internal/wire"
)

// The streaming-plane HTTP API, mounted beside the batch routes:
//
//	POST   /v1/streams            open a StreamSpec -> {"id": ...}
//	GET    /v1/streams            list stream states
//	GET    /v1/streams/{id}       one stream's state (window count, last seq)
//	DELETE /v1/streams/{id}       stop at the next window
//	GET    /v1/streams/{id}/watch JSONL WireWindow frames, one per closed
//	                              window; ?from=N resumes after seq N-1
//
// Watch frames follow the same Seq-resume contract as the batch
// /stream endpoint — and because a window series is a pure function of
// (spec, seed), a client may also reconnect to a *restarted* daemon,
// reopen the same spec, and watch from its old cursor: the frames are
// byte-identical to the ones the dead daemon would have sent.

// WireWindow is one line of the stream watch endpoint: a WindowResult
// with the NaN-unsafe interval mapped onto the -1 epsilon sentinel.
type WireWindow struct {
	Seq    int          `json:"seq"`
	Status StreamStatus `json:"status"`
	Final  bool         `json:"final,omitempty"`

	Index      int64   `json:"index"`
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Records    int64   `json:"records"`
	Strata     int     `json:"strata"`
	Processed  int     `json:"processed"`
	Folded     int64   `json:"folded"`
	Sampled    int64   `json:"sampled"`
	Capacity   int     `json:"capacity"`
	KeepFrac   float64 `json:"keepFrac"`
	Degraded   bool    `json:"degraded,omitempty"`
	Partial    bool    `json:"partial,omitempty"`
	Exact      bool    `json:"exact,omitempty"`
	Latency    float64 `json:"latencySecs"`
	Value      float64 `json:"value"`
	Epsilon    float64 `json:"epsilon"` // CI half-width; -1 when unbounded
	Confidence float64 `json:"confidence"`
	Unbounded  bool    `json:"unbounded,omitempty"`
}

// wireWindow converts one emitted window.
func wireWindow(seq int, status StreamStatus, r stream.WindowResult) WireWindow {
	w := WireWindow{
		Seq:        seq,
		Status:     status,
		Index:      r.Index,
		Start:      r.Start,
		End:        r.End,
		Records:    r.Records,
		Strata:     r.Strata,
		Processed:  r.Processed,
		Folded:     r.Folded,
		Sampled:    r.Sampled,
		Capacity:   r.Plan.Capacity,
		KeepFrac:   r.Plan.KeepFrac,
		Degraded:   r.Degraded,
		Partial:    r.Partial,
		Exact:      r.Exact,
		Latency:    r.Latency,
		Value:      r.Est.Value,
		Epsilon:    r.Est.Err,
		Confidence: r.Est.Conf,
	}
	if math.IsNaN(w.Epsilon) || math.IsInf(w.Epsilon, 0) || math.IsNaN(w.Value) || math.IsInf(w.Value, 0) {
		if math.IsNaN(w.Value) || math.IsInf(w.Value, 0) {
			w.Value = 0
		}
		w.Epsilon = -1
		w.Unbounded = true
	}
	return w
}

// WireStream is the JSON form of one StreamState: the series itself
// flows through /watch, so the state carries counts, not windows.
type WireStream struct {
	ID      string       `json:"id"`
	Spec    StreamSpec   `json:"spec"`
	Status  StreamStatus `json:"status"`
	Err     string       `json:"error,omitempty"`
	Windows int          `json:"windows"` // frames emitted so far (next ?from cursor)
}

func wireStream(st StreamState) WireStream {
	return WireStream{ID: st.ID, Spec: st.Spec, Status: st.Status, Err: st.Err, Windows: len(st.Windows)}
}

func (d *Daemon) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	if d.fleet.Draining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	var spec StreamSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, d.maxBody())).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad stream spec: %w", err))
		return
	}
	id, err := d.streams.Open(spec)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"id": id})
	}
}

func (d *Daemon) handleStreamList(w http.ResponseWriter, _ *http.Request) {
	states := d.streams.List()
	out := make([]WireStream, 0, len(states))
	for _, st := range states {
		out = append(out, wireStream(st))
	}
	writeJSON(w, http.StatusOK, out)
}

func (d *Daemon) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	st, ok := d.streams.Info(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no stream %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, wireStream(st))
}

func (d *Daemon) handleStreamStop(w http.ResponseWriter, r *http.Request) {
	if err := d.streams.Stop(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stopping"})
}

// handleStreamWatch serves a continuous query's window frames — JSONL
// or negotiated binary — ending when the stream is terminal
// (final=true on the last frame of a stream that drained normally).
// Like /v1/jobs/{id}/stream, frames are encoded once and shared across
// watchers, with drop-to-latest for watchers that fall too far behind.
func (d *Daemon) handleStreamWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := d.streams.Info(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no stream %q", id))
		return
	}
	binary := wantBinary(r)
	if binary {
		w.Header().Set("Content-Type", wire.ContentType)
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	cursor := 0
	if from := r.URL.Query().Get("from"); from != "" {
		if n, err := strconv.Atoi(from); err == nil && n > 0 {
			cursor = n
		}
	}
	lag := d.streamLag(r)
	for {
		fresh, status, next, err := d.streams.WatchFramesFrom(id, cursor, lag)
		if err != nil {
			return
		}
		terminal := status.Terminal()
		for _, f := range fresh {
			if f.WriteTo(w, binary) != nil {
				return // client went away
			}
		}
		cursor = next
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			if len(fresh) == 0 {
				// Stopped/failed before any window (or a fully caught-up
				// resume): emit one terminal frame so clients see an ending.
				//lint:ignore errcheck the stream is ending either way
				_ = synthWindowFrame(cursor, status).WriteTo(w, binary)
				if flusher != nil {
					flusher.Flush()
				}
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}
