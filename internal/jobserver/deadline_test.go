package jobserver

import (
	"math"
	"strings"
	"testing"
)

// deadlineBase is a ten-wave job (800 maps on 80 slots): big enough
// that a fraction of its precise runtime is still several map waves,
// giving the deadline planner real room to trade accuracy for time.
func deadlineBase() JobSpec {
	return JobSpec{Name: "calib", App: "total-size", Blocks: 800, LinesPerBlock: 200, Seed: 13}
}

// preciseRuntime calibrates the job's full-accuracy virtual runtime.
func preciseRuntime(t *testing.T) float64 {
	t.Helper()
	pre := New(Config{SnapshotEvery: -1}).Replay([]JobSpec{deadlineBase()})
	if pre[0].Status != StatusDone {
		t.Fatalf("calibration run: %s %s", pre[0].Status, pre[0].Err)
	}
	return pre[0].Result.Runtime
}

// TestDeadlineSLOMeetsDeadline: a deadline one third of the precise
// runtime forces the controller to approximate; the job must finish
// inside the SLO with statistically valid (finite) confidence
// intervals on its estimates.
func TestDeadlineSLOMeetsDeadline(t *testing.T) {
	precise := preciseRuntime(t)
	spec := deadlineBase()
	spec.Name = "slo"
	spec.Controller = "deadline"
	spec.Deadline = precise / 3
	states := New(Config{SnapshotEvery: -1}).Replay([]JobSpec{spec})
	st := states[0]
	if st.Status != StatusDone {
		t.Fatalf("deadline job: %s %s", st.Status, st.Err)
	}
	if st.Result.Runtime > spec.Deadline {
		t.Errorf("runtime %.6f blew the %.6f deadline (precise %.6f)",
			st.Result.Runtime, spec.Deadline, precise)
	}
	if len(st.Result.Outputs) == 0 {
		t.Fatal("no outputs")
	}
	approximated := false
	for _, out := range st.Result.Outputs {
		if out.Exact {
			continue
		}
		approximated = true
		if math.IsNaN(out.Est.Err) || math.IsInf(out.Est.Err, 0) {
			t.Errorf("key %s: unbounded interval under a met deadline", out.Key)
		}
	}
	if !approximated {
		t.Error("a third of the precise budget should have forced approximation")
	}
	if c := st.Result.Counters; c.MapsDropped == 0 && c.ItemsProcessed >= c.ItemsTotal {
		t.Errorf("no work was shed: %+v", c)
	}
}

// TestDeadlineSLOInfeasible: a deadline far below even one map wave
// fails the job with a descriptive error instead of returning numbers
// whose bounds would be a lie.
func TestDeadlineSLOInfeasible(t *testing.T) {
	precise := preciseRuntime(t)
	spec := deadlineBase()
	spec.Name = "doomed"
	spec.Controller = "deadline"
	spec.Deadline = precise / 100
	states := New(Config{SnapshotEvery: -1}).Replay([]JobSpec{spec})
	st := states[0]
	if st.Status != StatusFailed {
		t.Fatalf("want failure, got %s (err %q)", st.Status, st.Err)
	}
	if !strings.Contains(st.Err, "deadline") {
		t.Errorf("error %q does not explain the deadline", st.Err)
	}
}

// TestDeadlineSLOBestEffort: the same hopeless deadline with
// BestEffort set degrades instead of failing — the job completes with
// whatever it managed.
func TestDeadlineSLOBestEffort(t *testing.T) {
	precise := preciseRuntime(t)
	spec := deadlineBase()
	spec.Name = "scrappy"
	spec.Controller = "deadline"
	spec.Deadline = precise / 100
	spec.BestEffort = true
	states := New(Config{SnapshotEvery: -1}).Replay([]JobSpec{spec})
	st := states[0]
	if st.Status != StatusDone {
		t.Fatalf("best-effort job should finish, got %s (err %q)", st.Status, st.Err)
	}
}

// TestDeadlineSpecValidation: a deadline controller without a deadline
// is rejected at submission.
func TestDeadlineSpecValidation(t *testing.T) {
	states := New(Config{SnapshotEvery: -1}).Replay([]JobSpec{
		{Name: "bad", App: "total-size", Controller: "deadline"},
	})
	if states[0].Status != StatusRejected {
		t.Fatalf("want rejection, got %s", states[0].Status)
	}
}
