// Continuous queries: the jobserver face of the streaming plane.
//
// A StreamSpec is the wire-level description of one continuous
// windowed query — a streaming sibling of JobSpec — naming a scenario
// from the stream catalog plus window/SLO/rate settings. StreamSet
// runs each opened stream's Pipeline on its own goroutine and
// accumulates the emitted WindowResults as a Seq-numbered frame log
// that watchers resume from, mirroring Service.StreamFrom.
//
// Streams are deliberately not journaled: a window series is a pure
// function of (spec, seed), so there is no state worth checkpointing —
// a client of a restarted daemon reopens the spec and replays the
// identical series from window 0, which is cheaper and simpler than
// recovering partial reservoir state. Streams also never touch the
// shared engine or its virtual timeline; the stream plane has its own
// event-time clock, so continuous queries and batch jobs cannot
// perturb each other's schedules.
package jobserver

import (
	"errors"
	"fmt"
	"sync"

	"approxhadoop/internal/apps"
	"approxhadoop/internal/stream"
	"approxhadoop/internal/workload"
)

// errStreamCanceled aborts a stream's pipeline from its emit hook.
var errStreamCanceled = errors.New("jobserver: stream canceled")

// StreamSpec is the serializable description of one continuous query.
// Zero values select the documented defaults; Build validates the rest.
type StreamSpec struct {
	// Name labels the stream (default "<app>-<seed>").
	Name string `json:"name,omitempty"`
	// App names a stream-catalog scenario; see apps.StreamApps.
	App string `json:"app"`
	// Blocks/LinesPerBlock size the generated source log (defaults:
	// the app's workload defaults).
	Blocks        int `json:"blocks,omitempty"`
	LinesPerBlock int `json:"linesPerBlock,omitempty"`
	// Seed drives source pacing, every reservoir, and shedding
	// (default 1).
	Seed int64 `json:"seed,omitempty"`

	// Window/Slide are the event-time window spec in virtual seconds
	// (default 10s tumbling).
	Window float64 `json:"window,omitempty"`
	Slide  float64 `json:"slide,omitempty"`
	// TargetRelErr/MaxLatency form the SLO; both zero runs a fixed
	// plan with no controller.
	TargetRelErr float64 `json:"targetRelErr,omitempty"`
	MaxLatency   float64 `json:"maxLatency,omitempty"`
	// Capacity is the starting per-stratum reservoir size (default 64).
	Capacity int `json:"capacity,omitempty"`

	// Rate/Swing/Period shape the diurnal arrival curve (defaults
	// 400 rec/s, 0.5 swing, 120 s period; Swing 0 is a constant rate).
	Rate   float64 `json:"rate,omitempty"`
	Swing  float64 `json:"swing,omitempty"`
	Period float64 `json:"period,omitempty"`

	// MaxWindows stops the stream after N windows (0 = drain the
	// generated source).
	MaxWindows int `json:"maxWindows,omitempty"`
	// Workers overrides the fold-pool size (byte-invisible).
	Workers int `json:"workers,omitempty"`
}

// Build assembles the runnable pipeline this spec describes.
// defaultWorkers applies when the spec does not override it.
func (s StreamSpec) Build(defaultWorkers int) (*stream.Pipeline, error) {
	rate := s.Rate
	if rate <= 0 {
		rate = 400
	}
	swing := s.Swing
	if swing < 0 || swing >= 1 {
		return nil, fmt.Errorf("jobserver: stream swing %g outside [0,1)", s.Swing)
	}
	period := s.Period
	if period <= 0 {
		period = 120
	}
	var rf workload.RateFunc
	if swing > 0 {
		rf = workload.DiurnalRate(rate, swing, period)
	} else {
		rf = workload.ConstantRate(rate)
	}
	workers := s.Workers
	if workers == 0 {
		workers = defaultWorkers
	}
	window := s.Window
	if window <= 0 {
		window = 10
	}
	opts := apps.StreamOptions{
		Seed:       s.Seed,
		Rate:       rf,
		Window:     stream.Window{Size: window, Slide: s.Slide},
		SLO:        stream.SLO{TargetRelErr: s.TargetRelErr, MaxLatency: s.MaxLatency},
		Capacity:   s.Capacity,
		Workers:    workers,
		MaxWindows: s.MaxWindows,
	}
	switch s.App {
	case "edit-rate":
		gen := workload.DefaultEditLog()
		if s.Blocks > 0 {
			gen.Blocks = s.Blocks
		}
		if s.LinesPerBlock > 0 {
			gen.LinesPerBlock = s.LinesPerBlock
		}
		gen.Seed += s.Seed
		return apps.EditRateStream(gen, opts), nil
	case "web-bytes":
		gen := workload.DefaultWebLog()
		if s.Blocks > 0 {
			gen.Blocks = s.Blocks
		}
		if s.LinesPerBlock > 0 {
			gen.LinesPerBlock = s.LinesPerBlock
		}
		gen.Seed += s.Seed
		return apps.WebBytesStream(gen, opts), nil
	}
	return nil, fmt.Errorf("jobserver: unknown stream app %q (have %v)", s.App, apps.StreamApps())
}

// StreamStatus is the lifecycle state of a continuous query.
type StreamStatus string

// Stream lifecycle states.
const (
	StreamRunning  StreamStatus = "running"
	StreamDone     StreamStatus = "done"
	StreamFailed   StreamStatus = "failed"
	StreamStopped  StreamStatus = "stopped"
	StreamRejected StreamStatus = "rejected"
)

// Terminal reports whether the status is final.
func (s StreamStatus) Terminal() bool { return s != StreamRunning }

// StreamState is the externally visible state of one stream. Reads
// through Info/List return copies safe to use from any goroutine.
type StreamState struct {
	ID     string       `json:"id"`
	Spec   StreamSpec   `json:"spec"`
	Status StreamStatus `json:"status"`
	Err    string       `json:"error,omitempty"`
	// Windows is the emitted series so far; its index is the watch
	// cursor (Seq).
	Windows []stream.WindowResult `json:"-"`
}

// streamEntry is the set's per-stream bookkeeping.
type streamEntry struct {
	state    *StreamState // guarded by StreamSet.mu
	canceled bool         // guarded by StreamSet.mu
	// frames is the encode-once wire form of state.Windows: one shared
	// buffer per Seq (see frames.go). Appends happen on the stream's
	// pipeline goroutine; reads anywhere under StreamSet.mu.
	frames []*encFrame
}

// StreamSet runs and tracks continuous queries. All methods are safe
// from any goroutine.
type StreamSet struct {
	workers int
	max     int

	mu      sync.Mutex
	cond    *sync.Cond
	streams map[string]*streamEntry
	order   []string
	seq     int
	running int
	closed  bool
	wg      sync.WaitGroup
}

// NewStreamSet builds a registry. maxActive caps concurrently running
// streams (default 8); workers is the default per-stream fold-pool
// size.
func NewStreamSet(maxActive, workers int) *StreamSet {
	if maxActive <= 0 {
		maxActive = 8
	}
	s := &StreamSet{workers: workers, max: maxActive, streams: make(map[string]*streamEntry)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Open validates a spec and starts its pipeline on a fresh goroutine,
// returning the stream id watchers poll.
func (s *StreamSet) Open(spec StreamSpec) (string, error) {
	p, err := spec.Build(s.workers)
	if err != nil {
		return "", err
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("%s-%d", spec.App, spec.Seed)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errors.New("jobserver: stream set shut down")
	}
	if s.running >= s.max {
		s.mu.Unlock()
		return "", ErrBusy
	}
	id := fmt.Sprintf("stream-%04d", s.seq)
	s.seq++
	s.running++
	e := &streamEntry{state: &StreamState{ID: id, Spec: spec, Status: StreamRunning}}
	s.streams[id] = e
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.wg.Add(1)
	go s.run(e, p)
	return id, nil
}

// run drives one stream's pipeline to completion, publishing each
// closed window as a watchable frame.
func (s *StreamSet) run(e *streamEntry, p *stream.Pipeline) {
	defer s.wg.Done()
	seq := 0
	err := p.RunEach(func(r stream.WindowResult) error {
		// Encode the wire frame once, outside the lock (this pipeline
		// goroutine is the stream's only frame producer); every watcher
		// shares the buffer.
		f := newWindowFrameEnc(wireWindow(seq, StreamRunning, r))
		s.mu.Lock()
		if e.canceled || s.closed {
			s.mu.Unlock()
			return errStreamCanceled
		}
		e.state.Windows = append(e.state.Windows, r)
		e.frames = append(e.frames, f)
		seq++
		s.mu.Unlock()
		s.cond.Broadcast()
		return nil
	})
	s.mu.Lock()
	switch {
	case errors.Is(err, errStreamCanceled):
		e.state.Status = StreamStopped
		e.state.Err = errStreamCanceled.Error()
	case err != nil:
		e.state.Status = StreamFailed
		e.state.Err = err.Error()
	default:
		e.state.Status = StreamDone
	}
	if n := len(e.frames); n > 0 {
		// The last published frame carries the terminal status (and
		// final=true for a normal drain), in the same critical section
		// as the status flip, so watchers observe both or neither.
		e.frames[n-1] = restampWindowFrame(e.frames[n-1], e.state.Status)
	}
	s.running--
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Stop requests a running stream's pipeline to end at its next window;
// terminal streams are left alone. Unknown ids error.
func (s *StreamSet) Stop(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.streams[id]
	if !ok {
		return fmt.Errorf("jobserver: no stream %q", id)
	}
	e.canceled = true
	return nil
}

// Info returns a copy of one stream's state.
func (s *StreamSet) Info(id string) (StreamState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.streams[id]
	if !ok {
		return StreamState{}, false
	}
	return copyStreamState(e.state), true
}

// List returns every stream's state in open order.
func (s *StreamSet) List() []StreamState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StreamState, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, copyStreamState(s.streams[id].state))
	}
	return out
}

// copyStreamState snapshots a state under the set lock. Emitted
// windows are immutable once published, so sharing the capped slice
// with readers is safe.
func copyStreamState(st *StreamState) StreamState {
	cp := *st
	cp.Windows = st.Windows[:len(st.Windows):len(st.Windows)]
	return cp
}

// WatchFrom blocks until stream id has windows beyond `have` or is
// terminal, then returns the fresh windows, the status, and the
// updated cursor — the streaming-plane mirror of Service.StreamFrom.
// Callers loop until Terminal; an out-of-range resume cursor is
// clamped.
func (s *StreamSet) WatchFrom(id string, have int) ([]stream.WindowResult, StreamStatus, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if have < 0 {
		have = 0
	}
	for {
		e, ok := s.streams[id]
		if !ok {
			return nil, "", have, fmt.Errorf("jobserver: no stream %q", id)
		}
		st := e.state
		if have > len(st.Windows) {
			have = len(st.Windows)
		}
		if len(st.Windows) > have || st.Status.Terminal() {
			fresh := st.Windows[have:len(st.Windows):len(st.Windows)]
			return fresh, st.Status, len(st.Windows), nil
		}
		if s.closed {
			return nil, st.Status, have, errors.New("jobserver: stream set shut down")
		}
		s.cond.Wait()
	}
}

// WatchFramesFrom is the encode-once sibling of WatchFrom: it returns
// the pre-encoded shared frames past `have` instead of the raw
// windows. maxLag > 0 enables the slow-subscriber policy — a watcher
// more than maxLag frames behind a live stream jumps to the latest
// frame (the Seq gap is its drop signal); terminal streams replay in
// full.
func (s *StreamSet) WatchFramesFrom(id string, have, maxLag int) ([]*encFrame, StreamStatus, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if have < 0 {
		have = 0
	}
	for {
		e, ok := s.streams[id]
		if !ok {
			return nil, "", have, fmt.Errorf("jobserver: no stream %q", id)
		}
		if have > len(e.frames) {
			have = len(e.frames)
		}
		if !e.state.Status.Terminal() && maxLag > 0 && len(e.frames)-have > maxLag {
			have = len(e.frames) - 1
		}
		if len(e.frames) > have || e.state.Status.Terminal() {
			fresh := e.frames[have:len(e.frames):len(e.frames)]
			return fresh, e.state.Status, len(e.frames), nil
		}
		if s.closed {
			return nil, e.state.Status, have, errors.New("jobserver: stream set shut down")
		}
		s.cond.Wait()
	}
}

// Close stops every running stream at its next window, wakes all
// watchers, and waits for the pipelines to exit. Idempotent.
func (s *StreamSet) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
