// Package jobserver is the multi-tenant job service: it runs many
// MapReduce jobs concurrently on one shared simulated cluster, with an
// admission queue, FIFO or weighted fair-share slot scheduling,
// per-job deadline SLOs, and streaming early-result snapshots whose
// confidence intervals narrow as waves complete.
//
// The package has three layers. JobSpec (this file) is the wire-level
// job description — a serializable recipe naming an application from
// the catalog plus approximation settings — from which a fresh
// mapreduce.Job (with its own generated input) is built per
// submission. Service (service.go) is the engine-goroutine core:
// admission, dispatch via mapreduce.Start, state tracking, and the
// deterministic Replay batch mode. Daemon/HTTP (daemon.go, http.go)
// wrap the Service for cmd/approxd: a driver goroutine owns the
// engine and processes submissions from a mailbox, so the virtual
// timeline itself never sees another goroutine.
package jobserver

import (
	"fmt"
	"sort"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/apps"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/harness"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/workload"
)

// JobSpec is the serializable description of one service job. The
// zero values of optional fields select the defaults documented per
// field; Build validates the rest.
type JobSpec struct {
	// Name labels the job in results and logs (default "<app>-<seed>").
	Name string `json:"name,omitempty"`
	// App names a catalog application; see Apps.
	App string `json:"app"`
	// Blocks is the generated input size in blocks == map tasks
	// (default 48). LinesPerBlock scales each block (default 200).
	Blocks        int `json:"blocks,omitempty"`
	LinesPerBlock int `json:"linesPerBlock,omitempty"`
	// Seed drives input generation, task order, and sampling.
	Seed int64 `json:"seed,omitempty"`
	// Weight is the job's fair-share weight (default 1); FIFO ignores
	// it.
	Weight float64 `json:"weight,omitempty"`
	// SubmitAt is the job's virtual-time submission offset within a
	// replayed trace; live submissions ignore it.
	SubmitAt float64 `json:"submitAt,omitempty"`
	// IdempotencyKey, when non-empty, deduplicates submissions: the
	// first submission with a given key creates the job, and every
	// later one — including retries after a client timeout or a daemon
	// crash-and-restart, since keys are journaled with the spec —
	// returns the original job's id instead of running again.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
	// Tenant names the submitting tenant. A sharded daemon routes all
	// of a tenant's jobs to one engine shard (consistent hashing on
	// this field) and enforces the per-tenant admission quota against
	// it; empty means the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`

	// Controller selects the approximation mode: "" or "precise",
	// "static" (SampleRatio/DropRatio), "target" (Target relative
	// error), or "deadline" (Deadline virtual seconds, BestEffort).
	Controller  string  `json:"controller,omitempty"`
	SampleRatio float64 `json:"sampleRatio,omitempty"`
	DropRatio   float64 `json:"dropRatio,omitempty"`
	Target      float64 `json:"target,omitempty"`
	Deadline    float64 `json:"deadline,omitempty"`
	BestEffort  bool    `json:"bestEffort,omitempty"`

	// Reduces is the job's reduce-task count (default 1 — service
	// jobs share the cluster's reduce slots, which bound admission).
	Reduces int `json:"reduces,omitempty"`
	// Workers overrides the service's compute-pool size for this job.
	Workers int `json:"workers,omitempty"`
}

// Apps lists the catalog applications a JobSpec may name.
func Apps() []string {
	return []string{"project-popularity", "page-popularity", "total-size", "clients", "wiki-length"}
}

// input generates the spec's private input file. Every submission gets
// a fresh dfs.File: service tenants do not share block objects, so one
// job's replica bookkeeping can never leak into another's schedule.
func (s JobSpec) input() (*dfs.File, error) {
	blocks := s.Blocks
	if blocks <= 0 {
		blocks = 48
	}
	lines := s.LinesPerBlock
	if lines <= 0 {
		lines = 200
	}
	name := fmt.Sprintf("%s-%d.in", s.App, s.Seed)
	switch s.App {
	case "project-popularity", "page-popularity":
		log := workload.AccessLog{Blocks: blocks, LinesPerBlock: lines, Projects: 50, Pages: 2000, Seed: s.Seed + 2}
		return log.File(name), nil
	case "total-size", "clients":
		log := workload.WebLog{Blocks: blocks, LinesPerBlock: lines, Clients: 200, Attackers: 8, AttackRate: 0.02, Seed: s.Seed + 3}
		return log.File(name), nil
	case "wiki-length":
		dump := workload.WikiDump{Blocks: blocks, ArticlesPerBlock: lines, LinkUniverse: 2000, MeanLinks: 8, Seed: s.Seed + 1}
		return dump.File(name), nil
	}
	return nil, fmt.Errorf("jobserver: unknown app %q (have %v)", s.App, Apps())
}

// controller builds a fresh controller instance for this submission
// (controllers are stateful and never shared between jobs).
func (s JobSpec) controller() (mapreduce.Controller, error) {
	switch s.Controller {
	case "", "precise":
		return nil, nil
	case "static":
		return approx.NewStatic(s.SampleRatio, s.DropRatio), nil
	case "target":
		if s.Target <= 0 {
			return nil, fmt.Errorf("jobserver: controller \"target\" requires target > 0")
		}
		return &approx.TargetError{Target: s.Target, Pilot: true}, nil
	case "deadline":
		if s.Deadline <= 0 {
			return nil, fmt.Errorf("jobserver: controller \"deadline\" requires deadline > 0")
		}
		return &approx.DeadlineSLO{Deadline: s.Deadline, BestEffort: s.BestEffort}, nil
	}
	return nil, fmt.Errorf("jobserver: unknown controller %q (precise, static, target, deadline)", s.Controller)
}

// Build assembles the runnable mapreduce.Job this spec describes.
// defaultWorkers is the service-wide compute-pool size applied when
// the spec does not override it.
func (s JobSpec) Build(defaultWorkers int) (*mapreduce.Job, error) {
	input, err := s.input()
	if err != nil {
		return nil, err
	}
	ctl, err := s.controller()
	if err != nil {
		return nil, err
	}
	reduces := s.Reduces
	if reduces <= 0 {
		reduces = 1
	}
	// Paper-scale analytic costs: map waves take seconds, not the
	// microseconds of the metered default, so trace submission gaps,
	// streaming snapshot periods, and deadline SLOs all live in natural
	// units — and concurrently submitted jobs genuinely overlap.
	opts := apps.Options{Controller: ctl, Seed: s.Seed, Reduces: reduces, Cost: harness.PaperCost()}
	var job *mapreduce.Job
	switch s.App {
	case "project-popularity":
		job = apps.ProjectPopularity(input, opts)
	case "page-popularity":
		job = apps.PagePopularity(input, opts)
	case "total-size":
		job = apps.TotalSize(input, opts)
	case "clients":
		job = apps.Clients(input, opts)
	case "wiki-length":
		job = apps.WikiLength(input, opts)
	default:
		return nil, fmt.Errorf("jobserver: unknown app %q (have %v)", s.App, Apps())
	}
	if s.Name != "" {
		job.Name = s.Name
	} else {
		job.Name = fmt.Sprintf("%s-%d", s.App, s.Seed)
	}
	job.Workers = s.Workers
	if job.Workers == 0 {
		job.Workers = defaultWorkers
	}
	if s.Controller == "deadline" {
		// The controller plans toward Slack*Deadline; the framework's
		// map-phase deadline is the hard stop if the plan mispredicts.
		// Strict SLO jobs fail with a descriptive error on overrun;
		// best-effort jobs degrade the unfinished tail to
		// statistically-bounded drops instead.
		job.Retry.JobDeadline = s.Deadline
		job.DegradeToDrop = s.BestEffort
	}
	return job, nil
}

// PlacementKey is the consistent-hash routing key a sharded daemon
// places this spec with. Tenant wins when set, so a tenant's jobs
// share a shard (quota enforcement and cross-job locality); otherwise
// the idempotency key, so blind retries of a keyed submission land on
// the shard that already owns the original; otherwise the job name;
// otherwise a stable app+seed composite. Every fallback is derived
// from the spec alone, so a resubmitted spec always routes the same.
func (s JobSpec) PlacementKey() string {
	if s.Tenant != "" {
		return s.Tenant
	}
	if s.IdempotencyKey != "" {
		return s.IdempotencyKey
	}
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("%s-%d", s.App, s.Seed)
}

// GenerateTrace builds a seeded submission trace of n jobs: a
// deterministic mix of catalog apps, weights, approximation modes, and
// staggered virtual submission times. The same (n, seed) always yields
// the same trace, which is what the byte-identical replay tests and
// the approxctl load generator run.
//
// Traces use only precise and static controllers: their per-job
// outputs depend only on (spec, seed) — drops are the tail of the
// job's own seeded launch order — so replay results are comparable
// across scheduling policies, not just across worker-pool sizes.
func GenerateTrace(n int, seed int64) []JobSpec {
	rng := stats.NewRand(seed)
	catalog := Apps()
	specs := make([]JobSpec, 0, n)
	at := 0.0
	for i := 0; i < n; i++ {
		app := catalog[rng.Intn(len(catalog))]
		spec := JobSpec{
			Name:          fmt.Sprintf("%s-%03d", app, i),
			App:           app,
			Blocks:        32 + 16*rng.Intn(3),
			LinesPerBlock: 150,
			Seed:          seed*7919 + int64(i),
			Weight:        float64(1 + rng.Intn(3)),
			SubmitAt:      at,
		}
		switch rng.Intn(3) {
		case 0: // precise
		case 1:
			spec.Controller = "static"
			spec.SampleRatio = []float64{0.1, 0.25, 0.5}[rng.Intn(3)]
		case 2:
			spec.Controller = "static"
			spec.SampleRatio = 0.25
			spec.DropRatio = []float64{0.25, 0.5}[rng.Intn(2)]
		}
		at += rng.Float64() * 40
		specs = append(specs, spec)
	}
	return specs
}

// SortTrace orders specs for deterministic replay: by SubmitAt, then
// Name, then original position. Replay applies it so a trace submitted
// out of order (e.g. gathered over concurrent HTTP requests in hold
// mode) still admits jobs in a reproducible sequence.
func SortTrace(specs []JobSpec) []JobSpec {
	out := append([]JobSpec(nil), specs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SubmitAt < out[j].SubmitAt {
			return true
		}
		if out[j].SubmitAt < out[i].SubmitAt {
			return false
		}
		return out[i].Name < out[j].Name
	})
	return out
}
