package jobserver

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The chaos harness proves the crash-safety contract end to end: it
// boots the real Serve path in a child process, SIGKILLs it at seeded
// points (right after acks, mid-execution, mid-stream, mid-drain),
// restarts it on the same journal, and asserts every recovered job's
// result is byte-identical to an uninterrupted control run of the
// same spec + seed. APPROX_CHAOS_SEED shifts every job seed so the CI
// matrix exercises different samplings.
//
// The child is this very test binary re-exec'd with
// APPROXD_CHAOS_CHILD=1: TestMain intercepts the env var before any
// test runs and serves instead.

func TestMain(m *testing.M) {
	if os.Getenv("APPROXD_CHAOS_CHILD") == "1" {
		chaosChild()
		return
	}
	os.Exit(m.Run())
}

// chaosChild runs the production daemon path (journal replay, drain,
// signal handling) and prints the bound address for the parent.
func chaosChild() {
	maxActive := 2
	if s := os.Getenv("APPROXD_CHAOS_MAXACTIVE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			maxActive = n
		}
	}
	shards := 1
	if s := os.Getenv("APPROXD_CHAOS_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			shards = n
		}
	}
	err := Serve(ServeConfig{
		Addr: "127.0.0.1:0",
		Service: Config{
			MaxActive:     maxActive,
			MaxQueue:      32,
			SnapshotEvery: 5,
		},
		Shards:      shards,
		JournalPath: os.Getenv("APPROXD_CHAOS_JOURNAL"),
		Grace:       5 * time.Second,
		OnReady: func(addr string, _ *Daemon) {
			fmt.Printf("ADDR %s\n", addr)
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "chaos-child: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos-child: %v\n", err)
		os.Exit(1)
	}
}

// chaosSeedShift folds the CI chaos seed into every job seed so each
// matrix entry kills a different sampling of the same workload.
func chaosSeedShift() int64 {
	if s := os.Getenv("APPROX_CHAOS_SEED"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return int64(n) * 1000
		}
	}
	return 0
}

// chaosSpecs is the workload: a precise job, a sampled job, and a
// sampled+dropped job, sized so that with MaxActive 1 some are still
// queued whenever the kill lands.
func chaosSpecs() []JobSpec {
	shift := chaosSeedShift()
	return []JobSpec{
		{Name: "x-precise", App: "total-size", Blocks: 24, LinesPerBlock: 80, Seed: 11 + shift,
			IdempotencyKey: "chaos-precise"},
		{Name: "x-sampled", App: "project-popularity", Blocks: 32, LinesPerBlock: 80, Seed: 12 + shift,
			Controller: "static", SampleRatio: 0.5, IdempotencyKey: "chaos-sampled"},
		{Name: "x-dropped", App: "clients", Blocks: 24, LinesPerBlock: 80, Seed: 13 + shift,
			Controller: "static", SampleRatio: 0.5, DropRatio: 0.25, IdempotencyKey: "chaos-dropped"},
	}
}

// chaosDaemon is one life of the re-exec'd daemon.
type chaosDaemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	addr string
	done chan error
}

func startChaosDaemon(t *testing.T, journal string, maxActive int) *chaosDaemon {
	t.Helper()
	return startShardedChaosDaemon(t, journal, maxActive, 1)
}

func startShardedChaosDaemon(t *testing.T, journal string, maxActive, shards int) *chaosDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"APPROXD_CHAOS_CHILD=1",
		"APPROXD_CHAOS_JOURNAL="+journal,
		fmt.Sprintf("APPROXD_CHAOS_MAXACTIVE=%d", maxActive),
		fmt.Sprintf("APPROXD_CHAOS_SHARDS=%d", shards),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	cd := &chaosDaemon{t: t, cmd: cmd, done: make(chan error, 1)}
	go func() { cd.done <- cmd.Wait() }()
	t.Cleanup(cd.kill)

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addrCh <- a
			}
			// Keep draining so the child never blocks on stdout.
		}
	}()
	select {
	case cd.addr = <-addrCh:
	case err := <-cd.done:
		cd.done <- err
		t.Fatalf("chaos child exited before announcing its address: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("chaos child never announced its address")
	}
	return cd
}

func (cd *chaosDaemon) url(path string) string { return "http://" + cd.addr + path }

// kill SIGKILLs the child and reaps it; idempotent so it doubles as
// the cleanup.
func (cd *chaosDaemon) kill() {
	if cd.cmd.Process != nil {
		_ = cd.cmd.Process.Kill()
	}
	select {
	case err := <-cd.done:
		cd.done <- err
	case <-time.After(10 * time.Second):
		cd.t.Error("chaos child did not die after SIGKILL")
	}
}

func (cd *chaosDaemon) signal(sig os.Signal) {
	cd.t.Helper()
	if err := cd.cmd.Process.Signal(sig); err != nil {
		cd.t.Fatalf("signal %v: %v", sig, err)
	}
}

func (cd *chaosDaemon) submit(spec JobSpec) string {
	cd.t.Helper()
	var out struct {
		ID string `json:"id"`
	}
	if code := postJSON(cd.t, cd.url("/v1/jobs"), spec, &out); code != http.StatusOK {
		cd.t.Fatalf("submit %s: HTTP %d", spec.Name, code)
	}
	return out.ID
}

func (cd *chaosDaemon) await(id string, timeout time.Duration) WireState {
	cd.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st WireState
		if code := getJSON(cd.t, cd.url("/v1/jobs/"+id), &st); code != http.StatusOK {
			cd.t.Fatalf("get %s: HTTP %d", id, code)
		}
		if st.Status.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			cd.t.Fatalf("%s still %s after %s", id, st.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (cd *chaosDaemon) stats() Stats {
	cd.t.Helper()
	var st Stats
	if code := getJSON(cd.t, cd.url("/v1/stats"), &st); code != http.StatusOK {
		cd.t.Fatalf("stats: HTTP %d", code)
	}
	return st
}

// assertRecovered awaits every id on the restarted daemon and asserts
// each result is byte-identical to an uninterrupted in-process run of
// the same spec — the chaos gate's core assertion. Comparison goes
// through JSON so a NaN sneaking into a wire field fails loudly
// instead of making DeepEqual silently false.
func assertRecovered(t *testing.T, cd *chaosDaemon, ids []string, specs []JobSpec) {
	t.Helper()
	for i, id := range ids {
		st := cd.await(id, 60*time.Second)
		if st.Status != StatusDone {
			t.Fatalf("%s (%s) recovered to %s: %s", id, specs[i].Name, st.Status, st.Err)
		}
		if st.Result == nil {
			t.Fatalf("%s done without a result", id)
		}
		want := WireEstimates(directRun(t, specs[i]).Outputs)
		if got, wantJSON := mustJSON(t, st.Result.Outputs), mustJSON(t, want); got != wantJSON {
			t.Errorf("%s (%s) outputs diverged from the uninterrupted control:\n got %s\nwant %s",
				id, specs[i].Name, got, wantJSON)
		}
	}
}

// TestChaosKillAfterAckRecovery: SIGKILL the daemon immediately after
// it acknowledges the submissions — the journal's fsync-before-ack
// guarantee means every acked job must survive, re-execute, and match
// the control bit for bit. Also proves idempotency keys dedup across
// the restart: resubmitting the same keyed spec returns the original
// id instead of running the job twice.
func TestChaosKillAfterAckRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness re-execs the test binary; skipped in -short")
	}
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	specs := chaosSpecs()

	cd := startChaosDaemon(t, journal, 1)
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = cd.submit(spec)
	}
	cd.kill()

	cd2 := startChaosDaemon(t, journal, 2)
	assertRecovered(t, cd2, ids, specs)
	for i, spec := range specs {
		if again := cd2.submit(spec); again != ids[i] {
			t.Errorf("keyed resubmit of %s returned %s, want original %s (idempotency lost across restart)",
				spec.Name, again, ids[i])
		}
	}
	st := cd2.stats()
	if st.Done < len(specs) {
		t.Errorf("stats report %d done, want at least %d", st.Done, len(specs))
	}
}

// TestChaosKillMidExecutionRecovery: wait until the daemon is
// actually executing (or has finished) work, then SIGKILL. Buffered
// admit/done records may be lost — recovery must re-execute from the
// journaled spec + seed and still match the control exactly.
func TestChaosKillMidExecutionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness re-execs the test binary; skipped in -short")
	}
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	specs := chaosSpecs()

	cd := startChaosDaemon(t, journal, 1)
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = cd.submit(spec)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := cd.stats()
		if st.Active >= 1 || st.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never started executing")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cd.kill()

	cd2 := startChaosDaemon(t, journal, 2)
	assertRecovered(t, cd2, ids, specs)
}

// TestChaosKillMidStreamRecovery: kill while a client is reading the
// early-result stream. The half-read stream dies with the daemon; the
// restarted daemon re-executes and a fresh stream replays the whole
// run to its terminal frame with the same final answer.
func TestChaosKillMidStreamRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness re-execs the test binary; skipped in -short")
	}
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	specs := chaosSpecs()

	cd := startChaosDaemon(t, journal, 1)
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = cd.submit(spec)
	}
	resp, err := http.Get(cd.url("/v1/jobs/" + ids[0] + "/stream"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Logf("stream close: %v", err)
		}
	}()
	// One frame (or clean EOF on a fast job) proves the stream was
	// live; then the kill lands mid-conversation.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Logf("stream ended before the kill: %v", err)
	}
	cd.kill()

	cd2 := startChaosDaemon(t, journal, 2)
	assertRecovered(t, cd2, ids, specs)

	// The recovered job's stream must still end in a terminal frame.
	resp2, err := http.Get(cd2.url("/v1/jobs/" + ids[0] + "/stream"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp2.Body.Close(); err != nil {
			t.Logf("stream close: %v", err)
		}
	}()
	var last string
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			last = sc.Text()
		}
	}
	if !strings.Contains(last, `"status":"done"`) {
		t.Errorf("recovered stream's last frame is not terminal: %s", last)
	}
}

// TestChaosShardedKillRecovery: the fleet version of the mid-execution
// kill. A 2-shard daemon journals one segment per shard with each
// job's shard assignment; the restarted 2-shard daemon must replay
// every job onto its original shard (the ids, which carry the shard,
// still resolve) and match the uninterrupted control byte for byte.
// A restart with fewer shards must refuse to boot rather than
// silently re-place the recovered jobs.
func TestChaosShardedKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness re-execs the test binary; skipped in -short")
	}
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	specs := chaosSpecs()
	// Tenants chosen so the workload provably lands on both shards
	// (tenant-0 and tenant-1 place on shard 0, tenant-4 on shard 1 of
	// a 2-shard ring; TestFleetPlacementDeterministicAndBounded pins
	// the mapping's stability).
	tenants := []string{"tenant-0", "tenant-4", "tenant-1"}
	for i := range specs {
		specs[i].Tenant = tenants[i%len(tenants)]
	}

	cd := startShardedChaosDaemon(t, journal, 1, 2)
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = cd.submit(spec)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := cd.stats()
		if st.Active >= 1 || st.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never started executing")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cd.kill()

	// Booting with half the shards would orphan a journal segment; the
	// child must exit with an error before serving.
	shrunk := exec.Command(os.Args[0])
	shrunk.Env = append(os.Environ(),
		"APPROXD_CHAOS_CHILD=1",
		"APPROXD_CHAOS_JOURNAL="+journal,
		"APPROXD_CHAOS_MAXACTIVE=1",
		"APPROXD_CHAOS_SHARDS=1",
	)
	if out, err := shrunk.CombinedOutput(); err == nil {
		t.Fatalf("1-shard restart over a 2-shard journal succeeded; want a refused boot\n%s", out)
	}

	cd2 := startShardedChaosDaemon(t, journal, 2, 2)
	assertRecovered(t, cd2, ids, specs)
	st := cd2.stats()
	if st.Shards != 2 {
		t.Errorf("restarted fleet reports %d shards, want 2", st.Shards)
	}
}

// TestChaosDrainInterruptedByKillRecovery: SIGTERM starts a graceful
// drain, then an impatient SIGKILL lands before it finishes — the
// worst-case supervisor. Whatever the drain managed to flush, the
// journal must still reconstruct every acked job byte-identically.
func TestChaosDrainInterruptedByKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness re-execs the test binary; skipped in -short")
	}
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	specs := chaosSpecs()

	cd := startChaosDaemon(t, journal, 1)
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = cd.submit(spec)
	}
	cd.signal(syscall.SIGTERM)
	cd.kill()

	cd2 := startChaosDaemon(t, journal, 2)
	assertRecovered(t, cd2, ids, specs)
}
