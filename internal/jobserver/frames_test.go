package jobserver

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"approxhadoop/internal/wire"
)

// fabricateJob installs a hand-built job state so FramesFrom can be
// unit-tested without timing games. Safe because tests run before/
// without the driver goroutine touching this id.
func fabricateJob(s *Service, id string, status JobStatus, frames int) {
	st := &JobState{ID: id, Status: status}
	for i := 0; i < frames; i++ {
		final := status == StatusDone && i == frames-1
		st.frames = append(st.frames, newJobFrame(i, float64(i), status, final, nil))
	}
	s.mu.Lock()
	s.states[id] = st
	s.mu.Unlock()
}

// frameSeq decodes an encoded frame's sequence number.
func frameSeq(t *testing.T, f *encFrame) int {
	t.Helper()
	wf, err := wire.DecodeJobFrame(f.bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return wf.Seq
}

// TestFramesFromDropToLatest: a live job with a subscriber more than
// maxLag frames behind skips the backlog and resumes at the newest
// frame — the drop is visible as a Seq gap, and the cursor lands past
// the end so the subscriber is caught up.
func TestFramesFromDropToLatest(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	fabricateJob(s, "job-live", StatusRunning, 20)

	fresh, status, next, err := s.FramesFrom("job-live", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusRunning {
		t.Fatalf("status = %s, want running", status)
	}
	if len(fresh) != 1 {
		t.Fatalf("lagging subscriber got %d frames, want 1 (drop to latest)", len(fresh))
	}
	if seq := frameSeq(t, fresh[0]); seq != 19 {
		t.Errorf("dropped-to frame has seq %d, want 19", seq)
	}
	if next != 20 {
		t.Errorf("cursor = %d, want 20", next)
	}

	// Within the lag budget nothing is dropped.
	fresh, _, _, err = s.FramesFrom("job-live", 17, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 3 {
		t.Errorf("in-budget subscriber got %d frames, want all 3", len(fresh))
	}
}

// TestFramesFromTerminalReplaysInFull: terminal jobs are history, not
// a live feed — every frame replays no matter how small the lag
// budget, so late readers still get the complete early-result series.
func TestFramesFromTerminalReplaysInFull(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	fabricateJob(s, "job-done", StatusDone, 20)

	fresh, status, next, err := s.FramesFrom("job-done", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusDone {
		t.Fatalf("status = %s, want done", status)
	}
	if len(fresh) != 20 || next != 20 {
		t.Fatalf("terminal replay returned %d frames (cursor %d), want all 20", len(fresh), next)
	}
	for i, f := range fresh {
		if seq := frameSeq(t, f); seq != i {
			t.Fatalf("frame %d has seq %d", i, seq)
		}
	}
}

// TestStreamEncodeOnceFanout: 64 concurrent subscribers replaying a
// finished job's stream share the frame buffers encoded while the job
// ran — the fan-out itself performs zero wire encodes, and every
// subscriber receives byte-identical payloads.
func TestStreamEncodeOnceFanout(t *testing.T) {
	_, ts := startDaemon(t, Config{SnapshotEvery: 2}, false)
	spec := JobSpec{Name: "mcast", App: "total-size", Blocks: 64, LinesPerBlock: 100, Seed: 4}
	var idResp struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", spec, &idResp); code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	// First read drives the job to terminal; all encodes happen here.
	first := readBinaryStream(t, ts.URL, idResp.ID)
	if bytes.Count(first, []byte{}) == 0 {
		t.Fatal("empty stream")
	}

	const subs = 64
	before := wire.Encodes()
	bodies := make([][]byte, subs)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i] = readBinaryStream(t, ts.URL, idResp.ID)
		}(i)
	}
	wg.Wait()
	if delta := wire.Encodes() - before; delta != 0 {
		t.Errorf("fan-out to %d subscribers performed %d encodes, want 0 (one shared buffer per frame)", subs, delta)
	}
	for i, b := range bodies {
		if !bytes.Equal(b, first) {
			t.Fatalf("subscriber %d received different bytes than the first reader", i)
		}
	}
}

// readBinaryStream fetches a job's whole binary stream body.
func readBinaryStream(t *testing.T, base, id string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: HTTP %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("Content-Type = %q, want %q (binary negotiation failed)", ct, wire.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestSlowSubscriberDoesNotDelayOthers: one watcher opens the stream
// and never reads a byte; a second watcher and the job itself must
// proceed to completion anyway — the engine never writes to
// subscriber sockets, and each handler blocks only its own goroutine.
func TestSlowSubscriberDoesNotDelayOthers(t *testing.T) {
	_, ts := startDaemon(t, Config{SnapshotEvery: 2}, false)
	spec := JobSpec{Name: "stuck-watcher", App: "clients", Blocks: 64, LinesPerBlock: 100, Seed: 9}
	var idResp struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", spec, &idResp); code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}

	// The stalled watcher: a raw connection that sends the request and
	// then never reads, with a tiny lag budget so catching it up later
	// would drop to latest rather than replay a backlog.
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/jobs/%s/stream?lag=2 HTTP/1.1\r\nHost: %s\r\n\r\n", idResp.ID, u.Host)

	// The healthy watcher must reach the terminal frame promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		readBinaryStream(t, ts.URL, idResp.ID)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("healthy subscriber starved by a stalled one")
	}

	// And the stalled connection is still alive (the server didn't
	// crash on it): reading now yields a valid HTTP response.
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("stalled watcher cannot read its response: %v", err)
	}
	if want := "HTTP/1.1 200"; len(line) < len(want) || line[:len(want)] != want {
		t.Fatalf("stalled watcher got %q, want a 200 stream", line)
	}
}
