package jobserver

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"approxhadoop/internal/mapreduce"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// resultBytes is the bitwise-comparison form of a result: the journal
// encoding round-trips every field including NaN/Inf error bounds, so
// equal strings mean byte-identical results.
func resultBytes(t *testing.T, res *mapreduce.Result) string {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	return mustJSON(t, toJournalResult(res))
}

// directRun executes a spec on a fresh private cluster — the
// uninterrupted control the recovered daemon must match.
func directRun(t *testing.T, spec JobSpec) *mapreduce.Result {
	t.Helper()
	job, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(New(Config{SnapshotEvery: -1}).Engine(), job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func recoverySpecs() []JobSpec {
	return []JobSpec{
		{Name: "a-precise", App: "total-size", Blocks: 12, LinesPerBlock: 60, Seed: 7},
		{Name: "b-sampled", App: "project-popularity", Blocks: 16, LinesPerBlock: 60, Seed: 8,
			Controller: "static", SampleRatio: 0.5},
		{Name: "c-dropped", App: "clients", Blocks: 12, LinesPerBlock: 60, Seed: 9,
			Controller: "static", SampleRatio: 0.5, DropRatio: 0.25},
	}
}

// TestRecoverRestoresCompleted: jobs that finished before the crash
// come back verbatim from their journaled terminal records — status,
// timeline, counters, and bit-for-bit outputs — with no re-execution.
func TestRecoverRestoresCompleted(t *testing.T) {
	path := tempJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{MaxQueue: 8, SnapshotEvery: -1})
	svc.UseJournal(j)
	before := svc.Replay(recoverySpecs())
	for _, st := range before {
		if st.Status != StatusDone {
			t.Fatalf("%s: %s %s", st.Spec.Name, st.Status, st.Err)
		}
	}
	svc.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{MaxQueue: 8, SnapshotEvery: -1})
	svc2.UseJournal(j2)
	rs, err := svc2.Recover(recs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if rs.Terminal != len(before) || rs.Requeued != 0 {
		t.Fatalf("recovery stats %+v, want %d terminal / 0 requeued", rs, len(before))
	}
	for _, want := range before {
		got, ok := svc2.JobInfo(want.ID)
		if !ok {
			t.Fatalf("job %s lost in recovery", want.ID)
		}
		//lint:ignore nofloateq restored timeline fields must match the journaled values bit for bit
		timelineMatches := got.SubmitVT == want.SubmitVT && got.StartVT == want.StartVT && got.EndVT == want.EndVT
		if got.Status != want.Status || !timelineMatches {
			t.Errorf("job %s restored as %+v, want %+v", want.ID, got, want)
		}
		if resultBytes(t, got.Result) != resultBytes(t, want.Result) {
			t.Errorf("job %s: restored result not byte-identical", want.ID)
		}
		if len(got.Snapshots) == 0 {
			t.Errorf("job %s: restored without a terminal snapshot; streams would hang", want.ID)
		}
	}
	// Fresh ids continue past every journaled one.
	id, err := svc2.Submit(JobSpec{App: "total-size", Blocks: 8, LinesPerBlock: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, taken := svc2.JobInfo(id); !taken {
		t.Fatalf("post-recovery submit id %s not registered", id)
	}
	for _, want := range before {
		if id == want.ID {
			t.Fatalf("post-recovery submit reused id %s", id)
		}
	}
}

// TestRecoverReexecutesInterrupted: jobs the crash caught queued or
// running have only submit (and maybe admit) records; recovery
// re-admits them in original order and re-executes them from (spec,
// seed) to results byte-identical to an uninterrupted run.
func TestRecoverReexecutesInterrupted(t *testing.T) {
	path := tempJournal(t)
	specs := recoverySpecs()
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"job-0000", "job-0001", "job-0002"}
	for i, spec := range specs {
		spec := spec
		if err := j.Append(JournalRecord{Op: JournalSubmit, ID: ids[i], Spec: &spec, SubmitVT: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The first job had been admitted; the rest were still queued.
	if err := j.Append(JournalRecord{Op: JournalAdmit, ID: ids[0], StartVT: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{MaxQueue: 8, SnapshotEvery: -1})
	svc.UseJournal(j2)
	rs, err := svc.Recover(recs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if rs.Requeued != len(specs) || rs.Terminal != 0 {
		t.Fatalf("recovery stats %+v, want %d requeued", rs, len(specs))
	}
	svc.Engine().Run()
	for i, spec := range specs {
		st, ok := svc.JobInfo(ids[i])
		if !ok {
			t.Fatalf("job %s not recovered", ids[i])
		}
		if st.Status != StatusDone {
			t.Fatalf("recovered %s: %s %s", ids[i], st.Status, st.Err)
		}
		want := directRun(t, spec)
		if mustJSON(t, toJournalResult(st.Result).Outputs) != mustJSON(t, toJournalResult(want).Outputs) {
			t.Errorf("job %s (%s): re-executed outputs not byte-identical to control run", ids[i], spec.Name)
		}
	}
}

// TestRecoverHonorsPendingCancel: a journaled cancel with no terminal
// record means the daemon died mid-kill; recovery must finalize the
// cancellation, not resurrect the job.
func TestRecoverHonorsPendingCancel(t *testing.T) {
	path := tempJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := recoverySpecs()[0]
	if err := j.Append(JournalRecord{Op: JournalSubmit, ID: "job-0000", Spec: &spec, SubmitVT: 0}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Op: JournalAdmit, ID: "job-0000", StartVT: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Op: JournalCancel, ID: "job-0000", EndVT: 5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{SnapshotEvery: -1})
	svc.UseJournal(j2)
	rs, err := svc.Recover(recs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if rs.Canceled != 1 || rs.Requeued != 0 {
		t.Fatalf("recovery stats %+v, want 1 canceled / 0 requeued", rs)
	}
	st, ok := svc.JobInfo("job-0000")
	if !ok || st.Status != StatusCanceled {
		t.Fatalf("job-0000 recovered as %+v, want canceled", st)
	}
}

// TestIdempotencyDedup: the same key submitted twice runs once; the
// duplicate is answered with the original id.
func TestIdempotencyDedup(t *testing.T) {
	svc := New(Config{MaxQueue: 8, SnapshotEvery: -1})
	spec := recoverySpecs()[0]
	spec.IdempotencyKey = "retry-me"
	id1, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("duplicate key got new job %s, want original %s", id2, id1)
	}
	if n := len(svc.Jobs()); n != 1 {
		t.Fatalf("%d jobs after duplicate submit, want 1", n)
	}
}

// TestIdempotencyDedupAcrossRecovery: keys are journaled with the
// spec, so a blind retry after a crash-and-restart is answered with
// the original (restored) job and its original result.
func TestIdempotencyDedupAcrossRecovery(t *testing.T) {
	path := tempJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{MaxQueue: 8, SnapshotEvery: -1})
	svc.UseJournal(j)
	spec := recoverySpecs()[1]
	spec.IdempotencyKey = "billing-q3"
	before := svc.Replay([]JobSpec{spec})
	if before[0].Status != StatusDone {
		t.Fatalf("%s %s", before[0].Status, before[0].Err)
	}
	svc.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{MaxQueue: 8, SnapshotEvery: -1})
	svc2.UseJournal(j2)
	if _, err := svc2.Recover(recs); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	id, err := svc2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id != before[0].ID {
		t.Fatalf("post-recovery duplicate got %s, want original %s", id, before[0].ID)
	}
	st, _ := svc2.JobInfo(id)
	if resultBytes(t, st.Result) != resultBytes(t, before[0].Result) {
		t.Fatal("deduped job's restored result not byte-identical to the original")
	}
}

// TestDrainQueuedJobsRecovered is the admission-queue drain contract:
// a drain stops dispatch, submissions fail with ErrDraining, and the
// queued-but-never-run jobs ride their journaled submit records into
// the next boot, where they execute to byte-identical results.
func TestDrainQueuedJobsRecovered(t *testing.T) {
	path := tempJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// MaxActive 1 and no engine pumping: the first job sits "running"
	// forever, the second stays queued — a frozen mid-flight daemon.
	svc := New(Config{MaxActive: 1, MaxQueue: 8, SnapshotEvery: -1})
	svc.UseJournal(j)
	specs := recoverySpecs()[:2]
	var ids []string
	for _, spec := range specs {
		id, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if svc.ActiveCount() != 1 || svc.QueuedCount() != 1 {
		t.Fatalf("active %d queued %d, want 1/1", svc.ActiveCount(), svc.QueuedCount())
	}

	svc.StartDrain()
	if !svc.Draining() || !svc.Stats().Draining {
		t.Fatal("drain not visible")
	}
	if _, err := svc.Submit(specs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
	// The kill lands here: journal closed with both jobs incomplete.
	svc.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{MaxActive: 1, MaxQueue: 8, SnapshotEvery: -1})
	svc2.UseJournal(j2)
	rs, err := svc2.Recover(recs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if rs.Requeued != 2 {
		t.Fatalf("recovery stats %+v, want 2 requeued", rs)
	}
	svc2.Engine().Run()
	for i, id := range ids {
		st, ok := svc2.JobInfo(id)
		if !ok || st.Status != StatusDone {
			t.Fatalf("recovered %s: %+v", id, st)
		}
		want := directRun(t, specs[i])
		if mustJSON(t, toJournalResult(st.Result).Outputs) != mustJSON(t, toJournalResult(want).Outputs) {
			t.Errorf("job %s: post-drain recovery diverged from control run", id)
		}
	}
}

// TestDrainHTTP503RetryAfter: over the wire, a draining daemon answers
// submissions with 503 + Retry-After and flips /readyz, while /healthz
// stays green (the process is healthy, just leaving).
func TestDrainHTTP503RetryAfter(t *testing.T) {
	d, ts := startDaemon(t, Config{SnapshotEvery: -1}, false)

	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	d.Service().StartDrain()

	buf := mustJSON(t, JobSpec{App: "total-size", Blocks: 8, LinesPerBlock: 50, Seed: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200", code)
	}
}

