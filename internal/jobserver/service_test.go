package jobserver

import (
	"strings"
	"testing"

	"approxhadoop/internal/stats"
)

// heavySpec/lightSpec build precise jobs whose only difference is bulk.
func heavySpec(name string, blocks int) JobSpec {
	return JobSpec{Name: name, App: "total-size", Blocks: blocks, LinesPerBlock: 100, Seed: 11}
}

func byName(t *testing.T, states []JobState, name string) JobState {
	t.Helper()
	for _, st := range states {
		if st.Spec.Name == name {
			return st
		}
	}
	t.Fatalf("no job named %q in %d states", name, len(states))
	return JobState{}
}

// TestFairShareAvoidsStarvation is the bounded-wait acceptance check.
// Four heavy jobs and one small one are submitted together. Under FIFO
// arbitration the heavies monopolize the cluster in admission order
// and the small job runs last; under fair-share its quota is
// guaranteed, so it finishes before any heavy job — and far earlier
// than its own FIFO completion.
func TestFairShareAvoidsStarvation(t *testing.T) {
	specs := []JobSpec{
		heavySpec("a-heavy-1", 120), heavySpec("a-heavy-2", 120),
		heavySpec("a-heavy-3", 120), heavySpec("a-heavy-4", 120),
		heavySpec("z-small", 8),
	}
	run := func(policy Policy) []JobState {
		svc := New(Config{Policy: policy, MaxQueue: 16, SnapshotEvery: -1})
		states := svc.Replay(specs)
		for _, st := range states {
			if st.Status != StatusDone {
				t.Fatalf("%s under %s: %s %s", st.Spec.Name, policy, st.Status, st.Err)
			}
		}
		return states
	}
	fifo := run(PolicyFIFO)
	fair := run(PolicyFair)

	fairSmall := byName(t, fair, "z-small")
	for _, name := range []string{"a-heavy-1", "a-heavy-2", "a-heavy-3", "a-heavy-4"} {
		if h := byName(t, fair, name); h.EndVT < fairSmall.EndVT {
			t.Errorf("fair: %s finished at %.2f before small job at %.2f — small job starved",
				name, h.EndVT, fairSmall.EndVT)
		}
	}
	fifoSmall := byName(t, fifo, "z-small")
	if fairSmall.EndVT >= fifoSmall.EndVT {
		t.Errorf("fair-share gave the small job no advantage: fair end %.2f vs fifo end %.2f",
			fairSmall.EndVT, fifoSmall.EndVT)
	}
}

// TestFairShareWeights: with equal bulk, a weight-3 job holds a larger
// slot share than a weight-1 rival and finishes first.
func TestFairShareWeights(t *testing.T) {
	specs := []JobSpec{
		{Name: "a-gold", App: "total-size", Blocks: 160, LinesPerBlock: 100, Seed: 5, Weight: 3},
		{Name: "b-bronze", App: "total-size", Blocks: 160, LinesPerBlock: 100, Seed: 5, Weight: 1},
	}
	svc := New(Config{Policy: PolicyFair, MaxQueue: 8, SnapshotEvery: -1})
	states := svc.Replay(specs)
	gold, bronze := byName(t, states, "a-gold"), byName(t, states, "b-bronze")
	if gold.Status != StatusDone || bronze.Status != StatusDone {
		t.Fatalf("statuses: %s / %s", gold.Status, bronze.Status)
	}
	if gold.EndVT >= bronze.EndVT {
		t.Errorf("weight 3 job ended at %.2f, not before weight 1 job at %.2f", gold.EndVT, bronze.EndVT)
	}
}

// TestFIFOCompletionOrder: same-size jobs complete in admission order
// under FIFO arbitration.
func TestFIFOCompletionOrder(t *testing.T) {
	specs := []JobSpec{heavySpec("a-1", 60), heavySpec("b-2", 60), heavySpec("c-3", 60)}
	svc := New(Config{Policy: PolicyFIFO, MaxQueue: 8, SnapshotEvery: -1})
	states := svc.Replay(specs)
	for i := 1; i < len(states); i++ {
		if states[i].EndVT < states[i-1].EndVT {
			t.Errorf("FIFO inversion: %s ended at %.2f before %s at %.2f",
				states[i].Spec.Name, states[i].EndVT, states[i-1].Spec.Name, states[i-1].EndVT)
		}
	}
}

// TestAdmissionBackpressure: with one active slot and a two-deep
// queue, five simultaneous submissions yield exactly two ErrBusy
// rejections; the admitted three all finish.
func TestAdmissionBackpressure(t *testing.T) {
	specs := make([]JobSpec, 5)
	for i := range specs {
		specs[i] = heavySpec("job-"+string(rune('a'+i)), 16)
	}
	svc := New(Config{MaxActive: 1, MaxQueue: 2, SnapshotEvery: -1})
	states := svc.Replay(specs)
	var done, rejected int
	for _, st := range states {
		switch st.Status {
		case StatusDone:
			done++
		case StatusRejected:
			rejected++
			if !strings.Contains(st.Err, "queue full") {
				t.Errorf("rejection error %q does not mention the queue", st.Err)
			}
		default:
			t.Errorf("%s: unexpected status %s (%s)", st.Spec.Name, st.Status, st.Err)
		}
	}
	if done != 3 || rejected != 2 {
		t.Fatalf("done=%d rejected=%d, want 3/2", done, rejected)
	}
	if st := svc.Stats(); st.Rejected != 2 || st.Done != 3 {
		t.Errorf("stats disagree: %+v", st)
	}
}

// TestCancelQueuedAndRunning exercises both cancellation paths on a
// manually driven engine: one job is killed mid-run, one is plucked
// from the admission queue, and a third unrelated job still completes.
func TestCancelQueuedAndRunning(t *testing.T) {
	svc := New(Config{MaxActive: 1, MaxQueue: 8, SnapshotEvery: -1})
	eng := svc.Engine()
	var runID, queuedID, survivorID string
	eng.At(0, func() {
		var err error
		if runID, err = svc.Submit(heavySpec("running", 60)); err != nil {
			t.Fatalf("submit running: %v", err)
		}
		if queuedID, err = svc.Submit(heavySpec("queued", 16)); err != nil {
			t.Fatalf("submit queued: %v", err)
		}
		if survivorID, err = svc.Submit(heavySpec("survivor", 16)); err != nil {
			t.Fatalf("submit survivor: %v", err)
		}
	})
	// Scheduled after the submissions at the same instant: the engine's
	// FIFO tie-break runs this while the first job is mid-flight and
	// the second still queued (whole jobs finish in under a virtual
	// millisecond here, so any later time would miss them).
	eng.At(0, func() {
		if err := svc.Cancel(queuedID); err != nil {
			t.Errorf("cancel queued: %v", err)
		}
		if err := svc.Cancel(runID); err != nil {
			t.Errorf("cancel running: %v", err)
		}
	})
	eng.Run()

	run, _ := svc.JobInfo(runID)
	if run.Status != StatusCanceled || !strings.Contains(run.Err, "canceled") {
		t.Errorf("running job: %s %q", run.Status, run.Err)
	}
	queued, _ := svc.JobInfo(queuedID)
	if queued.Status != StatusCanceled || !strings.Contains(queued.Err, "queued") {
		t.Errorf("queued job: %s %q", queued.Status, queued.Err)
	}
	survivor, _ := svc.JobInfo(survivorID)
	if survivor.Status != StatusDone {
		t.Errorf("survivor: %s %q", survivor.Status, survivor.Err)
	}
	if st := svc.Stats(); st.Canceled != 2 || st.Done != 1 {
		t.Errorf("stats: %+v", st)
	}
	if err := svc.Cancel(runID); err != nil {
		t.Errorf("cancel of terminal job should be a no-op, got %v", err)
	}
	if err := svc.Cancel("job-9999"); err == nil {
		t.Error("cancel of unknown job should error")
	}
}

// TestSnapshotsConvergeToFinal: streamed snapshots appear while the
// job runs, advance in virtual time, and the last one is exactly the
// job's final output.
func TestSnapshotsConvergeToFinal(t *testing.T) {
	spec := JobSpec{Name: "snap", App: "project-popularity", Blocks: 80, LinesPerBlock: 200,
		Seed: 9, Controller: "static", SampleRatio: 0.25}

	// Calibrate: how long does this job take unobserved?
	pre := New(Config{SnapshotEvery: -1}).Replay([]JobSpec{spec})
	if pre[0].Status != StatusDone {
		t.Fatalf("calibration run: %s %s", pre[0].Status, pre[0].Err)
	}
	runtime := pre[0].Result.Runtime

	svc := New(Config{SnapshotEvery: runtime / 8})
	states := svc.Replay([]JobSpec{spec})
	st := states[0]
	if st.Status != StatusDone {
		t.Fatalf("run: %s %s", st.Status, st.Err)
	}
	full, _ := svc.JobInfo(st.ID)
	snaps := full.Snapshots
	if len(snaps) < 3 {
		t.Fatalf("want >= 3 snapshots at period %.2f over runtime %.2f, got %d",
			runtime/8, runtime, len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].T <= snaps[i-1].T {
			t.Errorf("snapshot times not increasing: %.3f then %.3f", snaps[i-1].T, snaps[i].T)
		}
	}
	last := snaps[len(snaps)-1]
	compareOutputs(t, "final-snapshot", last.Estimates, full.Result.Outputs)
	if !stats.AlmostEqual(last.T, full.Result.Runtime, 0) {
		t.Errorf("terminal snapshot at %.3f, runtime %.3f", last.T, full.Result.Runtime)
	}
}

// TestStreamFromFollowsJob replays a job, then walks the snapshot
// stream with a cursor the way the HTTP handler does.
func TestStreamFromFollowsJob(t *testing.T) {
	spec := JobSpec{Name: "stream", App: "total-size", Blocks: 40, LinesPerBlock: 100, Seed: 3}
	svc := New(Config{SnapshotEvery: 5})
	states := svc.Replay([]JobSpec{spec})
	if states[0].Status != StatusDone {
		t.Fatalf("run: %s %s", states[0].Status, states[0].Err)
	}
	cursor, total := 0, 0
	for {
		fresh, status, next, err := svc.StreamFrom(states[0].ID, cursor)
		if err != nil {
			t.Fatal(err)
		}
		total += len(fresh)
		cursor = next
		if status.Terminal() {
			break
		}
	}
	full, _ := svc.JobInfo(states[0].ID)
	if total != len(full.Snapshots) {
		t.Errorf("stream delivered %d snapshots, state holds %d", total, len(full.Snapshots))
	}
	if _, _, _, err := svc.StreamFrom("nope", 0); err == nil {
		t.Error("StreamFrom of unknown job should error")
	}
}
