package jobserver

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startFleet boots a sharded daemon (no HTTP) and registers cleanup.
func startFleet(t *testing.T, cfg Config, shards int) *Daemon {
	t.Helper()
	d := NewShardedDaemon(cfg, shards, false)
	t.Cleanup(d.Stop)
	return d
}

// awaitFleetJob polls the fleet until the job is terminal.
func awaitFleetJob(t *testing.T, d *Daemon, id string) JobState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, ok := d.fleet.JobInfo(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.Status.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, st.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fleetWorkload is a small multi-tenant job mix that lands on several
// shards of a 4-shard fleet.
func fleetWorkload(n int) []JobSpec {
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = LoadSpec(7, i, 4)
	}
	return specs
}

// TestFleetShardCountOutputInvariant is the core determinism claim of
// the sharded daemon: placement chooses where a job runs, never what
// it computes. The same workload through 1-, 2-, and 4-shard fleets
// must produce byte-identical outputs per job name (scheduling virtual
// times may differ — co-location differs — but results may not).
func TestFleetShardCountOutputInvariant(t *testing.T) {
	specs := fleetWorkload(10)
	outputs := map[int]map[string]string{} // shards -> name -> outputs JSON
	for _, shards := range []int{1, 2, 4} {
		d := startFleet(t, Config{}, shards)
		got := map[string]string{}
		ids := make([]string, len(specs))
		for i, spec := range specs {
			id, _, err := d.Submit(spec)
			if err != nil {
				t.Fatalf("%d shards: submit %s: %v", shards, spec.Name, err)
			}
			ids[i] = id
		}
		for i, id := range ids {
			st := awaitFleetJob(t, d, id)
			if st.Status != StatusDone {
				t.Fatalf("%d shards: %s ended %s: %s", shards, specs[i].Name, st.Status, st.Err)
			}
			got[specs[i].Name] = mustJSON(t, st.Result.Outputs)
		}
		outputs[shards] = got
		d.Stop()
	}
	for _, shards := range []int{2, 4} {
		for name, want := range outputs[1] {
			if got := outputs[shards][name]; got != want {
				t.Errorf("%s diverged on the %d-shard fleet:\n got %s\nwant %s", name, shards, got, want)
			}
		}
	}
}

// TestFleetPlacementDeterministicAndBounded: placement is a pure
// function of (key, shard count) — two fleets of the same size agree
// on every key — and growing the fleet by one shard moves only a
// bounded fraction of keys (the consistent-hashing contract; a modulo
// router would move almost all of them).
func TestFleetPlacementDeterministicAndBounded(t *testing.T) {
	build := func(n int) *Fleet {
		svcs := make([]*Service, n)
		for i := range svcs {
			svcs[i] = New(ShardConfigs(Config{}, n)[i])
		}
		f := NewFleet(svcs, 0)
		t.Cleanup(f.Close)
		return f
	}
	f4a, f4b, f5 := build(4), build(4), build(5)

	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%04d", i)
	}
	moved := 0
	for _, k := range keys {
		a, b := f4a.PlacementShard(k), f4b.PlacementShard(k)
		if a != b {
			t.Fatalf("two 4-shard fleets disagree on %q: %d vs %d", k, a, b)
		}
		if f5.PlacementShard(k) != a {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no keys moved when growing 4 -> 5 shards; the new shard gets no load")
	}
	// Ideal movement is 1/5 of keys; allow generous slack but fail the
	// rehash-everything failure mode.
	if frac := float64(moved) / float64(len(keys)); frac > 0.45 {
		t.Errorf("%.0f%% of keys moved when growing 4 -> 5 shards; want roughly 20%%", frac*100)
	}
}

// TestFleetTenantQuota: with a quota of 1, a tenant's second
// submission bounces with ErrTenantQuota while the first is in
// flight, and the slot frees once the job is terminal. Other tenants
// are unaffected.
func TestFleetTenantQuota(t *testing.T) {
	d := startFleet(t, Config{TenantQuota: 1}, 2)
	// Big enough that it is still in flight when the next submit lands
	// microseconds later.
	spec := JobSpec{Name: "hog", App: "total-size", Blocks: 256, LinesPerBlock: 200, Seed: 5, Tenant: "acme"}
	id, _, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.fleet.TenantInFlight("acme"); got != 1 {
		t.Fatalf("TenantInFlight(acme) = %d after submit, want 1", got)
	}
	spec2 := spec
	spec2.Name = "hog-2"
	spec2.Seed = 6
	if _, _, err := d.Submit(spec2); err != ErrTenantQuota {
		t.Fatalf("second submit for acme: err = %v, want ErrTenantQuota", err)
	}
	// A different tenant is not throttled by acme's quota.
	other := spec2
	other.Name = "bystander"
	other.Tenant = "globex"
	if _, _, err := d.Submit(other); err != nil {
		t.Fatalf("submit for globex: %v", err)
	}

	awaitFleetJob(t, d, id)
	if got := d.fleet.TenantInFlight("acme"); got != 0 {
		t.Fatalf("TenantInFlight(acme) = %d after terminal, want 0", got)
	}
	if _, _, err := d.Submit(spec2); err != nil {
		t.Fatalf("resubmit for acme after release: %v", err)
	}
}

// bootJournaledFleet builds a fleet exactly as Serve does — per-shard
// configs, per-shard journal segments, recovery before the drivers
// start — without the listener.
func bootJournaledFleet(t *testing.T, base Config, path string, shards int) *Daemon {
	t.Helper()
	svcs := make([]*Service, 0, shards)
	for i, scfg := range ShardConfigs(base, shards) {
		svc := New(scfg)
		j, recs, err := OpenJournal(shardJournalPath(path, i))
		if err != nil {
			closeServices(svcs)
			t.Fatal(err)
		}
		svc.UseJournal(j)
		if _, err := svc.Recover(recs); err != nil {
			closeServices(svcs)
			t.Fatal(err)
		}
		svcs = append(svcs, svc)
	}
	d := NewFleetDaemon(svcs, false)
	t.Cleanup(d.Stop)
	return d
}

// TestFleetShardedJournalRecovery: a sharded daemon journals each
// job's shard assignment; a restart with the same shard count replays
// every job onto its original shard with the same id and byte-identical
// outputs.
func TestFleetShardedJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	specs := fleetWorkload(6)

	d1 := bootJournaledFleet(t, Config{}, path, 3)
	ids := make([]string, len(specs))
	want := make([]string, len(specs))
	for i, spec := range specs {
		id, _, err := d1.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		st := awaitFleetJob(t, d1, id)
		if st.Status != StatusDone {
			t.Fatalf("%s ended %s", id, st.Status)
		}
		want[i] = mustJSON(t, st.Result.Outputs)
	}
	d1.Stop()

	d2 := bootJournaledFleet(t, Config{}, path, 3)
	for i, id := range ids {
		st, ok := d2.fleet.JobInfo(id)
		if !ok {
			t.Fatalf("job %s not restored (original shard lost it)", id)
		}
		if st.Status != StatusDone {
			st = awaitFleetJob(t, d2, id)
		}
		if got := mustJSON(t, st.Result.Outputs); got != want[i] {
			t.Errorf("%s recovered with different outputs:\n got %s\nwant %s", id, got, want[i])
		}
	}
}

// TestRecoverRejectsForeignShardRecords: replaying a journal segment
// into the wrong shard must fail loudly instead of silently re-placing
// jobs (which would change their id sequence and stream identity).
func TestRecoverRejectsForeignShardRecords(t *testing.T) {
	cfgs := ShardConfigs(Config{}, 2)
	rec := submitRec(cfgs[1].IDPrefix+"0000", "stray", 9)
	rec.Shard = 1

	svc := New(cfgs[0]) // shard 0 must refuse shard 1's record
	t.Cleanup(svc.Close)
	_, err := svc.Recover([]JournalRecord{rec})
	if err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("Recover accepted a foreign shard's record (err = %v)", err)
	}
}
