// Encode-once snapshot multicast.
//
// The original stream endpoints re-encoded every snapshot to JSON once
// per subscriber, so a popular job's serving cost scaled as
// frames × subscribers. This file replaces that with a per-job (and,
// in streams.go, per-stream) frame log: each frame is encoded to the
// compact binary wire format exactly once, at creation, by the
// producer goroutine, and every subscriber shares the same buffer. The
// JSON view is derived lazily — at most once per frame, the first time
// a JSON subscriber needs it — and then shared the same way, so the
// legacy JSONL protocol also becomes encode-once.
//
// Frames are stamped with their status at creation time (running
// mid-job, done+final for the terminal snapshot). A job that fails or
// is canceled mid-run re-stamps only its last cached frame with the
// terminal status; all earlier frames are immutable forever. Because a
// frame's bytes never change after publication, subscribers at any
// cursor — live, resumed, or joining after a daemon restart — read
// byte-identical streams.
//
// Slow subscribers cannot stall anything structurally: the frame log
// is a pull model (FramesFrom blocks the subscriber's own HTTP handler
// goroutine, never the engine), and a subscriber whose cursor falls
// more than maxLag frames behind a live job is skipped forward to the
// latest frame. The Seq gap in its stream is the drop signal.
package jobserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/wire"
)

// encFrame is one published frame: the canonical binary payload
// (encoded exactly once, at creation) plus a lazily derived, cached
// JSON line for subscribers on the legacy protocol.
type encFrame struct {
	// bin is the canonical wire payload (without the length prefix).
	bin []byte
	// src retains the typed frame (*WireFrame or *WireWindow) the
	// payload was encoded from; the JSON view marshals it on demand.
	// Immutable after creation.
	src any
	// jsonLine caches the JSONL form: json.Marshal(src) + '\n',
	// byte-identical to what the legacy per-subscriber json.Encoder
	// produced. Installed at most once via CAS; concurrent first
	// readers may both marshal, exactly one result wins and is shared.
	jsonLine atomic.Pointer[[]byte]
}

// JSONLine returns the frame's cached JSONL encoding.
func (f *encFrame) JSONLine() ([]byte, error) {
	if p := f.jsonLine.Load(); p != nil {
		return *p, nil
	}
	b, err := json.Marshal(f.src)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	f.jsonLine.CompareAndSwap(nil, &b)
	return *f.jsonLine.Load(), nil
}

// WriteTo sends the frame to one subscriber in the negotiated format:
// length-prefixed binary, or a JSONL line. Pure fan-out — no encoding
// happens here beyond the one-time lazy JSON derivation.
func (f *encFrame) WriteTo(w io.Writer, binary bool) error {
	if binary {
		return wire.WriteFrame(w, f.bin)
	}
	line, err := f.JSONLine()
	if err != nil {
		return err
	}
	_, err = w.Write(line)
	return err
}

// toWireEstimates converts to the wire package's estimate form.
func toWireEstimates(ests []WireEstimate) []wire.Estimate {
	out := make([]wire.Estimate, len(ests))
	for i, e := range ests {
		out[i] = wire.Estimate{
			Key: e.Key, Value: e.Value, Epsilon: e.Epsilon, Confidence: e.Confidence,
			Lo: e.Lo, Hi: e.Hi, Exact: e.Exact, Unbounded: e.Unbounded,
		}
	}
	return out
}

// fromWireEstimates converts a decoded binary frame's estimates back
// to the HTTP wire form (client side).
func fromWireEstimates(ests []wire.Estimate) []WireEstimate {
	if ests == nil {
		return nil
	}
	out := make([]WireEstimate, len(ests))
	for i, e := range ests {
		out[i] = WireEstimate{
			Key: e.Key, Value: e.Value, Epsilon: e.Epsilon, Confidence: e.Confidence,
			Lo: e.Lo, Hi: e.Hi, Exact: e.Exact, Unbounded: e.Unbounded,
		}
	}
	return out
}

// encodeJobFrame produces the canonical binary payload of wf.
func encodeJobFrame(wf *WireFrame) []byte {
	return wire.AppendJobFrame(nil, &wire.JobFrame{
		Seq:       wf.Seq,
		T:         wf.T,
		Status:    string(wf.Status),
		Final:     wf.Final,
		Estimates: toWireEstimates(wf.Estimates),
	})
}

// newJobFrame builds and encodes one job snapshot frame.
func newJobFrame(seq int, t float64, status JobStatus, final bool, ests []mapreduce.KeyEstimate) *encFrame {
	wf := &WireFrame{Seq: seq, T: t, Status: status, Final: final, Estimates: WireEstimates(ests)}
	return &encFrame{bin: encodeJobFrame(wf), src: wf}
}

// synthJobFrame is the per-connection terminal marker for jobs that
// reached a terminal state with no frame to carry it (failed before
// any snapshot, or a fully caught-up resume): Seq is the cursor, no
// estimates — exactly the frame the JSONL protocol always synthesized.
func synthJobFrame(seq int, status JobStatus) *encFrame {
	wf := &WireFrame{Seq: seq, Status: status}
	return &encFrame{bin: encodeJobFrame(wf), src: wf}
}

// restampJobFrame rebuilds a frame with a terminal status (the one
// mutation the log permits, and only ever on the last frame). The
// estimate payload is shared with the original.
func restampJobFrame(old *encFrame, status JobStatus) *encFrame {
	wf := *(old.src.(*WireFrame))
	wf.Status = status
	wf.Final = false
	return &encFrame{bin: encodeJobFrame(&wf), src: &wf}
}

// FrameFromWire converts a decoded binary job frame to the HTTP wire
// form — the client-side half of the protocol (approxctl, loadgen).
func FrameFromWire(f *wire.JobFrame) WireFrame {
	return WireFrame{
		Seq:       f.Seq,
		T:         f.T,
		Status:    JobStatus(f.Status),
		Final:     f.Final,
		Estimates: fromWireEstimates(f.Estimates),
	}
}

// encodeWindowFrame produces the canonical binary payload of ww.
func encodeWindowFrame(ww *WireWindow) []byte {
	return wire.AppendWindowFrame(nil, &wire.WindowFrame{
		Seq: ww.Seq, Status: string(ww.Status), Final: ww.Final,
		Index: ww.Index, Start: ww.Start, End: ww.End, Records: ww.Records,
		Strata: ww.Strata, Processed: ww.Processed, Folded: ww.Folded,
		Sampled: ww.Sampled, Capacity: ww.Capacity, KeepFrac: ww.KeepFrac,
		Degraded: ww.Degraded, Partial: ww.Partial, Exact: ww.Exact,
		Latency: ww.Latency, Value: ww.Value, Epsilon: ww.Epsilon,
		Confidence: ww.Confidence, Unbounded: ww.Unbounded,
	})
}

// newWindowFrameEnc builds and encodes one stream window frame.
func newWindowFrameEnc(ww WireWindow) *encFrame {
	return &encFrame{bin: encodeWindowFrame(&ww), src: &ww}
}

// restampWindowFrame rebuilds a window frame with the stream's
// terminal status; final marks a stream that drained normally.
func restampWindowFrame(old *encFrame, status StreamStatus) *encFrame {
	ww := *(old.src.(*WireWindow))
	ww.Status = status
	ww.Final = status == StreamDone
	return &encFrame{bin: encodeWindowFrame(&ww), src: &ww}
}

// synthWindowFrame mirrors synthJobFrame for the stream plane.
func synthWindowFrame(seq int, status StreamStatus) *encFrame {
	ww := WireWindow{Seq: seq, Status: status}
	return &encFrame{bin: encodeWindowFrame(&ww), src: &ww}
}

// WindowFromWire converts a decoded binary window frame to the HTTP
// wire form (client side).
func WindowFromWire(f *wire.WindowFrame) WireWindow {
	return WireWindow{
		Seq: f.Seq, Status: StreamStatus(f.Status), Final: f.Final,
		Index: f.Index, Start: f.Start, End: f.End, Records: f.Records,
		Strata: f.Strata, Processed: f.Processed, Folded: f.Folded,
		Sampled: f.Sampled, Capacity: f.Capacity, KeepFrac: f.KeepFrac,
		Degraded: f.Degraded, Partial: f.Partial, Exact: f.Exact,
		Latency: f.Latency, Value: f.Value, Epsilon: f.Epsilon,
		Confidence: f.Confidence, Unbounded: f.Unbounded,
	}
}

// DefaultMaxLag is the slow-subscriber drop threshold: a live
// subscriber more than this many frames behind is skipped forward to
// the latest frame. Generous on purpose — jobs emit tens of frames, so
// only a genuinely wedged reader ever trips it; operators lower it per
// daemon (-max-lag) or per request (?lag=N).
const DefaultMaxLag = 256

// FramesFrom is the encode-once sibling of StreamFrom: it blocks until
// job id has frames beyond `have` or is terminal, then returns the
// fresh shared frames, the status, and the updated cursor. Each frame
// carries its own Seq, so drops appear to the client as Seq gaps.
//
// maxLag > 0 enables the slow-subscriber policy: while the job is
// live, a cursor more than maxLag frames behind the head jumps to the
// latest frame instead of replaying the backlog (terminal jobs replay
// in full — history is bounded and the engine no longer produces).
// Safe from any goroutine.
func (s *Service) FramesFrom(id string, have, maxLag int) ([]*encFrame, JobStatus, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if have < 0 {
		have = 0
	}
	for {
		st, ok := s.states[id]
		if !ok {
			return nil, "", have, fmt.Errorf("jobserver: no job %q", id)
		}
		if have > len(st.frames) {
			have = len(st.frames)
		}
		if !st.Status.Terminal() && maxLag > 0 && len(st.frames)-have > maxLag {
			have = len(st.frames) - 1
		}
		if len(st.frames) > have || st.Status.Terminal() {
			fresh := st.frames[have:len(st.frames):len(st.frames)]
			return fresh, st.Status, len(st.frames), nil
		}
		if s.closed {
			return nil, st.Status, have, errors.New("jobserver: service shut down")
		}
		s.cond.Wait()
	}
}
