package jobserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

func startDaemon(t *testing.T, cfg Config, hold bool) (*Daemon, *httptest.Server) {
	t.Helper()
	d := NewDaemon(New(cfg), hold)
	ts := httptest.NewServer(d.Handler())
	// Stop first: it closes the service, waking any handler blocked in
	// StreamFrom, so the listener close (which waits for in-flight
	// requests) cannot deadlock on a stuck stream.
	t.Cleanup(func() { d.Stop(); ts.Close() })
	return d, ts
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPSubmitResultStream is the live-mode smoke test: submit over
// HTTP, wait for completion, fetch the result, and verify the stream
// replays every snapshot ending in a final frame that matches it.
func TestHTTPSubmitResultStream(t *testing.T) {
	_, ts := startDaemon(t, Config{SnapshotEvery: 5}, false)

	spec := JobSpec{Name: "smoke", App: "total-size", Blocks: 40, LinesPerBlock: 100, Seed: 3}
	var idResp struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", spec, &idResp); code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}

	// The driver runs virtual time as fast as it can; poll briefly.
	var state WireState
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+idResp.ID, &state); code != http.StatusOK {
			t.Fatalf("get: HTTP %d", code)
		}
		if state.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", state.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state.Status != StatusDone {
		t.Fatalf("job %s: %s %s", idResp.ID, state.Status, state.Err)
	}

	var result WireResult
	if code := getJSON(t, ts.URL+"/v1/jobs/"+idResp.ID+"/result", &result); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if len(result.Outputs) == 0 {
		t.Fatal("empty result")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + idResp.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var frames []WireFrame
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var f WireFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no stream frames")
	}
	last := frames[len(frames)-1]
	if !last.Final {
		t.Errorf("last frame not final: %+v", last)
	}
	if !reflect.DeepEqual(last.Estimates, result.Outputs) {
		t.Errorf("final frame diverges from result:\n%+v\nvs\n%+v", last.Estimates, result.Outputs)
	}

	var st Stats
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if st.Done != 1 || st.Submitted != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// TestHTTPHoldModeDeterminism is the service acceptance check for the
// HTTP layer: many clients hammer a holding daemon concurrently in
// arbitrary wall-clock order; releasing the batch must produce results
// byte-identical to a direct engine-level Replay of the same trace.
func TestHTTPHoldModeDeterminism(t *testing.T) {
	const n, seed = 12, 99
	cfg := Config{Policy: PolicyFair, MaxQueue: n + 1, SnapshotEvery: -1}
	_, ts := startDaemon(t, cfg, true)

	trace := GenerateTrace(n, seed)
	var wg sync.WaitGroup
	for _, spec := range trace {
		spec := spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ack struct {
				Held int `json:"held"`
			}
			if code := postJSON(t, ts.URL+"/v1/jobs", spec, &ack); code != http.StatusAccepted {
				t.Errorf("hold submit: HTTP %d", code)
			}
		}()
	}
	wg.Wait()

	var released []WireState
	if code := postJSON(t, ts.URL+"/v1/release", nil, &released); code != http.StatusOK {
		t.Fatalf("release: HTTP %d", code)
	}

	direct := New(cfg).Replay(trace)
	want := wireStates(direct)
	if len(released) != len(want) {
		t.Fatalf("released %d states, want %d", len(released), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(released[i], want[i]) {
			t.Errorf("job %d (%s) differs over HTTP:\n got %+v\nwant %+v",
				i, want[i].Spec.Name, released[i], want[i])
		}
	}
}

// TestHTTPReplayEndpoint runs a whole trace through /v1/replay and
// checks it against the engine-level Replay.
func TestHTTPReplayEndpoint(t *testing.T) {
	const n, seed = 8, 7
	cfg := Config{MaxQueue: n + 1, SnapshotEvery: -1}
	_, ts := startDaemon(t, cfg, false)

	trace := GenerateTrace(n, seed)
	var got []WireState
	if code := postJSON(t, ts.URL+"/v1/replay", trace, &got); code != http.StatusOK {
		t.Fatalf("replay: HTTP %d", code)
	}
	want := wireStates(New(cfg).Replay(trace))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HTTP replay differs from direct replay")
	}

	var list []WireState
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(list) != n {
		t.Errorf("list has %d jobs, want %d", len(list), n)
	}
}

// TestHTTPErrors covers the failure surface: bad specs, unknown ids,
// results before completion, and queue backpressure as 429.
func TestHTTPErrors(t *testing.T) {
	_, ts := startDaemon(t, Config{MaxActive: 1, MaxQueue: 1, SnapshotEvery: -1}, false)

	if code := postJSON(t, ts.URL+"/v1/jobs", JobSpec{App: "no-such-app"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad app: HTTP %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-9999", nil); code != http.StatusNotFound {
		t.Errorf("unknown id: HTTP %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-9999/result", nil); code != http.StatusNotFound {
		t.Errorf("unknown result: HTTP %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-9999/stream", nil); code != http.StatusNotFound {
		t.Errorf("unknown stream: HTTP %d", code)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-9999", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cancel: HTTP %d", resp.StatusCode)
	}

	// Wedge the driver: the wedge job's input generation happens inside
	// its Submit command on the driver goroutine, so the flood below is
	// admitted back to back with no chance for the queue to drain.
	wedgeDone := make(chan struct{})
	go func() {
		defer close(wedgeDone)
		buf, _ := json.Marshal(JobSpec{Name: "wedge", App: "total-size",
			Blocks: 20000, LinesPerBlock: 200, Seed: 1})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the wedge reach the driver

	const flood = 24
	codes := make(chan int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := JobSpec{Name: fmt.Sprintf("flood-%02d", i), App: "total-size",
				Blocks: 40, LinesPerBlock: 100, Seed: int64(i)}
			codes <- postJSON(t, ts.URL+"/v1/jobs", spec, nil)
		}()
	}
	wg.Wait()
	close(codes)
	saw429 := 0
	for code := range codes {
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			saw429++
		default:
			t.Fatalf("flood submit: HTTP %d", code)
		}
	}
	if saw429 == 0 {
		t.Error("queue of depth 1 never pushed back with 429")
	}
	<-wedgeDone

	// Put the wedge out of its misery so teardown doesn't simulate
	// twenty thousand map tasks.
	var list []WireState
	getJSON(t, ts.URL+"/v1/jobs", &list)
	for _, st := range list {
		if !st.Status.Terminal() {
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
			if err != nil {
				t.Fatal(err)
			}
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}
}
