package jobserver

import (
	"testing"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// replayTrace runs the canonical seeded 50-job trace on a fresh
// service with the given policy and worker-pool size.
func replayTrace(t *testing.T, policy Policy, workers, n int, seed int64) []JobState {
	t.Helper()
	svc := New(Config{Policy: policy, Workers: workers, MaxQueue: n + 1, SnapshotEvery: -1})
	states := svc.Replay(GenerateTrace(n, seed))
	for _, st := range states {
		if st.Status != StatusDone {
			t.Fatalf("job %s (%s): status %s, err %q", st.ID, st.Spec.Name, st.Status, st.Err)
		}
	}
	return states
}

// compareStates requires bitwise agreement of the full per-job
// outcome: admission and completion instants, runtime, energy, and
// every estimate with its error bound.
func compareStates(t *testing.T, label string, a, b []JobState) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: state counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.ID != y.ID || x.Spec.Name != y.Spec.Name || x.Status != y.Status {
			t.Fatalf("%s: job %d identity differs: %s/%s/%s vs %s/%s/%s",
				label, i, x.ID, x.Spec.Name, x.Status, y.ID, y.Spec.Name, y.Status)
		}
		if !stats.AlmostEqual(x.StartVT, y.StartVT, 0) || !stats.AlmostEqual(x.EndVT, y.EndVT, 0) {
			t.Errorf("%s: job %s timeline differs: [%v,%v] vs [%v,%v]",
				label, x.ID, x.StartVT, x.EndVT, y.StartVT, y.EndVT)
		}
		compareResult(t, label+"/"+x.ID, x.Result, y.Result)
	}
}

func compareResult(t *testing.T, label string, a, b *mapreduce.Result) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one result missing", label)
	}
	if a == nil {
		return
	}
	if !stats.AlmostEqual(a.Runtime, b.Runtime, 0) {
		t.Errorf("%s: runtimes differ: %v vs %v", label, a.Runtime, b.Runtime)
	}
	if !stats.AlmostEqual(a.EnergyWh, b.EnergyWh, 0) {
		t.Errorf("%s: energy differs: %v vs %v", label, a.EnergyWh, b.EnergyWh)
	}
	if a.Counters != b.Counters {
		t.Errorf("%s: counters differ: %+v vs %+v", label, a.Counters, b.Counters)
	}
	compareOutputs(t, label, a.Outputs, b.Outputs)
}

func compareOutputs(t *testing.T, label string, a, b []mapreduce.KeyEstimate) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: output counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Key != y.Key || x.Exact != y.Exact ||
			!stats.AlmostEqual(x.Est.Value, y.Est.Value, 0) ||
			!stats.AlmostEqual(x.Est.Err, y.Est.Err, 0) {
			t.Errorf("%s: output %d differs: %+v vs %+v", label, i, x, y)
		}
	}
}

// TestReplayDeterministicAcrossWorkers is the tentpole acceptance
// check: a seeded replay of 50 concurrently submitted jobs on one
// shared engine yields byte-identical per-job results — admission
// times, runtimes, energy, outputs, bounds — for any worker-pool size,
// under both scheduling policies. The decide/flush ordering of the
// slot arbiter composes with the two-plane compute pool, so wall-clock
// execution parallelism never touches the virtual timeline.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	const n, seed = 50, 42
	for _, policy := range []Policy{PolicyFIFO, PolicyFair} {
		t.Run(policy.String(), func(t *testing.T) {
			base := replayTrace(t, policy, 1, n, seed)
			again := replayTrace(t, policy, 1, n, seed)
			compareStates(t, "rerun", base, again)
			pooled := replayTrace(t, policy, 4, n, seed)
			compareStates(t, "workers=4", base, pooled)
		})
	}
}

// TestReplayOutputsPolicyInvariant checks the stronger cross-policy
// property: because GenerateTrace uses only precise and static
// controllers — whose drops are the tail of each job's own seeded
// launch order, independent of when slots were granted — every job's
// *outputs* (values and error bounds) are identical under FIFO and
// fair-share scheduling. Runtimes and energy legitimately differ;
// what the job computes does not.
func TestReplayOutputsPolicyInvariant(t *testing.T) {
	const n, seed = 50, 42
	fifo := replayTrace(t, PolicyFIFO, 1, n, seed)
	fair := replayTrace(t, PolicyFair, 1, n, seed)
	if len(fifo) != len(fair) {
		t.Fatalf("state counts differ: %d vs %d", len(fifo), len(fair))
	}
	for i := range fifo {
		if fifo[i].Spec.Name != fair[i].Spec.Name {
			t.Fatalf("job %d ordering differs: %s vs %s", i, fifo[i].Spec.Name, fair[i].Spec.Name)
		}
		compareOutputs(t, fifo[i].Spec.Name, fifo[i].Result.Outputs, fair[i].Result.Outputs)
	}
}

// TestReplayDirectRunAgreement: a job's service outputs must equal a
// direct single-tenant mapreduce run of the same spec and seed — the
// multi-tenant arbiter changes when tasks run, never what they
// compute.
func TestReplayDirectRunAgreement(t *testing.T) {
	spec := JobSpec{App: "total-size", Blocks: 24, LinesPerBlock: 100, Seed: 7,
		Controller: "static", SampleRatio: 0.25, DropRatio: 0.25, Name: "direct-check"}

	svc := New(Config{Policy: PolicyFair, MaxQueue: 8, SnapshotEvery: -1})
	states := svc.Replay([]JobSpec{spec})
	if states[0].Status != StatusDone {
		t.Fatalf("service run failed: %s %s", states[0].Status, states[0].Err)
	}

	job, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mapreduce.Run(New(Config{SnapshotEvery: -1}).Engine(), job)
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, "direct-vs-service", direct.Outputs, states[0].Result.Outputs)
}
