package jobserver

import "sync"

// engineShard is one engine's driver: a goroutine that owns a Service's
// virtual timeline plus the mailbox other goroutines reach it through.
// This is the single-daemon driver loop factored out so a fleet can run
// N of them side by side — each shard is a complete, independent
// jobserver (own cluster, own clock, own journal segment), and the
// shards share nothing but the process. That independence is what makes
// sharding free of determinism hazards: a job's (spec, seed) run is
// bit-identical on any shard, so placement only chooses *where*, never
// *what*.
type engineShard struct {
	idx  int
	svc  *Service
	cmds chan func()
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// newEngineShard starts the driver goroutine for svc.
func newEngineShard(idx int, svc *Service) *engineShard {
	sh := &engineShard{
		idx:  idx,
		svc:  svc,
		cmds: make(chan func(), 64),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go sh.loop()
	return sh
}

// loop is the driver: commands take priority (they schedule engine
// events at the current virtual time), then the engine is pumped one
// event at a time; an idle engine blocks on the mailbox.
func (sh *engineShard) loop() {
	defer close(sh.done)
	for {
		select {
		case fn := <-sh.cmds:
			fn()
		case <-sh.stop:
			return
		default:
			if sh.svc.eng.Step() {
				continue
			}
			// Idle engine: a quiescent point — every buffered journal
			// record (admissions, completions) describes settled state,
			// so group-commit them before blocking for new work.
			sh.svc.journalQuiesce()
			select {
			case fn := <-sh.cmds:
				fn()
			case <-sh.stop:
				return
			}
		}
	}
}

// do runs fn on the shard's driver goroutine and waits for it.
func (sh *engineShard) do(fn func()) error {
	ran := make(chan struct{})
	select {
	case sh.cmds <- func() { fn(); close(ran) }:
	case <-sh.stop:
		return ErrClosed
	}
	select {
	case <-ran:
		return nil
	case <-sh.done:
		return ErrClosed
	}
}

// halt stops the driver goroutine and closes the service (committing
// and closing its journal segment). Idempotent.
func (sh *engineShard) halt() {
	sh.once.Do(func() {
		close(sh.stop)
		<-sh.done
		sh.svc.Close()
	})
}
