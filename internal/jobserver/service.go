package jobserver

import (
	"errors"
	"fmt"
	"sync"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/mapreduce"
)

// ErrBusy is returned by Submit when the admission queue is full — the
// service's backpressure signal (HTTP maps it to 429).
var ErrBusy = errors.New("jobserver: admission queue full, retry later")

// Config sizes the service.
type Config struct {
	// Cluster describes the shared simulated cluster (zero value:
	// cluster.DefaultConfig(), the paper's 10-server Xeon rack).
	Cluster cluster.Config
	// Policy arbitrates map slots between active jobs.
	Policy Policy
	// MaxActive caps concurrently running jobs (default 8). Admission
	// additionally requires free reduce slots for the job.
	MaxActive int
	// MaxQueue bounds the admission queue (default 64); beyond it
	// Submit returns ErrBusy.
	MaxQueue int
	// Workers is the per-job compute-pool size applied to specs that
	// do not set their own (0 = GOMAXPROCS).
	Workers int
	// SnapshotEvery is the virtual-time period of streaming
	// early-result snapshots (default 40 s; <0 disables).
	SnapshotEvery float64
}

// JobStatus is the lifecycle state of a service job.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
	StatusRejected JobStatus = "rejected"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusRejected:
		return true
	}
	return false
}

// Snapshot is one streamed early-result frame: the job's current
// cross-partition estimates T virtual seconds after its start. As
// waves complete, successive snapshots carry narrowing confidence
// intervals; the last snapshot of a successful job is its final
// output.
type Snapshot struct {
	T         float64                 `json:"t"`
	Estimates []mapreduce.KeyEstimate `json:"estimates"`
}

// JobState is the externally visible state of one submission. Reads
// through JobInfo/Jobs return copies that are safe to use from any
// goroutine.
type JobState struct {
	ID       string            `json:"id"`
	Spec     JobSpec           `json:"spec"`
	Status   JobStatus         `json:"status"`
	SubmitVT float64           `json:"submitVT"` // virtual submission time
	StartVT  float64           `json:"startVT"`  // virtual admission time
	EndVT    float64           `json:"endVT"`    // virtual completion time
	Err      string            `json:"error,omitempty"`
	Result   *mapreduce.Result `json:"result,omitempty"`
	// Snapshots accumulate while the job runs; see StreamFrom.
	Snapshots []Snapshot `json:"-"`
}

// entry is the service's per-job scheduling state. Everything here
// belongs to the engine goroutine.
type entry struct {
	state    *JobState // mutations guarded by Service.mu
	job      *mapreduce.Job
	h        *mapreduce.Handle
	seq      int
	weight   float64
	grants   int  // map slots currently granted by the arbiter
	hungry   bool // denied a slot since the last kick
	canceled bool
}

// Service runs many jobs concurrently on one shared engine. All
// mutating methods (Submit, Cancel, Replay, and the engine callbacks)
// must run on the goroutine that drives the engine; the read methods
// (JobInfo, Jobs, Stats, StreamFrom) are safe from any goroutine.
type Service struct {
	cfg Config
	eng *cluster.Engine

	// Engine-goroutine state.
	entries       map[*mapreduce.Job]*entry
	queue         []*entry
	active        []*entry
	seq           int
	activeReduces int
	kickQueued    bool

	// Cross-goroutine state.
	mu                                   sync.Mutex
	cond                                 *sync.Cond
	states                               map[string]*JobState
	order                                []string // submission order of IDs
	closed                               bool
	nDone, nFailed, nCanceled, nRejected int
}

// New builds a service and its private simulated cluster.
func New(cfg Config) *Service {
	if cfg.Cluster.Servers == 0 {
		cfg.Cluster = cluster.DefaultConfig()
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 40
	}
	s := &Service{
		cfg:     cfg,
		eng:     cluster.New(cfg.Cluster),
		entries: make(map[*mapreduce.Job]*entry),
		states:  make(map[string]*JobState),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Engine exposes the shared engine for the goroutine driving it.
func (s *Service) Engine() *cluster.Engine { return s.eng }

// Policy returns the configured scheduling policy.
func (s *Service) Policy() Policy { return s.cfg.Policy }

// Close wakes every stream waiter; used at daemon shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Submit validates and enqueues one job at the current virtual time,
// dispatching immediately if capacity allows. Engine goroutine only.
func (s *Service) Submit(spec JobSpec) (string, error) {
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Lock()
		s.nRejected++
		s.mu.Unlock()
		return "", ErrBusy
	}
	job, err := spec.Build(s.cfg.Workers)
	if err != nil {
		s.mu.Lock()
		s.nRejected++
		s.mu.Unlock()
		return "", err
	}
	if rs := s.eng.TotalSlots(cluster.ReduceSlot); job.Reduces > rs {
		s.mu.Lock()
		s.nRejected++
		s.mu.Unlock()
		return "", fmt.Errorf("jobserver: spec wants %d reduces but the cluster has %d reduce slots", job.Reduces, rs)
	}
	id := fmt.Sprintf("job-%04d", s.seq)
	st := &JobState{ID: id, Spec: spec, Status: StatusQueued, SubmitVT: s.eng.Now()}
	weight := spec.Weight
	if weight <= 0 {
		weight = 1
	}
	e := &entry{state: st, job: job, seq: s.seq, weight: weight}
	s.seq++
	if s.cfg.SnapshotEvery > 0 {
		job.SnapshotEvery = s.cfg.SnapshotEvery
		job.OnSnapshot = func(t float64, ests []mapreduce.KeyEstimate) {
			s.mu.Lock()
			st.Snapshots = append(st.Snapshots, Snapshot{T: t, Estimates: ests})
			s.mu.Unlock()
			s.cond.Broadcast()
		}
	}
	s.entries[job] = e
	s.mu.Lock()
	s.states[id] = st
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.queue = append(s.queue, e)
	s.dispatch()
	return id, nil
}

// dispatch admits queued jobs in FIFO order while capacity allows: a
// free active slot and enough free reduce slots for the head job
// (head-of-line blocking — jobs never overtake within the queue, so
// admission order is reproducible).
func (s *Service) dispatch() {
	for len(s.queue) > 0 {
		if len(s.active) >= s.cfg.MaxActive {
			return
		}
		e := s.queue[0]
		if s.activeReduces+e.job.Reduces > s.eng.TotalSlots(cluster.ReduceSlot) {
			return
		}
		s.queue = s.queue[1:]
		h, err := mapreduce.Start(s.eng, e.job, mapreduce.StartOptions{
			Arbiter: &schedArbiter{s: s},
			OnDone:  func(res *mapreduce.Result, jobErr error) { s.onJobDone(e, res, jobErr) },
		})
		if err != nil {
			delete(s.entries, e.job)
			s.mu.Lock()
			e.state.Status = StatusFailed
			e.state.Err = err.Error()
			e.state.EndVT = s.eng.Now()
			s.nFailed++
			s.mu.Unlock()
			s.cond.Broadcast()
			continue
		}
		e.h = h
		s.active = append(s.active, e)
		s.activeReduces += e.job.Reduces
		s.mu.Lock()
		e.state.Status = StatusRunning
		e.state.StartVT = s.eng.Now()
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// onJobDone is the tracker's completion hook: it runs on the engine
// goroutine at the job's virtual completion instant, frees the job's
// admission capacity, records the outcome, and lets queued and waiting
// jobs advance.
func (s *Service) onJobDone(e *entry, res *mapreduce.Result, err error) {
	for i, f := range s.active {
		if f == e {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.activeReduces -= e.job.Reduces
	delete(s.entries, e.job)
	s.mu.Lock()
	st := e.state
	st.EndVT = s.eng.Now()
	switch {
	case err != nil && e.canceled:
		st.Status = StatusCanceled
		st.Err = err.Error()
		s.nCanceled++
	case err != nil:
		st.Status = StatusFailed
		st.Err = err.Error()
		s.nFailed++
	default:
		st.Status = StatusDone
		st.Result = res
		s.nDone++
		// The terminal snapshot: streams converge exactly to the
		// job's final outputs.
		st.Snapshots = append(st.Snapshots, Snapshot{T: res.Runtime, Estimates: res.Outputs})
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.dispatch()
	s.scheduleKicks()
}

// Cancel aborts a job. Queued jobs leave the queue; running jobs are
// killed at the current virtual time. Terminal jobs are left alone.
// Engine goroutine only.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	st, ok := s.states[id]
	terminal := ok && st.Status.Terminal()
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("jobserver: no job %q", id)
	}
	if terminal {
		return nil
	}
	for i, e := range s.queue {
		if e.state == st {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			delete(s.entries, e.job)
			s.mu.Lock()
			st.Status = StatusCanceled
			st.Err = "jobserver: canceled while queued"
			st.EndVT = s.eng.Now()
			s.nCanceled++
			s.mu.Unlock()
			s.cond.Broadcast()
			return nil
		}
	}
	for _, e := range s.active {
		if e.state == st {
			e.canceled = true
			e.h.Cancel()
			return nil
		}
	}
	return nil
}

// JobInfo returns a copy of one job's state. Safe from any goroutine.
func (s *Service) JobInfo(id string) (JobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok {
		return JobState{}, false
	}
	return copyState(st), true
}

// Jobs returns every job's state in submission order.
func (s *Service) Jobs() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobState, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, copyState(s.states[id]))
	}
	return out
}

// copyState snapshots a JobState under the service lock. The Result
// pointer and snapshot entries are immutable once published, so
// sharing them with readers is safe; only the slice header is copied.
func copyState(st *JobState) JobState {
	cp := *st
	cp.Snapshots = st.Snapshots[:len(st.Snapshots):len(st.Snapshots)]
	return cp
}

// StreamFrom blocks until job id has snapshots beyond `have` or
// reaches a terminal state, then returns the new snapshots, the
// (possibly terminal) status, and the updated cursor. Callers loop
// until Terminal; any goroutine may call it while the engine
// goroutine drives the job.
func (s *Service) StreamFrom(id string, have int) ([]Snapshot, JobStatus, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		st, ok := s.states[id]
		if !ok {
			return nil, "", have, fmt.Errorf("jobserver: no job %q", id)
		}
		if len(st.Snapshots) > have || st.Status.Terminal() {
			fresh := st.Snapshots[have:len(st.Snapshots):len(st.Snapshots)]
			return fresh, st.Status, len(st.Snapshots), nil
		}
		if s.closed {
			return nil, st.Status, have, errors.New("jobserver: service shut down")
		}
		s.cond.Wait()
	}
}

// Stats is the service-level dashboard snapshot.
type Stats struct {
	Policy      string  `json:"policy"`
	VirtualNow  float64 `json:"virtualNow"`
	EnergyWh    float64 `json:"energyWh"`
	Active      int     `json:"active"`
	Queued      int     `json:"queued"`
	Submitted   int     `json:"submitted"`
	Done        int     `json:"done"`
	Failed      int     `json:"failed"`
	Canceled    int     `json:"canceled"`
	Rejected    int     `json:"rejected"`
	MapSlots    int     `json:"mapSlots"`
	ReduceSlots int     `json:"reduceSlots"`
}

// Stats reports current service counters. The engine fields (virtual
// time, energy) are only consistent when sampled on the goroutine
// driving the engine — Daemon.Stats routes there; the mu-guarded
// counters are exact from anywhere.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Policy:      s.cfg.Policy.String(),
		VirtualNow:  s.eng.Now(),
		EnergyWh:    s.eng.EnergyWh(),
		Active:      len(s.active),
		Queued:      len(s.queue),
		Submitted:   len(s.order),
		Done:        s.nDone,
		Failed:      s.nFailed,
		Canceled:    s.nCanceled,
		Rejected:    s.nRejected,
		MapSlots:    s.eng.TotalSlots(cluster.MapSlot),
		ReduceSlots: s.eng.TotalSlots(cluster.ReduceSlot),
	}
}

// Replay runs a whole submission trace to completion synchronously on
// the calling goroutine: every spec is scheduled at its SubmitAt
// offset on the virtual clock (sorted via SortTrace first), the engine
// runs until idle, and the final states come back in sorted-trace
// order. Because admission, scheduling, and completion all happen in
// virtual-time order on one goroutine, the same trace yields
// byte-identical per-job results no matter how the specs were
// gathered or how many pool workers execute map compute.
func (s *Service) Replay(specs []JobSpec) []JobState {
	ordered := SortTrace(specs)
	base := s.eng.Now()
	ids := make([]string, len(ordered))
	errs := make([]error, len(ordered))
	for i := range ordered {
		i := i
		spec := ordered[i]
		s.eng.At(base+spec.SubmitAt, func() {
			ids[i], errs[i] = s.Submit(spec)
		})
	}
	s.eng.Run()
	out := make([]JobState, len(ordered))
	for i := range ordered {
		if errs[i] != nil {
			out[i] = JobState{Spec: ordered[i], Status: StatusRejected, Err: errs[i].Error(), SubmitVT: base + ordered[i].SubmitAt}
			continue
		}
		st, _ := s.JobInfo(ids[i])
		out[i] = st
	}
	return out
}
