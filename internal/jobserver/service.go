package jobserver

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/mapreduce"
)

// ErrBusy is returned by Submit when the admission queue is full — the
// service's backpressure signal (HTTP maps it to 429).
var ErrBusy = errors.New("jobserver: admission queue full, retry later")

// ErrDraining is returned by Submit while the service is draining for
// shutdown (HTTP maps it to 503 with a Retry-After header). Queued and
// running jobs are unaffected; new work must go elsewhere or retry
// after the restart.
var ErrDraining = errors.New("jobserver: draining for shutdown, retry later")

// Config sizes the service.
type Config struct {
	// Cluster describes the shared simulated cluster (zero value:
	// cluster.DefaultConfig(), the paper's 10-server Xeon rack).
	Cluster cluster.Config
	// Policy arbitrates map slots between active jobs.
	Policy Policy
	// MaxActive caps concurrently running jobs (default 8). Admission
	// additionally requires free reduce slots for the job.
	MaxActive int
	// MaxQueue bounds the admission queue (default 64); beyond it
	// Submit returns ErrBusy.
	MaxQueue int
	// Workers is the per-job compute-pool size applied to specs that
	// do not set their own (0 = GOMAXPROCS).
	Workers int
	// SnapshotEvery is the virtual-time period of streaming
	// early-result snapshots (default 40 s; <0 disables).
	SnapshotEvery float64
	// IDPrefix prefixes generated job ids (default "job-", yielding
	// "job-0000"). A fleet daemon gives each shard a distinct prefix
	// ("job-s2-") so ids are globally unique and name their owning
	// shard, which is how the HTTP layer routes id-addressed requests
	// without a directory.
	IDPrefix string
	// ShardIndex is this service's shard number within a fleet (0 for
	// a standalone daemon). It is journaled with every submit record;
	// recovery refuses a journal segment written by a different shard.
	ShardIndex int
	// TenantQuota caps in-flight (non-terminal) live submissions per
	// tenant across the whole fleet (0 = unlimited). Enforced by the
	// Fleet router, not the Service; it lives here so one Config
	// describes a whole daemon.
	TenantQuota int
}

// JobStatus is the lifecycle state of a service job.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
	StatusRejected JobStatus = "rejected"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusRejected:
		return true
	}
	return false
}

// Snapshot is one streamed early-result frame: the job's current
// cross-partition estimates T virtual seconds after its start. As
// waves complete, successive snapshots carry narrowing confidence
// intervals; the last snapshot of a successful job is its final
// output.
type Snapshot struct {
	T         float64                 `json:"t"`
	Estimates []mapreduce.KeyEstimate `json:"estimates"`
}

// JobState is the externally visible state of one submission. Reads
// through JobInfo/Jobs return copies that are safe to use from any
// goroutine.
type JobState struct {
	ID       string            `json:"id"`
	Spec     JobSpec           `json:"spec"`
	Status   JobStatus         `json:"status"`
	SubmitVT float64           `json:"submitVT"` // virtual submission time
	StartVT  float64           `json:"startVT"`  // virtual admission time
	EndVT    float64           `json:"endVT"`    // virtual completion time
	Err      string            `json:"error,omitempty"`
	Result   *mapreduce.Result `json:"result,omitempty"`
	// Snapshots accumulate while the job runs; see StreamFrom.
	Snapshots []Snapshot `json:"-"`
	// frames is the encode-once wire form of Snapshots: one shared
	// buffer per Seq, stamped at creation and served verbatim to every
	// subscriber (see frames.go). Appends happen on the engine
	// goroutine; reads anywhere under Service.mu.
	frames []*encFrame
}

// entry is the service's per-job scheduling state. Everything here
// belongs to the engine goroutine.
type entry struct {
	state    *JobState // mutations guarded by Service.mu
	job      *mapreduce.Job
	h        *mapreduce.Handle
	seq      int
	weight   float64
	grants   int  // map slots currently granted by the arbiter
	hungry   bool // denied a slot since the last kick
	canceled bool
}

// Service runs many jobs concurrently on one shared engine. All
// mutating methods (Submit, Cancel, Replay, and the engine callbacks)
// must run on the goroutine that drives the engine; the read methods
// (JobInfo, Jobs, Stats, StreamFrom) are safe from any goroutine.
type Service struct {
	cfg Config
	eng *cluster.Engine

	// Engine-goroutine state.
	entries       map[*mapreduce.Job]*entry
	queue         []*entry
	active        []*entry
	seq           int
	activeReduces int
	kickQueued    bool
	// journal, when set, write-ahead-logs every state transition. It is
	// engine-goroutine state: appends and commits happen between engine
	// events, never under mu (fsync under the service lock would stall
	// every reader — the lockheld analyzer enforces this).
	journal    *Journal
	recovering bool
	// idemp maps client idempotency keys to the job id that first
	// claimed them; duplicate submissions are answered with the
	// original job.
	idemp map[string]string
	// onTerminal, when set (SetOnTerminal), runs on the engine
	// goroutine after a job reaches a terminal state, outside mu. The
	// fleet uses it to release per-tenant admission-quota units.
	onTerminal func(*JobState)

	// Cross-goroutine state.
	mu                                   sync.Mutex
	cond                                 *sync.Cond
	states                               map[string]*JobState
	order                                []string // submission order of IDs
	closed                               bool
	draining                             bool
	journalErr                           error
	nDone, nFailed, nCanceled, nRejected int
	closeOnce                            sync.Once
}

// New builds a service and its private simulated cluster.
func New(cfg Config) *Service {
	if cfg.Cluster.Servers == 0 {
		cfg.Cluster = cluster.DefaultConfig()
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 40
	}
	s := &Service{
		cfg:     cfg,
		eng:     cluster.New(cfg.Cluster),
		entries: make(map[*mapreduce.Job]*entry),
		states:  make(map[string]*JobState),
		idemp:   make(map[string]string),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// UseJournal attaches a write-ahead journal. Call once, before any
// submissions; pair with Recover when the journal already holds
// records from a previous life of the daemon.
func (s *Service) UseJournal(j *Journal) { s.journal = j }

// idPrefix is the job-id prefix (Config.IDPrefix, default "job-").
func (s *Service) idPrefix() string {
	if s.cfg.IDPrefix != "" {
		return s.cfg.IDPrefix
	}
	return "job-"
}

// SetOnTerminal installs the terminal-transition hook. Call before the
// driver goroutine starts (and after Recover — restored states must
// not fire it); the hook runs on the engine goroutine without mu held,
// so it may take its own locks but must not block.
func (s *Service) SetOnTerminal(fn func(*JobState)) { s.onTerminal = fn }

// notifyTerminal invokes the terminal hook. Engine goroutine only,
// never under mu.
func (s *Service) notifyTerminal(st *JobState) {
	if s.onTerminal != nil {
		s.onTerminal(st)
	}
}

// IdempotentID reports the job id that already claimed key, if any.
// Engine goroutine only — the fleet router consults it (via the
// shard's mailbox) before charging a tenant's quota, so duplicate
// keyed submissions are answered without consuming a unit.
func (s *Service) IdempotentID(key string) (string, bool) {
	id, ok := s.idemp[key]
	return id, ok
}

// Journaled reports whether a journal is attached.
func (s *Service) Journaled() bool { return s.journal != nil }

// journalAppend appends one record, recording (not returning) any
// failure: mid-run transitions must not fail their job, and the
// durability-critical path (Submit) checks the error explicitly via
// journalCommit. Engine goroutine only.
func (s *Service) journalAppend(rec JournalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.setJournalErr(err)
	}
}

// journalCommit makes everything appended so far durable. Engine
// goroutine only.
func (s *Service) journalCommit() error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Commit(); err != nil {
		s.setJournalErr(err)
		return err
	}
	return nil
}

// journalQuiesce commits buffered journal records at a quiescent
// point (engine idle, drain). Failures are recorded (JournalErr flips
// /healthz), not returned: nothing at an idle point can act on them.
// Engine goroutine only.
func (s *Service) journalQuiesce() {
	if s.journal == nil {
		return
	}
	if err := s.journal.Commit(); err != nil {
		s.setJournalErr(err)
	}
}

// journalTerminal appends a job's terminal record (degrade first when
// the run folded tasks into drops). Engine goroutine only; st must no
// longer be reachable for mutation or must be read-stable.
func (s *Service) journalTerminal(st *JobState) {
	if s.journal == nil {
		return
	}
	if st.Result != nil && st.Result.Counters.MapsDegraded > 0 {
		s.journalAppend(JournalRecord{Op: JournalDegrade, ID: st.ID, EndVT: st.EndVT})
	}
	s.journalAppend(JournalRecord{
		Op:       JournalDone,
		ID:       st.ID,
		Status:   st.Status,
		Err:      st.Err,
		SubmitVT: st.SubmitVT,
		StartVT:  st.StartVT,
		EndVT:    st.EndVT,
		Result:   toJournalResult(st.Result),
	})
}

func (s *Service) setJournalErr(err error) {
	s.mu.Lock()
	if s.journalErr == nil {
		s.journalErr = err
	}
	s.mu.Unlock()
}

// JournalErr returns the first journal I/O failure, if any. A non-nil
// value flips /healthz and /readyz to 503: the daemon can no longer
// promise durability. Safe from any goroutine.
func (s *Service) JournalErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalErr
}

// Engine exposes the shared engine for the goroutine driving it.
func (s *Service) Engine() *cluster.Engine { return s.eng }

// Policy returns the configured scheduling policy.
func (s *Service) Policy() Policy { return s.cfg.Policy }

// Close marks the service shut down, wakes every stream waiter, and
// commits and closes the journal. Idempotent: daemon teardown, signal
// handlers, and tests may all call it; only the first call acts. The
// journal close requires that the goroutine driving the engine has
// stopped (Daemon.Stop guarantees this ordering).
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
		if s.journal != nil {
			if err := s.journal.Close(); err != nil {
				s.setJournalErr(err)
			}
		}
	})
}

// StartDrain stops admissions: subsequent Submits fail with
// ErrDraining, and queued jobs are no longer dispatched — they stay
// journaled for recovery at the next boot. Running jobs are unaffected.
// Safe from any goroutine; flips /readyz to 503.
func (s *Service) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether StartDrain has been called. Safe from any
// goroutine.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ActiveCount returns the number of running jobs. Engine goroutine
// only (the drain loop samples it through the daemon mailbox).
func (s *Service) ActiveCount() int { return len(s.active) }

// QueuedCount returns the number of admitted-but-unstarted jobs.
// Engine goroutine only.
func (s *Service) QueuedCount() int { return len(s.queue) }

// Submit validates and enqueues one job at the current virtual time,
// dispatching immediately if capacity allows. Engine goroutine only.
//
// Submissions carrying an idempotency key are deduplicated: a key seen
// before (including across a crash, via the journal) returns the
// original job's id without creating a new job, so clients can retry
// blind after a timeout or a daemon restart and still observe exactly
// one execution. When a journal is attached, the submit record is
// fsynced before Submit returns — an acknowledged job survives a kill
// -9 by construction.
func (s *Service) Submit(spec JobSpec) (string, error) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.mu.Lock()
		s.nRejected++
		s.mu.Unlock()
		return "", ErrDraining
	}
	if spec.IdempotencyKey != "" {
		if id, ok := s.idemp[spec.IdempotencyKey]; ok {
			return id, nil
		}
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Lock()
		s.nRejected++
		s.mu.Unlock()
		return "", ErrBusy
	}
	job, err := spec.Build(s.cfg.Workers)
	if err != nil {
		s.mu.Lock()
		s.nRejected++
		s.mu.Unlock()
		return "", err
	}
	if rs := s.eng.TotalSlots(cluster.ReduceSlot); job.Reduces > rs {
		s.mu.Lock()
		s.nRejected++
		s.mu.Unlock()
		return "", fmt.Errorf("jobserver: spec wants %d reduces but the cluster has %d reduce slots", job.Reduces, rs)
	}
	id := fmt.Sprintf("%s%04d", s.idPrefix(), s.seq)
	if s.journal != nil && !s.recovering {
		s.journalAppend(JournalRecord{Op: JournalSubmit, ID: id, Shard: s.cfg.ShardIndex, Spec: &spec, SubmitVT: s.eng.Now()})
		if err := s.journalCommit(); err != nil {
			// The job was never acknowledged and never enqueued; the
			// client must retry (ideally elsewhere — /readyz is now 503).
			s.mu.Lock()
			s.nRejected++
			s.mu.Unlock()
			return "", fmt.Errorf("jobserver: journal write failed, submission not accepted: %w", err)
		}
	}
	s.enqueue(spec, job, id)
	return id, nil
}

// enqueue installs an already-validated, already-journaled job and
// dispatches. Shared by Submit and recovery re-admission; engine
// goroutine only.
func (s *Service) enqueue(spec JobSpec, job *mapreduce.Job, id string) {
	st := &JobState{ID: id, Spec: spec, Status: StatusQueued, SubmitVT: s.eng.Now()}
	weight := spec.Weight
	if weight <= 0 {
		weight = 1
	}
	e := &entry{state: st, job: job, seq: s.seq, weight: weight}
	s.seq++
	if spec.IdempotencyKey != "" {
		s.idemp[spec.IdempotencyKey] = id
	}
	if s.cfg.SnapshotEvery > 0 {
		job.SnapshotEvery = s.cfg.SnapshotEvery
		job.OnSnapshot = func(t float64, ests []mapreduce.KeyEstimate) {
			// Encode the wire frame once, outside the lock (the engine
			// goroutine is the only frame producer, so len(st.frames) is
			// stable here); every subscriber shares the buffer.
			f := newJobFrame(len(st.frames), t, StatusRunning, false, ests)
			s.mu.Lock()
			st.Snapshots = append(st.Snapshots, Snapshot{T: t, Estimates: ests})
			st.frames = append(st.frames, f)
			s.mu.Unlock()
			s.cond.Broadcast()
		}
	}
	s.entries[job] = e
	s.mu.Lock()
	s.states[id] = st
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.queue = append(s.queue, e)
	s.dispatch()
}

// dispatch admits queued jobs in FIFO order while capacity allows: a
// free active slot and enough free reduce slots for the head job
// (head-of-line blocking — jobs never overtake within the queue, so
// admission order is reproducible). During a drain nothing is
// admitted: queued jobs keep their journaled admission state and are
// re-admitted, in this exact order, by recovery at the next boot.
func (s *Service) dispatch() {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return
	}
	for len(s.queue) > 0 {
		if len(s.active) >= s.cfg.MaxActive {
			return
		}
		e := s.queue[0]
		if s.activeReduces+e.job.Reduces > s.eng.TotalSlots(cluster.ReduceSlot) {
			return
		}
		s.queue = s.queue[1:]
		h, err := mapreduce.Start(s.eng, e.job, mapreduce.StartOptions{
			Arbiter: &schedArbiter{s: s},
			OnDone:  func(res *mapreduce.Result, jobErr error) { s.onJobDone(e, res, jobErr) },
		})
		if err != nil {
			delete(s.entries, e.job)
			s.mu.Lock()
			e.state.Status = StatusFailed
			e.state.Err = err.Error()
			e.state.EndVT = s.eng.Now()
			s.nFailed++
			s.mu.Unlock()
			s.cond.Broadcast()
			s.notifyTerminal(e.state)
			s.journalTerminal(e.state)
			continue
		}
		e.h = h
		s.active = append(s.active, e)
		s.activeReduces += e.job.Reduces
		s.mu.Lock()
		e.state.Status = StatusRunning
		e.state.StartVT = s.eng.Now()
		s.mu.Unlock()
		s.cond.Broadcast()
		s.journalAppend(JournalRecord{Op: JournalAdmit, ID: e.state.ID, StartVT: e.state.StartVT})
	}
}

// onJobDone is the tracker's completion hook: it runs on the engine
// goroutine at the job's virtual completion instant, frees the job's
// admission capacity, records the outcome, and lets queued and waiting
// jobs advance.
func (s *Service) onJobDone(e *entry, res *mapreduce.Result, err error) {
	for i, f := range s.active {
		if f == e {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.activeReduces -= e.job.Reduces
	delete(s.entries, e.job)
	st := e.state
	// Decide the terminal status first and pre-encode its wire frame
	// outside the lock; watchers observe the snapshot append, the frame,
	// and the status flip as one transition.
	status := StatusDone
	switch {
	case err != nil && e.canceled:
		status = StatusCanceled
	case err != nil:
		status = StatusFailed
	}
	var doneFrame, restamped *encFrame
	if status == StatusDone {
		// The terminal snapshot's frame: stamped done+final at creation,
		// so streams converge exactly to the job's final outputs.
		doneFrame = newJobFrame(len(st.frames), res.Runtime, StatusDone, true, res.Outputs)
	} else if n := len(st.frames); n > 0 {
		// Failed/canceled mid-run: no new estimates to publish, but the
		// last cached frame must carry the terminal status so resumed
		// subscribers see an ending without a per-connection re-encode.
		restamped = restampJobFrame(st.frames[n-1], status)
	}
	s.mu.Lock()
	st.EndVT = s.eng.Now()
	st.Status = status
	switch status {
	case StatusCanceled:
		st.Err = err.Error()
		s.nCanceled++
	case StatusFailed:
		st.Err = err.Error()
		s.nFailed++
	default:
		st.Result = res
		s.nDone++
		// The terminal snapshot: streams converge exactly to the
		// job's final outputs.
		st.Snapshots = append(st.Snapshots, Snapshot{T: res.Runtime, Estimates: res.Outputs})
		st.frames = append(st.frames, doneFrame)
	}
	if restamped != nil {
		st.frames[len(st.frames)-1] = restamped
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.notifyTerminal(st)
	s.journalTerminal(st)
	s.dispatch()
	s.scheduleKicks()
}

// Cancel aborts a job. Queued jobs leave the queue; running jobs are
// killed at the current virtual time. Terminal jobs are left alone.
// Engine goroutine only.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	st, ok := s.states[id]
	terminal := ok && st.Status.Terminal()
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("jobserver: no job %q", id)
	}
	if terminal {
		return nil
	}
	for i, e := range s.queue {
		if e.state == st {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			delete(s.entries, e.job)
			s.mu.Lock()
			st.Status = StatusCanceled
			st.Err = "jobserver: canceled while queued"
			st.EndVT = s.eng.Now()
			s.nCanceled++
			s.mu.Unlock()
			s.cond.Broadcast()
			s.notifyTerminal(st)
			s.journalTerminal(st)
			return nil
		}
	}
	for _, e := range s.active {
		if e.state == st {
			e.canceled = true
			// Journal the request before the kill lands: if the daemon
			// dies in between, recovery honors the cancellation instead
			// of resurrecting a job the client asked to stop.
			s.journalAppend(JournalRecord{Op: JournalCancel, ID: id, EndVT: s.eng.Now()})
			e.h.Cancel()
			return nil
		}
	}
	return nil
}

// RecoveryStats summarizes what Recover found in the journal.
type RecoveryStats struct {
	// Terminal is the number of jobs restored directly from journaled
	// terminal records (done/failed/canceled) — no re-execution.
	Terminal int
	// Requeued is the number of incomplete jobs re-admitted for
	// deterministic re-execution from their recorded spec + seed.
	Requeued int
	// Canceled is the number of jobs with a journaled cancel request
	// but no terminal record, finalized as canceled without re-running.
	Canceled int
}

// Recover replays a journal read by OpenJournal: jobs with terminal
// records are restored verbatim (result, counters, idempotency key),
// jobs with a cancel request but no terminal record are finalized as
// canceled, and everything else — queued or running at the moment of
// the crash — is re-admitted in original submission order under its
// original id. Because a (spec, seed) run is bit-identical regardless
// of scheduling, the re-executed jobs produce exactly the results an
// uninterrupted daemon would have: recovery is replay-from-seed, no
// result checkpoints needed. Call once, on the engine goroutine,
// after UseJournal and before serving traffic.
func (s *Service) Recover(recs []JournalRecord) (RecoveryStats, error) {
	var rs RecoveryStats
	if len(recs) == 0 {
		return rs, nil
	}
	type jobRec struct {
		submit *JournalRecord
		done   *JournalRecord
		cancel *JournalRecord
	}
	byID := make(map[string]*jobRec)
	var order []string
	maxSeq := -1
	for i := range recs {
		rec := &recs[i]
		jr := byID[rec.ID]
		if jr == nil {
			jr = &jobRec{}
			byID[rec.ID] = jr
		}
		switch rec.Op {
		case JournalSubmit:
			if jr.submit != nil {
				return rs, fmt.Errorf("jobserver: journal has duplicate submit for %s", rec.ID)
			}
			if rec.Spec == nil {
				return rs, fmt.Errorf("jobserver: journal submit for %s carries no spec", rec.ID)
			}
			if rec.Shard != s.cfg.ShardIndex {
				// Replaying another shard's segment would re-place jobs and
				// break bit-identical recovery; refuse loudly — the operator
				// restarted with the wrong -shards or swapped segment files.
				return rs, fmt.Errorf("jobserver: journal submit for %s belongs to shard %d, not shard %d (restart with the original shard count)",
					rec.ID, rec.Shard, s.cfg.ShardIndex)
			}
			jr.submit = rec
			order = append(order, rec.ID)
			if tail, ok := strings.CutPrefix(rec.ID, s.idPrefix()); ok {
				if n, err := strconv.Atoi(tail); err == nil && n > maxSeq {
					maxSeq = n
				}
			}
		case JournalDone:
			jr.done = rec
		case JournalCancel:
			jr.cancel = rec
		case JournalAdmit, JournalDegrade:
			// Informational: re-execution re-derives admission order and
			// degradation from the spec + seed.
		default:
			return rs, fmt.Errorf("jobserver: journal has unknown op %q for %s", rec.Op, rec.ID)
		}
	}
	s.seq = maxSeq + 1
	s.recovering = true
	defer func() { s.recovering = false }()
	for _, id := range order {
		jr := byID[id]
		switch {
		case jr.submit == nil:
			// Unreachable given the order slice, but keeps the switch total.
		case jr.done != nil:
			s.restoreTerminal(id, jr.submit, jr.done)
			rs.Terminal++
		case jr.cancel != nil:
			// The client asked for a kill that the crash delivered. Honor
			// it instead of resurrecting the job, and write the terminal
			// record the dying daemon never got to.
			st := &JobState{
				ID:       id,
				Spec:     *jr.submit.Spec,
				Status:   StatusCanceled,
				Err:      "jobserver: canceled (finalized during crash recovery)",
				SubmitVT: jr.submit.SubmitVT,
				EndVT:    jr.cancel.EndVT,
			}
			s.installRestored(st)
			s.journalTerminal(st)
			rs.Canceled++
		default:
			s.submitRecovered(id, *jr.submit.Spec)
			rs.Requeued++
		}
	}
	if err := s.journalCommit(); err != nil {
		return rs, err
	}
	return rs, nil
}

// restoreTerminal installs a completed job exactly as journaled.
func (s *Service) restoreTerminal(id string, sub, done *JournalRecord) {
	st := &JobState{
		ID:       id,
		Spec:     *sub.Spec,
		Status:   done.Status,
		SubmitVT: done.SubmitVT,
		StartVT:  done.StartVT,
		EndVT:    done.EndVT,
		Err:      done.Err,
	}
	if done.Result != nil {
		st.Result = done.Result.Restore()
		// The terminal snapshot, so streams opened against a restored
		// job converge to its final outputs just like live ones.
		st.Snapshots = []Snapshot{{T: st.Result.Runtime, Estimates: st.Result.Outputs}}
		st.frames = []*encFrame{newJobFrame(0, st.Result.Runtime, st.Status, st.Status == StatusDone, st.Result.Outputs)}
	}
	s.installRestored(st)
}

// installRestored publishes a recovered terminal state: visible to
// readers, counted in stats, and holding its idempotency key so
// post-restart duplicate submissions still dedupe to the original run.
func (s *Service) installRestored(st *JobState) {
	if k := st.Spec.IdempotencyKey; k != "" {
		if _, ok := s.idemp[k]; !ok {
			s.idemp[k] = st.ID
		}
	}
	s.mu.Lock()
	s.states[st.ID] = st
	s.order = append(s.order, st.ID)
	switch st.Status {
	case StatusDone:
		s.nDone++
	case StatusFailed:
		s.nFailed++
	case StatusCanceled:
		s.nCanceled++
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// submitRecovered re-admits one incomplete journaled job under its
// original id. The spec validated at original submit time, but the
// build is repeated — a spec that no longer builds (say, an app renamed
// between daemon versions) becomes a failed job, not a recovery abort.
func (s *Service) submitRecovered(id string, spec JobSpec) {
	job, err := spec.Build(s.cfg.Workers)
	if err == nil && job.Reduces > s.eng.TotalSlots(cluster.ReduceSlot) {
		err = fmt.Errorf("jobserver: spec wants %d reduces but the cluster has %d reduce slots", job.Reduces, s.eng.TotalSlots(cluster.ReduceSlot))
	}
	if err != nil {
		st := &JobState{ID: id, Spec: spec, Status: StatusFailed, Err: err.Error()}
		s.installRestored(st)
		s.journalTerminal(st)
		return
	}
	s.enqueue(spec, job, id)
}

// JobInfo returns a copy of one job's state. Safe from any goroutine.
func (s *Service) JobInfo(id string) (JobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok {
		return JobState{}, false
	}
	return copyState(st), true
}

// Jobs returns every job's state in submission order.
func (s *Service) Jobs() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobState, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, copyState(s.states[id]))
	}
	return out
}

// copyState snapshots a JobState under the service lock. The Result
// pointer and snapshot entries are immutable once published, so
// sharing them with readers is safe; only the slice header is copied.
func copyState(st *JobState) JobState {
	cp := *st
	cp.Snapshots = st.Snapshots[:len(st.Snapshots):len(st.Snapshots)]
	return cp
}

// StreamFrom blocks until job id has snapshots beyond `have` or
// reaches a terminal state, then returns the new snapshots, the
// (possibly terminal) status, and the updated cursor. Callers loop
// until Terminal; any goroutine may call it while the engine
// goroutine drives the job.
func (s *Service) StreamFrom(id string, have int) ([]Snapshot, JobStatus, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if have < 0 {
		have = 0
	}
	for {
		st, ok := s.states[id]
		if !ok {
			return nil, "", have, fmt.Errorf("jobserver: no job %q", id)
		}
		// A resume cursor can point past the end (e.g. a reconnect after
		// a restart whose recovered job has only the terminal snapshot);
		// clamp instead of slicing out of range.
		if have > len(st.Snapshots) {
			have = len(st.Snapshots)
		}
		if len(st.Snapshots) > have || st.Status.Terminal() {
			fresh := st.Snapshots[have:len(st.Snapshots):len(st.Snapshots)]
			return fresh, st.Status, len(st.Snapshots), nil
		}
		if s.closed {
			return nil, st.Status, have, errors.New("jobserver: service shut down")
		}
		s.cond.Wait()
	}
}

// Stats is the service-level dashboard snapshot.
type Stats struct {
	Policy      string  `json:"policy"`
	VirtualNow  float64 `json:"virtualNow"`
	EnergyWh    float64 `json:"energyWh"`
	Active      int     `json:"active"`
	Queued      int     `json:"queued"`
	Submitted   int     `json:"submitted"`
	Done        int     `json:"done"`
	Failed      int     `json:"failed"`
	Canceled    int     `json:"canceled"`
	Rejected    int     `json:"rejected"`
	MapSlots    int     `json:"mapSlots"`
	ReduceSlots int     `json:"reduceSlots"`
	Draining    bool    `json:"draining,omitempty"`
	Journaled   bool    `json:"journaled,omitempty"`
	// Shards is the fleet size when the stats are a fleet aggregate
	// (Fleet.Stats); a bare Service reports 0.
	Shards int `json:"shards,omitempty"`
}

// Stats reports current service counters. The engine fields (virtual
// time, energy) are only consistent when sampled on the goroutine
// driving the engine — Daemon.Stats routes there; the mu-guarded
// counters are exact from anywhere.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Policy:      s.cfg.Policy.String(),
		VirtualNow:  s.eng.Now(),
		EnergyWh:    s.eng.EnergyWh(),
		Active:      len(s.active),
		Queued:      len(s.queue),
		Submitted:   len(s.order),
		Done:        s.nDone,
		Failed:      s.nFailed,
		Canceled:    s.nCanceled,
		Rejected:    s.nRejected,
		MapSlots:    s.eng.TotalSlots(cluster.MapSlot),
		ReduceSlots: s.eng.TotalSlots(cluster.ReduceSlot),
		Draining:    s.draining,
		Journaled:   s.journal != nil,
	}
}

// Replay runs a whole submission trace to completion synchronously on
// the calling goroutine: every spec is scheduled at its SubmitAt
// offset on the virtual clock (sorted via SortTrace first), the engine
// runs until idle, and the final states come back in sorted-trace
// order. Because admission, scheduling, and completion all happen in
// virtual-time order on one goroutine, the same trace yields
// byte-identical per-job results no matter how the specs were
// gathered or how many pool workers execute map compute.
func (s *Service) Replay(specs []JobSpec) []JobState {
	ordered := SortTrace(specs)
	base := s.eng.Now()
	ids := make([]string, len(ordered))
	errs := make([]error, len(ordered))
	for i := range ordered {
		i := i
		spec := ordered[i]
		s.eng.At(base+spec.SubmitAt, func() {
			ids[i], errs[i] = s.Submit(spec)
		})
	}
	s.eng.Run()
	out := make([]JobState, len(ordered))
	for i := range ordered {
		if errs[i] != nil {
			out[i] = JobState{Spec: ordered[i], Status: StatusRejected, Err: errs[i].Error(), SubmitVT: base + ordered[i].SubmitAt}
			continue
		}
		st, _ := s.JobInfo(ids[i])
		out[i] = st
	}
	return out
}
