package jobserver

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestJFloatRoundTrip: the journal's float encoding must survive the
// values encoding/json rejects — estimator error bounds are
// legitimately NaN or infinite.
func TestJFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, math.NaN(), math.Inf(1), math.Inf(-1), 1e308, 5e-324} {
		b, err := json.Marshal(JFloat(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back JFloat
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		got := float64(back)
		if math.IsNaN(v) {
			if !math.IsNaN(got) {
				t.Errorf("NaN round-tripped to %v via %s", got, b)
			}
			continue
		}
		//lint:ignore nofloateq the round-trip must be bit-exact, not approximately equal
		if got != v {
			t.Errorf("%v round-tripped to %v via %s", v, got, b)
		}
	}
	if _, err := json.Marshal(math.NaN()); err == nil {
		t.Fatal("sanity: encoding/json accepted a bare NaN; JFloat is redundant")
	}
}

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.jsonl")
}

func submitRec(id, name string, seed int64) JournalRecord {
	spec := JobSpec{Name: name, App: "total-size", Blocks: 8, LinesPerBlock: 50, Seed: seed}
	return JournalRecord{Op: JournalSubmit, ID: id, Spec: &spec, SubmitVT: 1.5}
}

// TestJournalAppendReopen: records written and committed come back
// verbatim from a reopen.
func TestJournalAppendReopen(t *testing.T) {
	path := tempJournal(t)
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []JournalRecord{
		submitRec("job-0000", "alpha", 3),
		{Op: JournalAdmit, ID: "job-0000", StartVT: 2},
		{Op: JournalDone, ID: "job-0000", Status: StatusDone, SubmitVT: 1.5, StartVT: 2, EndVT: 9},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestJournalTornTailTruncated: a partial final line — the signature
// of a crash mid-append — is dropped and truncated so the next append
// starts on a clean boundary.
func TestJournalTornTailTruncated(t *testing.T) {
	path := tempJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRec("job-0000", "whole", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"job-00`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "job-0000" {
		t.Fatalf("recovered %+v, want the one whole record", recs)
	}
	if err := j2.Append(JournalRecord{Op: JournalAdmit, ID: "job-0000"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("after truncate+append got %d records, want 2 (tail not truncated?)", len(recs))
	}
}

// TestJournalInteriorCorruptionRejected: a corrupt record with more
// data after it cannot be a torn tail; silently skipping it would
// un-journal acknowledged jobs, so opening must fail loudly.
func TestJournalInteriorCorruptionRejected(t *testing.T) {
	path := tempJournal(t)
	lines := []string{
		`{"op":"submit","id":"job-0000","spec":{"app":"total-size"}}`,
		`{"op":"adm GARBAGE`,
		`{"op":"done","id":"job-0000","status":"done"}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("interior corruption opened without error")
	}
}

// TestJournalAutoCommitBatching: SyncEvery bounds the dirty window —
// the auto-commit fires at the threshold, and Commit is a no-op when
// clean.
func TestJournalAutoCommitBatching(t *testing.T) {
	path := tempJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SyncEvery = 2
	if err := j.Append(JournalRecord{Op: JournalAdmit, ID: "job-0000"}); err != nil {
		t.Fatal(err)
	}
	if j.dirty != 1 {
		t.Fatalf("dirty = %d after one append, want 1", j.dirty)
	}
	if err := j.Append(JournalRecord{Op: JournalAdmit, ID: "job-0001"}); err != nil {
		t.Fatal(err)
	}
	if j.dirty != 0 {
		t.Fatalf("dirty = %d after hitting SyncEvery, want 0 (auto-commit)", j.dirty)
	}
	if err := j.Commit(); err != nil {
		t.Fatalf("clean commit: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCloseIdempotent: Service.Close and daemon teardown may
// both close the journal; the second call must be a harmless no-op.
func TestJournalCloseIdempotent(t *testing.T) {
	j, _, err := OpenJournal(tempJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Op: JournalAdmit, ID: "job-0000"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := j.Append(JournalRecord{Op: JournalAdmit, ID: "job-0001"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}
