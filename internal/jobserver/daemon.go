package jobserver

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned for operations on a stopped daemon.
var ErrClosed = errors.New("jobserver: daemon stopped")

// Daemon runs a fleet of engine shards behind driver goroutines: HTTP
// handlers never touch a virtual timeline directly, they post closures
// to the owning shard's mailbox. Each shard's virtual-time plane stays
// single-threaded even though submissions arrive concurrently over the
// network, and the shards run genuinely in parallel — a single daemon
// process scales across cores by adding shards, not threads per engine.
//
// Two submission modes exist. Live mode admits each job at whatever
// virtual instant its request reaches its shard's driver — the natural
// behavior for an interactive service, but wall-clock arrival order
// leaks into the timeline. Hold mode instead parks submissions in a
// buffer; Release sorts them by (SubmitAt, Name) and replays the
// batch on the virtual clocks, so N clients hammering the daemon
// concurrently still produce byte-identical per-job results. The
// /v1/replay endpoint is the one-request equivalent for callers that
// already hold the whole trace.
type Daemon struct {
	fleet *Fleet
	// streams is the continuous-query registry. Streams live outside
	// the driver goroutines: their pipelines never touch a shared
	// engine's virtual timeline (see streams.go), so they need none of
	// the mailbox discipline batch jobs do.
	streams *StreamSet
	once    sync.Once

	// RequestTimeout bounds quick HTTP endpoints via
	// http.TimeoutHandler (0 = unlimited); MaxBody bounds POST request
	// bodies via http.MaxBytesReader (0 = the 4 MiB default). MaxLag is
	// the slow-subscriber drop threshold for frame streaming (0 =
	// DefaultMaxLag; <0 disables dropping). Set all before Handler is
	// called; see Handler for the exempt endpoints.
	RequestTimeout time.Duration
	MaxBody        int64
	MaxLag         int

	// Hold-mode buffer, fleet-level: held specs are not yet placed on
	// any shard — Release routes the whole sorted batch at once.
	hmu     sync.Mutex
	holding bool
	held    []JobSpec
}

// NewDaemon starts a single-shard daemon for svc — the standalone
// configuration every prior version of approxd ran, and still the
// default. hold enables hold mode (see type comment).
func NewDaemon(svc *Service, hold bool) *Daemon {
	return NewFleetDaemon([]*Service{svc}, hold)
}

// NewFleetDaemon starts one driver goroutine per service. Services
// must be freshly built or recovered (Recover run, no driver yet);
// svcs[0]'s config supplies the fleet-wide knobs (stream registry
// sizing, tenant quota).
func NewFleetDaemon(svcs []*Service, hold bool) *Daemon {
	cfg := svcs[0].cfg
	return &Daemon{
		fleet:   NewFleet(svcs, cfg.TenantQuota),
		streams: NewStreamSet(cfg.MaxActive, cfg.Workers),
		holding: hold,
	}
}

// ShardConfigs expands cfg into per-shard configs: each shard gets a
// distinct id prefix ("job-s2-") and its shard index; a count of one
// keeps cfg untouched, so a 1-shard fleet is bit-compatible with the
// pre-fleet daemon (ids, journals, everything).
func ShardConfigs(cfg Config, shards int) []Config {
	if shards <= 1 {
		return []Config{cfg}
	}
	out := make([]Config, shards)
	for i := range out {
		out[i] = cfg
		out[i].IDPrefix = fmt.Sprintf("job-s%d-", i)
		out[i].ShardIndex = i
	}
	return out
}

// NewShardedDaemon builds shards fresh services from cfg (via
// ShardConfigs) and starts a fleet daemon over them — the in-process
// path for benchmarks and tests; cmd/approxd goes through Serve, which
// also wires per-shard journal segments.
func NewShardedDaemon(cfg Config, shards int, hold bool) *Daemon {
	cfgs := ShardConfigs(cfg, shards)
	svcs := make([]*Service, len(cfgs))
	for i, c := range cfgs {
		svcs[i] = New(c)
	}
	return NewFleetDaemon(svcs, hold)
}

// Streams returns the continuous-query registry.
func (d *Daemon) Streams() *StreamSet { return d.streams }

// Service returns shard 0's service — the only shard of a standalone
// daemon (read-only methods are safe from any goroutine).
func (d *Daemon) Service() *Service { return d.fleet.Shard(0) }

// Fleet returns the shard router.
func (d *Daemon) Fleet() *Fleet { return d.fleet }

// do runs fn on shard 0's driver goroutine and waits for it (test
// hook; fleet-aware callers route through Fleet methods).
func (d *Daemon) do(fn func()) error {
	return d.fleet.shards[0].do(fn)
}

// maxLag resolves the configured slow-subscriber drop threshold.
func (d *Daemon) maxLag() int {
	if d.MaxLag == 0 {
		return DefaultMaxLag
	}
	if d.MaxLag < 0 {
		return 0
	}
	return d.MaxLag
}

// Stop shuts every shard driver down and wakes every stream waiter.
// Running continuous queries are stopped at their next window.
func (d *Daemon) Stop() {
	d.once.Do(func() {
		d.streams.Close()
		d.fleet.Close()
	})
}

// Drain begins a graceful shutdown: new submissions fail with
// ErrDraining (HTTP 503 + Retry-After), queued jobs stop being
// admitted — their journaled submit records carry them to the next
// boot — and running jobs get up to grace wall-clock time to finish
// (virtual time runs as fast as the drivers can pump it, so this is
// normally milliseconds). It returns true when every shard went quiet,
// false on grace expiry; either way buffered journal records have been
// committed. Call Stop afterwards.
func (d *Daemon) Drain(grace time.Duration) bool {
	d.fleet.StartDrain()
	deadline := time.Now().Add(grace)
	finished := false
	for {
		active, err := d.fleet.ActiveTotal()
		if err != nil {
			return true // drivers already stopped, nothing is running
		}
		if active == 0 {
			finished = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Group-commit whatever the drain produced (terminal records for
	// jobs that finished, nothing for the still-queued) so the journals
	// are durable even if the process is killed before Stop.
	d.fleet.Quiesce()
	return finished
}

// Submit admits one job (live mode — placed on its shard and run
// there) or parks it (hold mode, in which case the returned id is
// empty and held is the buffer depth).
func (d *Daemon) Submit(spec JobSpec) (id string, held int, err error) {
	d.hmu.Lock()
	if d.holding {
		d.held = append(d.held, spec)
		held = len(d.held)
		d.hmu.Unlock()
		return "", held, nil
	}
	d.hmu.Unlock()
	id, err = d.fleet.Submit(spec)
	if err != nil {
		return "", 0, err
	}
	return id, 0, nil
}

// Release replays the held submissions as one sorted batch and
// returns their final states. Outside hold mode it is a no-op.
func (d *Daemon) Release() (states []JobState, err error) {
	d.hmu.Lock()
	specs := d.held
	d.held = nil
	d.hmu.Unlock()
	return d.fleet.Replay(specs)
}

// Replay runs a whole trace across the fleet and returns the final
// states in sorted-trace order. Concurrent live submissions queue
// behind each shard's share.
func (d *Daemon) Replay(specs []JobSpec) (states []JobState, err error) {
	return d.fleet.Replay(specs)
}

// Stats samples fleet-aggregate counters, each shard on its own driver
// goroutine, so the engine fields (virtual time, energy) are read
// between engine events rather than racing the simulations.
func (d *Daemon) Stats() (Stats, error) {
	return d.fleet.Stats()
}

// Cancel aborts a job on its owning shard's driver goroutine.
func (d *Daemon) Cancel(id string) error {
	return d.fleet.Cancel(id)
}
