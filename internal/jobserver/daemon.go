package jobserver

import (
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned for operations on a stopped daemon.
var ErrClosed = errors.New("jobserver: daemon stopped")

// Daemon runs a Service behind a single driver goroutine that owns
// the engine: HTTP handlers never touch the virtual timeline directly,
// they post closures to a mailbox the driver executes between engine
// events. The virtual-time plane therefore stays single-threaded even
// though submissions arrive concurrently over the network.
//
// Two submission modes exist. Live mode admits each job at whatever
// virtual instant its request reaches the driver — the natural
// behavior for an interactive service, but wall-clock arrival order
// leaks into the timeline. Hold mode instead parks submissions in a
// buffer; Release sorts them by (SubmitAt, Name) and replays the
// batch on the virtual clock, so N clients hammering the daemon
// concurrently still produce byte-identical per-job results. The
// /v1/replay endpoint is the one-request equivalent for callers that
// already hold the whole trace.
type Daemon struct {
	svc *Service
	// streams is the continuous-query registry. Streams live outside
	// the driver goroutine: their pipelines never touch the shared
	// engine's virtual timeline (see streams.go), so they need none of
	// the mailbox discipline batch jobs do.
	streams *StreamSet
	cmds    chan func()
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once

	// RequestTimeout bounds quick HTTP endpoints via
	// http.TimeoutHandler (0 = unlimited); MaxBody bounds POST request
	// bodies via http.MaxBytesReader (0 = the 4 MiB default). Set both
	// before Handler is called; see Handler for the exempt endpoints.
	RequestTimeout time.Duration
	MaxBody        int64

	// Driver-goroutine state for hold mode.
	holding bool
	held    []JobSpec
}

// NewDaemon starts the driver goroutine for svc. hold enables hold
// mode (see type comment).
func NewDaemon(svc *Service, hold bool) *Daemon {
	d := &Daemon{
		svc:     svc,
		streams: NewStreamSet(svc.cfg.MaxActive, svc.cfg.Workers),
		cmds:    make(chan func(), 64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		holding: hold,
	}
	go d.loop()
	return d
}

// Streams returns the continuous-query registry.
func (d *Daemon) Streams() *StreamSet { return d.streams }

// Service returns the underlying service (read-only methods are safe
// from any goroutine).
func (d *Daemon) Service() *Service { return d.svc }

// loop is the driver: commands take priority (they schedule engine
// events at the current virtual time), then the engine is pumped one
// event at a time; an idle engine blocks on the mailbox.
func (d *Daemon) loop() {
	defer close(d.done)
	for {
		select {
		case fn := <-d.cmds:
			fn()
		case <-d.stop:
			return
		default:
			if d.svc.eng.Step() {
				continue
			}
			// Idle engine: a quiescent point — every buffered journal
			// record (admissions, completions) describes settled state,
			// so group-commit them before blocking for new work.
			d.svc.journalQuiesce()
			select {
			case fn := <-d.cmds:
				fn()
			case <-d.stop:
				return
			}
		}
	}
}

// do runs fn on the driver goroutine and waits for it.
func (d *Daemon) do(fn func()) error {
	ran := make(chan struct{})
	select {
	case d.cmds <- func() { fn(); close(ran) }:
	case <-d.stop:
		return ErrClosed
	}
	select {
	case <-ran:
		return nil
	case <-d.done:
		return ErrClosed
	}
}

// Stop shuts the driver down and wakes every stream waiter. Running
// continuous queries are stopped at their next window.
func (d *Daemon) Stop() {
	d.once.Do(func() {
		d.streams.Close()
		close(d.stop)
		<-d.done
		d.svc.Close()
	})
}

// Drain begins a graceful shutdown: new submissions fail with
// ErrDraining (HTTP 503 + Retry-After), queued jobs stop being
// admitted — their journaled submit records carry them to the next
// boot — and running jobs get up to grace wall-clock time to finish
// (virtual time runs as fast as the driver can pump it, so this is
// normally milliseconds). It returns true when the cluster went quiet,
// false on grace expiry; either way buffered journal records have been
// committed. Call Stop afterwards.
func (d *Daemon) Drain(grace time.Duration) bool {
	d.svc.StartDrain()
	deadline := time.Now().Add(grace)
	finished := false
	for {
		var active int
		if err := d.do(func() { active = d.svc.ActiveCount() }); err != nil {
			return true // driver already stopped, nothing is running
		}
		if active == 0 {
			finished = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Group-commit whatever the drain produced (terminal records for
	// jobs that finished, nothing for the still-queued) so the journal
	// is durable even if the process is killed before Stop.
	if err := d.do(func() { d.svc.journalQuiesce() }); err != nil {
		// Driver already stopped — svc.Close committed and closed the
		// journal on that path.
		return finished
	}
	return finished
}

// Submit admits one job (live mode) or parks it (hold mode, in which
// case the returned id is empty and held is the buffer depth).
func (d *Daemon) Submit(spec JobSpec) (id string, held int, err error) {
	doErr := d.do(func() {
		if d.holding {
			d.held = append(d.held, spec)
			held = len(d.held)
			return
		}
		id, err = d.svc.Submit(spec)
	})
	if doErr != nil {
		return "", 0, doErr
	}
	return id, held, err
}

// Release replays the held submissions as one sorted batch and
// returns their final states. Outside hold mode it is a no-op.
func (d *Daemon) Release() (states []JobState, err error) {
	doErr := d.do(func() {
		specs := d.held
		d.held = nil
		states = d.svc.Replay(specs)
	})
	if doErr != nil {
		return nil, doErr
	}
	return states, nil
}

// Replay runs a whole trace on the driver goroutine and returns the
// final states. Concurrent live submissions queue behind it.
func (d *Daemon) Replay(specs []JobSpec) (states []JobState, err error) {
	doErr := d.do(func() { states = d.svc.Replay(specs) })
	if doErr != nil {
		return nil, doErr
	}
	return states, nil
}

// Stats samples service counters on the driver goroutine, so the
// engine fields (virtual time, energy) are read between engine events
// rather than racing the simulation.
func (d *Daemon) Stats() (Stats, error) {
	var st Stats
	if err := d.do(func() { st = d.svc.Stats() }); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Cancel aborts a job on the driver goroutine.
func (d *Daemon) Cancel(id string) error {
	var cErr error
	if doErr := d.do(func() { cErr = d.svc.Cancel(id) }); doErr != nil {
		return doErr
	}
	return cErr
}
