package jobserver

import (
	"fmt"
	"sort"

	"approxhadoop/internal/cluster"
	"approxhadoop/internal/mapreduce"
)

// Policy selects how the service arbitrates map slots between
// concurrently active jobs.
type Policy int

// Scheduling policies.
const (
	// PolicyFIFO grants slots in strict admission order: the oldest
	// active job with demand takes every slot it wants; younger jobs
	// fill what it leaves. (Admission itself is always FIFO; the
	// policy governs slot arbitration among admitted jobs.)
	PolicyFIFO Policy = iota
	// PolicyFair divides the map slots between active jobs in
	// proportion to their weights (max-min style): a job below its
	// quota always beats one above it, and spare slots flow to anyone
	// with demand once nobody hungry is under quota, so the policy is
	// work-conserving and no job starves.
	PolicyFair
)

func (p Policy) String() string {
	if p == PolicyFair {
		return "fair"
	}
	return "fifo"
}

// ParsePolicy maps the wire names onto policies.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fifo":
		return PolicyFIFO, nil
	case "fair", "fair-share", "fairshare":
		return PolicyFair, nil
	}
	return PolicyFIFO, fmt.Errorf("jobserver: unknown policy %q (fifo, fair)", s)
}

// schedArbiter implements mapreduce.SlotArbiter over the service's
// active-job set. All methods run on the engine goroutine, in
// virtual-time order — the arbiter is deterministic state, not a
// concurrent component.
type schedArbiter struct {
	s *Service
}

// findSlot scans the cluster for a free map slot the request may use,
// preferring replica holders (locality). The second result reports
// whether any eligible server exists at all — when false the job's
// stall handling applies (every host is dead or blacklisted), when
// true a busy cluster should simply wait for a release.
func (a *schedArbiter) findSlot(req mapreduce.SlotRequest) (*cluster.Server, bool) {
	var fallback *cluster.Server
	eligible := false
	for _, s := range a.s.eng.Servers() {
		if req.Eligible != nil && !req.Eligible(s) {
			continue
		}
		if s.Dead() {
			continue
		}
		eligible = true
		if s.FreeSlots(cluster.MapSlot) <= 0 {
			continue
		}
		for _, rep := range req.Prefer {
			if rep == s.ID {
				return s, true
			}
		}
		if fallback == nil {
			fallback = s
		}
	}
	return fallback, eligible
}

// AcquireMap implements mapreduce.SlotArbiter.
func (a *schedArbiter) AcquireMap(req mapreduce.SlotRequest) (*cluster.Server, bool) {
	e := a.s.entries[req.Job]
	if e == nil {
		// Not a service job (defensive): behave like the single-job
		// greedy arbiter.
		srv, eligible := a.findSlot(req)
		return srv, srv == nil && eligible
	}
	if !a.mayGrant(e) {
		e.hungry = true
		return nil, true // policy backpressure; a release will kick
	}
	srv, eligible := a.findSlot(req)
	if srv == nil {
		if !eligible {
			return nil, false // no live eligible host: stall handling
		}
		e.hungry = true
		return nil, true // physically full; a release will kick
	}
	e.grants++
	if e.h != nil && e.h.MapDemand() <= 1 {
		// This grant satisfies the job's last pending task. Jobs the
		// policy was holding back behind its demand (FIFO order, fair
		// quotas) become grantable only at the next kick — schedule
		// one so leftover slots are not stranded until a release.
		a.s.scheduleKicks()
	}
	return srv, false
}

// ReleaseMap implements mapreduce.SlotArbiter: every map attempt end
// returns its grant and wakes whoever the policy now favors.
func (a *schedArbiter) ReleaseMap(job *mapreduce.Job, srv *cluster.Server) {
	if e := a.s.entries[job]; e != nil && e.grants > 0 {
		e.grants--
	}
	a.s.scheduleKicks()
}

// MapQuota implements mapreduce.SlotArbiter: fair-share jobs plan
// their waves against their slot share; FIFO jobs see the whole
// cluster (0 = unlimited).
func (a *schedArbiter) MapQuota(job *mapreduce.Job) int {
	if a.s.cfg.Policy != PolicyFair {
		return 0
	}
	e := a.s.entries[job]
	if e == nil {
		return 0
	}
	return a.quota(e)
}

// mayGrant applies the policy: may entry e take one more slot now?
func (a *schedArbiter) mayGrant(e *entry) bool {
	if a.s.cfg.Policy == PolicyFair {
		if e.grants < a.quota(e) {
			return true
		}
		// Over quota: work conservation lets e overshoot only while no
		// other active job is hungry below its own quota.
		for _, f := range a.s.active {
			if f != e && f.h != nil && f.grants < a.quota(f) && f.h.MapDemand() > 0 {
				return false
			}
		}
		return true
	}
	// FIFO: every earlier-admitted active job with demand goes first.
	for _, f := range a.s.active {
		if f.seq < e.seq && f.h != nil && f.h.MapDemand() > 0 {
			return false
		}
	}
	return true
}

// quota is e's weighted share of the cluster's map slots, at least 1.
func (a *schedArbiter) quota(e *entry) int {
	total := a.s.eng.TotalSlots(cluster.MapSlot)
	sumW := 0.0
	for _, f := range a.s.active {
		sumW += f.weight
	}
	if sumW <= 0 {
		return total
	}
	q := int(float64(total) * e.weight / sumW)
	if q < 1 {
		q = 1
	}
	return q
}

// kickHungry re-runs the scheduling pass of every active job that was
// denied a slot since the last kick, most-underserved first. The order
// is deterministic — (grants/weight, admission seq) — so the virtual
// timeline is identical run to run; under FIFO the admission sequence
// alone decides.
func (s *Service) kickHungry() {
	es := append([]*entry(nil), s.active...)
	if s.cfg.Policy == PolicyFair {
		sort.SliceStable(es, func(i, j int) bool {
			ri := float64(es[i].grants) / es[i].weight
			rj := float64(es[j].grants) / es[j].weight
			if ri < rj {
				return true
			}
			if rj < ri {
				return false
			}
			return es[i].seq < es[j].seq
		})
	}
	for _, e := range es {
		if e.hungry && e.h != nil && !e.h.Done() {
			e.hungry = false
			e.h.Kick()
		}
	}
}

// scheduleKicks coalesces kick requests into one engine event at the
// current virtual instant, so grants and releases happening inside a
// scheduling pass wake waiters only after the pass completes.
func (s *Service) scheduleKicks() {
	if s.kickQueued {
		return
	}
	s.kickQueued = true
	s.eng.At(s.eng.Now(), func() {
		s.kickQueued = false
		s.kickHungry()
	})
}
